package systolic

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randTile(rng *rand.Rand, rows, cols int) [][]int32 {
	w := make([][]int32, rows)
	for i := range w {
		w[i] = make([]int32, cols)
		for j := range w[i] {
			w[i][j] = int32(rng.IntN(17) - 8)
		}
	}
	return w
}

func randAct(rng *rand.Rand, n, height int) [][]int32 {
	act := make([][]int32, n)
	for t := range act {
		act[t] = make([]int32, height)
		for i := range act[t] {
			act[t][i] = int32(rng.IntN(17) - 8)
		}
	}
	return act
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero rows should be rejected")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative cols should be rejected")
	}
	a, err := New(3, 5)
	if err != nil || a.Rows() != 3 || a.Cols() != 5 {
		t.Errorf("New(3,5) = %v, %v", a, err)
	}
}

func TestStreamRequiresWeights(t *testing.T) {
	a, _ := New(2, 2)
	if _, err := a.Stream([][]int32{{1, 1}}); err == nil {
		t.Error("Stream before LoadWeights should error")
	}
}

func TestOversizedInputsRejected(t *testing.T) {
	a, _ := New(2, 2)
	if err := a.LoadWeights(randTile(rand.New(rand.NewPCG(1, 1)), 3, 2)); err == nil {
		t.Error("too-tall weight tile should be rejected")
	}
	if err := a.LoadWeights([][]int32{{1, 2, 3}}); err == nil {
		t.Error("too-wide weight tile should be rejected")
	}
	if err := a.LoadWeights([][]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stream([][]int32{{1, 2, 3}}); err == nil {
		t.Error("too-tall activation column should be rejected")
	}
	if _, err := a.Stream(nil); err == nil {
		t.Error("empty stream should be rejected")
	}
}

func TestKnownSmallProduct(t *testing.T) {
	// W (2x2): rows are k, cols are m.
	// Out[j][t] = sum_i W[i][j]*act[t][i].
	a, _ := New(2, 2)
	w := [][]int32{{1, 2}, {3, 4}}
	if err := a.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	act := [][]int32{{5, 6}, {7, 8}}
	res, err := a.Stream(act)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMul(w, act, 2)
	for j := range want {
		for tt := range want[j] {
			if res.Out[j][tt] != want[j][tt] {
				t.Errorf("Out[%d][%d] = %d, want %d", j, tt, res.Out[j][tt], want[j][tt])
			}
		}
	}
	// 5 = Out[0][0] = 1*5 + 3*6 = 23.
	if want[0][0] != 23 {
		t.Errorf("reference MatMul wrong: %d", want[0][0])
	}
}

func TestMeasuredCyclesMatchAnalyticFormula(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, dims := range []struct{ rows, cols, n int }{
		{2, 2, 1}, {4, 4, 8}, {8, 3, 5}, {3, 8, 16}, {16, 16, 2},
	} {
		a, err := New(dims.rows, dims.cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.LoadWeights(randTile(rng, dims.rows, dims.cols)); err != nil {
			t.Fatal(err)
		}
		res, err := a.Stream(randAct(rng, dims.n, dims.rows))
		if err != nil {
			t.Fatal(err)
		}
		want := PipelineCycles(dims.rows, dims.cols, dims.n)
		// The functional model may commit within a couple of cycles of
		// the closed-form expression; the paper's Figure 3(b) rounds
		// to SW+SH+ACC. Tolerate +-2 cycles.
		diff := res.Cycles - want
		if diff < -2 || diff > 2 {
			t.Errorf("%dx%d n=%d: measured %d cycles, analytic %d",
				dims.rows, dims.cols, dims.n, res.Cycles, want)
		}
	}
}

// Property: the cycle-stepped dataflow computes exactly the reference
// matrix product for random shapes, including edge tiles smaller than the
// array (Figure 3(c)).
func TestStreamMatchesMatMulProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	f := func() bool {
		rows := 1 + rng.IntN(12)
		cols := 1 + rng.IntN(12)
		n := 1 + rng.IntN(20)
		a, err := New(rows, cols)
		if err != nil {
			return false
		}
		// Edge tiles: weights may cover only part of the array.
		wRows := 1 + rng.IntN(rows)
		wCols := 1 + rng.IntN(cols)
		w := randTile(rng, wRows, wCols)
		if err := a.LoadWeights(w); err != nil {
			return false
		}
		// Activation columns may be shorter than the array height.
		act := randAct(rng, n, 1+rng.IntN(rows))
		res, err := a.Stream(act)
		if err != nil {
			return false
		}
		want := MatMul(w, act, cols)
		for j := range want {
			for tt := range want[j] {
				if res.Out[j][tt] != want[j][tt] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBackToBackTiles(t *testing.T) {
	// Reloading weights between tiles must not leak state.
	a, _ := New(4, 4)
	rng := rand.New(rand.NewPCG(5, 6))
	for tile := 0; tile < 5; tile++ {
		w := randTile(rng, 4, 4)
		if err := a.LoadWeights(w); err != nil {
			t.Fatal(err)
		}
		act := randAct(rng, 6, 4)
		res, err := a.Stream(act)
		if err != nil {
			t.Fatal(err)
		}
		want := MatMul(w, act, 4)
		for j := range want {
			for tt := range want[j] {
				if res.Out[j][tt] != want[j][tt] {
					t.Fatalf("tile %d mismatched at [%d][%d]", tile, j, tt)
				}
			}
		}
	}
}
