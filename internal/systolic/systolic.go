// Package systolic implements a functional, cycle-stepped model of the
// weight-stationary systolic array at the heart of the baseline NPU
// (Figure 3). It computes real matrix products by propagating activations
// and partial sums through the PE grid one cycle at a time, and it reports
// the cycle count a tile occupies the array.
//
// The package exists to validate the analytic tile-time model used by the
// compiler and by PREMA's Algorithm 1: the measured pipeline occupancy of
// a (rows x cols) array streaming n activation columns is
//
//	n + rows + cols - 1 cycles
//
// which the paper rounds up to SW + SH + ACC (Figure 3(b)) and, with the
// additional weight-staging pass, to ACC + SH + 2*SW in Algorithm 1.
package systolic

import "fmt"

// Array is a weight-stationary systolic array of rows x cols PEs. Row i
// corresponds to the k (reduction) dimension, column j to the m (output)
// dimension: PE(i,j) latches weight w[i][j] and accumulates
// psum[j] += w[i][j] * act[i].
type Array struct {
	rows, cols int
	weights    [][]int32 // rows x cols
	loaded     bool
}

// New constructs an array of the given dimensions.
func New(rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("systolic: non-positive dims %dx%d", rows, cols)
	}
	w := make([][]int32, rows)
	for i := range w {
		w[i] = make([]int32, cols)
	}
	return &Array{rows: rows, cols: cols, weights: w}, nil
}

// Rows returns the array height (k dimension).
func (a *Array) Rows() int { return a.rows }

// Cols returns the array width (m dimension).
func (a *Array) Cols() int { return a.cols }

// LoadWeights latches a weight tile into the PE grid (the LOAD_TILE weight
// path). The tile may be smaller than the array; the remainder is zeroed,
// modelling the under-utilized edge tiles of Figure 3(c).
func (a *Array) LoadWeights(tile [][]int32) error {
	if len(tile) > a.rows {
		return fmt.Errorf("systolic: weight tile has %d rows > array %d", len(tile), a.rows)
	}
	for i := range a.weights {
		for j := range a.weights[i] {
			a.weights[i][j] = 0
		}
	}
	for i, row := range tile {
		if len(row) > a.cols {
			return fmt.Errorf("systolic: weight tile row %d has %d cols > array %d",
				i, len(row), a.cols)
		}
		copy(a.weights[i], row)
	}
	a.loaded = true
	return nil
}

// Result carries the product tile and the measured occupancy.
type Result struct {
	// Out is the cols x n output tile: Out[j][t] = sum_i W[i][j]*Act[i][t].
	Out [][]int32
	// Cycles is the number of cycles the tile occupied the array, from
	// first activation injection to last partial-sum drain.
	Cycles int
}

// Stream pushes n activation columns (each of height <= rows) through the
// loaded array, cycle by cycle, and returns the output tile together with
// the measured occupancy. act is indexed act[t][i]: column t, row i.
//
// The dataflow follows Figure 3(b): activations enter the left edge
// skewed one cycle per row; partial sums flow downward one PE per cycle;
// column j's results for activation column t emerge after the full
// pipeline fill.
func (a *Array) Stream(act [][]int32) (Result, error) {
	if !a.loaded {
		return Result{}, fmt.Errorf("systolic: Stream before LoadWeights")
	}
	n := len(act)
	if n == 0 {
		return Result{}, fmt.Errorf("systolic: empty activation stream")
	}
	for t, col := range act {
		if len(col) > a.rows {
			return Result{}, fmt.Errorf("systolic: activation column %d height %d > array %d",
				t, len(col), a.rows)
		}
	}

	// actReg[i] is the activation currently held in row i's horizontal
	// shift path entering column 0; psum[i][j] is the partial sum held
	// on the vertical link between PE(i-1,j) and PE(i,j).
	// To keep the functional model compact we simulate the canonical
	// equivalent dataflow: activation column t is injected skewed so
	// that row i sees element (t, i) at cycle t+i; the product for
	// column t at column j commits at cycle t + (rows-1) + j + 1.
	out := make([][]int32, a.cols)
	for j := range out {
		out[j] = make([]int32, n)
	}

	// psums[i][j]: partial sum in flight at depth i of column j.
	psums := make([][]int32, a.rows+1)
	for i := range psums {
		psums[i] = make([]int32, a.cols)
	}
	// tags[i][j]: which activation column the in-flight partial at
	// depth i of column j belongs to (-1 when idle).
	tags := make([][]int, a.rows+1)
	for i := range tags {
		tags[i] = make([]int, a.cols)
		for j := range tags[i] {
			tags[i][j] = -1
		}
	}
	// acts[i]: the horizontal activation pipeline per row; acts[i][j]
	// is the activation value at row i currently visible to column j,
	// with actTags carrying its column index.
	acts := make([][]int32, a.rows)
	actTags := make([][]int, a.rows)
	for i := range acts {
		acts[i] = make([]int32, a.cols)
		actTags[i] = make([]int, a.cols)
		for j := range actTags[i] {
			actTags[i][j] = -1
		}
	}

	lastCommit := 0
	maxCycles := n + a.rows + a.cols + 4
	for cycle := 0; cycle < maxCycles; cycle++ {
		// Drain: partial sums exiting the bottom of each column commit
		// to the accumulator queue.
		for j := 0; j < a.cols; j++ {
			if t := tags[a.rows][j]; t >= 0 {
				out[j][t] = psums[a.rows][j]
				tags[a.rows][j] = -1
				lastCommit = cycle
			}
		}
		// Shift partial sums downward and multiply-accumulate, bottom
		// row first so values move exactly one PE per cycle.
		for i := a.rows - 1; i >= 0; i-- {
			for j := 0; j < a.cols; j++ {
				at := actTags[i][j]
				if at < 0 {
					continue
				}
				// The partial arriving from above must carry the
				// same activation-column tag (or be the fresh
				// injection at row 0).
				var acc int32
				if i == 0 {
					acc = 0
				} else {
					if tags[i][j] != at {
						continue
					}
					acc = psums[i][j]
					tags[i][j] = -1
				}
				psums[i+1][j] = acc + a.weights[i][j]*acts[i][j]
				tags[i+1][j] = at
			}
		}
		// Shift activations rightward along each row.
		for i := 0; i < a.rows; i++ {
			for j := a.cols - 1; j > 0; j-- {
				acts[i][j] = acts[i][j-1]
				actTags[i][j] = actTags[i][j-1]
			}
			acts[i][0] = 0
			actTags[i][0] = -1
		}
		// Inject the skewed activation front: row i receives column
		// t = cycle - i at the left edge.
		for i := 0; i < a.rows; i++ {
			t := cycle - i
			if t < 0 || t >= n {
				continue
			}
			v := int32(0)
			if i < len(act[t]) {
				v = act[t][i]
			}
			acts[i][0] = v
			actTags[i][0] = t
		}
	}
	return Result{Out: out, Cycles: lastCommit + 1}, nil
}

// MatMul is the reference product used to verify the array: given W
// (rows x cols) and activations act (n columns of height rows), it returns
// out[j][t] = sum_i W[i][j] * act[t][i].
func MatMul(w [][]int32, act [][]int32, cols int) [][]int32 {
	n := len(act)
	out := make([][]int32, cols)
	for j := range out {
		out[j] = make([]int32, n)
	}
	for t := 0; t < n; t++ {
		for j := 0; j < cols; j++ {
			var sum int32
			for i := 0; i < len(w) && i < len(act[t]); i++ {
				if j < len(w[i]) {
					sum += w[i][j] * act[t][i]
				}
			}
			out[j][t] = sum
		}
	}
	return out
}

// PipelineCycles is the analytic occupancy the array should measure for n
// streamed columns: fill (rows), stream (n), drain (cols), minus the one
// cycle of overlap between fill and the first commit.
func PipelineCycles(rows, cols, n int) int {
	return n + rows + cols - 1
}
