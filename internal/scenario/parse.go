package scenario

// parse.go reads the declarative scenario text: a line-oriented,
// Go-flavoured format (no YAML/JSON dependency) where each line is one
// directive and '#' starts a comment. The full grammar, one directive
// per line, order irrelevant except that duplicates are rejected:
//
//	scenario <name>
//	fleet initial=N [min=N max=N] [tiers=70%:fast,30%:slow]
//	routing round-robin|least-queued|least-work
//	policy <label> [preemptive] [mechanism=<label>]
//	scaler <label> slo=<duration> [tick=<duration>]
//	models <name> [<name>...]
//	seed <n>
//	warmup <fraction>
//	segment <duration>
//	load <f> [<f>...]
//	at <duration> fail|restore|cordon|uncordon npu<i>
//	at <duration> slowdown npu<i> x<factor>
//	assert slo_violation_frac < <f>
//	assert tier <name> slo_violation_frac < <f>
//	assert fleet between <lo> <hi> during <from> <to>
//	assert recovered_by <duration>
//
// Durations use Go syntax ("40ms", "1.5s"); NPU targets accept "npu2"
// or bare "2"; slowdown factors accept "x2.5" or bare "2.5". Errors
// carry the line number.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serving"
)

// defaultModels is the interactive mix scenarios serve unless a models
// directive overrides it: the light models, so single-digit-millisecond
// SLOs are attainable and a 40ms segment holds tens of requests (the
// same mix the autoscale surfaces default to).
var defaultModels = []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"}

// Parse reads a scenario from its text form and validates it.
func Parse(src string) (*Scenario, error) {
	sc := &Scenario{
		Policy:     "PREMA",
		Preemptive: true,
		Routing:    cluster.LeastWork,
		Models:     append([]string(nil), defaultModels...),
	}
	seen := map[string]int{}
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if idx := strings.IndexByte(text, '#'); idx >= 0 {
			text = text[:idx]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		// The repeatable directives accumulate; everything else must
		// appear at most once, so a typo'd override fails loudly.
		if key != "at" && key != "assert" {
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate %q directive (first on line %d)", line, key, prev)
			}
			seen[key] = line
		}
		if err := sc.parseDirective(key, fields[1:]); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", line, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseDirective dispatches one directive line (fields after the
// keyword).
func (sc *Scenario) parseDirective(key string, args []string) error {
	switch key {
	case "scenario":
		if len(args) != 1 {
			return fmt.Errorf("usage: scenario <name>")
		}
		sc.Name = args[0]
	case "fleet":
		return sc.parseFleet(args)
	case "routing":
		if len(args) != 1 {
			return fmt.Errorf("usage: routing round-robin|least-queued|least-work")
		}
		switch args[0] {
		case "round-robin":
			sc.Routing = cluster.RoundRobin
		case "least-queued":
			sc.Routing = cluster.LeastQueued
		case "least-work":
			sc.Routing = cluster.LeastWork
		default:
			return fmt.Errorf("unknown routing policy %q (known: round-robin least-queued least-work)", args[0])
		}
	case "policy":
		return sc.parsePolicy(args)
	case "scaler":
		return sc.parseScaler(args)
	case "models":
		if len(args) == 0 {
			return fmt.Errorf("usage: models <name> [<name>...]")
		}
		sc.Models = append([]string(nil), args...)
	case "seed":
		if len(args) != 1 {
			return fmt.Errorf("usage: seed <n>")
		}
		v, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", args[0], err)
		}
		sc.Seed = v
	case "warmup":
		if len(args) != 1 {
			return fmt.Errorf("usage: warmup <fraction>")
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return fmt.Errorf("bad warmup fraction %q: %w", args[0], err)
		}
		sc.Warmup = v
	case "segment":
		if len(args) != 1 {
			return fmt.Errorf("usage: segment <duration>")
		}
		d, err := parseDuration(args[0])
		if err != nil {
			return err
		}
		sc.Segment = d
	case "load":
		if len(args) == 0 {
			return fmt.Errorf("usage: load <f> [<f>...]")
		}
		loads := make([]float64, len(args))
		for i, a := range args {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return fmt.Errorf("bad load %q: %w", a, err)
			}
			loads[i] = v
		}
		sc.Load = loads
	case "at":
		return sc.parseEvent(args)
	case "assert":
		return sc.parseAssert(args)
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return nil
}

// parseFleet reads "fleet initial=N [min=N max=N] [tiers=<template>]".
func (sc *Scenario) parseFleet(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fleet initial=N [min=N max=N] [tiers=70%%:fast,30%%:slow]")
	}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("fleet wants key=value pairs, got %q", a)
		}
		if k == "tiers" {
			sc.Fleet.Tiers = v
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad fleet %s %q: %w", k, v, err)
		}
		switch k {
		case "initial":
			sc.Fleet.Initial = n
		case "min":
			sc.Fleet.Min = n
		case "max":
			sc.Fleet.Max = n
		default:
			return fmt.Errorf("unknown fleet key %q (known: initial min max tiers)", k)
		}
	}
	return nil
}

// parsePolicy reads "policy <label> [preemptive] [mechanism=<label>]".
func (sc *Scenario) parsePolicy(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: policy <label> [preemptive] [mechanism=<label>]")
	}
	sc.Policy, sc.Preemptive, sc.Selector = args[0], false, ""
	for _, a := range args[1:] {
		if a == "preemptive" {
			sc.Preemptive = true
			continue
		}
		if v, ok := strings.CutPrefix(a, "mechanism="); ok {
			sc.Selector = v
			continue
		}
		return fmt.Errorf("unknown policy option %q (known: preemptive mechanism=<label>)", a)
	}
	return nil
}

// parseScaler reads "scaler <label> slo=<duration> [tick=<duration>]".
func (sc *Scenario) parseScaler(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scaler <label> slo=<duration> [tick=<duration>]")
	}
	sc.Scaler = args[0]
	for _, a := range args[1:] {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("scaler wants key=value options, got %q", a)
		}
		d, err := parseDuration(v)
		if err != nil {
			return err
		}
		switch k {
		case "slo":
			sc.SLO = d
		case "tick":
			sc.Tick = d
		default:
			return fmt.Errorf("unknown scaler option %q (known: slo tick)", k)
		}
	}
	if sc.SLO == 0 {
		return fmt.Errorf("scaler %q needs slo=<duration>", sc.Scaler)
	}
	return nil
}

// parseEvent reads "at <duration> <op> npu<i> [x<factor>]".
func (sc *Scenario) parseEvent(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: at <duration> fail|slowdown|restore|cordon|uncordon npu<i> [x<factor>]")
	}
	at, err := parseDuration(args[0])
	if err != nil {
		return err
	}
	var kind serving.OpKind
	switch args[1] {
	case "fail":
		kind = serving.FailNPU
	case "slowdown":
		kind = serving.SlowNPU
	case "restore":
		kind = serving.RestoreNPU
	case "cordon":
		kind = serving.CordonNPU
	case "uncordon":
		kind = serving.UncordonNPU
	default:
		return fmt.Errorf("unknown operation %q (known: fail slowdown restore cordon uncordon)", args[1])
	}
	idx, err := parseNPU(args[2])
	if err != nil {
		return err
	}
	op := serving.NodeOp{Kind: kind, NPU: idx}
	rest := args[3:]
	if kind == serving.SlowNPU {
		if len(rest) != 1 {
			return fmt.Errorf("slowdown wants a factor: at %s slowdown npu%d x<factor>", args[0], idx)
		}
		f, err := strconv.ParseFloat(strings.TrimPrefix(rest[0], "x"), 64)
		if err != nil {
			return fmt.Errorf("bad slowdown factor %q: %w", rest[0], err)
		}
		op.Factor = f
	} else if len(rest) != 0 {
		return fmt.Errorf("unexpected arguments %v after %s", rest, args[1])
	}
	sc.Events = append(sc.Events, Event{At: at, Op: op})
	return nil
}

// parseAssert reads the four assertion forms.
func (sc *Scenario) parseAssert(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: assert slo_violation_frac|tier|fleet|recovered_by ...")
	}
	switch args[0] {
	case "tier":
		if len(args) != 5 || args[2] != "slo_violation_frac" || args[3] != "<" {
			return fmt.Errorf("usage: assert tier <name> slo_violation_frac < <f>")
		}
		v, err := strconv.ParseFloat(args[4], 64)
		if err != nil {
			return fmt.Errorf("bad violation bound %q: %w", args[4], err)
		}
		sc.Asserts = append(sc.Asserts, Assertion{Kind: AssertTierSLO, Tier: args[1], Max: v})
	case "slo_violation_frac":
		if len(args) != 3 || args[1] != "<" {
			return fmt.Errorf("usage: assert slo_violation_frac < <f>")
		}
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad violation bound %q: %w", args[2], err)
		}
		sc.Asserts = append(sc.Asserts, Assertion{Kind: AssertSLO, Max: v})
	case "fleet":
		if len(args) != 7 || args[1] != "between" || args[4] != "during" {
			return fmt.Errorf("usage: assert fleet between <lo> <hi> during <from> <to>")
		}
		lo, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad fleet bound %q: %w", args[2], err)
		}
		hi, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("bad fleet bound %q: %w", args[3], err)
		}
		from, err := parseDuration(args[5])
		if err != nil {
			return err
		}
		to, err := parseDuration(args[6])
		if err != nil {
			return err
		}
		sc.Asserts = append(sc.Asserts, Assertion{
			Kind: AssertFleetBetween, Lo: lo, Hi: hi, From: from, To: to,
		})
	case "recovered_by":
		if len(args) != 2 {
			return fmt.Errorf("usage: assert recovered_by <duration>")
		}
		by, err := parseDuration(args[1])
		if err != nil {
			return err
		}
		sc.Asserts = append(sc.Asserts, Assertion{Kind: AssertRecoveredBy, By: by})
	default:
		return fmt.Errorf("unknown assertion %q (known: slo_violation_frac tier fleet recovered_by)", args[0])
	}
	return nil
}

// parseDuration wraps time.ParseDuration with the scenario error shape.
func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q (want Go syntax, e.g. 40ms)", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}

// parseNPU accepts "npu2" or bare "2".
func parseNPU(s string) (int, error) {
	idx, err := strconv.Atoi(strings.TrimPrefix(s, "npu"))
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("bad NPU target %q (want npu<i> or a non-negative index)", s)
	}
	return idx, nil
}
