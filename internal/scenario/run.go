package scenario

// run.go is the scenario executor: it opens a streaming node session
// with the scenario's fleet and scheduler, arms the fault-injection
// schedule, offers the load ramp on the deterministic stream clock,
// advances past the last event and asserted window, drains, and
// evaluates the assertions into a Report. Everything downstream of the
// seed is deterministic, so the same scenario text replays
// byte-identically (Report.Render included) — the property that lets
// the scenarios/ corpus run as a regression suite.

import (
	"fmt"
	"time"

	"repro/internal/serving"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// runResult bundles what assertion evaluation and report building need
// from a finished run.
type runResult struct {
	sc     *Scenario
	srv    *serving.Server
	events []serving.NodeEvent
	stats  serving.NodeStats
	n      int // requests offered
}

func (r *runResult) cycles(d time.Duration) int64 { return r.srv.NPU().Cycles(d) }
func (r *runResult) millis(c int64) float64       { return r.srv.NPU().Millis(c) }

// Run executes one scenario against the server's hardware and workload
// configuration. A failed assertion fails the report (Report.Passed),
// not the run; Run errors only on invalid scenarios or a run the
// session itself rejects (a wiped-out fleet, a misdirected operation).
func Run(srv *serving.Server, sc *Scenario) (*Report, error) {
	return RunWithTrace(srv, sc, nil)
}

// RunWithTrace executes one scenario with a telemetry handle attached
// to the node session: the report additionally carries the merged
// per-request trace (Report.Events, when tr.Tracer is set) and the
// tick-metric series (Report.Samples, when tr.Recorder is set and the
// scenario has a scaler — samples land on the autoscale tick). A nil tr
// is exactly Run: the simulated stream is identical either way, only
// observed.
func RunWithTrace(srv *serving.Server, sc *Scenario, tr *telemetry.Trace) (rep *Report, rerr error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var scale *serving.AutoscaleConfig
	if sc.Scaler != "" {
		scale = &serving.AutoscaleConfig{
			Scaler:  sc.Scaler,
			SLO:     sc.SLO,
			Tick:    sc.Tick,
			MinNPUs: sc.Fleet.Min,
			MaxNPUs: sc.Fleet.Max,
		}
	}
	var tiers []serving.Tier
	if sc.Fleet.Tiers != "" {
		var err error
		if tiers, err = serving.FleetFromTemplate(srv.NPU(), sc.Fleet.Tiers); err != nil {
			return nil, err
		}
	}
	ns, err := srv.OpenNode(serving.NodeConfig{
		NPUs:    sc.Fleet.Initial,
		Fleet:   tiers,
		Routing: sc.Routing,
		Trace:   tr,
		Session: serving.SessionConfig{
			Policy:         sc.Policy,
			Preemptive:     sc.Preemptive,
			Selector:       sc.Selector,
			Horizon:        sc.Horizon(),
			WarmupFraction: sc.Warmup,
		},
		Autoscale: scale,
	})
	if err != nil {
		return nil, err
	}
	// Close's error joins the report's: a teardown failure after a clean
	// run still means the run's state was not what the caller believes
	// (the exact error-swallowing class premalint's errdrop rule exists
	// to catch).
	defer func() {
		if cerr := ns.Close(); cerr != nil && rerr == nil {
			rep, rerr = nil, fmt.Errorf("scenario: closing node session: %w", cerr)
		}
	}()

	for i, e := range sc.Events {
		if err := ns.Schedule(e.At, e.Op); err != nil {
			return nil, fmt.Errorf("scenario: event %d: %w", i, err)
		}
	}

	seed := sc.Seed
	if seed == 0 {
		seed = 0x5E55 // the prema facade's fixed default, so a no-event
		// scenario is comparable to a plain node session run
	}
	n, err := ns.OfferRamp(serving.Spec{
		Horizon:    sc.Segment,
		Models:     sc.Models,
		BatchSizes: []int{1},
	}, sc.Load, workload.RNGFor(seed, 0))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	// Flush events scheduled past the last arrival (a late failure, a
	// recovery window an assertion watches) before sealing the stream.
	if err := ns.AdvanceTo(sc.Span()); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	st, err := ns.Drain()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	run := &runResult{sc: sc, srv: srv, events: ns.Timeline(), stats: st, n: n}
	rep = buildReport(run)
	// Harvest the telemetry before the deferred Close seals the session —
	// trace assembly refreshes backends, which a closed session refuses.
	if tr != nil && tr.Tracer != nil {
		events, err := ns.TraceEvents()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		rep.Events = events
	}
	if tr != nil && tr.Recorder != nil {
		rep.Samples = tr.Recorder.Samples()
	}
	return rep, nil
}
