package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serving"
)

// TestParseFull reads every directive kind once and checks the parsed
// scenario field by field.
func TestParseFull(t *testing.T) {
	src := `
# full-surface scenario
scenario everything
fleet initial=2 min=1 max=6
routing least-queued
policy PREMA preemptive
scaler queue-depth slo=8ms tick=2ms
models CNN-AN RNN-SA
seed 42
warmup 0.25
segment 40ms
load 0.5 2 0.5
at 80ms fail npu0
at 90ms slowdown npu1 x2.5
at 120ms restore npu1
at 130ms cordon npu2
at 150ms uncordon npu2
assert slo_violation_frac < 0.3
assert fleet between 1 6 during 0ms 200ms
assert recovered_by 160ms
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "everything" {
		t.Errorf("name = %q", sc.Name)
	}
	if sc.Fleet != (Fleet{Initial: 2, Min: 1, Max: 6}) {
		t.Errorf("fleet = %+v", sc.Fleet)
	}
	if sc.Routing != cluster.LeastQueued {
		t.Errorf("routing = %v", sc.Routing)
	}
	if sc.Policy != "PREMA" || !sc.Preemptive {
		t.Errorf("policy = %q preemptive=%v", sc.Policy, sc.Preemptive)
	}
	if sc.Scaler != "queue-depth" || sc.SLO != 8*time.Millisecond || sc.Tick != 2*time.Millisecond {
		t.Errorf("scaler = %q slo=%v tick=%v", sc.Scaler, sc.SLO, sc.Tick)
	}
	if len(sc.Models) != 2 || sc.Models[0] != "CNN-AN" || sc.Models[1] != "RNN-SA" {
		t.Errorf("models = %v", sc.Models)
	}
	if sc.Seed != 42 || sc.Warmup != 0.25 || sc.Segment != 40*time.Millisecond {
		t.Errorf("seed=%d warmup=%v segment=%v", sc.Seed, sc.Warmup, sc.Segment)
	}
	if len(sc.Load) != 3 || sc.Load[1] != 2 {
		t.Errorf("load = %v", sc.Load)
	}
	if len(sc.Events) != 5 {
		t.Fatalf("events = %d, want 5", len(sc.Events))
	}
	slow := sc.Events[1]
	if slow.At != 90*time.Millisecond || slow.Op.Kind != serving.SlowNPU ||
		slow.Op.NPU != 1 || slow.Op.Factor != 2.5 {
		t.Errorf("slowdown event = %+v", slow)
	}
	if len(sc.Asserts) != 3 {
		t.Fatalf("asserts = %d, want 3", len(sc.Asserts))
	}
	if a := sc.Asserts[0]; a.Kind != AssertSLO || a.Max != 0.3 {
		t.Errorf("slo assert = %+v", a)
	}
	if a := sc.Asserts[1]; a.Kind != AssertFleetBetween || a.Lo != 1 || a.Hi != 6 ||
		a.From != 0 || a.To != 200*time.Millisecond {
		t.Errorf("fleet assert = %+v", a)
	}
	if a := sc.Asserts[2]; a.Kind != AssertRecoveredBy || a.By != 160*time.Millisecond {
		t.Errorf("recovery assert = %+v", a)
	}
	if sc.Horizon() != 120*time.Millisecond {
		t.Errorf("horizon = %v, want 120ms", sc.Horizon())
	}
	if sc.Span() != 200*time.Millisecond {
		t.Errorf("span = %v, want 200ms (the fleet assert's window)", sc.Span())
	}
}

// TestParseDefaults: a minimal scenario inherits PREMA preemptive
// scheduling, least-work routing and the default model mix.
func TestParseDefaults(t *testing.T) {
	sc, err := Parse("scenario tiny\nfleet initial=1\nsegment 10ms\nload 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Policy != "PREMA" || !sc.Preemptive {
		t.Errorf("default policy = %q preemptive=%v", sc.Policy, sc.Preemptive)
	}
	if sc.Routing != cluster.LeastWork {
		t.Errorf("default routing = %v", sc.Routing)
	}
	if len(sc.Models) != len(defaultModels) {
		t.Errorf("default models = %v", sc.Models)
	}
}

// TestParseErrors locks in the error surface: every malformed line is
// reported with its line number, and semantic validation failures name
// the offending directive.
func TestParseErrors(t *testing.T) {
	const valid = "scenario s\nfleet initial=2\nsegment 10ms\nload 1\n"
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", valid + "flee initial=2\n", `line 5: unknown directive "flee"`},
		{"duplicate directive", valid + "segment 20ms\n", "line 5: duplicate \"segment\" directive (first on line 3)"},
		{"bad duration", "scenario s\nfleet initial=1\nsegment tenms\nload 1\n", "line 3"},
		{"negative duration", valid + "at -5ms fail npu0\n", "line 5"},
		{"slowdown without factor", valid + "at 5ms slowdown npu0\n", "line 5"},
		{"factor on fail", valid + "at 5ms fail npu0 x2\n", "line 5"},
		{"bad npu", valid + "at 5ms fail gpu0\n", "line 5"},
		{"bad assert form", valid + "assert latency < 3\n", "line 5"},
		{"fleet assert empty window", valid + "assert fleet between 1 2 during 20ms 10ms\n", "window [20ms, 10ms] is empty"},
		{"unknown routing", valid + "routing fastest\n", `unknown routing policy "fastest"`},
		{"missing name", "fleet initial=1\nsegment 10ms\nload 1\n", "name"},
		{"no load", "scenario s\nfleet initial=1\nsegment 10ms\n", "load"},
		{"all-zero load", "scenario s\nfleet initial=1\nsegment 10ms\nload 0 0\n", "load"},
		{"fleet bounds without scaler", "scenario s\nfleet initial=2 min=1 max=4\nsegment 10ms\nload 1\n", "scaler"},
		{"scaler without slo", valid + "scaler queue-depth\n", "slo"},
		{"unknown model", valid + "models CNN-XX\n", "CNN-XX"},
		{"warmup out of range", valid + "warmup 1.5\n", "warmup"},
		{"slo assert without scaler", valid + "assert slo_violation_frac < 0.5\n", "scaler"},
		{"tier assert malformed", valid + "assert tier fast latency < 0.5\n", "line 5"},
		{"tier assert without scaler", valid + "assert tier fast slo_violation_frac < 0.5\n", "scaler"},
		{"tier assert untiered fleet",
			"scenario s\nfleet initial=2 min=1 max=4\nscaler queue-depth slo=8ms\nsegment 10ms\nload 1\n" +
				"assert tier fast slo_violation_frac < 0.5\n",
			"needs a tiered fleet"},
		{"tier assert unknown tier",
			"scenario s\nfleet initial=2 min=2 max=4 tiers=50%:fast,50%:slow\nscaler queue-depth slo=8ms\nsegment 10ms\nload 1\n" +
				"assert tier turbo slo_violation_frac < 0.5\n",
			`tier "turbo" not in fleet template`},
		{"tier assert bound out of range",
			"scenario s\nfleet initial=2 min=2 max=4 tiers=50%:fast,50%:slow\nscaler queue-depth slo=8ms\nsegment 10ms\nload 1\n" +
				"assert tier fast slo_violation_frac < 1.5\n",
			"outside (0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseTierAssert: the per-tier SLO assertion parses against a
// tiered fleet and carries the tier name and bound.
func TestParseTierAssert(t *testing.T) {
	sc, err := Parse("scenario s\nfleet initial=2 min=2 max=4 tiers=70%:fast,30%:slow\n" +
		"scaler queue-depth slo=8ms\nsegment 10ms\nload 1\n" +
		"assert tier slow slo_violation_frac < 0.4\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Asserts) != 1 {
		t.Fatalf("asserts = %d, want 1", len(sc.Asserts))
	}
	a := sc.Asserts[0]
	if a.Kind != AssertTierSLO || a.Tier != "slow" || a.Max != 0.4 {
		t.Errorf("tier assert = %+v, want kind=AssertTierSLO tier=slow max=0.4", a)
	}
}

// TestAssertionString: the rendered forms match the grammar the parser
// accepts, so reports echo assertions in re-parseable shape.
func TestAssertionString(t *testing.T) {
	cases := []struct {
		a    Assertion
		want string
	}{
		{Assertion{Kind: AssertSLO, Max: 0.3}, "assert slo_violation_frac < 0.3"},
		{Assertion{Kind: AssertFleetBetween, Lo: 1, Hi: 6, To: 200 * time.Millisecond},
			"assert fleet between 1 6 during 0s 200ms"},
		{Assertion{Kind: AssertRecoveredBy, By: 160 * time.Millisecond},
			"assert recovered_by 160ms"},
		{Assertion{Kind: AssertTierSLO, Tier: "slow", Max: 0.4},
			"assert tier slow slo_violation_frac < 0.4"},
	}
	for _, tc := range cases {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
