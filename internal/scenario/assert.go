package scenario

// assert.go is the scenario assertion engine: each assertion is a
// machine-checkable claim about the run — the SLO-violation fraction,
// the fleet-size envelope over a window, or recovery from the first
// disruption by a deadline — evaluated against the node's fleet
// timeline and served statistics. A failed assertion fails the report,
// never the run: chaos scenarios exist to observe degraded behaviour,
// so the executor always finishes and reports.

import (
	"fmt"
	"time"

	"repro/internal/serving"
)

// AssertKind identifies an assertion form.
type AssertKind int

const (
	// AssertSLO bounds the fraction of measured requests exceeding the
	// scaler's latency SLO: slo_violation_frac < Max. It requires an
	// attached scaler (the SLO defines the fraction).
	AssertSLO AssertKind = iota
	// AssertFleetBetween bounds the routable fleet size over a window:
	// Lo <= fleet <= Hi at every instant of [From, To].
	AssertFleetBetween
	// AssertRecoveredBy requires the routable fleet to have returned to
	// at least its size before the first disruption (the first fail or
	// cordon event) at some instant by the deadline By — a later
	// voluntary scale-down does not undo recovery. It passes vacuously
	// when the scenario injects no disruption.
	AssertRecoveredBy
	// AssertTierSLO bounds one hardware tier's SLO-violation fraction:
	// tier <name> slo_violation_frac < Max. It requires a scaler and a
	// tiered fleet template naming the tier.
	AssertTierSLO
)

// Assertion is one pass/fail condition of a scenario.
type Assertion struct {
	// Kind selects the form; the fields below apply per kind.
	Kind AssertKind
	// Max is AssertSLO's exclusive violation-fraction bound.
	Max float64
	// Lo, Hi, From, To are AssertFleetBetween's envelope and window.
	Lo, Hi   int
	From, To time.Duration
	// By is AssertRecoveredBy's deadline.
	By time.Duration
	// Tier is AssertTierSLO's tier name.
	Tier string
}

// String renders the assertion in the scenario text form.
func (a Assertion) String() string {
	switch a.Kind {
	case AssertSLO:
		return fmt.Sprintf("assert slo_violation_frac < %g", a.Max)
	case AssertFleetBetween:
		return fmt.Sprintf("assert fleet between %d %d during %s %s", a.Lo, a.Hi, a.From, a.To)
	case AssertRecoveredBy:
		return fmt.Sprintf("assert recovered_by %s", a.By)
	case AssertTierSLO:
		return fmt.Sprintf("assert tier %s slo_violation_frac < %g", a.Tier, a.Max)
	default:
		return fmt.Sprintf("assert <unknown kind %d>", int(a.Kind))
	}
}

// validate checks the assertion's shape against its scenario.
func (a Assertion) validate(sc *Scenario) error {
	switch a.Kind {
	case AssertSLO:
		if sc.Scaler == "" {
			return fmt.Errorf("slo_violation_frac needs a scaler (the SLO defines the fraction)")
		}
		if a.Max <= 0 || a.Max > 1 {
			return fmt.Errorf("violation bound %v outside (0, 1]", a.Max)
		}
	case AssertFleetBetween:
		if a.Lo < 0 || a.Hi < a.Lo {
			return fmt.Errorf("fleet envelope [%d, %d] is empty", a.Lo, a.Hi)
		}
		if a.From < 0 || a.To < a.From {
			return fmt.Errorf("window [%s, %s] is empty", a.From, a.To)
		}
	case AssertRecoveredBy:
		if a.By <= 0 {
			return fmt.Errorf("non-positive deadline %v", a.By)
		}
	case AssertTierSLO:
		if sc.Scaler == "" {
			return fmt.Errorf("tier slo_violation_frac needs a scaler (the SLO defines the fraction)")
		}
		if a.Max <= 0 || a.Max > 1 {
			return fmt.Errorf("violation bound %v outside (0, 1]", a.Max)
		}
		if sc.Fleet.Tiers == "" {
			return fmt.Errorf("tier assertion %q needs a tiered fleet (fleet tiers=...)", a.Tier)
		}
		specs, err := serving.ParseFleetTemplate(sc.Fleet.Tiers)
		if err != nil {
			return err
		}
		found := false
		for _, s := range specs {
			found = found || s.Name == a.Tier
		}
		if !found {
			return fmt.Errorf("tier %q not in fleet template %q", a.Tier, sc.Fleet.Tiers)
		}
	default:
		return fmt.Errorf("unknown assertion kind %d", int(a.Kind))
	}
	return nil
}

// AssertResult is one evaluated assertion.
type AssertResult struct {
	// Expr is the assertion in scenario text form.
	Expr string
	// Pass reports whether the claim held.
	Pass bool
	// Detail explains the outcome (the observed value, or the violating
	// instant).
	Detail string
}

// fleetAt walks the chronological fleet timeline and answers the
// routable fleet size at cycle c (events at exactly c have applied).
func fleetAt(events []serving.NodeEvent, c int64) int {
	v := 0
	for _, e := range events {
		if e.Cycle > c {
			break
		}
		v = e.Active
	}
	return v
}

// evaluate runs every assertion against the run's timeline and stats.
func (sc *Scenario) evaluate(run *runResult) []AssertResult {
	out := make([]AssertResult, len(sc.Asserts))
	for i, a := range sc.Asserts {
		res := AssertResult{Expr: a.String()}
		switch a.Kind {
		case AssertSLO:
			got := run.stats.Scaling.SLOViolationFrac
			res.Pass = got < a.Max
			res.Detail = fmt.Sprintf("violation fraction %.4f (bound %g)", got, a.Max)
		case AssertFleetBetween:
			res.Pass, res.Detail = evalFleetBetween(a, run)
		case AssertRecoveredBy:
			res.Pass, res.Detail = evalRecoveredBy(a, run)
		case AssertTierSLO:
			res.Pass, res.Detail = evalTierSLO(a, run)
		}
		out[i] = res
	}
	return out
}

// evalFleetBetween checks the fleet envelope at the window start and at
// every fleet change inside the window; between changes the step
// function is constant, so those instants cover the whole interval.
func evalFleetBetween(a Assertion, run *runResult) (bool, string) {
	fromC, toC := run.cycles(a.From), run.cycles(a.To)
	check := func(v int, at int64) (bool, string) {
		if v < a.Lo || v > a.Hi {
			return false, fmt.Sprintf("fleet %d at %.2fms outside [%d, %d]",
				v, run.millis(at), a.Lo, a.Hi)
		}
		return true, ""
	}
	if ok, detail := check(fleetAt(run.events, fromC), fromC); !ok {
		return false, detail
	}
	for _, e := range run.events {
		if e.Cycle <= fromC || e.Cycle > toC {
			continue
		}
		if ok, detail := check(e.Active, e.Cycle); !ok {
			return false, detail
		}
	}
	return true, fmt.Sprintf("fleet stayed in [%d, %d] over [%s, %s]", a.Lo, a.Hi, a.From, a.To)
}

// evalTierSLO checks one tier's realized SLO-violation fraction against
// the bound. Validation pinned the tier to the fleet template, so a
// missing breakdown means the tier served nothing measurable — reported
// as a vacuous pass with the reason.
func evalTierSLO(a Assertion, run *runResult) (bool, string) {
	for _, t := range run.stats.Tiers {
		if t.Tier != a.Tier {
			continue
		}
		if t.Measured == 0 {
			return true, fmt.Sprintf("tier %s measured no requests (vacuous)", a.Tier)
		}
		got := t.SLOViolationFrac
		return got < a.Max, fmt.Sprintf("tier %s violation fraction %.4f over %d measured (bound %g)",
			a.Tier, got, t.Measured, a.Max)
	}
	return true, fmt.Sprintf("tier %s measured no requests (vacuous)", a.Tier)
}

// evalRecoveredBy checks whether the fleet returned to its size just
// before the first disruption (fail or cordon) at any instant up to the
// deadline; a voluntary scale-down after that instant is the scaler
// tracking load, not a recovery failure.
func evalRecoveredBy(a Assertion, run *runResult) (bool, string) {
	baseline, disruptAt, disrupted := 0, int64(0), false
	for _, e := range run.events {
		if e.Kind == "fail" || e.Kind == "cordon" {
			baseline, disruptAt, disrupted = e.Active-e.Delta, e.Cycle, true
			break
		}
	}
	if !disrupted {
		return true, "no disruption injected (vacuous)"
	}
	byC, peak := run.cycles(a.By), 0
	for _, e := range run.events {
		if e.Cycle > disruptAt && e.Cycle <= byC && e.Active > peak {
			peak = e.Active
		}
	}
	if peak >= baseline {
		return true, fmt.Sprintf("fleet reached %d (pre-disruption %d) by %s", peak, baseline, a.By)
	}
	return false, fmt.Sprintf("fleet peaked at %d after the disruption, below pre-disruption %d by %s",
		peak, baseline, a.By)
}
