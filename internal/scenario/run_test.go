package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func newServer(t testing.TB) *serving.Server {
	t.Helper()
	cfg := npu.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	return serving.NewServer(cfg, sched.DefaultConfig(), gen)
}

// failureScenario is the canonical chaos run the replay and recovery
// tests share: a two-NPU fleet under a load step, one failure mid-run,
// closed-loop recovery asserted.
func failureScenario() *Scenario {
	return &Scenario{
		Name:       "replay-probe",
		Fleet:      Fleet{Initial: 2, Min: 2, Max: 6},
		Routing:    cluster.LeastWork,
		Policy:     "PREMA",
		Preemptive: true,
		Scaler:     "queue-depth",
		SLO:        8 * time.Millisecond,
		Models:     append([]string(nil), defaultModels...),
		Seed:       7,
		Segment:    40 * time.Millisecond,
		Load:       []float64{0.5, 2, 2, 2, 0.5},
		Events: []Event{
			{At: 80 * time.Millisecond, Op: serving.NodeOp{Kind: serving.FailNPU, NPU: 0}},
		},
		Asserts: []Assertion{
			{Kind: AssertRecoveredBy, By: 160 * time.Millisecond},
			{Kind: AssertFleetBetween, Lo: 1, Hi: 6, To: 200 * time.Millisecond},
		},
	}
}

// TestRunReplayByteIdentical is the determinism anchor: the same
// scenario on two fresh servers produces structurally equal reports and
// byte-identical renderings.
func TestRunReplayByteIdentical(t *testing.T) {
	first, err := Run(newServer(t), failureScenario())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(newServer(t), failureScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("replayed reports differ structurally")
	}
	if first.Render() != second.Render() {
		t.Error("replayed renderings differ")
	}
}

// TestSingleFailureRecovery: the canonical scenario passes — the
// failure lands on the timeline, reclaimed work is conserved, and the
// scaler refills the fleet before the asserted deadline.
func TestSingleFailureRecovery(t *testing.T) {
	rep, err := Run(newServer(t), failureScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("scenario failed:\n%s", rep.Render())
	}
	if rep.Requests == 0 {
		t.Error("no requests offered")
	}
	sawFail := false
	for _, e := range rep.Timeline {
		if e.Kind == "fail" {
			sawFail = true
			if e.NPU != 0 || e.Delta != -1 {
				t.Errorf("fail entry = %+v", e)
			}
		}
	}
	if !sawFail {
		t.Error("failure missing from the timeline")
	}
	for _, a := range rep.Asserts {
		if !a.Pass {
			t.Errorf("assert %q failed: %s", a.Expr, a.Detail)
		}
	}
}

// TestBrokenAssertionFailsReportNotRun: an unattainable assertion turns
// the verdict, never the run, into a failure.
func TestBrokenAssertionFailsReportNotRun(t *testing.T) {
	sc := failureScenario()
	sc.Asserts = append(sc.Asserts, Assertion{Kind: AssertSLO, Max: 0.0001})
	rep, err := Run(newServer(t), sc)
	if err != nil {
		t.Fatalf("run errored instead of reporting: %v", err)
	}
	if rep.Passed {
		t.Fatal("report passed despite an unattainable assertion")
	}
	broken := rep.Asserts[len(rep.Asserts)-1]
	if broken.Pass || broken.Detail == "" {
		t.Errorf("broken assert result = %+v, want Pass=false with detail", broken)
	}
	if !strings.Contains(rep.Render(), "FAIL") {
		t.Error("rendering does not surface the failure")
	}
}

// TestNoEventScenarioMatchesPlainRun: with an empty event schedule the
// executor is a transparent wrapper — its stats equal a hand-driven
// autoscaled node session over the identical stream.
func TestNoEventScenarioMatchesPlainRun(t *testing.T) {
	sc := &Scenario{
		Name:       "no-events",
		Fleet:      Fleet{Initial: 2, Min: 1, Max: 6},
		Routing:    cluster.LeastWork,
		Policy:     "PREMA",
		Preemptive: true,
		Scaler:     "queue-depth",
		SLO:        8 * time.Millisecond,
		Models:     append([]string(nil), defaultModels...),
		Segment:    40 * time.Millisecond, // Seed 0 → the facade default
		Load:       []float64{0.4, 1.5, 3.0, 1.5, 0.4},
	}
	rep, err := Run(newServer(t), sc)
	if err != nil {
		t.Fatal(err)
	}

	srv := newServer(t)
	ns, err := srv.OpenNode(serving.NodeConfig{
		NPUs:    2,
		Routing: cluster.LeastWork,
		Session: serving.SessionConfig{
			Policy:     "PREMA",
			Preemptive: true,
			Horizon:    sc.Horizon(),
		},
		Autoscale: &serving.AutoscaleConfig{
			Scaler:  "queue-depth",
			SLO:     8 * time.Millisecond,
			MinNPUs: 1,
			MaxNPUs: 6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	n, err := ns.OfferRamp(serving.Spec{
		Horizon:    sc.Segment,
		Models:     sc.Models,
		BatchSizes: []int{1},
	}, sc.Load, workload.RNGFor(0x5E55, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.AdvanceTo(sc.Span()); err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests != n {
		t.Errorf("scenario offered %d requests, plain run %d", rep.Requests, n)
	}
	// Summary.MeanNPUs integrates over the scenario span by design, so
	// compare the per-request statistics and the peak, then the raw
	// fleet timeline entry by entry — the strongest stream-identity
	// check available.
	if rep.Summary.MeanLatencyMS != st.MeanLatencyMS ||
		rep.Summary.P95LatencyMS != st.P95LatencyMS ||
		rep.Summary.SLOViolationFrac != st.Scaling.SLOViolationFrac ||
		rep.Summary.PeakNPUs != st.Scaling.PeakNPUs {
		t.Errorf("scenario summary %+v diverges from plain run (mean %v p95 %v viol %v peak %d)",
			rep.Summary, st.MeanLatencyMS, st.P95LatencyMS,
			st.Scaling.SLOViolationFrac, st.Scaling.PeakNPUs)
	}
	plain := ns.Timeline()
	if len(rep.Timeline) != len(plain) {
		t.Fatalf("scenario timeline has %d entries, plain run %d", len(rep.Timeline), len(plain))
	}
	for i, got := range rep.Timeline {
		want := plain[i]
		if got.Kind != want.Kind || got.NPU != want.NPU || got.Delta != want.Delta ||
			got.Fleet != want.Active || got.AtMS != srv.NPU().Millis(want.Cycle) {
			t.Errorf("timeline[%d] = %+v, plain run %+v", i, got, want)
		}
	}
}

// tieredScenario is a 50/50 two-tier fleet under a moderate ramp with
// a per-tier SLO assertion on each tier.
func tieredScenario() *Scenario {
	return &Scenario{
		Name:       "tiered-probe",
		Fleet:      Fleet{Initial: 4, Min: 2, Max: 8, Tiers: "50%:fast,50%:slow"},
		Routing:    cluster.LeastWork,
		Policy:     "PREMA",
		Preemptive: true,
		Scaler:     "queue-depth",
		SLO:        8 * time.Millisecond,
		Models:     append([]string(nil), defaultModels...),
		Seed:       23,
		Segment:    40 * time.Millisecond,
		Load:       []float64{1, 2, 1},
		Asserts: []Assertion{
			{Kind: AssertTierSLO, Tier: "fast", Max: 1},
			{Kind: AssertTierSLO, Tier: "slow", Max: 1},
		},
	}
}

// TestTracedRunObservesOnly: RunWithTrace must render the identical
// report as Run — telemetry observes the stream, never perturbs it —
// while additionally carrying the trace events, tick samples and tier
// breakdown.
func TestTracedRunObservesOnly(t *testing.T) {
	plain, err := Run(newServer(t), tieredScenario())
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.New()
	traced, err := RunWithTrace(newServer(t), tieredScenario(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != traced.Render() {
		t.Errorf("tracing changed the rendered report:\n--- plain\n%s\n--- traced\n%s",
			plain.Render(), traced.Render())
	}
	if len(plain.Events) != 0 || len(plain.Samples) != 0 {
		t.Errorf("untraced run carries telemetry: %d events, %d samples",
			len(plain.Events), len(plain.Samples))
	}
	if len(traced.Events) == 0 || len(traced.Samples) == 0 {
		t.Fatalf("traced run carries no telemetry: %d events, %d samples",
			len(traced.Events), len(traced.Samples))
	}
	if len(traced.Tiers) != 2 {
		t.Fatalf("tiered run reports %d tier breakdowns, want 2", len(traced.Tiers))
	}
	for _, a := range traced.Asserts {
		if !strings.HasPrefix(a.Expr, "assert tier ") {
			t.Errorf("assert expr %q, want the tier form", a.Expr)
		}
		if !a.Pass {
			t.Errorf("tier assert %q failed: %s", a.Expr, a.Detail)
		}
	}
}

// TestEvalTierSLO pins the tier assertion's three outcomes against a
// fabricated tier breakdown: pass under the bound, fail over it, and a
// vacuous pass when the tier measured nothing.
func TestEvalTierSLO(t *testing.T) {
	run := &runResult{stats: serving.NodeStats{Tiers: []serving.TierStats{
		{Tier: "fast", Measured: 100, SLOViolationFrac: 0.05},
		{Tier: "slow", Measured: 40, SLOViolationFrac: 0.5},
		{Tier: "idle", Measured: 0},
	}}}
	cases := []struct {
		tier   string
		max    float64
		pass   bool
		detail string
	}{
		{"fast", 0.1, true, "violation fraction 0.0500"},
		{"slow", 0.2, false, "violation fraction 0.5000"},
		{"idle", 0.2, true, "vacuous"},
		{"ghost", 0.2, true, "vacuous"},
	}
	for _, tc := range cases {
		pass, detail := evalTierSLO(Assertion{Kind: AssertTierSLO, Tier: tc.tier, Max: tc.max}, run)
		if pass != tc.pass || !strings.Contains(detail, tc.detail) {
			t.Errorf("tier %s bound %g: pass=%v detail=%q, want pass=%v detail containing %q",
				tc.tier, tc.max, pass, detail, tc.pass, tc.detail)
		}
	}
}

// TestWipeOutSurfaces: failing the only backend of a fixed fleet is a
// run error (the guard refuses to wipe the node out), not a report.
func TestWipeOutSurfaces(t *testing.T) {
	sc := &Scenario{
		Name:       "wipe-out",
		Fleet:      Fleet{Initial: 1},
		Routing:    cluster.LeastWork,
		Policy:     "PREMA",
		Preemptive: true,
		Models:     append([]string(nil), defaultModels...),
		Segment:    20 * time.Millisecond,
		Load:       []float64{0.5, 0.5},
		Events: []Event{
			{At: 10 * time.Millisecond, Op: serving.NodeOp{Kind: serving.FailNPU, NPU: 0}},
		},
	}
	rep, err := Run(newServer(t), sc)
	if err == nil {
		t.Fatalf("wipe-out ran to a report: %+v", rep)
	}
	if !strings.Contains(err.Error(), "last active") {
		t.Errorf("error = %q, want the last-active guard", err)
	}
}

// TestCorpusGreen parses and runs every scenario in the repository
// corpus; all of them must pass, keeping scenarios/ an executable
// regression suite.
func TestCorpusGreen(t *testing.T) {
	const dir = "../../scenarios"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if ext := filepath.Ext(e.Name()); ext != ".txt" && ext != ".scn" {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(newServer(t), sc)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed {
				t.Errorf("corpus scenario failed:\n%s", rep.Render())
			}
		})
	}
	if ran < 5 {
		t.Errorf("corpus has %d scenarios, want at least 5", ran)
	}
}

// BenchmarkScenarioReplay times one full scenario execution — parse
// excluded, session open through report build — the end-to-end cost a
// corpus run pays per file.
func BenchmarkScenarioReplay(b *testing.B) {
	srv := newServer(b)
	sc := failureScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(srv, sc)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("scenario failed mid-benchmark")
		}
	}
}
