// Package scenario is the declarative chaos-engineering layer over the
// streaming serving stack: a scenario names a fleet, a local scheduler,
// an optional autoscale policy, an offered-load ramp, a timed list of
// fault-injection events (NPU failures, slowdowns, cordons) and a list
// of assertions about how the system must behave under them. The
// executor drives a serving.NodeSession through the whole timeline on
// the deterministic stream clock, so the same scenario text and seed
// replay byte-for-byte — chaos becomes a reproducible regression
// artifact (the scenarios/ corpus at the repository root) instead of a
// one-off experiment.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/serving"
)

// Fleet is the scenario's NPU fleet shape.
type Fleet struct {
	// Initial is the fleet size the node opens with (>= 1).
	Initial int
	// Min and Max bound the fleet under autoscaling; both are zero (and
	// must be) when no scaler is attached and the fleet stays fixed.
	Min, Max int
	// Tiers is an optional weighted hardware-tier template
	// ("70%:fast,30%:slow", see serving.ParseFleetTemplate); empty
	// keeps the fleet homogeneous on the server's base config.
	Tiers string
}

// Event is one timed fault-injection operation.
type Event struct {
	// At is the stream instant the operation fires at.
	At time.Duration
	// Op is the operation (see serving.NodeOp: fail, slowdown, restore,
	// cordon, uncordon against one backend index).
	Op serving.NodeOp
}

// Scenario is one parsed declarative scenario. Build it with Parse (the
// text format) or construct it directly; Validate before Run either
// way (Run validates again).
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Fleet is the NPU fleet shape.
	Fleet Fleet
	// Routing is the node's router policy (default round-robin — the
	// cluster package's zero value; scenarios usually pick least-work).
	Routing cluster.RoutingPolicy
	// Policy, Preemptive and Selector configure every backend's local
	// scheduler (Policy defaults to "PREMA" preemptive when the text
	// omits the directive; a zero-value struct must set it explicitly).
	Policy     string
	Preemptive bool
	Selector   string
	// Scaler names the autoscale policy; empty keeps the fleet fixed at
	// Fleet.Initial. SLO is the scaler's P95 target (required with a
	// scaler) and Tick its evaluation period (0 = the serving default).
	Scaler string
	SLO    time.Duration
	Tick   time.Duration
	// Models restricts the request mix (defaults to the interactive
	// four-model mix scenarios are written against; see parse.go).
	Models []string
	// Seed drives the arrival sampling deterministically; 0 selects the
	// same fixed default the prema facade uses.
	Seed uint64
	// Warmup is the fraction of the horizon excluded from latency
	// statistics (0 = the serving default of 0.2).
	Warmup float64
	// Segment and Load define the offered-load ramp: segment i of
	// duration Segment offers Load[i] (normalized to one NPU's
	// capacity). The scenario horizon is Segment * len(Load).
	Segment time.Duration
	Load    []float64
	// Events is the fault-injection schedule; order is irrelevant
	// (firing order is by time, then list order at equal times).
	Events []Event
	// Asserts are the pass/fail conditions the report evaluates.
	Asserts []Assertion
}

// Horizon is the offered-load window: Segment * len(Load).
func (sc *Scenario) Horizon() time.Duration {
	return sc.Segment * time.Duration(len(sc.Load))
}

// Span is the full timeline the executor advances through: the load
// horizon extended past the last event and the last asserted window, so
// late failures fire and recovery windows are observed before Drain.
func (sc *Scenario) Span() time.Duration {
	span := sc.Horizon()
	for _, e := range sc.Events {
		if e.At > span {
			span = e.At
		}
	}
	for _, a := range sc.Asserts {
		if a.To > span {
			span = a.To
		}
		if a.By > span {
			span = a.By
		}
	}
	return span
}

// Validate checks the scenario against the registries and the executor's
// invariants, so a malformed scenario fails before any simulation runs.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name (add a 'scenario <name>' line)")
	}
	if sc.Fleet.Initial < 1 {
		return fmt.Errorf("scenario: fleet needs at least one initial NPU, got %d", sc.Fleet.Initial)
	}
	if sc.Fleet.Tiers != "" {
		if _, err := serving.ParseFleetTemplate(sc.Fleet.Tiers); err != nil {
			return fmt.Errorf("scenario: fleet tiers: %w", err)
		}
	}
	switch sc.Routing {
	case cluster.RoundRobin, cluster.LeastQueued, cluster.LeastWork:
	default:
		return fmt.Errorf("scenario: unknown routing policy %d", int(sc.Routing))
	}
	if sc.Policy == "" {
		return fmt.Errorf("scenario: missing scheduling policy")
	}
	if !sched.HasPolicy(sc.Policy) {
		return fmt.Errorf("scenario: unknown policy %q (known: %v)", sc.Policy, sched.PolicyNames())
	}
	if !sc.Preemptive && sc.Selector != "" {
		return fmt.Errorf("scenario: mechanism %q set on a non-preemptive policy", sc.Selector)
	}
	if sc.Selector != "" && !sched.HasSelector(sc.Selector) {
		return fmt.Errorf("scenario: unknown preemption mechanism %q (known: %v)",
			sc.Selector, sched.SelectorNames())
	}
	if sc.Scaler == "" {
		if sc.Fleet.Min != 0 || sc.Fleet.Max != 0 {
			return fmt.Errorf("scenario: fleet bounds [%d, %d] need a scaler (add a 'scaler' line or drop min/max)",
				sc.Fleet.Min, sc.Fleet.Max)
		}
		if sc.SLO != 0 || sc.Tick != 0 {
			return fmt.Errorf("scenario: slo/tick need a scaler")
		}
	} else {
		if !autoscale.Has(sc.Scaler) {
			return fmt.Errorf("scenario: unknown scaler %q (known: %v)", sc.Scaler, autoscale.Names())
		}
		if sc.SLO <= 0 {
			return fmt.Errorf("scenario: scaler %q needs a positive slo, got %v", sc.Scaler, sc.SLO)
		}
	}
	for _, name := range sc.Models {
		if _, err := dnn.ByName(name); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if sc.Warmup < 0 || sc.Warmup >= 1 {
		return fmt.Errorf("scenario: warmup fraction %v outside [0, 1)", sc.Warmup)
	}
	if sc.Segment <= 0 {
		return fmt.Errorf("scenario: non-positive load segment %v", sc.Segment)
	}
	if len(sc.Load) == 0 {
		return fmt.Errorf("scenario: empty load ramp")
	}
	any := false
	for i, l := range sc.Load {
		if l < 0 {
			return fmt.Errorf("scenario: load segment %d is negative (%v)", i, l)
		}
		any = any || l > 0
	}
	if !any {
		return fmt.Errorf("scenario: load ramp offers nothing (all segments zero)")
	}
	for i, e := range sc.Events {
		if err := validateEvent(e); err != nil {
			return fmt.Errorf("scenario: event %d: %w", i, err)
		}
	}
	for i, a := range sc.Asserts {
		if err := a.validate(sc); err != nil {
			return fmt.Errorf("scenario: assertion %d (%s): %w", i, a, err)
		}
	}
	return nil
}

// validateEvent checks the statically checkable operation invariants;
// state-dependent ones (failing an already-failed NPU, cordoning the
// last active backend) surface when the executor fires the operation.
func validateEvent(e Event) error {
	if e.At < 0 {
		return fmt.Errorf("negative time %v", e.At)
	}
	if e.Op.NPU < 0 {
		return fmt.Errorf("negative NPU index %d", e.Op.NPU)
	}
	switch e.Op.Kind {
	case serving.SlowNPU:
		if e.Op.Factor <= 1 {
			return fmt.Errorf("slowdown factor must exceed 1, got %v", e.Op.Factor)
		}
	case serving.FailNPU, serving.RestoreNPU, serving.CordonNPU, serving.UncordonNPU:
		if e.Op.Factor != 0 {
			return fmt.Errorf("factor %v set on a %s operation", e.Op.Factor, e.Op.Kind)
		}
	default:
		return fmt.Errorf("unknown operation kind %d", int(e.Op.Kind))
	}
	return nil
}
