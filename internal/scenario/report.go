package scenario

// report.go turns a finished scenario run into its verdict: the
// annotated fleet timeline, the evaluated assertions and the served
// summary, plus a deterministic ASCII rendering (the premasim -scenario
// output). Render is pure formatting over the report's fields, so a
// byte-identical report renders byte-identically — determinism tests
// compare the rendered text directly.

import (
	"fmt"
	"strings"

	"repro/internal/serving"
	"repro/internal/telemetry"
)

// TimelineEntry is one fleet-timeline event on the wall clock.
type TimelineEntry struct {
	// AtMS is the stream instant in milliseconds.
	AtMS float64
	// Kind is "start", "scale", "fail", "slowdown", "restore", "cordon"
	// or "uncordon".
	Kind string
	// NPU is the target backend index; -1 for start and scale events.
	NPU int
	// Delta is the change in routable backends the event caused.
	Delta int
	// Fleet is the routable backend count after the event.
	Fleet int
	// Note carries event detail (reclaimed request count, slow factor).
	Note string
}

// Summary is the scenario's served statistics.
type Summary struct {
	// MeanLatencyMS, P50LatencyMS, P95LatencyMS and P99LatencyMS are
	// the node-wide steady-state latency statistics in milliseconds.
	MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS float64
	// SLOLatencyMS and SLOViolationFrac report against the scaler's
	// latency target; both are zero without a scaler.
	SLOLatencyMS, SLOViolationFrac float64
	// MeanNPUs is the time-weighted mean routable fleet size over the
	// scenario span; PeakNPUs is the largest size reached.
	MeanNPUs float64
	PeakNPUs int
}

// Report is one executed scenario's outcome.
type Report struct {
	// Name is the scenario's declared name.
	Name string
	// Passed is true iff every assertion held.
	Passed bool
	// Requests is how many requests the load ramp offered.
	Requests int
	// FleetStart is the initial fleet size; SpanMS the full timeline
	// length the executor advanced through, in milliseconds.
	FleetStart int
	SpanMS     float64
	// Timeline is the fleet history with every scaling action and fired
	// fault injection, in stream order.
	Timeline []TimelineEntry
	// Asserts are the evaluated assertions, in scenario order.
	Asserts []AssertResult
	// Summary is the served statistics.
	Summary Summary
	// Tiers is the per-tier statistics breakdown; nil on homogeneous
	// fleets.
	Tiers []serving.TierStats
	// Events is the merged per-request trace and Samples the tick-metric
	// series of a traced run (RunWithTrace); both nil otherwise. Render
	// ignores them — the ASCII transcript is byte-identical either way.
	Events  []telemetry.Event
	Samples []telemetry.TickSample
}

// buildReport derives the report from a finished run.
func buildReport(run *runResult) *Report {
	sc := run.sc
	r := &Report{
		Name:       sc.Name,
		Requests:   run.n,
		FleetStart: sc.Fleet.Initial,
		SpanMS:     float64(sc.Span().Microseconds()) / 1000,
		Timeline:   make([]TimelineEntry, len(run.events)),
	}
	for i, e := range run.events {
		r.Timeline[i] = TimelineEntry{
			AtMS: run.millis(e.Cycle), Kind: e.Kind, NPU: e.NPU,
			Delta: e.Delta, Fleet: e.Active, Note: e.Note,
		}
	}
	r.Asserts = sc.evaluate(run)
	r.Passed = true
	for _, a := range r.Asserts {
		r.Passed = r.Passed && a.Pass
	}
	st := run.stats
	r.Summary = Summary{
		MeanLatencyMS: st.MeanLatencyMS,
		P50LatencyMS:  st.P50LatencyMS,
		P95LatencyMS:  st.P95LatencyMS,
		P99LatencyMS:  st.P99LatencyMS,
		MeanNPUs:      MeanFleet(run.events, run.cycles(sc.Span())),
		PeakNPUs:      PeakFleet(run.events),
	}
	if st.Scaling != nil {
		r.Summary.SLOLatencyMS = st.Scaling.SLOLatencyMS
		r.Summary.SLOViolationFrac = st.Scaling.SLOViolationFrac
	}
	r.Tiers = st.Tiers
	return r
}

// MeanFleet integrates the routable-fleet step function over [0, span].
// It is exported for the control plane's run reports, which summarize
// the identical NodeEvent timelines.
func MeanFleet(events []serving.NodeEvent, span int64) float64 {
	if len(events) == 0 || span <= 0 {
		return 0
	}
	var area float64
	prev := events[0]
	for _, e := range events[1:] {
		if e.Cycle > span {
			break
		}
		area += float64(prev.Active) * float64(e.Cycle-prev.Cycle)
		prev = e
	}
	area += float64(prev.Active) * float64(span-prev.Cycle)
	return area / float64(span)
}

// PeakFleet is the largest routable count the timeline reached.
func PeakFleet(events []serving.NodeEvent) int {
	peak := 0
	for _, e := range events {
		if e.Active > peak {
			peak = e.Active
		}
	}
	return peak
}

// Render formats the report as the ASCII scenario transcript: verdict,
// annotated fleet timeline (one '#' per routable NPU), assertion lines
// and the served summary. The output is deterministic.
func (r *Report) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %q — %s\n", r.Name, verdict)
	fmt.Fprintf(&b, "%d requests over %.0fms, fleet started at %d NPUs\n\n",
		r.Requests, r.SpanMS, r.FleetStart)

	b.WriteString("fleet timeline:\n")
	for _, e := range r.Timeline {
		bar := strings.Repeat("#", e.Fleet)
		label := e.Kind
		if e.NPU >= 0 {
			label = fmt.Sprintf("%s npu%d", e.Kind, e.NPU)
		}
		if e.Delta != 0 {
			label = fmt.Sprintf("%s %+d", label, e.Delta)
		}
		if e.Note != "" {
			label = fmt.Sprintf("%s (%s)", label, e.Note)
		}
		fmt.Fprintf(&b, "  %9.2fms  %d NPUs %-10s %s\n", e.AtMS, e.Fleet, bar, label)
	}

	if len(r.Asserts) > 0 {
		b.WriteString("\nasserts:\n")
		for _, a := range r.Asserts {
			mark := "PASS"
			if !a.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  %s  %s — %s\n", mark, a.Expr, a.Detail)
		}
	}

	s := r.Summary
	fmt.Fprintf(&b, "\nlatency: mean %.2fms  p50 %.2fms  p95 %.2fms\n",
		s.MeanLatencyMS, s.P50LatencyMS, s.P95LatencyMS)
	if s.SLOLatencyMS > 0 {
		fmt.Fprintf(&b, "slo: %.1fms target, %.1f%% of measured requests violated\n",
			s.SLOLatencyMS, s.SLOViolationFrac*100)
	}
	fmt.Fprintf(&b, "fleet: mean %.2f NPUs, peak %d\n", s.MeanNPUs, s.PeakNPUs)
	return b.String()
}
