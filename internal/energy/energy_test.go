package energy

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.PJPerMAC = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MAC energy should fail")
	}
	inverted := Default()
	inverted.PJPerDRAMByte = inverted.PJPerSRAMByte / 2
	if err := inverted.Validate(); err == nil {
		t.Error("DRAM cheaper than SRAM should fail")
	}
	neg := Default()
	neg.StaticWatts = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative static power should fail")
	}
}

func TestProgramEnergyScalesWithWork(t *testing.T) {
	cfg := npu.DefaultConfig()
	c, err := compiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	small, err := c.Compile(dnn.MobileNet(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.Compile(dnn.VGG16(), 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	es, eb := m.Program(cfg, small), m.Program(cfg, big)
	if eb.Total() <= es.Total() {
		t.Errorf("VGG b16 (%.3f J) should cost more than MobileNet b1 (%.3f J)",
			eb.Total(), es.Total())
	}
	for _, e := range []Breakdown{es, eb} {
		if e.ComputeJ <= 0 || e.SRAMJ <= 0 || e.StaticJ <= 0 {
			t.Errorf("breakdown has non-positive components: %+v", e)
		}
	}
	// At a plausible scale: a single inference costs millijoules to a
	// few joules, not kilojoules.
	if eb.Total() > 10 || es.Total() < 1e-6 {
		t.Errorf("implausible energy scale: %.4g J / %.4g J", eb.Total(), es.Total())
	}
}

func runOnce(t *testing.T, policy string, preemptive bool, selector string) (Breakdown, npu.Config) {
	t.Helper()
	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := gen.Generate(workload.Spec{Tasks: 8}, workload.RNGFor(0xE6, 1))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.ByName(policy, scfg)
	if err != nil {
		t.Fatal(err)
	}
	var sel sched.MechanismSelector
	if selector != "" {
		if sel, err = sched.SelectorByName(selector); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sim.New(sim.Options{NPU: cfg, Sched: scfg, Policy: pol,
		Preemptive: preemptive, Selector: sel}, workload.SchedTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var costs []preempt.Cost
	for _, ev := range res.Preemptions {
		costs = append(costs, ev.Cost)
	}
	return Default().Run(cfg, res.Tasks, costs, res.Cycles), cfg
}

func TestRunEnergyAccountsPreemptionCosts(t *testing.T) {
	base, _ := runOnce(t, "FCFS", false, "")
	prema, _ := runOnce(t, "PREMA", true, "dynamic")
	if base.CheckpointJ != 0 || base.WastedJ != 0 {
		t.Error("non-preemptive run should have no preemption energy")
	}
	// PREMA's checkpoint energy must be a tiny fraction of total —
	// the Section VI-F negligibility argument.
	if frac := prema.CheckpointJ / prema.Total(); frac > 0.01 {
		t.Errorf("checkpoint energy fraction %.4f should be negligible", frac)
	}
}

func TestPREMAEnergyOverheadNegligible(t *testing.T) {
	// Section VI-F's argument: PREMA's own costs (checkpoint DMA,
	// scheduling logic) are negligible, so over the same work its
	// total energy matches the baseline within a fraction of a
	// percent — any throughput gain is therefore a direct
	// energy-efficiency gain in sustained serving.
	base, _ := runOnce(t, "FCFS", false, "")
	prema, _ := runOnce(t, "PREMA", true, "dynamic")
	gain := EfficiencyGain(base, prema)
	if gain < 0.99 || gain > 1.05 {
		t.Errorf("same-work energy ratio %.4f should be ~1 (PREMA overhead negligible)", gain)
	}
	if EfficiencyGain(base, Breakdown{}) != 0 {
		t.Error("degenerate candidate should yield zero gain")
	}
}
