// Package energy quantifies the Section VI-F energy argument: PREMA's
// own hardware (the context table and the scheduling logic) is
// negligible, so system energy is dominated by execution time and data
// movement — meaning throughput improvements translate directly into
// energy-efficiency improvements.
//
// The model is a standard event-energy accounting over the committed
// instruction stream: per-MAC compute energy, per-byte SRAM and DRAM
// access energy, and a static (leakage + clock) power integrated over
// occupancy. Coefficients are representative 28-32nm-class values of the
// accelerator literature; as everywhere in this reproduction, relative
// comparisons are the point, not absolute joules.
package energy

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
)

// Model holds the energy coefficients.
type Model struct {
	// PJPerMAC is the 16-bit multiply-accumulate energy (~0.5-1 pJ in
	// 28nm, including local register movement).
	PJPerMAC float64
	// PJPerSRAMByte is on-chip buffer access energy per byte.
	PJPerSRAMByte float64
	// PJPerDRAMByte is off-chip access energy per byte (~100x SRAM).
	PJPerDRAMByte float64
	// StaticWatts is leakage plus always-on clocking power.
	StaticWatts float64
}

// Default returns representative coefficients.
func Default() Model {
	return Model{
		PJPerMAC:      0.8,
		PJPerSRAMByte: 1.2,
		PJPerDRAMByte: 120,
		StaticWatts:   8,
	}
}

// Validate checks the coefficients.
func (m Model) Validate() error {
	if m.PJPerMAC <= 0 || m.PJPerSRAMByte <= 0 || m.PJPerDRAMByte <= 0 {
		return fmt.Errorf("energy: non-positive per-event coefficients")
	}
	if m.StaticWatts < 0 {
		return fmt.Errorf("energy: negative static power")
	}
	if m.PJPerDRAMByte <= m.PJPerSRAMByte {
		return fmt.Errorf("energy: DRAM access must cost more than SRAM")
	}
	return nil
}

// Breakdown is the per-task or per-run energy decomposition in joules.
type Breakdown struct {
	ComputeJ    float64
	SRAMJ       float64
	DRAMJ       float64
	StaticJ     float64
	CheckpointJ float64
	WastedJ     float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.ComputeJ + b.SRAMJ + b.DRAMJ + b.StaticJ + b.CheckpointJ + b.WastedJ
}

const pj = 1e-12

// Program estimates the energy of one isolated inference: all MACs, all
// weight and activation traffic, and static power over the program's
// runtime.
func (m Model) Program(cfg npu.Config, p *npu.Program) Breakdown {
	var b Breakdown
	b.ComputeJ = float64(p.TotalMACs) * m.PJPerMAC * pj
	// Data movement: approximate DRAM traffic as the bandwidth-bound
	// fraction of each instruction's effective latency (the simulator
	// folded transfer time into max(compute, memory)); a simple and
	// conservative proxy is bytes-per-cycle times the memory-bound
	// share. We instead charge the architectural traffic directly:
	// weights once, activations in and out per layer.
	var bytes int64
	for _, in := range p.Instrs {
		switch in.Op {
		case npu.LoadTile, npu.StoreTile:
			bytes += int64(float64(in.Cycles) * cfg.BytesPerCycle())
		}
	}
	// Streaming traffic of GEMM tiles (activations into the array) is
	// SRAM-side; charge it per MAC operand pair at 2 bytes each.
	b.SRAMJ = float64(p.TotalMACs) * 2 * 2 * m.PJPerSRAMByte * pj / float64(cfg.SH)
	b.DRAMJ = float64(bytes) * m.PJPerDRAMByte * pj
	b.StaticJ = m.StaticWatts * cfg.Seconds(p.TotalCycles)
	return b
}

// Run estimates the energy of a completed multi-tenant run: static power
// over the makespan, each task's compute/data energy, plus the
// preemption-specific costs — checkpoint/restore DMA traffic and the
// re-executed work KILL discarded.
func (m Model) Run(cfg npu.Config, tasks []*sched.Task, events []preempt.Cost, makespan int64) Breakdown {
	var b Breakdown
	for _, t := range tasks {
		prog := t.Exec.Program()
		tb := m.Program(cfg, prog)
		b.ComputeJ += tb.ComputeJ
		b.SRAMJ += tb.SRAMJ
		b.DRAMJ += tb.DRAMJ
		// Wasted work re-burns compute energy proportionally.
		if t.WastedCycles > 0 && prog.TotalCycles > 0 {
			frac := float64(t.WastedCycles) / float64(prog.TotalCycles)
			b.WastedJ += tb.ComputeJ * frac
		}
	}
	for _, ev := range events {
		// Checkpoint save + later restore both traverse DRAM.
		b.CheckpointJ += float64(2*ev.SavedBytes) * m.PJPerDRAMByte * pj
	}
	b.StaticJ = m.StaticWatts * cfg.Seconds(makespan)
	return b
}

// EfficiencyGain compares two runs over the same work: the ratio of
// total energies (baseline over candidate), which — with PREMA's
// negligible hardware overhead — tracks the throughput ratio as
// Section VI-F argues.
func EfficiencyGain(baseline, candidate Breakdown) float64 {
	if candidate.Total() <= 0 {
		return 0
	}
	return baseline.Total() / candidate.Total()
}
