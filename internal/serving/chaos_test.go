package serving

// chaos_test.go locks in the fault-injection contracts of the node
// session: failures reclaim exactly the in-flight work and conserve
// requests, slowdowns stretch routed work consistently across the fluid
// and realized views, cordons take backends out of rotation reversibly,
// the whole event machinery replays deterministically per seed, and a
// scaler recovers the fleet after an injected loss.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func mustSchedule(t *testing.T, ns *NodeSession, at time.Duration, op NodeOp) {
	t.Helper()
	if err := ns.Schedule(at, op); err != nil {
		t.Fatal(err)
	}
}

func openChaosNode(t *testing.T, s *Server, npus int, scale *AutoscaleConfig) *NodeSession {
	t.Helper()
	ns, err := s.OpenNode(NodeConfig{
		NPUs: npus, Routing: cluster.LeastWork,
		Session:   SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
		Autoscale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// TestScheduleValidation exercises the schedule-time guards.
func TestScheduleValidation(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 2, nil)
	cases := []struct {
		name string
		at   time.Duration
		op   NodeOp
	}{
		{"negative time", -time.Millisecond, NodeOp{Kind: FailNPU}},
		{"negative npu", time.Millisecond, NodeOp{Kind: FailNPU, NPU: -1}},
		{"slow factor 1", time.Millisecond, NodeOp{Kind: SlowNPU, NPU: 0, Factor: 1}},
		{"factor on fail", time.Millisecond, NodeOp{Kind: FailNPU, NPU: 0, Factor: 2}},
		{"unknown kind", time.Millisecond, NodeOp{Kind: OpKind(99), NPU: 0}},
	}
	for _, c := range cases {
		if err := ns.Schedule(c.at, c.op); err == nil {
			t.Errorf("%s: schedule accepted", c.name)
		}
	}

	// The clock never rewinds: an operation timestamped before the
	// stream clock is refused, while scheduling ahead of a live stream
	// is the control plane's bread and butter and must work.
	if _, err := ns.Offer(Spec{Horizon: 20 * time.Millisecond, OfferedLoad: 1,
		Models: rampModels, BatchSizes: []int{1}}, workload.RNGFor(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ns.Schedule(time.Millisecond, NodeOp{Kind: CordonNPU, NPU: 0}); err == nil {
		t.Error("schedule in the past accepted")
	}
	if err := ns.Schedule(30*time.Millisecond, NodeOp{Kind: CordonNPU, NPU: 0}); err != nil {
		t.Errorf("mid-stream future schedule refused: %v", err)
	}
	// A mid-stream failure without the work ledger enabled at open has
	// nothing to reclaim from and must refuse cleanly.
	if err := ns.Schedule(40*time.Millisecond, NodeOp{Kind: FailNPU, NPU: 1}); err == nil {
		t.Error("mid-stream failure without TrackWork accepted")
	}
}

// TestFailureReclaimConservesRequests: a mid-stream failure removes the
// backend from rotation, re-routes its in-flight work, and the node
// still accounts for every submitted request exactly once.
func TestFailureReclaimConservesRequests(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 3, nil)
	mustSchedule(t, ns, 60*time.Millisecond, NodeOp{Kind: FailNPU, NPU: 1})

	n := offerRamp(t, ns, 17)
	if err := ns.AdvanceTo(rampHorizon); err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("aggregate requests = %d, submitted %d: reclaim lost or duplicated work", st.Requests, n)
	}
	total := 0
	for _, r := range ns.Routed() {
		total += r
	}
	if total != n {
		t.Errorf("sum of routed streams = %d, submitted %d", total, n)
	}

	events := ns.Timeline()
	var failed bool
	for _, e := range events {
		if e.Kind == "fail" {
			failed = true
			if e.NPU != 1 || e.Delta != -1 || e.Active != 2 {
				t.Errorf("fail event = %+v, want npu1 delta -1 active 2", e)
			}
		}
	}
	if !failed {
		t.Fatal("no fail event in timeline")
	}
}

// TestFailureStopsRoutingToLostBackend: after the failure instant no
// new work lands on the failed backend.
func TestFailureStopsRoutingToLostBackend(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 2, nil)
	const failAt = 40 * time.Millisecond
	mustSchedule(t, ns, failAt, NodeOp{Kind: FailNPU, NPU: 0})
	offerRamp(t, ns, 5)

	failCycle := s.cfg.Cycles(failAt)
	for _, b := range ns.backends[0].reqs {
		if b.Arrival > failCycle {
			t.Errorf("request arriving at %d routed to npu0 after its failure at %d", b.Arrival, failCycle)
		}
	}
}

// TestChaosDeterministicReplay: the same configuration, schedule and
// seed produce identical timelines and statistics across two runs.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() ([]NodeEvent, NodeStats) {
		s := newServer(t)
		ns := openChaosNode(t, s, 3, &AutoscaleConfig{
			Scaler: "queue-depth", SLO: 8 * time.Millisecond, MinNPUs: 1, MaxNPUs: 6,
		})
		mustSchedule(t, ns, 50*time.Millisecond, NodeOp{Kind: SlowNPU, NPU: 0, Factor: 2.5})
		mustSchedule(t, ns, 70*time.Millisecond, NodeOp{Kind: FailNPU, NPU: 1})
		mustSchedule(t, ns, 110*time.Millisecond, NodeOp{Kind: RestoreNPU, NPU: 0})
		offerRamp(t, ns, 23)
		if err := ns.AdvanceTo(rampHorizon); err != nil {
			t.Fatal(err)
		}
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return ns.Timeline(), st
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if len(ev1) != len(ev2) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Errorf("timeline[%d] differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if st1.BatchStats != st2.BatchStats {
		t.Errorf("stats differ:\n %+v\n %+v", st1.BatchStats, st2.BatchStats)
	}
	if st1.Scaling.SLOViolationFrac != st2.Scaling.SLOViolationFrac ||
		len(st1.Scaling.Events) != len(st2.Scaling.Events) {
		t.Errorf("scaling views differ: %+v vs %+v", st1.Scaling, st2.Scaling)
	}
}

// TestSlowdownDegradesLatency: the same stream served with a slowed
// backend must realize a worse mean latency than the nominal fleet.
func TestSlowdownDegradesLatency(t *testing.T) {
	run := func(slow bool) BatchStats {
		s := newServer(t)
		ns := openChaosNode(t, s, 2, nil)
		if slow {
			mustSchedule(t, ns, 20*time.Millisecond, NodeOp{Kind: SlowNPU, NPU: 0, Factor: 4})
		}
		offerRamp(t, ns, 9)
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st.BatchStats
	}
	nominal := run(false)
	slowed := run(true)
	if slowed.MeanLatencyMS <= nominal.MeanLatencyMS {
		t.Errorf("4x slowdown did not degrade latency: slowed %.3fms <= nominal %.3fms",
			slowed.MeanLatencyMS, nominal.MeanLatencyMS)
	}
}

// TestCordonDrainRestore: a cordoned backend receives nothing while out
// of rotation and serves again after uncordon.
func TestCordonDrainRestore(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 2, nil)
	const cordonAt, uncordonAt = 40 * time.Millisecond, 120 * time.Millisecond
	mustSchedule(t, ns, cordonAt, NodeOp{Kind: CordonNPU, NPU: 0})
	mustSchedule(t, ns, uncordonAt, NodeOp{Kind: UncordonNPU, NPU: 0})
	offerRamp(t, ns, 29)

	lo, hi := s.cfg.Cycles(cordonAt), s.cfg.Cycles(uncordonAt)
	var during, after int
	for _, b := range ns.backends[0].reqs {
		switch {
		case b.Arrival > lo && b.Arrival <= hi:
			during++
		case b.Arrival > hi:
			after++
		}
	}
	if during != 0 {
		t.Errorf("%d requests routed to npu0 while cordoned", during)
	}
	if after == 0 {
		t.Error("no requests routed to npu0 after uncordon")
	}
	// The cordon window changed the routable count both ways.
	var deltas []int
	for _, e := range ns.Timeline() {
		if e.Kind == "cordon" || e.Kind == "uncordon" {
			deltas = append(deltas, e.Delta)
		}
	}
	if len(deltas) != 2 || deltas[0] != -1 || deltas[1] != +1 {
		t.Errorf("cordon/uncordon deltas = %v, want [-1 +1]", deltas)
	}
}

// TestScalerRecoversAfterFailure is the closed-loop recovery anchor: a
// queue-depth scaler under sustained load refills the fleet after an
// injected failure.
func TestScalerRecoversAfterFailure(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 2, &AutoscaleConfig{
		Scaler: "queue-depth", SLO: 8 * time.Millisecond, MinNPUs: 2, MaxNPUs: 6,
	})
	const failAt = 80 * time.Millisecond
	mustSchedule(t, ns, failAt, NodeOp{Kind: FailNPU, NPU: 0})
	// Sustained 2x load so the scaler has pressure to respond to.
	if _, err := ns.OfferRamp(Spec{Horizon: rampSegment, Models: rampModels,
		BatchSizes: []int{1}}, []float64{2, 2, 2, 2, 2}, workload.RNGFor(31, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ns.AdvanceTo(rampHorizon); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Drain(); err != nil {
		t.Fatal(err)
	}

	events := ns.Timeline()
	failCycle := s.cfg.Cycles(failAt)
	var preFail, postFail int
	var sawFail bool
	for _, e := range events {
		if e.Kind == "fail" {
			sawFail = true
			preFail = e.Active - e.Delta
		}
		if sawFail && e.Cycle >= failCycle {
			if e.Active > postFail {
				postFail = e.Active
			}
		}
	}
	if !sawFail {
		t.Fatal("no fail event fired")
	}
	if postFail < preFail {
		t.Errorf("scaler never recovered the fleet: pre-failure %d, post-failure peak %d", preFail, postFail)
	}
}

// TestFailLastActiveSurfaces: failing the only routable backend must
// surface an error, not leave the routers with nothing.
func TestFailLastActiveSurfaces(t *testing.T) {
	s := newServer(t)
	ns := openChaosNode(t, s, 1, nil)
	mustSchedule(t, ns, 10*time.Millisecond, NodeOp{Kind: FailNPU, NPU: 0})
	if err := ns.AdvanceTo(20 * time.Millisecond); err == nil {
		t.Fatal("failing the last active NPU did not error")
	}
}

// TestNoEventScheduleIsIdentical: a session with work tracking enabled
// but no operation ever firing matches a plain session byte-for-byte.
func TestNoEventScheduleIsIdentical(t *testing.T) {
	run := func(withOp bool) NodeStats {
		s := newServer(t)
		ns := openChaosNode(t, s, 2, nil)
		if withOp {
			// Scheduled far beyond the stream: tracking is on, the
			// queue is live, but nothing fires before Drain.
			mustSchedule(t, ns, time.Hour, NodeOp{Kind: FailNPU, NPU: 0})
		}
		offerRamp(t, ns, 41)
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(false)
	tracked := run(true)
	if plain.BatchStats != tracked.BatchStats {
		t.Errorf("armed-but-idle chaos machinery changed output:\n %+v\n %+v",
			plain.BatchStats, tracked.BatchStats)
	}
}
