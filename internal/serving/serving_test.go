package serving

import (
	"math"
	"testing"
	"time"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/workload"
)

func newServer(t testing.TB) *Server {
	t.Helper()
	cfg := npu.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(cfg, sched.DefaultConfig(), gen)
}

func TestGenerateValidation(t *testing.T) {
	s := newServer(t)
	rng := workload.RNGFor(1, 1)
	if _, err := s.Generate(Spec{Horizon: time.Second}, rng); err == nil {
		t.Error("zero load should be rejected")
	}
	if _, err := s.Generate(Spec{OfferedLoad: 0.5}, rng); err == nil {
		t.Error("zero horizon should be rejected")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.6}
	tasks, err := s.Generate(spec, workload.RNGFor(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) < 5 {
		t.Fatalf("only %d requests generated", len(tasks))
	}
	horizon := npu.DefaultConfig().Cycles(spec.Horizon)
	prev := int64(-1)
	for _, task := range tasks {
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Errorf("arrival %d outside [0,%d)", task.Arrival, horizon)
		}
		if task.Arrival < prev {
			t.Error("arrivals not ordered")
		}
		prev = task.Arrival
	}
}

func TestModerateLoadIsStable(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 400 * time.Millisecond, OfferedLoad: 0.5}
	st, err := s.Run(spec, "FCFS", false, "", workload.RNGFor(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Measured == 0 || st.Requests < st.Measured {
		t.Fatalf("bad counts: %+v", st)
	}
	// At half load, queueing should be modest: mean NTT well under 10.
	if st.MeanNTT > 10 {
		t.Errorf("mean NTT %v too high for 0.5 load", st.MeanNTT)
	}
	if st.P95LatencyMS < st.MeanLatencyMS {
		t.Error("p95 below mean")
	}
	if st.P99LatencyMS < st.P95LatencyMS {
		t.Error("p99 below p95")
	}
	if st.ThroughputPerSec <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestLatencyKneeGrowsWithLoad(t *testing.T) {
	s := newServer(t)
	lat := func(load float64) float64 {
		st, err := s.Run(Spec{Horizon: 400 * time.Millisecond, OfferedLoad: load},
			"FCFS", false, "", workload.RNGFor(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanNTT
	}
	lo, hi := lat(0.3), lat(0.95)
	if hi <= lo {
		t.Errorf("near-saturation NTT (%.2f) should exceed light-load NTT (%.2f)", hi, lo)
	}
}

func TestPREMAHoldsLatencyLongerThanFCFS(t *testing.T) {
	// The serving-level restatement of the paper's claim: at high
	// offered load, PREMA's predictive preemption keeps mean NTT far
	// below NP-FCFS on the same arrival stream.
	s := newServer(t)
	spec := Spec{Horizon: 400 * time.Millisecond, OfferedLoad: 0.85}
	fcfs, err := s.Run(spec, "FCFS", false, "", workload.RNGFor(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	prema, err := s.Run(spec, "PREMA", true, "dynamic", workload.RNGFor(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if prema.MeanNTT >= fcfs.MeanNTT {
		t.Errorf("PREMA NTT %.2f should beat FCFS %.2f at high load",
			prema.MeanNTT, fcfs.MeanNTT)
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 100 * time.Millisecond, OfferedLoad: 0.5}
	if _, err := s.Run(spec, "NOPE", false, "", workload.RNGFor(6, 6)); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := s.Run(spec, "SJF", true, "bogus", workload.RNGFor(6, 6)); err == nil {
		t.Error("unknown selector should error")
	}
}

// TestStatsSmallSamplePath covers the uniform percentile guard: with a
// single measured request every percentile collapses to that sample (no
// NaN leaks into any field), with zero measured requests statsOf errors,
// and a hand-built degenerate set falls back along P99 -> P95 -> P50 ->
// mean instead of reporting NaN anywhere.
func TestStatsSmallSamplePath(t *testing.T) {
	s := newServer(t)

	// One measured sample: every percentile equals it.
	one := sampleSet{requests: 3, dispatched: 3, latencies: []float64{7.5},
		ntts: []float64{2.0}, makespan: 1 << 20}
	st, err := s.statsOf(&one)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"mean": st.MeanLatencyMS, "p50": st.P50LatencyMS,
		"p95": st.P95LatencyMS, "p99": st.P99LatencyMS,
	} {
		if v != 7.5 {
			t.Errorf("single-sample %s = %v, want 7.5", name, v)
		}
	}
	if math.IsNaN(st.SLAViolations4x) || st.SLAViolations4x != 0 {
		t.Errorf("single-sample SLA violations = %v, want 0", st.SLAViolations4x)
	}

	// No measured samples: an error, never NaN-laden statistics.
	if _, err := s.statsOf(&sampleSet{requests: 2, dispatched: 2}); err == nil {
		t.Error("empty measured set should error")
	}

	// The guard chain itself: each level falls back to the next coarser
	// statistic.
	if got := guardPercentile(math.NaN(), 4.2); got != 4.2 {
		t.Errorf("guardPercentile(NaN) = %v, want fallback 4.2", got)
	}
	if got := guardPercentile(9.9, 4.2); got != 9.9 {
		t.Errorf("guardPercentile(9.9) = %v, want 9.9", got)
	}
}

// TestSteadyStatsTinyWarmupSurvivors drives the small-sample path end to
// end: a warm-up cut that leaves very few measured requests must still
// produce finite, ordered percentiles.
func TestSteadyStatsTinyWarmupSurvivors(t *testing.T) {
	s := newServer(t)
	tasks, err := s.Generate(Spec{Horizon: 120 * time.Millisecond, OfferedLoad: 0.4},
		workload.RNGFor(21, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.simulate("FCFS", false, "", tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Cut just below the latest arrival: exactly the stragglers survive.
	var latest int64
	for _, task := range res.Tasks {
		if task.Arrival > latest {
			latest = task.Arrival
		}
	}
	st, err := s.steadyStats(res, latest) // the last arrival alone survives
	if err != nil {
		t.Fatal(err)
	}
	if st.Measured < 1 || st.Measured > 3 {
		t.Fatalf("expected a tiny survivor set, got %d", st.Measured)
	}
	for name, v := range map[string]float64{
		"mean": st.MeanLatencyMS, "p50": st.P50LatencyMS,
		"p95": st.P95LatencyMS, "p99": st.P99LatencyMS,
	} {
		if math.IsNaN(v) || v <= 0 {
			t.Errorf("tiny-sample %s = %v, want finite positive", name, v)
		}
	}
	if st.P50LatencyMS > st.P95LatencyMS || st.P95LatencyMS > st.P99LatencyMS {
		t.Errorf("percentiles out of order: p50=%v p95=%v p99=%v",
			st.P50LatencyMS, st.P95LatencyMS, st.P99LatencyMS)
	}
}

// TestStatsOfLeavesSamplesIntact locks in the no-aliasing contract
// behind the statecopy lint rule: sampleSet travels by pointer, so a
// callee that reordered or grew the latency slices in place would
// corrupt the caller's memoized samples (the session memo derives
// statistics from the same set repeatedly). statsOf must treat the set
// as read-only.
func TestStatsOfLeavesSamplesIntact(t *testing.T) {
	s := newServer(t)
	sm := sampleSet{
		requests: 4, dispatched: 4,
		latencies: []float64{9.0, 1.0, 5.0, 3.0},
		ntts:      []float64{3.0, 1.0, 2.0, 1.5},
		makespan:  1 << 20,
	}
	want := append([]float64(nil), sm.latencies...)
	wantNTT := append([]float64(nil), sm.ntts...)
	if _, err := s.statsOf(&sm); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sm.latencies[i] != want[i] {
			t.Fatalf("statsOf reordered latencies in place: %v (want %v)", sm.latencies, want)
		}
		if sm.ntts[i] != wantNTT[i] {
			t.Fatalf("statsOf reordered ntts in place: %v (want %v)", sm.ntts, wantNTT)
		}
	}
}
