package serving

import (
	"testing"
	"time"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/workload"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	cfg := npu.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(cfg, sched.DefaultConfig(), gen)
}

func TestGenerateValidation(t *testing.T) {
	s := newServer(t)
	rng := workload.RNGFor(1, 1)
	if _, err := s.Generate(Spec{Horizon: time.Second}, rng); err == nil {
		t.Error("zero load should be rejected")
	}
	if _, err := s.Generate(Spec{OfferedLoad: 0.5}, rng); err == nil {
		t.Error("zero horizon should be rejected")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.6}
	tasks, err := s.Generate(spec, workload.RNGFor(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) < 5 {
		t.Fatalf("only %d requests generated", len(tasks))
	}
	horizon := npu.DefaultConfig().Cycles(spec.Horizon)
	prev := int64(-1)
	for _, task := range tasks {
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Errorf("arrival %d outside [0,%d)", task.Arrival, horizon)
		}
		if task.Arrival < prev {
			t.Error("arrivals not ordered")
		}
		prev = task.Arrival
	}
}

func TestModerateLoadIsStable(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 400 * time.Millisecond, OfferedLoad: 0.5}
	st, err := s.Run(spec, "FCFS", false, "", workload.RNGFor(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Measured == 0 || st.Requests < st.Measured {
		t.Fatalf("bad counts: %+v", st)
	}
	// At half load, queueing should be modest: mean NTT well under 10.
	if st.MeanNTT > 10 {
		t.Errorf("mean NTT %v too high for 0.5 load", st.MeanNTT)
	}
	if st.P95LatencyMS < st.MeanLatencyMS {
		t.Error("p95 below mean")
	}
	if st.P99LatencyMS < st.P95LatencyMS {
		t.Error("p99 below p95")
	}
	if st.ThroughputPerSec <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestLatencyKneeGrowsWithLoad(t *testing.T) {
	s := newServer(t)
	lat := func(load float64) float64 {
		st, err := s.Run(Spec{Horizon: 400 * time.Millisecond, OfferedLoad: load},
			"FCFS", false, "", workload.RNGFor(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanNTT
	}
	lo, hi := lat(0.3), lat(0.95)
	if hi <= lo {
		t.Errorf("near-saturation NTT (%.2f) should exceed light-load NTT (%.2f)", hi, lo)
	}
}

func TestPREMAHoldsLatencyLongerThanFCFS(t *testing.T) {
	// The serving-level restatement of the paper's claim: at high
	// offered load, PREMA's predictive preemption keeps mean NTT far
	// below NP-FCFS on the same arrival stream.
	s := newServer(t)
	spec := Spec{Horizon: 400 * time.Millisecond, OfferedLoad: 0.85}
	fcfs, err := s.Run(spec, "FCFS", false, "", workload.RNGFor(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	prema, err := s.Run(spec, "PREMA", true, "dynamic", workload.RNGFor(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if prema.MeanNTT >= fcfs.MeanNTT {
		t.Errorf("PREMA NTT %.2f should beat FCFS %.2f at high load",
			prema.MeanNTT, fcfs.MeanNTT)
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 100 * time.Millisecond, OfferedLoad: 0.5}
	if _, err := s.Run(spec, "NOPE", false, "", workload.RNGFor(6, 6)); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := s.Run(spec, "SJF", true, "bogus", workload.RNGFor(6, 6)); err == nil {
		t.Error("unknown selector should error")
	}
}
