package serving

// chaos.go is the fault-injection surface of the streaming node
// session: timed operations (NPU failure, slowdown/restore,
// cordon/uncordon) scheduled on the deterministic stream clock and
// fired interleaved with the autoscaler's ticks as arrivals advance the
// session. The scenario engine (internal/scenario) is the declarative
// driver; the mechanics live here because they are inseparable from the
// routing state:
//
//   - fail: the backend is removed immediately (involuntary loss —
//     unlike the autoscaler's voluntary Retire, which lets routed work
//     finish). Work whose fluid horizon had drained by the failure
//     instant stays completed; everything still in flight is reclaimed
//     from the lost backend's stream and re-submitted through the
//     shared router at the failure time, exercising re-routing under
//     loss. An attached scaler sees the shrunken fleet on its next tick
//     and recovers toward the SLO.
//   - slowdown/restore: a slowed backend serves work routed to it
//     during the slow window at factor× its nominal service time — the
//     request's compiled program is stretched instruction-by-
//     instruction and its estimate scales with it, so the fluid router
//     state, the scaler's latency signal and the realized simulation
//     all see the degradation consistently. Work already queued before
//     the slowdown keeps its nominal speed (the approximation a
//     per-backend offline simulation affords); a reclaimed request
//     sheds any stretch when it is re-routed off a slowed backend.
//   - cordon/uncordon: the backend leaves rotation reversibly — its
//     routed work drains, nothing new lands on it, and no scale-down
//     credit is taken (the slot still counts against MaxNPUs).
//
// Everything is deterministic: operations fire in (time, schedule
// order), before any autoscale tick due at the same cycle, and before
// the routing decision of any arrival at or after their timestamp. The
// same stream plus the same schedule replays byte-identically, which is
// what makes chaos testable in CI (chaos_test.go and the scenario
// corpus lock this in).

import (
	"fmt"
	"math"
	"time"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// OpKind identifies a scheduled chaos operation.
type OpKind int

const (
	// FailNPU removes the backend involuntarily; its in-flight work is
	// re-routed through the node's router at the failure time.
	FailNPU OpKind = iota
	// SlowNPU degrades the backend: work routed to it while slowed
	// takes Factor times its nominal service time.
	SlowNPU
	// RestoreNPU returns a slowed backend to nominal speed.
	RestoreNPU
	// CordonNPU takes the backend out of rotation reversibly, with no
	// scale-down credit.
	CordonNPU
	// UncordonNPU returns a cordoned backend to rotation.
	UncordonNPU
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case FailNPU:
		return "fail"
	case SlowNPU:
		return "slowdown"
	case RestoreNPU:
		return "restore"
	case CordonNPU:
		return "cordon"
	case UncordonNPU:
		return "uncordon"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// NodeOp is one chaos operation against a node session's backend.
type NodeOp struct {
	// Kind selects the operation.
	Kind OpKind
	// NPU is the target backend index (in spin-up order: the initial
	// fleet is 0..NPUs-1, scale-ups append).
	NPU int
	// Factor is the service-time multiplier of a SlowNPU operation
	// (> 1); it must be zero for every other kind.
	Factor float64
}

// NodeEvent is one entry of the node's fleet timeline: the start
// anchor, every applied autoscaler action, and every fired chaos
// operation, in stream order.
type NodeEvent struct {
	// Cycle is the stream instant the event applied at.
	Cycle int64
	// Kind is "start", "scale", "drain", "fail", "slowdown",
	// "restore", "cordon" or "uncordon".
	Kind string
	// NPU is the target backend index; -1 for start and scale events.
	NPU int
	// Delta is the change in routable backends the event caused.
	Delta int
	// Active is the routable backend count after the event.
	Active int
	// Note carries event detail (reclaimed request count, slow factor).
	Note string
}

// nodeOp is a scheduled operation awaiting its fire time.
type nodeOp struct {
	at  int64 // stream cycle
	seq int   // schedule order, the tie-break at equal cycles
	op  NodeOp
}

// Schedule queues op to fire when the stream clock reaches at.
// Operations may be scheduled at any point of the stream so long as
// they are not in the past — the clock never rewinds — and fire
// deterministically as arrivals (or an explicit AdvanceTo) advance the
// clock past their timestamp: in time order, schedule order at equal
// times, and always before an autoscale tick due at the same cycle, so
// the scaler sees the post-event fleet. One exception: a FailNPU needs
// the reclaim ledger to have observed every routing decision from the
// first request on, so failures scheduled after traffic require the
// ledger enabled at open (NodeConfig.TrackWork).
func (ns *NodeSession) Schedule(at time.Duration, op NodeOp) error {
	if at < 0 {
		return fmt.Errorf("serving: negative operation time %v", at)
	}
	return ns.ScheduleCycle(ns.srv.cfg.Cycles(at), op)
}

// ScheduleCycle is Schedule on the cycle-granular stream clock — the
// control plane's entry point, which tracks virtual time in cycles and
// must not lose precision round-tripping through durations.
func (ns *NodeSession) ScheduleCycle(at int64, op NodeOp) error {
	if ns.closed {
		return fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return fmt.Errorf("serving: node session drained")
	}
	if at < 0 {
		return fmt.Errorf("serving: negative operation cycle %d", at)
	}
	if at < ns.lastArrival {
		return fmt.Errorf("serving: operation at cycle %d is in the past (stream clock at %d)",
			at, ns.lastArrival)
	}
	if op.NPU < 0 {
		return fmt.Errorf("serving: negative NPU index %d", op.NPU)
	}
	switch op.Kind {
	case SlowNPU:
		if op.Factor <= 1 {
			return fmt.Errorf("serving: slowdown factor must exceed 1, got %v", op.Factor)
		}
	case FailNPU, RestoreNPU, CordonNPU, UncordonNPU:
		if op.Factor != 0 {
			return fmt.Errorf("serving: factor %v set on a %s operation", op.Factor, op.Kind)
		}
	default:
		return fmt.Errorf("serving: unknown operation kind %d", int(op.Kind))
	}
	if op.Kind == FailNPU {
		// Failure reclaim needs the task behind every fluid horizon.
		// Before any traffic this enables tracking from a clean slate;
		// mid-stream it only succeeds if the ledger was already on
		// (idempotent), surfacing a clear error otherwise.
		if err := ns.state.TrackWork(); err != nil {
			return err
		}
	}
	ns.pending = append(ns.pending, nodeOp{at: at, seq: ns.opSeq, op: op})
	ns.opSeq++
	// Keep the queue sorted by (cycle, schedule order); schedules are
	// rare and the queue is short, so insertion sort is plenty.
	for i := len(ns.pending) - 1; i > 0; i-- {
		if ns.pending[i-1].at < ns.pending[i].at ||
			(ns.pending[i-1].at == ns.pending[i].at && ns.pending[i-1].seq < ns.pending[i].seq) {
			break
		}
		ns.pending[i-1], ns.pending[i] = ns.pending[i], ns.pending[i-1]
	}
	return nil
}

// AdvanceTo advances the stream clock to at without offering traffic,
// firing every scheduled operation and autoscale tick due on the way —
// the scenario executor's way to flush events past the last arrival
// (a failure after the final request, a recovery window) before Drain.
// The clock never moves backward; subsequent submissions must arrive at
// or after at.
func (ns *NodeSession) AdvanceTo(at time.Duration) error {
	return ns.AdvanceToCycle(ns.srv.cfg.Cycles(at))
}

// AdvanceToCycle is AdvanceTo on the cycle-granular stream clock — the
// control plane's stepping primitive: it advances virtual time between
// buffered arrivals without the duration round-trip losing cycles.
func (ns *NodeSession) AdvanceToCycle(now int64) error {
	if ns.closed {
		return fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return fmt.Errorf("serving: node session drained")
	}
	if now < ns.lastArrival {
		return fmt.Errorf("serving: cannot advance backward to cycle %d (stream clock already at %d)",
			now, ns.lastArrival)
	}
	if err := ns.advanceTo(now); err != nil {
		return err
	}
	ns.lastArrival = now
	return nil
}

// Timeline returns the node's fleet timeline so far: the start anchor,
// applied scaling actions and fired chaos operations, in stream order.
func (ns *NodeSession) Timeline() []NodeEvent {
	return append([]NodeEvent(nil), ns.timeline...)
}

// record appends one fleet-timeline event.
func (ns *NodeSession) record(at int64, kind string, npuIdx, delta int, note string) {
	ns.timeline = append(ns.timeline, NodeEvent{
		Cycle: at, Kind: kind, NPU: npuIdx, Delta: delta,
		Active: ns.state.Active(), Note: note,
	})
}

// advanceTo fires every scheduled operation and autoscale tick due at
// or before the stream clock now, interleaved in time order (operations
// first at equal cycles). Submit calls it before every routing decision
// so the router and the scaler always see the post-event fleet.
func (ns *NodeSession) advanceTo(now int64) error {
	for {
		const never = int64(math.MaxInt64)
		opAt, tickAt := never, never
		if len(ns.pending) > 0 && ns.pending[0].at <= now {
			opAt = ns.pending[0].at
		}
		if ns.scale != nil && ns.scale.nextTick <= now {
			tickAt = ns.scale.nextTick
		}
		switch {
		case opAt == never && tickAt == never:
			return nil
		case opAt <= tickAt:
			op := ns.pending[0]
			ns.pending = ns.pending[1:]
			if err := ns.apply(op); err != nil {
				return fmt.Errorf("serving: %s npu%d at %.2fms: %w",
					op.op.Kind, op.op.NPU, ns.srv.cfg.Millis(op.at), err)
			}
		default:
			if err := ns.evaluate(ns.scale.nextTick); err != nil {
				return err
			}
			ns.scale.nextTick += ns.scale.tickCycles
		}
	}
}

// apply fires one scheduled operation.
func (ns *NodeSession) apply(o nodeOp) error {
	i := o.op.NPU
	if i >= len(ns.backends) {
		return fmt.Errorf("unknown NPU (node size %d)", len(ns.backends))
	}
	switch o.op.Kind {
	case FailNPU:
		return ns.failNPU(i, o.at)
	case SlowNPU:
		if ns.state.Failed(i) {
			return fmt.Errorf("NPU has failed")
		}
		// The factor stacks on the backend's nominal speed — a slow
		// tier's derate on heterogeneous fleets — and restore returns
		// to that nominal, not to 1.
		if ns.speed[i] != ns.baseSpeed[i] {
			return fmt.Errorf("NPU already slowed x%g; restore it first", ns.speed[i]/ns.baseSpeed[i])
		}
		ns.speed[i] = ns.baseSpeed[i] * o.op.Factor
		ns.record(o.at, "slowdown", i, 0, fmt.Sprintf("x%g", o.op.Factor))
	case RestoreNPU:
		if ns.speed[i] == ns.baseSpeed[i] {
			return fmt.Errorf("NPU is not slowed")
		}
		ns.record(o.at, "restore", i, 0, fmt.Sprintf("was x%g", ns.speed[i]/ns.baseSpeed[i]))
		ns.speed[i] = ns.baseSpeed[i]
	case CordonNPU:
		if err := ns.state.Cordon(i); err != nil {
			return err
		}
		ns.record(o.at, "cordon", i, -1, "")
	case UncordonNPU:
		if err := ns.state.Uncordon(i); err != nil {
			return err
		}
		ns.record(o.at, "uncordon", i, +1, "")
	}
	return nil
}

// failNPU removes backend i at cycle at: completed work stays with the
// lost backend's statistics, in-flight work is reclaimed from its
// stream and re-routed through the node's router as re-arrivals at the
// failure instant.
func (ns *NodeSession) failNPU(i int, at int64) error {
	wasRoutable := ns.state.Routable(i)
	reclaimed, err := ns.state.Fail(i, at)
	if err != nil {
		return err
	}
	ns.speed[i] = ns.baseSpeed[i]
	ns.backends[i].removeReqs(reclaimed)
	delta := 0
	if wasRoutable {
		delta = -1
	}
	ns.record(at, "fail", i, delta, fmt.Sprintf("reclaimed %d", len(reclaimed)))
	ns.reclaims += len(reclaimed)
	// The lost backend's stream shrank without a new submission, so the
	// node-level stats memo must not answer from the old stream.
	ns.statsValid = false
	ns.statsAt = -1
	for _, t := range reclaimed {
		if tr := ns.tracer(); tr != nil {
			tr.Record(telemetry.Event{
				Cycle: at, Kind: telemetry.KindReclaim,
				Req: t.TraceID, NPU: i, Tier: ns.tierName(i),
			})
		}
		if orig, ok := ns.stretchOrig[t]; ok {
			// A stretched instance sheds its slowdown when it leaves
			// the slowed backend; the new target applies its own.
			delete(ns.stretchOrig, t)
			t = orig
		}
		if err := ns.route(rearrive(t, at)); err != nil {
			return fmt.Errorf("re-routing reclaimed request %d: %w", t.ID, err)
		}
	}
	return nil
}

// rearrive copies a submitted template as a fresh re-arrival at cycle
// at: the request queues anew at its re-routed backend, keeping its
// identity, model instance and compiled program.
func rearrive(t *workload.Task, at int64) *workload.Task {
	st := sched.NewTask(t.ID, t.Model, t.Batch, t.Priority, at,
		npu.NewExecution(t.Program), t.EstimatedCycles)
	return &workload.Task{
		Task:     st,
		ModelRef: t.ModelRef,
		InLen:    t.InLen, ActualOut: t.ActualOut, PredictedOut: t.PredictedOut,
		Program: t.Program,
		TraceID: t.TraceID,
	}
}

// stretchKey caches stretched programs per (program, factor): a slow
// window routes many requests of the same few model instances, and
// stretching compiles nothing, so the copies are shared.
type stretchKey struct {
	prog   *npu.Program
	factor float64
}

// stretched returns the slowed-down instance of a routed template: its
// compiled program stretched instruction-by-instruction to factor× the
// nominal cycles, and its estimate scaled to match, so scheduler,
// fluid router state and realized simulation agree on the degradation.
func (ns *NodeSession) stretched(t *workload.Task, factor float64) *workload.Task {
	key := stretchKey{prog: t.Program, factor: factor}
	sp, ok := ns.stretchCache[key]
	if !ok {
		sp = stretchProgram(t.Program, factor)
		if ns.stretchCache == nil {
			ns.stretchCache = map[stretchKey]*npu.Program{}
		}
		ns.stretchCache[key] = sp
	}
	est := int64(float64(t.EstimatedCycles) * factor)
	st := sched.NewTask(t.ID, t.Model, t.Batch, t.Priority, t.Arrival,
		npu.NewExecution(sp), est)
	out := &workload.Task{
		Task:     st,
		ModelRef: t.ModelRef,
		InLen:    t.InLen, ActualOut: t.ActualOut, PredictedOut: t.PredictedOut,
		Program: sp,
		TraceID: t.TraceID,
	}
	if ns.stretchOrig == nil {
		ns.stretchOrig = map[*workload.Task]*workload.Task{}
	}
	ns.stretchOrig[out] = t
	return out
}

// stretchProgram scales every instruction latency by factor (ceiling,
// so no instruction loses work to rounding) and rebuilds the totals.
func stretchProgram(p *npu.Program, factor float64) *npu.Program {
	instrs := make([]npu.Instr, len(p.Instrs))
	var total int64
	for i, in := range p.Instrs {
		in.Cycles = int32(math.Ceil(float64(in.Cycles) * factor))
		instrs[i] = in
		total += int64(in.Cycles)
	}
	return &npu.Program{
		Model: p.Model, Batch: p.Batch,
		InLen: p.InLen, OutLen: p.OutLen,
		Instrs:      instrs,
		TotalCycles: total,
		TotalMACs:   p.TotalMACs,
		Layers:      p.Layers,
	}
}

// removeReqs drops the given submitted instances (matched by identity)
// from the session's stream — the failure-reclaim path pulling a lost
// backend's in-flight work back out. The remaining stream re-simulates
// on the next Stats.
func (ss *Session) removeReqs(gone []*workload.Task) {
	if len(gone) == 0 {
		return
	}
	drop := make(map[*workload.Task]bool, len(gone))
	for _, t := range gone {
		drop[t] = true
	}
	kept := ss.reqs[:0]
	for _, t := range ss.reqs {
		if !drop[t] {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(ss.reqs); i++ {
		ss.reqs[i] = nil
	}
	ss.reqs = kept
	ss.dirty = true
	ss.statsValid = false
}
