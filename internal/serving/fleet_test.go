package serving

// fleet_test.go locks in the heterogeneous-fleet surface: template
// parsing, clock derating against the base config, largest-remainder
// apportionment, the D'Hondt tier choice on scale-up, and the node
// session mechanics (tiered backend construction, chaos slowdowns
// stacking on a tier's derate, scale-ups tracking the template
// weights).

import (
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/npu"
	"repro/internal/workload"
)

func TestParseFleetTemplate(t *testing.T) {
	specs, err := ParseFleetTemplate("70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	want := []TierSpec{{Name: "fast", Weight: 70, Factor: 1}, {Name: "slow", Weight: 30, Factor: 2}}
	if len(specs) != len(want) {
		t.Fatalf("got %d tiers, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("tier %d = %+v, want %+v", i, specs[i], want[i])
		}
	}

	specs, err = ParseFleetTemplate(" 50%:fast , 50%:ancient@4 ")
	if err != nil {
		t.Fatal(err)
	}
	if specs[1] != (TierSpec{Name: "ancient", Weight: 50, Factor: 4}) {
		t.Errorf("custom tier = %+v", specs[1])
	}

	for _, bad := range []string{
		"",                     // empty
		"fast",                 // no weight
		"70:fast,30:slow",      // missing %
		"x%:fast,100%:slow",    // non-numeric weight
		"0%:fast,100%:slow",    // zero weight
		"70%:fast,40%:slow",    // weights exceed 100
		"50%:fast,40%:slow",    // weights under 100
		"50%:fast,50%:fast",    // duplicate tier
		"50%:fast,50%:turbo",   // unknown tier without factor
		"50%:fast,50%:old@0.5", // factor under 1
		"50%:fast,50%:@2",      // empty name
	} {
		if _, err := ParseFleetTemplate(bad); err == nil {
			t.Errorf("template %q should be rejected", bad)
		}
	}
}

func TestFleetFromTemplateDeratesClock(t *testing.T) {
	base := npu.DefaultConfig()
	tiers, err := FleetFromTemplate(base, "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	if tiers[0].NPU != base {
		t.Errorf("fast tier config differs from base: %+v", tiers[0].NPU)
	}
	if got, want := tiers[1].NPU.FreqHz, base.FreqHz/2; got != want {
		t.Errorf("slow tier clock = %v, want %v", got, want)
	}
	norm := tiers[1].NPU
	norm.FreqHz = base.FreqHz
	if norm != base {
		t.Errorf("slow tier differs from base beyond the clock: %+v", tiers[1].NPU)
	}
}

func TestApportionFleet(t *testing.T) {
	cases := []struct {
		weights []int
		n       int
		want    []int
	}{
		{[]int{70, 30}, 10, []int{7, 3}},
		{[]int{70, 30}, 3, []int{2, 1}}, // remainders 10 vs 90
		{[]int{70, 30}, 1, []int{1, 0}}, // remainder 70 vs 30
		{[]int{50, 50}, 5, []int{3, 2}}, // tie goes to the earlier tier
		{[]int{34, 33, 33}, 4, []int{2, 1, 1}},
		{[]int{100}, 6, []int{6}},
	}
	for _, tc := range cases {
		got := apportionFleet(tc.weights, tc.n)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("apportion(%v, %d) = %v, want %v", tc.weights, tc.n, got, tc.want)
				break
			}
		}
	}
}

func TestPickTierTracksWeights(t *testing.T) {
	weights := []int{70, 30}
	counts := []int{0, 0}
	for i := 0; i < 10; i++ {
		counts[autoscale.PickTier(weights, counts)]++
	}
	if counts[0] != 7 || counts[1] != 3 {
		t.Errorf("D'Hondt fill of 10 = %v, want [7 3]", counts)
	}
	// A tier knocked below its share by failures is refilled first.
	if got := autoscale.PickTier([]int{50, 50}, []int{5, 1}); got != 1 {
		t.Errorf("depleted tier not preferred: picked %d", got)
	}
	// Ties go to the earliest tier.
	if got := autoscale.PickTier([]int{50, 50}, []int{2, 2}); got != 0 {
		t.Errorf("tie should pick tier 0, picked %d", got)
	}
}

func TestOpenNodeHeterogeneousFleet(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.OpenNode(NodeConfig{
		NPUs: 10, Routing: cluster.LeastWork, Fleet: tiers,
		Session: SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	views := ns.Fleet()
	for i, v := range views {
		wantTier, wantSpeed := "fast", 1.0
		if i >= 7 {
			wantTier, wantSpeed = "slow", 2.0
		}
		if v.Tier != wantTier || v.Speed != wantSpeed {
			t.Errorf("backend %d: tier %q speed %v, want %q %v", i, v.Tier, v.Speed, wantTier, wantSpeed)
		}
	}
	// An idle tiered fleet routes the first request to a fast backend:
	// least-work compares normalized completion time, and a slow
	// backend would finish the same work twice as late.
	if _, err := ns.Offer(Spec{Horizon: rampSegment, OfferedLoad: 0.3,
		Models: rampModels, BatchSizes: []int{1}}, workload.RNGFor(21, 0)); err != nil {
		t.Fatal(err)
	}
	routed := ns.Routed()
	slowShare := 0
	for i := 7; i < 10; i++ {
		slowShare += routed[i]
	}
	if routed[0] == 0 {
		t.Error("fast backend 0 served nothing at light load")
	}
	if slowShare > ns.Pending()/2 {
		t.Errorf("slow tier served %d of %d requests at light load", slowShare, ns.Pending())
	}
}

func TestOpenNodeFleetValidation(t *testing.T) {
	s := newServer(t)
	base := npu.DefaultConfig()
	session := SessionConfig{Policy: "FCFS", Horizon: rampHorizon}
	open := func(tiers []Tier) error {
		_, err := s.OpenNode(NodeConfig{NPUs: 4, Routing: cluster.LeastQueued,
			Fleet: tiers, Session: session})
		return err
	}

	overclocked := base
	overclocked.FreqHz *= 2
	foreign := base
	foreign.UBUFBytes *= 2
	half := base
	half.FreqHz /= 2
	for name, tiers := range map[string][]Tier{
		"weights not 100":  {{Name: "fast", Weight: 60, NPU: base}, {Name: "slow", Weight: 30, NPU: half}},
		"zero weight":      {{Name: "fast", Weight: 100, NPU: base}, {Name: "slow", Weight: 0, NPU: half}},
		"duplicate name":   {{Name: "fast", Weight: 50, NPU: base}, {Name: "fast", Weight: 50, NPU: half}},
		"empty name":       {{Name: "", Weight: 100, NPU: base}},
		"clock above base": {{Name: "hot", Weight: 100, NPU: overclocked}},
		"non-clock change": {{Name: "big", Weight: 100, NPU: foreign}},
	} {
		if open(tiers) == nil {
			t.Errorf("%s: fleet should be rejected", name)
		}
	}
	if err := open([]Tier{{Name: "fast", Weight: 50, NPU: base}, {Name: "slow", Weight: 50, NPU: half}}); err != nil {
		t.Errorf("valid fleet rejected: %v", err)
	}
}

// TestTieredChaosStacksOnDerate proves chaos slowdowns are relative to
// the tier's nominal speed: slowing a factor-2 tier by 2 serves at 4x,
// restore returns to the tier's 2x (not to 1), and a backend at its
// tier nominal is "not slowed".
func TestTieredChaosStacksOnDerate(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "50%:fast,50%:slow")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.OpenNode(NodeConfig{NPUs: 4, Routing: cluster.LeastWork, Fleet: tiers,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	// Backends 0-1 are fast, 2-3 slow (block apportionment).
	if err := ns.ScheduleCycle(0, NodeOp{Kind: SlowNPU, NPU: 2, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ns.AdvanceToCycle(1); err != nil {
		t.Fatal(err)
	}
	if got := ns.Fleet()[2].Speed; got != 4 {
		t.Errorf("slowed slow-tier backend speed = %v, want 4", got)
	}
	if err := ns.ScheduleCycle(1, NodeOp{Kind: RestoreNPU, NPU: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ns.AdvanceToCycle(2); err != nil {
		t.Fatal(err)
	}
	if got := ns.Fleet()[2].Speed; got != 2 {
		t.Errorf("restored slow-tier backend speed = %v, want the tier nominal 2", got)
	}
	// A backend at its tier nominal is not slowed, whatever its derate.
	if err := ns.ScheduleCycle(2, NodeOp{Kind: RestoreNPU, NPU: 3}); err != nil {
		t.Fatal(err)
	}
	if err := ns.AdvanceToCycle(3); err == nil {
		t.Error("restore of a backend at tier-nominal speed should fail")
	}
}

// TestTieredScaleToFollowsWeights drives a manual scale-up on a 70/30
// fleet and checks the D'Hondt tier choice lands the grown fleet on the
// template's proportions.
func TestTieredScaleToFollowsWeights(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastQueued, Fleet: tiers,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.ScaleTo(10); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, v := range ns.Fleet() {
		counts[v.Tier]++
	}
	if counts["fast"] != 7 || counts["slow"] != 3 {
		t.Errorf("grown fleet = %v, want 7 fast / 3 slow", counts)
	}
}

// TestTieredAutoscaleRun drives the full ramp over a tiered autoscaled
// fleet: the run must complete deterministically and every scaled-up
// backend must belong to a template tier.
func TestTieredAutoscaleRun(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	open := func() *NodeSession {
		ns, err := s.OpenNode(NodeConfig{
			NPUs: 2, Routing: cluster.LeastWork, Fleet: tiers,
			Session: SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
			Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 6 * time.Millisecond,
				MinNPUs: 1, MaxNPUs: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	ns := open()
	offerRamp(t, ns, 31)
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scaling == nil || st.Scaling.PeakNPUs <= 2 {
		t.Fatalf("tiered ramp did not scale up: %+v", st.Scaling)
	}
	for _, v := range ns.Fleet() {
		if v.Tier != "fast" && v.Tier != "slow" {
			t.Errorf("backend %d has tier %q outside the template", v.NPU, v.Tier)
		}
	}
	// Determinism: the identical run replays to identical stats.
	ns2 := open()
	offerRamp(t, ns2, 31)
	st2, err := ns2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchStats != st2.BatchStats {
		t.Errorf("tiered autoscaled run is not deterministic:\n %+v\n %+v", st.BatchStats, st2.BatchStats)
	}
}
