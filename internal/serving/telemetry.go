package serving

// telemetry.go wires the internal/telemetry layer into the streaming
// node session. The recording hooks live on the hot paths (Submit,
// route, failNPU) guarded by nil checks so an untraced node pays
// nothing; everything here is the cold half — deriving completion
// events from the backends' memoized simulations, sampling the fleet on
// the autoscale tick, and breaking the node statistics down per tier.
// All of it runs on the virtual clock, so telemetry output replays
// byte-identically with the stream (telemetry_test.go locks that in).

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// tracer answers the attached event tracer, nil when tracing is off.
func (ns *NodeSession) tracer() *telemetry.Tracer {
	if ns.trace == nil {
		return nil
	}
	return ns.trace.Tracer
}

// recorder answers the attached tick recorder, nil when sampling is off.
func (ns *NodeSession) recorder() *telemetry.Recorder {
	if ns.trace == nil {
		return nil
	}
	return ns.trace.Recorder
}

// tierName answers backend i's hardware-tier name, "" on homogeneous
// fleets.
func (ns *NodeSession) tierName(i int) string {
	if ns.tiers == nil {
		return ""
	}
	return ns.tiers[ns.tierOf[i]].Name
}

// tierSym answers backend i's pre-interned tier Sym (the zero Sym —
// the empty string — on homogeneous fleets): the hot recording path's
// tierName.
func (ns *NodeSession) tierSym(i int) telemetry.Sym {
	if ns.tiers == nil {
		return 0
	}
	return ns.tierSyms[ns.tierOf[i]]
}

// modelSym answers the Sym for t's model name. Generator-built tasks
// carry a small 1-based ModelID, so the steady-state lookup is one
// slice index; the first sight of each model (and any task built
// outside a Generator, ModelID 0) interns the name string directly.
func (ns *NodeSession) modelSym(tr *telemetry.Tracer, t *workload.Task) telemetry.Sym {
	id := t.ModelID
	if id > 0 && id < len(ns.modelSyms) {
		if sym := ns.modelSyms[id]; sym != 0 {
			return sym
		}
	}
	sym := tr.InternNote(t.Model)
	if id > 0 {
		for len(ns.modelSyms) <= id {
			ns.modelSyms = append(ns.modelSyms, 0)
		}
		ns.modelSyms[id] = sym
	}
	return sym
}

// Telemetry answers the node's attached telemetry handle, nil when
// tracing is disabled — the control plane's accessor.
func (ns *NodeSession) Telemetry() *telemetry.Trace { return ns.trace }

// completionRec is one simulated completion a traced backend retains:
// enough to derive the request's complete event without re-touching the
// simulator (the template carries the trace ID).
type completionRec struct {
	req       int
	cycle     int64
	latencyMS float64
	serviceMS float64
}

// retainCompletions records one completion per simulated request,
// sorted by (cycle, request) so the derived event order never depends
// on simulator internals. Overwritten wholesale on every re-simulation
// — a reclaim shrinks the stream and the next refresh re-derives.
func (ss *Session) retainCompletions(res *sim.Result) {
	ss.completions = ss.completions[:0]
	for _, t := range res.Tasks {
		lat := ss.srv.cfg.Millis(t.Turnaround())
		svc := lat
		if ntt := t.NTT(); ntt > 0 {
			svc = lat / ntt
		}
		ss.completions = append(ss.completions, completionRec{
			req:       ss.reqs[t.ID].TraceID,
			cycle:     t.Completion,
			latencyMS: lat,
			serviceMS: svc,
		})
	}
	sort.Slice(ss.completions, func(i, j int) bool {
		a, b := ss.completions[i], ss.completions[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		return a.req < b.req
	})
}

// TraceEvents assembles the node's merged trace: the tracer's recorded
// lifecycle events plus one completion event per simulated request,
// sorted by cycle and sequence-stamped (telemetry.MergeEvents). Calling
// it refreshes every dirty backend — completion latency only exists at
// simulation time. Batched backends (SessionConfig.Window > 0) retain
// no completions; their requests trace submit/route edges only.
func (ns *NodeSession) TraceEvents() ([]telemetry.Event, error) {
	tr := ns.tracer()
	if tr == nil {
		return nil, fmt.Errorf("serving: no tracer attached (NodeConfig.Trace)")
	}
	if ns.closed {
		return nil, fmt.Errorf("serving: node session closed")
	}
	var completions []telemetry.Event
	for i, b := range ns.backends {
		if len(b.reqs) == 0 {
			continue
		}
		if err := b.refresh(); err != nil {
			return nil, fmt.Errorf("serving: NPU %d: %w", i, err)
		}
		tier := ns.tierName(i)
		for _, c := range b.completions {
			completions = append(completions, telemetry.Event{
				Cycle: c.cycle, Kind: telemetry.KindComplete,
				Req: c.req, NPU: i, Tier: tier,
				LatencyMS: c.latencyMS, ServiceMS: c.serviceMS,
			})
		}
	}
	sort.Slice(completions, func(i, j int) bool {
		a, b := completions[i], completions[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Req != b.Req {
			return a.Req < b.Req
		}
		return a.NPU < b.NPU
	})
	events := telemetry.MergeEvents(tr.Events(), completions)
	// The hot recording path skips the cycle→ms conversion; fill it here.
	for i := range events {
		events[i].AtMS = ns.srv.cfg.Millis(events[i].Cycle)
	}
	return events, nil
}

// sampleTick captures one fleet metric sample at autoscale tick `at`,
// before the scaler's decision applies. est/window/estViolations come
// from the tick-window block the scaler already computed.
func (ns *NodeSession) sampleTick(rec *telemetry.Recorder, at int64, est float64, window, estViolations int) {
	s := telemetry.TickSample{
		Cycle: at, AtMS: ns.srv.cfg.Millis(at),
		Fleet:    ns.state.Active(),
		EstP95MS: est, Window: window, EstViolations: estViolations,
	}
	tickCycles := ns.scale.tickCycles
	completed := 0
	npus := make([]telemetry.NPUSample, len(ns.backends))
	for i, b := range ns.backends {
		v := telemetry.NPUSample{
			NPU: i, Tier: ns.tierName(i), State: "active",
			Speed: ns.speed[i], Routed: len(b.reqs),
		}
		switch {
		case ns.state.Failed(i):
			v.State = "failed"
		case ns.state.Cordoned(i):
			v.State = "cordoned"
		case ns.state.Draining(i):
			v.State = "draining"
		}
		if !ns.state.Failed(i) {
			v.InFlight = ns.state.InFlight(i, at)
			v.BacklogMS = ns.srv.cfg.Millis(ns.state.Backlog(i, at))
			// Fluid utilization since the last tick: the idle share is how
			// far the backend's free horizon trails the tick instant.
			idle := at - ns.state.FreeAt(i)
			if idle < 0 {
				idle = 0
			}
			if idle > tickCycles {
				idle = tickCycles
			}
			v.UtilFrac = 1 - float64(idle)/float64(tickCycles)
		}
		completed += len(b.reqs) - v.InFlight
		npus[i] = v
	}
	s.NPUs = npus
	if ns.tiers != nil {
		gauges := make([]telemetry.TierGauge, len(ns.tiers))
		for t := range ns.tiers {
			gauges[t].Tier = ns.tiers[t].Name
		}
		for i, v := range npus {
			t := ns.tierOf[i]
			if v.State == "active" {
				gauges[t].Active++
			}
			gauges[t].InFlight += v.InFlight
			gauges[t].BacklogMS += v.BacklogMS
		}
		s.Tiers = gauges
	}
	s.Completions = completed - ns.lastCompleted
	ns.lastCompleted = completed
	s.Reclaims = ns.reclaims - ns.lastReclaims
	ns.lastReclaims = ns.reclaims
	rec.Record(s)
}

// TierStats is one hardware tier's slice of the node statistics.
type TierStats struct {
	// Tier is the tier name, in template order.
	Tier string
	// NPUs counts the backends ever assigned to the tier, including
	// retired and failed ones.
	NPUs int
	// Requests and Measured count the tier's routed and post-warm-up
	// requests.
	Requests, Measured int
	// MeanLatencyMS, P50LatencyMS and P95LatencyMS summarize the tier's
	// measured turnaround.
	MeanLatencyMS, P50LatencyMS, P95LatencyMS float64
	// SLOViolationFrac is the tier's share of measured requests above
	// the scaler's latency SLO; zero without a scaler.
	SLOViolationFrac float64
}

// tierStats derives the per-tier breakdown from the tier-partitioned
// sample sets Stats merged.
func (ns *NodeSession) tierStats(sets []sampleSet) []TierStats {
	out := make([]TierStats, len(ns.tiers))
	for t := range ns.tiers {
		ts := TierStats{Tier: ns.tiers[t].Name}
		for i := range ns.backends {
			if ns.tierOf[i] == t {
				ts.NPUs++
			}
		}
		sm := &sets[t]
		ts.Requests = sm.requests
		ts.Measured = len(sm.latencies)
		if ts.Measured > 0 {
			ts.MeanLatencyMS = stats.Mean(sm.latencies)
			ts.P50LatencyMS = guardPercentile(stats.Percentile(sm.latencies, 50), ts.MeanLatencyMS)
			ts.P95LatencyMS = guardPercentile(stats.Percentile(sm.latencies, 95), ts.P50LatencyMS)
			if ns.scale != nil {
				violated := 0
				for _, l := range sm.latencies {
					if l > ns.scale.sloMS {
						violated++
					}
				}
				ts.SLOViolationFrac = float64(violated) / float64(ts.Measured)
			}
		}
		out[t] = ts
	}
	return out
}
