package serving

// fleet.go is the heterogeneous-fleet surface of the node session: a
// weighted tier template ("70%:fast,30%:slow") partitions the node into
// hardware classes, each tier running the server's base npu.Config with
// a derated clock. A slow tier's backends serve every request at
// factor× the nominal service time through the same program-stretching
// path chaos slowdowns use, so the scheduler, the fluid router state
// and the realized simulation all agree on the tier's speed — and the
// speed-aware LeastWork router compares backends in normalized
// completion time rather than raw backlog. Scale-ups pick which tier to
// add with the D'Hondt rule (autoscale.PickTier), keeping the live
// fleet proportioned to the template as it grows and shrinks.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/npu"
)

// Tier is one hardware class of a heterogeneous fleet: a share of the
// node's backends running a common per-tier npu.Config.
type Tier struct {
	// Name labels the tier in fleet listings and timelines.
	Name string
	// Weight is the tier's share of the fleet in percent; a node's tier
	// weights must sum to exactly 100.
	Weight int
	// NPU is the tier's hardware configuration. It must match the
	// server's base config in every respect but the clock, which may be
	// derated (FreqHz at or below the base) — the derate factor is the
	// tier's service-time multiplier.
	NPU npu.Config
}

// TierSpec is one parsed entry of a fleet template, before any
// hardware config is attached: FleetFromTemplate turns it into a Tier
// against a base npu.Config, and syntax-only validators (the scenario
// parser) stop here.
type TierSpec struct {
	// Name is the tier label from the template.
	Name string
	// Weight is the tier's fleet share in percent.
	Weight int
	// Factor is the service-time derate (>= 1; 1 = full speed).
	Factor float64
}

// builtinTierFactor resolves the factor of a named builtin tier.
func builtinTierFactor(name string) (float64, bool) {
	switch name {
	case "fast":
		return 1, true
	case "slow":
		return 2, true
	}
	return 0, false
}

// ParseFleetTemplate parses a weighted tier template of the form
// "<percent>%:<name>[@<factor>],..." — e.g. "70%:fast,30%:slow" or
// "50%:fast,50%:ancient@4". The builtin names fast (factor 1) and slow
// (factor 2) need no explicit factor; any other name requires one.
// Weights must be positive integers summing to exactly 100, names must
// be unique, and factors must be at least 1.
func ParseFleetTemplate(spec string) ([]TierSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("serving: empty fleet template")
	}
	parts := strings.Split(spec, ",")
	out := make([]TierSpec, 0, len(parts))
	total := 0
	for _, part := range parts {
		entry := strings.TrimSpace(part)
		pctStr, rest, ok := strings.Cut(entry, "%")
		if !ok || !strings.HasPrefix(rest, ":") {
			return nil, fmt.Errorf("serving: fleet tier %q: want <percent>%%:<name>[@<factor>]", entry)
		}
		pct, err := strconv.Atoi(pctStr)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("serving: fleet tier %q: weight must be a percentage in [1, 100]", entry)
		}
		name, factorStr, hasFactor := strings.Cut(rest[1:], "@")
		if name == "" || strings.ContainsAny(name, " \t%@:") {
			return nil, fmt.Errorf("serving: fleet tier %q: bad tier name %q", entry, name)
		}
		var factor float64
		switch {
		case hasFactor:
			factor, err = strconv.ParseFloat(factorStr, 64)
			if err != nil || factor < 1 {
				return nil, fmt.Errorf("serving: fleet tier %q: factor must be a number >= 1", entry)
			}
		default:
			var known bool
			if factor, known = builtinTierFactor(name); !known {
				return nil, fmt.Errorf("serving: fleet tier %q: unknown tier %q (builtins: fast, slow); custom tiers need an explicit @<factor>", entry, name)
			}
		}
		for _, prev := range out {
			if prev.Name == name {
				return nil, fmt.Errorf("serving: fleet template repeats tier %q", name)
			}
		}
		total += pct
		out = append(out, TierSpec{Name: name, Weight: pct, Factor: factor})
	}
	if total != 100 {
		return nil, fmt.Errorf("serving: fleet tier weights sum to %d%%, want 100%%", total)
	}
	return out, nil
}

// FleetFromTemplate parses a weighted tier template and binds it to a
// base hardware configuration: each tier runs the base config with its
// clock derated by the tier's factor.
func FleetFromTemplate(base npu.Config, spec string) ([]Tier, error) {
	specs, err := ParseFleetTemplate(spec)
	if err != nil {
		return nil, err
	}
	out := make([]Tier, len(specs))
	for i, ts := range specs {
		cfg := base
		cfg.FreqHz = base.FreqHz / ts.Factor
		out[i] = Tier{Name: ts.Name, Weight: ts.Weight, NPU: cfg}
	}
	return out, nil
}

// fleetSpeeds validates a tier set against the server's base config and
// returns each tier's service-time derate factor (base clock over tier
// clock, >= 1).
func fleetSpeeds(tiers []Tier, base npu.Config) ([]float64, error) {
	speeds := make([]float64, len(tiers))
	total := 0
	for i, tier := range tiers {
		if tier.Name == "" {
			return nil, fmt.Errorf("serving: fleet tier %d has no name", i)
		}
		for _, prev := range tiers[:i] {
			if prev.Name == tier.Name {
				return nil, fmt.Errorf("serving: fleet repeats tier %q", tier.Name)
			}
		}
		if tier.Weight <= 0 {
			return nil, fmt.Errorf("serving: fleet tier %q has non-positive weight %d", tier.Name, tier.Weight)
		}
		if tier.NPU.FreqHz <= 0 || tier.NPU.FreqHz > base.FreqHz {
			return nil, fmt.Errorf("serving: fleet tier %q clock %.0fHz outside (0, base %.0fHz]",
				tier.Name, tier.NPU.FreqHz, base.FreqHz)
		}
		norm := tier.NPU
		norm.FreqHz = base.FreqHz
		if norm != base {
			return nil, fmt.Errorf("serving: fleet tier %q differs from the server's base config beyond the clock", tier.Name)
		}
		speeds[i] = base.FreqHz / tier.NPU.FreqHz
		total += tier.Weight
	}
	if total != 100 {
		return nil, fmt.Errorf("serving: fleet tier weights sum to %d%%, want 100%%", total)
	}
	return speeds, nil
}

// apportionFleet splits n backends across the tiers by largest
// remainder: every tier gets the floor of its exact share, and the
// leftovers go to the largest fractional remainders (earliest tier on
// ties). Weights sum to 100, so at most len(weights)-1 leftovers exist
// and each tier gains at most one.
func apportionFleet(weights []int, n int) []int {
	counts := make([]int, len(weights))
	rem := make([]int, len(weights))
	assigned := 0
	for i, w := range weights {
		counts[i] = n * w / 100
		rem[i] = n * w % 100
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}
