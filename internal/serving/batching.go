package serving

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Dynamic batching is the TensorRT-Inference-Server runtime feature the
// paper's Figure 1 setup relies on: single inference requests of the same
// model arriving within a batching window are coalesced into one batched
// NPU task, trading queueing delay for the systolic array's strong
// batch efficiency. CNN requests batch freely; recurrent requests pass
// through unbatched because their per-request unrolled lengths differ
// (the same practical restriction real serving stacks face).

// BatchSpec parameterizes a batched sustained-load run.
type BatchSpec struct {
	// Spec is the underlying request stream; requests are generated at
	// batch size 1.
	Spec Spec
	// Window is the batching window: same-model CNN requests arriving
	// within a window are fused (0 disables batching).
	Window time.Duration
	// MaxBatch caps the fused batch size (default 16).
	MaxBatch int
}

// memberRequest tracks one original request inside a batched task.
type memberRequest struct {
	arrival  int64
	isolated int64 // batch-1 isolated cycles, the user-visible ideal
}

// BatchStats extends Stats with batching-specific counters.
type BatchStats struct {
	Stats
	// Dispatched is the number of NPU tasks after coalescing.
	Dispatched int
	// MeanBatch is the average fused batch size across CNN dispatches.
	MeanBatch float64
}

// RunBatched generates a batch-1 request stream, coalesces it per the
// batching window, and runs the batched tasks under the given scheduler.
// Latency statistics are computed per original request (member), not per
// fused task.
func (s *Server) RunBatched(bs BatchSpec, policy string, preemptive bool, selector string,
	rng *rand.Rand) (BatchStats, error) {

	if bs.MaxBatch <= 0 {
		bs.MaxBatch = 16
	}
	base := bs.Spec
	base.BatchSizes = []int{1}
	requests, err := s.Generate(base, rng)
	if err != nil {
		return BatchStats{}, err
	}
	windowCycles := s.cfg.Cycles(bs.Window)

	// Coalesce: group same-model CNN requests whose arrivals fall
	// within windowCycles of the group's first request.
	type pendingGroup struct {
		model   string
		opened  int64
		members []memberRequest
		rng     *rand.Rand
	}
	var tasks []*workload.Task
	members := map[int][]memberRequest{} // task ID -> original requests
	nextID := 0

	flush := func(g *pendingGroup) error {
		if g == nil || len(g.members) == 0 {
			return nil
		}
		batch := len(g.members)
		if batch > bs.MaxBatch {
			batch = bs.MaxBatch
		}
		// The fused task dispatches when its window closes (or at the
		// last member's arrival if that is later due to capping).
		arrival := g.members[len(g.members)-1].arrival
		prio := sched.Priorities[g.rng.IntN(len(sched.Priorities))]
		task, err := s.gen.InstanceByName(nextID, g.model, batch, prio, arrival, g.rng)
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
		members[nextID] = append([]memberRequest(nil), g.members...)
		nextID++
		return nil
	}

	open := map[string]*pendingGroup{}
	sort.Slice(requests, func(i, j int) bool { return requests[i].Arrival < requests[j].Arrival })
	for _, r := range requests {
		m := memberRequest{arrival: r.Arrival, isolated: r.IsolatedCycles}
		if r.ModelRef.IsRNN() || windowCycles == 0 {
			// Pass through unbatched.
			g := &pendingGroup{model: r.Model, opened: r.Arrival,
				members: []memberRequest{m}, rng: rng}
			if err := flush(g); err != nil {
				return BatchStats{}, err
			}
			continue
		}
		g := open[r.Model]
		if g != nil && (r.Arrival-g.opened > windowCycles || len(g.members) >= bs.MaxBatch) {
			if err := flush(g); err != nil {
				return BatchStats{}, err
			}
			g = nil
		}
		if g == nil {
			g = &pendingGroup{model: r.Model, opened: r.Arrival, rng: rng}
			open[r.Model] = g
		}
		g.members = append(g.members, m)
	}
	// Deterministic flush order for the tail groups.
	var names []string
	for name := range open {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := flush(open[name]); err != nil {
			return BatchStats{}, err
		}
	}
	if len(tasks) == 0 {
		return BatchStats{}, fmt.Errorf("serving: batching produced no tasks")
	}

	pol, err := sched.ByName(policy, s.scfg)
	if err != nil {
		return BatchStats{}, err
	}
	var sel sched.MechanismSelector
	if preemptive {
		if selector == "" {
			selector = "dynamic"
		}
		if sel, err = sched.SelectorByName(selector); err != nil {
			return BatchStats{}, err
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.cfg, Sched: s.scfg,
		Policy: pol, Preemptive: preemptive, Selector: sel,
	}, workload.SchedTasks(tasks))
	if err != nil {
		return BatchStats{}, err
	}
	res, err := simulator.Run()
	if err != nil {
		return BatchStats{}, err
	}

	// Per-request statistics.
	warmup := bs.Spec.WarmupFraction
	if warmup <= 0 {
		warmup = 0.2
	}
	cut := int64(float64(s.cfg.Cycles(bs.Spec.Horizon)) * warmup)
	var latencies, ntts []float64
	var totalMembers, cnnBatches, cnnMembers int
	out := BatchStats{Dispatched: len(res.Tasks)}
	for _, task := range res.Tasks {
		ms := members[task.ID]
		totalMembers += len(ms)
		if task.Batch > 1 || len(ms) > 1 {
			cnnBatches++
			cnnMembers += len(ms)
		}
		for _, m := range ms {
			if m.arrival < cut {
				continue
			}
			lat := task.Completion - m.arrival
			latencies = append(latencies, s.cfg.Millis(lat))
			ntts = append(ntts, float64(lat)/float64(m.isolated))
		}
	}
	out.Requests = totalMembers
	out.Measured = len(latencies)
	if out.Measured == 0 {
		return BatchStats{}, fmt.Errorf("serving: no requests survive the warm-up window")
	}
	out.MeanLatencyMS = stats.Mean(latencies)
	out.P95LatencyMS = stats.Percentile(latencies, 95)
	out.P99LatencyMS = stats.Percentile(latencies, 99)
	out.MeanNTT = stats.Mean(ntts)
	if sec := s.cfg.Seconds(res.Cycles); sec > 0 {
		out.ThroughputPerSec = float64(totalMembers) / sec
	}
	if cnnBatches > 0 {
		out.MeanBatch = float64(cnnMembers) / float64(cnnBatches)
	} else {
		out.MeanBatch = 1
	}
	return out, nil
}
