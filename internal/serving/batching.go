package serving

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Dynamic batching is the TensorRT-Inference-Server runtime feature the
// paper's Figure 1 setup relies on: single inference requests of the same
// model arriving within a batching window are coalesced into one batched
// NPU task, trading queueing delay for the systolic array's strong
// batch efficiency. CNN requests batch freely; recurrent requests pass
// through unbatched because their per-request unrolled lengths differ
// (the same practical restriction real serving stacks face).

// BatchSpec parameterizes a batched sustained-load run.
type BatchSpec struct {
	// Spec is the underlying request stream; requests are generated at
	// batch size 1.
	Spec Spec
	// Window is the batching window: same-model CNN requests arriving
	// within a window are fused (0 disables batching).
	Window time.Duration
	// MaxBatch caps the fused batch size (default 16).
	MaxBatch int
}

// memberRequest tracks one original request inside a batched task.
type memberRequest struct {
	arrival  int64
	isolated int64 // batch-1 isolated cycles, the user-visible ideal
}

// BatchStats extends Stats with batching-specific counters.
type BatchStats struct {
	// Stats are the per-request steady-state statistics (latency is per
	// original member request, not per fused dispatch).
	Stats
	// Dispatched is the number of NPU tasks after coalescing.
	Dispatched int
	// MeanBatch is the average fused batch size across CNN dispatches.
	MeanBatch float64
}

// RunBatched generates a batch-1 request stream, coalesces it per the
// batching window, and runs the batched tasks under the given scheduler.
// Latency statistics are computed per original request (member), not per
// fused task.
func (s *Server) RunBatched(bs BatchSpec, policy string, preemptive bool, selector string,
	rng *rand.Rand) (BatchStats, error) {

	if bs.MaxBatch <= 0 {
		bs.MaxBatch = 16
	}
	base := bs.Spec
	base.BatchSizes = []int{1}
	requests, err := s.Generate(base, rng)
	if err != nil {
		return BatchStats{}, err
	}
	windowCycles := s.cfg.Cycles(bs.Window)

	// Coalesce: group same-model CNN requests whose arrivals fall
	// within windowCycles of the group's first request. The fused task
	// re-instances the group at its batch size with a randomly sampled
	// priority, dispatching when its window closes (the last member's
	// arrival).
	var tasks []*workload.Task
	members := map[int][]memberRequest{} // task ID -> original requests
	nextID := 0
	flush := func(group []*workload.Task) error {
		batch := len(group)
		if batch > bs.MaxBatch {
			batch = bs.MaxBatch
		}
		arrival := group[len(group)-1].Arrival
		prio := sched.Priorities[rng.IntN(len(sched.Priorities))]
		task, err := s.gen.InstanceByName(nextID, group[0].Model, batch, prio, arrival, rng)
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
		members[nextID] = groupMembers(group)
		nextID++
		return nil
	}
	passThrough := func(r *workload.Task) bool {
		return r.ModelRef.IsRNN() || windowCycles == 0
	}
	if err := groupRequests(requests, windowCycles, bs.MaxBatch, passThrough, flush); err != nil {
		return BatchStats{}, err
	}
	if len(tasks) == 0 {
		return BatchStats{}, fmt.Errorf("serving: batching produced no tasks")
	}

	res, err := s.simulate(policy, preemptive, selector, tasks)
	if err != nil {
		return BatchStats{}, err
	}
	return s.memberStats(res, members, s.warmupCut(bs.Spec.Horizon, bs.Spec.WarmupFraction))
}

// groupMembers projects a request group onto its member records.
func groupMembers(group []*workload.Task) []memberRequest {
	ms := make([]memberRequest, len(group))
	for i, r := range group {
		ms[i] = memberRequest{arrival: r.Arrival, isolated: r.IsolatedCycles}
	}
	return ms
}

// groupRequests runs the windowed grouping shared by RunBatched and the
// Session coalescer: requests are visited in arrival order; pass-through
// requests flush immediately as singleton groups, others accumulate per
// model and flush when the group's window expires or the batch cap
// fills, and the tail groups flush in sorted model order. For a given
// stream the sequence of flush calls is deterministic, so flush may
// consume randomness.
func groupRequests(requests []*workload.Task, windowCycles int64, maxBatch int,
	passThrough func(*workload.Task) bool, flush func([]*workload.Task) error) error {

	ordered := append([]*workload.Task(nil), requests...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	type group struct {
		opened int64
		tasks  []*workload.Task
	}
	open := map[string]*group{}
	for _, r := range ordered {
		if passThrough(r) {
			if err := flush([]*workload.Task{r}); err != nil {
				return err
			}
			continue
		}
		g := open[r.Model]
		if g != nil && (r.Arrival-g.opened > windowCycles || len(g.tasks) >= maxBatch) {
			if err := flush(g.tasks); err != nil {
				return err
			}
			delete(open, r.Model)
			g = nil
		}
		if g == nil {
			g = &group{opened: r.Arrival}
			open[r.Model] = g
		}
		g.tasks = append(g.tasks, r)
	}
	// Deterministic flush order for the tail groups.
	var names []string
	for name := range open {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := flush(open[name].tasks); err != nil {
			return err
		}
	}
	return nil
}

// collectMembers builds the per-request (member) sample set of a
// completed batched run: latency is measured from each original
// request's arrival to its fused task's completion, and normalized
// turnaround uses the request's batch-1 isolated time. Requests arriving
// before cut are excluded from the measured samples.
func (s *Server) collectMembers(res *sim.Result, members map[int][]memberRequest, cut int64) *sampleSet {
	sm := &sampleSet{dispatched: len(res.Tasks), makespan: res.Cycles}
	for _, task := range res.Tasks {
		ms := members[task.ID]
		sm.requests += len(ms)
		if task.Batch > 1 || len(ms) > 1 {
			sm.cnnBatches++
			sm.cnnMembers += len(ms)
		}
		for _, m := range ms {
			if m.arrival < cut {
				continue
			}
			lat := task.Completion - m.arrival
			sm.latencies = append(sm.latencies, s.cfg.Millis(lat))
			ntt := float64(lat) / float64(m.isolated)
			sm.ntts = append(sm.ntts, ntt)
			if ntt > 4 {
				sm.violated++
			}
		}
	}
	return sm
}

// memberStats derives per-request statistics from a batched run.
func (s *Server) memberStats(res *sim.Result, members map[int][]memberRequest, cut int64) (BatchStats, error) {
	return s.statsOf(s.collectMembers(res, members, cut))
}
