package serving

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func openNode(t *testing.T, s *Server, npus int, routing cluster.RoutingPolicy,
	cfg SessionConfig) *NodeSession {
	t.Helper()
	ns, err := s.OpenNode(NodeConfig{NPUs: npus, Routing: routing, Session: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// TestNodeRoutingMatchesBatchRoute is the router-equivalence proof the
// extraction promises: streaming one request at a time through a
// NodeSession must land every request on exactly the NPU the batch
// cluster.Route assigns it on the identical arrival stream —
// byte-identical buckets, for every routing policy.
func TestNodeRoutingMatchesBatchRoute(t *testing.T) {
	s := newServer(t)
	for _, routing := range []cluster.RoutingPolicy{
		cluster.RoundRobin, cluster.LeastQueued, cluster.LeastWork,
	} {
		stream, err := s.Generate(Spec{Horizon: 250 * time.Millisecond, OfferedLoad: 1.8},
			workload.RNGFor(31, 2))
		if err != nil {
			t.Fatal(err)
		}
		want, err := cluster.Route(cluster.Options{NPUs: 3, Routing: routing}, stream)
		if err != nil {
			t.Fatal(err)
		}
		ns := openNode(t, s, 3, routing, SessionConfig{Policy: "FCFS"})
		for _, req := range stream { // Generate emits nondecreasing arrivals
			if err := ns.Submit(req); err != nil {
				t.Fatal(err)
			}
		}
		for i, b := range ns.backends {
			if len(b.reqs) != len(want[i]) {
				t.Fatalf("%v: NPU %d holds %d requests, batch routed %d",
					routing, i, len(b.reqs), len(want[i]))
			}
			for j := range want[i] {
				if b.reqs[j] != want[i][j] {
					t.Fatalf("%v: NPU %d slot %d diverges from batch routing",
						routing, i, j)
				}
			}
		}
	}
}

// TestNodeSingleNPUMatchesSession proves the node composition adds
// nothing to the statistics pipeline: a 1-NPU node over a stream
// reports exactly what a plain Session reports for the same stream.
func TestNodeSingleNPUMatchesSession(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 250 * time.Millisecond, OfferedLoad: 0.6}

	sess, err := s.Open(SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: spec.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Offer(spec, workload.RNGFor(41, 1)); err != nil {
		t.Fatal(err)
	}
	want, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}

	ns := openNode(t, s, 1, cluster.LeastWork,
		SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: spec.Horizon})
	if _, err := ns.Offer(spec, workload.RNGFor(41, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchStats != want {
		t.Errorf("1-NPU node diverges from plain session:\n got %+v\nwant %+v",
			got.BatchStats, want)
	}
	if len(got.PerNPU) != 1 || got.PerNPU[0] != want {
		t.Errorf("per-NPU view diverges from plain session")
	}
}

// TestNodeStatsAggregate checks the merged view's accounting: request
// and measured totals add up across NPUs, the aggregate throughput uses
// the slowest NPU's window, and every served NPU reports a view.
func TestNodeStatsAggregate(t *testing.T) {
	s := newServer(t)
	ns := openNode(t, s, 3, cluster.LeastWork, SessionConfig{Policy: "FCFS"})
	n, err := ns.Offer(Spec{Horizon: 250 * time.Millisecond, OfferedLoad: 2.0},
		workload.RNGFor(43, 7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ns.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("aggregate covers %d of %d requests", st.Requests, n)
	}
	var reqs, measured int
	for i, per := range st.PerNPU {
		reqs += per.Requests
		measured += per.Measured
		if per.Requests == 0 {
			t.Errorf("NPU %d served nothing under least-work at 2.0 load", i)
		}
	}
	if reqs != st.Requests || measured != st.Measured {
		t.Errorf("per-NPU totals (%d req, %d measured) diverge from aggregate (%d, %d)",
			reqs, measured, st.Requests, st.Measured)
	}
	routed := ns.Routed()
	for i, per := range st.PerNPU {
		if routed[i] != per.Requests {
			t.Errorf("NPU %d routed %d but reports %d requests", i, routed[i], per.Requests)
		}
	}
}

// TestNodeStatsIncremental proves the per-backend memoization survives
// the composition: repeated Stats calls re-simulate nothing, and a new
// submission re-simulates only the NPU it routed to.
func TestNodeStatsIncremental(t *testing.T) {
	s := newServer(t)
	ns := openNode(t, s, 2, cluster.RoundRobin, SessionConfig{Policy: "FCFS"})
	stream, err := s.Generate(Spec{Horizon: 200 * time.Millisecond, OfferedLoad: 0.8},
		workload.RNGFor(47, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range stream[:len(stream)-1] {
		if err := ns.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ns.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stats(); err != nil {
		t.Fatal(err)
	}
	sims := func() int {
		total := 0
		for _, b := range ns.backends {
			total += b.Simulations()
		}
		return total
	}
	if got := sims(); got != 2 {
		t.Fatalf("want one simulation per NPU after repeated Stats, got %d", got)
	}
	if err := ns.Submit(stream[len(stream)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stats(); err != nil {
		t.Fatal(err)
	}
	if got := sims(); got != 3 {
		t.Errorf("one new submission should re-simulate exactly one NPU: %d total runs", got)
	}
}

// TestNodeLifecycle exercises ordering, drain and close across the
// composition.
func TestNodeLifecycle(t *testing.T) {
	s := newServer(t)
	ns := openNode(t, s, 2, cluster.RoundRobin, SessionConfig{Policy: "FCFS"})
	if _, err := ns.Stats(); err == nil {
		t.Error("stats on an empty node should error")
	}
	stream, err := s.Generate(Spec{Horizon: 200 * time.Millisecond, OfferedLoad: 0.5},
		workload.RNGFor(51, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range stream {
		if err := ns.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order arrival: the incremental router must refuse it.
	late := stream[0]
	if err := ns.Submit(late); err == nil {
		t.Error("out-of-order arrival should be rejected")
	}
	if _, err := ns.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := ns.Submit(stream[0]); err == nil {
		t.Error("submit after drain should error")
	}
	if _, err := ns.Stats(); err != nil {
		t.Error("stats after drain should still answer:", err)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ns.Close(); err != nil {
		t.Error("close is idempotent:", err)
	}
	if _, err := ns.Stats(); err == nil {
		t.Error("stats after close should error")
	}
	if _, err := s.OpenNode(NodeConfig{NPUs: 0, Session: SessionConfig{Policy: "FCFS"}}); err == nil {
		t.Error("zero NPUs should be rejected")
	}
	if _, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.RoutingPolicy(9),
		Session: SessionConfig{Policy: "FCFS"}}); err == nil {
		t.Error("unknown routing should be rejected")
	}
}

// TestOfferClientsSingleClientNeverQueues is the closed-loop sanity
// anchor: one client keeps at most one request in flight, so on an
// otherwise idle FCFS NPU nothing ever waits — every request's
// normalized turnaround is exactly 1.
func TestOfferClientsSingleClientNeverQueues(t *testing.T) {
	s := newServer(t)
	sess, err := s.Open(SessionConfig{Policy: "FCFS"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sess.OfferClients(ClientSpec{
		Clients: 1, Think: time.Millisecond, Horizon: 200 * time.Millisecond,
	}, workload.RNGFor(61, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("closed loop realized only %d requests", n)
	}
	st, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("stats cover %d of %d realized requests", st.Requests, n)
	}
	if st.MeanNTT != 1 {
		t.Errorf("single closed-loop client queued: mean NTT %v, want exactly 1", st.MeanNTT)
	}
	if got := sess.Simulations(); got != 1 {
		t.Errorf("closed-loop Drain re-simulated: %d runs, want just the generation run", got)
	}
}

// TestOfferClientsMemoMatchesReplay proves the generation-run
// memoization is sound: forcing the session to discard the memo and
// replay the realized arrivals from scratch must land on float-identical
// statistics — the generation run IS the replay.
func TestOfferClientsMemoMatchesReplay(t *testing.T) {
	s := newServer(t)
	sess, err := s.Open(SessionConfig{Policy: "PREMA", Preemptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.OfferClients(ClientSpec{
		Clients: 6, Think: 2 * time.Millisecond, Horizon: 150 * time.Millisecond,
	}, workload.RNGFor(83, 5)); err != nil {
		t.Fatal(err)
	}
	fromGeneration, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Simulations() != 1 {
		t.Fatalf("expected the generation run only, got %d", sess.Simulations())
	}
	sess.dirty = true // discard the memo: force a from-scratch replay
	fromReplay, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Simulations() != 2 {
		t.Fatalf("forced replay did not re-simulate (%d runs)", sess.Simulations())
	}
	if fromGeneration != fromReplay {
		t.Errorf("generation memo diverges from replay:\n gen    %+v\n replay %+v",
			fromGeneration, fromReplay)
	}
}

// TestOfferClientsDeterministic proves a closed-loop sweep is
// reproducible per seed: two sessions offered the same population from
// the same RNG report float-identical statistics.
func TestOfferClientsDeterministic(t *testing.T) {
	s := newServer(t)
	run := func() BatchStats {
		sess, err := s.Open(SessionConfig{Policy: "PREMA", Preemptive: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.OfferClients(ClientSpec{
			Clients: 8, Think: 2 * time.Millisecond, Horizon: 150 * time.Millisecond,
		}, workload.RNGFor(67, 4)); err != nil {
			t.Fatal(err)
		}
		st, err := sess.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("closed-loop stats not deterministic per seed:\n a %+v\n b %+v", a, b)
	}
}

// TestOfferClientsLatencyMonotone sweeps the population: adding clients
// adds contention, so mean latency must not decrease from 1 to 8 to 48
// clients on the same configuration and seed.
func TestOfferClientsLatencyMonotone(t *testing.T) {
	s := newServer(t)
	lat := func(clients int) float64 {
		sess, err := s.Open(SessionConfig{Policy: "FCFS"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.OfferClients(ClientSpec{
			Clients: clients, Think: 2 * time.Millisecond, Horizon: 200 * time.Millisecond,
		}, workload.RNGFor(71, 9)); err != nil {
			t.Fatal(err)
		}
		st, err := sess.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanLatencyMS
	}
	one, eight, fortyEight := lat(1), lat(8), lat(48)
	if !(one <= eight && eight <= fortyEight) {
		t.Errorf("latency not monotone in client count: 1->%.3f 8->%.3f 48->%.3f",
			one, eight, fortyEight)
	}
}

// TestOfferClientsValidation covers the closed-loop error paths.
func TestOfferClientsValidation(t *testing.T) {
	s := newServer(t)
	rng := workload.RNGFor(73, 1)
	batched, err := s.Open(SessionConfig{Policy: "FCFS", Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.OfferClients(ClientSpec{Clients: 2, Horizon: time.Second}, rng); err == nil {
		t.Error("closed loop on a batched session should be rejected")
	}
	sess, err := s.Open(SessionConfig{Policy: "FCFS"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.OfferClients(ClientSpec{Clients: 0, Horizon: time.Second}, rng); err == nil {
		t.Error("zero clients should be rejected")
	}
	if _, err := sess.OfferClients(ClientSpec{Clients: 2}, rng); err == nil {
		t.Error("zero horizon should be rejected")
	}
	if _, err := sess.OfferClients(ClientSpec{Clients: 2, Horizon: time.Second,
		Think: -time.Millisecond}, rng); err == nil {
		t.Error("negative think time should be rejected")
	}
}

// TestNodeOfferClients spreads a closed-loop population across a node:
// every NPU receives its pinned share and the aggregate accounts for
// every realized request.
func TestNodeOfferClients(t *testing.T) {
	s := newServer(t)
	ns := openNode(t, s, 2, cluster.RoundRobin, SessionConfig{Policy: "PREMA", Preemptive: true})
	n, err := ns.OfferClients(ClientSpec{
		Clients: 6, Think: 2 * time.Millisecond, Horizon: 150 * time.Millisecond,
	}, workload.RNGFor(79, 2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("aggregate covers %d of %d realized requests", st.Requests, n)
	}
	for i, per := range st.PerNPU {
		if per.Requests == 0 {
			t.Errorf("NPU %d received no closed-loop traffic for 6 clients over 2 NPUs", i)
		}
	}
}
