package serving

// clients.go is the closed-loop counterpart of the open-loop Offer
// arrival process: N clients each keep exactly one request in flight,
// releasing the next one only after the previous completes plus an
// exponential think time. Where the open-loop model sweeps offered load
// (and can push the queue unboundedly past saturation), the closed loop
// sweeps concurrency — the interactive-user regime where load is
// self-limiting and the knee appears as flattening throughput and
// rising latency as clients are added.
//
// Mechanically, OfferClients realizes the closed loop in one generation
// run: the already-submitted stream plus each client's first request are
// simulated with the sim.Options.OnComplete hook injecting every next
// release at its realized completion. The realized requests then join
// the session as ordinary submissions. Replaying those fixed arrivals
// (which is what Stats does) reproduces the generation run exactly,
// because the simulator's trajectory depends on arrival times, not on
// when an arrival became known — internal/sim's injection test locks
// that invariant in.

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// ClientSpec parameterizes a closed-loop client population.
type ClientSpec struct {
	// Clients is the population size: the number of requests in flight
	// never exceeds it.
	Clients int
	// Think is the mean exponential think time between a request's
	// completion and the same client's next release (0 means
	// back-to-back requests, think floor one cycle).
	Think time.Duration
	// Horizon bounds the run: no request is released at or after it.
	Horizon time.Duration
	// Models restricts the request mix (defaults to the 8-model suite).
	Models []string
	// BatchSizes restricts batches (defaults to {1}: closed-loop
	// requests model individual interactive calls).
	BatchSizes []int
}

// OfferClients drives the closed-loop arrival process: each of the
// spec's clients releases its first request after one think sample, then
// releases each next request one think sample after the previous one
// completes. The realized requests are submitted to the session and the
// realized arrival count is returned.
//
// The realized arrivals are fixed against the stream submitted so far:
// requests submitted after OfferClients returns share the NPU with the
// realized stream but do not retime it. Closed loops require an
// unbatched session (Window 0): window coalescing would re-time the
// completions that gate each next release.
func (ss *Session) OfferClients(spec ClientSpec, rng *rand.Rand) (int, error) {
	if ss.closed {
		return 0, fmt.Errorf("serving: session closed")
	}
	if ss.drained {
		return 0, fmt.Errorf("serving: session drained; no further submissions")
	}
	if ss.cfg.Window > 0 {
		return 0, fmt.Errorf("serving: closed-loop clients require an unbatched session (Window 0)")
	}
	if spec.Clients <= 0 {
		return 0, fmt.Errorf("serving: non-positive client count %d", spec.Clients)
	}
	if spec.Think < 0 {
		return 0, fmt.Errorf("serving: negative think time %v", spec.Think)
	}
	if spec.Horizon <= 0 {
		return 0, fmt.Errorf("serving: non-positive horizon %v", spec.Horizon)
	}
	models := spec.Models
	if len(models) == 0 {
		models = defaultSuite()
	}
	batches := spec.BatchSizes
	if len(batches) == 0 {
		batches = []int{1}
	}
	horizon := ss.srv.cfg.Cycles(spec.Horizon)
	thinkMean := float64(ss.srv.cfg.Cycles(spec.Think))

	// The generation run sees the session's current stream plus the
	// client traffic, so the realized completions reflect the shared
	// NPU. IDs continue the submission indices: the replay (compute)
	// re-stamps templates with exactly these IDs, keeping every
	// tie-break identical between generation and replay.
	entries := make([]*sched.Task, 0, len(ss.reqs)+spec.Clients)
	for i, t := range ss.reqs {
		entries = append(entries, materialize(i, t).Task)
	}
	nextID := len(ss.reqs)
	var realized []*workload.Task
	owner := make(map[int]int, spec.Clients)
	release := func(client int, at int64) (*sched.Task, error) {
		gap := int64(rng.ExpFloat64() * thinkMean)
		if gap < 1 {
			// Arrivals strictly follow the completions that release
			// them; a zero-cycle think would alias the two events.
			gap = 1
		}
		arrival := at + gap
		if arrival >= horizon {
			return nil, nil // the client's session ends at the horizon
		}
		name := models[rng.IntN(len(models))]
		b := batches[rng.IntN(len(batches))]
		prio := sched.Priorities[rng.IntN(len(sched.Priorities))]
		inst, err := ss.srv.gen.InstanceByName(nextID, name, b, prio, arrival, rng)
		if err != nil {
			return nil, err
		}
		owner[nextID] = client
		nextID++
		realized = append(realized, inst)
		return inst.Task, nil
	}

	for c := 0; c < spec.Clients; c++ {
		entry, err := release(c, 0)
		if err != nil {
			return 0, err
		}
		if entry != nil {
			entries = append(entries, entry)
		}
	}
	if len(realized) == 0 {
		return 0, fmt.Errorf("serving: horizon %v too short for think time %v",
			spec.Horizon, spec.Think)
	}

	var hookErr error
	onComplete := func(done *sched.Task, now int64) []*sched.Task {
		if hookErr != nil {
			return nil
		}
		client, ok := owner[done.ID]
		if !ok {
			return nil // not closed-loop traffic
		}
		entry, err := release(client, now)
		if err != nil {
			hookErr = err
			return nil
		}
		if entry == nil {
			return nil
		}
		return []*sched.Task{entry}
	}
	res, err := ss.srv.simulateHook(ss.cfg.Policy, ss.cfg.Preemptive, ss.cfg.Selector,
		entries, onComplete)
	if err != nil {
		return 0, err
	}
	if hookErr != nil {
		return 0, hookErr
	}

	// Commit the realized stream: from here on it is ordinary submitted
	// traffic. Because replaying the realized arrivals reproduces the
	// generation run exactly, the generation result already IS the
	// session's next simulation — memoize its samples instead of leaving
	// the session dirty, so a following Stats/Drain re-simulates
	// nothing. (cut() reads the committed stream, so append first.)
	ss.reqs = append(ss.reqs, realized...)
	ss.simulations++
	ss.samples = *ss.srv.collectTasks(res, ss.cut())
	ss.dirty = false
	ss.statsValid = false
	return len(realized), nil
}
