package serving

// autoscale_test.go locks in the autoscaling node session's contracts:
// the static no-op scaler is output-identical to no scaler at all, a
// threshold scaler under a ramped load grows and shrinks the fleet and
// beats the fixed-minimum fleet's SLO-violation fraction, and the whole
// pipeline is deterministic per seed.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// ramp is the canonical diurnal profile the tests drive: a climb to 3x
// a single NPU's capacity and back down, in five equal segments.
var ramp = []float64{0.4, 1.5, 3.0, 1.5, 0.4}

const rampSegment = 40 * time.Millisecond

// rampHorizon is the reference horizon for warm-up cuts across the
// whole ramp.
const rampHorizon = 200 * time.Millisecond

// rampModels is the interactive mix the autoscale tests serve: the
// light models (sub-3ms isolated at batch 1), so a 40ms segment holds
// tens of requests and a single-digit-millisecond SLO is meaningful.
// The heavy translation/ASR RNNs would make every SLO unattainable at
// batch 1 regardless of fleet size.
var rampModels = []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"}

func offerRamp(t *testing.T, ns *NodeSession, seed uint64) int {
	t.Helper()
	n, err := ns.OfferRamp(Spec{Horizon: rampSegment, Models: rampModels,
		BatchSizes: []int{1}}, ramp, workload.RNGFor(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestStaticScalerByteIdentical is the acceptance anchor: a node with
// the static no-op scaler attached must produce byte-identical output
// to a scaler-less node over the identical stream — the autoscale tick
// machinery adds nothing but the (empty) timeline.
func TestStaticScalerByteIdentical(t *testing.T) {
	s := newServer(t)
	session := SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon}

	plain, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastWork, Session: session})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, plain, 11)
	want, err := plain.Drain()
	if err != nil {
		t.Fatal(err)
	}

	scaled, err := s.OpenNode(NodeConfig{
		NPUs: 2, Routing: cluster.LeastWork, Session: session,
		Autoscale: &AutoscaleConfig{Scaler: "static", SLO: 8 * time.Millisecond,
			MinNPUs: 1, MaxNPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, scaled, 11)
	got, err := scaled.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if got.BatchStats != want.BatchStats {
		t.Errorf("static scaler diverges from scaler-less run:\n got  %+v\n want %+v",
			got.BatchStats, want.BatchStats)
	}
	if len(got.PerNPU) != len(want.PerNPU) {
		t.Fatalf("static scaler changed the fleet: %d vs %d backends",
			len(got.PerNPU), len(want.PerNPU))
	}
	for i := range want.PerNPU {
		if got.PerNPU[i] != want.PerNPU[i] {
			t.Errorf("NPU %d diverges:\n got  %+v\n want %+v", i, got.PerNPU[i], want.PerNPU[i])
		}
	}
	if want.Scaling != nil {
		t.Error("scaler-less run reports a scaling timeline")
	}
	if got.Scaling == nil {
		t.Fatal("static-scaled run reports no scaling timeline")
	}
	if len(got.Scaling.Events) != 1 || got.Scaling.Events[0].NPUs != 2 {
		t.Errorf("static scaler timeline = %+v, want only the initial anchor", got.Scaling.Events)
	}
	if got.Scaling.PeakNPUs != 2 || got.Scaling.MeanNPUs != 2 {
		t.Errorf("static fleet reports peak %d / mean %.2f, want 2 / 2",
			got.Scaling.PeakNPUs, got.Scaling.MeanNPUs)
	}
}

// TestThresholdScalerTracksRamp is the second acceptance anchor: under
// the ramp, the queue-depth scaler must grow the fleet into the peak,
// shrink it back down the far side, and end with a lower SLO-violation
// fraction than the fleet pinned at the minimum size.
func TestThresholdScalerTracksRamp(t *testing.T) {
	s := newServer(t)
	const slo = 6 * time.Millisecond
	session := SessionConfig{Policy: "FCFS", Horizon: rampHorizon}

	scaled, err := s.OpenNode(NodeConfig{
		NPUs: 1, Routing: cluster.LeastWork, Session: session,
		Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: slo,
			MinNPUs: 1, MaxNPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, scaled, 13)
	got, err := scaled.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got.Scaling == nil {
		t.Fatal("no scaling timeline")
	}
	if got.Scaling.PeakNPUs <= 1 {
		t.Fatalf("fleet never grew under a 3x-capacity peak: %+v", got.Scaling.Events)
	}
	var grew, shrank bool
	for _, e := range got.Scaling.Events {
		if e.Delta > 0 {
			grew = true
		}
		if e.Delta < 0 {
			shrank = true
		}
	}
	if !grew || !shrank {
		t.Errorf("fleet did not both rise and fall with the load: %+v", got.Scaling.Events)
	}
	if last := got.Scaling.Events[len(got.Scaling.Events)-1]; last.NPUs >= got.Scaling.PeakNPUs {
		t.Errorf("fleet never came back down from its peak of %d: %+v",
			got.Scaling.PeakNPUs, got.Scaling.Events)
	}

	// The fixed-minimum fleet over the identical ramp: same stream, no
	// elasticity. The scaled fleet must violate the SLO less.
	fixed, err := s.OpenNode(NodeConfig{
		NPUs: 1, Routing: cluster.LeastWork, Session: session,
		Autoscale: &AutoscaleConfig{Scaler: "static", SLO: slo, MinNPUs: 1, MaxNPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, fixed, 13)
	base, err := fixed.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got.Scaling.SLOViolationFrac >= base.Scaling.SLOViolationFrac {
		t.Errorf("scaling did not reduce SLO violations: scaled %.3f vs fixed-minimum %.3f",
			got.Scaling.SLOViolationFrac, base.Scaling.SLOViolationFrac)
	}
}

// TestTargetLatencyScalerTracksRamp runs the PI scaler over the same
// ramp: it must also grow into the peak and improve on the
// fixed-minimum fleet.
func TestTargetLatencyScalerTracksRamp(t *testing.T) {
	s := newServer(t)
	session := SessionConfig{Policy: "FCFS", Horizon: rampHorizon}
	ns, err := s.OpenNode(NodeConfig{
		NPUs: 1, Routing: cluster.LeastWork, Session: session,
		Autoscale: &AutoscaleConfig{Scaler: "target-latency", SLO: 6 * time.Millisecond,
			MinNPUs: 1, MaxNPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, ns, 13)
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scaling.PeakNPUs <= 1 {
		t.Errorf("PI fleet never grew under a 3x-capacity peak: %+v", st.Scaling.Events)
	}
	if st.Scaling.MeanNPUs <= 1 || st.Scaling.MeanNPUs > 4 {
		t.Errorf("implausible time-weighted mean fleet %.2f", st.Scaling.MeanNPUs)
	}
}

// TestAutoscaleDeterministic proves an autoscaled run is reproducible:
// identical seeds give identical statistics and an identical event
// timeline.
func TestAutoscaleDeterministic(t *testing.T) {
	s := newServer(t)
	run := func() NodeStats {
		ns, err := s.OpenNode(NodeConfig{
			NPUs: 1, Routing: cluster.LeastQueued,
			Session: SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
			Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 8 * time.Millisecond,
				MinNPUs: 1, MaxNPUs: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		offerRamp(t, ns, 17)
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.BatchStats != b.BatchStats {
		t.Errorf("autoscaled stats not deterministic:\n a %+v\n b %+v", a.BatchStats, b.BatchStats)
	}
	if len(a.Scaling.Events) != len(b.Scaling.Events) {
		t.Fatalf("event timelines diverge: %d vs %d events",
			len(a.Scaling.Events), len(b.Scaling.Events))
	}
	for i := range a.Scaling.Events {
		if a.Scaling.Events[i] != b.Scaling.Events[i] {
			t.Errorf("event %d diverges: %+v vs %+v", i, a.Scaling.Events[i], b.Scaling.Events[i])
		}
	}
}

// TestRetiredBackendSamplesFold proves a scale-down loses nothing: the
// aggregate request count covers every submitted request, including
// those served by backends that were retired mid-stream.
func TestRetiredBackendSamplesFold(t *testing.T) {
	s := newServer(t)
	ns, err := s.OpenNode(NodeConfig{
		NPUs: 1, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon},
		Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 6 * time.Millisecond,
			MinNPUs: 1, MaxNPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := offerRamp(t, ns, 13)
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("aggregate covers %d of %d requests after scale events", st.Requests, n)
	}
	var perNPU int
	for _, per := range st.PerNPU {
		perNPU += per.Requests
	}
	if perNPU != n {
		t.Errorf("per-NPU views cover %d of %d requests", perNPU, n)
	}
	if len(st.PerNPU) != len(ns.Routed()) {
		t.Errorf("PerNPU (%d) and Routed (%d) disagree on fleet size",
			len(st.PerNPU), len(ns.Routed()))
	}
}

// TestAutoscaleValidation covers the configuration error paths and the
// closed-loop exclusion.
func TestAutoscaleValidation(t *testing.T) {
	s := newServer(t)
	session := SessionConfig{Policy: "FCFS"}
	open := func(a AutoscaleConfig, npus int) error {
		_, err := s.OpenNode(NodeConfig{NPUs: npus, Session: session, Autoscale: &a})
		return err
	}
	if err := open(AutoscaleConfig{SLO: time.Millisecond}, 1); err == nil {
		t.Error("empty scaler label should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "nope", SLO: time.Millisecond}, 1); err == nil {
		t.Error("unknown scaler should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "static"}, 1); err == nil {
		t.Error("missing SLO should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "static", SLO: time.Millisecond,
		MinNPUs: 4, MaxNPUs: 2}, 4); err == nil {
		t.Error("max below min should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "static", SLO: time.Millisecond,
		MinNPUs: 2, MaxNPUs: 4}, 1); err == nil {
		t.Error("initial fleet outside the bounds should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "static", SLO: time.Millisecond,
		Tick: -time.Millisecond}, 1); err == nil {
		t.Error("negative tick should be rejected")
	}
	if err := open(AutoscaleConfig{Scaler: "static", SLO: time.Millisecond,
		MinNPUs: -1}, 1); err == nil {
		t.Error("negative fleet minimum should be rejected")
	}

	ns, err := s.OpenNode(NodeConfig{NPUs: 1, Session: session,
		Autoscale: &AutoscaleConfig{Scaler: "static", SLO: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.OfferClients(ClientSpec{Clients: 2, Horizon: time.Second},
		workload.RNGFor(1, 1)); err == nil {
		t.Error("closed-loop clients on an autoscaling node should be rejected")
	}
}

// TestOfferRampChaining proves ramp segments chain in nondecreasing
// arrival order on a plain (scaler-less) node and cover the whole
// profile span.
func TestOfferRampChaining(t *testing.T) {
	s := newServer(t)
	ns, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.RoundRobin,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	n := offerRamp(t, ns, 19)
	if n == 0 {
		t.Fatal("ramp produced no requests")
	}
	// The last segment's arrivals must land in the final window: the
	// session clock advanced across segment boundaries.
	if ns.lastArrival < s.cfg.Cycles(4*rampSegment) {
		t.Errorf("ramp never reached its final segment (last arrival %d)", ns.lastArrival)
	}
	if _, err := ns.OfferRamp(Spec{Horizon: rampSegment}, nil,
		workload.RNGFor(1, 1)); err == nil {
		t.Error("empty ramp should be rejected")
	}
	if _, err := ns.OfferRamp(Spec{}, ramp, workload.RNGFor(1, 1)); err == nil {
		t.Error("zero segment length should be rejected")
	}
	if _, err := ns.OfferRamp(Spec{Horizon: rampSegment},
		[]float64{1.0, -0.5}, workload.RNGFor(1, 1)); err == nil {
		t.Error("negative load should be rejected")
	}
}

// TestOfferRampIdleTrough proves a zero-load segment is an idle window,
// not an error: arrivals resume in the segment after the trough.
func TestOfferRampIdleTrough(t *testing.T) {
	s := newServer(t)
	ns, err := s.OpenNode(NodeConfig{NPUs: 1, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ns.OfferRamp(Spec{Horizon: rampSegment, Models: rampModels,
		BatchSizes: []int{1}}, []float64{0, 1.0, 0, 1.0}, workload.RNGFor(23, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("trough ramp produced no requests")
	}
	// The final segment's arrivals must land past the second trough.
	if ns.lastArrival < s.cfg.Cycles(3*rampSegment) {
		t.Errorf("ramp never resumed after the trough (last arrival %d)", ns.lastArrival)
	}
}
