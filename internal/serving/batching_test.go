package serving

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestBatchingDisabledMatchesUnbatchedShape(t *testing.T) {
	s := newServer(t)
	bs := BatchSpec{Spec: Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.5}}
	st, err := s.RunBatched(bs, "FCFS", false, "", workload.RNGFor(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dispatched != st.Requests {
		t.Errorf("window 0 should dispatch one task per request: %d vs %d",
			st.Dispatched, st.Requests)
	}
	if st.MeanBatch != 1 {
		t.Errorf("mean batch %v, want 1", st.MeanBatch)
	}
}

func TestBatchingCoalescesCNNRequests(t *testing.T) {
	s := newServer(t)
	bs := BatchSpec{
		Spec: Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.7,
			Models: []string{"CNN-AN", "CNN-GN"}},
		Window: 4 * time.Millisecond,
	}
	st, err := s.RunBatched(bs, "FCFS", false, "", workload.RNGFor(12, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dispatched >= st.Requests {
		t.Errorf("batching should fuse requests: %d dispatched of %d", st.Dispatched, st.Requests)
	}
	if st.MeanBatch <= 1.2 {
		t.Errorf("mean batch %v too small for a 4ms window at 0.7 load", st.MeanBatch)
	}
}

func TestRNNsNeverBatch(t *testing.T) {
	s := newServer(t)
	bs := BatchSpec{
		Spec: Spec{Horizon: 200 * time.Millisecond, OfferedLoad: 0.6,
			Models: []string{"RNN-SA", "RNN-MT2"}},
		Window: 8 * time.Millisecond,
	}
	st, err := s.RunBatched(bs, "FCFS", false, "", workload.RNGFor(13, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dispatched != st.Requests {
		t.Errorf("RNN requests must pass through unbatched: %d vs %d",
			st.Dispatched, st.Requests)
	}
}

func TestBatchingRaisesThroughputUnderSaturation(t *testing.T) {
	// At an offered load the unbatched server cannot sustain, fusing
	// CNN requests recovers throughput (the Figure 1 co-location story
	// with batching instead of co-location).
	s := newServer(t)
	spec := Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 1.6,
		Models: []string{"CNN-AN", "CNN-GN", "CNN-MN"}}
	unbatched, err := s.RunBatched(BatchSpec{Spec: spec},
		"FCFS", false, "", workload.RNGFor(14, 4))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := s.RunBatched(BatchSpec{Spec: spec, Window: 4 * time.Millisecond},
		"FCFS", false, "", workload.RNGFor(14, 4))
	if err != nil {
		t.Fatal(err)
	}
	if batched.ThroughputPerSec <= unbatched.ThroughputPerSec {
		t.Errorf("batched throughput %.0f/s should beat unbatched %.0f/s under overload",
			batched.ThroughputPerSec, unbatched.ThroughputPerSec)
	}
}

func TestBatchCapRespected(t *testing.T) {
	s := newServer(t)
	bs := BatchSpec{
		Spec: Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 2.0,
			Models: []string{"CNN-MN"}},
		Window:   20 * time.Millisecond,
		MaxBatch: 4,
	}
	st, err := s.RunBatched(bs, "FCFS", false, "", workload.RNGFor(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanBatch > 4 {
		t.Errorf("mean batch %v exceeds the cap of 4", st.MeanBatch)
	}
}
