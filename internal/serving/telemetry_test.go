package serving

// telemetry_test.go locks in the observability contracts: a traced run
// exports a byte-identical JSONL trace and metric series on replay,
// tracing changes nothing about the simulated stream, the per-tier
// statistics breakdown is consistent with the fleet totals, and
// tier-aware scale-down keeps a drawdown proportioned to the template.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/npu"
	"repro/internal/telemetry"
)

// tracedChaosRun drives one tiered, autoscaled, fault-injected ramp
// with a telemetry handle attached and returns the JSONL export plus
// the drained statistics. Every lifecycle edge kind occurs: the
// slowdown produces stretch events, the failure reclaim/re-route pairs.
func tracedChaosRun(t *testing.T) ([]byte, NodeStats) {
	t.Helper()
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "50%:fast,50%:slow")
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.New()
	ns, err := s.OpenNode(NodeConfig{
		NPUs: 2, Fleet: tiers, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
		Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 8 * time.Millisecond,
			MinNPUs: 2, MaxNPUs: 6},
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSchedule(t, ns, 40*time.Millisecond, NodeOp{Kind: SlowNPU, NPU: 0, Factor: 2})
	mustSchedule(t, ns, 80*time.Millisecond, NodeOp{Kind: FailNPU, NPU: 1})
	offerRamp(t, ns, 17)
	if err := ns.AdvanceTo(rampHorizon); err != nil {
		t.Fatal(err)
	}
	events, err := ns.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}
	out, err := telemetry.EncodeJSONL(events, tr.Recorder.Samples())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

// TestTracedReplayByteIdentical is the tentpole acceptance anchor: the
// same seed and fault schedule export the same JSONL bytes, twice.
func TestTracedReplayByteIdentical(t *testing.T) {
	j1, st1 := tracedChaosRun(t)
	j2, st2 := tracedChaosRun(t)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("traced replays diverge:\n--- first\n%s\n--- second\n%s", j1, j2)
	}
	if st1.BatchStats != st2.BatchStats {
		t.Errorf("traced replays disagree on stats:\n %+v\n %+v", st1.BatchStats, st2.BatchStats)
	}
	// The export must carry every lifecycle edge the chaos schedule
	// provokes, plus tick lines from the recorder.
	text := string(j1)
	for _, kind := range []string{
		telemetry.KindSubmit, telemetry.KindRoute, telemetry.KindStretch,
		telemetry.KindReclaim, telemetry.KindComplete, "tick",
	} {
		if !strings.Contains(text, `"kind":"`+kind+`"`) {
			t.Errorf("JSONL export missing %q lines", kind)
		}
	}
	if !strings.Contains(text, `"tier":"slow"`) {
		t.Error("tiered trace carries no tier labels")
	}
}

// TestTracingObservesOnly: attaching telemetry must not perturb the
// simulated stream — the traced run's statistics equal the untraced
// run's, per backend.
func TestTracingObservesOnly(t *testing.T) {
	run := func(tr *telemetry.Trace) NodeStats {
		s := newServer(t)
		ns, err := s.OpenNode(NodeConfig{
			NPUs: 3, Routing: cluster.LeastWork,
			Session: SessionConfig{Policy: "PREMA", Preemptive: true, Horizon: rampHorizon},
			Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 8 * time.Millisecond,
				MinNPUs: 1, MaxNPUs: 6},
			Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		offerRamp(t, ns, 13)
		st, err := ns.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(nil)
	traced := run(telemetry.New())
	if plain.BatchStats != traced.BatchStats {
		t.Errorf("tracing perturbed the stream:\n plain  %+v\n traced %+v",
			plain.BatchStats, traced.BatchStats)
	}
	if len(plain.PerNPU) != len(traced.PerNPU) {
		t.Fatalf("tracing changed the fleet: %d vs %d backends", len(plain.PerNPU), len(traced.PerNPU))
	}
	for i := range plain.PerNPU {
		if plain.PerNPU[i] != traced.PerNPU[i] {
			t.Errorf("NPU %d diverges under tracing:\n %+v\n %+v", i, plain.PerNPU[i], traced.PerNPU[i])
		}
	}
}

// TestNodeStatsTierBreakdown: tiered fleets report per-tier statistics
// consistent with the fleet totals; homogeneous fleets report none, so
// their stats shape is unchanged.
func TestNodeStatsTierBreakdown(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.OpenNode(NodeConfig{
		NPUs: 4, Fleet: tiers, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, ns, 19)
	st, err := ns.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Tier != "fast" || st.Tiers[1].Tier != "slow" {
		t.Fatalf("tier breakdown %+v, want fast/slow in template order", st.Tiers)
	}
	reqs, npus := 0, 0
	for _, ts := range st.Tiers {
		reqs += ts.Requests
		npus += ts.NPUs
		if ts.Measured > ts.Requests {
			t.Errorf("tier %s measured %d > routed %d", ts.Tier, ts.Measured, ts.Requests)
		}
		if ts.Measured > 0 && ts.P95LatencyMS < ts.P50LatencyMS {
			t.Errorf("tier %s P95 %.3f < P50 %.3f", ts.Tier, ts.P95LatencyMS, ts.P50LatencyMS)
		}
	}
	if npus != 4 || reqs == 0 {
		t.Errorf("tier totals %d NPUs / %d requests, want 4 NPUs and routed work", npus, reqs)
	}

	plain, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	offerRamp(t, plain, 19)
	pst, err := plain.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if pst.Tiers != nil {
		t.Errorf("homogeneous fleet reports tier stats: %+v", pst.Tiers)
	}
}

// TestTraceEventsErrors pins the refusal paths: no tracer attached, and
// a closed session.
func TestTraceEventsErrors(t *testing.T) {
	s := newServer(t)
	plain, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.TraceEvents(); err == nil ||
		!strings.Contains(err.Error(), "no tracer attached") {
		t.Errorf("untraced TraceEvents error = %v, want 'no tracer attached'", err)
	}

	traced, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon},
		Trace:   telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := traced.TraceEvents(); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Errorf("closed TraceEvents error = %v, want 'closed'", err)
	}
}

// TestTieredScaleDownFollowsWeights is the retire-rule regression: a
// 70/30 fleet grown to 10 and halved must shed backends from whichever
// tier is over its share (inverse D'Hondt), landing on 4 fast / 1 slow
// active — not on whichever tier happened to run emptiest.
func TestTieredScaleDownFollowsWeights(t *testing.T) {
	s := newServer(t)
	tiers, err := FleetFromTemplate(npu.DefaultConfig(), "70%:fast,30%:slow")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.OpenNode(NodeConfig{NPUs: 2, Routing: cluster.LeastWork, Fleet: tiers,
		Session: SessionConfig{Policy: "FCFS", Horizon: rampHorizon}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.ScaleTo(10); err != nil {
		t.Fatal(err)
	}
	if err := ns.ScaleTo(5); err != nil {
		t.Fatal(err)
	}
	active := map[string]int{}
	for _, v := range ns.Fleet() {
		if v.State == "active" {
			active[v.Tier]++
		}
	}
	if active["fast"] != 4 || active["slow"] != 1 {
		t.Errorf("halved fleet = %v active, want 4 fast / 1 slow (inverse D'Hondt)", active)
	}
}
