package serving

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSessionMatchesRun proves the incremental Session path computes the
// exact statistics the batch Run entry point reports for the same
// request stream: Generate is deterministic for a seeded RNG, so feeding
// the identical stream through Submit must land on identical floats.
func TestSessionMatchesRun(t *testing.T) {
	s := newServer(t)
	spec := Spec{Horizon: 300 * time.Millisecond, OfferedLoad: 0.6}

	want, err := s.Run(spec, "PREMA", true, "dynamic", workload.RNGFor(11, 4))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := s.Open(SessionConfig{
		Policy: "PREMA", Preemptive: true, Selector: "dynamic",
		Horizon: spec.Horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := s.Generate(spec, workload.RNGFor(11, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range stream {
		if err := sess.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want {
		t.Errorf("session stats diverge from batch Run:\n got %+v\nwant %+v", got.Stats, want)
	}
	if got.Dispatched != len(stream) {
		t.Errorf("dispatched %d of %d submitted", got.Dispatched, len(stream))
	}
}

// TestSessionIncrementalMemo proves Stats is incremental: repeated calls
// without new submissions answer from the memo, and new submissions
// trigger exactly one re-simulation.
func TestSessionIncrementalMemo(t *testing.T) {
	s := newServer(t)
	sess, err := s.Open(SessionConfig{Policy: "FCFS"})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := s.Generate(Spec{Horizon: 200 * time.Millisecond, OfferedLoad: 0.5},
		workload.RNGFor(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) < 4 {
		t.Fatalf("stream too short: %d", len(stream))
	}
	for _, req := range stream[:len(stream)-1] {
		if err := sess.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stats(); err != nil {
		t.Fatal(err)
	}
	if got := sess.Simulations(); got != 1 {
		t.Errorf("repeated Stats re-simulated: %d runs", got)
	}
	if err := sess.Submit(stream[len(stream)-1]); err != nil {
		t.Fatal(err)
	}
	first, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Simulations(); got != 2 {
		t.Errorf("want 2 simulations after new submission, got %d", got)
	}
	if first.Requests != len(stream) {
		t.Errorf("stats cover %d of %d requests", first.Requests, len(stream))
	}
}

// TestSessionLifecycle exercises the drain/close state machine and the
// open-loop Offer arrival process.
func TestSessionLifecycle(t *testing.T) {
	s := newServer(t)
	sess, err := s.Open(SessionConfig{Policy: "PREMA", Preemptive: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sess.Offer(Spec{Horizon: 200 * time.Millisecond, OfferedLoad: 0.5},
		workload.RNGFor(3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || sess.Pending() != n {
		t.Fatalf("offered %d, pending %d", n, sess.Pending())
	}
	if _, err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(sess.reqs[0]); err == nil {
		t.Error("submit after drain should error")
	}
	if _, err := sess.Stats(); err != nil {
		t.Error("stats after drain should still answer:", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Error("close is idempotent:", err)
	}
	if _, err := sess.Stats(); err == nil {
		t.Error("stats after close should error")
	}
}

// TestSessionRejectsBadConfig covers the Open validation paths.
func TestSessionRejectsBadConfig(t *testing.T) {
	s := newServer(t)
	if _, err := s.Open(SessionConfig{Policy: "NOPE"}); err == nil {
		t.Error("unknown policy should be rejected")
	}
	if _, err := s.Open(SessionConfig{Policy: "PREMA", Preemptive: true,
		Selector: "bogus"}); err == nil {
		t.Error("unknown selector should be rejected")
	}
	if _, err := s.Open(SessionConfig{Policy: "FCFS",
		Selector: "dynamic"}); err == nil {
		t.Error("selector on a non-preemptive session should be rejected")
	}
}

// TestSessionBatchingCoalesces proves the windowed session fuses
// same-model CNN requests and reports per-member statistics.
func TestSessionBatchingCoalesces(t *testing.T) {
	s := newServer(t)
	sess, err := s.Open(SessionConfig{
		Policy: "FCFS",
		Window: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Horizon: 200 * time.Millisecond, OfferedLoad: 0.5,
		Models: []string{"CNN-AN", "CNN-GN"}, BatchSizes: []int{1},
	}
	n, err := sess.Offer(spec, workload.RNGFor(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != n {
		t.Errorf("stats cover %d of %d requests", st.Requests, n)
	}
	if st.Dispatched >= n {
		t.Errorf("no coalescing: %d dispatches for %d requests", st.Dispatched, n)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("mean fused batch %f not above 1", st.MeanBatch)
	}
}
