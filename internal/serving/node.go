package serving

// node.go lifts the streaming Session from one NPU to a multi-NPU
// system node — the deployment the paper scopes out as future work
// (Section II-C), as a long-lived endpoint instead of the batch
// cluster.Run. A NodeSession drives the cluster package's incremental
// Router over its fluid State: every submitted or offered request is
// routed the moment it arrives and lands in that NPU's local Session
// backend, which keeps its own scheduler, batching window and
// incremental statistics. Because the batch Route loop drives the
// identical Router, a streamed request sequence lands on exactly the
// NPUs the batch router would have chosen (node_test.go proves the
// buckets byte-identical).
//
// Closed-loop clients (OfferClients) pin to an NPU round-robin — the
// affinity real load balancers give session-sticky traffic — because a
// closed loop couples each arrival to the completion of the same
// client's previous request on its serving NPU. The fluid router state
// keeps balancing the open-loop and submitted traffic around that
// pinned load.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/npu"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// NodeConfig parameterizes a streaming multi-NPU node session.
type NodeConfig struct {
	// NPUs is the initial accelerator count in the node (>= 1). With an
	// autoscaler attached it is the starting fleet size and must lie
	// inside the configured [MinNPUs, MaxNPUs] bounds.
	NPUs int
	// Routing selects the router policy dispatching requests to NPUs.
	Routing cluster.RoutingPolicy
	// Session is the per-NPU local configuration: every backend runs
	// this scheduler, batching window and warm-up cut. Backends spun up
	// by a scale-up run the identical configuration.
	Session SessionConfig
	// Fleet partitions the node into weighted hardware tiers (see
	// FleetFromTemplate); empty keeps every backend on the server's
	// base config. Initial backends are assigned in tier order by
	// largest-remainder apportionment, and every scale-up picks the
	// tier furthest below its weight (autoscale.PickTier).
	Fleet []Tier
	// Autoscale attaches an SLO-driven scaling policy that grows and
	// shrinks the backend set as the stream advances; nil keeps the
	// fleet fixed.
	Autoscale *AutoscaleConfig
	// TrackWork enables the router state's work ledger from the first
	// request, so failures can be scheduled at any later point in the
	// stream (the ledger must observe every routing decision to reclaim
	// in-flight work). Long-lived sessions — the control plane — set it;
	// batch runs that schedule all chaos up front don't need to.
	TrackWork bool
	// Trace attaches the telemetry layer: per-request lifecycle events
	// into Trace.Tracer and one fleet sample per autoscale tick into
	// Trace.Recorder (see internal/telemetry). Nil disables both, and a
	// disabled node runs byte-identically to one without the field.
	Trace *telemetry.Trace
}

// NodeStats aggregates a node session's stream: node-wide steady-state
// statistics over the union of every NPU's measured requests, plus each
// NPU's own view. The node's throughput window is the slowest NPU's
// makespan.
type NodeStats struct {
	// BatchStats is the node-wide aggregate over the union of every
	// backend's measured requests.
	BatchStats
	// PerNPU holds each backend's statistics over its routed share —
	// including backends a scale-down retired, whose routed requests
	// keep counting. An NPU that served nothing (or whose requests all
	// fell inside the warm-up window) reports a zero entry with only
	// Requests and Dispatched set.
	PerNPU []BatchStats
	// Scaling is the autoscaler's timeline view (fleet size over time,
	// scale events, SLO-violation fraction); nil unless a scaler is
	// attached.
	Scaling *ScalingStats
	// Tiers breaks the aggregate down per hardware tier, in template
	// order; nil on homogeneous fleets, so their stats are unchanged by
	// the field's existence.
	Tiers []TierStats
}

// NodeSession is an open node-level serving endpoint: one streaming
// router in front of per-NPU Session backends. A NodeSession is not
// safe for concurrent use.
type NodeSession struct {
	srv      *Server
	router   cluster.Router
	state    *cluster.State
	backends []*Session
	// session is the per-NPU configuration scale-ups clone into fresh
	// backends.
	session SessionConfig
	// scale is the attached autoscaler state; nil on fixed fleets.
	scale *scaling

	// timeline is the fleet history: a start anchor, applied scaling
	// actions, and fired chaos operations (see chaos.go).
	timeline []NodeEvent
	// pending holds scheduled chaos operations sorted by (cycle,
	// schedule order); opSeq stamps that order.
	pending []nodeOp
	opSeq   int
	// speed is the per-backend service-time multiplier (baseSpeed =
	// nominal; a SlowNPU operation raises it, RestoreNPU resets it).
	speed []float64
	// baseSpeed is each backend's nominal service-time factor — its
	// tier's clock derate, 1 everywhere on homogeneous fleets. Chaos
	// slowdowns stack on it and restores return to it.
	baseSpeed []float64
	// tiers is the heterogeneous fleet's hardware classes (nil on
	// homogeneous fleets); tierOf maps each backend to its tier index,
	// and tierSpeed/tierWeights cache each tier's derate factor and
	// apportionment weight. tierActive is the reused per-tier
	// active-count scratch buffer behind pickTier and the scaler's
	// Metrics snapshot.
	tiers       []Tier
	tierOf      []int
	tierSpeed   []float64
	tierWeights []int
	tierActive  []int
	// stretchCache shares stretched program copies per (program,
	// factor); stretchOrig maps a stretched instance back to its
	// nominal template so failure reclaim can shed the slowdown.
	stretchCache map[stretchKey]*npu.Program
	stretchOrig  map[*workload.Task]*workload.Task

	// estRing is a fixed ring of the most recent fluid latency
	// estimates (ms) routed through the node — the control plane's
	// tick-window percentile source; estCount is the total ever pushed.
	estRing  []float64
	estCount int

	// trace is the attached telemetry layer (nil when disabled):
	// traceNext numbers submissions with stable per-request IDs,
	// reclaims counts failure reclaims cumulatively, and lastCompleted/
	// lastReclaims anchor the tick sample's counter deltas. tierSyms
	// pre-interns the tier names (one Sym per tier, template order) and
	// modelSyms caches model-name Syms indexed by the task's small
	// generator-assigned ModelID, so the per-submit recording path
	// never compares strings.
	trace         *telemetry.Trace
	traceNext     int
	reclaims      int
	lastCompleted int
	lastReclaims  int
	tierSyms      []telemetry.Sym
	modelSyms     []telemetry.Sym

	lastArrival int64
	submitted   int
	clientNext  int // round-robin cursor for closed-loop client affinity
	drained     bool
	closed      bool

	// last memoizes the node statistics computed at statsAt submissions,
	// so polling Stats on an unchanged node re-derives nothing.
	last       NodeStats
	statsAt    int
	statsValid bool
}

// OpenNode validates the configuration and opens a node session with
// one Session backend per NPU. A heterogeneous fleet (NodeConfig.Fleet)
// assigns the initial backends to tiers in tier order by
// largest-remainder apportionment of the weights.
func (s *Server) OpenNode(cfg NodeConfig) (*NodeSession, error) {
	if cfg.NPUs <= 0 {
		return nil, fmt.Errorf("serving: non-positive NPU count %d", cfg.NPUs)
	}
	router, err := cluster.NewRouter(cfg.Routing)
	if err != nil {
		return nil, err
	}
	var tierSpeed []float64
	if len(cfg.Fleet) > 0 {
		if tierSpeed, err = fleetSpeeds(cfg.Fleet, s.cfg); err != nil {
			return nil, err
		}
	}
	backends := make([]*Session, cfg.NPUs)
	for i := range backends {
		if backends[i], err = s.Open(cfg.Session); err != nil {
			return nil, err
		}
	}
	var scale *scaling
	if cfg.Autoscale != nil {
		if scale, err = s.newScaling(*cfg.Autoscale, cfg.NPUs); err != nil {
			return nil, err
		}
	}
	ns := &NodeSession{
		srv:       s,
		router:    router,
		state:     cluster.NewState(cfg.NPUs),
		backends:  backends,
		session:   cfg.Session,
		scale:     scale,
		speed:     make([]float64, cfg.NPUs),
		baseSpeed: make([]float64, cfg.NPUs),
		estRing:   make([]float64, estWindow),
		// The timeline accretes one event per applied scale action and
		// chaos operation; starting with room for a typical run's worth
		// amortizes the appends off the tick path.
		timeline: make([]NodeEvent, 0, 64),
	}
	for i := range ns.speed {
		ns.speed[i] = 1
		ns.baseSpeed[i] = 1
	}
	if len(cfg.Fleet) > 0 {
		ns.tiers = append([]Tier(nil), cfg.Fleet...)
		ns.tierSpeed = tierSpeed
		ns.tierWeights = make([]int, len(cfg.Fleet))
		for t, tier := range cfg.Fleet {
			ns.tierWeights[t] = tier.Weight
		}
		// Rebuild the router state tier-aware: speed-conscious routers
		// compare backends in normalized completion time, so each slot
		// carries its tier's derate factor.
		counts := apportionFleet(ns.tierWeights, cfg.NPUs)
		ns.state = cluster.NewState(0)
		ns.tierOf = make([]int, 0, cfg.NPUs)
		for t, c := range counts {
			for k := 0; k < c; k++ {
				ns.tierOf = append(ns.tierOf, t)
			}
		}
		for i, t := range ns.tierOf {
			ns.state.AddNPUWithSpeed(tierSpeed[t])
			ns.speed[i] = tierSpeed[t]
			ns.baseSpeed[i] = tierSpeed[t]
		}
	}
	if cfg.TrackWork {
		if err := ns.state.TrackWork(); err != nil {
			return nil, err
		}
	}
	if cfg.Trace != nil {
		ns.trace = cfg.Trace
		if tr := ns.trace.Tracer; tr != nil {
			for _, b := range ns.backends {
				b.traced = true
			}
			for _, tier := range ns.tiers {
				ns.tierSyms = append(ns.tierSyms, tr.InternTier(tier.Name))
			}
		}
	}
	ns.record(0, "start", -1, 0, "")
	return ns, nil
}

// estWindow is the estimate ring's size: enough recent samples for a
// stable tick-window percentile without holding the whole stream.
const estWindow = 256

// NPUs reports the node size.
func (ns *NodeSession) NPUs() int { return len(ns.backends) }

// Submit routes one request through the node's router and appends it to
// the chosen NPU's stream. Routing is incremental, so requests must be
// submitted in nondecreasing arrival order (the fluid router state
// drains destructively); generated streams (Offer) arrive ordered by
// construction.
func (ns *NodeSession) Submit(t *workload.Task) error {
	if ns.closed {
		return fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return fmt.Errorf("serving: node session drained; no further submissions")
	}
	if t == nil || t.Program == nil {
		return fmt.Errorf("serving: nil request")
	}
	if t.Arrival < ns.lastArrival {
		return fmt.Errorf("serving: node routing is incremental; submit in nondecreasing arrival order (arrival %d after %d)",
			t.Arrival, ns.lastArrival)
	}
	// Fire every scheduled chaos operation and autoscale tick due before
	// this arrival, so the routing decision sees the post-event fleet.
	if err := ns.advanceTo(t.Arrival); err != nil {
		return err
	}
	if tr := ns.tracer(); tr != nil {
		t.TraceID = ns.traceNext
		ns.traceNext++
		tr.RecordSubmit(t.Arrival, t.TraceID, ns.modelSym(tr, t))
	}
	if err := ns.route(t); err != nil {
		return err
	}
	ns.lastArrival = t.Arrival
	ns.submitted++
	return nil
}

// route makes one routing decision and commits it: the shared path of
// fresh submissions and failure-reclaimed re-arrivals. A request
// landing on a slowed backend is stretched to the backend's current
// speed before it queues.
func (ns *NodeSession) route(t *workload.Task) error {
	target := ns.router.Decide(t, ns.state)
	factor := 1.0
	if ns.speed[target] > 1 {
		factor = ns.speed[target]
		t = ns.stretched(t, factor)
	}
	if err := ns.backends[target].Submit(t); err != nil {
		return err
	}
	ns.state.Commit(target, t)
	// The request's fluid latency estimate (queueing plus service on its
	// target): the scaler's per-tick latency signal, and the ring the
	// control plane's snapshot percentiles read from.
	est := ns.srv.cfg.Millis(ns.state.FreeAt(target) - t.Arrival)
	ns.estRing[ns.estCount%estWindow] = est
	ns.estCount++
	if tr := ns.tracer(); tr != nil {
		tr.RecordRoute(t.Arrival, t.TraceID, target, ns.tierSym(target), est)
		if factor > 1 {
			tr.RecordStretch(t.Arrival, t.TraceID, target, ns.tierSym(target), factor)
		}
	}
	return nil
}

// Offer drives the node's open-loop arrival process: one Poisson stream
// for the spec (OfferedLoad is normalized to a single NPU's capacity, so
// a node of N NPUs saturates near load N), routed request-by-request
// through the node's router. It returns how many requests arrived.
func (ns *NodeSession) Offer(spec Spec, rng *rand.Rand) (int, error) {
	if ns.closed {
		return 0, fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return 0, fmt.Errorf("serving: node session drained; no further submissions")
	}
	tasks, err := ns.srv.Generate(spec, rng)
	if err != nil {
		return 0, err
	}
	for _, t := range tasks {
		if err := ns.Submit(t); err != nil {
			return 0, err
		}
	}
	return len(tasks), nil
}

// OfferRamp drives a piecewise-constant offered-load profile — the
// diurnal/burst scenario autoscaling exists for: segment i offers
// loads[i] over [Offset+i*Horizon, Offset+(i+1)*Horizon) of the base
// spec, all routed through the node's router in arrival order. An
// empty trough is tolerated: a zero-load segment is an idle window,
// and a segment whose sampled Poisson window holds no arrivals is
// skipped rather than an error (segment offsets are absolute, so later
// segments land where they should regardless). Negative loads are an
// error. It returns how many requests arrived across the whole ramp.
func (ns *NodeSession) OfferRamp(base Spec, loads []float64, rng *rand.Rand) (int, error) {
	if len(loads) == 0 {
		return 0, fmt.Errorf("serving: empty load ramp")
	}
	if base.Horizon <= 0 {
		return 0, fmt.Errorf("serving: non-positive ramp segment %v", base.Horizon)
	}
	total := 0
	for i, load := range loads {
		if load < 0 {
			return total, fmt.Errorf("serving: ramp segment %d has negative load %v", i, load)
		}
		if load == 0 {
			continue // an idle window offers nothing
		}
		seg := base
		seg.OfferedLoad = load
		seg.Offset = base.Offset + time.Duration(i)*base.Horizon
		n, err := ns.Offer(seg, rng)
		if err != nil {
			if errors.Is(err, ErrNoArrivals) {
				continue
			}
			return total, fmt.Errorf("serving: ramp segment %d (load %v): %w", i, load, err)
		}
		total += n
	}
	if total == 0 {
		return 0, fmt.Errorf("serving: ramp produced no requests")
	}
	return total, nil
}

// OfferClients spreads a closed-loop client population across the
// node's NPUs with round-robin affinity: client c pins to NPU
// (cursor+c) mod NPUs and runs its closed loop against that backend
// (see Session.OfferClients). Pinned closed-loop traffic is invisible
// to the fluid router state — the router keeps balancing the open-loop
// and submitted streams. It returns how many requests were realized
// across all NPUs.
func (ns *NodeSession) OfferClients(spec ClientSpec, rng *rand.Rand) (int, error) {
	if ns.closed {
		return 0, fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return 0, fmt.Errorf("serving: node session drained; no further submissions")
	}
	if ns.scale != nil {
		// Closed-loop clients pin to their backend for the whole run; a
		// scale-down could never drain a pinned backend, so the two modes
		// are mutually exclusive.
		return 0, fmt.Errorf("serving: closed-loop clients pin to their NPU; autoscaling requires routed traffic (Submit/Offer)")
	}
	if len(ns.pending) > 0 {
		// The same pinning conflict: a failed or cordoned backend could
		// never shed its pinned clients.
		return 0, fmt.Errorf("serving: closed-loop clients pin to their NPU; chaos operations require routed traffic (Submit/Offer)")
	}
	if spec.Clients <= 0 {
		return 0, fmt.Errorf("serving: non-positive client count %d", spec.Clients)
	}
	if ns.tiers != nil {
		// Pinned clients submit straight into their backend, skipping the
		// router's program-stretching, so a slow tier's derate would be
		// silently ignored.
		return 0, fmt.Errorf("serving: closed-loop clients bypass the router; heterogeneous fleets require routed traffic (Submit/Offer)")
	}
	perNPU := make([]int, len(ns.backends))
	for c := 0; c < spec.Clients; c++ {
		perNPU[ns.clientNext%len(ns.backends)]++
		ns.clientNext++
	}
	total := 0
	for i, clients := range perNPU {
		if clients == 0 {
			continue
		}
		sub := spec
		sub.Clients = clients
		n, err := ns.backends[i].OfferClients(sub, rng)
		if err != nil {
			return total, fmt.Errorf("serving: NPU %d: %w", i, err)
		}
		total += n
		ns.submitted += n
	}
	return total, nil
}

// Pending reports how many requests have been submitted node-wide.
func (ns *NodeSession) Pending() int { return ns.submitted }

// Clock reports the stream clock in cycles: the latest arrival routed
// or instant explicitly advanced to.
func (ns *NodeSession) Clock() int64 { return ns.lastArrival }

// EstimateWindow appends the node's most recent fluid latency estimates
// (ms, oldest first, at most the ring size) to dst and returns it — the
// control plane's snapshot percentile source. Unlike Stats it touches
// no backend and re-simulates nothing.
func (ns *NodeSession) EstimateWindow(dst []float64) []float64 {
	n := ns.estCount
	if n > estWindow {
		n = estWindow
	}
	start := ns.estCount - n
	for k := 0; k < n; k++ {
		dst = append(dst, ns.estRing[(start+k)%estWindow])
	}
	return dst
}

// BackendView is one NPU's entry in a point-in-time fleet listing.
type BackendView struct {
	// NPU is the backend index in spin-up order.
	NPU int
	// Tier is the backend's hardware-tier name; empty on homogeneous
	// fleets.
	Tier string
	// State is "active", "draining", "cordoned" or "failed".
	State string
	// Speed is the service-time multiplier: the tier's clock derate (1
	// on homogeneous fleets), raised further by a chaos slowdown.
	Speed float64
	// InFlight counts routed requests whose fluid horizon has not
	// drained at the stream clock.
	InFlight int
	// BacklogMS is the fluid backlog ahead of a new arrival, in ms.
	BacklogMS float64
	// Routed is how many requests the backend has ever been handed.
	Routed int
}

// Fleet lists every backend's state at the current stream clock —
// the control plane's `list` view. It reads only the fluid router
// state, so it is cheap enough to poll between ticks.
func (ns *NodeSession) Fleet() []BackendView {
	now := ns.lastArrival
	out := make([]BackendView, len(ns.backends))
	for i, b := range ns.backends {
		v := BackendView{NPU: i, State: "active", Speed: ns.speed[i], Routed: len(b.reqs)}
		if ns.tiers != nil {
			v.Tier = ns.tiers[ns.tierOf[i]].Name
		}
		switch {
		case ns.state.Failed(i):
			v.State = "failed"
		case ns.state.Cordoned(i):
			v.State = "cordoned"
		case ns.state.Draining(i):
			v.State = "draining"
		}
		if !ns.state.Failed(i) {
			v.InFlight = ns.state.InFlight(i, now)
			v.BacklogMS = ns.srv.cfg.Millis(ns.state.Backlog(i, now))
		}
		out[i] = v
	}
	return out
}

// addBackend spins one fresh Session backend into the shared router
// state — the shared mechanics of autoscaler scale-up and operator
// `scale`. On a heterogeneous fleet, tier is the backend's hardware
// class (pickTier chooses it); homogeneous nodes pass -1.
func (ns *NodeSession) addBackend(tier int) error {
	b, err := ns.srv.Open(ns.session)
	if err != nil {
		return err
	}
	if ns.tracer() != nil {
		b.traced = true
	}
	sp := 1.0
	if tier >= 0 {
		sp = ns.tierSpeed[tier]
	}
	ns.backends = append(ns.backends, b)
	ns.state.AddNPUWithSpeed(sp)
	ns.speed = append(ns.speed, sp)
	ns.baseSpeed = append(ns.baseSpeed, sp)
	if ns.tiers != nil {
		ns.tierOf = append(ns.tierOf, tier)
	}
	return nil
}

// tierCounts fills the reused scratch buffer with the number of
// routable backends per tier — pickTier's divisor inputs and the
// scaler's Metrics.TierActive view. Nil on homogeneous fleets.
func (ns *NodeSession) tierCounts() []int {
	if ns.tiers == nil {
		return nil
	}
	if ns.tierActive == nil {
		ns.tierActive = make([]int, len(ns.tiers))
	}
	for t := range ns.tierActive {
		ns.tierActive[t] = 0
	}
	for i := range ns.backends {
		if ns.state.Routable(i) {
			ns.tierActive[ns.tierOf[i]]++
		}
	}
	return ns.tierActive
}

// pickTier chooses the tier the next scale-up adds: the one furthest
// below its weighted share of the live fleet (D'Hondt). Homogeneous
// fleets answer -1.
func (ns *NodeSession) pickTier() int {
	if ns.tiers == nil {
		return -1
	}
	return autoscale.PickTier(ns.tierWeights, ns.tierCounts())
}

// ScaleTo sets the active fleet to n by opening fresh backends or
// retiring drain victims — the operator's `scale` command. With a
// scaler attached, n must lie inside its [MinNPUs, MaxNPUs] bounds (the
// scaler keeps adjusting from the new size on later ticks). The change
// applies at the current stream clock and is recorded on the timeline.
func (ns *NodeSession) ScaleTo(n int) error {
	if ns.closed {
		return fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return fmt.Errorf("serving: node session drained")
	}
	if n < 1 {
		return fmt.Errorf("serving: non-positive fleet size %d", n)
	}
	if ns.scale != nil {
		if min, max := ns.scale.cfg.MinNPUs, ns.scale.cfg.MaxNPUs; n < min || n > max {
			return fmt.Errorf("serving: fleet size %d outside autoscale bounds [%d, %d]", n, min, max)
		}
	}
	at := ns.lastArrival
	applied := 0
	for ns.state.Active() < n {
		if err := ns.addBackend(ns.pickTier()); err != nil {
			return err
		}
		applied++
	}
	for ns.state.Active() > n {
		victim := ns.drainVictim(at)
		if victim < 0 {
			return fmt.Errorf("serving: no routable backend left to retire")
		}
		if err := ns.state.Retire(victim); err != nil {
			return err
		}
		applied--
	}
	if applied != 0 {
		ns.record(at, "scale", -1, applied, "manual")
	}
	return nil
}

// RetireBackend voluntarily drains one specific backend — the
// operator's `drain npu<i>` command, as opposed to the autoscaler's
// victim choice. Routed work completes, nothing new lands on it, and
// the timeline records a "drain" event at the current stream clock.
func (ns *NodeSession) RetireBackend(i int) error {
	if ns.closed {
		return fmt.Errorf("serving: node session closed")
	}
	if ns.drained {
		return fmt.Errorf("serving: node session drained")
	}
	if i < 0 || i >= len(ns.backends) {
		return fmt.Errorf("serving: unknown NPU %d (node size %d)", i, len(ns.backends))
	}
	if err := ns.state.Retire(i); err != nil {
		return err
	}
	ns.record(ns.lastArrival, "drain", i, -1, "")
	return nil
}

// Routed reports how many requests each NPU's backend holds.
func (ns *NodeSession) Routed() []int {
	out := make([]int, len(ns.backends))
	for i, b := range ns.backends {
		out[i] = len(b.reqs)
	}
	return out
}

// Stats computes the node's steady-state statistics: per-NPU views plus
// the aggregate over the union of measured requests. Statistics are
// incremental — each backend re-simulates only if its stream changed.
func (ns *NodeSession) Stats() (NodeStats, error) {
	if ns.closed {
		return NodeStats{}, fmt.Errorf("serving: node session closed")
	}
	if ns.submitted == 0 {
		return NodeStats{}, fmt.Errorf("serving: no requests submitted")
	}
	if ns.statsValid && ns.statsAt == ns.submitted {
		return ns.last, nil
	}
	out := NodeStats{PerNPU: make([]BatchStats, len(ns.backends))}
	var merged sampleSet
	var tierSets []sampleSet
	if ns.tiers != nil {
		tierSets = make([]sampleSet, len(ns.tiers))
	}
	for i, b := range ns.backends {
		if len(b.reqs) == 0 {
			continue
		}
		if err := b.refresh(); err != nil {
			return NodeStats{}, fmt.Errorf("serving: NPU %d: %w", i, err)
		}
		merged.merge(&b.samples)
		if tierSets != nil {
			tierSets[ns.tierOf[i]].merge(&b.samples)
		}
		// The backend memoizes its derived statistics; only re-simulated
		// NPUs re-derive them.
		if st, err := b.Stats(); err == nil {
			out.PerNPU[i] = st
		} else {
			// All of this NPU's requests fell inside the warm-up window:
			// they still count toward the aggregate's request totals.
			out.PerNPU[i].Requests = b.samples.requests
			out.PerNPU[i].Dispatched = b.samples.dispatched
		}
	}
	agg, err := ns.srv.statsOf(&merged)
	if err != nil {
		return NodeStats{}, err
	}
	out.BatchStats = agg
	if ns.scale != nil {
		out.Scaling = ns.scalingStats(&merged)
	}
	if tierSets != nil {
		out.Tiers = ns.tierStats(tierSets)
	}
	ns.last = out
	ns.statsAt = ns.submitted
	ns.statsValid = true
	return out, nil
}

// Drain computes the final statistics and seals the node session (and
// every backend) against further submissions. Stats remains callable
// until Close.
func (ns *NodeSession) Drain() (NodeStats, error) {
	st, err := ns.Stats()
	if err != nil {
		return NodeStats{}, err
	}
	ns.drained = true
	for _, b := range ns.backends {
		b.drained = true
	}
	return st, nil
}

// Close seals the node session and every backend; subsequent calls
// error. Close is idempotent.
func (ns *NodeSession) Close() error {
	ns.closed = true
	ns.drained = true
	for _, b := range ns.backends {
		if err := b.Close(); err != nil {
			return err
		}
	}
	return nil
}
