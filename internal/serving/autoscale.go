package serving

// autoscale.go wires the autoscale package into the streaming node
// session: NodeConfig.Autoscale attaches a scaling policy that is
// evaluated on a periodic tick as the request stream advances. Every
// tick the scaler sees the router's fluid load (in-flight counts,
// backlog, the P95 of the tick window's fluid latency estimates) and
// answers with a fleet delta; scale-up spins a fresh per-NPU Session
// backend into the shared router's State, scale-down marks the
// least-loaded backend draining so no new work routes to it while its
// already-routed requests complete and its samples keep folding into
// the aggregate. Because ticks fire deterministically from arrival
// cycles and all routing still flows through the one shared Router,
// an autoscaled stream replays exactly — and a node with the static
// no-op scaler attached is provably identical to a scaler-less node
// (autoscale_test.go locks both in).

import (
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/stats"
)

// AutoscaleConfig attaches an SLO-driven scaling policy to a node
// session.
type AutoscaleConfig struct {
	// Scaler is the scaling-policy label (autoscale.ByName): "static",
	// "target-latency", "queue-depth", or a registered custom scaler.
	Scaler string
	// SLO is the P95 latency target the fleet is scaled against; it also
	// defines the SLO-violation fraction the scaling statistics report.
	SLO time.Duration
	// MinNPUs and MaxNPUs bound the fleet (defaults 1 and max(8, initial
	// NPUs)); the initial NodeConfig.NPUs must lie inside the bounds.
	// MaxNPUs caps the hardware concurrently serving: a draining backend
	// still completing routed work counts against it until it empties.
	MinNPUs, MaxNPUs int
	// Tick is the evaluation period (default 2ms). Ticks fire lazily as
	// arrivals advance the stream clock, so an idle node costs nothing.
	Tick time.Duration
}

// normalize applies the defaults and validates the configuration
// against the initial fleet size.
func (a AutoscaleConfig) normalize(npus int) (AutoscaleConfig, error) {
	if a.Scaler == "" {
		return a, fmt.Errorf("serving: no scaler selected (known: %v)", autoscale.Names())
	}
	if !autoscale.Has(a.Scaler) {
		return a, fmt.Errorf("serving: unknown scaler %q (known: %v)", a.Scaler, autoscale.Names())
	}
	if a.SLO <= 0 {
		return a, fmt.Errorf("serving: autoscaling requires a positive latency SLO, got %v", a.SLO)
	}
	if a.MinNPUs == 0 {
		a.MinNPUs = 1
	}
	if a.MaxNPUs == 0 {
		a.MaxNPUs = npus
		if a.MaxNPUs < 8 {
			a.MaxNPUs = 8
		}
	}
	if a.MinNPUs < 1 {
		return a, fmt.Errorf("serving: non-positive fleet minimum %d", a.MinNPUs)
	}
	if a.MaxNPUs < a.MinNPUs {
		return a, fmt.Errorf("serving: fleet maximum %d below minimum %d", a.MaxNPUs, a.MinNPUs)
	}
	if npus < a.MinNPUs || npus > a.MaxNPUs {
		return a, fmt.Errorf("serving: initial fleet of %d NPUs outside [%d, %d]",
			npus, a.MinNPUs, a.MaxNPUs)
	}
	if a.Tick < 0 {
		return a, fmt.Errorf("serving: negative autoscale tick %v", a.Tick)
	}
	if a.Tick == 0 {
		a.Tick = 2 * time.Millisecond
	}
	return a, nil
}

// ScaleEvent is one applied fleet change: a scaler action, or an
// injected failure or cordon/uncordon that altered the routable count
// (see NodeSession.Timeline for the annotated event view).
type ScaleEvent struct {
	// Cycle is the stream instant the change was applied at.
	Cycle int64
	// Delta is the applied change in active backends (0 only on the
	// initial timeline anchor).
	Delta int
	// NPUs is the active backend count after the change — the scaling
	// timeline is the step function through these points.
	NPUs int
}

// ScalingStats is the autoscaled node's timeline view, answered by
// Stats alongside the latency statistics whenever a scaler is attached.
type ScalingStats struct {
	// Events is the fleet timeline: an anchor at cycle 0 with the
	// initial count, then one entry per applied change.
	Events []ScaleEvent
	// SLOLatencyMS is the configured P95 target in milliseconds.
	SLOLatencyMS float64
	// SLOViolationFrac is the fraction of measured requests whose
	// realized latency exceeded the SLO.
	SLOViolationFrac float64
	// MeanNPUs is the time-weighted mean active backend count over the
	// run's makespan.
	MeanNPUs float64
	// PeakNPUs is the largest active backend count the fleet reached.
	PeakNPUs int
}

// scaling is the node session's autoscaler state.
type scaling struct {
	policy     autoscale.Policy
	cfg        AutoscaleConfig
	tickCycles int64
	sloMS      float64
	nextTick   int64
	// winStart marks the node's estimate count at the previous tick:
	// the tick window is the estRing entries pushed since. Reading the
	// ring the submit path already fills (instead of collecting a
	// second per-request slice) keeps the autoscale tick overhead off
	// the routing hot path; scratch is the reused percentile buffer.
	winStart int
	scratch  []float64
	// lastEstP95 carries the latency signal across ticks that saw no
	// arrivals, decaying geometrically so a quiet stretch reads as
	// pressure easing rather than flapping between the last P95 and 0.
	lastEstP95 float64
}

// newScaling validates the configuration and builds the session's
// scaler state.
func (s *Server) newScaling(a AutoscaleConfig, npus int) (*scaling, error) {
	norm, err := a.normalize(npus)
	if err != nil {
		return nil, err
	}
	sloMS := float64(norm.SLO) / float64(time.Millisecond)
	policy, err := autoscale.ByName(norm.Scaler, autoscale.Config{SLOLatencyMS: sloMS})
	if err != nil {
		return nil, err
	}
	tick := s.cfg.Cycles(norm.Tick)
	if tick <= 0 {
		return nil, fmt.Errorf("serving: autoscale tick %v is under one cycle", norm.Tick)
	}
	return &scaling{
		policy:     policy,
		cfg:        norm,
		tickCycles: tick,
		sloMS:      sloMS,
		nextTick:   tick,
	}, nil
}

// evaluate runs one scaler decision at tick cycle at and applies the
// clamped delta to the fleet.
func (ns *NodeSession) evaluate(at int64) error {
	sc := ns.scale
	var inFlight, occupied int
	var backlog int64
	for i := range ns.backends {
		if ns.state.Failed(i) {
			// A failed backend is gone: its slot frees immediately, so
			// the scaler can spin a replacement.
			continue
		}
		if ns.state.Cordoned(i) {
			// A cordoned backend holds its NPU for its eventual return
			// to rotation, whether or not work is still draining.
			occupied++
			continue
		}
		if ns.state.Draining(i) {
			// A retired backend occupies its NPU only while its routed
			// work is still completing; an emptied one is gone for both
			// the metrics snapshot and the MaxNPUs serving cap below.
			if ns.state.Backlog(i, at) > 0 {
				occupied++
			}
			continue
		}
		inFlight += ns.state.InFlight(i, at)
		backlog += ns.state.Backlog(i, at)
	}
	// The tick window is everything pushed into the estimate ring since
	// the previous tick (capped at the ring size — a tick seeing more
	// keeps the most recent estWindow estimates). Copying into the
	// reused scratch buffer and sorting that in place costs the routing
	// hot path nothing per request.
	window := 0
	if n := ns.estCount - sc.winStart; n > 0 {
		if n > estWindow {
			n = estWindow
		}
		if sc.scratch == nil {
			sc.scratch = make([]float64, 0, estWindow)
		}
		sc.scratch = sc.scratch[:0]
		start := ns.estCount - n
		for k := 0; k < n; k++ {
			sc.scratch = append(sc.scratch, ns.estRing[(start+k)%estWindow])
		}
		window = n
		sc.lastEstP95 = stats.PercentileInPlace(sc.scratch, 95)
	} else {
		sc.lastEstP95 *= 0.7
	}
	sc.winStart = ns.estCount
	est := sc.lastEstP95
	if rec := ns.recorder(); rec != nil {
		// Estimate-SLO violations this tick; the scratch window is already
		// sorted, but a linear count keeps the logic order-free.
		estViolations := 0
		for _, e := range sc.scratch[:window] {
			if e > sc.sloMS {
				estViolations++
			}
		}
		ns.sampleTick(rec, at, est, window, estViolations)
	}
	delta := int(sc.policy.Decide(autoscale.Metrics{
		Now:             at,
		Active:          ns.state.Active(),
		Draining:        occupied,
		Min:             sc.cfg.MinNPUs,
		Max:             sc.cfg.MaxNPUs,
		InFlight:        inFlight,
		BacklogMS:       ns.srv.cfg.Millis(backlog),
		EstP95LatencyMS: est,
		SLOLatencyMS:    sc.sloMS,
		TierActive:      ns.tierCounts(),
	}))

	// MaxNPUs caps the hardware concurrently serving, not just the
	// active set: a draining backend still holding fluid work (or a
	// cordoned one awaiting its return) occupies its NPU, so it counts
	// against the bound and scale-up resumes only as slots free up.
	serving := ns.state.Active() + occupied
	applied := 0
	for ; delta > 0 && ns.state.Active() < sc.cfg.MaxNPUs && serving < sc.cfg.MaxNPUs; delta-- {
		if err := ns.addBackend(ns.pickTier()); err != nil {
			return err
		}
		serving++
		applied++
	}
	for ; delta < 0 && ns.state.Active() > sc.cfg.MinNPUs; delta++ {
		victim := ns.drainVictim(at)
		if victim < 0 {
			break
		}
		if err := ns.state.Retire(victim); err != nil {
			return err
		}
		applied--
	}
	if applied != 0 {
		ns.record(at, "scale", -1, applied, "")
	}
	return nil
}

// drainVictim picks the backend a scale-down retires: the routable one
// with the least fluid backlog at the tick (its drain completes
// soonest); ties prefer the highest index, so the newest backend goes
// first. On a heterogeneous fleet the victim comes from the tier
// furthest above its template weight (autoscale.PickRetireTier — the
// inverse of the scale-up rule), so a long drawdown keeps the live mix
// proportioned instead of skewing toward whichever tier happens to run
// emptiest.
func (ns *NodeSession) drainVictim(at int64) int {
	if ns.tiers != nil {
		if t := autoscale.PickRetireTier(ns.tierWeights, ns.tierCounts()); t >= 0 {
			if v := ns.drainVictimIn(at, t); v >= 0 {
				return v
			}
		}
	}
	return ns.drainVictimIn(at, -1)
}

// drainVictimIn is drainVictim restricted to one tier (-1 scans the
// whole fleet).
func (ns *NodeSession) drainVictimIn(at int64, tier int) int {
	best, bestBacklog := -1, int64(1<<62)
	for i := range ns.backends {
		if !ns.state.Routable(i) {
			continue
		}
		if tier >= 0 && ns.tierOf[i] != tier {
			continue
		}
		if b := ns.state.Backlog(i, at); b < bestBacklog || (b == bestBacklog && i > best) {
			best, bestBacklog = i, b
		}
	}
	return best
}

// scalingStats derives the timeline view from the fleet timeline and
// the merged measured samples. Every fleet-size change appears — the
// scaler's own actions and any injected failures or cordons — so the
// step function (and its time-weighted mean) reflects what actually
// served.
func (ns *NodeSession) scalingStats(merged *sampleSet) *ScalingStats {
	sc := ns.scale
	events := make([]ScaleEvent, 0, len(ns.timeline))
	for i, e := range ns.timeline {
		if i == 0 || e.Delta != 0 {
			events = append(events, ScaleEvent{Cycle: e.Cycle, Delta: e.Delta, NPUs: e.Active})
		}
	}
	out := &ScalingStats{
		Events:       events,
		SLOLatencyMS: sc.sloMS,
	}
	violated := 0
	for _, l := range merged.latencies {
		if l > sc.sloMS {
			violated++
		}
	}
	if n := len(merged.latencies); n > 0 {
		out.SLOViolationFrac = float64(violated) / float64(n)
	}
	for _, e := range out.Events {
		if e.NPUs > out.PeakNPUs {
			out.PeakNPUs = e.NPUs
		}
	}
	out.MeanNPUs = meanNPUs(out.Events, merged.makespan)
	return out
}

// meanNPUs integrates the fleet-size step function over [0, makespan].
func meanNPUs(events []ScaleEvent, makespan int64) float64 {
	if len(events) == 0 {
		return 0
	}
	if makespan <= events[0].Cycle {
		return float64(events[0].NPUs)
	}
	var area float64
	prev := events[0]
	for _, e := range events[1:] {
		if e.Cycle > makespan {
			break
		}
		area += float64(prev.NPUs) * float64(e.Cycle-prev.Cycle)
		prev = e
	}
	area += float64(prev.NPUs) * float64(makespan-prev.Cycle)
	return area / float64(makespan)
}
