package serving

// session.go is the long-lived serving surface: instead of one-shot
// Run/RunBatched scenarios, a Session accepts a request stream
// incrementally — explicit Submit calls, or an open-loop Poisson arrival
// process via Offer — and answers Stats at any point with the same
// steady-state statistics the batch entry points compute. The simulator
// underneath is discrete-event and offline, so incrementality is
// memoized re-simulation: Stats re-runs the submitted stream only when
// it changed since the last call, materializing fresh scheduler entries
// each time (sched.Task state does not survive a run). By construction a
// Session's statistics over a stream are identical to Run's over the
// same generated stream, which session_test.go locks in.

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/workload"
)

// SessionConfig parameterizes a long-lived serving session.
type SessionConfig struct {
	// Policy is the scheduling-policy label (sched.ByName).
	Policy string
	// Preemptive enables the preemptible-NPU path.
	Preemptive bool
	// Selector is the preemption-mechanism selector label; empty
	// defaults to "dynamic" on preemptive sessions and must be empty on
	// non-preemptive ones.
	Selector string
	// Window is the dynamic-batching window: same-model CNN requests
	// arriving within a window are fused (0 disables batching).
	Window time.Duration
	// MaxBatch caps the fused batch size (default 16).
	MaxBatch int
	// Horizon is the reference horizon for the warm-up cut; 0 derives
	// it from the latest submitted arrival.
	Horizon time.Duration
	// WarmupFraction of the horizon is excluded from latency statistics
	// (default 0.2).
	WarmupFraction float64
}

// Session is an open serving endpoint accumulating a request stream.
// A Session is not safe for concurrent use.
type Session struct {
	srv *Server
	cfg SessionConfig

	// reqs are the submitted request templates in submission order.
	// Each Stats computation materializes fresh scheduler entries from
	// them, so a template is never mutated by a simulation.
	reqs []*workload.Task

	dirty   bool
	drained bool
	closed  bool
	// samples memoizes the raw measured material of the last simulation;
	// last memoizes the statistics derived from it. The node session
	// merges backends' samples before deriving aggregate statistics, so
	// both layers are kept.
	samples    sampleSet
	last       BatchStats
	statsValid bool
	// simulations counts how many times the session actually re-ran the
	// simulator (the incremental-stats memoization instrumentation).
	simulations int
	// traced makes compute retain one completion record per simulated
	// request (set by a node session with a tracer attached); the node
	// derives the trace's completion events from them. Only unbatched
	// sessions retain completions — a fused dispatch has no one-to-one
	// member completion (see NodeSession.TraceEvents).
	traced      bool
	completions []completionRec
}

// Open validates the scheduler configuration and opens a session.
func (s *Server) Open(cfg SessionConfig) (*Session, error) {
	if _, err := sched.ByName(cfg.Policy, s.scfg); err != nil {
		return nil, err
	}
	if cfg.Preemptive {
		sel := cfg.Selector
		if sel == "" {
			sel = "dynamic"
		}
		if _, err := sched.SelectorByName(sel); err != nil {
			return nil, err
		}
	} else if cfg.Selector != "" {
		return nil, fmt.Errorf("serving: selector %q set on a non-preemptive session", cfg.Selector)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("serving: negative batching window %v", cfg.Window)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	return &Session{srv: s, cfg: cfg}, nil
}

// Submit appends one request to the stream. The task is treated as a
// template: its ID is reassigned to the submission index and a fresh
// scheduler entry is materialized per simulation.
func (ss *Session) Submit(t *workload.Task) error {
	if ss.closed {
		return fmt.Errorf("serving: session closed")
	}
	if ss.drained {
		return fmt.Errorf("serving: session drained; no further submissions")
	}
	if t == nil || t.Program == nil {
		return fmt.Errorf("serving: nil request")
	}
	ss.reqs = append(ss.reqs, t)
	ss.dirty = true
	return nil
}

// Offer drives the open-loop arrival process: it generates a Poisson
// request stream for the spec (serving.Generate) and submits every
// request, returning how many arrived within the horizon.
func (ss *Session) Offer(spec Spec, rng *rand.Rand) (int, error) {
	if ss.closed {
		return 0, fmt.Errorf("serving: session closed")
	}
	if ss.drained {
		return 0, fmt.Errorf("serving: session drained; no further submissions")
	}
	tasks, err := ss.srv.Generate(spec, rng)
	if err != nil {
		return 0, err
	}
	for _, t := range tasks {
		if err := ss.Submit(t); err != nil {
			return 0, err
		}
	}
	return len(tasks), nil
}

// Pending reports how many requests have been submitted so far.
func (ss *Session) Pending() int { return len(ss.reqs) }

// Simulations reports how many times the session re-ran the simulator —
// repeated Stats calls without new submissions answer from the memo.
func (ss *Session) Simulations() int { return ss.simulations }

// Stats computes the steady-state statistics of everything submitted so
// far. The result is memoized: a second call without intervening
// submissions does not re-simulate. Statistics are per original request;
// on batched sessions (Window > 0) fused dispatches are unbundled into
// their member requests exactly as RunBatched reports them.
func (ss *Session) Stats() (BatchStats, error) {
	if ss.closed {
		return BatchStats{}, fmt.Errorf("serving: session closed")
	}
	if err := ss.refresh(); err != nil {
		return BatchStats{}, err
	}
	if !ss.statsValid {
		out, err := ss.srv.statsOf(&ss.samples)
		if err != nil {
			return BatchStats{}, err
		}
		ss.last = out
		ss.statsValid = true
	}
	return ss.last, nil
}

// refresh re-simulates the submitted stream if it changed since the last
// simulation, memoizing the resulting sample set.
func (ss *Session) refresh() error {
	if !ss.dirty {
		if len(ss.reqs) == 0 {
			return fmt.Errorf("serving: no requests submitted")
		}
		return nil
	}
	sm, err := ss.compute()
	if err != nil {
		return err
	}
	ss.samples = *sm
	ss.dirty = false
	ss.statsValid = false
	return nil
}

// Drain computes the final statistics and seals the session against
// further submissions. Stats remains callable until Close.
func (ss *Session) Drain() (BatchStats, error) {
	st, err := ss.Stats()
	if err != nil {
		return BatchStats{}, err
	}
	ss.drained = true
	return st, nil
}

// Close seals the session; subsequent Submit/Offer/Stats/Drain calls
// error. Close is idempotent.
func (ss *Session) Close() error {
	ss.closed = true
	ss.drained = true
	return nil
}

// cut resolves the warm-up cut cycle: the configured horizon when set,
// otherwise the latest submitted arrival.
func (ss *Session) cut() int64 {
	if ss.cfg.Horizon > 0 {
		return ss.srv.warmupCut(ss.cfg.Horizon, ss.cfg.WarmupFraction)
	}
	var latest int64
	for _, t := range ss.reqs {
		if t.Arrival > latest {
			latest = t.Arrival
		}
	}
	return int64(float64(latest) * warmupFraction(ss.cfg.WarmupFraction))
}

// materialize builds a fresh simulatable instance from a submitted
// template: a new execution cursor and a new scheduler entry, re-stamped
// with the submission index as its ID.
func materialize(id int, t *workload.Task) *workload.Task {
	exec := npu.NewExecution(t.Program)
	st := sched.NewTask(id, t.Model, t.Batch, t.Priority, t.Arrival, exec, t.EstimatedCycles)
	return &workload.Task{
		Task:     st,
		ModelRef: t.ModelRef,
		InLen:    t.InLen, ActualOut: t.ActualOut, PredictedOut: t.PredictedOut,
		Program: t.Program,
	}
}

// compute re-simulates the submitted stream and collects its raw
// measured samples.
func (ss *Session) compute() (*sampleSet, error) {
	if len(ss.reqs) == 0 {
		return nil, fmt.Errorf("serving: no requests submitted")
	}
	fresh := make([]*workload.Task, len(ss.reqs))
	for i, t := range ss.reqs {
		fresh[i] = materialize(i, t)
	}
	ss.simulations++

	if ss.cfg.Window <= 0 {
		res, err := ss.srv.simulate(ss.cfg.Policy, ss.cfg.Preemptive, ss.cfg.Selector, fresh)
		if err != nil {
			return nil, err
		}
		if ss.traced {
			ss.retainCompletions(res)
		}
		return ss.srv.collectTasks(res, ss.cut()), nil
	}

	tasks, members, err := ss.coalesce(fresh)
	if err != nil {
		return nil, err
	}
	res, err := ss.srv.simulate(ss.cfg.Policy, ss.cfg.Preemptive, ss.cfg.Selector, tasks)
	if err != nil {
		return nil, err
	}
	return ss.srv.collectMembers(res, members, ss.cut()), nil
}

// coalesce fuses same-model CNN requests arriving within the batching
// window into batched dispatches, mirroring the TensorRT-Inference-Server
// runtime feature RunBatched models (the grouping loop is shared; see
// groupRequests). Unlike RunBatched's generator-driven coalescer,
// submitted instances are preserved: single-member groups, RNN requests
// and pre-batched submissions pass through unchanged, and only
// multi-member groups are re-instanced at the fused batch size. A fused
// dispatch arrives when its window closes (the last member's arrival)
// and inherits the highest member priority, keeping coalescing
// deterministic — no randomness is consumed.
func (ss *Session) coalesce(requests []*workload.Task) ([]*workload.Task, map[int][]memberRequest, error) {
	windowCycles := ss.srv.cfg.Cycles(ss.cfg.Window)
	var tasks []*workload.Task
	members := map[int][]memberRequest{}
	nextID := 0
	flush := func(group []*workload.Task) error {
		var fused *workload.Task
		if len(group) == 1 {
			fused = materialize(nextID, group[0])
		} else {
			prio := group[0].Priority
			for _, t := range group[1:] {
				if t.Priority > prio {
					prio = t.Priority
				}
			}
			arrival := group[len(group)-1].Arrival
			inst, err := ss.srv.gen.Instance(nextID, group[0].ModelRef, len(group), prio, arrival, nil, nil)
			if err != nil {
				return err
			}
			fused = inst
		}
		tasks = append(tasks, fused)
		members[nextID] = groupMembers(group)
		nextID++
		return nil
	}
	passThrough := func(r *workload.Task) bool {
		// RNNs (per-request unrolled lengths differ) and pre-batched
		// submissions pass through unbatched.
		return r.ModelRef == nil || r.ModelRef.IsRNN() || r.Batch > 1 || windowCycles == 0
	}
	if err := groupRequests(requests, windowCycles, ss.cfg.MaxBatch, passThrough, flush); err != nil {
		return nil, nil, err
	}
	if len(tasks) == 0 {
		return nil, nil, fmt.Errorf("serving: batching produced no tasks")
	}
	return tasks, members, nil
}
