// Package serving models the sustained-load operating regime of a cloud
// inference server (the deployment the paper's introduction motivates):
// an open-loop Poisson stream of requests offered at a fraction of the
// NPU's capacity over a time horizon, with steady-state latency measured
// after a warm-up window. It turns the repository's closed 8-task
// workloads into the classic throughput-latency curves operators actually
// provision against, and shows where each scheduling policy's latency
// knee sits.
package serving

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Spec parameterizes one sustained-load run.
type Spec struct {
	// Horizon is the arrival window; requests arrive over
	// [Offset, Offset+Horizon).
	Horizon time.Duration
	// Offset shifts the whole arrival window, letting consecutive
	// Generate calls chain into a piecewise load profile (see
	// NodeSession.OfferRamp). 0 starts at the stream origin.
	Offset time.Duration
	// OfferedLoad is the offered utilization: the request rate times
	// the mix's mean isolated service time. Loads near or above 1
	// saturate the NPU.
	OfferedLoad float64
	// Models restricts the request mix (defaults to the 8-model suite).
	Models []string
	// BatchSizes restricts batches (defaults to {1,4,16}).
	BatchSizes []int
	// WarmupFraction of the horizon is excluded from latency
	// statistics (default 0.2).
	WarmupFraction float64
}

// Stats summarizes the steady-state behaviour of one run.
type Stats struct {
	// Requests admitted and completed.
	Requests int
	// Measured excludes warm-up arrivals.
	Measured int
	// ThroughputPerSec is completed inferences per second of makespan.
	ThroughputPerSec float64
	// MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS are
	// steady-state turnaround statistics.
	MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS float64
	// MeanNTT is the mean normalized turnaround of measured requests.
	MeanNTT float64
	// SLAViolations4x is the measured fraction violating 4x isolated.
	SLAViolations4x float64
}

// Server generates and runs sustained-load scenarios against one NPU
// configuration.
type Server struct {
	cfg  npu.Config
	scfg sched.Config
	gen  *workload.Generator
}

// NewServer builds a Server sharing the given workload generator.
func NewServer(cfg npu.Config, scfg sched.Config, gen *workload.Generator) *Server {
	return &Server{cfg: cfg, scfg: scfg, gen: gen}
}

// NPU answers the server's hardware configuration, giving callers that
// consume cycle-denominated results (node timelines, scaling events) the
// clock to convert them back to wall time.
func (s *Server) NPU() npu.Config { return s.cfg }

// meanServiceCycles estimates the mix's mean isolated service time by
// sampling instances.
func (s *Server) meanServiceCycles(models []string, batches []int, rng *rand.Rand) (float64, error) {
	const samples = 24
	var sum float64
	for i := 0; i < samples; i++ {
		name := models[rng.IntN(len(models))]
		b := batches[rng.IntN(len(batches))]
		task, err := s.gen.InstanceByName(i, name, b, sched.Medium, 0, rng)
		if err != nil {
			return 0, err
		}
		sum += float64(task.IsolatedCycles)
	}
	return sum / samples, nil
}

// Generate builds the Poisson request stream for a spec.
func (s *Server) Generate(spec Spec, rng *rand.Rand) ([]*workload.Task, error) {
	if spec.OfferedLoad <= 0 {
		return nil, fmt.Errorf("serving: non-positive offered load %v", spec.OfferedLoad)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("serving: non-positive horizon %v", spec.Horizon)
	}
	if spec.Offset < 0 {
		return nil, fmt.Errorf("serving: negative arrival offset %v", spec.Offset)
	}
	models := spec.Models
	if len(models) == 0 {
		for _, m := range defaultSuite() {
			models = append(models, m)
		}
	}
	batches := spec.BatchSizes
	if len(batches) == 0 {
		batches = []int{1, 4, 16}
	}
	mean, err := s.meanServiceCycles(models, batches, rng)
	if err != nil {
		return nil, err
	}
	// Poisson arrivals: exponential inter-arrival with rate
	// load / meanService.
	rate := spec.OfferedLoad / mean // arrivals per cycle
	horizon := s.cfg.Cycles(spec.Horizon)
	offset := s.cfg.Cycles(spec.Offset)
	var tasks []*workload.Task
	var at float64
	id := 0
	for {
		at += rng.ExpFloat64() / rate
		if int64(at) >= horizon {
			break
		}
		arrival := offset + int64(at)
		name := models[rng.IntN(len(models))]
		b := batches[rng.IntN(len(batches))]
		prio := sched.Priorities[rng.IntN(len(sched.Priorities))]
		task, err := s.gen.InstanceByName(id, name, b, prio, arrival, rng)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task)
		id++
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("serving: horizon %v too short for load %v: %w",
			spec.Horizon, spec.OfferedLoad, ErrNoArrivals)
	}
	return tasks, nil
}

// ErrNoArrivals marks a generated window that produced no requests; a
// ramp (and the control plane's segment generator) tolerates such a
// segment (a trough can legitimately be empty) while single-spec entry
// points keep reporting it as an error.
var ErrNoArrivals = errors.New("no arrivals")

func defaultSuite() []string {
	return []string{"CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
		"RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR"}
}

// simulate resolves the scheduler configuration (fresh policy and
// selector instances per call; see the sched.Policy contract) and runs
// one simulation over the given tasks.
func (s *Server) simulate(policy string, preemptive bool, selector string,
	tasks []*workload.Task) (*sim.Result, error) {
	return s.simulateHook(policy, preemptive, selector, workload.SchedTasks(tasks), nil)
}

// simulateHook is simulate with the closed-loop completion hook wired
// through: onComplete may inject newly released requests (see
// sim.Options.OnComplete).
func (s *Server) simulateHook(policy string, preemptive bool, selector string,
	entries []*sched.Task, onComplete func(*sched.Task, int64) []*sched.Task) (*sim.Result, error) {

	pol, err := sched.ByName(policy, s.scfg)
	if err != nil {
		return nil, err
	}
	var sel sched.MechanismSelector
	if preemptive {
		if selector == "" {
			selector = "dynamic"
		}
		if sel, err = sched.SelectorByName(selector); err != nil {
			return nil, err
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.cfg, Sched: s.scfg,
		Policy: pol, Preemptive: preemptive, Selector: sel,
		OnComplete: onComplete,
	}, entries)
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}

// sampleSet is the raw measured material one simulation yields, kept
// sample-by-sample (rather than pre-aggregated) so the node session can
// merge per-NPU sets before deriving percentiles — a percentile of a
// union is not derivable from per-NPU percentiles.
type sampleSet struct {
	// requests were admitted and completed (members, on batched runs);
	// dispatched counts NPU tasks after coalescing.
	requests, dispatched int
	// latencies (ms) and ntts hold one entry per measured request, i.e.
	// per request arriving at or after the warm-up cut.
	latencies, ntts []float64
	// violated counts measured requests breaking the 4x-isolated SLA.
	violated int
	// makespan is the run's completion cycle.
	makespan int64
	// cnnBatches/cnnMembers feed the MeanBatch counter.
	cnnBatches, cnnMembers int
}

// merge folds other sample sets into one node-level set. Latency samples
// concatenate in argument order (percentiles sort internally, so order
// only pins determinism); the node's makespan is the slowest NPU's.
func (m *sampleSet) merge(parts ...*sampleSet) {
	for _, p := range parts {
		m.requests += p.requests
		m.dispatched += p.dispatched
		m.latencies = append(m.latencies, p.latencies...)
		m.ntts = append(m.ntts, p.ntts...)
		m.violated += p.violated
		if p.makespan > m.makespan {
			m.makespan = p.makespan
		}
		m.cnnBatches += p.cnnBatches
		m.cnnMembers += p.cnnMembers
	}
}

// collectTasks builds the sample set of an unbatched run: one request
// per completed task, excluding arrivals before cut.
func (s *Server) collectTasks(res *sim.Result, cut int64) *sampleSet {
	sm := &sampleSet{
		requests:   len(res.Tasks),
		dispatched: len(res.Tasks),
		makespan:   res.Cycles,
	}
	for _, t := range res.Tasks {
		if t.Arrival < cut {
			continue
		}
		sm.latencies = append(sm.latencies, s.cfg.Millis(t.Turnaround()))
		sm.ntts = append(sm.ntts, t.NTT())
		if t.NTT() > 4 {
			sm.violated++
		}
	}
	return sm
}

// guardPercentile makes the small-sample degradation uniform: any
// percentile that could not be computed falls back to the next coarser
// statistic instead of leaking NaN into reports (P99 -> P95 -> P50 ->
// mean). With a non-empty measured set the percentiles are always
// finite, but a merged or hand-built sample set keeps the same contract.
func guardPercentile(p, fallback float64) float64 {
	if math.IsNaN(p) {
		return fallback
	}
	return p
}

// statsOf derives the steady-state statistics from a sample set. It is
// the single aggregation point shared by the batch entry points, the
// session memo, and the node session's per-NPU and merged views.
func (s *Server) statsOf(sm *sampleSet) (BatchStats, error) {
	out := BatchStats{Stats: Stats{Requests: sm.requests}, Dispatched: sm.dispatched}
	out.Measured = len(sm.latencies)
	if out.Measured == 0 {
		return BatchStats{}, fmt.Errorf("serving: no requests survive the warm-up window")
	}
	out.MeanLatencyMS = stats.Mean(sm.latencies)
	out.P50LatencyMS = guardPercentile(stats.Percentile(sm.latencies, 50), out.MeanLatencyMS)
	out.P95LatencyMS = guardPercentile(stats.Percentile(sm.latencies, 95), out.P50LatencyMS)
	out.P99LatencyMS = guardPercentile(stats.Percentile(sm.latencies, 99), out.P95LatencyMS)
	out.MeanNTT = stats.Mean(sm.ntts)
	out.SLAViolations4x = float64(sm.violated) / float64(out.Measured)
	if sec := s.cfg.Seconds(sm.makespan); sec > 0 {
		out.ThroughputPerSec = float64(sm.requests) / sec
	}
	if sm.cnnBatches > 0 {
		out.MeanBatch = float64(sm.cnnMembers) / float64(sm.cnnBatches)
	} else {
		out.MeanBatch = 1
	}
	return out, nil
}

// steadyStats computes the steady-state statistics of a completed run,
// excluding requests that arrived before cut.
func (s *Server) steadyStats(res *sim.Result, cut int64) (Stats, error) {
	st, err := s.statsOf(s.collectTasks(res, cut))
	if err != nil {
		return Stats{}, err
	}
	return st.Stats, nil
}

// warmupFraction resolves the warm-up fraction default (0.2).
func warmupFraction(f float64) float64 {
	if f <= 0 {
		return 0.2
	}
	return f
}

// warmupCut converts a horizon and warm-up fraction into the arrival
// cycle before which requests are excluded from statistics.
func (s *Server) warmupCut(horizon time.Duration, warmup float64) int64 {
	return int64(float64(s.cfg.Cycles(horizon)) * warmupFraction(warmup))
}

// Run executes one sustained-load scenario under the given scheduler
// configuration and returns steady-state statistics.
func (s *Server) Run(spec Spec, policy string, preemptive bool, selector string,
	rng *rand.Rand) (Stats, error) {

	tasks, err := s.Generate(spec, rng)
	if err != nil {
		return Stats{}, err
	}
	res, err := s.simulate(policy, preemptive, selector, tasks)
	if err != nil {
		return Stats{}, err
	}
	return s.steadyStats(res, s.warmupCut(spec.Horizon, spec.WarmupFraction))
}
