// Package serving models the sustained-load operating regime of a cloud
// inference server (the deployment the paper's introduction motivates):
// an open-loop Poisson stream of requests offered at a fraction of the
// NPU's capacity over a time horizon, with steady-state latency measured
// after a warm-up window. It turns the repository's closed 8-task
// workloads into the classic throughput-latency curves operators actually
// provision against, and shows where each scheduling policy's latency
// knee sits.
package serving

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Spec parameterizes one sustained-load run.
type Spec struct {
	// Horizon is the arrival window; requests arrive over [0, Horizon).
	Horizon time.Duration
	// OfferedLoad is the offered utilization: the request rate times
	// the mix's mean isolated service time. Loads near or above 1
	// saturate the NPU.
	OfferedLoad float64
	// Models restricts the request mix (defaults to the 8-model suite).
	Models []string
	// BatchSizes restricts batches (defaults to {1,4,16}).
	BatchSizes []int
	// WarmupFraction of the horizon is excluded from latency
	// statistics (default 0.2).
	WarmupFraction float64
}

// Stats summarizes the steady-state behaviour of one run.
type Stats struct {
	// Requests admitted and completed.
	Requests int
	// Measured excludes warm-up arrivals.
	Measured int
	// ThroughputPerSec is completed inferences per second of makespan.
	ThroughputPerSec float64
	// MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS are
	// steady-state turnaround statistics.
	MeanLatencyMS, P50LatencyMS, P95LatencyMS, P99LatencyMS float64
	// MeanNTT is the mean normalized turnaround of measured requests.
	MeanNTT float64
	// SLAViolations4x is the measured fraction violating 4x isolated.
	SLAViolations4x float64
}

// Server generates and runs sustained-load scenarios against one NPU
// configuration.
type Server struct {
	cfg  npu.Config
	scfg sched.Config
	gen  *workload.Generator
}

// NewServer builds a Server sharing the given workload generator.
func NewServer(cfg npu.Config, scfg sched.Config, gen *workload.Generator) *Server {
	return &Server{cfg: cfg, scfg: scfg, gen: gen}
}

// meanServiceCycles estimates the mix's mean isolated service time by
// sampling instances.
func (s *Server) meanServiceCycles(models []string, batches []int, rng *rand.Rand) (float64, error) {
	const samples = 24
	var sum float64
	for i := 0; i < samples; i++ {
		name := models[rng.IntN(len(models))]
		b := batches[rng.IntN(len(batches))]
		task, err := s.gen.InstanceByName(i, name, b, sched.Medium, 0, rng)
		if err != nil {
			return 0, err
		}
		sum += float64(task.IsolatedCycles)
	}
	return sum / samples, nil
}

// Generate builds the Poisson request stream for a spec.
func (s *Server) Generate(spec Spec, rng *rand.Rand) ([]*workload.Task, error) {
	if spec.OfferedLoad <= 0 {
		return nil, fmt.Errorf("serving: non-positive offered load %v", spec.OfferedLoad)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("serving: non-positive horizon %v", spec.Horizon)
	}
	models := spec.Models
	if len(models) == 0 {
		for _, m := range defaultSuite() {
			models = append(models, m)
		}
	}
	batches := spec.BatchSizes
	if len(batches) == 0 {
		batches = []int{1, 4, 16}
	}
	mean, err := s.meanServiceCycles(models, batches, rng)
	if err != nil {
		return nil, err
	}
	// Poisson arrivals: exponential inter-arrival with rate
	// load / meanService.
	rate := spec.OfferedLoad / mean // arrivals per cycle
	horizon := s.cfg.Cycles(spec.Horizon)
	var tasks []*workload.Task
	var at float64
	id := 0
	for {
		at += rng.ExpFloat64() / rate
		arrival := int64(at)
		if arrival >= horizon {
			break
		}
		name := models[rng.IntN(len(models))]
		b := batches[rng.IntN(len(batches))]
		prio := sched.Priorities[rng.IntN(len(sched.Priorities))]
		task, err := s.gen.InstanceByName(id, name, b, prio, arrival, rng)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task)
		id++
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("serving: horizon %v too short for load %v",
			spec.Horizon, spec.OfferedLoad)
	}
	return tasks, nil
}

func defaultSuite() []string {
	return []string{"CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
		"RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR"}
}

// simulate resolves the scheduler configuration (fresh policy and
// selector instances per call; see the sched.Policy contract) and runs
// one simulation over the given tasks.
func (s *Server) simulate(policy string, preemptive bool, selector string,
	tasks []*workload.Task) (*sim.Result, error) {

	pol, err := sched.ByName(policy, s.scfg)
	if err != nil {
		return nil, err
	}
	var sel sched.MechanismSelector
	if preemptive {
		if selector == "" {
			selector = "dynamic"
		}
		if sel, err = sched.SelectorByName(selector); err != nil {
			return nil, err
		}
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.cfg, Sched: s.scfg,
		Policy: pol, Preemptive: preemptive, Selector: sel,
	}, workload.SchedTasks(tasks))
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}

// steadyStats computes the steady-state statistics of a completed run,
// excluding requests that arrived before cut.
func (s *Server) steadyStats(res *sim.Result, cut int64) (Stats, error) {
	out := Stats{Requests: len(res.Tasks)}
	var latencies, ntts []float64
	var measured []*sched.Task
	for _, t := range res.Tasks {
		if t.Arrival < cut {
			continue
		}
		measured = append(measured, t)
		latencies = append(latencies, s.cfg.Millis(t.Turnaround()))
		ntts = append(ntts, t.NTT())
	}
	out.Measured = len(measured)
	if out.Measured == 0 {
		return Stats{}, fmt.Errorf("serving: no requests survive the warm-up window")
	}
	out.MeanLatencyMS = stats.Mean(latencies)
	out.P50LatencyMS = stats.Percentile(latencies, 50)
	out.P95LatencyMS = stats.Percentile(latencies, 95)
	out.P99LatencyMS = stats.Percentile(latencies, 99)
	out.MeanNTT = stats.Mean(ntts)
	out.SLAViolations4x = metrics.SLAViolationRate(measured, 4)
	makespanSec := s.cfg.Seconds(res.Cycles)
	if makespanSec > 0 {
		out.ThroughputPerSec = float64(len(res.Tasks)) / makespanSec
	}
	if math.IsNaN(out.P99LatencyMS) {
		out.P99LatencyMS = out.P95LatencyMS
	}
	return out, nil
}

// warmupFraction resolves the warm-up fraction default (0.2).
func warmupFraction(f float64) float64 {
	if f <= 0 {
		return 0.2
	}
	return f
}

// warmupCut converts a horizon and warm-up fraction into the arrival
// cycle before which requests are excluded from statistics.
func (s *Server) warmupCut(horizon time.Duration, warmup float64) int64 {
	return int64(float64(s.cfg.Cycles(horizon)) * warmupFraction(warmup))
}

// Run executes one sustained-load scenario under the given scheduler
// configuration and returns steady-state statistics.
func (s *Server) Run(spec Spec, policy string, preemptive bool, selector string,
	rng *rand.Rand) (Stats, error) {

	tasks, err := s.Generate(spec, rng)
	if err != nil {
		return Stats{}, err
	}
	res, err := s.simulate(policy, preemptive, selector, tasks)
	if err != nil {
		return Stats{}, err
	}
	return s.steadyStats(res, s.warmupCut(spec.Horizon, spec.WarmupFraction))
}
