package serving

// node_bench_test.go tracks the streaming node session's hot path: the
// per-request submit cost (router decide + fluid commit + backend
// append) and the same path with an autoscaler attached — the delta
// between the two is the autoscale tick overhead bench.sh reports into
// BENCH_serving.json.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// benchStream generates one dense arrival stream the submit benchmarks
// replay into fresh node sessions.
func benchStream(b *testing.B, s *Server, n int) []*workload.Task {
	b.Helper()
	spec := Spec{
		Horizon:     time.Duration(n) * 250 * time.Microsecond,
		OfferedLoad: 4.0,
		Models:      []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"},
		BatchSizes:  []int{1},
	}
	stream, err := s.Generate(spec, workload.RNGFor(0xBE7C4, 1))
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

// submitAll opens one node per pass and streams every request through
// it; per-request cost is reported as ns/req.
func submitAll(b *testing.B, s *Server, cfg NodeConfig, stream []*workload.Task) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := s.OpenNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range stream {
			if err := ns.Submit(t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(stream)), "ns/req")
}

// BenchmarkNodeSessionSubmit measures the fixed-fleet submit path on a
// 4-NPU least-work node.
func BenchmarkNodeSessionSubmit(b *testing.B) {
	s := newServer(b)
	stream := benchStream(b, s, 2048)
	submitAll(b, s, NodeConfig{
		NPUs: 4, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS"},
	}, stream)
}

// BenchmarkNodeSessionSubmitAutoscale measures the same submit path
// with a queue-depth scaler ticking every 2ms. The fleet is pinned
// (MinNPUs == MaxNPUs == the baseline's size) so every tick evaluates
// but no scaling can apply: the difference to BenchmarkNodeSessionSubmit
// is purely the tick-evaluation overhead, not fleet-size effects.
func BenchmarkNodeSessionSubmitAutoscale(b *testing.B) {
	s := newServer(b)
	stream := benchStream(b, s, 2048)
	submitAll(b, s, NodeConfig{
		NPUs: 4, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS"},
		Autoscale: &AutoscaleConfig{Scaler: "queue-depth", SLO: 8 * time.Millisecond,
			MinNPUs: 4, MaxNPUs: 4},
	}, stream)
}

// BenchmarkNodeSessionSubmitTraced measures the fixed-fleet submit
// path with a telemetry handle attached: each request pays a trace-ID
// stamp plus two ring appends (submit + route events). The delta to
// BenchmarkNodeSessionSubmit is the tracing overhead the telemetry
// layer budgets at no more than 15% — bench.sh derives and records the
// ratio in BENCH_serving.json.
func BenchmarkNodeSessionSubmitTraced(b *testing.B) {
	s := newServer(b)
	stream := benchStream(b, s, 2048)
	// One long-lived Trace across every pass, exactly as a traced run
	// holds one for its whole stream: steady-state tracing cost is the
	// recording (ring writes, wrapping included), not the one-time ring
	// allocation.
	tr := telemetry.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := s.OpenNode(NodeConfig{
			NPUs: 4, Routing: cluster.LeastWork,
			Session: SessionConfig{Policy: "FCFS"},
			Trace:   tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range stream {
			if err := ns.Submit(t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(stream)), "ns/req")
}

// BenchmarkNodeSessionSubmitHetero measures the submit path on a
// weighted two-tier fleet (70% full-speed, 30% half-clock): the
// speed-aware least-work router weighs backends in normalized
// completion time, and every request landing on the slow tier pays the
// program-stretch path. The difference to BenchmarkNodeSessionSubmit
// is the full heterogeneity cost per request.
func BenchmarkNodeSessionSubmitHetero(b *testing.B) {
	s := newServer(b)
	stream := benchStream(b, s, 2048)
	fleet, err := FleetFromTemplate(s.cfg, "70%:fast,30%:slow")
	if err != nil {
		b.Fatal(err)
	}
	submitAll(b, s, NodeConfig{
		NPUs: 4, Fleet: fleet, Routing: cluster.LeastWork,
		Session: SessionConfig{Policy: "FCFS"},
	}, stream)
}
