package lint

// golden_test.go is the analyzer test harness: each analyzer has a
// fixture package under testdata/src annotated in-source with
//
//	// want <analyzer>: <message substring>
//
// comments on the lines findings are expected on. The harness runs the
// analyzer (with suppression directives applied, so each fixture's
// suppressed case doubles as a directive test) and diffs the findings
// against the annotations in both directions: every want must be
// matched by a finding and every finding by a want.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// want is one expected finding parsed from a fixture annotation.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
}

func TestGoldenFixtures(t *testing.T) {
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer string
		dir      string
	}{
		{"determinism", "testdata/src/determinism"},
		{"expgolden", "testdata/src/expgolden"},
		{"floatorder", "testdata/src/floatorder"},
		{"facadeimport", "testdata/src/facade/cmd/app"},
		{"registryonce", "testdata/src/registryonce"},
		{"errdrop", "testdata/src/errdrop"},
		{"statecopy", "testdata/src/statecopy"},
		{"timerinsim", "testdata/src/timerinsim"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			a := byName(tc.analyzer)
			if a == nil {
				t.Fatalf("no analyzer named %q", tc.analyzer)
			}
			pkg, err := loader.LoadDir(tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture must type-check cleanly: %v", terr)
			}
			checkGolden(t, pkg, a)
		})
	}
}

func checkGolden(t *testing.T, pkg *Package, a *Analyzer) {
	t.Helper()
	wants := parseWants(t, pkg)
	findings := Lint([]*Package{pkg}, []*Analyzer{a})

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line &&
				w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: missing [%s] finding containing %q",
				filepath.Base(w.file), w.line, w.analyzer, w.substr)
		}
	}
}

// parseWants extracts the `// want <analyzer>: <substring>` annotations
// from a fixture package's comments.
func parseWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				analyzer, substr, ok := strings.Cut(rest, ": ")
				if !ok {
					t.Fatalf("%s: malformed want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, want{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: strings.TrimSpace(analyzer),
					substr:   strings.TrimSpace(substr),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", pkg.Path)
	}
	return wants
}

// TestAnalyzersHaveDocs keeps the -list output useful: every analyzer
// carries a name and a one-line invariant statement.
func TestAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 6 {
		t.Errorf("expected at least 6 analyzers, have %d", len(seen))
	}
}

// TestLintOrdering pins the deterministic finding order the CLI and CI
// logs rely on.
func TestLintOrdering(t *testing.T) {
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/determinism")
	if err != nil {
		t.Fatal(err)
	}
	fs := Lint([]*Package{pkg}, Analyzers())
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		key := func(f Finding) string {
			return fmt.Sprintf("%s:%06d:%06d:%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer)
		}
		if key(a) > key(b) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}
