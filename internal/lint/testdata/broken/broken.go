// Package broken is the seeded-violation fixture: ci.sh runs
// premalint over this directory and requires a non-zero exit, proving
// the tripwire actually trips.
package broken

import "time"

// Clock violates the determinism invariant on purpose.
func Clock() int64 {
	return time.Now().UnixNano()
}
