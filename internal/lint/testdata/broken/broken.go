// Package broken is the seeded-violation fixture: ci.sh runs
// premalint over this directory and requires a non-zero exit, proving
// the tripwire actually trips.
package broken

import "time"

// Clock violates the determinism invariant on purpose.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Experiment mirrors the exp registry entry so the expgolden tripwire
// has a register site to flag.
type Experiment struct{ ID string }

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

func init() {
	register(Experiment{ID: "listed"})
	// "unlisted" is missing from experiments.golden on purpose.
	register(Experiment{ID: "unlisted"})
}

// MeanScore folds a map-ordered slice into a float on purpose, so the
// floatorder tripwire has a violation to flag.
func MeanScore(scores map[string]float64) float64 {
	var vals []float64
	for _, v := range scores {
		vals = append(vals, v)
	}
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals))
}
