// Command app seeds the facadeimport analyzer's golden cases: a cmd/
// package reaching into repro/internal/... directly, plus a justified
// suppression.
package main

import (
	"fmt"

	"repro/internal/cluster" // want facadeimport: must consume the repro facade
	//premalint:ignore facadeimport fixture: documents the suppression path for sanctioned tooling imports
	"repro/internal/workload"
)

func main() {
	st := cluster.NewState(2)
	fmt.Println(st.NPUs(), workload.Spec{})
}
