// Package expgolden is the expgolden analyzer's fixture: a miniature
// experiment registry whose in-directory golden list
// (experiments.golden) is missing one registered ID and carries one
// stale entry, plus a suppressed registration exercising the ignore
// directive.
package expgolden // want expgolden: golden entry "ghost" names no registered experiment

// Experiment mirrors the exp package's registry entry.
type Experiment struct {
	ID    string
	Title string
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

func init() {
	register(Experiment{ID: "fig01", Title: "listed in the golden file"})
	register(Experiment{ID: "rogue", Title: "missing from the golden file"}) // want expgolden: experiment "rogue" is not in the premabench golden list
	//premalint:ignore expgolden fixture demonstrates suppressing the golden check
	register(Experiment{ID: "shadow", Title: "suppressed"})
}
