// Package determfix seeds the determinism analyzer's golden cases:
// wall-clock reads, global RNG use, non-deterministic seeding, and
// map-iteration-order leaks, each paired with the sanctioned pattern
// or a justified suppression.
package determfix

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"
)

// wallClock trips the wall-clock rule.
func wallClock() int64 {
	now := time.Now() // want determinism: wall clock
	return now.UnixNano()
}

// elapsed trips it through time.Since, which reads the clock too.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism: wall clock
}

// suppressedClock documents an intentional wall-clock read.
func suppressedClock() int64 {
	//premalint:ignore determinism fixture: operator-facing log timestamp, never enters simulation state
	return time.Now().UnixNano()
}

// globalRand trips the process-wide RNG rule.
func globalRand() int {
	return rand.IntN(10) // want determinism: global rand.IntN
}

// seededOK builds the sanctioned explicitly seeded generator.
func seededOK(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 1))
}

// clockSeeded trips the seeding rule: the seed derives from the clock.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewPCG( // want determinism: seeded from the wall clock
		uint64(time.Now().UnixNano()), 1)) // want determinism: wall clock
}

// leakAppend leaks map iteration order into the returned slice.
func leakAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want determinism: map iteration order leaks into "out"
	}
	return out
}

// sortedKeys is the sanctioned collect-then-sort idiom: exempt because
// the slice is visibly sorted later in the same function.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printLeak writes output in map order.
func printLeak(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want determinism: output written inside map range
	}
}

// floatLeak accumulates floats in map order; float addition is not
// associative, so the sum depends on the visit order.
func floatLeak(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want determinism: float accumulation inside map range
	}
	return sum
}

// suppressedFloat documents an order-free accumulation.
func suppressedFloat(m map[string]float64) float64 {
	var n float64
	for range m {
		//premalint:ignore determinism fixture: increments of a constant, order cannot matter
		n += 1.0
	}
	return n
}
