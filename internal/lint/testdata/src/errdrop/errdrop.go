// Package errfix seeds the errdrop analyzer's golden cases against
// the real must-check APIs: discarded checkpoint and session errors
// (flagged), handled and explicitly acknowledged errors (clean), and
// a justified suppression.
package errfix

import (
	"repro/internal/ckptmem"
	"repro/internal/serving"
)

// drop trips the rule: the checkpoint save error vanishes, which is
// exactly the bug class PR 2 fixed by hand.
func drop(m *ckptmem.Manager) {
	m.Save(1, 64, 100) // want errdrop: discarded error from ckptmem.Manager.Save
}

// deferredDrop trips it through defer, which discards results too.
func deferredDrop(ss *serving.Session) {
	defer ss.Close() // want errdrop: discarded error from serving.Session.Close
	_ = ss
}

// handled consumes the error: clean.
func handled(m *ckptmem.Manager) error {
	_, err := m.Restore(1)
	return err
}

// acknowledged discards explicitly with blank assignment: clean, and
// greppable.
func acknowledged(ss *serving.Session) {
	_, _ = ss.Drain()
}

// suppressed documents a sanctioned drop.
func suppressed(ss *serving.Session) {
	//premalint:ignore errdrop fixture: session already failed, Close error is noise on this path
	ss.Close()
}
