// Package floatorder seeds the floatorder analyzer's golden cases: a
// float fold over a map-ordered slice (the violation), the
// collect-then-sort exemption, a fold over a slice with a
// deterministic source (which must stay silent), an integer fold over
// a map-ordered slice (also silent — integer addition is associative),
// and one justified suppression.
package floatorder

import "sort"

// meanUnsorted trips the rule: vals carries map iteration order out of
// the first range, and the second range folds it into a float sum.
func meanUnsorted(byReq map[int]float64) float64 {
	var vals []float64
	for _, v := range byReq {
		vals = append(vals, v)
	}
	total := 0.0
	for _, v := range vals { // want floatorder: float fold over "vals" inherits map iteration order
		total += v
	}
	return total / float64(len(vals))
}

// meanSorted exercises the collect-then-sort exemption: the sort
// between the collect and the fold fixes the order, so the sum is
// deterministic.
func meanSorted(byReq map[int]float64) float64 {
	var vals []float64
	for _, v := range byReq {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals))
}

// meanFromSlice folds a slice with a deterministic source: no map range
// ever touched vals, so the rule must stay silent.
func meanFromSlice(in []float64) float64 {
	var vals []float64
	for _, v := range in {
		vals = append(vals, v*2)
	}
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals))
}

// countUnsorted folds integers out of a map-ordered slice: integer
// addition is associative, so the total is order-independent and the
// rule must stay silent (the determinism analyzer's append check still
// covers the collection site).
func countUnsorted(byReq map[int]int) int {
	var vals []int
	for _, v := range byReq {
		vals = append(vals, v)
	}
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

// meanSuppressed documents a justified suppression: the fixture
// pretends the caller tolerates last-bit divergence.
func meanSuppressed(byReq map[int]float64) float64 {
	var vals []float64
	for _, v := range byReq {
		vals = append(vals, v)
	}
	total := 0.0
	//premalint:ignore floatorder fixture: this fold feeds a tolerance-banded comparison, not a replay artifact
	for _, v := range vals {
		total += v
	}
	return total / float64(len(vals))
}
