// Package regfix seeds the registryonce analyzer's golden cases: a
// write-once registry touched from init (sanctioned), from runtime
// code (flagged), and under a justified suppression.
package regfix

import "fmt"

// registry is a stand-in write-once registry.
var registry = map[string]func(){}

// Register is the registration API — a permitted wrapper context.
func Register(name string, f func()) error {
	if _, dup := registry[name]; dup {
		return fmt.Errorf("duplicate %q", name)
	}
	registry[name] = f
	return nil
}

// mustRegister panics on duplicates; as a Register* wrapper it is a
// permitted context too.
func mustRegister(name string, f func()) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// init-time registration is the sanctioned pattern.
func init() {
	mustRegister("fcfs", func() {})
}

// lateRegister trips the rule: registration from runtime code would
// race with running simulations.
func lateRegister(name string) {
	mustRegister(name, func() {}) // want registryonce: registries are write-once
}

// suppressedRegister documents a sanctioned dynamic registration.
func suppressedRegister(name string) {
	//premalint:ignore registryonce fixture: plugin loading completes before any simulation starts
	mustRegister(name, func() {})
}
