// Package statefix seeds the statecopy analyzer's golden cases:
// by-value cluster.State and mutex-holding structs (flagged), pointer
// passing (clean), range-value copies (flagged), and a justified
// suppression.
package statefix

import (
	"sync"

	"repro/internal/cluster"
)

// counter guards its map with a mutex: a no-copy struct.
type counter struct {
	mu sync.Mutex
	n  map[string]int
}

// lock touches the mutex so it is not dead weight in the fixture.
func (c *counter) lock() { c.mu.Lock() }

// byValueState trips the rule: the fluid state's slices alias live
// routing storage.
func byValueState(st cluster.State) int { // want statecopy: copies cluster.State by value
	return st.NPUs()
}

// byPointerState is the sanctioned form.
func byPointerState(st *cluster.State) int {
	return st.NPUs()
}

// byValueCounter trips the structural mutex rule.
func byValueCounter(c counter) int { // want statecopy: holds a sync primitive
	return len(c.n)
}

// rangeCopies trips the range-value rule.
func rangeCopies(states []cluster.State) int {
	total := 0
	for _, st := range states { // want statecopy: range value copies cluster.State
		total += st.NPUs()
	}
	return total
}

// suppressedCopy documents an intentional copy of an idle state.
//
//premalint:ignore statecopy fixture: zero-value state, no live slices to alias
func suppressedCopy(st cluster.State) int {
	return st.NPUs()
}
