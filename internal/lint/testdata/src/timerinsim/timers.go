// Package timerfix seeds the timerinsim analyzer's golden cases: every
// flavor of wall-clock timer the time package offers, the sanctioned
// pure-conversion calls that must stay silent, and one justified
// suppression (the control plane's pacing idiom).
package timerfix

import "time"

// sleeper trips the rule with the simplest timer of all.
func sleeper() {
	time.Sleep(time.Millisecond) // want timerinsim: time.Sleep schedules against the wall clock
}

// ticker trips it with a recurring timer.
func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want timerinsim: time.NewTicker
}

// oneShot trips it with a one-shot timer.
func oneShot() *time.Timer {
	return time.NewTimer(time.Second) // want timerinsim: time.NewTimer
}

// channels trips it through the channel-returning forms.
func channels() {
	<-time.After(time.Millisecond)     // want timerinsim: time.After
	for range time.Tick(time.Second) { // want timerinsim: time.Tick
		return
	}
}

// callback trips it through the callback form.
func callback(f func()) *time.Timer {
	return time.AfterFunc(time.Second, f) // want timerinsim: time.AfterFunc
}

// conversionsAreFine exercises the pure time surface the rule must not
// flag: parsing, arithmetic and formatting never touch the scheduler.
func conversionsAreFine() time.Duration {
	d, _ := time.ParseDuration("3ms")
	return d + 2*time.Millisecond
}

// pacedSleep documents the one sanctioned pattern: a sleep that only
// decides when the next virtual step runs, never what it computes.
func pacedSleep(d time.Duration) {
	//premalint:ignore timerinsim fixture: pacing sleep schedules when the next virtual step runs, never what it computes
	time.Sleep(d)
}
