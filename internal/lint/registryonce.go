package lint

import (
	"fmt"
	"go/ast"
	"regexp"
)

// registryOnceAnalyzer enforces the write-once discipline on the
// plugin registries (RegisterPolicy / RegisterSelector /
// RegisterEstimator / RegisterScaler and the internal registries they
// forward to): registration mutates process-global state, so it is
// only safe before any simulation runs. Permitted contexts are init
// functions (including package-level var initializers, which run at
// the same time), TestMain, _test.go files (excluded from loading
// anyway), and the bodies of Register*/mustRegister* forwarding
// wrappers — the registration API itself.
var registryOnceAnalyzer = &Analyzer{
	Name: "registryonce",
	Doc:  "Register* calls only from init funcs, TestMain, or registration wrappers",
	Run:  runRegistryOnce,
}

var registerCallRx = regexp.MustCompile(`^(must|Must)?Register`)

func runRegistryOnce(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowedRegistrarContext(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if name == "" || !registerCallRx.MatchString(name) {
					return true
				}
				out = append(out, Finding{
					Pos:      p.pos(call),
					Analyzer: "registryonce",
					Message: fmt.Sprintf("%s called from %s: registries are write-once "+
						"global state, touch them only from init, TestMain, or a "+
						"Register* wrapper", name, fd.Name.Name),
				})
				return true
			})
		}
	}
	return out
}

// allowedRegistrarContext reports whether a function may legitimately
// register: init (no receiver), TestMain, or a registration wrapper
// itself.
func allowedRegistrarContext(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if fd.Recv == nil && (name == "init" || name == "TestMain") {
		return true
	}
	return registerCallRx.MatchString(name)
}

// calleeName extracts the called function's bare name from a call
// expression: Register(...), pkg.RegisterPolicy(...), r.Register(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
