package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

var floatorderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc: "no float fold over a slice filled inside a map range without a " +
		"later sort; the sum inherits the unspecified iteration order",
	Run: runFloatOrder,
}

// runFloatOrder covers the gap the determinism analyzer's map-range
// check leaves open: that check flags the append site, this one flags
// the downstream consumption — a later `range` over the map-ordered
// slice that folds values into a float accumulator. Float addition is
// not associative, so even though the slice's *contents* are
// order-independent as a set, the folded sum is not, and aggregate
// statistics (means, totals, decompositions) silently diverge between
// replays. The collect-then-sort idiom (sort the slice between the two
// ranges) clears the taint, exactly as it exempts the append check.
func runFloatOrder(p *Package) []Finding {
	if !determinismInScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFloatOrder(p, fd)...)
		}
	}
	return out
}

// mapOrderTaint marks one slice identifier as carrying map iteration
// order: it was appended to inside a range over a map ending at end,
// with no sort/slices call over it later in the function.
type mapOrderTaint struct {
	name string
	end  token.Pos
}

// checkFloatOrder runs the two-pass taint analysis over one function.
// Pass 1 collects the tainted slice identifiers; pass 2 flags every
// later range over a tainted slice whose body accumulates into a float
// with a compound assignment (+=, -=, *=, /=).
func checkFloatOrder(p *Package, fd *ast.FuncDecl) []Finding {
	var tainted []mapOrderTaint
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppendCall(call) || i >= len(as.Lhs) {
					continue
				}
				id := rootIdent(as.Lhs[i])
				if id == nil || sortedAfter(p, fd, rs, id.Name) {
					continue
				}
				tainted = append(tainted, mapOrderTaint{name: id.Name, end: rs.End()})
			}
			return true
		})
		return true
	})
	if len(tainted) == 0 {
		return nil
	}

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return true
		}
		id := rootIdent(rs.X)
		if id == nil {
			return true
		}
		carried := false
		for _, taint := range tainted {
			if taint.name == id.Name && rs.Pos() > taint.end {
				carried = true
			}
		}
		if !carried || !foldsFloat(p, rs.Body) {
			return true
		}
		out = append(out, Finding{
			Pos:      p.pos(rs),
			Analyzer: "floatorder",
			Message: fmt.Sprintf("float fold over %q inherits map iteration order (the slice "+
				"was appended to inside a map range with no later sort); float addition is "+
				"order-dependent, so sort %q between the collect and the fold, or iterate "+
				"sorted keys", id.Name, id.Name),
		})
		return true
	})
	return out
}

// foldsFloat reports whether the block accumulates into a float lvalue
// with a compound assignment.
func foldsFloat(p *Package, body *ast.BlockStmt) bool {
	folds := false
	ast.Inspect(body, func(n ast.Node) bool {
		if folds {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if lt := p.Info.TypeOf(as.Lhs[0]); lt != nil && isFloat(lt) {
				folds = true
			}
		}
		return !folds
	})
	return folds
}
