// Package lint is premalint's analysis framework: a stdlib-only
// (go/parser + go/ast + go/types) static-analysis pass that mechanically
// enforces the repository's domain invariants — determinism of the
// simulation paths, facade-only consumers, init-time-only registries,
// must-check error APIs, and no-copy state structs.
//
// The framework deliberately avoids golang.org/x/tools: a Loader walks
// the module, parses every non-test package and type-checks it with a
// recursive module-internal importer (standard-library imports resolve
// through importer.Default), and each Analyzer inspects the typed ASTs
// and reports Findings. Findings can be suppressed per line with a
//
//	//premalint:ignore <analyzer> <reason>
//
// directive on the offending line or the line directly above it; the
// reason is mandatory so every suppression documents why the invariant
// does not apply. See the "Static analysis" section of the README for
// the analyzer catalogue.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at one source position.
type Finding struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Analyzer names the rule that fired (see Analyzer.Name).
	Analyzer string
	// Message explains the violation and, where possible, the fix.
	Message string
}

// String renders the finding in the conventional file:line:col form
// consumed by editors and CI logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and returns every violation it finds;
// suppression directives are applied afterwards by Lint, so analyzers
// never need to know about them.
type Analyzer struct {
	// Name identifies the analyzer in findings, -only filters and
	// ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by premalint -list.
	Doc string
	// Run reports the violations in one package.
	Run func(p *Package) []Finding
}

// Analyzers returns the full premalint analyzer set, sorted by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		determinismAnalyzer,
		expGoldenAnalyzer,
		floatorderAnalyzer,
		facadeImportAnalyzer,
		registryOnceAnalyzer,
		errDropAnalyzer,
		stateCopyAnalyzer,
		timerInSimAnalyzer,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// byName returns the analyzer with the given name from the full set, or
// nil if no such analyzer exists.
func byName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Lint runs the analyzers over the packages, applies the per-line
// ignore directives, and returns the surviving findings sorted by
// position. Malformed directives (missing analyzer or reason) and
// directives naming unknown analyzers are themselves reported, under
// the pseudo-analyzer name "premalint".
func Lint(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		dirs := directivesFor(p)
		out = append(out, dirs.problems...)
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if dirs.suppressed(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
