package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix is the comment form that suppresses a finding:
//
//	//premalint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory: a suppression without a recorded justification
// is itself reported as a finding.
const ignorePrefix = "//premalint:ignore"

// directive is one parsed ignore comment.
type directive struct {
	analyzer string
}

// directiveSet indexes a package's ignore directives by file and line.
type directiveSet struct {
	// byLine maps file name -> line -> directives on that line.
	byLine map[string]map[int][]directive
	// problems reports malformed directives (missing analyzer/reason)
	// and directives naming analyzers that do not exist.
	problems []Finding
}

// directivesFor scans every comment in the package for ignore
// directives.
func directivesFor(p *Package) *directiveSet {
	ds := &directiveSet{byLine: map[string]map[int][]directive{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					ds.problem(pos, "ignore directive names no analyzer (want //premalint:ignore <analyzer> <reason>)")
					continue
				case len(fields) == 1:
					ds.problem(pos, "ignore directive for %q gives no reason (want //premalint:ignore <analyzer> <reason>)", fields[0])
					continue
				}
				name := fields[0]
				if byName(name) == nil {
					ds.problem(pos, "ignore directive names unknown analyzer %q", name)
					continue
				}
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]directive{}
					ds.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], directive{analyzer: name})
			}
		}
	}
	return ds
}

func (ds *directiveSet) problem(pos token.Position, format string, args ...any) {
	ds.problems = append(ds.problems, Finding{
		Pos:      pos,
		Analyzer: "premalint",
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a directive for the finding's analyzer
// sits on the finding's line or the line directly above it.
func (ds *directiveSet) suppressed(f Finding) bool {
	lines := ds.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == f.Analyzer {
				return true
			}
		}
	}
	return false
}
