package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// expGoldenAnalyzer keeps the experiment registry and the premabench
// golden list in lockstep: every experiment ID registered through
// register(Experiment{ID: ...}) must appear in the golden list
// (cmd/premabench/experiments.golden), and every golden entry must
// still be registered. The golden list is the reviewable catalogue of
// what `premabench` regenerates — an experiment added without listing
// it (or removed while still listed) is invisible to the one place the
// full evaluation surface is spelled out.
//
// The analyzer activates only on packages that contain the
// register(Experiment{...}) idiom. The golden list is the package
// directory's own experiments.golden when one exists (fixtures and the
// seeded-violation tripwire), otherwise — for the real
// repro/internal/exp registry — the module's
// cmd/premabench/experiments.golden. A registry package with neither
// is out of scope and reports nothing.
var expGoldenAnalyzer = &Analyzer{
	Name: "expgolden",
	Doc:  "registered experiment IDs must match the premabench golden list",
	Run:  runExpGolden,
}

// expGoldenFile is the golden list's file name, one experiment ID per
// line ('#' comments and blank lines ignored).
const expGoldenFile = "experiments.golden"

func runExpGolden(p *Package) []Finding {
	regs := registeredExperiments(p)
	if len(regs) == 0 {
		return nil
	}
	goldenPath, ok := expGoldenPath(p)
	if !ok {
		return nil
	}
	golden, err := readExpGolden(goldenPath)
	if err != nil {
		return []Finding{{
			Pos:      p.pos(p.Files[0].Name),
			Analyzer: "expgolden",
			Message:  fmt.Sprintf("experiment registry has no readable golden list: %v", err),
		}}
	}
	var out []Finding
	seen := make(map[string]bool, len(regs))
	for _, r := range regs {
		seen[r.id] = true
		if !golden[r.id] {
			out = append(out, Finding{
				Pos:      r.pos,
				Analyzer: "expgolden",
				Message: fmt.Sprintf("experiment %q is not in the premabench golden list (%s); "+
					"add it so the catalogue stays complete", r.id, goldenPath),
			})
		}
	}
	stale := make([]string, 0, len(golden))
	for id := range golden {
		if !seen[id] {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		out = append(out, Finding{
			Pos:      p.pos(p.Files[0].Name),
			Analyzer: "expgolden",
			Message: fmt.Sprintf("golden entry %q names no registered experiment; "+
				"remove it from %s", id, goldenPath),
		})
	}
	return out
}

// expRegistration is one register(Experiment{ID: "..."}) site.
type expRegistration struct {
	id  string
	pos token.Position
}

// registeredExperiments collects every register(Experiment{...}) call's
// string-literal ID, in source order.
func registeredExperiments(p *Package) []expRegistration {
	var out []expRegistration
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "register" || len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.CompositeLit)
			if !ok || typeName(lit.Type) != "Experiment" {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "ID" {
					continue
				}
				if id, ok := stringLit(kv.Value); ok {
					out = append(out, expRegistration{id: id, pos: p.pos(call)})
				}
			}
			return true
		})
	}
	return out
}

// expGoldenPath resolves the golden list governing this registry
// package: its own experiments.golden if present, else the module's
// cmd/premabench list for the real internal/exp registry.
func expGoldenPath(p *Package) (string, bool) {
	local := filepath.Join(p.Dir, expGoldenFile)
	if _, err := os.Stat(local); err == nil {
		return local, true
	}
	if strings.HasSuffix(p.Path, "internal/exp") {
		if root, err := FindModuleRoot(p.Dir); err == nil {
			return filepath.Join(root, "cmd", "premabench", expGoldenFile), true
		}
	}
	return "", false
}

// readExpGolden parses a golden list: one experiment ID per line,
// '#' comments and blank lines ignored.
func readExpGolden(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ids[line] = true
	}
	return ids, nil
}

// typeName extracts the bare type name of a composite literal's type
// expression: Experiment{...} or exp.Experiment{...}.
func typeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// stringLit unquotes a string-literal expression.
func stringLit(expr ast.Expr) (string, bool) {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
