package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// timerInSimScope is the determinism scope plus the control plane: the
// ctl package simulates on the virtual stream clock like everything in
// determinismScope, but additionally paces wall time, so it carries the
// one sanctioned sleep (behind an ignore directive in drive.go). A
// timer anywhere else in these packages would couple simulated outcomes
// to wall-clock scheduling and break byte-identical replay.
func timerInSimInScope(path string) bool {
	if path == "repro/internal/ctl" || strings.HasPrefix(path, "repro/internal/ctl/") {
		return true
	}
	return determinismInScope(path)
}

// timerFuncs is the time-package surface that schedules against the
// wall clock. Pure conversions (ParseDuration, Duration arithmetic,
// Unix construction) are fine — only actual timers and sleeps couple a
// simulation to the scheduler.
var timerFuncs = map[string]bool{
	"Sleep": true, "NewTimer": true, "NewTicker": true,
	"After": true, "Tick": true, "AfterFunc": true,
}

var timerInSimAnalyzer = &Analyzer{
	Name: "timerinsim",
	Doc: "no wall-clock timers (time.Sleep/NewTimer/NewTicker/After) in " +
		"simulation packages; simulated time advances on the stream clock",
	Run: runTimerInSim,
}

func runTimerInSim(p *Package) []Finding {
	if !timerInSimInScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := p.pkgFunc(file, call)
			if !ok || pkg != "time" || !timerFuncs[name] {
				return true
			}
			out = append(out, Finding{
				Pos:      p.pos(call),
				Analyzer: "timerinsim",
				Message: fmt.Sprintf("time.%s schedules against the wall clock; a timer in a "+
					"simulation package makes outcomes depend on real scheduling and breaks "+
					"byte-identical replay — advance the stream clock (AdvanceTo / Submit) instead", name),
			})
			return true
		})
	}
	return out
}
