package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// errDropMustCheck configures the must-check APIs: methods whose error
// return reports lost simulation state, not a mere inconvenience.
// Dropping them is the exact bug class PR 2 fixed by hand in the
// checkpoint path (Manager.Save failures silently un-checkpointed
// tasks). Keys are "pkgpath.TypeName"; values are method names.
//
// An expression-statement call (or go/defer of one) discards the error
// and is flagged; an explicit `_ = x.Close()` is a visible, greppable
// acknowledgment and is allowed.
var errDropMustCheck = map[string][]string{
	"repro/internal/ckptmem.Manager":     {"Save", "Restore"},
	"repro/internal/serving.Session":     {"Close", "Drain"},
	"repro/internal/serving.NodeSession": {"Close", "Drain"},
	"repro/internal/cluster.State":       {"TrackWork"},
	"repro.Session":                      {"Close", "Drain"},
	"repro.NodeSession":                  {"Close", "Drain"},
	"repro.Suite":                        {"Close"},
}

var errDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "errors from must-check APIs (ckptmem Save/Restore, Session Close/Drain, ...) are never silently discarded",
	Run:  runErrDrop,
}

func runErrDrop(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, _ = x.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = x.Call
			case *ast.GoStmt:
				call = x.Call
			}
			if call == nil {
				return true
			}
			key, method, ok := p.receiverType(call)
			if !ok {
				return true
			}
			if !mustCheck(key, method) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.pos(call),
				Analyzer: "errdrop",
				Message: fmt.Sprintf("discarded error from %s.%s — a must-check API "+
					"(failure means lost simulation state); handle it or acknowledge "+
					"explicitly with `_ = ...`", shortType(key), method),
			})
			return true
		})
	}
	return out
}

func mustCheck(typeKey, method string) bool {
	for _, m := range errDropMustCheck[typeKey] {
		if m == method {
			return true
		}
	}
	return false
}

// shortType compresses "repro/internal/serving.Session" to
// "serving.Session" for messages.
func shortType(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}
