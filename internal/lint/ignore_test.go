package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOnly builds a syntax-only Package (no type checking), which is
// all the directive scanner needs.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "repro/internal/lint/fake", Fset: fset, Files: []*ast.File{f}}
}

func TestDirectiveProblems(t *testing.T) {
	cases := []struct {
		name, comment, wantSub string
	}{
		{"no analyzer", "//premalint:ignore", "names no analyzer"},
		{"no reason", "//premalint:ignore determinism", "gives no reason"},
		{"unknown analyzer", "//premalint:ignore nosuch because reasons", "unknown analyzer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := parseOnly(t, "package fake\n\n"+tc.comment+"\nvar x int\n")
			ds := directivesFor(p)
			if len(ds.problems) != 1 {
				t.Fatalf("want 1 problem, got %v", ds.problems)
			}
			pr := ds.problems[0]
			if pr.Analyzer != "premalint" || !strings.Contains(pr.Message, tc.wantSub) {
				t.Errorf("problem %s does not contain %q", pr, tc.wantSub)
			}
		})
	}
}

func TestSuppressionWindow(t *testing.T) {
	src := `package fake

//premalint:ignore errdrop session teardown, error is noise
var a int
var b int
`
	p := parseOnly(t, src)
	ds := directivesFor(p)
	if len(ds.problems) != 0 {
		t.Fatalf("unexpected directive problems: %v", ds.problems)
	}
	mk := func(line int, analyzer string) Finding {
		return Finding{
			Pos:      token.Position{Filename: "fix.go", Line: line},
			Analyzer: analyzer,
		}
	}
	if !ds.suppressed(mk(3, "errdrop")) {
		t.Error("finding on the directive line should be suppressed")
	}
	if !ds.suppressed(mk(4, "errdrop")) {
		t.Error("finding directly below the directive should be suppressed")
	}
	if ds.suppressed(mk(5, "errdrop")) {
		t.Error("finding two lines below the directive must not be suppressed")
	}
	if ds.suppressed(mk(4, "determinism")) {
		t.Error("directive must only suppress its named analyzer")
	}
}
