package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// pos resolves a node's position through the loader-wide file set.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// importTable maps the local names of a file's imports to their import
// paths ("rnd" -> "math/rand/v2"), the syntactic fallback used when
// type information is unavailable.
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndexByte(path, '/')+1:]
		// math/rand/v2-style major-version suffixes import under the
		// penultimate element.
		if strings.HasPrefix(name, "v") && len(name) > 1 && name[1] >= '0' && name[1] <= '9' {
			if i := strings.LastIndexByte(path[:len(path)-len(name)-1], '/'); i >= 0 {
				name = path[i+1 : len(path)-len(name)-1]
			}
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		t[name] = path
	}
	return t
}

// pkgFunc resolves a call of the form pkg.Fn(...) to the imported
// package's path and the function name. It prefers type information
// (which sees through renames and shadowing); when the checker could
// not resolve the identifier — a fixture with missing imports, a tree
// mid-refactor — it falls back to the file's import table. Method
// calls (receiver present) resolve to ok == false: they are values'
// methods, not package functions.
func (p *Package) pkgFunc(f *ast.File, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	if obj, ok2 := p.Info.Uses[sel.Sel].(*types.Func); ok2 {
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return "", "", false
		}
		if obj.Pkg() == nil {
			return "", "", false
		}
		return obj.Pkg().Path(), obj.Name(), true
	}
	// Fallback: X must be a bare identifier naming an import.
	id, ok2 := sel.X.(*ast.Ident)
	if !ok2 {
		return "", "", false
	}
	// If the checker resolved the identifier to anything other than a
	// package name, this is a field or method access, not pkg.Fn.
	if obj, resolved := p.Info.Uses[id]; resolved {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", "", false
		}
	}
	path, found := importTable(f)[id.Name]
	if !found {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// receiverType resolves a method call x.M(...) to the receiver's named
// type key "pkgpath.TypeName" (pointers dereferenced) and the method
// name. ok is false for anything that is not a resolvable method call.
func (p *Package) receiverType(call *ast.CallExpr) (typeKey, method string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	obj, ok2 := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok2 {
		return "", "", false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	key := namedTypeKey(sig.Recv().Type())
	if key == "" {
		return "", "", false
	}
	return key, obj.Name(), true
}

// namedTypeKey renders a (possibly pointer-wrapped) named type as
// "pkgpath.TypeName", or "" for unnamed types.
func namedTypeKey(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// rootIdent walks selector/index expressions down to the base
// identifier: s.cache.entries[k] -> s.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// hasPathSegment reports whether the import path contains seg as a
// whole path element.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// mentionsIdent reports whether the expression subtree contains an
// identifier with the given name.
func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
