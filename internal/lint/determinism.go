package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScope lists the packages whose outputs must replay
// byte-identically: the simulator, schedulers, routing state, serving
// sessions, autoscalers, scenario engine, workload generation, the
// experiment layer and the telemetry aggregations (whose JSONL exports
// are byte-diffed in CI). Wall clocks and global RNGs anywhere in these
// packages (or their subpackages) would corrupt replay determinism.
// Fixture packages under a testdata directory are always in scope so
// the analyzer can be exercised by golden tests and seeded-violation
// fixtures.
var determinismScope = []string{
	"repro/internal/sim",
	"repro/internal/sched",
	"repro/internal/cluster",
	"repro/internal/serving",
	"repro/internal/autoscale",
	"repro/internal/scenario",
	"repro/internal/workload",
	"repro/internal/exp",
	"repro/internal/telemetry",
}

func determinismInScope(path string) bool {
	for _, s := range determinismScope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return strings.Contains(path, "/testdata/")
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — the sanctioned way to get randomness in
// simulation code (always from a caller-provided seed).
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true, "NewSource": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "no wall clock, global RNG, or map-iteration-order leak in " +
		"the determinism-critical simulation packages",
	Run: runDeterminism,
}

func runDeterminism(p *Package) []Finding {
	if !determinismInScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		file := f
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					out = append(out, checkDeterministicCall(p, file, x)...)
				case *ast.RangeStmt:
					out = append(out, checkMapRange(p, fd, x)...)
				}
				return true
			})
		}
	}
	return out
}

// checkDeterministicCall flags wall-clock reads, global math/rand
// calls, and RNG constructors seeded from non-deterministic state.
func checkDeterministicCall(p *Package, f *ast.File, call *ast.CallExpr) []Finding {
	pkg, name, ok := p.pkgFunc(f, call)
	if !ok {
		return nil
	}
	switch {
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		return []Finding{{
			Pos:      p.pos(call),
			Analyzer: "determinism",
			Message: fmt.Sprintf("time.%s reads the wall clock; simulation paths must "+
				"derive time from the simulated clock (cycles / stream clock)", name),
		}}
	case isRandPkg(pkg) && !randConstructors[name]:
		return []Finding{{
			Pos:      p.pos(call),
			Analyzer: "determinism",
			Message: fmt.Sprintf("global rand.%s uses the process-wide RNG; thread an "+
				"explicitly seeded *rand.Rand (e.g. stats.NewRNG / workload.RNGFor) instead", name),
		}}
	case isRandPkg(pkg) && randConstructors[name]:
		if bad := nondeterministicSeed(p, f, call); bad != "" {
			return []Finding{{
				Pos:      p.pos(call),
				Analyzer: "determinism",
				Message: fmt.Sprintf("rand.%s seeded from %s; seeds must come from "+
					"configuration so runs replay identically", name, bad),
			}}
		}
	}
	return nil
}

// nondeterministicSeed reports what non-deterministic source (if any)
// feeds a rand constructor's arguments: wall clock, process identity,
// or crypto randomness.
func nondeterministicSeed(p *Package, f *ast.File, ctor *ast.CallExpr) string {
	bad := ""
	for _, arg := range ctor.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || bad != "" {
				return bad == ""
			}
			pkg, name, ok := p.pkgFunc(f, call)
			if !ok {
				return true
			}
			switch {
			case pkg == "time":
				bad = "the wall clock (time." + name + ")"
			case pkg == "os" && (name == "Getpid" || name == "Getppid"):
				bad = "process identity (os." + name + ")"
			case pkg == "crypto/rand":
				bad = "crypto/rand"
			}
			return bad == ""
		})
		if bad != "" {
			return bad
		}
	}
	return bad
}

// checkMapRange flags `range` over a map whose body lets the
// unspecified iteration order escape: appending to a slice (unless the
// slice is visibly sorted later in the same function), writing output,
// or accumulating floats (float addition is not associative, so the
// sum depends on visit order).
func checkMapRange(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}

	var out []Finding
	var appendTargets []*ast.Ident
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if lt := p.Info.TypeOf(x.Lhs[0]); lt != nil && isFloat(lt) {
					out = append(out, Finding{
						Pos:      p.pos(x),
						Analyzer: "determinism",
						Message: "float accumulation inside map range: float addition is " +
							"order-dependent and map iteration order is unspecified; iterate " +
							"sorted keys or accumulate into a slice and sum in fixed order",
					})
				}
			default:
				for i, rhs := range x.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isAppendCall(call) {
						continue
					}
					var id *ast.Ident
					if i < len(x.Lhs) {
						id = rootIdent(x.Lhs[i])
					}
					appendTargets = append(appendTargets, id)
				}
			}
		case *ast.CallExpr:
			if isOutputWrite(p, x) {
				out = append(out, Finding{
					Pos:      p.pos(x),
					Analyzer: "determinism",
					Message: "output written inside map range: map iteration order is " +
						"unspecified, so emitted order varies run to run; iterate sorted keys",
				})
			}
		}
		return true
	})

	for _, id := range appendTargets {
		if id != nil && sortedAfter(p, fd, rs, id.Name) {
			continue
		}
		target := "the slice"
		pos := p.pos(rs)
		if id != nil {
			target = fmt.Sprintf("%q", id.Name)
			pos = p.pos(id)
		}
		out = append(out, Finding{
			Pos:      pos,
			Analyzer: "determinism",
			Message: fmt.Sprintf("map iteration order leaks into %s (append inside map "+
				"range with no later sort in this function); sort the result or iterate "+
				"sorted keys", target),
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isAppendCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isOutputWrite recognizes fmt print calls and Write*/Print* method
// calls — the ways map-ordered data typically escapes into output.
func isOutputWrite(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	if _, method, ok := p.receiverType(call); ok {
		return strings.HasPrefix(method, "Write") || strings.HasPrefix(method, "Print")
	}
	return false
}

// sortedAfter reports whether, later in the same function, the named
// slice is passed to a sort/slices call — the collect-keys-then-sort
// idiom, which is deterministic and therefore exempt.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, name string) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, name) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
