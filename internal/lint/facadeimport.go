package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// facadeImportAnalyzer enforces the PR-3 API boundary: binaries under
// cmd/ and the runnable documentation under examples/ are the facade's
// consumers, so they may import the public repro package but never
// reach into repro/internal/... directly. The boundary is what lets
// internal packages refactor freely (the compiler enforces it for
// external modules; this analyzer enforces it for our own commands).
var facadeImportAnalyzer = &Analyzer{
	Name: "facadeimport",
	Doc:  "cmd/ and examples/ consume only the repro facade, never repro/internal/...",
	Run:  runFacadeImport,
}

func runFacadeImport(p *Package) []Finding {
	if !hasPathSegment(p.Path, "cmd") && !hasPathSegment(p.Path, "examples") {
		return nil
	}
	// The module's own path is the import prefix internal packages hang
	// off; deriving it from the package path keeps the rule valid under
	// a module rename.
	module := p.Path
	if i := strings.IndexByte(module, '/'); i >= 0 {
		module = module[:i]
	}
	banned := module + "/internal/"

	var out []Finding
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if strings.HasPrefix(path, banned) || path == module+"/internal" {
				out = append(out, Finding{
					Pos:      p.pos(spec),
					Analyzer: "facadeimport",
					Message: fmt.Sprintf("%s imports %s; commands and examples must "+
						"consume the %s facade only — export what you need through it",
						p.Path, path, module),
				})
			}
		}
	}
	return out
}
