package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package, the unit
// every Analyzer operates on.
type Package struct {
	// Path is the import path ("repro/internal/sim"); the module root
	// package is the module path itself.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the loader-wide file set all position info resolves
	// through.
	Fset *token.FileSet
	// Files holds the parsed sources (with comments), sorted by file
	// name. _test.go files are excluded: test files may legitimately
	// use wall clocks, global RNGs and registries.
	Files []*ast.File
	// Types is the type-checker's package object.
	Types *types.Package
	// Info carries the expression types and identifier uses the
	// analyzers consult. Type-checking is best-effort (see TypeErrors);
	// analyzers must tolerate missing entries.
	Info *types.Info
	// TypeErrors collects type-checker diagnostics. A package that
	// compiles under `go build` produces none; fixtures and mid-refactor
	// trees may produce some, and analysis still proceeds on whatever
	// type information was recoverable.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module. It is also the
// types.Importer the type-checker calls back into: module-internal
// import paths load recursively from source, everything else (the
// standard library) resolves through importer.Default. Loaded packages
// are cached, so shared dependencies type-check once.
type Loader struct {
	// ModRoot is the absolute module root directory (where go.mod
	// lives).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a Loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    map[string]*Package{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader-wide file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// importPathFor maps an absolute package directory to its import path
// within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in one directory. Results
// are cached by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// Import implements types.Importer: the type-checker calls it for every
// import encountered while checking a module package.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load is the cached parse+type-check of one package directory.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})

	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	// Cache before checking so import cycles (illegal in Go, but
	// possible in broken fixtures) terminate instead of recursing.
	l.pkgs[path] = p

	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error;
	// the lenient Error handler above keeps it going past individual
	// problems so Info is as full as the sources allow.
	tpkg, _ := conf.Check(path, l.fset, files, p.Info)
	p.Types = tpkg
	return p, nil
}

// Walk loads every package under root (inside the module), skipping
// testdata, hidden and vendor directories — the same pruning the go
// tool applies. The root directory itself is loaded even when it is
// inside a testdata tree, so fixtures can be linted by naming them
// explicitly.
func (l *Loader) Walk(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != abs {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
		}
		if !hasGoSource(path) {
			return nil
		}
		p, err := l.LoadDir(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoSource reports whether dir directly contains at least one
// non-test .go file.
func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
