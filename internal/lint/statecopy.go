package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// stateCopyBanned lists named struct types that must never travel by
// value: cluster.State's slices alias live fluid-routing storage (a
// copy shares backing arrays with the original until the first
// append, after which the two silently diverge), and
// serving.sampleSet carries latency-sample slices with the same
// hazard. Mutex-holding structs are detected structurally and need no
// listing.
var stateCopyBanned = map[string]bool{
	"repro/internal/cluster.State":     true,
	"repro/internal/serving.sampleSet": true,
}

var stateCopyAnalyzer = &Analyzer{
	Name: "statecopy",
	Doc:  "cluster.State, sampleSet and mutex-holding structs are passed by pointer, never copied",
	Run:  runStateCopy,
}

func runStateCopy(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					out = append(out, checkFieldList(p, x.Recv, "receiver")...)
				}
			case *ast.FuncType:
				out = append(out, checkFieldList(p, x.Params, "parameter")...)
			case *ast.RangeStmt:
				out = append(out, checkRangeCopy(p, x)...)
			}
			return true
		})
	}
	return out
}

// checkFieldList flags by-value parameters/receivers of no-copy types.
func checkFieldList(p *Package, fields *ast.FieldList, what string) []Finding {
	if fields == nil {
		return nil
	}
	var out []Finding
	for _, field := range fields.List {
		typeExpr := field.Type
		if el, ok := typeExpr.(*ast.Ellipsis); ok {
			typeExpr = el.Elt
		}
		t := p.Info.TypeOf(typeExpr)
		if t == nil {
			continue
		}
		if reason := noCopyReason(t); reason != "" {
			name := types.TypeString(t, nil)
			if key := namedTypeKey(t); key != "" {
				name = shortType(key)
			}
			out = append(out, Finding{
				Pos:      p.pos(field),
				Analyzer: "statecopy",
				Message: fmt.Sprintf("%s copies %s by value (%s); pass *%s",
					what, name, reason, name),
			})
		}
	}
	return out
}

// checkRangeCopy flags range clauses whose value variable copies a
// no-copy struct per iteration (`for _, st := range states`).
func checkRangeCopy(p *Package, rs *ast.RangeStmt) []Finding {
	if rs.Value == nil {
		return nil
	}
	t := p.Info.TypeOf(rs.Value)
	if t == nil {
		return nil
	}
	reason := noCopyReason(t)
	if reason == "" {
		return nil
	}
	name := types.TypeString(t, nil)
	if key := namedTypeKey(t); key != "" {
		name = shortType(key)
	}
	return []Finding{{
		Pos:      p.pos(rs.Value),
		Analyzer: "statecopy",
		Message: fmt.Sprintf("range value copies %s per iteration (%s); range over "+
			"indices or store pointers", name, reason),
	}}
}

// noCopyReason reports why a (non-pointer) type must not be copied, or
// "" if copying is fine: either it is explicitly banned, or its struct
// representation holds a synchronization primitive.
func noCopyReason(t types.Type) string {
	t = types.Unalias(t)
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	if key := namedTypeKey(t); key != "" && stateCopyBanned[key] {
		return "aliases live slice-backed state"
	}
	if holdsLock(t, map[types.Type]bool{}) {
		return "holds a sync primitive"
	}
	return ""
}

// syncNoCopy are the sync types whose values must not be duplicated
// after first use.
var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// holdsLock reports whether t is, or transitively contains as a struct
// field, one of the sync no-copy types. The seen map guards against
// recursive types.
func holdsLock(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncNoCopy[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsLock(u.Elem(), seen)
	}
	return false
}
