// Package exp contains one self-contained experiment per figure and table
// of the paper's evaluation (Section VI plus the motivation and
// characterization figures). Each experiment regenerates the rows or
// series the paper reports — the same workloads, parameter sweeps,
// baselines and metrics — against this repository's NPU simulator, and
// returns text tables that cmd/premabench prints and bench_test.go wraps.
//
// # Execution engine
//
// Experiments execute through a concurrent engine (engine.go): every
// evaluation decomposes into independent simulation runs — (scheduler
// configuration x run index) pairs, or per-trial jobs for the
// characterization figures — which fan out over Suite.Workers goroutines
// (GOMAXPROCS by default). The engine is deterministic: each run draws
// its workload from workload.RNGFor(Suite.Seed, run) and constructs its
// own policy/selector instances, outcomes are written into
// index-addressed slices, and all reductions happen sequentially in
// (configuration, run) order after the fan-out joins — so parallel
// results are byte-identical to a sequential execution (Workers = 1),
// including float accumulation order and pooled task/preemption order.
// On the first error the engine stops claiming new runs and reports the
// lowest-indexed failure among the runs that executed (the identity of
// that error may vary with worker count; the byte-identical guarantee
// covers successful results).
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table is one regenerated figure panel or table.
type Table struct {
	// ID matches the DESIGN.md experiment index ("fig5a", "fig12", ...).
	ID string
	// Title describes what the paper's counterpart shows.
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Note carries the paper-reported headline for easy comparison.
	Note string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns. Width accounting and
// the separator both span the widest row, so a data row with more cells
// than Headers still renders aligned.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Suite is the shared experiment context: one NPU configuration, one
// workload generator (with its compiled-program cache and seq-length
// profiles), and the run-count/seed the evaluation uses.
type Suite struct {
	NPU   npu.Config
	Sched sched.Config
	Gen   *workload.Generator
	// Runs is the number of simulation runs averaged per configuration
	// (the paper uses 25).
	Runs int
	// Seed drives all workload randomness deterministically.
	Seed uint64
	// Workers bounds the engine's worker pool; 0 (the default) uses
	// GOMAXPROCS, 1 forces sequential execution. Results are identical
	// for every value (see the package comment).
	Workers int
	// Cache memoizes engine run outcomes across experiments (see
	// cache.go); nil disables caching. Cached and freshly simulated
	// results are bit-identical, so enabling the cache never changes
	// any table.
	Cache *RunCache
	// ProfileSeed is the seed the Gen's seq-length profile library was
	// built with; it versions the on-disk cache (diskcache.go) together
	// with the NPU configuration.
	ProfileSeed uint64

	// simulations counts simulateOne executions (cache misses plus
	// non-cacheable runs); read via Simulations.
	simulations int64

	// diskPath/diskFP are set by AttachDiskCache and consumed by
	// FlushDiskCache (see diskcache.go).
	diskPath string
	diskFP   string
}

// Simulations reports how many simulations the Suite has actually
// executed, excluding cache hits — the instrumentation the cache tests
// and throughput accounting build on.
func (s *Suite) Simulations() int64 {
	return atomic.LoadInt64(&s.simulations)
}

// NewSuite builds the default experiment suite.
func NewSuite() (*Suite, error) {
	return NewSuiteFor(npu.DefaultConfig(), sched.DefaultConfig(), nil, 0xA11CE)
}

// NewSuiteFor builds a suite against an explicit NPU configuration,
// scheduler configuration and profile seed. A non-nil gen must have
// been built with (cfg, profileSeed) and is shared (its program cache
// amortizes across suite and caller); nil constructs a fresh one.
func NewSuiteFor(cfg npu.Config, scfg sched.Config, gen *workload.Generator, profileSeed uint64) (*Suite, error) {
	if gen == nil {
		var err error
		gen, err = workload.NewGenerator(cfg, profileSeed)
		if err != nil {
			return nil, err
		}
	}
	return &Suite{
		NPU:         cfg,
		Sched:       scfg,
		Gen:         gen,
		Runs:        25,
		Seed:        0xBEEF,
		Cache:       NewRunCache(),
		ProfileSeed: profileSeed,
	}, nil
}

// SchedulerConfig identifies one evaluated scheduler configuration.
type SchedulerConfig struct {
	// Label is the figure legend name ("NP-FCFS", "Dynamic-PREMA", ...).
	Label string
	// Policy is the sched.ByName policy label.
	Policy string
	// Preemptive enables the preemption path.
	Preemptive bool
	// Selector is the sched.SelectorByName label (empty for NP-*).
	Selector string
}

// NP returns the non-preemptive configuration for a policy.
func NP(policy string) SchedulerConfig {
	return SchedulerConfig{Label: "NP-" + policy, Policy: policy}
}

// StaticCkpt returns the preemptive, always-CHECKPOINT configuration.
func StaticCkpt(policy string) SchedulerConfig {
	return SchedulerConfig{Label: "Static-" + policy, Policy: policy,
		Preemptive: true, Selector: "static-checkpoint"}
}

// StaticKill returns the preemptive, always-KILL configuration.
func StaticKill(policy string) SchedulerConfig {
	return SchedulerConfig{Label: "StaticKill-" + policy, Policy: policy,
		Preemptive: true, Selector: "static-kill"}
}

// DynamicCkpt returns the Algorithm 3 configuration with CHECKPOINT
// saving.
func DynamicCkpt(policy string) SchedulerConfig {
	return SchedulerConfig{Label: "Dynamic-" + policy, Policy: policy,
		Preemptive: true, Selector: "dynamic-checkpoint"}
}

// DynamicKill returns the Algorithm 3 configuration with KILL saving
// (Figure 15 sensitivity).
func DynamicKill(policy string) SchedulerConfig {
	return SchedulerConfig{Label: "DynamicKill-" + policy, Policy: policy,
		Preemptive: true, Selector: "dynamic-kill"}
}

// MultiResult aggregates a configuration's outcome across runs.
type MultiResult struct {
	Config SchedulerConfig
	Agg    metrics.Aggregate
	// Tasks pools every completed task of every run (for SLA and tail
	// statistics across the whole experiment).
	Tasks []*sched.Task
	// Preemptions pools every preemption event.
	Preemptions []sim.PreemptionEvent
}

// Experiment is a runnable evaluation entry.
type Experiment struct {
	// ID is the registry key ("fig11").
	ID string
	// Title describes the experiment.
	Title string
	// Run regenerates the experiment's tables.
	Run func(s *Suite) ([]*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns one registered experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return e, nil
}

// IDs lists the registered experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns the registered experiments in ID order.
func All() []Experiment {
	var out []Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
