package exp

import (
	"os"
	"testing"

	"repro/internal/workload"
)

// diskSuite builds a fast suite with a disk cache attached to dir.
func diskSuite(t *testing.T, dir string) *Suite {
	t.Helper()
	s := fastSuite(t)
	s.Runs = 3
	if err := s.AttachDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiskCacheWarmRunIsByteIdentical is the persistence contract: a
// second suite attached to the same directory answers every engine run
// from disk — zero simulations — and reproduces bit-identical results.
func TestDiskCacheWarmRunIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Spec{Tasks: 4}
	cfgs := []SchedulerConfig{NP("FCFS"), DynamicCkpt("PREMA"), StaticKill("SJF")}

	cold := diskSuite(t, dir)
	first, err := cold.RunConfigs(cfgs, spec, cold.Runs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Simulations() == 0 {
		t.Fatal("cold run did not simulate")
	}
	if err := cold.FlushDiskCache(); err != nil {
		t.Fatal(err)
	}

	warm := diskSuite(t, dir)
	second, err := warm.RunConfigs(cfgs, spec, warm.Runs)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Simulations(); got != 0 {
		t.Errorf("warm run simulated %d times; every run should come from disk", got)
	}
	for i := range first {
		if fingerprint(first[i]) != fingerprint(second[i]) {
			t.Errorf("%s: warm result diverges from cold", cfgs[i].Label)
		}
	}
}

// TestDiskCacheIgnoresCorruptAndMismatched proves the fail-open policy:
// garbage bytes and fingerprint mismatches both start cold instead of
// erroring or poisoning results.
func TestDiskCacheIgnoresCorruptAndMismatched(t *testing.T) {
	dir := t.TempDir()
	spec := workload.Spec{Tasks: 3}

	s := diskSuite(t, dir)
	if _, err := s.RunMulti(NP("FCFS"), spec, s.Runs); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushDiskCache(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the file in place: the warm suite must start cold.
	if err := os.WriteFile(s.diskPath, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := diskSuite(t, dir)
	if _, err := corrupt.RunMulti(NP("FCFS"), spec, corrupt.Runs); err != nil {
		t.Fatal(err)
	}
	if corrupt.Simulations() == 0 {
		t.Error("corrupt cache file was not ignored")
	}

	// A different NPU configuration maps to a different file; the
	// fingerprint partition keeps it cold and leaves the original file
	// alone.
	other := fastSuite(t)
	other.Runs = 3
	other.NPU.SW = 64
	other.NPU.SH = 64
	gen, err := workload.NewGenerator(other.NPU, other.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	other.Gen = gen
	if err := other.AttachDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	if other.diskPath == s.diskPath {
		t.Error("different NPU configurations share a cache file")
	}
	if _, err := other.RunMulti(NP("FCFS"), spec, other.Runs); err != nil {
		t.Fatal(err)
	}
	if other.Simulations() == 0 {
		t.Error("mismatched configuration was answered from another configuration's cache")
	}
}

// TestDiskCacheRequiresCache pins the attach precondition.
func TestDiskCacheRequiresCache(t *testing.T) {
	s := fastSuite(t)
	s.Cache = nil
	if err := s.AttachDiskCache(t.TempDir()); err == nil {
		t.Error("attaching a disk cache to a cacheless suite should error")
	}
	// Flush without attach is a no-op.
	s2 := fastSuite(t)
	if err := s2.FlushDiskCache(); err != nil {
		t.Error("flush without attach should be a no-op:", err)
	}
}
