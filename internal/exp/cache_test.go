package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestCacheHitsSkipResimulation proves the cache's core property: across
// repeated and overlapping RunConfigs calls, each (configuration, run)
// pair is simulated exactly once — Suite.Simulations counts simulateOne
// executions, which cache hits bypass.
func TestCacheHitsSkipResimulation(t *testing.T) {
	s := fastSuite(t)
	spec := workload.Spec{Tasks: 4}
	const runs = 3
	cfgs := []SchedulerConfig{NP("FCFS"), DynamicCkpt("PREMA")}

	first, err := s.RunConfigs(cfgs, spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(len(cfgs)*runs); got != want {
		t.Fatalf("cold pass simulated %d runs, want %d", got, want)
	}

	// An overlapping call: NP-FCFS is shared, Static-PREMA is new. Only
	// the new configuration's runs may simulate.
	if _, err := s.RunConfigs([]SchedulerConfig{NP("FCFS"), StaticCkpt("PREMA")}, spec, runs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(3*runs); got != want {
		t.Errorf("overlapping pass brought simulations to %d, want %d (only the new config)", got, want)
	}

	// An identical repeat simulates nothing and reproduces bit-identical
	// results (same outcomes, hence same fingerprints).
	second, err := s.RunConfigs(cfgs, spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(3*runs); got != want {
		t.Errorf("repeated pass simulated %d extra runs, want 0", got-want)
	}
	for i := range first {
		if fingerprint(first[i]) != fingerprint(second[i]) {
			t.Errorf("%s: cached result diverges from the original", cfgs[i].Label)
		}
	}

	stats := s.Cache.Stats()
	if stats.Entries != int64(3*runs) {
		t.Errorf("cache holds %d entries, want %d", stats.Entries, 3*runs)
	}
	if want := int64(3 * runs); stats.Hits != want {
		t.Errorf("cache counted %d hits, want %d (runs shared by the 2nd and 3rd calls)", stats.Hits, want)
	}
	if stats.Misses != stats.Entries {
		t.Errorf("cache counted %d misses for %d entries", stats.Misses, stats.Entries)
	}
}

// TestCacheIgnoresLabels verifies the key excludes the display label: two
// experiments naming the same (policy, selector, preemptive) tuple
// differently — e.g. killgranularity's "P-PREMA/static-checkpoint" vs
// fig12's "Static-PREMA" — share entries.
func TestCacheIgnoresLabels(t *testing.T) {
	s := fastSuite(t)
	spec := workload.Spec{Tasks: 4}
	const runs = 2
	a := StaticCkpt("PREMA") // label "Static-PREMA"
	b := SchedulerConfig{Label: "P-PREMA/static-checkpoint", Policy: "PREMA",
		Preemptive: true, Selector: "static-checkpoint"}
	if _, err := s.RunConfigs([]SchedulerConfig{a}, spec, runs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunConfigs([]SchedulerConfig{b}, spec, runs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(runs); got != want {
		t.Errorf("relabelled configuration re-simulated: %d runs, want %d", got, want)
	}
}

// TestCacheSpecCanonicalization verifies that a spec spelled with
// explicit defaults shares entries with the shorthand spec, and that
// genuinely different specs or scheduler configs do not.
func TestCacheSpecCanonicalization(t *testing.T) {
	s := fastSuite(t)
	const runs = 2
	cfg := []SchedulerConfig{NP("FCFS")}
	if _, err := s.RunConfigs(cfg, workload.Spec{Tasks: 4}, runs); err != nil {
		t.Fatal(err)
	}
	explicit := workload.Spec{
		Tasks:         4,
		Models:        dnn.Suite(),
		BatchSizes:    append([]int(nil), dnn.BatchSizes...),
		ArrivalWindow: 20 * time.Millisecond,
	}
	if _, err := s.RunConfigs(cfg, explicit, runs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(runs); got != want {
		t.Errorf("explicitly-defaulted spec re-simulated: %d runs, want %d", got, want)
	}
	// A different batch pool is a different workload.
	if _, err := s.RunConfigs(cfg, workload.Spec{Tasks: 4, BatchSizes: []int{1}}, runs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(2*runs); got != want {
		t.Errorf("distinct spec hit the cache: %d simulations, want %d", got, want)
	}
	// A perturbed scheduler config is a different simulation.
	scfg := s.Sched
	scfg.Quantum = time.Millisecond
	if _, err := s.RunConfigsSched(cfg, scfg, workload.Spec{Tasks: 4}, runs); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Simulations(), int64(3*runs); got != want {
		t.Errorf("distinct sched config hit the cache: %d simulations, want %d", got, want)
	}
}

// opaqueEstimator is a custom estimator the cache cannot fingerprint.
type opaqueEstimator struct{}

func (opaqueEstimator) Estimate(m *dnn.Model, batch, inLen int) (int64, error) {
	return 1 << 20, nil
}

// TestCacheEstimatorIdentity verifies the estimator rules: nil/analytic
// and Oracle estimators cache (as distinct keys); an opaque custom
// estimator bypasses the cache entirely.
func TestCacheEstimatorIdentity(t *testing.T) {
	s := fastSuite(t)
	const runs = 2
	cfg := []SchedulerConfig{NP("FCFS")}
	analytic := workload.Spec{Tasks: 4}
	oracle := workload.Spec{Tasks: 4, Estimator: workload.Oracle()}
	for _, spec := range []workload.Spec{analytic, oracle} {
		for pass := 0; pass < 2; pass++ {
			if _, err := s.RunConfigs(cfg, spec, runs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := s.Simulations(), int64(2*runs); got != want {
		t.Errorf("analytic+oracle specs simulated %d runs, want %d (each cached once, distinct keys)", got, want)
	}

	opaque := workload.Spec{Tasks: 4, Estimator: opaqueEstimator{}}
	entriesBefore := s.Cache.Stats().Entries
	for pass := 0; pass < 2; pass++ {
		if _, err := s.RunConfigs(cfg, opaque, runs); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Simulations(), int64(4*runs); got != want {
		t.Errorf("opaque-estimator spec should bypass the cache: %d simulations, want %d", got, want)
	}
	if got := s.Cache.Stats().Entries; got != entriesBefore {
		t.Errorf("opaque-estimator runs were stored: %d entries, want %d", got, entriesBefore)
	}
}

// TestCacheByteIdenticalFullSuite is the tentpole's determinism proof at
// full scope: every registered experiment, run twice through one
// cache-enabled Suite, renders byte-identical tables to a cache-disabled
// Suite — the cache only removes redundant simulation, never changes a
// cell.
func TestCacheByteIdenticalFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	render := func(t *testing.T, s *Suite) string {
		t.Helper()
		var b strings.Builder
		for _, e := range All() {
			tables, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for _, tbl := range tables {
				b.WriteString(tbl.String())
				b.WriteString(tbl.CSV())
			}
		}
		return b.String()
	}
	newSuite := func(cached bool) *Suite {
		s, err := NewSuite()
		if err != nil {
			t.Fatal(err)
		}
		s.Runs = 2
		if !cached {
			s.Cache = nil
		}
		return s
	}

	cold := newSuite(false)
	want := render(t, cold)

	cached := newSuite(true)
	if got := render(t, cached); got != want {
		t.Error("cache-enabled sweep diverges from cache-disabled sweep")
	}
	stats := cached.Cache.Stats()
	if stats.Hits == 0 {
		t.Error("full sweep produced no cache hits; the overlapping baselines should share runs")
	}
	// Second sweep over the same Suite: engine-routed experiments are
	// answered entirely from the cache and the output must not move.
	simsAfterFirst := cached.Simulations()
	if got := render(t, cached); got != want {
		t.Error("second cached sweep diverges from cache-disabled sweep")
	}
	if got := cached.Simulations(); got != simsAfterFirst {
		t.Errorf("second sweep re-simulated %d engine runs; all should be cache hits", got-simsAfterFirst)
	}
	if cold.Simulations() <= cached.Simulations() {
		t.Errorf("cache saved nothing: cold %d vs cached %d simulations over two sweeps",
			cold.Simulations(), cached.Simulations())
	}
}

// sanity-check the fingerprint helpers directly.
func TestFingerprintHelpers(t *testing.T) {
	a := schedFingerprint(sched.DefaultConfig())
	b := schedFingerprint(sched.DefaultConfig())
	if a != b {
		t.Errorf("sched fingerprint unstable: %q vs %q", a, b)
	}
	perturbed := sched.DefaultConfig()
	perturbed.TokenThresholdLevels = []float64{1, 2, 4}
	if schedFingerprint(perturbed) == a {
		t.Error("sched fingerprint ignores threshold levels")
	}
	fp1, ok1 := specFingerprint(workload.Spec{Tasks: 8})
	fp2, ok2 := specFingerprint(workload.Spec{Tasks: 8, ArrivalWindow: 20 * time.Millisecond})
	if !ok1 || !ok2 || fp1 != fp2 {
		t.Errorf("default window should canonicalize: %q vs %q", fp1, fp2)
	}
	if _, ok := specFingerprint(workload.Spec{Tasks: 8, Estimator: opaqueEstimator{}}); ok {
		t.Error("opaque estimator must not fingerprint")
	}
	if fpO, ok := specFingerprint(workload.Spec{Tasks: 8, Estimator: workload.Oracle()}); !ok || fpO == fp1 {
		t.Error("oracle estimator must fingerprint distinctly from analytic")
	}
}
