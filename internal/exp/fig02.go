package exp

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Scheduling timelines of the motivating three-task scenario (Figure 2)",
		Run:   runFig2,
	})
}

// runFig2 regenerates Figure 2 from live simulations: three inference
// tasks — a long low-priority I1, a short low-priority I2, and a
// high-priority I3 arriving last — scheduled under (a) NP-FCFS,
// (b) NP-HPF, (c) P-HPF with CHECKPOINT, and (d) PREMA with Algorithm 3.
// The table reports each task's turnaround; the rendered timelines are
// attached in the Note for visual comparison with the paper's figure.
func runFig2(s *Suite) ([]*Table, error) {
	build := func() ([]*workload.Task, error) {
		rng := workload.RNGFor(s.Seed^0xF02, 1)
		// I1: long, low priority, arrives first.
		i1, err := s.Gen.InstanceByName(1, "CNN-VN", 16, sched.Low, 0, rng)
		if err != nil {
			return nil, err
		}
		// I2: short, low priority, arrives while I1 runs.
		i2, err := s.Gen.InstanceByName(2, "CNN-GN", 1, sched.Low,
			s.NPU.Cycles(3*time.Millisecond), rng)
		if err != nil {
			return nil, err
		}
		// I3: high priority, arrives last.
		i3, err := s.Gen.InstanceByName(3, "CNN-AN", 1, sched.High,
			s.NPU.Cycles(6*time.Millisecond), rng)
		if err != nil {
			return nil, err
		}
		return []*workload.Task{i1, i2, i3}, nil
	}

	configs := []struct {
		label      string
		policy     string
		preemptive bool
		selector   string
	}{
		{"(a) NP-FCFS", "FCFS", false, ""},
		{"(b) NP-HPF", "HPF", false, ""},
		{"(c) P-HPF", "HPF", true, "static-checkpoint"},
		{"(d) P-PREMA", "PREMA", true, "dynamic"},
	}

	t := &Table{
		ID:    "fig2",
		Title: "Turnaround (ms) of I1 (long, low) / I2 (short, low) / I3 (high)",
		Headers: []string{"scheduler", "I1 (ms)", "I2 (ms)", "I3 (ms)",
			"I3 NTT", "avg NTT"},
		Note: "(c) cuts I3's latency via preemption; (d) additionally slips the short I2 in early",
	}
	var timelines string
	for _, c := range configs {
		tasks, err := build()
		if err != nil {
			return nil, err
		}
		policy, err := sched.ByName(c.policy, s.Sched)
		if err != nil {
			return nil, err
		}
		var sel sched.MechanismSelector
		if c.selector != "" {
			if sel, err = sched.SelectorByName(c.selector); err != nil {
				return nil, err
			}
		}
		simulator, err := sim.New(sim.Options{
			NPU: s.NPU, Sched: s.Sched, Policy: policy,
			Preemptive: c.preemptive, Selector: sel,
		}, workload.SchedTasks(tasks))
		if err != nil {
			return nil, err
		}
		res, err := simulator.Run()
		if err != nil {
			return nil, err
		}
		byID := map[int]*sched.Task{}
		var avgNTT float64
		for _, task := range res.Tasks {
			byID[task.ID] = task
			avgNTT += task.NTT() / float64(len(res.Tasks))
		}
		t.AddRow(c.label,
			fmt.Sprintf("%.2f", s.NPU.Millis(byID[1].Turnaround())),
			fmt.Sprintf("%.2f", s.NPU.Millis(byID[2].Turnaround())),
			fmt.Sprintf("%.2f", s.NPU.Millis(byID[3].Turnaround())),
			fmt.Sprintf("%.2f", byID[3].NTT()),
			fmt.Sprintf("%.2f", avgNTT))
		timelines += c.label + "\n" + res.Timeline.Render(s.NPU, 80) + "\n"
	}
	t.Note += "\n" + timelines
	return []*Table{t}, nil
}
