package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// fastSuite returns a suite with a reduced run count so the integration
// tests stay quick while preserving the qualitative outcomes.
func fastSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	s.Runs = 6
	return s
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Headers: []string{"a", "b"},
		Note:    "note",
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("longer", "cell,with\"comma")
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer") || !strings.Contains(s, "paper: note") {
		t.Errorf("table render incomplete:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"cell,with""comma"`) {
		t.Errorf("CSV escaping wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestRegistryCompleteness(t *testing.T) {
	// Every evaluation figure/table of the paper must have an entry.
	want := []string{
		"fig1", "fig2", "fig5", "fig6", "fig7", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15",
		"accuracy", "predictors", "oracle", "sensitivity",
		"threshold", "overhead", "determinism",
		"cluster", "killgranularity", "energy", "loadcurve", "spill", "batching",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %s not registered", w)
		}
	}
	if _, err := ByID("fig11"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(All()) != len(ids) {
		t.Error("All() inconsistent with IDs()")
	}
}

func TestSchedulerConfigConstructors(t *testing.T) {
	if NP("FCFS").Label != "NP-FCFS" || NP("FCFS").Preemptive {
		t.Error("NP constructor wrong")
	}
	if c := StaticCkpt("SJF"); c.Label != "Static-SJF" || !c.Preemptive || c.Selector != "static-checkpoint" {
		t.Error("StaticCkpt constructor wrong")
	}
	if c := DynamicCkpt("PREMA"); c.Selector != "dynamic-checkpoint" {
		t.Error("DynamicCkpt constructor wrong")
	}
	if c := StaticKill("HPF"); c.Selector != "static-kill" {
		t.Error("StaticKill constructor wrong")
	}
	if c := DynamicKill("HPF"); c.Selector != "dynamic-kill" {
		t.Error("DynamicKill constructor wrong")
	}
}

func TestRunMultiComparesIdenticalWorkloads(t *testing.T) {
	s := fastSuite(t)
	a, err := s.RunMulti(NP("FCFS"), workload.Spec{Tasks: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunMulti(NP("FCFS"), workload.Spec{Tasks: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg.ANTT != b.Agg.ANTT || a.Agg.STP != b.Agg.STP {
		t.Error("repeated identical configuration should reproduce exactly")
	}
	if len(a.Tasks) != 8 {
		t.Errorf("pooled %d tasks, want 2 runs x 4", len(a.Tasks))
	}
}

// parse pulls a float out of a formatted cell like "7.81x" or "12.3".
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "%")
	cell = strings.TrimSuffix(cell, "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v
}

func TestFig11Shape(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig11(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	row := map[string][]string{}
	for _, r := range tbl.Rows {
		row[r[0]] = r
	}
	// SJF must deliver the best ANTT improvement among non-preemptive
	// policies, PREMA close behind, both clearly above FCFS.
	sjf := parse(t, row["NP-SJF"][4])
	prema := parse(t, row["NP-PREMA"][4])
	fcfs := parse(t, row["NP-FCFS"][4])
	if !(sjf > prema*0.9 && prema > 1.2 && fcfs == 1.0) {
		t.Errorf("fig11 ANTT ordering off: SJF %.2f PREMA %.2f FCFS %.2f", sjf, prema, fcfs)
	}
	// PREMA should reach a large fraction of SJF's ANTT improvement
	// (the paper reports 92%).
	if prema/sjf < 0.6 {
		t.Errorf("PREMA at %.0f%% of SJF's ANTT, paper reports ~92%%", prema/sjf*100)
	}
	// And PREMA should beat SJF on fairness.
	if parse(t, row["NP-PREMA"][5]) <= parse(t, row["NP-SJF"][5])*0.8 {
		t.Errorf("PREMA fairness should be competitive with or better than SJF")
	}
}

func TestFig12Headline(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig12(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	row := map[string][]string{}
	for _, r := range tbl.Rows {
		row[r[0]] = r
	}
	dynPREMA := row["Dynamic-PREMA"]
	if dynPREMA == nil {
		t.Fatal("Dynamic-PREMA row missing")
	}
	antt := parse(t, dynPREMA[4])
	fair := parse(t, dynPREMA[5])
	stp := parse(t, dynPREMA[6])
	// Paper: 7.8x / 19.6x / 1.4x. The reproduction must show the same
	// direction and rough magnitude.
	if antt < 3 {
		t.Errorf("Dynamic-PREMA ANTT improvement %.2fx too low (paper ~7.8x)", antt)
	}
	if fair < 3 {
		t.Errorf("Dynamic-PREMA fairness improvement %.2fx too low (paper ~19.6x)", fair)
	}
	if stp < 1.15 {
		t.Errorf("Dynamic-PREMA STP improvement %.2fx too low (paper ~1.4x)", stp)
	}
	// Dynamic must beat static for PREMA on ANTT (Algorithm 3's point).
	if sa := parse(t, row["Static-PREMA"][4]); antt <= sa*0.95 {
		t.Errorf("dynamic (%.2fx) should outperform static (%.2fx) for PREMA", antt, sa)
	}
}

func TestFig13Monotone(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig13(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Violation rates must decrease monotonically as targets loosen,
	// for every policy column.
	for col := 1; col < len(tbl.Headers); col++ {
		prev := 101.0
		for _, r := range tbl.Rows {
			v := parse(t, r[col])
			if v > prev+1e-9 {
				t.Errorf("%s: violation rate rose from %.1f to %.1f", tbl.Headers[col], prev, v)
			}
			prev = v
		}
	}
	// PREMA with dynamic preemption must beat NP-FCFS at the tight end.
	first := tbl.Rows[1] // target N=4
	fcfs := parse(t, first[1])
	prema := parse(t, first[len(first)-1])
	if prema >= fcfs {
		t.Errorf("Dynamic-PREMA SLA violations (%.1f%%) should undercut NP-FCFS (%.1f%%)", prema, fcfs)
	}
}

func TestFig5MechanismCharacteristics(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig5(s)
	if err != nil {
		t.Fatal(err)
	}
	lat, wait := tables[0], tables[1]
	avgLat := lat.Rows[len(lat.Rows)-1]
	avgWait := wait.Rows[len(wait.Rows)-1]
	kill, ckpt, drain := parse(t, avgLat[2]), parse(t, avgLat[3]), parse(t, avgLat[4])
	if kill != 0 || drain != 0 {
		t.Errorf("KILL/DRAIN preemption latency must be zero, got %v/%v", kill, drain)
	}
	if ckpt < 1 || ckpt > 80 {
		t.Errorf("CHECKPOINT latency %.1fus outside the paper's microseconds regime", ckpt)
	}
	wKill, wCkpt, wDrain := parse(t, avgWait[2]), parse(t, avgWait[3]), parse(t, avgWait[4])
	if wDrain < 10*wCkpt {
		t.Errorf("DRAIN wait (%.0fus) should dwarf CHECKPOINT wait (%.0fus)", wDrain, wCkpt)
	}
	if wKill > wCkpt {
		t.Errorf("KILL wait (%.0f) should not exceed CHECKPOINT wait (%.0f)", wKill, wCkpt)
	}
	if wDrain < 1000 {
		t.Errorf("DRAIN wait %.0fus; paper reports ~5.3ms average", wDrain)
	}
}

func TestAccuracyHeadline(t *testing.T) {
	s := fastSuite(t)
	tables, err := runAccuracy(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "Overall" {
		t.Fatal("missing overall row")
	}
	overallErr := parse(t, last[1])
	if overallErr > 6 {
		t.Errorf("overall prediction error %.2f%%, paper reports ~1.6%%", overallErr)
	}
	corr := parse(t, last[5])
	if corr < 0.95 {
		t.Errorf("prediction correlation %.3f below the paper's ~0.98", corr)
	}
}

func TestFig1Direction(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig1(s)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Fig1Headline(tables[0])
	if err != nil {
		t.Fatal(err)
	}
	if sum.ThroughputGain <= 1.0 {
		t.Errorf("co-location should raise throughput, got %.2fx", sum.ThroughputGain)
	}
	if sum.LatencyCost <= 1.0 {
		t.Errorf("co-location should cost latency, got %.2fx", sum.LatencyCost)
	}
}
