package exp

// cache.go is the cross-experiment simulation-result cache. The figure
// harnesses overlap heavily: a full premabench run re-simulates the
// identical NP-FCFS @ {Tasks:8, seed} baseline for fig11, fig12, fig15,
// oracle, killgranularity, threshold and the sensitivity default case,
// and every Static-*/Dynamic-* configuration is duplicated between fig12
// and fig15 — each multiplied by the paper's 25-runs-per-configuration
// protocol. The cache keys each engine run by everything that determines
// its outcome and lets overlapping sweeps share results.
//
// A run's outcome is a pure function of (policy, selector, preemptive,
// scheduler configuration, workload spec, seed, run index) for a fixed
// Suite: the workload is regenerated from workload.RNGFor(seed, run) and
// the simulator is deterministic. The Suite's generator (NPU config and
// profile seed) is deliberately NOT part of the key — the cache lives on
// the Suite and never outlives it.
//
// Cached outcomes are immutable by contract: consumers only aggregate
// (metrics averaging, task pooling, SLA/tail statistics), so the same
// runOutcome — including its task and preemption slices — may be handed
// to any number of experiments. Nothing in internal/exp mutates a
// completed task.
//
// Specs are canonicalized before fingerprinting (empty model/batch pools
// and a zero arrival window resolve to the same defaults workload.Generate
// applies), so Spec{Tasks: 8} and its fully spelled-out equivalent share
// entries. Only the identity of the nil/analytic and Oracle estimators
// can be fingerprinted; a custom Estimator implementation is opaque and
// bypasses the cache entirely.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dnn"
	"repro/internal/sched"
	"repro/internal/workload"
)

// runKey identifies one cacheable simulation run.
type runKey struct {
	policy     string
	selector   string
	preemptive bool
	// schedFP is the canonical sched.Config fingerprint (quantum and
	// exact token-threshold level bits).
	schedFP string
	// specFP is the canonical workload.Spec fingerprint.
	specFP string
	seed   uint64
	run    int
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts cacheable lookups that had to simulate.
	Misses int64
	// Entries is the number of stored outcomes.
	Entries int64
}

// RunCache memoizes engine run outcomes across experiments. It is safe
// for concurrent use by the engine's worker pool; stored outcomes are
// immutable by contract (see the file comment).
type RunCache struct {
	mu      sync.Mutex
	entries map[runKey]runOutcome
	hits    int64
	misses  int64
}

// NewRunCache builds an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[runKey]runOutcome)}
}

// Stats snapshots the hit/miss counters and entry count.
func (c *RunCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: int64(len(c.entries))}
}

// lookup returns the cached outcome for a key, counting the access as a
// hit or miss.
func (c *RunCache) lookup(k runKey) (runOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return o, ok
}

// store records a run outcome. A racing duplicate (two workers simulating
// the same key concurrently) keeps the first entry; both outcomes are
// identical by the engine's determinism contract.
func (c *RunCache) store(k runKey, o runOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; !dup {
		c.entries[k] = o
	}
}

// schedFingerprint canonicalizes a scheduler configuration: the quantum in
// nanoseconds and the exact bit patterns of the token-threshold levels.
func schedFingerprint(c sched.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "q=%d;levels=", int64(c.Quantum))
	for i, l := range c.TokenThresholdLevels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(l, 'x', -1, 64))
	}
	return b.String()
}

// specFingerprint canonicalizes a workload spec. The empty model pool,
// empty batch pool and zero arrival window resolve to the same defaults
// workload.Generate applies, so equivalent specs share cache entries.
// Reports false for specs that cannot be fingerprinted (an opaque custom
// estimator), which bypass the cache.
func specFingerprint(spec workload.Spec) (string, bool) {
	var est string
	switch {
	case spec.Estimator == nil:
		est = "analytic"
	case spec.Estimator == workload.Oracle():
		est = "oracle"
	default:
		// A custom estimator may opt into caching by identifying
		// itself; by the estimator contract (pure, one estimator per
		// registered name) the key pins its behaviour.
		ck, ok := spec.Estimator.(interface{ CacheKey() string })
		if !ok {
			return "", false
		}
		est = "custom:" + ck.CacheKey()
	}
	models := spec.Models
	if len(models) == 0 {
		models = dnn.Suite()
	}
	batches := spec.BatchSizes
	if len(batches) == 0 {
		batches = dnn.BatchSizes
	}
	window := spec.ArrivalWindow
	if window <= 0 {
		window = 20 * time.Millisecond
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tasks=%d;window=%d;prio=%d;est=%s;models=",
		spec.Tasks, int64(window), int(spec.FixedPriority), est)
	for i, m := range models {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(m.Name)
	}
	b.WriteString(";batches=")
	for i, bs := range batches {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", bs)
	}
	return b.String(), true
}

// cacheKey derives the cache key for one engine run. Reports false when
// the run is not cacheable: the Suite has no cache, or the spec carries an
// opaque estimator. The configuration's Label is deliberately excluded —
// two experiments labelling the same (policy, selector, preemptive) tuple
// differently still share entries.
func (s *Suite) cacheKey(cfg SchedulerConfig, scfg sched.Config, spec workload.Spec, run int) (runKey, bool) {
	if s.Cache == nil {
		return runKey{}, false
	}
	specFP, ok := specFingerprint(spec)
	if !ok {
		return runKey{}, false
	}
	return runKey{
		policy:     cfg.Policy,
		selector:   cfg.Selector,
		preemptive: cfg.Preemptive,
		schedFP:    schedFingerprint(scfg),
		specFP:     specFP,
		seed:       s.Seed,
		run:        run,
	}, true
}
