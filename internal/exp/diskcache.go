package exp

// diskcache.go persists the simulation-result cache across process
// lifetimes (the ROADMAP's on-disk persistence item): repeated premabench
// invocations share warm results the same way overlapping experiments
// share them within one process. The design constraints:
//
//   - Versioned: a cache file binds to a fingerprint of everything the
//     runKey does NOT capture — the disk format version, the NPU
//     configuration, and the generator's profile seed. A file whose
//     fingerprint mismatches is ignored wholesale; stale results can
//     never leak across configuration changes.
//   - Fail-open: a missing, truncated, corrupt or concurrently rewritten
//     file is ignored (the run starts cold); persistence can slow a run
//     down, never poison it.
//   - Byte-identical: a warm run renders exactly the bytes a cold run
//     renders. Outcomes round-trip through an explicit snapshot encoding
//     (exact float bits via gob) of every field experiment reductions
//     consume.
//
// Reconstructed tasks carry no execution cursor (Exec is nil): cached
// outcomes are only ever aggregated (metrics averaging, task pooling,
// SLA/tail statistics), and no engine-cache consumer walks a completed
// task's program. Experiments that do need programs (the energy model)
// simulate outside the engine cache by construction.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
)

// diskFormatVersion invalidates every persisted cache when the snapshot
// schema or the outcome semantics change.
const diskFormatVersion = 1

// suiteFingerprint canonicalizes the suite-level cache version: format,
// NPU configuration (all scalar fields) and profile seed. Scheduler
// configuration and workload spec are per-entry (inside runKey) and so
// deliberately absent.
func suiteFingerprint(cfg npu.Config, profileSeed uint64) string {
	return fmt.Sprintf("v%d|npu=%#v|profile=%d", diskFormatVersion, cfg, profileSeed)
}

// diskKey mirrors runKey with exported fields for gob.
type diskKey struct {
	Policy     string
	Selector   string
	Preemptive bool
	SchedFP    string
	SpecFP     string
	Seed       uint64
	Run        int
}

// diskTask snapshots the completed-task fields experiment reductions
// consume. State is implicitly Finished; the execution cursor is not
// persisted (see the file comment).
type diskTask struct {
	ID       int
	Model    string
	Batch    int
	Priority sched.Priority

	Arrival         int64
	EstimatedCycles int64
	IsolatedCycles  int64

	Token  float64
	Waited int64

	Start         int64
	LastScheduled int64
	Completion    int64

	Preemptions      int
	CheckpointCycles int64
	WastedCycles     int64
	SavedBytes       int64
	PendingOverhead  int64
}

// diskOutcome snapshots one runOutcome.
type diskOutcome struct {
	Metrics     metrics.Run
	Tasks       []diskTask
	Preemptions []sim.PreemptionEvent
}

// diskFile is the persisted cache image.
type diskFile struct {
	Fingerprint string
	Entries     map[diskKey]diskOutcome
}

func snapshotTask(t *sched.Task) diskTask {
	return diskTask{
		ID: t.ID, Model: t.Model, Batch: t.Batch, Priority: t.Priority,
		Arrival: t.Arrival, EstimatedCycles: t.EstimatedCycles,
		IsolatedCycles: t.IsolatedCycles,
		Token:          t.Token, Waited: t.Waited,
		Start: t.Start, LastScheduled: t.LastScheduled, Completion: t.Completion,
		Preemptions:      t.Preemptions,
		CheckpointCycles: t.CheckpointCycles, WastedCycles: t.WastedCycles,
		SavedBytes: t.SavedBytes, PendingOverhead: t.PendingOverhead,
	}
}

func restoreTask(d diskTask) *sched.Task {
	return &sched.Task{
		ID: d.ID, Model: d.Model, Batch: d.Batch, Priority: d.Priority,
		Arrival: d.Arrival, EstimatedCycles: d.EstimatedCycles,
		IsolatedCycles: d.IsolatedCycles,
		Token:          d.Token, Waited: d.Waited,
		State: sched.Finished,
		Start: d.Start, LastScheduled: d.LastScheduled, Completion: d.Completion,
		Preemptions:      d.Preemptions,
		CheckpointCycles: d.CheckpointCycles, WastedCycles: d.WastedCycles,
		SavedBytes: d.SavedBytes, PendingOverhead: d.PendingOverhead,
	}
}

func snapshotOutcome(o runOutcome) diskOutcome {
	d := diskOutcome{Metrics: o.metrics, Preemptions: o.preemptions}
	d.Tasks = make([]diskTask, len(o.tasks))
	for i, t := range o.tasks {
		d.Tasks[i] = snapshotTask(t)
	}
	return d
}

func restoreOutcome(d diskOutcome) runOutcome {
	o := runOutcome{metrics: d.Metrics, preemptions: d.Preemptions}
	o.tasks = make([]*sched.Task, len(d.Tasks))
	for i, t := range d.Tasks {
		o.tasks[i] = restoreTask(t)
	}
	return o
}

func toDiskKey(k runKey) diskKey {
	return diskKey{Policy: k.policy, Selector: k.selector, Preemptive: k.preemptive,
		SchedFP: k.schedFP, SpecFP: k.specFP, Seed: k.seed, Run: k.run}
}

func fromDiskKey(k diskKey) runKey {
	return runKey{policy: k.Policy, selector: k.Selector, preemptive: k.Preemptive,
		schedFP: k.SchedFP, specFP: k.SpecFP, seed: k.Seed, run: k.Run}
}

// diskCachePath is the cache file location for a suite fingerprint: one
// file per fingerprint, so configuration changes warm separate files
// instead of invalidating each other.
func diskCachePath(dir, fingerprint string) string {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= 1099511628211
	}
	return filepath.Join(dir, fmt.Sprintf("prema-cache-%016x.gob", h))
}

// AttachDiskCache loads persisted outcomes for this suite's fingerprint
// from dir into the suite's cache and remembers where FlushDiskCache
// should write back. The suite must have a cache (Cache != nil). Loading
// is fail-open: unreadable, corrupt or fingerprint-mismatched files are
// ignored and the run starts cold.
func (s *Suite) AttachDiskCache(dir string) error {
	if s.Cache == nil {
		return fmt.Errorf("exp: AttachDiskCache on a cacheless suite")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fp := suiteFingerprint(s.NPU, s.ProfileSeed)
	s.diskPath = diskCachePath(dir, fp)
	s.diskFP = fp

	f, err := os.Open(s.diskPath)
	if err != nil {
		return nil // cold start
	}
	defer f.Close()
	var img diskFile
	if err := gob.NewDecoder(f).Decode(&img); err != nil {
		return nil // corrupt: ignore
	}
	if img.Fingerprint != fp {
		return nil // stale format or configuration: ignore
	}
	s.Cache.mu.Lock()
	for k, o := range img.Entries {
		key := fromDiskKey(k)
		if _, dup := s.Cache.entries[key]; !dup {
			s.Cache.entries[key] = restoreOutcome(o)
		}
	}
	s.Cache.mu.Unlock()
	return nil
}

// FlushDiskCache writes the suite's cache back to the attached location
// (atomically, via rename). A suite without an attached disk cache is a
// no-op.
func (s *Suite) FlushDiskCache() error {
	if s.diskPath == "" || s.Cache == nil {
		return nil
	}
	img := diskFile{Fingerprint: s.diskFP, Entries: map[diskKey]diskOutcome{}}
	s.Cache.mu.Lock()
	for k, o := range s.Cache.entries {
		img.Entries[toDiskKey(k)] = snapshotOutcome(o)
	}
	s.Cache.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Dir(s.diskPath), ".prema-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(&img); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.diskPath)
}
