package exp

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "sensitivity",
		Title: "Sensitivity studies: batch size, contention, scheduler configuration (Section VI-E)",
		Run:   runSensitivity,
	})
	register(Experiment{
		ID:    "threshold",
		Title: "Ablation: token-threshold rounding (Algorithm 2 line 9)",
		Run:   runThresholdAblation,
	})
}

// sensitivityCase is one row of the Section VI-E sweep: Dynamic-PREMA vs
// NP-FCFS under a perturbed setting.
type sensitivityCase struct {
	label string
	spec  workload.Spec
	sched sched.Config
}

// runSensitivity regenerates the Section VI-E sweeps. The paper reports
// PREMA's improvements remain at least 6.7x/6.2x/1.4x in
// ANTT/fairness/STP across its sensitivity studies; we report the same
// improvements per perturbation.
func runSensitivity(s *Suite) ([]*Table, error) {
	base := sched.DefaultConfig()
	quantum := func(d time.Duration) sched.Config {
		c := base
		c.Quantum = d
		return c
	}
	cases := []sensitivityCase{
		{"default (mixed batch, 0.25ms quantum)", workload.Spec{Tasks: 8}, base},
		{"batch=1 only", workload.Spec{Tasks: 8, BatchSizes: []int{1}}, base},
		{"batch=4 only", workload.Spec{Tasks: 8, BatchSizes: []int{4}}, base},
		{"batch=16 only", workload.Spec{Tasks: 8, BatchSizes: []int{16}}, base},
		{"quantum=0.1ms", workload.Spec{Tasks: 8}, quantum(100 * time.Microsecond)},
		{"quantum=1ms", workload.Spec{Tasks: 8}, quantum(time.Millisecond)},
		{"quantum=4ms", workload.Spec{Tasks: 8}, quantum(4 * time.Millisecond)},
		{"arrival window=10ms (high contention)",
			workload.Spec{Tasks: 8, ArrivalWindow: 10 * time.Millisecond}, base},
		{"arrival window=40ms (low contention)",
			workload.Spec{Tasks: 8, ArrivalWindow: 40 * time.Millisecond}, base},
		{"4 co-located tasks", workload.Spec{Tasks: 4}, base},
		{"16 co-located tasks", workload.Spec{Tasks: 16}, base},
	}

	t := &Table{
		ID:      "sensitivity",
		Title:   "Dynamic-PREMA improvements over NP-FCFS under perturbed settings",
		Headers: []string{"setting", "ANTT imp.", "fairness imp.", "STP imp."},
		Note:    "the paper reports >=6.7x ANTT, >=6.2x fairness, >=1.4x STP across its sensitivity studies",
	}
	for _, c := range cases {
		// The perturbed scheduler configuration is passed explicitly so
		// the shared Suite is never mutated mid-sweep.
		results, err := s.RunConfigsSched(
			[]SchedulerConfig{NP("FCFS"), DynamicCkpt("PREMA")}, c.sched, c.spec, s.Runs)
		if err != nil {
			return nil, err
		}
		imp := metrics.Relative(results[1].Agg, results[0].Agg)
		t.AddRow(c.label,
			fmt.Sprintf("%.2fx", imp.ANTT),
			fmt.Sprintf("%.2fx", imp.Fairness),
			fmt.Sprintf("%.2fx", imp.STP))
	}
	return []*Table{t}, nil
}

// runThresholdAblation compares Algorithm 2's round-down-to-priority-level
// candidate threshold against two alternatives, justifying the design
// choice DESIGN.md calls out: an exact max-token threshold (only the
// largest holder is a candidate, collapsing PREMA into token-FCFS) and no
// threshold at all (every ready task is a candidate, collapsing PREMA
// into pure SJF and losing priority awareness).
func runThresholdAblation(s *Suite) ([]*Table, error) {
	spec := workload.Spec{Tasks: 8}
	baseRes, err := s.RunMulti(NP("FCFS"), spec, s.Runs)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		label  string
		levels []float64
	}{
		{"round down to {1,3,9} (paper)", []float64{1, 3, 9}},
		{"no rounding (exact max)", nil}, // nil -> threshold equals max token
		{"single level {1} (no threshold)", []float64{1}},
		{"levels {1,2,4,8,16}", []float64{1, 2, 4, 8, 16}},
	}
	t := &Table{
		ID:      "threshold",
		Title:   "Dynamic-PREMA under different candidate-threshold policies",
		Headers: []string{"threshold policy", "ANTT imp.", "fairness imp.", "STP imp."},
		Note:    "rounding down keeps the candidate group non-trivial, balancing latency and priority",
	}
	for _, c := range cases {
		cfg := s.Sched
		cfg.TokenThresholdLevels = c.levels
		results, err := s.RunConfigsSched([]SchedulerConfig{DynamicCkpt("PREMA")}, cfg, spec, s.Runs)
		if err != nil {
			return nil, err
		}
		imp := metrics.Relative(results[0].Agg, baseRes.Agg)
		t.AddRow(c.label,
			fmt.Sprintf("%.2fx", imp.ANTT),
			fmt.Sprintf("%.2fx", imp.Fairness),
			fmt.Sprintf("%.2fx", imp.STP))
	}
	return []*Table{t}, nil
}
