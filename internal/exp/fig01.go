package exp

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Co-locating GoogLeNet and ResNet on one NPU under NP-FCFS (motivation)",
		Run:   runFig1,
	})
}

// runFig1 regenerates the Figure 1 motivation experiment: two inference
// request streams — GoogLeNet and ResNet — each offered at a fraction of
// the model's saturated service rate. Executed in isolation the NPU idles
// between requests; co-locating both streams on one NPU under the
// baseline NP-FCFS scheduler raises aggregate throughput at the cost of
// queueing-induced latency, the trade-off that motivates preemptive
// multi-tasking.
func runFig1(s *Suite) ([]*Table, error) {
	const (
		batch       = 4
		requests    = 16   // per stream
		loadFactor  = 0.55 // offered load relative to saturation
		trialsPerMx = 5
	)
	models := []*dnn.Model{dnn.GoogLeNet(), dnn.ResNet50()}

	type streamStats struct {
		throughput float64 // inferences per second
		latencyMS  float64 // mean turnaround
	}

	// makeStream builds back-pressured arrivals for one model: requests
	// spaced at isolated-latency/loadFactor with uniform jitter.
	makeStream := func(m *dnn.Model, idBase int, rng *rand.Rand) ([]*workload.Task, error) {
		probe, err := s.Gen.Instance(idBase, m, batch, sched.Medium, 0, nil, rng)
		if err != nil {
			return nil, err
		}
		gap := float64(probe.IsolatedCycles) / loadFactor
		var tasks []*workload.Task
		for i := 0; i < requests; i++ {
			arrival := int64(float64(i)*gap) + rng.Int64N(int64(gap/2)+1)
			t, err := s.Gen.Instance(idBase+i, m, batch, sched.Medium, arrival, nil, rng)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, t)
		}
		return tasks, nil
	}

	run := func(tasks []*workload.Task) (streamStats, error) {
		policy, err := sched.ByName("FCFS", s.Sched)
		if err != nil {
			return streamStats{}, err
		}
		simulator, err := sim.New(sim.Options{
			NPU: s.NPU, Sched: s.Sched, Policy: policy,
		}, workload.SchedTasks(tasks))
		if err != nil {
			return streamStats{}, err
		}
		res, err := simulator.Run()
		if err != nil {
			return streamStats{}, err
		}
		var sumLat float64
		for _, t := range res.Tasks {
			sumLat += s.NPU.Millis(t.Turnaround())
		}
		makespanSec := s.NPU.Seconds(res.Cycles)
		return streamStats{
			throughput: float64(len(res.Tasks)*batch) / makespanSec,
			latencyMS:  sumLat / float64(len(res.Tasks)),
		}, nil
	}

	// Each trial is independent (its own RNG stream and executions), so
	// trials fan out through the engine; reduction stays in trial order.
	type trialStats struct {
		gn, rn, co streamStats
	}
	perTrial := make([]trialStats, trialsPerMx)
	err := s.ForEach(trialsPerMx, func(trial int) error {
		rng := workload.RNGFor(s.Seed^0xF161, trial)
		gn, err := makeStream(models[0], 0, rng)
		if err != nil {
			return err
		}
		rn, err := makeStream(models[1], 1000, rng)
		if err != nil {
			return err
		}
		g, err := run(gn)
		if err != nil {
			return err
		}
		r, err := run(rn)
		if err != nil {
			return err
		}
		// Co-located: both streams share one NPU. Clone fresh
		// executions by regenerating with the same RNG stream.
		rng2 := workload.RNGFor(s.Seed^0xF161, trial)
		gn2, err := makeStream(models[0], 0, rng2)
		if err != nil {
			return err
		}
		rn2, err := makeStream(models[1], 1000, rng2)
		if err != nil {
			return err
		}
		c, err := run(append(gn2, rn2...))
		if err != nil {
			return err
		}
		perTrial[trial] = trialStats{gn: g, rn: r, co: c}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var isoGN, isoRN, co streamStats
	for _, ts := range perTrial {
		isoGN.throughput += ts.gn.throughput / trialsPerMx
		isoGN.latencyMS += ts.gn.latencyMS / trialsPerMx
		isoRN.throughput += ts.rn.throughput / trialsPerMx
		isoRN.latencyMS += ts.rn.latencyMS / trialsPerMx
		co.throughput += ts.co.throughput / trialsPerMx
		co.latencyMS += ts.co.latencyMS / trialsPerMx
	}

	// Isolated aggregate: the two models each own the NPU half the
	// time (two separate deployments averaged, as Figure 1 plots them
	// side by side).
	isoThroughput := (isoGN.throughput + isoRN.throughput) / 2
	isoLatency := (isoGN.latencyMS + isoRN.latencyMS) / 2

	t := &Table{
		ID:    "fig1",
		Title: "Isolated vs co-located GoogLeNet+ResNet under NP-FCFS",
		Headers: []string{"configuration", "throughput (inf/s)", "avg latency (ms)",
			"throughput vs isolated", "latency vs isolated"},
		Note: "co-location improves throughput by ~51% while aggravating average latency by ~23%",
	}
	t.AddRow("Isolated GoogLeNet", fmt.Sprintf("%.0f", isoGN.throughput),
		fmt.Sprintf("%.2f", isoGN.latencyMS), "-", "-")
	t.AddRow("Isolated ResNet", fmt.Sprintf("%.0f", isoRN.throughput),
		fmt.Sprintf("%.2f", isoRN.latencyMS), "-", "-")
	t.AddRow("Isolated (mean)", fmt.Sprintf("%.0f", isoThroughput),
		fmt.Sprintf("%.2f", isoLatency), "1.00x", "1.00x")
	t.AddRow("Co-located", fmt.Sprintf("%.0f", co.throughput),
		fmt.Sprintf("%.2f", co.latencyMS),
		fmt.Sprintf("%.2fx", co.throughput/isoThroughput),
		fmt.Sprintf("%.2fx", co.latencyMS/isoLatency))
	return []*Table{t}, nil
}

// Fig1Summary exposes the headline ratios for tests.
type Fig1Summary struct {
	ThroughputGain float64
	LatencyCost    float64
}

// Fig1Headline parses the co-located row of a regenerated fig1 table.
func Fig1Headline(t *Table) (Fig1Summary, error) {
	if t.ID != "fig1" || len(t.Rows) < 4 {
		return Fig1Summary{}, fmt.Errorf("exp: not a fig1 table")
	}
	var out Fig1Summary
	if _, err := fmt.Sscanf(t.Rows[3][3], "%fx", &out.ThroughputGain); err != nil {
		return Fig1Summary{}, err
	}
	if _, err := fmt.Sscanf(t.Rows[3][4], "%fx", &out.LatencyCost); err != nil {
		return Fig1Summary{}, err
	}
	return out, nil
}

var _ = metrics.Run{} // keep the import set stable across edits
