package exp

import (
	"fmt"
	"time"

	"repro/internal/ckptmem"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "loadcurve",
		Title: "Sustained-load throughput-latency curves per scheduler (serving regime)",
		Run:   runLoadCurve,
	})
	register(Experiment{
		ID:    "spill",
		Title: "Checkpoint storage oversubscription (Section VI-G): NPU pool size sweep",
		Run:   runSpill,
	})
	register(Experiment{
		ID:    "batching",
		Title: "Dynamic batching window sweep (TensorRT-server runtime feature, Figure 1 setup)",
		Run:   runBatching,
	})
}

// runBatching sweeps the dynamic-batching window at a CNN-heavy overload
// and reports the throughput/latency trade, with and without PREMA.
func runBatching(s *Suite) ([]*Table, error) {
	server := serving.NewServer(s.NPU, s.Sched, s.Gen)
	t := &Table{
		ID:    "batching",
		Title: "Dynamic batching at 1.6x offered CNN load (members/s and per-request latency)",
		Headers: []string{"window", "scheduler", "mean batch", "throughput (inf/s)",
			"mean latency (ms)", "p95 (ms)"},
		Note: "batching recovers throughput under overload at a bounded latency cost",
	}
	spec := serving.Spec{
		Horizon: 400 * time.Millisecond, OfferedLoad: 1.6,
		Models: []string{"CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN"},
	}
	const trials = 3
	for _, window := range []time.Duration{0, time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		for _, c := range []struct {
			label      string
			policy     string
			preemptive bool
		}{
			{"NP-FCFS", "FCFS", false},
			{"Dynamic-PREMA", "PREMA", true},
		} {
			perTrial := make([]serving.BatchStats, trials)
			err := s.ForEach(trials, func(trial int) error {
				st, err := server.RunBatched(serving.BatchSpec{Spec: spec, Window: window},
					c.policy, c.preemptive, "dynamic", workload.RNGFor(s.Seed^0xBA7C, trial))
				if err != nil {
					return err
				}
				perTrial[trial] = st
				return nil
			})
			if err != nil {
				return nil, err
			}
			var batch, thr, lat, p95 float64
			for _, st := range perTrial {
				batch += st.MeanBatch / trials
				thr += st.ThroughputPerSec / trials
				lat += st.MeanLatencyMS / trials
				p95 += st.P95LatencyMS / trials
			}
			t.AddRow(window.String(), c.label,
				fmt.Sprintf("%.1f", batch),
				fmt.Sprintf("%.0f", thr),
				fmt.Sprintf("%.1f", lat),
				fmt.Sprintf("%.1f", p95))
		}
	}
	return []*Table{t}, nil
}

// runLoadCurve sweeps offered load for NP-FCFS, P-SJF, and Dynamic-PREMA
// over identical Poisson arrival streams — the serving-level view of the
// paper's scheduling claims.
func runLoadCurve(s *Suite) ([]*Table, error) {
	server := serving.NewServer(s.NPU, s.Sched, s.Gen)
	configs := []struct {
		label      string
		policy     string
		preemptive bool
		selector   string
	}{
		{"NP-FCFS", "FCFS", false, ""},
		{"P-SJF", "SJF", true, "static-checkpoint"},
		{"Dynamic-PREMA", "PREMA", true, "dynamic"},
	}
	t := &Table{
		ID:    "loadcurve",
		Title: "Mean NTT (and p95 latency ms) vs offered load, 400ms Poisson streams",
		Headers: []string{"offered load", "NP-FCFS NTT", "NP-FCFS p95",
			"P-SJF NTT", "P-SJF p95", "PREMA NTT", "PREMA p95"},
		Note: "PREMA holds the latency knee to far higher load than NP-FCFS",
	}
	const trials = 4
	for _, load := range []float64{0.3, 0.5, 0.7, 0.85, 0.95} {
		row := []string{fmt.Sprintf("%.2f", load)}
		for _, c := range configs {
			perTrial := make([]serving.Stats, trials)
			err := s.ForEach(trials, func(trial int) error {
				st, err := server.Run(serving.Spec{
					Horizon: 400 * time.Millisecond, OfferedLoad: load,
				}, c.policy, c.preemptive, c.selector, workload.RNGFor(s.Seed^0x10AD, trial))
				if err != nil {
					return err
				}
				perTrial[trial] = st
				return nil
			})
			if err != nil {
				return nil, err
			}
			var ntt, p95 float64
			for _, st := range perTrial {
				ntt += st.MeanNTT / trials
				p95 += st.P95LatencyMS / trials
			}
			row = append(row, fmt.Sprintf("%.2f", ntt), fmt.Sprintf("%.1f", p95))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// runSpill sweeps the NPU-local checkpoint pool from "unlimited" down to
// a fraction of one context, measuring the checkpoint-overhead growth and
// the ANTT cost as contexts spill to host memory over the slow link —
// quantifying when Section VI-G's proactive migration starts to matter.
func runSpill(s *Suite) ([]*Table, error) {
	t := &Table{
		ID:    "spill",
		Title: "Dynamic-PREMA under finite checkpoint storage (16 tasks, batch 16)",
		Headers: []string{"NPU ckpt pool", "ANTT", "avg ckpt overhead (us/task)",
			"vs unlimited ANTT"},
		Note: "GBs of NPU memory make spilling irrelevant; pathological pools surface the host link",
	}
	pools := []struct {
		label string
		bytes int64
	}{
		{"unlimited", 0},
		{"4 GB", 4 << 30},
		{"64 MB", 64 << 20},
		{"8 MB", 8 << 20},
		{"1 MB", 1 << 20},
	}
	spec := workload.Spec{Tasks: 16, BatchSizes: []int{16}}
	const runs = 8
	var baseANTT float64
	for pi, pool := range pools {
		// Fan the runs out through the engine; each run owns its policy,
		// selector and checkpoint-memory manager.
		type spillRun struct {
			antt   float64
			ckptUS float64
		}
		perRun := make([]spillRun, runs)
		err := s.ForEach(runs, func(r int) error {
			policy, err := sched.ByName("PREMA", s.Sched)
			if err != nil {
				return err
			}
			selector, err := sched.SelectorByName("dynamic")
			if err != nil {
				return err
			}
			rng := workload.RNGFor(s.Seed^0x5B111, r)
			tasks, err := s.Gen.Generate(spec, rng)
			if err != nil {
				return err
			}
			opt := sim.Options{
				NPU: s.NPU, Sched: s.Sched,
				Policy: policy, Preemptive: true, Selector: selector,
			}
			if pool.bytes > 0 {
				cfg := ckptmem.DefaultConfig()
				cfg.NPUMemBytes = pool.bytes
				mem, err := ckptmem.New(cfg)
				if err != nil {
					return err
				}
				opt.CkptMem = mem
			}
			simulator, err := sim.New(opt, workload.SchedTasks(tasks))
			if err != nil {
				return err
			}
			res, err := simulator.Run()
			if err != nil {
				return err
			}
			m, err := metrics.FromTasks(res.Tasks)
			if err != nil {
				return err
			}
			var ck int64
			for _, task := range res.Tasks {
				ck += task.CheckpointCycles
			}
			perRun[r] = spillRun{
				antt:   m.ANTT,
				ckptUS: s.NPU.Micros(ck) / float64(len(res.Tasks)),
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var antt, ckptUS float64
		for _, pr := range perRun {
			antt += pr.antt / runs
			ckptUS += pr.ckptUS / runs
		}
		if pi == 0 {
			baseANTT = antt
		}
		t.AddRow(pool.label,
			fmt.Sprintf("%.2f", antt),
			fmt.Sprintf("%.1f", ckptUS),
			fmt.Sprintf("%.3fx", antt/baseANTT))
	}
	return []*Table{t}, nil
}
