package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/workload"
)

// This file registers the node-level streaming experiment: the
// closed-loop concurrency sweep over a multi-NPU node session, the
// serving-system view of the Section II-C deployment model. Where
// loadcurve sweeps open-loop offered load (arrivals ignore completions,
// queues grow without bound past saturation), closedloop sweeps the
// client population — each client keeps one request in flight — so the
// curve bends instead of exploding: throughput flattens at node
// capacity while latency keeps climbing with concurrency.

func init() {
	register(Experiment{
		ID:    "closedloop",
		Title: "Closed-loop concurrency sweep over a 2-NPU node (clients vs latency/throughput)",
		Run:   runClosedLoop,
	})
}

// closedCell is one (clients x local scheduler) cell of the sweep.
type closedCell struct {
	clients int
	local   clusterLocal
}

// runClosedLoop sweeps the closed-loop client population on a 2-NPU
// least-work node for the NP-FCFS and Dynamic-PREMA local schedulers.
// Every (cell x run) pair fans out through the engine's worker pool;
// per-cell reduction happens in run order afterwards, so output is
// independent of scheduling.
func runClosedLoop(s *Suite) ([]*Table, error) {
	const (
		npus    = 2
		think   = 2 * time.Millisecond
		horizon = 250 * time.Millisecond
		runs    = 4
	)
	t := &Table{
		ID:    "closedloop",
		Title: "2-NPU node, closed-loop clients (2ms think): throughput and latency vs concurrency",
		Headers: []string{"clients", "local scheduler", "req/s", "mean lat (ms)",
			"p99 lat (ms)", "SLA viol.@4x"},
		Note: "closed loops self-limit: throughput saturates at node capacity while latency keeps climbing",
	}
	locals := []clusterLocal{
		{"NP-FCFS", "FCFS", false},
		{"Dynamic-PREMA", "PREMA", true},
	}
	var cells []closedCell
	for _, clients := range []int{1, 4, 16, 64} {
		for _, local := range locals {
			cells = append(cells, closedCell{clients: clients, local: local})
		}
	}

	results := make([]serving.NodeStats, len(cells)*runs)
	err := s.ForEach(len(results), func(i int) error {
		cell := cells[i/runs]
		srv := serving.NewServer(s.NPU, s.Sched, s.Gen)
		ns, err := srv.OpenNode(serving.NodeConfig{
			NPUs:    npus,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{
				Policy:     cell.local.policy,
				Preemptive: cell.local.preemptive,
				Selector:   selectorFor(cell.local.preemptive),
				Horizon:    horizon,
			},
		})
		if err != nil {
			return err
		}
		if _, err := ns.OfferClients(serving.ClientSpec{
			Clients: cell.clients, Think: think, Horizon: horizon,
		}, workload.RNGFor(s.Seed^0xC705, i)); err != nil {
			return err
		}
		st, err := ns.Drain()
		if err != nil {
			return err
		}
		results[i] = st
		return ns.Close()
	})
	if err != nil {
		return nil, err
	}

	for ci, cell := range cells {
		var thr, lat, p99, sla float64
		for r := 0; r < runs; r++ {
			st := results[ci*runs+r]
			thr += st.ThroughputPerSec / runs
			lat += st.MeanLatencyMS / runs
			p99 += st.P99LatencyMS / runs
			sla += st.SLAViolations4x / runs
		}
		t.AddRow(fmt.Sprintf("%d", cell.clients), cell.local.label,
			fmt.Sprintf("%.0f", thr),
			fmt.Sprintf("%.2f", lat),
			fmt.Sprintf("%.2f", p99),
			fmt.Sprintf("%.1f%%", sla*100))
	}
	return []*Table{t}, nil
}

// selectorFor resolves the local mechanism selector label.
func selectorFor(preemptive bool) string {
	if preemptive {
		return "dynamic"
	}
	return ""
}
