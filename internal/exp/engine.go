package exp

// engine.go is the concurrent experiment-execution engine. Every
// evaluation in this package decomposes into independent simulation runs
// — (scheduler configuration x run index) pairs over deterministic
// per-run RNG streams — so the engine fans them out over a worker pool
// and reassembles the outcomes in stable order.
//
// Determinism contract: a parallel execution is byte-identical to a
// sequential one. Three properties make that hold and must be preserved:
//
//  1. Per-run isolation. Every run constructs its own policy and
//     mechanism-selector instances (policies keep scratch state; see the
//     sched.Policy contract) and regenerates its workload from
//     workload.RNGFor(seed, run), so no mutable state crosses runs.
//  2. Stable assembly. Worker completion order is nondeterministic, so
//     outcomes are written into an index-addressed slice and reduced
//     sequentially in (configuration, run) order afterwards — float
//     accumulation order, pooled task order, and pooled preemption order
//     all match the sequential loop exactly.
//  3. Shared read-mostly state. The state shared across workers is the
//     Suite's workload.Generator and its optional RunCache; both are
//     mutex-guarded, and cache hits/misses cannot influence results
//     (programs and run outcomes are deterministic functions of their
//     keys, and cached outcomes are immutable by contract — see
//     cache.go).
//
// First-error policy: once any run fails, runs not yet started are
// skipped and the lowest-indexed error among those that did run is
// returned. Which runs were attempted — and therefore which error
// surfaces when several would fail — may differ between parallel and
// sequential executions; the byte-identical guarantee covers successful
// results only.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// workers resolves the Suite's worker-pool size: Workers when positive,
// otherwise GOMAXPROCS.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across the Suite's worker
// pool. Once any call fails, work not yet started is skipped and the
// lowest-indexed error among the calls that ran is returned (see the
// first-error policy above). fn must write its result into an index-addressed
// location; any cross-iteration reduction must happen after ForEach
// returns, in index order, to keep parallel output byte-identical to
// sequential. With one worker (or n <= 1) it degenerates to a plain
// sequential loop.
func (s *Suite) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := s.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runOutcome is one simulation run's contribution to a MultiResult.
type runOutcome struct {
	metrics     metrics.Run
	tasks       []*sched.Task
	preemptions []sim.PreemptionEvent
}

// runOne resolves the run-th simulation of cfg: a cache hit returns the
// memoized outcome (immutable by contract; see cache.go), a miss — or a
// non-cacheable run — simulates via simulateOne and populates the cache.
// Cached and simulated outcomes are bit-identical, so the engine's
// determinism contract is unaffected by the cache state.
func (s *Suite) runOne(cfg SchedulerConfig, scfg sched.Config, spec workload.Spec, run int) (runOutcome, error) {
	key, cacheable := s.cacheKey(cfg, scfg, spec, run)
	if cacheable {
		if o, ok := s.Cache.lookup(key); ok {
			return o, nil
		}
	}
	o, err := s.simulateOne(cfg, scfg, spec, run)
	if err != nil {
		return runOutcome{}, err
	}
	if cacheable {
		s.Cache.store(key, o)
	}
	return o, nil
}

// simulateOne executes the run-th simulation of cfg: fresh policy and
// selector instances, the deterministic per-run workload, one simulator.
func (s *Suite) simulateOne(cfg SchedulerConfig, scfg sched.Config, spec workload.Spec, run int) (runOutcome, error) {
	atomic.AddInt64(&s.simulations, 1)
	policy, err := sched.ByName(cfg.Policy, scfg)
	if err != nil {
		return runOutcome{}, err
	}
	var selector sched.MechanismSelector
	if cfg.Selector != "" {
		if selector, err = sched.SelectorByName(cfg.Selector); err != nil {
			return runOutcome{}, err
		}
	}
	rng := workload.RNGFor(s.Seed, run)
	tasks, err := s.Gen.Generate(spec, rng)
	if err != nil {
		return runOutcome{}, err
	}
	simulator, err := sim.New(sim.Options{
		NPU: s.NPU, Sched: scfg,
		Policy: policy, Preemptive: cfg.Preemptive, Selector: selector,
	}, workload.SchedTasks(tasks))
	if err != nil {
		return runOutcome{}, err
	}
	res, err := simulator.Run()
	if err != nil {
		return runOutcome{}, fmt.Errorf("%s run %d: %w", cfg.Label, run, err)
	}
	m, err := metrics.FromTasks(res.Tasks)
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{metrics: m, tasks: res.Tasks, preemptions: res.Preemptions}, nil
}

// RunConfigs executes runs simulations of every configuration over
// workloads drawn from spec, fanning all (configuration x run) pairs out
// over the worker pool. The r-th run of every configuration regenerates
// the identical workload (same RNG stream), so configurations are
// compared on exactly the same task mixes. Results are returned in
// configuration order, each assembled in run order.
func (s *Suite) RunConfigs(cfgs []SchedulerConfig, spec workload.Spec, runs int) ([]*MultiResult, error) {
	return s.RunConfigsSched(cfgs, s.Sched, spec, runs)
}

// RunConfigsSched is RunConfigs with an explicit scheduler configuration,
// for sensitivity sweeps that perturb quanta or token thresholds without
// mutating the Suite.
func (s *Suite) RunConfigsSched(cfgs []SchedulerConfig, scfg sched.Config, spec workload.Spec, runs int) ([]*MultiResult, error) {
	if runs <= 0 {
		runs = s.Runs
	}
	// Surface configuration mistakes once, before fanning out.
	for _, cfg := range cfgs {
		if _, err := sched.ByName(cfg.Policy, scfg); err != nil {
			return nil, err
		}
		if cfg.Selector != "" {
			if _, err := sched.SelectorByName(cfg.Selector); err != nil {
				return nil, err
			}
		}
	}
	outcomes := make([]runOutcome, len(cfgs)*runs)
	err := s.ForEach(len(outcomes), func(i int) error {
		o, err := s.runOne(cfgs[i/runs], scfg, spec, i%runs)
		if err != nil {
			return err
		}
		outcomes[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	results := make([]*MultiResult, len(cfgs))
	for ci, cfg := range cfgs {
		out := &MultiResult{Config: cfg}
		perRun := make([]metrics.Run, runs)
		for r := 0; r < runs; r++ {
			o := outcomes[ci*runs+r]
			perRun[r] = o.metrics
			out.Tasks = append(out.Tasks, o.tasks...)
			out.Preemptions = append(out.Preemptions, o.preemptions...)
		}
		out.Agg = metrics.Averaged(perRun)
		results[ci] = out
	}
	return results, nil
}

// RunMulti executes runs simulations of one configuration through the
// engine. See RunConfigs for the workload-pairing and determinism
// guarantees.
func (s *Suite) RunMulti(cfg SchedulerConfig, spec workload.Spec, runs int) (*MultiResult, error) {
	results, err := s.RunConfigs([]SchedulerConfig{cfg}, spec, runs)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}
