package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/workload"
)

// This file registers the autoscaling experiment: the elastic-capacity
// scenario class no fixed-fleet experiment can express. A single-NPU
// node (bounded at 4 NPUs) serves piecewise offered-load profiles — a
// diurnal climb-and-fall and a sharp burst — under each built-in
// scaling policy and a sweep of latency SLOs, reporting how much fleet
// each policy spent (time-weighted mean NPUs) and how much SLO
// violation it bought down relative to the static fixed-minimum
// baseline at the same peak-capacity bound.

func init() {
	register(Experiment{
		ID:    "autoscale",
		Title: "SLO-driven autoscaling: policies x SLO targets x load ramps on a 1-4 NPU node",
		Run:   runAutoscale,
	})
}

// autoscaleCell is one (ramp x SLO x scaler) cell of the sweep.
type autoscaleCell struct {
	rampLabel string
	rampIdx   int
	ramp      []float64
	slo       time.Duration
	scaler    string
}

// autoscaleModels is the interactive mix the sweep serves: the light
// models, so single-digit-millisecond SLOs are attainable and each
// segment holds tens of requests (the heavy translation/ASR RNNs would
// violate any SLO at batch 1 regardless of fleet size).
var autoscaleModels = []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"}

// runAutoscale sweeps scaling policy x SLO target x load profile.
// Every (cell x run) pair fans out through the engine's worker pool;
// per-cell reduction happens in run order afterwards, so output is
// independent of scheduling.
func runAutoscale(s *Suite) ([]*Table, error) {
	const (
		segment = 40 * time.Millisecond
		horizon = 200 * time.Millisecond // 5 segments
		minNPUs = 1
		maxNPUs = 4
	)
	ramps := []struct {
		label string
		loads []float64
	}{
		{"diurnal", []float64{0.4, 1.5, 3.0, 1.5, 0.4}},
		{"burst", []float64{0.5, 0.5, 3.5, 0.5, 0.5}},
	}
	scalers := []string{"static", "queue-depth", "target-latency"}
	slos := []time.Duration{4 * time.Millisecond, 10 * time.Millisecond}

	var cells []autoscaleCell
	for ri, ramp := range ramps {
		for _, slo := range slos {
			for _, scaler := range scalers {
				cells = append(cells, autoscaleCell{
					rampLabel: ramp.label, rampIdx: ri, ramp: ramp.loads,
					slo: slo, scaler: scaler,
				})
			}
		}
	}

	runs := s.Runs
	results := make([]serving.NodeStats, len(cells)*runs)
	err := s.ForEach(len(results), func(i int) error {
		cell := cells[i/runs]
		srv := serving.NewServer(s.NPU, s.Sched, s.Gen)
		ns, err := srv.OpenNode(serving.NodeConfig{
			NPUs:    minNPUs,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{Policy: "FCFS", Horizon: horizon},
			Autoscale: &serving.AutoscaleConfig{
				Scaler:  cell.scaler,
				SLO:     cell.slo,
				MinNPUs: minNPUs,
				MaxNPUs: maxNPUs,
			},
		})
		if err != nil {
			return err
		}
		// Seed by (ramp, run) only: every scaler and SLO in a block sees
		// the identical arrival stream, so the rows compare policy effect
		// on paired workloads rather than sampling noise.
		if _, err := ns.OfferRamp(serving.Spec{
			Horizon:    segment,
			Models:     autoscaleModels,
			BatchSizes: []int{1},
		}, cell.ramp, workload.RNGFor(s.Seed^0xA5CA1E, cell.rampIdx*runs+i%runs)); err != nil {
			return err
		}
		st, err := ns.Drain()
		if err != nil {
			return err
		}
		results[i] = st
		return ns.Close()
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "autoscale",
		Title: "1-4 NPU node, FCFS local, least-work routing: scaling policy vs fleet cost and SLO violations",
		Headers: []string{"ramp", "SLO (ms)", "scaler", "mean NPUs", "peak", "events",
			"p95 lat (ms)", "SLO viol."},
		Note: "elastic fleets track the ramp: lower violation fractions than the fixed minimum at a fraction of the peak fleet-time",
	}
	for ci, cell := range cells {
		var meanNPUs, p95, viol, events float64
		peak := 0
		for r := 0; r < runs; r++ {
			st := results[ci*runs+r]
			meanNPUs += st.Scaling.MeanNPUs / float64(runs)
			p95 += st.P95LatencyMS / float64(runs)
			viol += st.Scaling.SLOViolationFrac / float64(runs)
			events += float64(len(st.Scaling.Events)-1) / float64(runs)
			if st.Scaling.PeakNPUs > peak {
				peak = st.Scaling.PeakNPUs
			}
		}
		t.AddRow(cell.rampLabel,
			fmt.Sprintf("%.0f", float64(cell.slo)/float64(time.Millisecond)),
			cell.scaler,
			fmt.Sprintf("%.2f", meanNPUs),
			fmt.Sprintf("%d", peak),
			fmt.Sprintf("%.1f", events),
			fmt.Sprintf("%.2f", p95),
			fmt.Sprintf("%.1f%%", viol*100))
	}
	return []*Table{t}, nil
}
