package exp

import (
	"fmt"
	"math"

	"repro/internal/dnn"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "accuracy",
		Title: "Prediction model accuracy vs simulated execution time (Section VI-A/D)",
		Run:   runAccuracy,
	})
	register(Experiment{
		ID:    "predictors",
		Title: "Predictor ablation: analytic vs profile-based vs MAC proxy",
		Run:   runPredictorAblation,
	})
}

// runAccuracy measures the Algorithm 1 predictor's estimation error and
// its correlation with the simulated inference time across many sampled
// task instances: the paper reports ~1.6% error and ~98% correlation.
func runAccuracy(s *Suite) ([]*Table, error) {
	const samplesPerModel = 60

	t := &Table{
		ID:    "accuracy",
		Title: "Prediction error per model (predicted vs simulated inference time)",
		Headers: []string{"model", "batch-avg err %", "b1 err %", "b4 err %", "b16 err %",
			"correlation"},
		Note: "average estimation error ~1.6%; ~98% correlation with simulated time",
	}

	var allPred, allActual []float64
	var globalErrSum float64
	var globalN int
	for _, m := range dnn.Suite() {
		var rowErr [3]float64
		var rowN [3]int
		var pv, av []float64
		for i := 0; i < samplesPerModel; i++ {
			rng := workload.RNGFor(s.Seed^0xACC, i*7919+hash8(m.Name))
			b := dnn.BatchSizes[i%len(dnn.BatchSizes)]
			task, err := s.Gen.Instance(0, m, b, sched.Medium, 0, nil, rng)
			if err != nil {
				return nil, err
			}
			actual := float64(task.IsolatedCycles)
			pred := float64(task.EstimatedCycles)
			errFrac := math.Abs(pred-actual) / actual
			rowErr[i%3] += errFrac
			rowN[i%3]++
			globalErrSum += errFrac
			globalN++
			pv = append(pv, pred)
			av = append(av, actual)
		}
		allPred = append(allPred, pv...)
		allActual = append(allActual, av...)
		avg := (rowErr[0] + rowErr[1] + rowErr[2]) / float64(rowN[0]+rowN[1]+rowN[2])
		t.AddRow(m.Name,
			fmt.Sprintf("%.2f", avg*100),
			fmt.Sprintf("%.2f", safeDiv(rowErr[0], float64(rowN[0]))*100),
			fmt.Sprintf("%.2f", safeDiv(rowErr[1], float64(rowN[1]))*100),
			fmt.Sprintf("%.2f", safeDiv(rowErr[2], float64(rowN[2]))*100),
			fmt.Sprintf("%.3f", correlation(pv, av)))
	}
	t.AddRow("Overall",
		fmt.Sprintf("%.2f", globalErrSum/float64(globalN)*100),
		"", "", "",
		fmt.Sprintf("%.3f", correlation(allPred, allActual)))
	return []*Table{t}, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runPredictorAblation compares the three predictor designs the paper
// discusses: the architecture-aware analytic model (Algorithm 1), the
// profile-based bookkeeping predictor, and the naive MAC-count proxy
// (Figure 10's warning).
func runPredictorAblation(s *Suite) ([]*Table, error) {
	const samples = 40
	lib := s.Gen.Library()
	analytic := s.Gen.Analytic()
	prof, err := predictor.NewProfile(s.NPU, lib)
	if err != nil {
		return nil, err
	}
	proxy := predictor.NewMACProxy(s.NPU, lib)

	// Warm the profile predictor with one observed program per
	// (model, batch): the pay-once profiling pass of Section V-B.
	for _, m := range dnn.Suite() {
		for _, b := range dnn.BatchSizes {
			rng := workload.RNGFor(s.Seed^0xFEED, hash8(m.Name)+b)
			task, err := s.Gen.Instance(0, m, b, sched.Medium, 0, nil, rng)
			if err != nil {
				return nil, err
			}
			layers := task.ModelRef.LayersFor(task.InLen, task.ActualOut)
			prof.ObserveProgram(task.ModelRef, task.Program, layers)
		}
	}

	t := &Table{
		ID:      "predictors",
		Title:   "Mean |error| % per predictor design",
		Headers: []string{"model", "analytic (Alg.1)", "profile-based", "MAC proxy"},
		Note:    "MAC proxy mispredicts layers that underutilize the array (Figure 10)",
	}
	for _, m := range dnn.Suite() {
		var errA, errP, errX float64
		for i := 0; i < samples; i++ {
			rng := workload.RNGFor(s.Seed^0xFACE, i*31+hash8(m.Name))
			b := dnn.BatchSizes[i%len(dnn.BatchSizes)]
			task, err := s.Gen.Instance(0, m, b, sched.Medium, 0, nil, rng)
			if err != nil {
				return nil, err
			}
			actual := float64(task.IsolatedCycles)
			ea, err := analytic.Estimate(task.ModelRef, b, task.InLen)
			if err != nil {
				return nil, err
			}
			ep, err := prof.Estimate(task.ModelRef, b, task.InLen)
			if err != nil {
				return nil, err
			}
			ex, err := proxy.Estimate(task.ModelRef, b, task.InLen)
			if err != nil {
				return nil, err
			}
			errA += math.Abs(float64(ea)-actual) / actual
			errP += math.Abs(float64(ep)-actual) / actual
			errX += math.Abs(float64(ex)-actual) / actual
		}
		n := float64(samples)
		t.AddRow(m.Name,
			fmt.Sprintf("%.2f", errA/n*100),
			fmt.Sprintf("%.2f", errP/n*100),
			fmt.Sprintf("%.2f", errX/n*100))
	}
	return []*Table{t}, nil
}
