package exp

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestAllExperimentsProduceTables runs every registered experiment with a
// reduced run count and validates the output structure: at least one
// table, consistent row widths, and non-empty cells in the first column.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	s.Runs = 3
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" {
					t.Errorf("%s: table missing ID/title", e.ID)
				}
				if len(tbl.Headers) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("%s/%s: empty table", e.ID, tbl.ID)
				}
				for i, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Errorf("%s/%s row %d: %d cells vs %d headers",
							e.ID, tbl.ID, i, len(row), len(tbl.Headers))
					}
					if strings.TrimSpace(row[0]) == "" {
						t.Errorf("%s/%s row %d: empty label", e.ID, tbl.ID, i)
					}
				}
				// Both renderings must succeed.
				if tbl.String() == "" || tbl.CSV() == "" {
					t.Errorf("%s/%s: empty rendering", e.ID, tbl.ID)
				}
			}
		})
	}
}

func TestClusterExperimentShape(t *testing.T) {
	s := fastSuite(t)
	tables, err := runCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// PREMA must beat FCFS at every node size, and 4 NPUs must beat
	// 1 NPU for the same local scheduler.
	antt := map[string]float64{}
	for _, r := range tbl.Rows {
		antt[r[0]+"/"+r[1]+"/"+r[2]] = parse(t, r[3])
	}
	if antt["1/round-robin/Dynamic-PREMA"] >= antt["1/round-robin/NP-FCFS"] {
		t.Error("single-NPU PREMA should beat FCFS")
	}
	if antt["4/round-robin/Dynamic-PREMA"] >= antt["1/round-robin/Dynamic-PREMA"] {
		t.Error("4 NPUs should beat 1 NPU for the same scheduler")
	}
}

func TestKillGranularityOrdering(t *testing.T) {
	s := fastSuite(t)
	tables, err := runKillGranularity(s)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	wasted := map[string]float64{}
	for _, r := range rows {
		wasted[r[0]] = parse(t, r[4])
	}
	if wasted["static-checkpoint"] != 0 {
		t.Error("checkpoint should waste nothing")
	}
	if !(wasted["static-kill-layer"] <= wasted["static-kill"]) {
		t.Errorf("layer-granularity restart should waste no more than scratch: %v vs %v",
			wasted["static-kill-layer"], wasted["static-kill"])
	}
}

func TestEnergyExperimentShape(t *testing.T) {
	s := fastSuite(t)
	tables, err := runEnergy(s)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tables[0].Rows {
		rows[r[0]] = r
	}
	prema := parse(t, rows["Dynamic-PREMA"][8])
	kill := parse(t, rows["StaticKill-PREMA"][8])
	if prema > 1.02 {
		t.Errorf("PREMA energy overhead %.3fx should be negligible", prema)
	}
	if kill <= prema {
		t.Errorf("KILL (%.3fx) should burn more energy than CHECKPOINT-based PREMA (%.3fx)",
			kill, prema)
	}
}

func TestOverheadTables(t *testing.T) {
	s := fastSuite(t)
	tables, err := runOverhead(s)
	if err != nil {
		t.Fatal(err)
	}
	sram := tables[0]
	// 16-task row must show 7168 bits (Section VI-F).
	found := false
	for _, r := range sram.Rows {
		if r[0] == "16" && r[1] == "7168" {
			found = true
		}
	}
	if !found {
		t.Error("context-table SRAM row for 16 tasks should show 7168 bits")
	}
	storage := tables[1]
	// CNN-VN at b16 must reach hundreds of MBs of total activations.
	for _, r := range storage.Rows {
		if r[0] == "CNN-VN" && r[1] == "b16" {
			if v := parse(t, r[3]); v < 100 {
				t.Errorf("VGG b16 activation footprint %.1f MB; Section VI-G expects hundreds", v)
			}
		}
	}
}

func TestFig9PanelsMonotone(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("fig9 should regenerate 4 panels, got %d", len(tables))
	}
	for _, tbl := range tables {
		// Median output length must grow with input length.
		prev := -1.0
		for _, r := range tbl.Rows {
			med := parse(t, r[3])
			if med < prev*0.8 {
				t.Errorf("%s: medians not roughly monotone (%v after %v)", tbl.ID, med, prev)
			}
			prev = med
		}
	}
}

func TestFig10FlagsKnownOutliers(t *testing.T) {
	s := fastSuite(t)
	tables, err := runFig10(s)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, r := range tables[0].Rows {
		if r[6] == "YES" {
			flagged[r[0]+"/"+r[1]] = true
		}
	}
	// Batch-1 FC classifier layers are canonical low-utilization cases.
	if !flagged["CNN-AN/fc8"] {
		t.Error("AlexNet fc8 at batch 1 should be flagged as underutilized")
	}
	if len(flagged) < 5 {
		t.Errorf("only %d outliers flagged; Figure 10 shows a populated region", len(flagged))
	}
}

func TestPredictorAblationOrdering(t *testing.T) {
	s := fastSuite(t)
	tables, err := runPredictorAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		analytic, prof, proxy := parse(t, r[1]), parse(t, r[2]), parse(t, r[3])
		if proxy < analytic {
			t.Errorf("%s: MAC proxy (%.2f%%) should not beat the analytic model (%.2f%%)",
				r[0], proxy, analytic)
		}
		_ = prof
	}
}

var _ = workload.Spec{}
