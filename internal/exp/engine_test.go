package exp

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// fingerprint renders every observable field of a MultiResult with exact
// float bit patterns, so two results compare equal only when they are
// bit-identical: aggregate metrics, pooled task order and timing, and
// pooled preemption order and cost.
func fingerprint(m *MultiResult) string {
	var b strings.Builder
	bits := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	fmt.Fprintf(&b, "cfg=%s agg={runs=%d antt=%s stp=%s fair=%s}\n",
		m.Config.Label, m.Agg.Runs, bits(m.Agg.ANTT), bits(m.Agg.STP), bits(m.Agg.Fairness))
	for i, t := range m.Tasks {
		fmt.Fprintf(&b, "task[%d]={id=%d model=%s batch=%d prio=%d arrival=%d est=%d iso=%d token=%s start=%d completion=%d waited=%d preemptions=%d}\n",
			i, t.ID, t.Model, t.Batch, t.Priority, t.Arrival, t.EstimatedCycles,
			t.IsolatedCycles, bits(t.Token), t.Start, t.Completion, t.Waited, t.Preemptions)
	}
	for i, p := range m.Preemptions {
		fmt.Fprintf(&b, "preempt[%d]={cycle=%d victim=%d by=%d cost=%+v}\n",
			i, p.Cycle, p.Preempted, p.Preempting, p.Cost)
	}
	return b.String()
}

// TestEngineParallelMatchesSequential is the engine's determinism
// contract (see the package comment): fanning (configuration x run)
// pairs over the worker pool must produce MultiResults bit-identical to
// a sequential Workers=1 execution — same aggregate floats, same pooled
// task order, same pooled preemption order.
func TestEngineParallelMatchesSequential(t *testing.T) {
	spec := workload.Spec{Tasks: 8}
	const runs = 6
	cfgs := []SchedulerConfig{NP("FCFS"), DynamicCkpt("PREMA")}

	newSuite := func(workers int) *Suite {
		s, err := NewSuite()
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		return s
	}

	seq := newSuite(1)
	seqResults, err := seq.RunConfigs(cfgs, spec, runs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 7} {
		par := newSuite(workers)
		parResults, err := par.RunConfigs(cfgs, spec, runs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cfgs {
			want, got := fingerprint(seqResults[i]), fingerprint(parResults[i])
			if want != got {
				t.Errorf("workers=%d %s: parallel result diverges from sequential\n--- sequential\n%s--- parallel\n%s",
					workers, cfgs[i].Label, want, got)
			}
		}
	}

	// The cache extends the contract: a cache-disabled execution and a
	// fully cached re-execution must both be bit-identical to the
	// baseline (the suites above run with the default-enabled cache).
	nocache := newSuite(0)
	nocache.Cache = nil
	nocacheResults, err := nocache.RunConfigs(cfgs, spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := seq.RunConfigs(cfgs, spec, runs) // answered from seq's cache
	if err != nil {
		t.Fatal(err)
	}
	if stats := seq.Cache.Stats(); stats.Hits != int64(len(cfgs)*runs) {
		t.Errorf("repeat execution hit the cache %d times, want %d", stats.Hits, len(cfgs)*runs)
	}
	for i := range cfgs {
		want := fingerprint(seqResults[i])
		if got := fingerprint(nocacheResults[i]); got != want {
			t.Errorf("%s: cache-disabled result diverges from cached baseline", cfgs[i].Label)
		}
		if got := fingerprint(hot[i]); got != want {
			t.Errorf("%s: cache-hit result diverges from its own first execution", cfgs[i].Label)
		}
	}
}

// TestEngineFirstError verifies the first-error policy: an invalid
// configuration surfaces as an error, not a panic or partial result.
func TestEngineFirstError(t *testing.T) {
	s := fastSuite(t)
	if _, err := s.RunConfigs([]SchedulerConfig{{Label: "bad", Policy: "nope"}},
		workload.Spec{Tasks: 2}, 2); err == nil {
		t.Fatal("unknown policy should error")
	}
	if _, err := s.RunConfigs([]SchedulerConfig{{Label: "bad", Policy: "FCFS",
		Preemptive: true, Selector: "nope"}}, workload.Spec{Tasks: 2}, 2); err == nil {
		t.Fatal("unknown selector should error")
	}
}
