package exp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dnn"
	"repro/internal/seqlen"
	"repro/internal/sparsity"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Per-layer activation density stability (VGGNet, 1000 inferences)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Seq2seq input vs time-unrolled output length characterization",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Per-layer MAC count vs execution time (architecture-awareness)",
		Run:   runFig10,
	})
}

// runFig7 regenerates Figure 7: changes in VGGNet's per-layer activation
// density across 1000 inference tests — the paper's evidence that
// activation sparsity is stable at inference time.
func runFig7(s *Suite) ([]*Table, error) {
	const inferences = 1000
	rng := workload.RNGFor(s.Seed^0x0F17, 0)
	summaries := sparsity.Characterize(sparsity.VGGProfile(), inferences, rng)
	t := &Table{
		ID:      "fig7",
		Title:   "VGGNet per-layer activation density over 1000 inferences",
		Headers: []string{"layer", "mean", "p25", "p75", "min", "max", "spread(p75-p25)"},
		Note:    "per-layer density varies little across inputs (narrow bands)",
	}
	profile := sparsity.VGGProfile()
	for i, sum := range summaries {
		t.AddRow(profile[i].Layer,
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.P25),
			fmt.Sprintf("%.3f", sum.P75),
			fmt.Sprintf("%.3f", sum.Min),
			fmt.Sprintf("%.3f", sum.Max),
			fmt.Sprintf("%.3f", sum.IQR()))
	}
	return []*Table{t}, nil
}

// runFig9 regenerates Figure 9: for each non-linear RNN application the
// boxplot of unrolled output lengths per input length, plus the geomean
// the regression lookup table stores.
func runFig9(s *Suite) ([]*Table, error) {
	lib := s.Gen.Library()
	var tables []*Table
	panels := []struct {
		id, profile, title string
	}{
		{"fig9a", "mt-de", "Translation English-German"},
		{"fig9b", "mt-ko", "Translation English-Korean"},
		{"fig9c", "mt-zh", "Translation English-Chinese"},
		{"fig9d", "asr", "Automatic speech recognition"},
	}
	for _, p := range panels {
		pred, err := lib.Predictor(p.profile)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:      p.id,
			Title:   p.title + ": output length vs input length",
			Headers: []string{"inLen", "n", "p25", "median", "p75", "min", "max", "regression(geomean)"},
			Note:    "25-75% interquartile range falls within a narrow boundary",
		}
		// Bucket the profiled input lengths the way the figure's
		// x-axis does.
		var inLens []int
		seen := map[int]bool{}
		for _, sample := range pred.Corpus.Samples {
			if !seen[sample.InLen] {
				seen[sample.InLen] = true
				inLens = append(inLens, sample.InLen)
			}
		}
		sort.Ints(inLens)
		step := 5
		if p.profile == "asr" {
			step = 10
		}
		for _, in := range inLens {
			if in%step != 0 {
				continue
			}
			sum := pred.Corpus.SummaryFor(in)
			if sum.N == 0 {
				continue
			}
			t.AddRow(fmt.Sprintf("%d", in), fmt.Sprintf("%d", sum.N),
				fmt.Sprintf("%.0f", sum.P25),
				fmt.Sprintf("%.0f", sum.Median),
				fmt.Sprintf("%.0f", sum.P75),
				fmt.Sprintf("%.0f", sum.Min),
				fmt.Sprintf("%.0f", sum.Max),
				fmt.Sprintf("%d", pred.Regression.Predict(in)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// runFig10 regenerates Figure 10: every GEMM layer of the 8-benchmark
// suite plotted as (MAC count, execution time). The low-effective-
// throughput outliers — layers whose shape underutilizes the systolic
// array, such as the 1x1 convolutions of MobileNet/GoogLeNet — are
// flagged, demonstrating why a MAC-count proxy mispredicts and an
// architecture-aware model is required.
func runFig10(s *Suite) ([]*Table, error) {
	an := s.Gen.Analytic()
	cfg := s.NPU
	const batch = 1

	type point struct {
		model, layer string
		macs         int64
		us           float64
		macsPerCycle float64
	}
	var points []point
	for _, m := range dnn.Suite() {
		inLen, outLen := 0, 0
		if m.IsRNN() {
			inLen = (m.MinInLen + m.MaxInLen) / 2
			pred, err := s.Gen.Library().Predictor(m.SeqProfile)
			if err != nil {
				return nil, err
			}
			outLen = pred.Regression.Predict(inLen)
		}
		seen := map[string]bool{}
		for _, l := range m.LayersFor(inLen, outLen) {
			if seen[l.Name] {
				continue // unrolled RNN steps repeat identical cells
			}
			seen[l.Name] = true
			g, ok := l.GEMM(batch)
			if !ok {
				continue
			}
			cycles := an.LayerCycles(g)
			if cycles == 0 {
				continue
			}
			points = append(points, point{
				model: m.Name, layer: l.Name,
				macs:         g.MACs(),
				us:           cfg.Micros(cycles),
				macsPerCycle: float64(g.MACs()) / float64(cycles),
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].macs < points[j].macs })

	peak := float64(cfg.SW * cfg.SH)
	t := &Table{
		ID:    "fig10",
		Title: "Layer MACs vs execution time (batch 1); outliers underutilize the array",
		Headers: []string{"model", "layer", "MACs", "time(us)", "eff. MACs/cycle",
			"utilization", "outlier"},
		Note: "execution time is not proportional to MACs; 1x1 CONVs suffer low effective throughput",
	}
	// Also compute the rank correlation between MACs and time to show
	// the proxy's weakness quantitatively.
	var logM, logT []float64
	for _, p := range points {
		util := p.macsPerCycle / peak
		outlier := ""
		if util < 0.05 {
			outlier = "YES"
		}
		t.AddRow(p.model, p.layer,
			fmt.Sprintf("%d", p.macs),
			fmt.Sprintf("%.1f", p.us),
			fmt.Sprintf("%.0f", p.macsPerCycle),
			fmt.Sprintf("%.1f%%", util*100),
			outlier)
		logM = append(logM, math.Log(float64(p.macs)))
		logT = append(logT, math.Log(p.us))
	}
	t.Note += fmt.Sprintf("; log-log corr(MACs,time)=%.2f over %d layers",
		correlation(logM, logT), len(points))
	return []*Table{t}, nil
}

// correlation returns the Pearson correlation of two equal-length samples.
func correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

var _ = seqlen.DefaultCorpusSize
