package exp

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/preempt"
	"repro/internal/profile"
	"repro/internal/scnn"
	"repro/internal/workload"
)

// profileDevices and profileLayerConfigs alias the profile package so the
// experiment body reads like the paper's methodology.
func profileDevices() []profile.Device      { return profile.Devices() }
func profileLayerConfigs(n int) []dnn.Layer { return profile.LayerConfigs(n) }

func init() {
	register(Experiment{
		ID:    "overhead",
		Title: "Implementation and storage overheads of PREMA (Sections IV-F/VI-F/VI-G)",
		Run:   runOverhead,
	})
	register(Experiment{
		ID:    "determinism",
		Title: "Latency determinism characterization: GPUs, TPUv2, SCNN (Section V-B)",
		Run:   runDeterminism,
	})
}

// runOverhead regenerates the overhead analysis: the context-table SRAM
// footprint (Section VI-F) and the checkpointed-state storage footprints
// per model and batch (Section VI-G).
func runOverhead(s *Suite) ([]*Table, error) {
	sram := &Table{
		ID:      "overhead-sram",
		Title:   "Inference task context table SRAM (Figure 4, Section VI-F)",
		Headers: []string{"co-located tasks", "bits", "bytes"},
		Note:    "448 bits per task; 16 tasks -> 7168 bits (~0.01 mm^2 in 32nm)",
	}
	for _, n := range []int{1, 4, 8, 16, 32} {
		bits := preempt.ContextTableBits(n)
		sram.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", bits), fmt.Sprintf("%d", bits/8))
	}

	storage := &Table{
		ID:    "overhead-storage",
		Title: "Checkpoint storage footprints (Section VI-G)",
		Headers: []string{"model", "batch", "max live ckpt (MB)",
			"total activations (MB)", "weights (MB)"},
		Note: "activation footprints reach hundreds of MBs at batch 16; NPU-local DRAM holds tens of contexts",
	}
	for _, m := range dnn.Suite() {
		for _, b := range dnn.BatchSizes {
			inLen, outLen := 0, 0
			if m.IsRNN() {
				inLen = (m.MinInLen + m.MaxInLen) / 2
				pred, err := s.Gen.Library().Predictor(m.SeqProfile)
				if err != nil {
					return nil, err
				}
				outLen = pred.Regression.Predict(inLen)
			}
			prog, err := s.Gen.Compiler().Compile(m, b, inLen, outLen)
			if err != nil {
				return nil, err
			}
			var totalAct int64
			for _, l := range m.LayersFor(inLen, outLen) {
				totalAct += dnn.Bytes(l.OutputElems(b))
			}
			storage.AddRow(m.Name, fmt.Sprintf("b%02d", b),
				fmt.Sprintf("%.2f", mb(prog.MaxLiveBytes())),
				fmt.Sprintf("%.1f", mb(totalAct)),
				fmt.Sprintf("%.1f", mb(m.TotalWeightBytes(inLen, outLen))))
		}
	}
	return []*Table{sram, storage}, nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// runDeterminism regenerates the three-part characterization behind the
// prediction model (Section V-B): GPU kernel latency variation stays
// within ~4% of the mean, Cloud TPUv2 within ~0.2% standard deviation,
// and a sparsity-optimized SCNN within 14% (average ~6%) despite
// input-dependent activation sparsity.
func runDeterminism(s *Suite) ([]*Table, error) {
	gpu := &Table{
		ID:      "determinism-gpu",
		Title:   "Profiled per-layer latency variation across 1000 runs (50 layer configs)",
		Headers: []string{"device", "max deviation %", "avg stddev %"},
		Note:    "GPUs: measured latency always within ~4% of the average; TPUv2 ~0.2% stddev",
	}
	devices := profileDevices()
	for _, d := range devices {
		layers := profileLayerConfigs(50)
		if d.Name == "CloudTPUv2" {
			layers = profileLayerConfigs(100)
		}
		var maxDev, sumStd float64
		for i, l := range layers {
			rng := workload.RNGFor(s.Seed^0xDE7, i+hash8(d.Name))
			v := d.Characterize(l, 1, 1000, rng)
			if v.MaxDevFrac > maxDev {
				maxDev = v.MaxDevFrac
			}
			sumStd += v.StdDevFrac
		}
		gpu.AddRow(d.Name,
			fmt.Sprintf("%.2f", maxDev*100),
			fmt.Sprintf("%.2f", sumStd/float64(len(layers))*100))
	}

	sc := &Table{
		ID:      "determinism-scnn",
		Title:   "SCNN-style sparse accelerator latency variation (500 inferences, pruned CNNs)",
		Headers: []string{"model", "mean (ms @1GHz)", "max deviation %", "avg deviation %"},
		Note:    "execution time never deviated more than ~14% (average ~6%) from the mean",
	}
	scfg := scnn.DefaultConfig()
	for _, name := range []string{"CNN-AN", "CNN-GN", "CNN-VN"} {
		m, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		rng := workload.RNGFor(s.Seed^0x5C22, hash8(name))
		mean, maxDev, avgDev, err := scfg.CharacterizeVariation(m, 1, 500, 0.3, rng)
		if err != nil {
			return nil, err
		}
		sc.AddRow(name,
			fmt.Sprintf("%.3f", mean/1e6),
			fmt.Sprintf("%.1f", maxDev*100),
			fmt.Sprintf("%.1f", avgDev*100))
	}
	return []*Table{gpu, sc}, nil
}
