package exp

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Preemption latency and preempting-task wait time per mechanism",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "STP and preempting-task NTT improvement per mechanism (vs NP-FCFS)",
		Run:   runFig6,
	})
}

// mechPair is the outcome of one two-task preemption trial.
type mechPair struct {
	preemptLatencyUS float64 // Figure 5(a)
	waitUS           float64 // Figure 5(b)
	stpRatio         float64 // Figure 6(a): STP vs NP-FCFS
	nttRatio         float64 // Figure 6(b): preemptor NTT improvement
	ok               bool
}

// runMechTrial executes the Section IV-D methodology once: a low-priority
// task (victim) starts at cycle 0; a high-priority preemptor arrives at a
// uniformly random point of the victim's isolated execution; P-HPF with
// the given static mechanism services the preemption. The same workload
// is also run under NP-FCFS for the Figure 6 normalizations.
func runMechTrial(s *Suite, victim, preemptor *dnn.Model, victimBatch, preBatch int,
	mech string, trial int) (mechPair, error) {

	build := func(salt uint64) ([]*workload.Task, error) {
		rng := workload.RNGFor(s.Seed^salt, trial)
		vt, err := s.Gen.Instance(0, victim, victimBatch, sched.Low, 0, nil, rng)
		if err != nil {
			return nil, err
		}
		// Preemption point uniformly random across the victim's
		// execution (Section IV-D), away from the extreme edges so a
		// preemption is actually possible.
		frac := 0.05 + 0.9*rng.Float64()
		arrival := int64(frac * float64(vt.IsolatedCycles))
		pt, err := s.Gen.Instance(1, preemptor, preBatch, sched.High, arrival, nil, rng)
		if err != nil {
			return nil, err
		}
		return []*workload.Task{vt, pt}, nil
	}

	runWith := func(cfg SchedulerConfig, tasks []*workload.Task) (*sim.Result, error) {
		policy, err := sched.ByName(cfg.Policy, s.Sched)
		if err != nil {
			return nil, err
		}
		var sel sched.MechanismSelector
		if cfg.Selector != "" {
			if sel, err = sched.SelectorByName(cfg.Selector); err != nil {
				return nil, err
			}
		}
		simulator, err := sim.New(sim.Options{
			NPU: s.NPU, Sched: s.Sched, Policy: policy,
			Preemptive: cfg.Preemptive, Selector: sel,
		}, workload.SchedTasks(tasks))
		if err != nil {
			return nil, err
		}
		return simulator.Run()
	}

	const salt = 0xF5F6
	baseTasks, err := build(salt)
	if err != nil {
		return mechPair{}, err
	}
	baseRes, err := runWith(NP("FCFS"), baseTasks)
	if err != nil {
		return mechPair{}, err
	}
	mechTasks, err := build(salt)
	if err != nil {
		return mechPair{}, err
	}
	cfg := SchedulerConfig{Label: "P-HPF/" + mech, Policy: "HPF",
		Preemptive: true, Selector: "static-" + mech}
	mechRes, err := runWith(cfg, mechTasks)
	if err != nil {
		return mechPair{}, err
	}

	var out mechPair
	// The preemptor is task ID 1 in both runs.
	var basePre, mechPre *sched.Task
	for _, t := range baseRes.Tasks {
		if t.ID == 1 {
			basePre = t
		}
	}
	for _, t := range mechRes.Tasks {
		if t.ID == 1 {
			mechPre = t
		}
	}
	if basePre == nil || mechPre == nil {
		return mechPair{}, fmt.Errorf("exp: preemptor task missing from results")
	}

	// Figure 5(a): the first serviced preemption's latency. DRAIN runs
	// record a zero-latency event; trials where the preemptor arrived
	// while the NPU was already free produce no event and are skipped
	// for the latency average (no preemption happened).
	found := false
	for _, ev := range mechRes.Preemptions {
		if ev.Preempting == 1 {
			out.preemptLatencyUS = s.NPU.Micros(ev.Cost.Latency())
			found = true
			break
		}
	}
	out.ok = found
	out.waitUS = s.NPU.Micros(mechPre.Start - mechPre.Arrival)

	baseM, err := metrics.FromTasks(baseRes.Tasks)
	if err != nil {
		return mechPair{}, err
	}
	mechM, err := metrics.FromTasks(mechRes.Tasks)
	if err != nil {
		return mechPair{}, err
	}
	out.stpRatio = mechM.STP / baseM.STP
	out.nttRatio = basePre.NTT() / mechPre.NTT()
	return out, nil
}

var mechNames = []string{"kill", "checkpoint", "drain"}

// mechJob is one flattened (victim x preemptor x mechanism x trial)
// two-task preemption trial.
type mechJob struct {
	victim, pre *dnn.Model
	vb, pb      int
	mech        string
	trial       int
}

// mechIndex flattens an (outer-model, batch, mechanism, trial) tuple into
// a job-list index. Figure 5/6 job construction and result consumption
// both address through it, so the pairing cannot drift.
func mechIndex(nb, nm, trials, oi, bi, mi, trial int) int {
	return ((oi*nb+bi)*nm+mi)*trials + trial
}

// runMechTrials fans the trials out through the engine; results come back
// index-aligned with jobs so reductions preserve sequential order.
func runMechTrials(s *Suite, jobs []mechJob) ([]mechPair, error) {
	out := make([]mechPair, len(jobs))
	err := s.ForEach(len(jobs), func(i int) error {
		j := jobs[i]
		p, err := runMechTrial(s, j.victim, j.pre, j.vb, j.pb, j.mech, j.trial)
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	return out, err
}

// runFig5 regenerates Figure 5: x-axis is the preempted (victim) model
// and batch size; the preemptor is drawn randomly per trial.
func runFig5(s *Suite) ([]*Table, error) {
	const trials = 12
	suite := dnn.Suite()

	lat := &Table{ID: "fig5a", Title: "Preemption latency (us) by preempted model x batch",
		Headers: []string{"preempted", "batch", "KILL", "CHECKPOINT", "DRAIN"},
		Note:    "KILL ~0; CHECKPOINT avg ~12us (worst ~59us with 8MB checkpointed); DRAIN 0"}
	wait := &Table{ID: "fig5b", Title: "Preempting task wait time (us) by preempted model x batch",
		Headers: []string{"preempted", "batch", "KILL", "CHECKPOINT", "DRAIN"},
		Note:    "KILL/CHECKPOINT near zero vs inference time; DRAIN avg ~5.3ms (5300us)"}

	sums := map[string][2]float64{} // mech -> [latency sum, wait sum] for the Avg row
	counts := map[string][2]float64{}

	// Flatten every (victim x batch x mechanism x trial) into one job
	// list — the preemptor draw depends only on (trial, batch), exactly
	// as in the sequential methodology — and fan it out. Construction
	// and consumption share mechIndex, so results cannot drift out of
	// alignment with their (victim, batch, mechanism) row.
	nb, nm := len(dnn.BatchSizes), len(mechNames)
	jobs := make([]mechJob, len(suite)*nb*nm*trials)
	for vi, victim := range suite {
		for bi, b := range dnn.BatchSizes {
			for mi, mech := range mechNames {
				for trial := 0; trial < trials; trial++ {
					rng := workload.RNGFor(s.Seed^0xABCD, trial*131+b)
					pre := suite[rng.IntN(len(suite))]
					preB := dnn.BatchSizes[rng.IntN(len(dnn.BatchSizes))]
					jobs[mechIndex(nb, nm, trials, vi, bi, mi, trial)] = mechJob{
						victim: victim, pre: pre,
						vb: b, pb: preB, mech: mech, trial: trial}
				}
			}
		}
	}
	pairs, err := runMechTrials(s, jobs)
	if err != nil {
		return nil, err
	}

	for vi, victim := range suite {
		for bi, b := range dnn.BatchSizes {
			latRow := []string{victim.Name, fmt.Sprintf("b%02d", b)}
			waitRow := []string{victim.Name, fmt.Sprintf("b%02d", b)}
			for mi, mech := range mechNames {
				var latSum, waitSum float64
				var latN, waitN int
				for trial := 0; trial < trials; trial++ {
					p := pairs[mechIndex(nb, nm, trials, vi, bi, mi, trial)]
					if p.ok {
						latSum += p.preemptLatencyUS
						latN++
					}
					waitSum += p.waitUS
					waitN++
				}
				avgLat, avgWait := 0.0, 0.0
				if latN > 0 {
					avgLat = latSum / float64(latN)
				}
				if waitN > 0 {
					avgWait = waitSum / float64(waitN)
				}
				latRow = append(latRow, fmt.Sprintf("%.2f", avgLat))
				waitRow = append(waitRow, fmt.Sprintf("%.1f", avgWait))
				sl := sums[mech]
				cl := counts[mech]
				sl[0] += avgLat
				sl[1] += avgWait
				cl[0]++
				cl[1]++
				sums[mech] = sl
				counts[mech] = cl
			}
			lat.Rows = append(lat.Rows, latRow)
			wait.Rows = append(wait.Rows, waitRow)
		}
	}
	latAvg := []string{"Avg", ""}
	waitAvg := []string{"Avg", ""}
	for _, mech := range mechNames {
		latAvg = append(latAvg, fmt.Sprintf("%.2f", sums[mech][0]/counts[mech][0]))
		waitAvg = append(waitAvg, fmt.Sprintf("%.1f", sums[mech][1]/counts[mech][1]))
	}
	lat.Rows = append(lat.Rows, latAvg)
	wait.Rows = append(wait.Rows, waitAvg)
	return []*Table{lat, wait}, nil
}

// runFig6 regenerates Figure 6: x-axis is the preempting model and batch;
// the victim is drawn randomly per trial.
func runFig6(s *Suite) ([]*Table, error) {
	const trials = 12
	suite := dnn.Suite()

	stp := &Table{ID: "fig6a", Title: "STP vs NP-FCFS by preempting model x batch",
		Headers: []string{"preempting", "batch", "KILL", "CHECKPOINT", "DRAIN"},
		Note:    "KILL degrades STP more than CHECKPOINT; short preemptors benefit"}
	ntt := &Table{ID: "fig6b", Title: "Preempting task NTT improvement vs NP-FCFS",
		Headers: []string{"preempting", "batch", "KILL", "CHECKPOINT", "DRAIN"},
		Note:    "KILL avg ~3.08x, CHECKPOINT avg ~3.06x NTT improvement"}

	sums := map[string][2]float64{}
	var rows float64

	// Flatten (preemptor x batch x mechanism x trial) and fan out; the
	// victim draw depends only on (trial, batch) as in the sequential
	// methodology. mechIndex keys both construction and consumption.
	nb, nm := len(dnn.BatchSizes), len(mechNames)
	jobs := make([]mechJob, len(suite)*nb*nm*trials)
	for pi, pre := range suite {
		for bi, b := range dnn.BatchSizes {
			for mi, mech := range mechNames {
				for trial := 0; trial < trials; trial++ {
					rng := workload.RNGFor(s.Seed^0xDCBA, trial*137+b)
					victim := suite[rng.IntN(len(suite))]
					vb := dnn.BatchSizes[rng.IntN(len(dnn.BatchSizes))]
					jobs[mechIndex(nb, nm, trials, pi, bi, mi, trial)] = mechJob{
						victim: victim, pre: pre,
						vb: vb, pb: b, mech: mech, trial: trial}
				}
			}
		}
	}
	pairs, err := runMechTrials(s, jobs)
	if err != nil {
		return nil, err
	}

	for pi, pre := range suite {
		for bi, b := range dnn.BatchSizes {
			stpRow := []string{pre.Name, fmt.Sprintf("b%02d", b)}
			nttRow := []string{pre.Name, fmt.Sprintf("b%02d", b)}
			for mi, mech := range mechNames {
				var stpSum, nttSum float64
				for trial := 0; trial < trials; trial++ {
					p := pairs[mechIndex(nb, nm, trials, pi, bi, mi, trial)]
					stpSum += p.stpRatio
					nttSum += p.nttRatio
				}
				stpRow = append(stpRow, fmt.Sprintf("%.2f", stpSum/float64(trials)))
				nttRow = append(nttRow, fmt.Sprintf("%.2f", nttSum/float64(trials)))
				sl := sums[mech]
				sl[0] += stpSum / float64(trials)
				sl[1] += nttSum / float64(trials)
				sums[mech] = sl
			}
			rows++
			stp.Rows = append(stp.Rows, stpRow)
			ntt.Rows = append(ntt.Rows, nttRow)
		}
	}
	stpAvg := []string{"Avg", ""}
	nttAvg := []string{"Avg", ""}
	for _, mech := range mechNames {
		stpAvg = append(stpAvg, fmt.Sprintf("%.2f", sums[mech][0]/rows))
		nttAvg = append(nttAvg, fmt.Sprintf("%.2f", sums[mech][1]/rows))
	}
	stp.Rows = append(stp.Rows, stpAvg)
	ntt.Rows = append(ntt.Rows, nttAvg)
	return []*Table{stp, ntt}, nil
}
