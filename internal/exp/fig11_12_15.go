package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Non-preemptive scheduling policies: ANTT, fairness, STP vs NP-FCFS",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Preemptive policies, static CHECKPOINT vs dynamic (Algorithm 3), vs NP-FCFS",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Sensitivity to CHECKPOINT vs KILL across static/dynamic configurations",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "oracle",
		Title: "PREMA's predictor vs an oracle with exact execution times (Section VI-D)",
		Run:   runOracle,
	})
}

// policyComparison runs a list of scheduler configurations over identical
// workloads — all (configuration x run) pairs fanned out through the
// engine — and tabulates ANTT/fairness/STP improvements versus the first
// configuration (the baseline).
func policyComparison(s *Suite, id, title, note string, cfgs []SchedulerConfig,
	spec workload.Spec) (*Table, []*MultiResult, error) {

	results, err := s.RunConfigs(cfgs, spec, s.Runs)
	if err != nil {
		return nil, nil, err
	}
	base := results[0].Agg
	t := &Table{
		ID:    id,
		Title: title,
		Headers: []string{"scheduler", "ANTT", "fairness", "STP",
			"ANTT imp.", "fairness imp.", "STP imp."},
		Note: note,
	}
	for _, r := range results {
		imp := metrics.Relative(r.Agg, base)
		t.AddRow(r.Config.Label,
			fmt.Sprintf("%.2f", r.Agg.ANTT),
			fmt.Sprintf("%.3f", r.Agg.Fairness),
			fmt.Sprintf("%.2f", r.Agg.STP),
			fmt.Sprintf("%.2fx", imp.ANTT),
			fmt.Sprintf("%.2fx", imp.Fairness),
			fmt.Sprintf("%.2fx", imp.STP))
	}
	return t, results, nil
}

// runFig11 regenerates Figure 11: the six schedulers on a non-preemptive
// NPU, isolating the value of the prediction model from preemption.
func runFig11(s *Suite) ([]*Table, error) {
	cfgs := []SchedulerConfig{
		NP("FCFS"), NP("RRB"), NP("HPF"), NP("TOKEN"), NP("SJF"), NP("PREMA"),
	}
	t, _, err := policyComparison(s, "fig11",
		"Non-preemptive schedulers (TOKEN/SJF/PREMA use the predictor)",
		"SJF achieves the best ANTT; PREMA reaches ~92% of SJF's ANTT while keeping fairness",
		cfgs, workload.Spec{Tasks: 8})
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// runFig12 regenerates Figure 12: preemption-enabled policies with the
// mechanism statically fixed to CHECKPOINT versus dynamically selected by
// Algorithm 3, all normalized to NP-FCFS.
func runFig12(s *Suite) ([]*Table, error) {
	cfgs := []SchedulerConfig{
		NP("FCFS"),
		StaticCkpt("HPF"), StaticCkpt("TOKEN"), StaticCkpt("SJF"), StaticCkpt("PREMA"),
		DynamicCkpt("HPF"), DynamicCkpt("TOKEN"), DynamicCkpt("SJF"), DynamicCkpt("PREMA"),
	}
	t, _, err := policyComparison(s, "fig12",
		"Preemptive static-CHECKPOINT vs dynamic (Algorithm 3), normalized to NP-FCFS",
		"PREMA + dynamic achieves ~7.8x ANTT, ~19.6x fairness, ~1.4x STP over NP-FCFS",
		cfgs, workload.Spec{Tasks: 8})
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// runFig15 regenerates Figure 15: the same configurations as Figure 12
// but with KILL as the saving mechanism, demonstrating CHECKPOINT's
// superior robustness.
func runFig15(s *Suite) ([]*Table, error) {
	cfgs := []SchedulerConfig{
		NP("FCFS"),
		StaticKill("HPF"), StaticKill("TOKEN"), StaticKill("SJF"), StaticKill("PREMA"),
		StaticCkpt("HPF"), StaticCkpt("TOKEN"), StaticCkpt("SJF"), StaticCkpt("PREMA"),
		DynamicKill("HPF"), DynamicKill("TOKEN"), DynamicKill("SJF"), DynamicKill("PREMA"),
		DynamicCkpt("HPF"), DynamicCkpt("TOKEN"), DynamicCkpt("SJF"), DynamicCkpt("PREMA"),
	}
	t, results, err := policyComparison(s, "fig15",
		"KILL vs CHECKPOINT sensitivity (normalized to NP-FCFS)",
		"CHECKPOINT achieves ~87%/24%/77% better ANTT/STP/fairness than KILL on average",
		cfgs, workload.Spec{Tasks: 8})
	if err != nil {
		return nil, err
	}
	// Summarize the KILL vs CHECKPOINT gap across the matched pairs.
	byLabel := map[string]*MultiResult{}
	for _, r := range results {
		byLabel[r.Config.Label] = r
	}
	var dANTT, dSTP, dFair float64
	var n float64
	for _, pol := range []string{"HPF", "TOKEN", "SJF", "PREMA"} {
		for _, pair := range [][2]string{
			{"Static-" + pol, "StaticKill-" + pol},
			{"Dynamic-" + pol, "DynamicKill-" + pol},
		} {
			ck, ki := byLabel[pair[0]], byLabel[pair[1]]
			if ck == nil || ki == nil {
				continue
			}
			dANTT += ki.Agg.ANTT / ck.Agg.ANTT
			dSTP += ck.Agg.STP / ki.Agg.STP
			dFair += ck.Agg.Fairness / ki.Agg.Fairness
			n++
		}
	}
	if n > 0 {
		t.Note += fmt.Sprintf("; measured CHECKPOINT/KILL: ANTT %.0f%%, STP %.0f%%, fairness %.0f%% better",
			(dANTT/n-1)*100, (dSTP/n-1)*100, (dFair/n-1)*100)
	}
	return []*Table{t}, nil
}

// runOracle regenerates the Section VI-D comparison: Dynamic-PREMA with
// the Algorithm 1 predictor versus an oracular PREMA fed exact execution
// times.
func runOracle(s *Suite) ([]*Table, error) {
	spec := workload.Spec{Tasks: 8}
	predicted, err := s.RunConfigs([]SchedulerConfig{NP("FCFS"), DynamicCkpt("PREMA")}, spec, s.Runs)
	if err != nil {
		return nil, err
	}
	base, pred := predicted[0], predicted[1]
	oracleSpec := spec
	oracleSpec.Estimator = workload.Oracle()
	oracle, err := s.RunMulti(DynamicCkpt("PREMA"), oracleSpec, s.Runs)
	if err != nil {
		return nil, err
	}

	slaAt := func(r *MultiResult, target float64) float64 {
		return metrics.SLAViolationRate(r.Tasks, target)
	}
	t := &Table{
		ID:    "oracle",
		Title: "PREMA (predicted lengths) vs oracular PREMA (exact lengths)",
		Headers: []string{"configuration", "ANTT", "STP", "fairness",
			"SLA viol.@4x", "SLA viol.@8x"},
		Note: "predicted PREMA reaches ~99% of oracle's STP/ANTT/SLA",
	}
	for _, row := range []struct {
		label string
		r     *MultiResult
	}{
		{"NP-FCFS", base},
		{"Dynamic-PREMA (predictor)", pred},
		{"Dynamic-PREMA (oracle)", oracle},
	} {
		t.AddRow(row.label,
			fmt.Sprintf("%.2f", row.r.Agg.ANTT),
			fmt.Sprintf("%.2f", row.r.Agg.STP),
			fmt.Sprintf("%.3f", row.r.Agg.Fairness),
			fmt.Sprintf("%.1f%%", slaAt(row.r, 4)*100),
			fmt.Sprintf("%.1f%%", slaAt(row.r, 8)*100))
	}
	t.AddRow("predictor/oracle ratio",
		fmt.Sprintf("%.1f%%", oracle.Agg.ANTT/pred.Agg.ANTT*100),
		fmt.Sprintf("%.1f%%", pred.Agg.STP/oracle.Agg.STP*100),
		fmt.Sprintf("%.1f%%", pred.Agg.Fairness/oracle.Agg.Fairness*100),
		"", "")
	return []*Table{t}, nil
}
