package exp

import (
	"fmt"
	"math"
	"repro/internal/stats"

	"repro/internal/dnn"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "SLA violation rate as a function of SLA target and policy",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "95th-percentile tail latency of high-priority tasks (batch 1)",
		Run:   runFig14,
	})
}

// fig13Policies are the nine configurations of Figure 13.
func fig13Policies() []SchedulerConfig {
	return []SchedulerConfig{
		NP("FCFS"), NP("HPF"), NP("PREMA"),
		StaticCkpt("HPF"), StaticCkpt("SJF"), StaticCkpt("PREMA"),
		DynamicCkpt("HPF"), DynamicCkpt("SJF"), DynamicCkpt("PREMA"),
	}
}

// runFig13 regenerates Figure 13: the fraction of SLA-violated tasks
// across all inference requests as the SLA target N (multiples of
// Time_isolated) sweeps from 2 to 20.
func runFig13(s *Suite) ([]*Table, error) {
	targets := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	headers := []string{"SLA target (xTime_isolated)"}
	cfgs := fig13Policies()
	for _, c := range cfgs {
		headers = append(headers, c.Label)
	}
	t := &Table{
		ID:      "fig13",
		Title:   "SLA violation rate (%) for all tasks vs SLA target",
		Headers: headers,
		Note:    "PREMA stays below 10% beyond N=4 (NP-FCFS: ~36% at tight targets); monotonically decreasing",
	}
	results, err := s.RunConfigs(cfgs, workload.Spec{Tasks: 8}, s.Runs)
	if err != nil {
		return nil, err
	}
	for _, target := range targets {
		row := []string{fmt.Sprintf("%.0f", target)}
		for _, r := range results {
			rate := metrics.SLAViolationRate(r.Tasks, target)
			row = append(row, fmt.Sprintf("%.1f", rate*100))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// runFig14 regenerates Figure 14: for each benchmark, a high-priority
// batch-1 probe task co-scheduled with 7 random competitor tasks; the
// 95th-percentile turnaround of the probe is compared across Isolated,
// NP-FCFS, preemptive SJF and PREMA.
func runFig14(s *Suite) ([]*Table, error) {
	cfgs := []SchedulerConfig{
		NP("FCFS"),
		StaticCkpt("SJF"),
		DynamicCkpt("PREMA"),
	}
	const runs = 40 // tail percentiles need more samples than mean metrics

	t := &Table{
		ID:    "fig14",
		Title: "95%-ile latency (ms) of high-priority tasks, batch 1",
		Headers: []string{"model", "Isolated", "NP-FCFS", "P-SJF", "PREMA",
			"FCFS/iso", "PREMA/iso"},
		Note: "NP-FCFS up to 85x (avg 21x) over isolated; PREMA ~1.4x isolated on average",
	}

	var sumFCFS, sumPREMA float64
	var nModels float64
	for _, m := range dnn.Suite() {
		// Isolated 95th percentile: the probe's isolated time varies
		// only for RNNs (sampled lengths), so measure it over many
		// instances.
		var isoSamples []float64
		for r := 0; r < runs; r++ {
			rng := workload.RNGFor(s.Seed^0xF14, r*1000+hash8(m.Name))
			probe, err := s.Gen.Instance(0, m, 1, sched.High, 0, nil, rng)
			if err != nil {
				return nil, err
			}
			isoSamples = append(isoSamples, float64(probe.IsolatedCycles))
		}
		iso := percentile95(isoSamples)

		// Fan every (configuration x run) probe simulation out through
		// the engine; turns is index-addressed so the per-configuration
		// turnaround series keeps its sequential run order.
		turns := make([]float64, len(cfgs)*runs)
		err := s.ForEach(len(turns), func(i int) error {
			cfg, r := cfgs[i/runs], i%runs
			policy, err := sched.ByName(cfg.Policy, s.Sched)
			if err != nil {
				return err
			}
			var sel sched.MechanismSelector
			if cfg.Selector != "" {
				if sel, err = sched.SelectorByName(cfg.Selector); err != nil {
					return err
				}
			}
			rng := workload.RNGFor(s.Seed^0xF14, r*1000+hash8(m.Name))
			// Probe first so its instance sampling matches the
			// isolated measurement exactly.
			probe, err := s.Gen.Instance(0, m, 1, sched.High, 0, nil, rng)
			if err != nil {
				return err
			}
			spec := workload.Spec{Tasks: 7, BatchSizes: []int{1}}
			competitors, err := s.Gen.Generate(spec, rng)
			if err != nil {
				return err
			}
			// Re-identify the probe so IDs stay unique; it
			// arrives mid-window to experience queueing.
			probe.Task.ID = 100
			probe.Task.Arrival = rng.Int64N(int64(10e-3 * s.NPU.FreqHz))
			all := append(workload.SchedTasks(competitors), probe.Task)
			simulator, err := sim.New(sim.Options{
				NPU: s.NPU, Sched: s.Sched, Policy: policy,
				Preemptive: cfg.Preemptive, Selector: sel,
			}, all)
			if err != nil {
				return err
			}
			res, err := simulator.Run()
			if err != nil {
				return err
			}
			for _, task := range res.Tasks {
				if task.ID == 100 {
					turns[i] = float64(task.Turnaround())
					return nil
				}
			}
			return fmt.Errorf("fig14: probe task missing from %s run %d", cfg.Label, r)
		})
		if err != nil {
			return nil, err
		}
		tails := make([]float64, len(cfgs))
		for ci := range cfgs {
			tails[ci] = percentile95(turns[ci*runs : (ci+1)*runs])
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%.2f", s.NPU.Millis(int64(iso))),
			fmt.Sprintf("%.2f", s.NPU.Millis(int64(tails[0]))),
			fmt.Sprintf("%.2f", s.NPU.Millis(int64(tails[1]))),
			fmt.Sprintf("%.2f", s.NPU.Millis(int64(tails[2]))),
			fmt.Sprintf("%.1fx", tails[0]/iso),
			fmt.Sprintf("%.1fx", tails[2]/iso))
		sumFCFS += tails[0] / iso
		sumPREMA += tails[2] / iso
		nModels++
	}
	t.AddRow("Average", "", "", "", "",
		fmt.Sprintf("%.1fx", sumFCFS/nModels),
		fmt.Sprintf("%.1fx", sumPREMA/nModels))
	return []*Table{t}, nil
}

func percentile95(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Percentile(xs, 95)
}

func hash8(s string) int {
	h := 0
	for i := 0; i < len(s); i++ {
		h = h*31 + int(s[i])
	}
	if h < 0 {
		h = -h
	}
	return h % 997
}
