package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file registers the experiments that extend the paper: the
// system-node level it scopes out as future work (Section II-C), the
// restart-granularity ablation its footnote 2 permits, and the explicit
// energy accounting behind the Section VI-F argument.

func init() {
	register(Experiment{
		ID:    "cluster",
		Title: "Multi-NPU system node: routing policies x local schedulers (paper future work)",
		Run:   runCluster,
	})
	register(Experiment{
		ID:    "killgranularity",
		Title: "Ablation: KILL restart-from-scratch vs restart-from-layer (footnote 2)",
		Run:   runKillGranularity,
	})
	register(Experiment{
		ID:    "energy",
		Title: "Energy accounting per scheduler (Section VI-F argument quantified)",
		Run:   runEnergy,
	})
}

// clusterLocal is one NPU-local scheduler configuration of the cluster
// sweep.
type clusterLocal struct {
	label      string
	policy     string
	preemptive bool
}

// clusterCell is one (node size x routing policy x local scheduler) cell
// of the cluster sweep.
type clusterCell struct {
	npus    int
	routing cluster.RoutingPolicy
	local   clusterLocal
}

// runCluster sweeps NPU counts, routing policies, and local schedulers
// over a fixed 32-task offered load. The whole (cell x run) cross product
// is flattened into one engine job list — there is no sequential outer
// loop over node sizes or routers — and reduced per cell in run order
// afterwards, so output stays byte-identical to a sequential sweep.
func runCluster(s *Suite) ([]*Table, error) {
	const (
		tasks = 32
		runs  = 10
	)
	t := &Table{
		ID:    "cluster",
		Title: "32-task node: ANTT / STP / SLA@4x by NPUs, router, local scheduler",
		Headers: []string{"NPUs", "router", "local scheduler", "ANTT", "STP",
			"SLA viol.@4x", "preemptions/run"},
		Note: "beyond-paper extension: the Algorithm 1 predictor also powers work-balanced routing",
	}
	locals := []clusterLocal{
		{"NP-FCFS", "FCFS", false},
		{"Dynamic-PREMA", "PREMA", true},
	}
	var cells []clusterCell
	for _, npus := range []int{1, 2, 4} {
		for _, routing := range []cluster.RoutingPolicy{cluster.RoundRobin, cluster.LeastQueued, cluster.LeastWork} {
			if npus == 1 && routing != cluster.RoundRobin {
				continue // routing is moot on a single NPU
			}
			for _, local := range locals {
				cells = append(cells, clusterCell{npus: npus, routing: routing, local: local})
			}
		}
	}

	// One flattened job list: every node-level simulation of every cell
	// is visible to the worker pool at once. The r-th run of every cell
	// regenerates the identical workload (same RNG stream), so cells are
	// compared on the same task mixes; each cluster.Run stays sequential
	// internally (Parallel unset) because the engine already saturates
	// the pool across cells.
	results := make([]*cluster.Result, len(cells)*runs)
	err := s.ForEach(len(results), func(i int) error {
		cell, r := cells[i/runs], i%runs
		rng := workload.RNGFor(s.Seed^0xC105, r)
		ts, err := s.Gen.Generate(workload.Spec{Tasks: tasks}, rng)
		if err != nil {
			return err
		}
		res, err := cluster.Run(cluster.Options{
			NPUs: cell.npus, Routing: cell.routing,
			NPU: s.NPU, Sched: s.Sched,
			LocalPolicy: cell.local.policy, Preemptive: cell.local.preemptive,
			Selector: "dynamic",
		}, ts)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ci, cell := range cells {
		var antt, stp, sla, preempts float64
		for r := 0; r < runs; r++ {
			res := results[ci*runs+r]
			antt += res.Metrics.ANTT / runs
			stp += res.Metrics.STP / runs
			sla += metrics.SLAViolationRate(res.Tasks, 4) / runs
			preempts += float64(res.Preemptions) / runs
		}
		t.AddRow(fmt.Sprintf("%d", cell.npus), cell.routing.String(), cell.local.label,
			fmt.Sprintf("%.2f", antt),
			fmt.Sprintf("%.2f", stp),
			fmt.Sprintf("%.1f%%", sla*100),
			fmt.Sprintf("%.1f", preempts))
	}
	return []*Table{t}, nil
}

// runKillGranularity compares the three restart granularities under a
// preemptive HPF scheduler: CHECKPOINT (no re-execution), KILL_LAYER
// (re-execute the in-flight layer), KILL (re-execute from scratch).
func runKillGranularity(s *Suite) ([]*Table, error) {
	t := &Table{
		ID:    "killgranularity",
		Title: "Restart granularity under preemptive scheduling (vs NP-FCFS)",
		Headers: []string{"mechanism", "ANTT imp.", "fairness imp.", "STP imp.",
			"wasted cycles/run (M)"},
		Note: "footnote 2: tile/layer-boundary preemption points allow cheaper kills",
	}
	mechs := []string{"static-checkpoint", "static-kill-layer", "static-kill"}
	cfgs := []SchedulerConfig{NP("FCFS")}
	for _, mech := range mechs {
		cfgs = append(cfgs, SchedulerConfig{Label: "P-PREMA/" + mech, Policy: "PREMA",
			Preemptive: true, Selector: mech})
	}
	// One engine batch covers the baseline and all three granularities.
	results, err := s.RunConfigs(cfgs, workload.Spec{Tasks: 8}, s.Runs)
	if err != nil {
		return nil, err
	}
	base := results[0]
	for i, mech := range mechs {
		res := results[i+1]
		imp := metrics.Relative(res.Agg, base.Agg)
		var wasted float64
		for _, task := range res.Tasks {
			wasted += float64(task.WastedCycles)
		}
		wasted /= float64(s.Runs)
		t.AddRow(mech,
			fmt.Sprintf("%.2fx", imp.ANTT),
			fmt.Sprintf("%.2fx", imp.Fairness),
			fmt.Sprintf("%.2fx", imp.STP),
			fmt.Sprintf("%.1f", wasted/1e6))
	}
	return []*Table{t}, nil
}

// runEnergy quantifies the Section VI-F argument: total energy per
// scheduler over identical workloads, decomposed into compute, memory,
// static, checkpoint and wasted-work terms.
func runEnergy(s *Suite) ([]*Table, error) {
	model := energy.Default()
	t := &Table{
		ID:    "energy",
		Title: "Energy per 8-task workload (J), averaged over runs",
		Headers: []string{"scheduler", "compute", "DRAM", "SRAM", "static",
			"checkpoint", "wasted", "total", "vs NP-FCFS"},
		Note: "PREMA's checkpoint energy is negligible; KILL pays for re-executed work",
	}
	cfgs := []SchedulerConfig{
		NP("FCFS"),
		DynamicCkpt("PREMA"),
		StaticKill("PREMA"),
	}
	var baseTotal float64
	for i, cfg := range cfgs {
		const runs = 10
		// Fan the runs out through the engine (fresh policy/selector
		// per run), then reduce the breakdowns in run order.
		perRun := make([]energy.Breakdown, runs)
		err := s.ForEach(runs, func(r int) error {
			policy, err := sched.ByName(cfg.Policy, s.Sched)
			if err != nil {
				return err
			}
			var selector sched.MechanismSelector
			if cfg.Selector != "" {
				if selector, err = sched.SelectorByName(cfg.Selector); err != nil {
					return err
				}
			}
			rng := workload.RNGFor(s.Seed^0xE6E, r)
			tasks, err := s.Gen.Generate(workload.Spec{Tasks: 8}, rng)
			if err != nil {
				return err
			}
			simulator, err := sim.New(sim.Options{
				NPU: s.NPU, Sched: s.Sched, Policy: policy,
				Preemptive: cfg.Preemptive, Selector: selector,
			}, workload.SchedTasks(tasks))
			if err != nil {
				return err
			}
			res, err := simulator.Run()
			if err != nil {
				return err
			}
			var costs []preempt.Cost
			for _, ev := range res.Preemptions {
				costs = append(costs, ev.Cost)
			}
			perRun[r] = model.Run(s.NPU, res.Tasks, costs, res.Cycles)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var sum energy.Breakdown
		for _, b := range perRun {
			sum.ComputeJ += b.ComputeJ / runs
			sum.SRAMJ += b.SRAMJ / runs
			sum.DRAMJ += b.DRAMJ / runs
			sum.StaticJ += b.StaticJ / runs
			sum.CheckpointJ += b.CheckpointJ / runs
			sum.WastedJ += b.WastedJ / runs
		}
		if i == 0 {
			baseTotal = sum.Total()
		}
		t.AddRow(cfg.Label,
			fmt.Sprintf("%.3f", sum.ComputeJ),
			fmt.Sprintf("%.3f", sum.DRAMJ),
			fmt.Sprintf("%.3f", sum.SRAMJ),
			fmt.Sprintf("%.3f", sum.StaticJ),
			fmt.Sprintf("%.4f", sum.CheckpointJ),
			fmt.Sprintf("%.4f", sum.WastedJ),
			fmt.Sprintf("%.3f", sum.Total()),
			fmt.Sprintf("%.3fx", sum.Total()/baseTotal))
	}
	return []*Table{t}, nil
}
