package sparsity

import (
	"testing"

	"repro/internal/stats"
)

func TestProfilesExistForCharacterizedModels(t *testing.T) {
	for _, model := range []string{"CNN-VN", "CNN-AN", "CNN-GN"} {
		p, err := ProfileFor(model)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if len(p) == 0 {
			t.Fatalf("%s: empty profile", model)
		}
		for _, lp := range p {
			if lp.MeanDensity <= 0 || lp.MeanDensity > 1 {
				t.Errorf("%s/%s: mean density %v outside (0,1]", model, lp.Layer, lp.MeanDensity)
			}
			if lp.Jitter < 0 || lp.Jitter > 0.2 {
				t.Errorf("%s/%s: jitter %v implausible for Figure 7", model, lp.Layer, lp.Jitter)
			}
		}
	}
	if _, err := ProfileFor("RNN-SA"); err == nil {
		t.Error("RNN models have no density profile")
	}
}

func TestVGGProfileMatchesFigure7Labels(t *testing.T) {
	p := VGGProfile()
	if len(p) != 15 {
		t.Fatalf("VGG profile has %d layers, want 15 (c01..c13, fc1, fc2)", len(p))
	}
	if p[0].Layer != "c01" || p[12].Layer != "c13" || p[13].Layer != "fc1" || p[14].Layer != "fc2" {
		t.Error("layer labels do not match Figure 7's x-axis")
	}
	// Qualitative shape: deep conv layers sparser than early ones, FC
	// layers sparsest.
	if p[12].MeanDensity >= p[0].MeanDensity {
		t.Error("density should decline through the network under ReLU")
	}
	if p[13].MeanDensity >= p[2].MeanDensity {
		t.Error("FC layers should be sparser than early convs")
	}
}

func TestSampleBounded(t *testing.T) {
	rng := stats.NewRNG(1, 2)
	lp := LayerProfile{Layer: "x", MeanDensity: 0.5, Jitter: 0.05}
	for i := 0; i < 1000; i++ {
		d := lp.Sample(rng)
		if d < 0.01 || d > 1 {
			t.Fatalf("sampled density %v outside [0.01,1]", d)
		}
	}
}

func TestCharacterizeStability(t *testing.T) {
	// Figure 7's claim: per-layer density varies little across inputs.
	rng := stats.NewRNG(3, 4)
	sums := Characterize(VGGProfile(), 1000, rng)
	profile := VGGProfile()
	for i, s := range sums {
		if s.N != 1000 {
			t.Fatalf("layer %d: %d samples", i, s.N)
		}
		if rel := s.IQR() / s.Mean; rel > 0.15 {
			t.Errorf("layer %s: IQR/mean %.2f too wide for Figure 7", profile[i].Layer, rel)
		}
		if s.Mean < profile[i].MeanDensity*0.9 || s.Mean > profile[i].MeanDensity*1.1 {
			t.Errorf("layer %s: sampled mean %.3f far from profile %.3f",
				profile[i].Layer, s.Mean, profile[i].MeanDensity)
		}
	}
}
