// Package sparsity models per-layer activation density for the
// characterization study of Figure 7 and the SCNN validation of
// Section V-B(3). The paper's empirical finding is that activation
// density — the fraction of non-zero activations a layer emits, which is
// input-data dependent — varies only slightly across inputs at inference
// time, which is one of the two reasons sparsity-optimized NPUs retain
// predictable execution times (the other being that weight sparsity is
// fixed after pruning).
//
// We encode a published-shape density profile per VGG-class layer (deep
// layers grow sparser under ReLU) and a small per-input lognormal jitter,
// so the regenerated Figure 7 shows the same tight per-layer bands.
package sparsity

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/stats"
)

// LayerProfile is the density characterization of one layer.
type LayerProfile struct {
	// Layer is the layer label (c01..c13, fc1..fc2 for VGG).
	Layer string
	// MeanDensity is the average fraction of non-zero output
	// activations across inputs.
	MeanDensity float64
	// Jitter is the relative standard deviation across inputs;
	// Figure 7's bands are narrow, a few percent.
	Jitter float64
}

// Sample draws the activation density for one input.
func (p LayerProfile) Sample(rng *rand.Rand) float64 {
	d := p.MeanDensity * math.Exp(rng.NormFloat64()*p.Jitter)
	return stats.Clamp(d, 0.01, 1.0)
}

// VGGProfile returns the per-layer mean densities for VGGNet matching the
// qualitative shape of Figure 7: early convolutional layers are dense
// (ReLU has pruned little), density declines through the middle of the
// network, and the fully-connected layers are the sparsest.
func VGGProfile() []LayerProfile {
	means := []struct {
		layer string
		mean  float64
	}{
		{"c01", 0.72}, {"c02", 0.85}, {"c03", 0.62}, {"c04", 0.60},
		{"c05", 0.52}, {"c06", 0.48}, {"c07", 0.38}, {"c08", 0.42},
		{"c09", 0.32}, {"c10", 0.22}, {"c11", 0.25}, {"c12", 0.18},
		{"c13", 0.12}, {"fc1", 0.08}, {"fc2", 0.12},
	}
	out := make([]LayerProfile, len(means))
	for i, m := range means {
		out[i] = LayerProfile{Layer: m.layer, MeanDensity: m.mean, Jitter: 0.05}
	}
	return out
}

// AlexNetProfile returns a density profile for AlexNet's conv/fc layers
// (the paper reports similar stability for AlexNet and GoogLeNet).
func AlexNetProfile() []LayerProfile {
	means := []struct {
		layer string
		mean  float64
	}{
		{"conv1", 0.80}, {"conv2", 0.55}, {"conv3", 0.40},
		{"conv4", 0.38}, {"conv5", 0.30}, {"fc6", 0.10},
		{"fc7", 0.15}, {"fc8", 0.30},
	}
	out := make([]LayerProfile, len(means))
	for i, m := range means {
		out[i] = LayerProfile{Layer: m.layer, MeanDensity: m.mean, Jitter: 0.06}
	}
	return out
}

// GoogLeNetProfile returns a coarse density profile over GoogLeNet's
// inception stages.
func GoogLeNetProfile() []LayerProfile {
	means := []struct {
		layer string
		mean  float64
	}{
		{"conv1", 0.75}, {"conv2", 0.60}, {"3a", 0.50}, {"3b", 0.45},
		{"4a", 0.40}, {"4b", 0.38}, {"4c", 0.35}, {"4d", 0.32},
		{"4e", 0.30}, {"5a", 0.25}, {"5b", 0.20}, {"fc", 0.25},
	}
	out := make([]LayerProfile, len(means))
	for i, m := range means {
		out[i] = LayerProfile{Layer: m.layer, MeanDensity: m.mean, Jitter: 0.06}
	}
	return out
}

// ProfileFor returns the density profile for a CNN workload label.
func ProfileFor(model string) ([]LayerProfile, error) {
	switch model {
	case "CNN-VN":
		return VGGProfile(), nil
	case "CNN-AN":
		return AlexNetProfile(), nil
	case "CNN-GN":
		return GoogLeNetProfile(), nil
	default:
		return nil, fmt.Errorf("sparsity: no density profile for %q", model)
	}
}

// Characterize runs n synthetic inferences over a profile and returns the
// per-layer density summaries — one x-position of Figure 7 per layer.
func Characterize(profile []LayerProfile, n int, rng *rand.Rand) []stats.Summary {
	out := make([]stats.Summary, len(profile))
	for i, p := range profile {
		xs := make([]float64, n)
		for j := 0; j < n; j++ {
			xs[j] = p.Sample(rng)
		}
		out[i] = stats.Summarize(xs)
	}
	return out
}
