// Package core assembles the paper's primary contribution — the PREMA
// predictive multi-task scheduler — into one decision engine: the
// token-based scheduling policy (Algorithm 2), the dynamic preemption
// mechanism selection (Algorithm 3), and the inference task context table
// (Figure 4) behind a single Decide call.
//
// The building blocks live in internal/sched (policies, mechanism
// selectors, context table) and internal/preempt (mechanisms); package
// core wires them together the way the paper's Figure 4 block diagram
// does, so an integrator can drive a preemptible NPU with one object:
//
//	engine := core.New(core.Config{})
//	decision := engine.Decide(ready, current, now)
//	if decision.Preempt { ... apply decision.Mechanism ... }
package core

import (
	"repro/internal/preempt"
	"repro/internal/sched"
)

// Config parameterizes the engine.
type Config struct {
	// Sched is the Table II scheduler configuration; zero value uses
	// the defaults.
	Sched sched.Config
	// Saving is the mechanism Algorithm 3 uses when it decides to
	// preempt (CHECKPOINT unless overridden for sensitivity studies).
	Saving preempt.Mechanism
	// DisableDynamic pins the mechanism to Saving instead of running
	// Algorithm 3 (the "static" configurations of Figure 12).
	DisableDynamic bool
}

// Engine is the two-step PREMA scheduler.
type Engine struct {
	cfg      Config
	policy   *sched.PREMA
	selector sched.MechanismSelector
}

// New builds an Engine. The zero Config yields the paper's configuration:
// Table II quanta/tokens, CHECKPOINT saving, Algorithm 3 enabled.
func New(cfg Config) *Engine {
	if cfg.Sched.Quantum == 0 {
		cfg.Sched = sched.DefaultConfig()
	}
	var selector sched.MechanismSelector
	if cfg.DisableDynamic {
		selector = sched.Static{M: cfg.Saving}
	} else {
		selector = sched.Dynamic{Saving: cfg.Saving}
	}
	return &Engine{
		cfg:      cfg,
		policy:   sched.NewPREMA(cfg.Sched),
		selector: selector,
	}
}

// Decision is the engine's verdict for one scheduler wake-up.
type Decision struct {
	// Candidate is the task PREMA wants on the NPU next (nil when the
	// ready queue is empty).
	Candidate *sched.Task
	// Preempt reports whether the running task should be preempted in
	// favor of Candidate.
	Preempt bool
	// Mechanism is how the preemption should be serviced when Preempt
	// is set; Drain means "let the runner finish first".
	Mechanism preempt.Mechanism
}

// Policy exposes the underlying Algorithm 2 policy (for simulators that
// drive policy and mechanism separately).
func (e *Engine) Policy() sched.Policy { return e.policy }

// Selector exposes the underlying mechanism selector.
func (e *Engine) Selector() sched.MechanismSelector { return e.selector }

// UpdateTokens applies Algorithm 2's periodic token grants to the context
// table. Call at every wake-up before Decide.
func (e *Engine) UpdateTokens(tasks []*sched.Task, now int64) {
	sched.UpdateTokens(tasks, now)
}

// Decide runs the two-step procedure of Section V-C: Algorithm 2 picks
// the candidate, and — if the policy recommends displacing the runner —
// Algorithm 3 (or the pinned static mechanism) chooses how.
func (e *Engine) Decide(ready []*sched.Task, current *sched.Task, now int64) Decision {
	if len(ready) == 0 {
		return Decision{}
	}
	d := e.policy.Pick(ready, current, now)
	out := Decision{Candidate: d.Candidate}
	if current == nil {
		return out
	}
	if !d.Preempt || d.Candidate == nil {
		// The runner keeps the NPU: semantically a drain of the
		// current task before the candidate can be considered again.
		out.Mechanism = preempt.Drain
		return out
	}
	out.Mechanism = e.selector.Select(current, d.Candidate)
	out.Preempt = out.Mechanism != preempt.Drain
	return out
}
