package core

import (
	"testing"

	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
)

func makeTask(id int, prio sched.Priority, arrival, total int64) *sched.Task {
	prog := &npu.Program{Model: "synthetic", Batch: 1, TotalCycles: total,
		Instrs: []npu.Instr{{Op: npu.GEMMOp, Cycles: int32(total)}}}
	return sched.NewTask(id, "synthetic", 1, prio, arrival, npu.NewExecution(prog), total)
}

func TestZeroConfigUsesPaperDefaults(t *testing.T) {
	e := New(Config{})
	if e.Policy().Name() != "PREMA" {
		t.Errorf("policy = %s", e.Policy().Name())
	}
	if e.Selector().Name() != "dynamic-CHECKPOINT" {
		t.Errorf("selector = %s", e.Selector().Name())
	}
}

func TestStaticConfiguration(t *testing.T) {
	e := New(Config{DisableDynamic: true, Saving: preempt.Kill})
	if e.Selector().Name() != "static-KILL" {
		t.Errorf("selector = %s", e.Selector().Name())
	}
}

func TestDecideEmptyQueue(t *testing.T) {
	e := New(Config{})
	d := e.Decide(nil, nil, 0)
	if d.Candidate != nil || d.Preempt {
		t.Error("empty queue should decide nothing")
	}
}

func TestDecideDispatchesOnIdleNPU(t *testing.T) {
	e := New(Config{})
	task := makeTask(1, sched.Medium, 0, 1000)
	d := e.Decide([]*sched.Task{task}, nil, 10)
	if d.Candidate != task || d.Preempt {
		t.Errorf("idle dispatch wrong: %+v", d)
	}
}

func TestDecidePreemptsViaCheckpoint(t *testing.T) {
	e := New(Config{})
	long := makeTask(1, sched.Low, 0, 10_000_000)
	long.MarkRunning(0)
	urgent := makeTask(2, sched.High, 100, 20_000)
	d := e.Decide([]*sched.Task{urgent}, long, 200)
	if !d.Preempt || d.Mechanism != preempt.Checkpoint {
		t.Errorf("urgent short task should checkpoint-preempt: %+v", d)
	}
	if d.Candidate != urgent {
		t.Error("candidate should be the urgent task")
	}
}

func TestDecideDrainsNearlyFinishedRunner(t *testing.T) {
	e := New(Config{})
	runner := makeTask(1, sched.Low, 0, 10_000_000)
	runner.MarkRunning(0)
	runner.Exec.Advance(9_990_000) // 10k cycles remaining
	// Candidate with high urgency but long remaining time: Algorithm 3
	// must override with DRAIN, reported as no-preempt.
	cand := makeTask(2, sched.High, 100, 8_000_000)
	d := e.Decide([]*sched.Task{cand}, runner, 200)
	if d.Preempt {
		t.Errorf("nearly-finished runner should drain, got %+v", d)
	}
	if d.Mechanism != preempt.Drain {
		t.Errorf("mechanism = %v, want DRAIN", d.Mechanism)
	}
}

func TestDecideStaticAlwaysUsesSavingMechanism(t *testing.T) {
	e := New(Config{DisableDynamic: true, Saving: preempt.Checkpoint})
	runner := makeTask(1, sched.Low, 0, 10_000_000)
	runner.MarkRunning(0)
	runner.Exec.Advance(9_990_000)
	cand := makeTask(2, sched.High, 100, 8_000_000)
	// The static configuration cannot drain: if the policy recommends
	// the candidate, it checkpoints even a nearly-done runner.
	d := e.Decide([]*sched.Task{cand}, runner, 200)
	if d.Preempt && d.Mechanism != preempt.Checkpoint {
		t.Errorf("static engine must use its pinned mechanism: %+v", d)
	}
}

func TestUpdateTokensDelegates(t *testing.T) {
	e := New(Config{})
	task := makeTask(1, sched.High, 0, 1000)
	e.UpdateTokens([]*sched.Task{task}, 500)
	if task.Token <= sched.High.Tokens() {
		t.Error("waiting task should have gained tokens")
	}
}
