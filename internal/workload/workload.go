// Package workload constructs the multi-tasked DNN workloads of
// Section III: N inference tasks randomly selected among the eight
// benchmark DNNs, dispatched at uniformly random times, each assigned a
// random priority among low/medium/high, with batch sizes drawn from the
// evaluated set. RNN task instances receive a concrete, input-dependent
// unrolled sequence length sampled from the profile-driven
// characterization corpus, while the scheduler sees only the predicted
// length (Section VI's methodology).
package workload

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/seqlen"
	"repro/internal/stats"
)

// Spec parameterizes workload construction.
type Spec struct {
	// Tasks is the number of co-scheduled inference tasks (the paper's
	// evaluation uses 8).
	Tasks int
	// Models is the pool tasks are drawn from; defaults to dnn.Suite().
	Models []*dnn.Model
	// BatchSizes is the batch-size pool; defaults to dnn.BatchSizes.
	// Use a single-element slice for fixed-batch studies (Figure 14).
	BatchSizes []int
	// ArrivalWindow is the dispatch window over which arrival times are
	// drawn uniformly at random; defaults to 20 ms, which produces the
	// heavy contention a consolidated inference server experiences.
	ArrivalWindow time.Duration
	// FixedPriority pins every task to one priority level when
	// non-zero; otherwise priorities are drawn uniformly at random.
	FixedPriority sched.Priority
	// Estimator overrides the latency predictor used to populate
	// EstimatedCycles; nil selects the Algorithm 1 analytic model.
	Estimator Estimator
}

// Estimator abstracts the task-length predictor plugged into the
// generated tasks (analytic, profile-based, oracle, or MAC proxy).
type Estimator interface {
	Estimate(m *dnn.Model, batch, inLen int) (int64, error)
}

// oracleEstimator is resolved by the generator itself since it needs the
// compiled ground truth.
type oracleEstimator struct{}

// Oracle returns an Estimator marker that makes the generator use each
// task's exact simulated execution time as its estimate (Section VI-D).
func Oracle() Estimator { return oracleEstimator{} }

// Estimate implements Estimator; never called (the generator intercepts
// the marker), but present so the interface is satisfied.
func (oracleEstimator) Estimate(*dnn.Model, int, int) (int64, error) {
	return 0, fmt.Errorf("workload: oracle estimator is resolved by the generator")
}

// Task pairs a scheduler context-table entry with its provenance.
type Task struct {
	*sched.Task
	ModelRef                *dnn.Model
	InLen                   int
	ActualOut, PredictedOut int
	Program                 *npu.Program
	// TraceID is the node session's telemetry request ID, stamped at
	// submit time when tracing is attached (serving.NodeConfig.Trace)
	// and carried across stretching and failure re-routes so one
	// request's lifecycle events correlate. Zero when tracing is off.
	TraceID int
	// ModelID is a small generator-local integer naming the task's
	// model, assigned from 1 in first-use order (0 = unknown, for tasks
	// built outside a Generator). The telemetry hot path uses it as an
	// array index to resolve the model's interned name without touching
	// the string; it has no meaning across generators.
	ModelID int
}

// Generator builds workloads against one NPU configuration, compiling
// each sampled task instance and attaching predictor estimates.
//
// A Generator is safe for concurrent use: the compiled-program and
// estimate caches are mutex-guarded, and everything else (compiler,
// profile library, analytic predictor) is immutable after construction.
// The experiment engine shares one Generator across its worker pool.
type Generator struct {
	cfg      npu.Config
	comp     *compiler.Compiler
	lib      *seqlen.Library
	analytic *predictor.Analytic

	// mu guards progCache and estCache. Compilation and estimation run
	// outside the lock; a losing racer adopts the winner's entry so
	// each key resolves to one canonical program.
	mu sync.Mutex
	// progCache memoizes compiled programs by (model, batch, inLen,
	// outLen). Programs are immutable after compilation and every
	// task gets its own Execution cursor, so sharing is safe and
	// makes cross-policy comparisons over identical workloads cheap.
	progCache map[progKey]*npu.Program
	// estCache memoizes analytic estimates by the same key shape
	// (predicted output length).
	estCache map[progKey]int64
	// modelIDs assigns each distinct model name a small 1-based integer
	// in first-use order (Task.ModelID); also guarded by mu.
	modelIDs map[string]int
}

type progKey struct {
	model         string
	batch         int
	inLen, outLen int
}

// NewGenerator constructs a generator with its own seqlen profile library
// (seeded deterministically).
func NewGenerator(cfg npu.Config, profileSeed uint64) (*Generator, error) {
	comp, err := compiler.New(cfg)
	if err != nil {
		return nil, err
	}
	lib, err := seqlen.NewLibrary(profileSeed)
	if err != nil {
		return nil, err
	}
	an, err := predictor.NewAnalytic(cfg, lib)
	if err != nil {
		return nil, err
	}
	return &Generator{
		cfg: cfg, comp: comp, lib: lib, analytic: an,
		progCache: make(map[progKey]*npu.Program),
		estCache:  make(map[progKey]int64),
	}, nil
}

// compile returns the (cached) program for one concrete instance.
func (g *Generator) compile(m *dnn.Model, batch, inLen, outLen int) (*npu.Program, error) {
	k := progKey{model: m.Name, batch: batch, inLen: inLen, outLen: outLen}
	g.mu.Lock()
	p, ok := g.progCache[k]
	g.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := g.comp.Compile(m, batch, inLen, outLen)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if prev, ok := g.progCache[k]; ok {
		p = prev // another worker compiled it first; keep one canonical program
	} else {
		g.progCache[k] = p
	}
	g.mu.Unlock()
	return p, nil
}

// analyticEstimate returns the (cached) Algorithm 1 estimate.
func (g *Generator) analyticEstimate(m *dnn.Model, batch, inLen int) (int64, error) {
	k := progKey{model: m.Name, batch: batch, inLen: inLen}
	g.mu.Lock()
	e, ok := g.estCache[k]
	g.mu.Unlock()
	if ok {
		return e, nil
	}
	e, err := g.analytic.Estimate(m, batch, inLen)
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	g.estCache[k] = e
	g.mu.Unlock()
	return e, nil
}

// Library exposes the generator's sequence-length profile library.
func (g *Generator) Library() *seqlen.Library { return g.lib }

// Analytic exposes the generator's Algorithm 1 predictor.
func (g *Generator) Analytic() *predictor.Analytic { return g.analytic }

// Compiler exposes the generator's compiler.
func (g *Generator) Compiler() *compiler.Compiler { return g.comp }

// Instance compiles one concrete task instance of a model: RNN lengths
// are sampled from the profile corpus; the returned task carries both the
// ground-truth program and the predictor's estimate.
func (g *Generator) Instance(id int, m *dnn.Model, batch int, prio sched.Priority,
	arrival int64, est Estimator, rng *rand.Rand) (*Task, error) {

	inLen, actualOut, predictedOut := 0, 0, 0
	if m.IsRNN() {
		var err error
		inLen, actualOut, predictedOut, err = g.lib.SampleInstance(m.SeqProfile, rng)
		if err != nil {
			return nil, err
		}
	}
	prog, err := g.compile(m, batch, inLen, actualOut)
	if err != nil {
		return nil, err
	}

	var estimated int64
	switch e := est.(type) {
	case nil:
		estimated, err = g.analyticEstimate(m, batch, inLen)
	case oracleEstimator:
		estimated, err = prog.TotalCycles, nil
	default:
		estimated, err = e.Estimate(m, batch, inLen)
	}
	if err != nil {
		return nil, err
	}

	exec := npu.NewExecution(prog)
	st := sched.NewTask(id, m.Name, batch, prio, arrival, exec, estimated)
	return &Task{
		Task:     st,
		ModelRef: m,
		ModelID:  g.modelID(m.Name),
		InLen:    inLen, ActualOut: actualOut, PredictedOut: predictedOut,
		Program: prog,
	}, nil
}

// modelID answers the generator-local 1-based integer for a model
// name, assigning one on first use.
func (g *Generator) modelID(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.modelIDs == nil {
		g.modelIDs = make(map[string]int)
	}
	id, ok := g.modelIDs[name]
	if !ok {
		id = len(g.modelIDs) + 1
		g.modelIDs[name] = id
	}
	return id
}

// InstanceByName is Instance with model lookup by workload label and the
// default (analytic) estimator — the common case for hand-built scenarios.
func (g *Generator) InstanceByName(id int, model string, batch int, prio sched.Priority,
	arrival int64, rng *rand.Rand) (*Task, error) {
	m, err := dnn.ByName(model)
	if err != nil {
		return nil, err
	}
	return g.Instance(id, m, batch, prio, arrival, nil, rng)
}

// Generate builds one multi-tasked workload per the Section III
// methodology using the given RNG.
func (g *Generator) Generate(spec Spec, rng *rand.Rand) ([]*Task, error) {
	if spec.Tasks <= 0 {
		return nil, fmt.Errorf("workload: non-positive task count %d", spec.Tasks)
	}
	models := spec.Models
	if len(models) == 0 {
		models = dnn.Suite()
	}
	batches := spec.BatchSizes
	if len(batches) == 0 {
		batches = dnn.BatchSizes
	}
	window := spec.ArrivalWindow
	if window <= 0 {
		window = 20 * time.Millisecond
	}
	windowCycles := g.cfg.Cycles(window)

	tasks := make([]*Task, 0, spec.Tasks)
	for i := 0; i < spec.Tasks; i++ {
		m := models[rng.IntN(len(models))]
		batch := batches[rng.IntN(len(batches))]
		prio := spec.FixedPriority
		if prio == 0 {
			prio = sched.Priorities[rng.IntN(len(sched.Priorities))]
		}
		arrival := rng.Int64N(windowCycles + 1)
		t, err := g.Instance(i, m, batch, prio, arrival, spec.Estimator, rng)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// SchedTasks projects the generated tasks to their scheduler entries.
func SchedTasks(ts []*Task) []*sched.Task {
	out := make([]*sched.Task, len(ts))
	for i, t := range ts {
		out[i] = t.Task
	}
	return out
}

// RNGFor derives a deterministic per-run RNG from an experiment seed and
// a run index.
func RNGFor(seed uint64, run int) *rand.Rand {
	return stats.NewRNG(seed, uint64(run)*0x9e3779b97f4a7c15+1)
}
