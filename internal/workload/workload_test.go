package workload

import (
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/sched"
)

func newGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(npu.DefaultConfig(), 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateSpecBounds(t *testing.T) {
	g := newGen(t)
	cfg := npu.DefaultConfig()
	window := 10 * time.Millisecond
	tasks, err := g.Generate(Spec{Tasks: 12, ArrivalWindow: window}, RNGFor(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 12 {
		t.Fatalf("generated %d tasks, want 12", len(tasks))
	}
	windowCycles := cfg.Cycles(window)
	ids := map[int]bool{}
	for _, task := range tasks {
		if task.Arrival < 0 || task.Arrival > windowCycles {
			t.Errorf("arrival %d outside [0,%d]", task.Arrival, windowCycles)
		}
		if task.IsolatedCycles <= 0 || task.EstimatedCycles <= 0 {
			t.Error("non-positive task cycle counts")
		}
		found := false
		for _, b := range dnn.BatchSizes {
			if task.Batch == b {
				found = true
			}
		}
		if !found {
			t.Errorf("batch %d outside the evaluated set", task.Batch)
		}
		switch task.Priority {
		case sched.Low, sched.Medium, sched.High:
		default:
			t.Errorf("priority %v outside low/medium/high", task.Priority)
		}
		if ids[task.ID] {
			t.Errorf("duplicate task ID %d", task.ID)
		}
		ids[task.ID] = true
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	g := newGen(t)
	if _, err := g.Generate(Spec{Tasks: 0}, RNGFor(1, 1)); err == nil {
		t.Error("zero tasks should be rejected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := newGen(t)
	a, err := g.Generate(Spec{Tasks: 8}, RNGFor(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(Spec{Tasks: 8}, RNGFor(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Arrival != b[i].Arrival ||
			a[i].Batch != b[i].Batch || a[i].Priority != b[i].Priority ||
			a[i].IsolatedCycles != b[i].IsolatedCycles {
			t.Fatalf("task %d differs between same-seed generations", i)
		}
	}
}

func TestFixedPriorityAndBatch(t *testing.T) {
	g := newGen(t)
	tasks, err := g.Generate(Spec{
		Tasks: 6, FixedPriority: sched.High, BatchSizes: []int{1},
	}, RNGFor(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Priority != sched.High || task.Batch != 1 {
			t.Errorf("task %d: priority %v batch %d", task.ID, task.Priority, task.Batch)
		}
	}
}

func TestOracleEstimatorIsExact(t *testing.T) {
	g := newGen(t)
	tasks, err := g.Generate(Spec{Tasks: 8, Estimator: Oracle()}, RNGFor(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.EstimatedCycles != task.IsolatedCycles {
			t.Errorf("oracle estimate %d != isolated %d", task.EstimatedCycles, task.IsolatedCycles)
		}
	}
	// The marker must not be called directly.
	if _, err := Oracle().Estimate(nil, 0, 0); err == nil {
		t.Error("oracle marker Estimate should error")
	}
}

func TestRNNInstancesUseSampledLengths(t *testing.T) {
	g := newGen(t)
	m, err := dnn.ByName("RNN-MT2")
	if err != nil {
		t.Fatal(err)
	}
	seenLens := map[int]bool{}
	for i := 0; i < 20; i++ {
		task, err := g.Instance(i, m, 1, sched.Low, 0, nil, RNGFor(9, i))
		if err != nil {
			t.Fatal(err)
		}
		if task.InLen < m.MinInLen || task.InLen > m.MaxInLen {
			t.Errorf("inLen %d outside profile bounds", task.InLen)
		}
		if task.ActualOut <= 0 || task.PredictedOut <= 0 {
			t.Error("RNN instance without sampled lengths")
		}
		if task.Program.InLen != task.InLen || task.Program.OutLen != task.ActualOut {
			t.Error("program compiled with different lengths than sampled")
		}
		seenLens[task.ActualOut] = true
	}
	if len(seenLens) < 3 {
		t.Error("sampled output lengths show no variation")
	}
}

func TestProgramCacheSharesImmutablePrograms(t *testing.T) {
	g := newGen(t)
	m := dnn.AlexNet()
	a, err := g.Instance(0, m, 4, sched.Low, 0, nil, RNGFor(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Instance(1, m, 4, sched.Low, 0, nil, RNGFor(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Program != b.Program {
		t.Error("identical instances should share the cached program")
	}
	// But executions must be independent cursors.
	a.Task.Exec.Advance(100)
	if b.Task.Exec.Executed() != 0 {
		t.Error("executions share state")
	}
}

func TestInstanceByName(t *testing.T) {
	g := newGen(t)
	task, err := g.InstanceByName(3, "CNN-GN", 4, sched.Medium, 123, RNGFor(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if task.Model != "CNN-GN" || task.Arrival != 123 || task.Batch != 4 {
		t.Errorf("instance fields wrong: %+v", task.Task)
	}
	if _, err := g.InstanceByName(0, "NOPE", 1, sched.Low, 0, RNGFor(1, 1)); err == nil {
		t.Error("unknown model should error")
	}
}

func TestSchedTasksProjection(t *testing.T) {
	g := newGen(t)
	tasks, err := g.Generate(Spec{Tasks: 3}, RNGFor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := SchedTasks(tasks)
	if len(st) != 3 {
		t.Fatal("projection length wrong")
	}
	for i := range st {
		if st[i] != tasks[i].Task {
			t.Error("projection does not alias the scheduler entries")
		}
	}
}

func TestRestrictedModelPool(t *testing.T) {
	g := newGen(t)
	pool := []*dnn.Model{dnn.AlexNet()}
	tasks, err := g.Generate(Spec{Tasks: 5, Models: pool}, RNGFor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Model != "CNN-AN" {
			t.Errorf("task drew model %s outside the restricted pool", task.Model)
		}
	}
}
