package workload

// estimator.go is the named-estimator registry: the facade and the CLI
// select execution-time estimators by label ("analytic", "oracle", or a
// custom registration) instead of passing interface values around. The
// two paper estimators are pre-registered through the same path external
// registrations use.

import (
	"fmt"
	"sort"
	"sync"
)

var (
	estMu  sync.RWMutex
	estReg = map[string]Estimator{}
)

// RegisterEstimator adds an execution-time estimator under a name.
// Registration is write-once: a duplicate name is an error, so a name
// always denotes one estimator for the life of the process. Estimators
// must be pure (same inputs, same estimate) and safe for concurrent use;
// a registered estimator may additionally implement
// interface{ CacheKey() string } to opt its runs into the experiment
// engine's simulation-result cache.
func RegisterEstimator(name string, est Estimator) error {
	if name == "" {
		return fmt.Errorf("workload: empty estimator name")
	}
	if name == "analytic" || name == "oracle" {
		return fmt.Errorf("workload: estimator name %q is reserved for the builtin", name)
	}
	if est == nil {
		return fmt.Errorf("workload: nil estimator %q", name)
	}
	estMu.Lock()
	defer estMu.Unlock()
	if _, dup := estReg[name]; dup {
		return fmt.Errorf("workload: estimator %q already registered", name)
	}
	estReg[name] = est
	return nil
}

// EstimatorByName resolves an estimator label. The empty name and
// "analytic" select the Algorithm 1 analytic model (represented as a nil
// Estimator, which the Generator resolves internally); "oracle" selects
// exact execution times.
func EstimatorByName(name string) (Estimator, error) {
	switch name {
	case "", "analytic":
		return nil, nil
	case "oracle":
		return Oracle(), nil
	}
	estMu.RLock()
	est, ok := estReg[name]
	estMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown estimator %q (known: %v)",
			name, EstimatorNames())
	}
	return est, nil
}

// EstimatorNames lists the selectable estimator labels in sorted order,
// always including the two builtins.
func EstimatorNames() []string {
	estMu.RLock()
	names := make([]string, 0, len(estReg)+2)
	for name := range estReg {
		names = append(names, name)
	}
	estMu.RUnlock()
	names = append(names, "analytic", "oracle")
	sort.Strings(names)
	return names
}
