package autoscale

import (
	"strings"
	"testing"
)

// tick builds a metrics snapshot for a fleet of active backends seeing
// the given mean per-NPU depth and estimated P95.
func tick(now int64, active int, depth float64, p95, slo float64) Metrics {
	return Metrics{
		Now: now, Active: active, Min: 1, Max: 8,
		InFlight:        int(depth * float64(active)),
		EstP95LatencyMS: p95, SLOLatencyMS: slo,
	}
}

func TestStaticNeverScales(t *testing.T) {
	var s Static
	for i := 0; i < 50; i++ {
		m := tick(int64(i), 1+i%4, float64(i%13), float64(i*3), 4)
		if d := s.Decide(m); d != 0 {
			t.Fatalf("static scaler moved (%+d) on tick %d", d, i)
		}
	}
}

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"queue-depth", "static", "target-latency"}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("builtin scalers = %v, want %v", got, want)
	}
	for _, name := range want {
		if !Has(name) {
			t.Errorf("Has(%q) = false", name)
		}
		p, err := ByName(name, Config{SLOLatencyMS: 8})
		if err != nil || p == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Error("unknown scaler should error")
	}
}

func TestRegistryWriteOnce(t *testing.T) {
	if err := Register("test-dup", func(Config) (Policy, error) { return Static{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := Register("test-dup", func(Config) (Policy, error) { return Static{}, nil }); err == nil {
		t.Error("duplicate registration should error")
	}
	if err := Register("", func(Config) (Policy, error) { return Static{}, nil }); err == nil {
		t.Error("empty name should error")
	}
	if err := Register("test-nil", nil); err == nil {
		t.Error("nil factory should error")
	}
}

// TestByNameFreshInstances proves the factory contract: two attachments
// get two instances, so one session's hysteresis state cannot leak into
// another's.
func TestByNameFreshInstances(t *testing.T) {
	a, err := ByName("queue-depth", Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("queue-depth", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.(*QueueDepth) == b.(*QueueDepth) {
		t.Error("ByName returned a shared instance")
	}
}

func TestTargetLatencyRequiresSLO(t *testing.T) {
	if _, err := NewTargetLatency(Config{}); err == nil {
		t.Error("zero SLO should be rejected")
	}
	if _, err := NewTargetLatency(Config{SLOLatencyMS: -1}); err == nil {
		t.Error("negative SLO should be rejected")
	}
}

// TestTargetLatencyDirection drives the PI controller with sustained
// overshoot, then sustained idleness: it must ask for growth under
// pressure and shrinkage at rest, never the reverse.
func TestTargetLatencyDirection(t *testing.T) {
	p, err := NewTargetLatency(Config{SLOLatencyMS: 8})
	if err != nil {
		t.Fatal(err)
	}
	var up, down int
	for i := 0; i < 12; i++ { // P95 at 3x the SLO
		switch d := p.Decide(tick(int64(i), 2, 6, 24, 8)); {
		case d > 0:
			up++
		case d < 0:
			t.Fatalf("PI scaler shrank under 3x-SLO overshoot on tick %d", i)
		}
	}
	if up == 0 {
		t.Error("PI scaler never grew under sustained 3x-SLO overshoot")
	}
	for i := 0; i < 24; i++ { // fully idle
		switch d := p.Decide(tick(int64(100+i), 4, 0, 0, 8)); {
		case d < 0:
			down++
		case d > 0:
			t.Fatalf("PI scaler grew while idle on tick %d", i)
		}
	}
	if down == 0 {
		t.Error("PI scaler never shrank while idle")
	}
}

// TestTargetLatencyStepCap locks the per-action bound: even an extreme
// overshoot converts to at most maxStep backends per action.
func TestTargetLatencyStepCap(t *testing.T) {
	p, err := NewTargetLatency(Config{SLOLatencyMS: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if d := p.Decide(tick(int64(i), 1, 50, 1000, 8)); d > 2 {
			t.Fatalf("PI step %+d exceeds the cap", d)
		}
	}
}

// TestQueueDepthHysteresis proves one hot tick is not enough: the
// threshold scaler must wait out its hysteresis span before growing and
// its cooldown before acting again.
func TestQueueDepthHysteresis(t *testing.T) {
	p, err := NewQueueDepth(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Cooldown swallows the first ticks; a single hot tick after a calm
	// one must not scale either.
	if d := p.Decide(tick(0, 1, 5, 0, 0)); d != 0 {
		t.Fatalf("scaled %+d inside the cooldown", d)
	}
	if d := p.Decide(tick(1, 1, 2, 0, 0)); d != 0 {
		t.Fatalf("scaled %+d on a calm tick", d)
	}
	if d := p.Decide(tick(2, 1, 5, 0, 0)); d != 0 {
		t.Fatalf("scaled %+d after one hot tick (hysteresis wants %d)", d, p.UpAfter)
	}
	if d := p.Decide(tick(3, 1, 5, 0, 0)); d != 1 {
		t.Fatalf("want +1 after %d hot ticks, got %+d", p.UpAfter, d)
	}
	// Immediately after the action the cooldown must hold the fleet even
	// under continued pressure.
	if d := p.Decide(tick(4, 2, 5, 0, 0)); d != 0 {
		t.Fatalf("scaled %+d during post-action cooldown", d)
	}
}

// TestQueueDepthScaleDown drives depth to zero and expects a shrink
// only after DownAfter consecutive calm ticks.
func TestQueueDepthScaleDown(t *testing.T) {
	p, err := NewQueueDepth(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < p.DownAfter+p.Cooldown; i++ {
		if d := p.Decide(tick(int64(i), 4, 0, 0, 0)); d != 0 {
			if d != -1 {
				t.Fatalf("want -1, got %+d", d)
			}
			fired = i + 1
			break
		}
	}
	if fired == 0 {
		t.Fatal("threshold scaler never shrank an idle fleet")
	}
	if fired < p.DownAfter {
		t.Errorf("shrank after %d ticks, hysteresis wants at least %d", fired, p.DownAfter)
	}
}

// TestQueueDepthBurstStep locks the burst-absorption step: depth far
// past High earns a two-backend step.
func TestQueueDepthBurstStep(t *testing.T) {
	p, err := NewQueueDepth(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var d Delta
	for i := 0; i < 2+p.Cooldown+p.UpAfter; i++ {
		if d = p.Decide(tick(int64(i), 1, 4*p.High, 0, 0)); d != 0 {
			break
		}
	}
	if d != 2 {
		t.Errorf("want burst step +2, got %+d", d)
	}
}

// TestPickRetireTier pins the inverse-D'Hondt retire rule: shrink the
// tier furthest above its weighted share, ties to the earliest tier,
// skip empty tiers, -1 when nothing is left to retire.
func TestPickRetireTier(t *testing.T) {
	cases := []struct {
		name    string
		weights []int
		counts  []int
		want    int
	}{
		{"proportioned tie goes earliest", []int{70, 30}, []int{7, 3}, 0},
		{"slow tier over its share", []int{70, 30}, []int{6, 3}, 1},
		{"fast tier over its share", []int{70, 30}, []int{7, 2}, 0},
		{"empty tier skipped", []int{50, 50}, []int{0, 1}, 1},
		{"all empty", []int{50, 50}, []int{0, 0}, -1},
		{"single tier", []int{1}, []int{3}, 0},
		{"inverse of scale-up", []int{60, 40}, []int{1, 4}, 1},
	}
	for _, tc := range cases {
		if got := PickRetireTier(tc.weights, tc.counts); got != tc.want {
			t.Errorf("%s: PickRetireTier(%v, %v) = %d, want %d",
				tc.name, tc.weights, tc.counts, got, tc.want)
		}
	}
}

// TestPickRetireTierDrawdown pins the full drawdown order of a 70/30
// fleet at 7/3: retire interleaves the tiers so every intermediate
// fleet stays as close to the weighted template as integers allow,
// ending only when both tiers are empty.
func TestPickRetireTierDrawdown(t *testing.T) {
	weights := []int{70, 30}
	counts := []int{7, 3}
	want := []int{0, 1, 0, 0, 1, 0, 0, 1, 0, 0}
	for step, w := range want {
		got := PickRetireTier(weights, counts)
		if got != w {
			t.Fatalf("step %d: retire tier %d, want %d (counts %v)", step, got, w, counts)
		}
		counts[got]--
	}
	if got := PickRetireTier(weights, counts); got != -1 {
		t.Errorf("empty fleet retires tier %d, want -1", got)
	}
}
