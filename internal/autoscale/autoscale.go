// Package autoscale is the elastic-capacity layer of the system node:
// a scaling policy watches the per-NPU load the streaming node session
// already tracks (the router's fluid backlog model, built on the same
// Algorithm 1 estimates the schedulers consume) and decides when to
// grow or shrink the backend set against a latency SLO — the
// Kubernetes-autoscaler analogue of the Section II-C router. The
// package is deliberately substrate-free: a Policy sees one Metrics
// snapshot per evaluation tick and answers with a signed backend-count
// Delta; the serving.NodeSession owns the substrate work (spinning
// fresh per-NPU backends, draining retired ones, clamping to the
// configured fleet bounds).
//
// Three policies ship built in, registered through the same write-once
// registry custom scalers use (see Register):
//
//   - "static": the no-op baseline — never scales, so an attached
//     static scaler is provably equivalent to no scaler at all.
//   - "target-latency": a PI controller against the P95 latency SLO.
//   - "queue-depth": per-NPU in-flight thresholds with hysteresis and
//     a cooldown between actions.
package autoscale

import "fmt"

// Metrics is the load snapshot a scaling policy observes at one
// evaluation tick. All figures derive from the router's fluid state and
// the tick window's routing decisions — no simulation runs to produce
// them, so a tick is cheap enough to evaluate every few milliseconds.
type Metrics struct {
	// Now is the evaluation instant in NPU cycles.
	Now int64
	// Active is the number of backends accepting new work (draining
	// backends excluded).
	Active int
	// Draining is the number of backends retired but still completing
	// previously routed work.
	Draining int
	// Min and Max are the fleet bounds the caller enforces; a policy may
	// consult them to avoid futile pressure at the limits.
	Min, Max int
	// InFlight is the total number of routed requests across active
	// backends whose estimated work has not drained at Now.
	InFlight int
	// BacklogMS is the total estimated queued work across active
	// backends, in milliseconds.
	BacklogMS float64
	// EstP95LatencyMS is the 95th percentile of the fluid latency
	// estimates (queueing plus service, per Algorithm 1) of the requests
	// routed since the previous tick; 0 when nothing arrived.
	EstP95LatencyMS float64
	// SLOLatencyMS is the P95 latency target the fleet is scaled
	// against.
	SLOLatencyMS float64
	// TierActive counts the routable backends per hardware tier, in
	// tier order; nil on homogeneous fleets. The backing array is
	// reused between ticks, so a policy must not retain the slice
	// across Decide calls.
	TierActive []int
}

// Delta is a policy's decision: the signed change in active backend
// count it wants (positive grows the fleet, negative shrinks it, zero
// holds). The caller clamps the applied change to the [Min, Max] fleet
// bounds.
type Delta int

// Policy decides, once per evaluation tick, whether the backend set
// should grow or shrink. Implementations may keep scratch state between
// ticks (integrators, hysteresis counters), so one instance must drive
// exactly one node session; the registry constructs a fresh instance
// per attachment.
type Policy interface {
	// Decide inspects one load snapshot and returns the wanted fleet
	// change.
	Decide(m Metrics) Delta
}

// PickTier chooses which hardware tier a scale-up should add, given
// the template weights and the current routable backend count per tier:
// the highest-averages (D'Hondt) rule picks the tier maximizing
// weights[t]/(counts[t]+1), so the live fleet tracks the weighted
// template as it grows — even after failures have knocked a tier below
// its share. Ties go to the earliest tier. Both slices must have the
// same nonzero length; the comparison cross-multiplies, so it is exact
// in integers.
func PickTier(weights, counts []int) int {
	best := 0
	for t := 1; t < len(weights); t++ {
		if weights[t]*(counts[best]+1) > weights[best]*(counts[t]+1) {
			best = t
		}
	}
	return best
}

// PickRetireTier chooses which hardware tier a scale-down should shrink
// — the inverse of PickTier: among tiers that still have routable
// backends, the one furthest above its weighted share (largest
// counts[t]/weights[t], compared by cross-multiplication so the rule is
// exact in integers). Ties go to the earliest tier; -1 when every tier
// is empty. Retiring from the most over-represented tier keeps a long
// drawdown proportioned to the template instead of skewing the mix.
func PickRetireTier(weights, counts []int) int {
	best := -1
	for t := 0; t < len(weights); t++ {
		if counts[t] == 0 {
			continue
		}
		if best < 0 || counts[t]*weights[best] > counts[best]*weights[t] {
			best = t
		}
	}
	return best
}

// Config parameterizes built-in policy construction.
type Config struct {
	// SLOLatencyMS is the P95 latency target in milliseconds; it is also
	// delivered in every Metrics snapshot.
	SLOLatencyMS float64
}

// Static is the no-op baseline scaler: it never changes the fleet, so a
// node with a static scaler attached behaves identically to one with no
// scaler (the serving tests lock the outputs in as equal).
type Static struct{}

// Decide always holds the fleet.
func (Static) Decide(Metrics) Delta { return 0 }

// TargetLatency is a PI controller (the PID family without the
// derivative term, which the noisy per-tick P95 would whip around)
// against the P95 latency SLO: the control error is the relative SLO
// overshoot, the integral accumulates sustained pressure, and the
// control output converts to a fleet delta once it crosses the action
// threshold. Scale-down is deliberately conservative — one backend per
// action — because shrinking too fast re-queues load onto survivors.
type TargetLatency struct {
	kp, ki   float64
	maxStep  int
	cooldown int

	integral float64
	since    int
}

// NewTargetLatency builds the PI scaler with the default gains
// (kp 1.0, ki 0.25, max +2 per action, 2-tick cooldown).
func NewTargetLatency(cfg Config) (*TargetLatency, error) {
	if cfg.SLOLatencyMS <= 0 {
		return nil, fmt.Errorf("autoscale: target-latency requires a positive SLO, got %vms", cfg.SLOLatencyMS)
	}
	return &TargetLatency{kp: 1.0, ki: 0.25, maxStep: 2, cooldown: 2}, nil
}

// Decide runs one PI step against the tick's estimated P95.
func (p *TargetLatency) Decide(m Metrics) Delta {
	if m.SLOLatencyMS <= 0 {
		return 0
	}
	// Relative overshoot: 0 at the SLO, 1 at twice the SLO, -1 when
	// fully idle.
	err := (m.EstP95LatencyMS - m.SLOLatencyMS) / m.SLOLatencyMS
	if err < -1 {
		err = -1
	}
	p.integral += err
	// Anti-windup: a long saturated burst must not take as long to
	// unwind as it took to build.
	const windup = 4
	if p.integral > windup {
		p.integral = windup
	} else if p.integral < -windup {
		p.integral = -windup
	}
	ctrl := p.kp*err + p.ki*p.integral
	p.since++
	if p.since <= p.cooldown {
		return 0
	}
	switch {
	case ctrl >= 0.5:
		d := int(ctrl + 0.5)
		if d > p.maxStep {
			d = p.maxStep
		}
		p.since = 0
		return Delta(d)
	case ctrl <= -0.5:
		p.since = 0
		return -1
	}
	return 0
}

// QueueDepth scales on per-NPU queue pressure with hysteresis and
// cooldown: the fleet grows only after the load has stayed hot for
// UpAfter consecutive ticks, shrinks only after it has stayed cold for
// DownAfter consecutive ticks, and rests Cooldown ticks after every
// action so one burst cannot thrash the fleet up and down.
//
// Pressure blends two signals. The mean in-flight depth across active
// backends is the classic queue-length threshold; the mean estimated
// backlog per backend (in multiples of the SLO, when one is set) covers
// the inference-serving reality that a "queue" of two multi-second
// requests is hotter than a queue of ten tiny ones — raw counts alone
// both under-grow into heavy peaks and shrink while real work remains.
type QueueDepth struct {
	// High and Low are the mean per-active-NPU in-flight thresholds.
	High, Low float64
	// UpAfter and DownAfter are the consecutive-tick hysteresis spans.
	UpAfter, DownAfter int
	// Cooldown is the minimum number of ticks between scaling actions.
	Cooldown int

	above, below, since int
}

// NewQueueDepth builds the threshold scaler with the default shape
// (High 3, Low 1, up after 2 ticks, down after 3, cooldown 2).
func NewQueueDepth(Config) (*QueueDepth, error) {
	return &QueueDepth{High: 3, Low: 1, UpAfter: 2, DownAfter: 3, Cooldown: 2}, nil
}

// Decide runs one hysteresis step over the tick's queue pressure.
func (p *QueueDepth) Decide(m Metrics) Delta {
	if m.Active <= 0 {
		return 0
	}
	depth := float64(m.InFlight) / float64(m.Active)
	hot := depth > p.High
	cold := depth < p.Low
	burst := depth > 2*p.High
	if m.SLOLatencyMS > 0 {
		// Backlog measured against the SLO: queued work that already
		// exceeds the latency target per backend is hot however few
		// requests it is, and a backend still holding an SLO's worth of
		// work is not cold yet.
		backlog := m.BacklogMS / float64(m.Active)
		if backlog > 2*m.SLOLatencyMS {
			hot = true
		}
		if backlog > m.SLOLatencyMS {
			cold = false
		}
		if backlog > 6*m.SLOLatencyMS {
			burst = true
		}
	}
	switch {
	case hot:
		p.above++
		p.below = 0
	case cold:
		p.below++
		p.above = 0
	default:
		p.above, p.below = 0, 0
	}
	p.since++
	if p.since <= p.Cooldown {
		return 0
	}
	if p.above >= p.UpAfter {
		p.above, p.since = 0, 0
		// Burst absorption: pressure far past the threshold earns a
		// bigger step.
		if burst {
			return 2
		}
		return 1
	}
	if p.below >= p.DownAfter {
		p.below, p.since = 0, 0
		return -1
	}
	return 0
}
