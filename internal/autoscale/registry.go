package autoscale

// registry.go is the scaler registry, mirroring the policy/selector/
// estimator registries in sched and workload: write-once labels, the
// built-ins pre-registered through the same path external callers use,
// and the facade re-exporting Register so custom scalers plug in
// without touching internal packages.

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds one scaler instance for one node-session attachment.
// Factories must return a fresh instance per call: scalers may keep
// scratch state between ticks (integrators, hysteresis counters), so an
// instance must never be shared by two sessions.
type Factory func(Config) (Policy, error)

var (
	regMu sync.RWMutex
	reg   = map[string]Factory{}
)

// Register adds a scaler under a label. Registration is process-wide
// and write-once: a duplicate label is an error, so a label always
// denotes one scaling policy for the life of the process.
func Register(name string, factory Factory) error {
	if name == "" {
		return fmt.Errorf("autoscale: empty scaler name")
	}
	if factory == nil {
		return fmt.Errorf("autoscale: nil factory for scaler %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		return fmt.Errorf("autoscale: scaler %q already registered", name)
	}
	reg[name] = factory
	return nil
}

// Has reports whether a scaler label is registered.
func Has(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := reg[name]
	return ok
}

// Names lists the registered scaler labels in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName constructs a fresh scaler instance by its label.
func ByName(name string, cfg Config) (Policy, error) {
	regMu.RLock()
	factory, ok := reg[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("autoscale: unknown scaler %q (known: %v)", name, Names())
	}
	return factory(cfg)
}

// mustRegister registers a builtin; the labels are distinct string
// literals, so failure is a programming error.
func mustRegister(name string, factory Factory) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister("static", func(Config) (Policy, error) { return Static{}, nil })
	mustRegister("target-latency", func(cfg Config) (Policy, error) { return NewTargetLatency(cfg) })
	mustRegister("queue-depth", func(cfg Config) (Policy, error) { return NewQueueDepth(cfg) })
}
