// Package isa provides a concrete binary encoding and a textual
// assembly/disassembly format for the NPU's CISC instruction stream
// (Section II-B). The performance model in internal/npu operates on
// committed instructions with effective latencies; this package gives
// those instructions the serialized form a real NPU's instruction buffer
// would hold, so compiled programs can be dumped, diffed, stored and
// reloaded.
//
// Encoding (little endian, 24 bytes per instruction):
//
//	byte  0     opcode
//	byte  1-3   reserved (zero)
//	bytes 4-7   layer index (uint32)
//	bytes 8-11  effective cycles (uint32)
//	bytes 12-19 live context bytes after commit (uint64)
//	bytes 20-23 CRC-free checksum of the preceding fields (uint32)
//
// A program stream is prefixed with a 16-byte header: magic "PRMA",
// version, instruction count, and total cycles.
package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"repro/internal/npu"
)

// Magic identifies a serialized program stream.
const Magic = "PRMA"

// Version is the current encoding version.
const Version = 1

// instrSize is the encoded size of one instruction.
const instrSize = 24

// headerSize is the encoded size of the stream header.
const headerSize = 16

// checksum is a tiny integrity check over an encoded instruction's first
// 20 bytes (sum of 32-bit words, like the classic IP checksum family).
func checksum(b []byte) uint32 {
	var sum uint32
	for i := 0; i+4 <= 20; i += 4 {
		sum += binary.LittleEndian.Uint32(b[i : i+4])
	}
	return ^sum
}

// EncodeInstr serializes one instruction.
func EncodeInstr(in npu.Instr) [instrSize]byte {
	var b [instrSize]byte
	b[0] = byte(in.Op)
	binary.LittleEndian.PutUint32(b[4:8], uint32(in.Layer))
	binary.LittleEndian.PutUint32(b[8:12], uint32(in.Cycles))
	binary.LittleEndian.PutUint64(b[12:20], uint64(in.LiveBytes))
	binary.LittleEndian.PutUint32(b[20:24], checksum(b[:20]))
	return b
}

// DecodeInstr deserializes one instruction, verifying its checksum.
func DecodeInstr(b []byte) (npu.Instr, error) {
	if len(b) < instrSize {
		return npu.Instr{}, fmt.Errorf("isa: short instruction (%d bytes)", len(b))
	}
	if got, want := binary.LittleEndian.Uint32(b[20:24]), checksum(b[:20]); got != want {
		return npu.Instr{}, fmt.Errorf("isa: instruction checksum mismatch (%08x != %08x)", got, want)
	}
	op := npu.Op(b[0])
	if op > npu.StoreTile {
		return npu.Instr{}, fmt.Errorf("isa: unknown opcode %d", b[0])
	}
	return npu.Instr{
		Op:        op,
		Layer:     int32(binary.LittleEndian.Uint32(b[4:8])),
		Cycles:    int32(binary.LittleEndian.Uint32(b[8:12])),
		LiveBytes: int64(binary.LittleEndian.Uint64(b[12:20])),
	}, nil
}

// Write serializes a full program stream.
func Write(w io.Writer, p *npu.Program) error {
	var hdr [headerSize]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(p.Instrs)))
	// Total cycles are clamped into 48 bits (6 bytes) — far beyond any
	// real program.
	total := uint64(p.TotalCycles)
	if total >= 1<<48 {
		return fmt.Errorf("isa: program total %d exceeds the 48-bit header field", total)
	}
	hdr[10] = byte(total)
	hdr[11] = byte(total >> 8)
	hdr[12] = byte(total >> 16)
	hdr[13] = byte(total >> 24)
	hdr[14] = byte(total >> 32)
	hdr[15] = byte(total >> 40)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, in := range p.Instrs {
		enc := EncodeInstr(in)
		if _, err := bw.Write(enc[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a program stream. Model/batch metadata is not part of
// the binary format; callers may set those fields afterwards.
func Read(r io.Reader) (*npu.Program, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: reading header: %w", err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, fmt.Errorf("isa: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("isa: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(hdr[6:10])
	total := uint64(hdr[10]) | uint64(hdr[11])<<8 | uint64(hdr[12])<<16 |
		uint64(hdr[13])<<24 | uint64(hdr[14])<<32 | uint64(hdr[15])<<40

	p := &npu.Program{Model: "(loaded)", Batch: 1}
	br := bufio.NewReader(r)
	buf := make([]byte, instrSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("isa: reading instruction %d: %w", i, err)
		}
		in, err := DecodeInstr(buf)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p.Instrs = append(p.Instrs, in)
		p.TotalCycles += int64(in.Cycles)
	}
	if p.TotalCycles != int64(total) {
		return nil, fmt.Errorf("isa: header total %d != instruction sum %d", total, p.TotalCycles)
	}
	return p, nil
}

// Disassemble renders a program as readable assembly, one instruction per
// line, collapsing runs of identical (op, layer) tiles into a repeat
// count so multi-thousand-tile layers stay scannable.
func Disassemble(p *npu.Program, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; program %s batch=%d layers=%d instrs=%d total=%d cycles\n",
		p.Model, p.Batch, p.Layers, len(p.Instrs), p.TotalCycles)
	i := 0
	for i < len(p.Instrs) {
		in := p.Instrs[i]
		j := i
		var runCycles int64
		for j < len(p.Instrs) && p.Instrs[j].Op == in.Op && p.Instrs[j].Layer == in.Layer {
			runCycles += int64(p.Instrs[j].Cycles)
			j++
		}
		n := j - i
		if n == 1 {
			fmt.Fprintf(bw, "%-10s layer=%-4d cycles=%-8d live=%d\n",
				in.Op, in.Layer, in.Cycles, in.LiveBytes)
		} else {
			fmt.Fprintf(bw, "%-10s layer=%-4d x%-6d cycles=%-10d live<=%d\n",
				in.Op, in.Layer, n, runCycles, p.Instrs[j-1].LiveBytes)
		}
		i = j
	}
	return bw.Flush()
}

// ParseOp resolves an assembly mnemonic to its opcode.
func ParseOp(s string) (npu.Op, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LOAD_TILE":
		return npu.LoadTile, nil
	case "GEMM_OP":
		return npu.GEMMOp, nil
	case "CONV_OP":
		return npu.ConvOp, nil
	case "VECTOR_OP":
		return npu.VectorOp, nil
	case "STORE_TILE":
		return npu.StoreTile, nil
	default:
		return 0, fmt.Errorf("isa: unknown mnemonic %q", s)
	}
}
