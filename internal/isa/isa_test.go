package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/npu"
)

func TestInstrRoundTrip(t *testing.T) {
	in := npu.Instr{Op: npu.ConvOp, Layer: 42, Cycles: 123456, LiveBytes: 7 << 20}
	enc := EncodeInstr(in)
	got, err := DecodeInstr(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("round trip: %+v != %+v", got, in)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	in := npu.Instr{Op: npu.GEMMOp, Layer: 1, Cycles: 100, LiveBytes: 4096}
	enc := EncodeInstr(in)
	enc[9] ^= 0xFF // corrupt the cycle field
	if _, err := DecodeInstr(enc[:]); err == nil {
		t.Error("corrupted instruction should fail its checksum")
	}
	if _, err := DecodeInstr(enc[:10]); err == nil {
		t.Error("short buffer should be rejected")
	}
	bad := EncodeInstr(npu.Instr{Op: npu.Op(99), Cycles: 1})
	if _, err := DecodeInstr(bad[:]); err == nil {
		t.Error("unknown opcode should be rejected")
	}
}

func TestProgramStreamRoundTrip(t *testing.T) {
	c, err := compiler.New(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := c.Compile(dnn.AlexNet(), 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, prog); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalCycles != prog.TotalCycles {
		t.Errorf("total cycles %d != %d", loaded.TotalCycles, prog.TotalCycles)
	}
	if len(loaded.Instrs) != len(prog.Instrs) {
		t.Fatalf("instruction count %d != %d", len(loaded.Instrs), len(prog.Instrs))
	}
	for i := range loaded.Instrs {
		if loaded.Instrs[i] != prog.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	// A loaded program executes identically.
	a, b := npu.NewExecution(prog), npu.NewExecution(loaded)
	for !a.Done() {
		ua, ub := a.Advance(10_000), b.Advance(10_000)
		if ua != ub {
			t.Fatal("loaded program executes differently")
		}
	}
	if !b.Done() {
		t.Fatal("loaded program did not finish in lockstep")
	}
}

func TestReadRejectsBadStreams(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("truncated header should be rejected")
	}
	var buf bytes.Buffer
	c, _ := compiler.New(npu.DefaultConfig())
	prog, _ := c.Compile(dnn.MobileNet(), 1, 0, 0)
	if err := Write(&buf, prog); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	copy(bad[0:4], "XXXX")
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should be rejected")
	}
	trunc := raw[:len(raw)-5]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should be rejected")
	}
}

func TestDisassembleCollapsesTileRuns(t *testing.T) {
	c, _ := compiler.New(npu.DefaultConfig())
	prog, _ := c.Compile(dnn.VGG16(), 1, 0, 0)
	var out strings.Builder
	if err := Disassemble(prog, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "CONV_OP") || !strings.Contains(text, "LOAD_TILE") {
		t.Error("disassembly missing mnemonics")
	}
	if !strings.Contains(text, "x") {
		t.Error("tile runs should be collapsed with repeat counts")
	}
	lines := strings.Count(text, "\n")
	if lines >= len(prog.Instrs) {
		t.Errorf("disassembly (%d lines) should be far shorter than %d instructions",
			lines, len(prog.Instrs))
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range []npu.Op{npu.LoadTile, npu.GEMMOp, npu.ConvOp, npu.VectorOp, npu.StoreTile} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%s) = %v, %v", op, got, err)
		}
	}
	if _, err := ParseOp("  gemm_op "); err != nil {
		t.Error("mnemonics should parse case-insensitively with whitespace")
	}
	if _, err := ParseOp("NOP"); err == nil {
		t.Error("unknown mnemonic should error")
	}
}

// Property: every instruction the compiler can emit survives an
// encode/decode round trip.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, layer int32, cycles int32, live int64) bool {
		in := npu.Instr{
			Op:        npu.Op(op % 5),
			Layer:     abs32(layer),
			Cycles:    abs32(cycles),
			LiveBytes: abs64(live),
		}
		enc := EncodeInstr(in)
		got, err := DecodeInstr(enc[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		if v == -1<<31 {
			return 1<<31 - 1
		}
		return -v
	}
	return v
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 1<<63 - 1
		}
		return -v
	}
	return v
}
