package sched

import (
	"fmt"

	"repro/internal/preempt"
)

// MechanismSelector chooses which preemption mechanism services a
// policy-recommended preemption (step 2 of PREMA's two-step procedure,
// Section V-C).
type MechanismSelector interface {
	// Name labels the configuration ("static-checkpoint", "dynamic", ...).
	Name() string
	// Select picks the mechanism for preempting current in favor of
	// candidate.
	Select(current, candidate *Task) preempt.Mechanism
}

// Static always applies one mechanism (the "static" configurations of
// Figures 12 and 15).
type Static struct {
	M preempt.Mechanism
}

// Name implements MechanismSelector.
func (s Static) Name() string { return "static-" + s.M.String() }

// Select implements MechanismSelector.
func (s Static) Select(current, candidate *Task) preempt.Mechanism { return s.M }

// Dynamic implements Algorithm 3: it compares the relative degradations
// the two tasks would suffer and chooses DRAIN when letting the (nearly
// finished) current task complete hurts the candidate less than
// preempting would hurt the current task; otherwise it preempts via the
// configured saving mechanism (CHECKPOINT by default, KILL for the
// Figure 15 sensitivity study).
type Dynamic struct {
	// Saving is the mechanism applied when Algorithm 3 decides to
	// preempt. Must be Checkpoint or Kill.
	Saving preempt.Mechanism
}

// NewDynamic returns the default dynamic selector (CHECKPOINT saving).
func NewDynamic() Dynamic { return Dynamic{Saving: preempt.Checkpoint} }

// Name implements MechanismSelector.
func (d Dynamic) Name() string { return "dynamic-" + d.Saving.String() }

// Select implements MechanismSelector (Algorithm 3).
func (d Dynamic) Select(current, candidate *Task) preempt.Mechanism {
	if current == nil {
		return d.Saving
	}
	curRemaining := float64(current.EstimatedRemaining())
	candRemaining := float64(candidate.EstimatedRemaining())
	curEstimated := float64(current.EstimatedCycles)
	candEstimated := float64(candidate.EstimatedCycles)
	if curEstimated <= 0 || candEstimated <= 0 {
		return d.Saving
	}
	// Degradation the current task suffers if preempted: it idles for
	// the candidate's remaining execution, relative to its own length.
	degCurrent := candRemaining / curEstimated
	// Degradation the candidate suffers under DRAIN: it idles for the
	// current task's remaining execution, relative to its own length.
	degCandidate := curRemaining / candEstimated
	if degCurrent > degCandidate {
		return preempt.Drain
	}
	return d.Saving
}

// SelectorByName constructs a mechanism selector by configuration label.
func SelectorByName(name string) (MechanismSelector, error) {
	switch name {
	case "static-checkpoint", "static":
		return Static{M: preempt.Checkpoint}, nil
	case "static-kill":
		return Static{M: preempt.Kill}, nil
	case "static-kill-layer":
		return Static{M: preempt.KillLayer}, nil
	case "static-drain":
		return Static{M: preempt.Drain}, nil
	case "dynamic", "dynamic-checkpoint":
		return NewDynamic(), nil
	case "dynamic-kill":
		return Dynamic{Saving: preempt.Kill}, nil
	case "dynamic-kill-layer":
		return Dynamic{Saving: preempt.KillLayer}, nil
	default:
		return nil, fmt.Errorf("sched: unknown mechanism selector %q", name)
	}
}
