package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/preempt"
)

// MechanismSelector chooses which preemption mechanism services a
// policy-recommended preemption (step 2 of PREMA's two-step procedure,
// Section V-C).
type MechanismSelector interface {
	// Name labels the configuration ("static-checkpoint", "dynamic", ...).
	Name() string
	// Select picks the mechanism for preempting current in favor of
	// candidate.
	Select(current, candidate *Task) preempt.Mechanism
}

// Static always applies one mechanism (the "static" configurations of
// Figures 12 and 15).
type Static struct {
	M preempt.Mechanism
}

// Name implements MechanismSelector.
func (s Static) Name() string { return "static-" + s.M.String() }

// Select implements MechanismSelector.
func (s Static) Select(current, candidate *Task) preempt.Mechanism { return s.M }

// Dynamic implements Algorithm 3: it compares the relative degradations
// the two tasks would suffer and chooses DRAIN when letting the (nearly
// finished) current task complete hurts the candidate less than
// preempting would hurt the current task; otherwise it preempts via the
// configured saving mechanism (CHECKPOINT by default, KILL for the
// Figure 15 sensitivity study).
type Dynamic struct {
	// Saving is the mechanism applied when Algorithm 3 decides to
	// preempt. Must be Checkpoint or Kill.
	Saving preempt.Mechanism
}

// NewDynamic returns the default dynamic selector (CHECKPOINT saving).
func NewDynamic() Dynamic { return Dynamic{Saving: preempt.Checkpoint} }

// Name implements MechanismSelector.
func (d Dynamic) Name() string { return "dynamic-" + d.Saving.String() }

// Select implements MechanismSelector (Algorithm 3).
func (d Dynamic) Select(current, candidate *Task) preempt.Mechanism {
	if current == nil {
		return d.Saving
	}
	curRemaining := float64(current.EstimatedRemaining())
	candRemaining := float64(candidate.EstimatedRemaining())
	curEstimated := float64(current.EstimatedCycles)
	candEstimated := float64(candidate.EstimatedCycles)
	if curEstimated <= 0 || candEstimated <= 0 {
		return d.Saving
	}
	// Degradation the current task suffers if preempted: it idles for
	// the candidate's remaining execution, relative to its own length.
	degCurrent := candRemaining / curEstimated
	// Degradation the candidate suffers under DRAIN: it idles for the
	// current task's remaining execution, relative to its own length.
	degCandidate := curRemaining / candEstimated
	if degCurrent > degCandidate {
		return preempt.Drain
	}
	return d.Saving
}

// SelectorFactory constructs one mechanism-selector instance for one
// simulation run.
type SelectorFactory func() (MechanismSelector, error)

// selectorReg is the mechanism-selector registry; the paper's
// configurations are pre-registered through the same RegisterSelector
// path external callers use. selectorAlias maps the accepted shorthand
// labels onto canonical registered names.
var (
	selectorMu  sync.RWMutex
	selectorReg = map[string]SelectorFactory{}

	selectorAlias = map[string]string{
		"static":             "static-checkpoint",
		"dynamic-checkpoint": "dynamic",
	}
)

// canonicalSelector resolves shorthand labels onto registered names.
func canonicalSelector(name string) string {
	if canon, ok := selectorAlias[name]; ok {
		return canon
	}
	return name
}

// RegisterSelector adds a mechanism-selector configuration under a label.
// Registration is write-once: a duplicate label is an error, so a label
// always denotes one configuration for the life of the process.
func RegisterSelector(name string, factory SelectorFactory) error {
	if name == "" {
		return fmt.Errorf("sched: empty selector name")
	}
	if factory == nil {
		return fmt.Errorf("sched: nil factory for selector %q", name)
	}
	selectorMu.Lock()
	defer selectorMu.Unlock()
	if _, dup := selectorReg[name]; dup {
		return fmt.Errorf("sched: selector %q already registered", name)
	}
	if _, shadows := selectorAlias[name]; shadows {
		return fmt.Errorf("sched: selector %q would shadow a builtin alias", name)
	}
	selectorReg[name] = factory
	return nil
}

// HasSelector reports whether a selector label (or accepted alias) is
// registered.
func HasSelector(name string) bool {
	selectorMu.RLock()
	defer selectorMu.RUnlock()
	_, ok := selectorReg[canonicalSelector(name)]
	return ok
}

// SelectorNames lists the registered selector labels in sorted order
// (canonical names only; aliases are omitted).
func SelectorNames() []string {
	selectorMu.RLock()
	defer selectorMu.RUnlock()
	names := make([]string, 0, len(selectorReg))
	for name := range selectorReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SelectorByName constructs a mechanism selector by configuration label.
func SelectorByName(name string) (MechanismSelector, error) {
	selectorMu.RLock()
	factory, ok := selectorReg[canonicalSelector(name)]
	selectorMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown mechanism selector %q (known: %v)",
			name, SelectorNames())
	}
	return factory()
}

// mustRegisterSelector registers a builtin configuration.
func mustRegisterSelector(name string, factory SelectorFactory) {
	if err := RegisterSelector(name, factory); err != nil {
		panic(err)
	}
}

func init() {
	mustRegisterSelector("static-checkpoint", func() (MechanismSelector, error) {
		return Static{M: preempt.Checkpoint}, nil
	})
	mustRegisterSelector("static-kill", func() (MechanismSelector, error) {
		return Static{M: preempt.Kill}, nil
	})
	mustRegisterSelector("static-kill-layer", func() (MechanismSelector, error) {
		return Static{M: preempt.KillLayer}, nil
	})
	mustRegisterSelector("static-drain", func() (MechanismSelector, error) {
		return Static{M: preempt.Drain}, nil
	})
	mustRegisterSelector("dynamic", func() (MechanismSelector, error) {
		return NewDynamic(), nil
	})
	mustRegisterSelector("dynamic-kill", func() (MechanismSelector, error) {
		return Dynamic{Saving: preempt.Kill}, nil
	})
	mustRegisterSelector("dynamic-kill-layer", func() (MechanismSelector, error) {
		return Dynamic{Saving: preempt.KillLayer}, nil
	})
}
