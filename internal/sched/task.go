// Package sched implements PREMA's scheduling framework (Section V): the
// inference task context table (Figure 4), the token-based PREMA
// scheduling policy (Algorithm 2), the dynamic preemption-mechanism
// selection (Algorithm 3), and the comparison policies of the evaluation
// (FCFS, RRB, HPF, TOKEN, SJF).
package sched

import (
	"fmt"

	"repro/internal/npu"
)

// Priority is a user-defined service priority level. The paper assigns
// tokens 1/3/9 for low/medium/high (Table II).
type Priority int

const (
	// Low priority (1 token).
	Low Priority = 1
	// Medium priority (3 tokens).
	Medium Priority = 3
	// High priority (9 tokens).
	High Priority = 9
)

// Priorities lists the three levels in ascending order.
var Priorities = []Priority{Low, Medium, High}

// String names the priority level.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Tokens returns the initial token grant for the level (Table II maps a
// level's token count to its numeric priority value).
func (p Priority) Tokens() float64 { return float64(p) }

// State is the life-cycle state recorded in the context table.
type State int

const (
	// Waiting: dispatched to the NPU scheduler, in the ready queue.
	Waiting State = iota
	// Running: currently executing on the NPU.
	Running
	// Finished: completed execution.
	Finished
)

// String names the state.
func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Running:
		return "running"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Task is one inference request tracked by the scheduler — an entry of
// the inference task context table (Figure 4) together with the compiled
// program and execution cursor the simulator drives.
type Task struct {
	// ID is the TaskID (also the memory-protection ASID, Section IV-A).
	ID int
	// Model is the workload label.
	Model string
	// Batch is the inference batch size.
	Batch int
	// Priority is the user-defined priority level.
	Priority Priority

	// Arrival is the dispatch cycle at which the task entered the NPU
	// task queue.
	Arrival int64
	// EstimatedCycles is the predictor's network-wide latency estimate
	// (Time_estimated in Algorithms 2-3).
	EstimatedCycles int64
	// IsolatedCycles is the true uninterrupted execution time
	// (Time_isolated), used for metrics; the scheduler itself only
	// consults EstimatedCycles.
	IsolatedCycles int64

	// Exec is the execution cursor over the compiled program.
	Exec *npu.Execution

	// Token is the scheduling-token balance (Algorithm 2).
	Token float64
	// State is the context-table state field.
	State State

	// Waited accumulates cycles spent in the ready queue.
	Waited int64
	// lastWake is the cycle at which waiting time was last accrued.
	lastWake int64

	// Start is the cycle the task first began executing (-1 before).
	Start int64
	// LastScheduled is the cycle the task most recently began an
	// execution span (-1 before the first dispatch). Unlike Start it is
	// updated on every dispatch, including resumption after a
	// preemption, which is what round-robin recency must order by.
	LastScheduled int64
	// Completion is the cycle the task finished (-1 before).
	Completion int64

	// Preemptions counts how many times the task was preempted.
	Preemptions int
	// CheckpointCycles accumulates checkpoint+restore DMA overhead the
	// task's own context transfers consumed.
	CheckpointCycles int64
	// WastedCycles accumulates executed work discarded by KILL.
	WastedCycles int64
	// SavedBytes is the size of the live checkpointed context while
	// the task is preempted-with-state (0 otherwise).
	SavedBytes int64
	// PendingOverhead is NPU-busy time (context restore) that must be
	// paid before the task's next instruction executes.
	PendingOverhead int64
}

// NewTask initializes a context-table entry. The initial token grant is
// the task's priority level (Algorithm 2, initialization).
func NewTask(id int, model string, batch int, prio Priority, arrival int64, exec *npu.Execution, estimated int64) *Task {
	return &Task{
		ID:              id,
		Model:           model,
		Batch:           batch,
		Priority:        prio,
		Arrival:         arrival,
		EstimatedCycles: estimated,
		IsolatedCycles:  exec.Program().TotalCycles,
		Exec:            exec,
		Token:           prio.Tokens(),
		State:           Waiting,
		lastWake:        arrival,
		Start:           -1,
		LastScheduled:   -1,
		Completion:      -1,
	}
}

// Executed returns the cycles of useful progress so far.
func (t *Task) Executed() int64 { return t.Exec.Executed() }

// EstimatedRemaining returns Time_estimated - Time_executed, clamped at
// zero (Algorithm 3 lines 1-2). A task that outlives its estimate is
// treated as nearly done.
func (t *Task) EstimatedRemaining() int64 {
	rem := t.EstimatedCycles - t.Executed()
	if rem < 0 {
		return 0
	}
	return rem
}

// AccrueWait adds ready-queue idle time up to now and updates the token
// balance bookkeeping point. Only waiting tasks accrue.
func (t *Task) AccrueWait(now int64) {
	if t.State == Waiting && now > t.lastWake {
		t.Waited += now - t.lastWake
	}
	t.lastWake = now
}

// NormalizedSlowdown is the Slowdown_normalized term of Algorithm 2
// line 7 for the wait accrued since the previous scheduling event: idle
// time relative to the task's estimated isolated execution time. Short
// jobs therefore accumulate tokens faster than long ones.
func (t *Task) NormalizedSlowdown(waitDelta int64) float64 {
	if t.EstimatedCycles <= 0 {
		return 0
	}
	return float64(waitDelta) / float64(t.EstimatedCycles)
}

// MarkRunning transitions the task onto the NPU at cycle now. Start is
// recorded only on the first dispatch; LastScheduled on every dispatch.
func (t *Task) MarkRunning(now int64) {
	t.AccrueWait(now)
	t.State = Running
	if t.Start < 0 {
		t.Start = now
	}
	t.LastScheduled = now
}

// MarkWaiting returns the task to the ready queue at cycle now (after a
// preemption).
func (t *Task) MarkWaiting(now int64) {
	t.State = Waiting
	t.lastWake = now
}

// MarkFinished records completion at cycle now.
func (t *Task) MarkFinished(now int64) {
	t.State = Finished
	t.Completion = now
}

// Turnaround returns the multi-tasked turnaround time C_multi (Equation 1)
// once the task has finished.
func (t *Task) Turnaround() int64 {
	if t.Completion < 0 {
		return -1
	}
	return t.Completion - t.Arrival
}

// NTT returns the normalized turnaround time C_multi / C_single.
func (t *Task) NTT() float64 {
	ta := t.Turnaround()
	if ta < 0 || t.IsolatedCycles <= 0 {
		return 0
	}
	return float64(ta) / float64(t.IsolatedCycles)
}
