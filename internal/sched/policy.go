package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Config holds the PREMA scheduler configuration (Table II).
type Config struct {
	// Quantum is the scheduling period time-quota (0.25 ms).
	Quantum time.Duration
	// TokenThresholdLevels are the token values the candidate threshold
	// is rounded down to ({1,3,9}, i.e. the per-priority grants).
	TokenThresholdLevels []float64
}

// DefaultConfig returns Table II's configuration.
func DefaultConfig() Config {
	return Config{
		Quantum:              250 * time.Microsecond,
		TokenThresholdLevels: []float64{1, 3, 9},
	}
}

// Decision is a scheduling policy's recommendation at one wake-up.
type Decision struct {
	// Candidate is the task the policy wants on the NPU next (nil when
	// the ready queue is empty).
	Candidate *Task
	// Preempt reports whether the policy recommends preempting the
	// currently running task in favor of Candidate. Always false when
	// the NPU is idle or the policy is used non-preemptively.
	Preempt bool
}

// Policy selects which task to run. Implementations are pure decision
// logic over the context table; the simulator owns time and mechanisms.
//
// Policies may keep internal scratch buffers between Pick calls (the
// token-based policies reuse their candidate-group buffer), so a Policy
// instance must not be shared by concurrently running simulators.
// Construct one instance per simulation run; exp's experiment engine
// does exactly that.
type Policy interface {
	// Name is the evaluation label (e.g. "FCFS", "PREMA").
	Name() string
	// UsesPredictor reports whether the policy consults task length
	// estimates (TOKEN, SJF and PREMA do; Figure 11's caption).
	UsesPredictor() bool
	// Pick chooses a candidate from the ready tasks, given the
	// currently running task (nil when the NPU is idle) and the
	// current cycle. ready is never empty. Implementations must not
	// retain ready.
	Pick(ready []*Task, current *Task, now int64) Decision
}

// tieBreak orders two tasks deterministically: earlier arrival first,
// then lower ID.
func tieBreak(a, b *Task) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// pickBy returns the ready task minimizing less (a strict weak order).
func pickBy(ready []*Task, less func(a, b *Task) bool) *Task {
	best := ready[0]
	for _, t := range ready[1:] {
		if less(t, best) {
			best = t
		}
	}
	return best
}

// FCFS is the baseline first-come first-serve policy of TensorRT
// Inference Server (Section I). Non-preemptive by construction: it never
// recommends preemption.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// UsesPredictor implements Policy.
func (FCFS) UsesPredictor() bool { return false }

// Pick implements Policy.
func (FCFS) Pick(ready []*Task, current *Task, now int64) Decision {
	return Decision{Candidate: pickBy(ready, tieBreak)}
}

// RRB schedules round-robin among the co-located tasks: at each decision
// it picks the ready task least-recently scheduled (by the start of its
// most recent execution span), cycling through the task mix. Ordering by
// Task.Start would be wrong under preemption: Start is pinned to the
// first dispatch, so a preempted-and-resumed task would keep its original
// position and the rotation would degenerate to first-scheduled-first.
type RRB struct{}

// Name implements Policy.
func (RRB) Name() string { return "RRB" }

// UsesPredictor implements Policy.
func (RRB) UsesPredictor() bool { return false }

// Pick implements Policy.
func (RRB) Pick(ready []*Task, current *Task, now int64) Decision {
	cand := pickBy(ready, func(a, b *Task) bool {
		// Never-scheduled tasks (LastScheduled < 0) sort before
		// previously-run ones; among equals, FCFS order.
		as, bs := a.LastScheduled, b.LastScheduled
		if as != bs {
			return as < bs
		}
		return tieBreak(a, b)
	})
	return Decision{Candidate: cand}
}

// HPF is the high-priority-first policy (Figure 2(b)/(c)). Preemptive use
// recommends preemption when the candidate's priority strictly exceeds
// the running task's.
type HPF struct{}

// Name implements Policy.
func (HPF) Name() string { return "HPF" }

// UsesPredictor implements Policy.
func (HPF) UsesPredictor() bool { return false }

// Pick implements Policy.
func (HPF) Pick(ready []*Task, current *Task, now int64) Decision {
	cand := pickBy(ready, func(a, b *Task) bool {
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return tieBreak(a, b)
	})
	return Decision{
		Candidate: cand,
		Preempt:   current != nil && cand.Priority > current.Priority,
	}
}

// SJF schedules the shortest estimated job first using the prediction
// model — latency-optimal but priority-unaware (Section VI-A). Preemptive
// use recommends preemption when the candidate's estimated remaining time
// is strictly below the running task's.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// UsesPredictor implements Policy.
func (SJF) UsesPredictor() bool { return true }

// Pick implements Policy.
func (SJF) Pick(ready []*Task, current *Task, now int64) Decision {
	cand := pickBy(ready, func(a, b *Task) bool {
		ar, br := a.EstimatedRemaining(), b.EstimatedRemaining()
		if ar != br {
			return ar < br
		}
		return tieBreak(a, b)
	})
	return Decision{
		Candidate: cand,
		Preempt:   current != nil && cand.EstimatedRemaining() < current.EstimatedRemaining(),
	}
}

// tokenFramework implements the shared token accounting of TOKEN and
// PREMA (Algorithm 2): periodic priority- and slowdown-proportional token
// grants, and threshold-based candidate-group selection. The scratch
// buffer is reused across Pick calls so candidate-group selection is
// allocation-free in steady state; it is what makes token-based policies
// single-simulation instances (see the Policy contract).
type tokenFramework struct {
	cfg Config

	// scratch backs the candidate group returned by Candidates; valid
	// only until the next call.
	scratch []*Task
}

// UpdateTokens applies Algorithm 2 line 7 to every waiting task: each
// task receives UserDefinedPriority x Slowdown_normalized additional
// tokens for the ready-queue idle time accrued since the last scheduling
// event. The simulator calls this at every scheduler wake-up.
func UpdateTokens(tasks []*Task, now int64) {
	for _, t := range tasks {
		if t.State != Waiting {
			t.AccrueWait(now)
			continue
		}
		before := t.Waited
		t.AccrueWait(now)
		delta := t.Waited - before
		if delta > 0 {
			t.Token += t.Priority.Tokens() * t.NormalizedSlowdown(delta)
		}
	}
}

// Candidates returns the candidate group of Algorithm 2 line 9: the
// threshold is the largest token balance in the ready queue rounded down
// (never up) to the closest configured level, and every task at or above
// it is a candidate. The group is never empty for a non-empty queue. The
// returned slice aliases the framework's scratch buffer and is valid only
// until the next call.
func (f *tokenFramework) Candidates(ready []*Task) []*Task {
	maxTok := math.Inf(-1)
	for _, t := range ready {
		if t.Token > maxTok {
			maxTok = t.Token
		}
	}
	threshold := f.roundDown(maxTok)
	cands := f.scratch[:0]
	for _, t := range ready {
		if t.Token >= threshold {
			cands = append(cands, t)
		}
	}
	f.scratch = cands
	if len(cands) == 0 {
		// Defensive: float rounding should never exclude the max
		// holder, but the scheduler must always make progress.
		cands = ready
	}
	return cands
}

// roundDown maps a token balance onto the closest configured level from
// below; balances below the lowest level map to it so the candidate test
// (token >= threshold) still admits the maximum holder.
func (f *tokenFramework) roundDown(tok float64) float64 {
	levels := f.cfg.TokenThresholdLevels
	if len(levels) == 0 {
		return tok
	}
	th := levels[0]
	for _, l := range levels {
		if tok >= l {
			th = l
		}
	}
	return th
}

// Token is the TOKEN policy of Figure 11: Algorithm 2's candidate group,
// but with naive FCFS selection among the candidates instead of PREMA's
// shortest-estimated-job selection.
type Token struct {
	f tokenFramework
}

// NewToken builds the TOKEN policy with the given scheduler config.
func NewToken(cfg Config) *Token { return &Token{f: tokenFramework{cfg: cfg}} }

// Name implements Policy.
func (*Token) Name() string { return "TOKEN" }

// UsesPredictor implements Policy.
func (*Token) UsesPredictor() bool { return true }

// Pick implements Policy.
func (p *Token) Pick(ready []*Task, current *Task, now int64) Decision {
	cands := p.f.Candidates(ready)
	cand := pickBy(cands, tieBreak)
	return Decision{Candidate: cand, Preempt: tokenPreempt(cand, current)}
}

// tokenHysteresis is the token-dominance ratio a candidate needs to
// displace a runner it cannot beat on estimated remaining time.
const tokenHysteresis = 1.5

// tokenPreempt is the preemption recommendation shared by the token-based
// policies (Section V-C). The candidate displaces the runner when either
//
//  1. it is estimated to finish sooner AND holds at least as many tokens
//     (the Figure 2(d) short-job fast path), or
//  2. its token balance clearly dominates the runner's (priority or
//     starvation urgency, regardless of length).
//
// The two rules cannot both hold in opposite directions at the same
// instant (rule 1 requires cand.Token >= cur.Token, contradicting the
// reverse rule 2), and the hysteresis on rule 2 makes repeated
// leapfrogging between two starving tasks self-extinguishing — without
// it, two tasks could preempt each other every scheduling period, which
// thrashes under CHECKPOINT and livelocks under KILL (all progress
// discarded on each swap). Whether a recommended preemption actually
// interrupts the runner is Algorithm 3's decision: the dynamic selector
// overrides with DRAIN when the runner is nearly done (Section V-C).
func tokenPreempt(cand, current *Task) bool {
	if current == nil {
		return false
	}
	if cand.EstimatedRemaining() < current.EstimatedRemaining() && cand.Token >= current.Token {
		return true
	}
	return cand.Token > tokenHysteresis*current.Token
}

// PREMA is the paper's scheduler (Algorithm 2): the token-based candidate
// group balances priority and accumulated slowdown, and the final
// candidate is the shortest estimated job within the group, optimizing
// average latency without starving low-priority short tasks.
type PREMA struct {
	f tokenFramework
}

// NewPREMA builds the PREMA policy with the given scheduler config.
func NewPREMA(cfg Config) *PREMA { return &PREMA{f: tokenFramework{cfg: cfg}} }

// Name implements Policy.
func (*PREMA) Name() string { return "PREMA" }

// UsesPredictor implements Policy.
func (*PREMA) UsesPredictor() bool { return true }

// Pick implements Policy.
func (p *PREMA) Pick(ready []*Task, current *Task, now int64) Decision {
	cands := p.f.Candidates(ready)
	cand := pickBy(cands, func(a, b *Task) bool {
		ar, br := a.EstimatedRemaining(), b.EstimatedRemaining()
		if ar != br {
			return ar < br
		}
		return tieBreak(a, b)
	})
	// PREMA recommends scheduling its candidate over the runner per
	// the shared token rule; Algorithm 3 may still override with
	// DRAIN, which is what protects a nearly-finished running task
	// from a longer candidate and distinguishes the dynamic
	// configuration from statically always checkpointing (Figure 12).
	return Decision{Candidate: cand, Preempt: tokenPreempt(cand, current)}
}

// PolicyFactory constructs one policy instance for one simulation run.
// Factories must return a fresh instance per call: policies may keep
// scratch state (see the Policy contract), so instances cannot be shared
// across concurrently running simulators.
type PolicyFactory func(Config) (Policy, error)

// policyReg is the policy registry. The six paper policies are
// pre-registered through the same RegisterPolicy path external callers
// use; the facade re-exports registration so custom policies plug in
// without touching internal packages.
var (
	policyMu  sync.RWMutex
	policyReg = map[string]PolicyFactory{}
)

// RegisterPolicy adds a policy under an evaluation label. Registration is
// write-once: a duplicate label is an error, so a label always denotes one
// policy for the life of the process (the simulation cache relies on it).
func RegisterPolicy(name string, factory PolicyFactory) error {
	if name == "" {
		return fmt.Errorf("sched: empty policy name")
	}
	if factory == nil {
		return fmt.Errorf("sched: nil factory for policy %q", name)
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[name]; dup {
		return fmt.Errorf("sched: policy %q already registered", name)
	}
	policyReg[name] = factory
	return nil
}

// HasPolicy reports whether a policy label is registered.
func HasPolicy(name string) bool {
	policyMu.RLock()
	defer policyMu.RUnlock()
	_, ok := policyReg[name]
	return ok
}

// PolicyNames lists the registered policy labels in sorted order.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyReg))
	for name := range policyReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName constructs a policy by its evaluation label.
func ByName(name string, cfg Config) (Policy, error) {
	policyMu.RLock()
	factory, ok := policyReg[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (known: %v)", name, PolicyNames())
	}
	return factory(cfg)
}

// mustRegisterPolicy registers a builtin; the labels are distinct string
// literals, so failure is a programming error.
func mustRegisterPolicy(name string, factory PolicyFactory) {
	if err := RegisterPolicy(name, factory); err != nil {
		panic(err)
	}
}

func init() {
	mustRegisterPolicy("FCFS", func(Config) (Policy, error) { return FCFS{}, nil })
	mustRegisterPolicy("RRB", func(Config) (Policy, error) { return RRB{}, nil })
	mustRegisterPolicy("HPF", func(Config) (Policy, error) { return HPF{}, nil })
	mustRegisterPolicy("SJF", func(Config) (Policy, error) { return SJF{}, nil })
	mustRegisterPolicy("TOKEN", func(cfg Config) (Policy, error) { return NewToken(cfg), nil })
	mustRegisterPolicy("PREMA", func(cfg Config) (Policy, error) { return NewPREMA(cfg), nil })
}
