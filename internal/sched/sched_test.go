package sched

import (
	"testing"

	"repro/internal/npu"
	"repro/internal/preempt"
)

// makeTask builds a context-table entry with a synthetic single-instruction
// program of the given total cycles.
func makeTask(id int, prio Priority, arrival, totalCycles int64) *Task {
	prog := &npu.Program{Model: "synthetic", Batch: 1, TotalCycles: totalCycles}
	remaining := totalCycles
	for remaining > 0 {
		c := remaining
		const chunk = 1 << 20
		if c > chunk {
			c = chunk
		}
		prog.Instrs = append(prog.Instrs, npu.Instr{Op: npu.GEMMOp, Cycles: int32(c)})
		remaining -= c
	}
	exec := npu.NewExecution(prog)
	return NewTask(id, "synthetic", 1, prio, arrival, exec, totalCycles)
}

func TestPriorityTokens(t *testing.T) {
	// Table II: 1/3/9 tokens for low/medium/high.
	if Low.Tokens() != 1 || Medium.Tokens() != 3 || High.Tokens() != 9 {
		t.Error("priority token grants do not match Table II")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("priority names wrong")
	}
	if Priority(5).String() == "" {
		t.Error("unknown priority should render")
	}
}

func TestStateString(t *testing.T) {
	if Waiting.String() != "waiting" || Running.String() != "running" || Finished.String() != "finished" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state should render")
	}
}

func TestTaskLifecycle(t *testing.T) {
	task := makeTask(1, Medium, 100, 1000)
	if task.Token != 3 {
		t.Errorf("initial tokens = %v, want priority grant 3", task.Token)
	}
	if task.State != Waiting || task.Start != -1 || task.Completion != -1 {
		t.Error("fresh task state wrong")
	}
	task.AccrueWait(600)
	if task.Waited != 500 {
		t.Errorf("Waited = %d, want 500", task.Waited)
	}
	task.MarkRunning(700)
	if task.Waited != 600 || task.State != Running || task.Start != 700 {
		t.Errorf("after MarkRunning: waited=%d state=%v start=%d", task.Waited, task.State, task.Start)
	}
	task.Exec.Advance(400)
	task.MarkWaiting(1100)
	task.AccrueWait(1200)
	if task.Waited != 700 {
		t.Errorf("Waited after preemption = %d, want 700", task.Waited)
	}
	task.MarkRunning(1300)
	if task.Start != 700 {
		t.Error("Start must record the first dispatch only")
	}
	task.Exec.Advance(600)
	task.MarkFinished(1900)
	if task.State != Finished || task.Completion != 1900 {
		t.Error("completion not recorded")
	}
	if task.Turnaround() != 1800 {
		t.Errorf("Turnaround = %d, want 1800", task.Turnaround())
	}
	if ntt := task.NTT(); ntt != 1.8 {
		t.Errorf("NTT = %v, want 1.8", ntt)
	}
}

func TestEstimatedRemainingClamped(t *testing.T) {
	task := makeTask(1, Low, 0, 1000)
	task.EstimatedCycles = 500 // underestimate
	task.Exec.Advance(800)
	if rem := task.EstimatedRemaining(); rem != 0 {
		t.Errorf("over-run task remaining = %d, want clamped 0", rem)
	}
}

func TestRunningTasksDoNotAccrueWait(t *testing.T) {
	task := makeTask(1, Low, 0, 1000)
	task.MarkRunning(10)
	task.AccrueWait(500)
	if task.Waited != 10 {
		t.Errorf("running task accrued wait: %d", task.Waited)
	}
}

func TestUpdateTokensProportionalToSlowdownAndPriority(t *testing.T) {
	short := makeTask(1, Low, 0, 1000) // short job
	long := makeTask(2, Low, 0, 100000)
	hi := makeTask(3, High, 0, 100000)
	tasks := []*Task{short, long, hi}
	UpdateTokens(tasks, 1000)
	// All waited 1000 cycles. Slowdown_norm = 1000/estimated.
	if short.Token <= long.Token {
		t.Errorf("short job should accumulate faster: %v vs %v", short.Token, long.Token)
	}
	if hi.Token-9 <= (long.Token-1)*2 {
		t.Errorf("high priority should accumulate ~9x faster than low: %v vs %v",
			hi.Token-9, long.Token-1)
	}
	// Expected exact values: short: 1 + 1*1000/1000 = 2.
	if short.Token != 2 {
		t.Errorf("short token = %v, want 2", short.Token)
	}
}

func TestCandidateThresholdRounding(t *testing.T) {
	f := tokenFramework{cfg: DefaultConfig()}
	cases := []struct {
		tok  float64
		want float64
	}{
		{0.5, 1}, {1, 1}, {2.9, 1}, {3, 3}, {8, 3}, {9, 9}, {42, 9},
	}
	for _, c := range cases {
		if got := f.roundDown(c.tok); got != c.want {
			t.Errorf("roundDown(%v) = %v, want %v (Table II levels)", c.tok, got, c.want)
		}
	}
}

func TestCandidateGroupIncludesMaxHolder(t *testing.T) {
	f := tokenFramework{cfg: DefaultConfig()}
	a := makeTask(1, Low, 0, 1000)
	a.Token = 8
	b := makeTask(2, Low, 0, 1000)
	b.Token = 2
	c := makeTask(3, Low, 0, 1000)
	c.Token = 4
	cands := f.Candidates([]*Task{a, b, c})
	// Paper's worked example: max token 8 rounds the threshold down to
	// 3 (not 9), so tasks with >= 3 tokens qualify.
	if len(cands) != 2 {
		t.Fatalf("candidate group size %d, want 2 (tokens 8 and 4)", len(cands))
	}
	for _, cand := range cands {
		if cand.Token < 3 {
			t.Errorf("candidate with %v tokens below threshold", cand.Token)
		}
	}
}

func TestFCFSPicksEarliestArrival(t *testing.T) {
	p := FCFS{}
	a := makeTask(1, Low, 500, 1000)
	b := makeTask(2, High, 100, 1000)
	dec := p.Pick([]*Task{a, b}, nil, 1000)
	if dec.Candidate != b {
		t.Error("FCFS must pick the earliest arrival regardless of priority")
	}
	if dec.Preempt {
		t.Error("FCFS never recommends preemption")
	}
}

func TestHPFPicksHighestPriority(t *testing.T) {
	p := HPF{}
	lo := makeTask(1, Low, 0, 1000)
	hi := makeTask(2, High, 500, 1000)
	dec := p.Pick([]*Task{lo, hi}, nil, 1000)
	if dec.Candidate != hi {
		t.Error("HPF must pick the high-priority task")
	}
	// Preemption only for strictly higher priority (Figure 2(c)).
	running := makeTask(3, Medium, 0, 1000)
	dec = p.Pick([]*Task{hi}, running, 1000)
	if !dec.Preempt {
		t.Error("high-priority candidate should preempt medium runner")
	}
	dec = p.Pick([]*Task{makeTask(4, Medium, 10, 1000)}, running, 1000)
	if dec.Preempt {
		t.Error("equal priority must not preempt")
	}
}

func TestSJFPicksShortestRemaining(t *testing.T) {
	p := SJF{}
	long := makeTask(1, High, 0, 100000)
	short := makeTask(2, Low, 10, 1000)
	dec := p.Pick([]*Task{long, short}, nil, 100)
	if dec.Candidate != short {
		t.Error("SJF must pick the shortest estimated job, ignoring priority")
	}
	// SRTF semantics: preempt only a strictly longer runner.
	dec = p.Pick([]*Task{short}, long, 100)
	if !dec.Preempt {
		t.Error("shorter candidate should preempt longer runner")
	}
	dec = p.Pick([]*Task{long}, short, 100)
	if dec.Preempt {
		t.Error("longer candidate must not preempt shorter runner")
	}
}

func TestSJFUsesRemainingNotTotal(t *testing.T) {
	p := SJF{}
	mostlyDone := makeTask(1, Low, 0, 100000)
	mostlyDone.Exec.Advance(99500) // 500 remaining
	fresh := makeTask(2, Low, 10, 1000)
	dec := p.Pick([]*Task{mostlyDone, fresh}, nil, 100)
	if dec.Candidate != mostlyDone {
		t.Error("SJF must rank by estimated remaining work")
	}
}

func TestRRBPrefersLeastRecentlyRun(t *testing.T) {
	p := RRB{}
	a := makeTask(1, Low, 0, 1000)
	b := makeTask(2, Low, 5, 1000)
	a.MarkRunning(500) // a ran before
	a.MarkWaiting(600)
	dec := p.Pick([]*Task{a, b}, nil, 1000)
	if dec.Candidate != b {
		t.Error("RRB must rotate to the never-run task")
	}
}

// TestRRBRotatesAfterResumption is the regression test for the
// least-recently-scheduled ordering: Start is pinned to the first
// dispatch, so ordering by it makes a preempted-and-resumed task keep its
// original rotation slot (first-scheduled-first, not round-robin). RRB
// must order by LastScheduled, which moves on every dispatch.
func TestRRBRotatesAfterResumption(t *testing.T) {
	p := RRB{}
	a := makeTask(1, Low, 0, 10000)
	b := makeTask(2, Low, 0, 10000)
	// a is scheduled first, preempted, then resumed AFTER b's first
	// span: a.Start (100) < b.Start (500), yet a is the most recently
	// scheduled (900).
	a.MarkRunning(100)
	a.MarkWaiting(400) // preempted
	b.MarkRunning(500)
	b.MarkWaiting(600) // preempted
	a.MarkRunning(900) // resumed
	a.MarkWaiting(950) // preempted again
	if a.Start != 100 || a.LastScheduled != 900 {
		t.Fatalf("a Start/LastScheduled = %d/%d, want 100/900", a.Start, a.LastScheduled)
	}
	dec := p.Pick([]*Task{a, b}, nil, 1000)
	if dec.Candidate != b {
		t.Error("RRB must pick the least-recently *scheduled* task (b), not the first-started")
	}
	// And once b runs again, the rotation comes back to a.
	b.MarkRunning(1000)
	b.MarkWaiting(1100)
	dec = p.Pick([]*Task{a, b}, nil, 1200)
	if dec.Candidate != a {
		t.Error("RRB rotation must return to a after b's resumption")
	}
}

func TestTokenPolicyFCFSWithinCandidates(t *testing.T) {
	p := NewToken(DefaultConfig())
	early := makeTask(1, Low, 0, 1000)
	early.Token = 4
	late := makeTask(2, Low, 100, 1000)
	late.Token = 8
	dec := p.Pick([]*Task{early, late}, nil, 1000)
	// Both are candidates (threshold 3); FCFS picks the earlier.
	if dec.Candidate != early {
		t.Error("TOKEN should pick FCFS within the candidate group")
	}
}

func TestPREMAPicksShortestWithinCandidates(t *testing.T) {
	p := NewPREMA(DefaultConfig())
	// High-token long job vs low-token short job: the short one falls
	// below the threshold and must NOT be chosen.
	long := makeTask(1, High, 0, 100000)
	long.Token = 9
	short := makeTask(2, Low, 10, 1000)
	short.Token = 1
	dec := p.Pick([]*Task{long, short}, nil, 100)
	if dec.Candidate != long {
		t.Error("PREMA must respect the token threshold (9 rounds to 9)")
	}
	// When both are candidates, the shorter wins.
	short.Token = 9.5
	dec = p.Pick([]*Task{long, short}, nil, 100)
	if dec.Candidate != short {
		t.Error("PREMA must pick the shortest job within the candidate group")
	}
	// Preemption recommendation: a short, high-token candidate clearly
	// dominates a long low-token runner.
	runner := makeTask(3, Low, 0, 1000000)
	urgent := makeTask(4, High, 10, 2000)
	dec = p.Pick([]*Task{urgent}, runner, 100)
	if !dec.Preempt {
		t.Error("urgent short candidate should preempt a long low-priority runner")
	}
	// A token-dominant candidate is recommended even over a short
	// runner — it is Algorithm 3's job to drain in that case.
	shortRunner := makeTask(5, Low, 0, 500)
	dec = p.Pick([]*Task{long}, shortRunner, 100)
	if !dec.Preempt {
		t.Error("token-dominant candidate should be recommended; DRAIN is Algorithm 3's call")
	}
}

func TestTokenPreemptIsAsymmetric(t *testing.T) {
	// The recommendation can never fire in both directions between the
	// same pair at the same instant — that is what rules out the KILL
	// leapfrog livelock.
	pairs := [][2]*Task{
		{makeTask(1, Medium, 0, 5000), makeTask(2, Medium, 0, 4000)},
		{makeTask(3, High, 0, 50000), makeTask(4, Low, 0, 500)},
		{makeTask(5, Low, 0, 500), makeTask(6, High, 0, 50000)},
	}
	for i, p := range pairs {
		if tokenPreempt(p[0], p[1]) && tokenPreempt(p[1], p[0]) {
			t.Errorf("pair %d: both directions recommend preemption", i)
		}
	}
	// A shorter candidate with equal tokens takes the fast path.
	short := makeTask(7, Medium, 0, 1000)
	long := makeTask(8, Medium, 0, 100000)
	if !tokenPreempt(short, long) {
		t.Error("shorter equal-token candidate should displace the runner (Figure 2(d))")
	}
	// A slightly-higher-token but longer candidate is suppressed by the
	// hysteresis.
	slightly := makeTask(9, Medium, 0, 100000)
	slightly.Token = 3.2
	runner := makeTask(10, Medium, 0, 1000)
	if tokenPreempt(slightly, runner) {
		t.Error("marginal token advantage must not displace a shorter runner")
	}
	// A clear token dominance (one priority level up) does displace.
	dominant := makeTask(11, High, 0, 100000)
	if !tokenPreempt(dominant, runner) {
		t.Error("token-dominant candidate should displace the runner")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA"} {
		p, err := ByName(name, DefaultConfig())
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope", DefaultConfig()); err == nil {
		t.Error("unknown policy should error")
	}
	preds := map[string]bool{"FCFS": false, "RRB": false, "HPF": false,
		"TOKEN": true, "SJF": true, "PREMA": true}
	for name, want := range preds {
		p, _ := ByName(name, DefaultConfig())
		if p.UsesPredictor() != want {
			t.Errorf("%s.UsesPredictor() = %v, want %v (Figure 11)", name, p.UsesPredictor(), want)
		}
	}
}

func TestAlgorithm3DrainVsCheckpoint(t *testing.T) {
	d := NewDynamic()
	// Current nearly done, candidate long: DRAIN protects the runner.
	current := makeTask(1, Low, 0, 100000)
	current.Exec.Advance(99000) // 1000 remaining of 100000
	candidate := makeTask(2, High, 10, 80000)
	if got := d.Select(current, candidate); got != preempt.Drain {
		t.Errorf("nearly-done runner + long candidate = %v, want DRAIN", got)
	}
	// Current long, candidate short: preempt via checkpoint.
	current2 := makeTask(3, Low, 0, 100000)
	current2.Exec.Advance(1000)
	candidate2 := makeTask(4, High, 10, 2000)
	if got := d.Select(current2, candidate2); got != preempt.Checkpoint {
		t.Errorf("fresh long runner + short candidate = %v, want CHECKPOINT", got)
	}
	// Idle NPU: nothing to drain.
	if got := d.Select(nil, candidate2); got != preempt.Checkpoint {
		t.Errorf("nil current = %v, want saving mechanism", got)
	}
}

func TestAlgorithm3ExactComparison(t *testing.T) {
	// Deg_current = cand.remaining/cur.estimated vs
	// Deg_candidate = cur.remaining/cand.estimated (Algorithm 3).
	d := NewDynamic()
	cur := makeTask(1, Low, 0, 10000)
	cur.Exec.Advance(9000) // remaining 1000
	cand := makeTask(2, Low, 0, 2000)
	// Deg_current = 2000/10000 = 0.2; Deg_candidate = 1000/2000 = 0.5.
	// Candidate would suffer more under drain -> preempt (checkpoint).
	if got := d.Select(cur, cand); got != preempt.Checkpoint {
		t.Errorf("got %v, want CHECKPOINT per Algorithm 3 arithmetic", got)
	}
	cand2 := makeTask(3, Low, 0, 50000)
	// Deg_current = 50000/10000 = 5; Deg_candidate = 1000/50000 = 0.02.
	if got := d.Select(cur, cand2); got != preempt.Drain {
		t.Errorf("got %v, want DRAIN per Algorithm 3 arithmetic", got)
	}
}

func TestDynamicKillVariant(t *testing.T) {
	d := Dynamic{Saving: preempt.Kill}
	cur := makeTask(1, Low, 0, 10000)
	cand := makeTask(2, High, 0, 1000)
	if got := d.Select(cur, cand); got != preempt.Kill {
		t.Errorf("dynamic-kill should save via KILL, got %v", got)
	}
	if d.Name() != "dynamic-KILL" {
		t.Errorf("selector name = %q", d.Name())
	}
}

func TestSelectorByName(t *testing.T) {
	cases := map[string]preempt.Mechanism{
		"static-checkpoint": preempt.Checkpoint,
		"static-kill":       preempt.Kill,
		"static-drain":      preempt.Drain,
	}
	cur := makeTask(1, Low, 0, 100)
	cand := makeTask(2, Low, 0, 100)
	for name, want := range cases {
		sel, err := SelectorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := sel.Select(cur, cand); got != want {
			t.Errorf("%s selected %v, want %v", name, got, want)
		}
	}
	if _, err := SelectorByName("dynamic"); err != nil {
		t.Error("dynamic selector should resolve")
	}
	if _, err := SelectorByName("dynamic-kill"); err != nil {
		t.Error("dynamic-kill selector should resolve")
	}
	if _, err := SelectorByName("bogus"); err == nil {
		t.Error("unknown selector should error")
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Quantum.Microseconds() != 250 {
		t.Errorf("quantum = %v, want 0.25ms", cfg.Quantum)
	}
	want := []float64{1, 3, 9}
	if len(cfg.TokenThresholdLevels) != 3 {
		t.Fatal("threshold levels wrong")
	}
	for i, l := range cfg.TokenThresholdLevels {
		if l != want[i] {
			t.Errorf("level[%d] = %v, want %v", i, l, want[i])
		}
	}
}
