// Package compiler lowers a DNN model instance (model, batch size and,
// for RNNs, a concrete unrolled sequence length) into the NPU's CISC
// instruction stream with per-instruction effective latencies.
//
// The timing model is the paper's deterministic weight-stationary dataflow
// (Figure 3, Algorithm 1): every GEMM is tiled into (SW x SH) weight tiles
// streamed against (SH x ACC) activation tiles; double-buffering overlaps
// each tile's memory phase with the previous tile's compute phase, so a
// tile's effective latency is max(compute, memory).
//
// On top of Algorithm 1's first-order terms the compiler adds the
// second-order effects a real NPU pays and the paper's predictor
// deliberately omits — the per-layer weight preamble (first tile's
// non-overlappable load plus a DRAM access), output-spill traffic for
// layers whose activations exceed UBUF, and vector-unit epilogues for
// fused activations. These residues are what give PREMA's predictor its
// small but non-zero estimation error (Section VI-A reports 1.6%).
package compiler

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/stats"
)

// Compiler lowers models for one NPU configuration.
type Compiler struct {
	cfg npu.Config
}

// New returns a Compiler for the given configuration.
func New(cfg npu.Config) (*Compiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Compiler{cfg: cfg}, nil
}

// Config returns the target configuration.
func (c *Compiler) Config() npu.Config { return c.cfg }

// Compile lowers a model instance. For CNNs, inLen/outLen are ignored.
func (c *Compiler) Compile(m *dnn.Model, batch, inLen, outLen int) (*npu.Program, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("compiler: non-positive batch %d", batch)
	}
	layers := m.LayersFor(inLen, outLen)
	if len(layers) == 0 {
		return nil, fmt.Errorf("compiler: model %q produced no layers", m.Name)
	}
	prog := &npu.Program{
		Model:  m.Name,
		Batch:  batch,
		InLen:  inLen,
		OutLen: outLen,
		Layers: len(layers),
	}
	for idx, l := range layers {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("compiler: %w", err)
		}
		c.lowerLayer(prog, int32(idx), l, batch)
		prog.TotalMACs += l.MACs(batch)
	}
	for _, in := range prog.Instrs {
		prog.TotalCycles += int64(in.Cycles)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// lowerLayer appends the instruction sequence for one layer.
func (c *Compiler) lowerLayer(prog *npu.Program, idx int32, l dnn.Layer, batch int) {
	switch l.Kind {
	case dnn.Conv, dnn.FC, dnn.LSTM:
		c.lowerGEMM(prog, idx, l, batch)
	case dnn.DWConv, dnn.Pool, dnn.Act:
		c.lowerVector(prog, idx, l, batch)
	}
}

// TileTime returns the effective latency of one GEMM tile with kTile
// reduction rows and n streamed activation columns, per Algorithm 1:
// compute = n + SH + 2*SW (pipeline fill, stream, drain and weight
// staging), memory = (weight tile + activation tile bytes) / bandwidth,
// effective = max of the two under double buffering.
func TileTime(cfg npu.Config, kTile, n int) int64 {
	compute := int64(n) + int64(cfg.SH) + 2*int64(cfg.SW)
	bytes := dnn.Bytes(int64(cfg.SH)*int64(cfg.SW) + int64(kTile)*int64(n))
	mem := cfg.MemCycles(bytes)
	if mem > compute {
		return mem
	}
	return compute
}

// gemmTiles describes the tiling of a GEMM shape onto the array.
type gemmTiles struct {
	mTiles, kTiles int // full coverage counts (ceil)
	nInner, nOuter int // inner tiles stream ACC columns; outer the residue
	outerN         int // residual column count (0 if none)
	kLast          int // reduction rows in the final k tile
}

func tile(cfg npu.Config, g dnn.GEMMShape) gemmTiles {
	t := gemmTiles{
		mTiles: stats.CeilDiv(g.M, cfg.SW),
		kTiles: stats.CeilDiv(g.K, cfg.SH),
		nInner: g.N / cfg.ACC,
		outerN: g.N % cfg.ACC,
	}
	if t.outerN > 0 {
		t.nOuter = 1
	}
	t.kLast = g.K - (t.kTiles-1)*cfg.SH
	return t
}

// lowerGEMM emits the instruction stream for a GEMM-mapped layer:
// a weight preamble (LOAD_TILE + DRAM latency, not overlappable because
// the pipeline is empty), one CONV_OP/GEMM_OP per tile with the
// double-buffered effective latency, an optional STORE_TILE spill when
// outputs exceed UBUF, and a VECTOR_OP epilogue for fused activations.
func (c *Compiler) lowerGEMM(prog *npu.Program, idx int32, l dnn.Layer, batch int) {
	g, ok := l.GEMM(batch)
	if !ok || !g.Valid() {
		return
	}
	cfg := c.cfg
	t := tile(cfg, g)
	op := npu.GEMMOp
	if l.Kind == dnn.Conv {
		op = npu.ConvOp
	}

	inBytes := dnn.Bytes(l.InputElems(batch))
	outBytes := dnn.Bytes(l.OutputElems(batch))
	spills := outBytes > cfg.UBUFBytes

	// Preamble: first weight tile load with the pipeline idle.
	preBytes := dnn.Bytes(int64(cfg.SH) * int64(cfg.SW))
	pre := cfg.MemCycles(preBytes) + cfg.MemLatencyCycles
	prog.Instrs = append(prog.Instrs, npu.Instr{
		Op: npu.LoadTile, Layer: idx,
		Cycles:    clampCycles(pre),
		LiveBytes: liveBytes(cfg, inBytes, 0),
	})

	totalTiles := t.mTiles * t.kTiles * (t.nInner + t.nOuter)
	emitted := 0
	emitTile := func(kTile, n int) {
		cycles := TileTime(cfg, kTile, n)
		if spills {
			// Output rows leave UBUF for DRAM as they are produced;
			// the extra write traffic competes with tile fetches.
			extra := cfg.MemCycles(dnn.Bytes(int64(cfg.SW) * int64(n)))
			if mem := extra + memOnly(cfg, kTile, n); mem > cycles {
				cycles = mem
			}
		}
		emitted++
		produced := int64(float64(outBytes) * float64(emitted) / float64(totalTiles))
		prog.Instrs = append(prog.Instrs, npu.Instr{
			Op: op, Layer: idx,
			Cycles:    clampCycles(cycles),
			LiveBytes: liveBytes(cfg, inBytes, produced),
		})
	}

	for m := 0; m < t.mTiles; m++ {
		for k := 0; k < t.kTiles; k++ {
			kTile := cfg.SH
			if k == t.kTiles-1 {
				kTile = t.kLast
			}
			for n := 0; n < t.nInner; n++ {
				emitTile(kTile, cfg.ACC)
			}
			if t.nOuter > 0 {
				emitTile(kTile, t.outerN)
			}
		}
	}

	if spills {
		// Residual drain of the final output rows that could not
		// overlap with further compute.
		drain := cfg.MemCycles(dnn.Bytes(int64(cfg.SW)*int64(cfg.ACC))) + cfg.MemLatencyCycles
		prog.Instrs = append(prog.Instrs, npu.Instr{
			Op: npu.StoreTile, Layer: idx,
			Cycles:    clampCycles(drain),
			LiveBytes: liveBytes(cfg, 0, outBytes),
		})
	}

	if l.FusedAct {
		// Fused activation epilogue: the vector unit chases the GEMM
		// output stream, so only a fraction of its work extends the
		// critical path.
		ep := l.OutputElems(batch) / int64(cfg.VectorLanes) / 4
		if ep > 0 {
			prog.Instrs = append(prog.Instrs, npu.Instr{
				Op: npu.VectorOp, Layer: idx,
				Cycles:    clampCycles(ep),
				LiveBytes: liveBytes(cfg, 0, outBytes),
			})
		}
	}
}

// memOnly returns the tile's memory phase without the weight preamble.
func memOnly(cfg npu.Config, kTile, n int) int64 {
	return cfg.MemCycles(dnn.Bytes(int64(cfg.SH)*int64(cfg.SW) + int64(kTile)*int64(n)))
}

// lowerVector emits vector-unit work for layers that bypass the systolic
// array: depthwise convolutions, pooling, standalone activations. The
// latency is element throughput bound by the vector lanes, or by memory
// when the layer is bandwidth bound.
func (c *Compiler) lowerVector(prog *npu.Program, idx int32, l dnn.Layer, batch int) {
	cfg := c.cfg
	macs := l.MACs(batch)
	compute := stats.CeilDiv64(macs, int64(cfg.VectorLanes))
	inBytes := dnn.Bytes(l.InputElems(batch))
	outBytes := dnn.Bytes(l.OutputElems(batch))
	wBytes := dnn.Bytes(l.WeightElems())
	mem := cfg.MemCycles(inBytes + wBytes)
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	cycles += cfg.MemLatencyCycles

	// Split long vector layers into ACC-sized chunks so preemption
	// points stay fine-grained (footnote 2: tile-boundary preemption).
	const chunkTarget = 1 << 14 // cycles per emitted instruction
	chunks := int(cycles/chunkTarget) + 1
	per := cycles / int64(chunks)
	rem := cycles - per*int64(chunks)
	for i := 0; i < chunks; i++ {
		cyc := per
		if i == chunks-1 {
			cyc += rem
		}
		produced := int64(float64(outBytes) * float64(i+1) / float64(chunks))
		prog.Instrs = append(prog.Instrs, npu.Instr{
			Op: npu.VectorOp, Layer: idx,
			Cycles:    clampCycles(cyc),
			LiveBytes: liveBytes(cfg, inBytes, produced),
		})
	}
}

// liveBytes models the checkpointable on-chip context: resident input
// activations plus the output activations produced so far, capped by the
// UBUF capacity (activations beyond UBUF stream through DRAM and need no
// checkpointing; Section IV-B).
func liveBytes(cfg npu.Config, inBytes, producedOut int64) int64 {
	live := inBytes + producedOut
	if live > cfg.UBUFBytes {
		live = cfg.UBUFBytes
	}
	return live
}

func clampCycles(c int64) int32 {
	const max = 1<<31 - 1
	if c > max {
		return max
	}
	if c < 0 {
		return 0
	}
	return int32(c)
}
