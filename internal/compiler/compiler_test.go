package compiler

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dnn"
	"repro/internal/npu"
)

func newCompiler(t *testing.T) *Compiler {
	t.Helper()
	c, err := New(npu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := npu.DefaultConfig()
	cfg.SW = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestCompileRejectsBadInputs(t *testing.T) {
	c := newCompiler(t)
	if _, err := c.Compile(dnn.AlexNet(), 0, 0, 0); err == nil {
		t.Error("zero batch should be rejected")
	}
	empty := &dnn.Model{Name: "empty", Class: dnn.CNN}
	if _, err := c.Compile(empty, 1, 0, 0); err == nil {
		t.Error("empty model should be rejected")
	}
}

func TestCompiledProgramsValidate(t *testing.T) {
	c := newCompiler(t)
	for _, m := range dnn.Suite() {
		for _, b := range dnn.BatchSizes {
			inLen, outLen := 0, 0
			if m.IsRNN() {
				inLen, outLen = m.MinInLen, m.MinInLen
			}
			prog, err := c.Compile(m, b, inLen, outLen)
			if err != nil {
				t.Fatalf("%s b%d: %v", m.Name, b, err)
			}
			if err := prog.Validate(); err != nil {
				t.Errorf("%s b%d: %v", m.Name, b, err)
			}
			if prog.TotalCycles <= 0 || prog.TotalMACs <= 0 {
				t.Errorf("%s b%d: empty totals %d/%d", m.Name, b, prog.TotalCycles, prog.TotalMACs)
			}
		}
	}
}

func TestLatenciesLandInPaperBand(t *testing.T) {
	// Section IV-D: network-wide inference time is 0.5 to 45 ms across
	// the eight benchmarks. Allow modest slack at both ends.
	c := newCompiler(t)
	cfg := c.Config()
	for _, m := range dnn.Suite() {
		for _, b := range dnn.BatchSizes {
			inLen, outLen := 0, 0
			if m.IsRNN() {
				inLen = (m.MinInLen + m.MaxInLen) / 2
				outLen = inLen
				if m.SeqProfile == "mt-zh" {
					outLen = inLen * 11 / 2
				}
			}
			prog, err := c.Compile(m, b, inLen, outLen)
			if err != nil {
				t.Fatal(err)
			}
			ms := cfg.Millis(prog.TotalCycles)
			if ms < 0.2 || ms > 60 {
				t.Errorf("%s b%d: %.2f ms outside the plausible band", m.Name, b, ms)
			}
		}
	}
}

func TestTileTimeRegimes(t *testing.T) {
	cfg := npu.DefaultConfig()
	// Full inner tile: compute phase is ACC + SH + 2*SW.
	wantCompute := int64(cfg.ACC + cfg.SH + 2*cfg.SW)
	if got := TileTime(cfg, cfg.SH, cfg.ACC); got != wantCompute {
		t.Errorf("inner TileTime = %d, want compute-bound %d", got, wantCompute)
	}
	// Single-column tile (GEMV): pipeline fill dominates.
	if got := TileTime(cfg, cfg.SH, 1); got != int64(1+cfg.SH+2*cfg.SW) {
		t.Errorf("GEMV TileTime = %d", got)
	}
	// A memory-starved configuration must become bandwidth-bound.
	slow := cfg
	slow.MemBWBytesPerSec = 1e9
	got := TileTime(slow, slow.SH, slow.ACC)
	mem := slow.MemCycles(dnn.Bytes(int64(slow.SH*slow.SW) + int64(slow.SH*slow.ACC)))
	if got != mem {
		t.Errorf("slow-memory TileTime = %d, want memory-bound %d", got, mem)
	}
}

func TestTileTimeMonotonicInN(t *testing.T) {
	cfg := npu.DefaultConfig()
	prev := int64(0)
	for n := 1; n <= cfg.ACC; n *= 2 {
		got := TileTime(cfg, cfg.SH, n)
		if got < prev {
			t.Errorf("TileTime not monotone at n=%d: %d < %d", n, got, prev)
		}
		prev = got
	}
}

func TestBatchMonotonicity(t *testing.T) {
	c := newCompiler(t)
	for _, m := range dnn.Suite() {
		inLen, outLen := 0, 0
		if m.IsRNN() {
			inLen, outLen = m.MinInLen, m.MinInLen
		}
		var prev int64
		for _, b := range dnn.BatchSizes {
			prog, err := c.Compile(m, b, inLen, outLen)
			if err != nil {
				t.Fatal(err)
			}
			if prog.TotalCycles < prev {
				t.Errorf("%s: cycles decreased with batch (%d < %d)", m.Name, prog.TotalCycles, prev)
			}
			prev = prog.TotalCycles
		}
	}
}

func TestLiveBytesBoundedByUBUF(t *testing.T) {
	c := newCompiler(t)
	cfg := c.Config()
	for _, m := range dnn.Suite() {
		inLen, outLen := 0, 0
		if m.IsRNN() {
			inLen, outLen = m.MinInLen, m.MinInLen
		}
		prog, err := c.Compile(m, 16, inLen, outLen)
		if err != nil {
			t.Fatal(err)
		}
		if max := prog.MaxLiveBytes(); max > cfg.UBUFBytes {
			t.Errorf("%s: live bytes %d exceed UBUF %d", m.Name, max, cfg.UBUFBytes)
		}
	}
}

func TestLiveBytesGrowWithinLayer(t *testing.T) {
	// Within a single conv layer whose footprint fits UBUF, the
	// checkpointable state must be non-decreasing as tiles commit.
	c := newCompiler(t)
	model := &dnn.Model{Name: "single", Class: dnn.CNN, Static: []dnn.Layer{
		dnn.NewConv("c", 14, 14, 128, 128, 3, 1, 1),
	}}
	prog, err := c.Compile(model, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, in := range prog.Instrs {
		if in.Op != npu.ConvOp {
			continue
		}
		if in.LiveBytes < prev {
			t.Fatalf("live bytes shrank mid-layer: %d -> %d", prev, in.LiveBytes)
		}
		prev = in.LiveBytes
	}
	if prev <= 0 {
		t.Fatal("no conv tiles emitted")
	}
}

func TestRNNProgramScalesWithOutLen(t *testing.T) {
	c := newCompiler(t)
	m, err := dnn.ByName("RNN-MT2")
	if err != nil {
		t.Fatal(err)
	}
	short, err := c.Compile(m, 1, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	long, err := c.Compile(m, 1, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	if long.TotalCycles <= short.TotalCycles {
		t.Errorf("longer decode not slower: %d vs %d", long.TotalCycles, short.TotalCycles)
	}
	ratio := float64(long.TotalCycles) / float64(short.TotalCycles)
	if ratio < 3 {
		t.Errorf("decode scaling too weak: ratio %.2f for 10x output", ratio)
	}
}

func TestGEMMOpsAreCONVForConvLayers(t *testing.T) {
	c := newCompiler(t)
	prog, err := c.Compile(dnn.AlexNet(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	opCount := map[npu.Op]int{}
	for _, in := range prog.Instrs {
		opCount[in.Op]++
	}
	if opCount[npu.ConvOp] == 0 {
		t.Error("AlexNet program has no CONV_OP instructions")
	}
	if opCount[npu.GEMMOp] == 0 {
		t.Error("AlexNet program has no GEMM_OP instructions (FC layers)")
	}
	if opCount[npu.LoadTile] == 0 {
		t.Error("no weight-preamble LOAD_TILE instructions")
	}
	if opCount[npu.VectorOp] == 0 {
		t.Error("no VECTOR_OP instructions (pools / fused activations)")
	}
}

func TestDepthwiseRoutedToVectorUnit(t *testing.T) {
	c := newCompiler(t)
	prog, err := c.Compile(dnn.MobileNet(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	layers := dnn.MobileNet().Static
	for _, in := range prog.Instrs {
		if layers[in.Layer].Kind == dnn.DWConv && in.Op != npu.VectorOp {
			t.Fatalf("depthwise layer %s emitted %v", layers[in.Layer].Name, in.Op)
		}
	}
}

// Property: compiling the same instance twice yields identical programs
// (the whole timing model is deterministic).
func TestCompileDeterministic(t *testing.T) {
	c := newCompiler(t)
	m := dnn.GoogLeNet()
	a, err := c.Compile(m, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Compile(m, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || len(a.Instrs) != len(b.Instrs) {
		t.Fatal("compilation is not deterministic")
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

// Property: random small conv layers compile to valid programs whose
// cycles are at least the ideal compute lower bound scaled by tiling.
func TestRandomConvCompileProperty(t *testing.T) {
	c := newCompiler(t)
	rng := rand.New(rand.NewPCG(2, 3))
	f := func() bool {
		hw := 4 + rng.IntN(60)
		k := 1 + 2*rng.IntN(3) // 1,3,5
		if k > hw {
			k = 1
		}
		l := dnn.NewConv("c", hw, hw, 1+rng.IntN(128), 1+rng.IntN(256), k, 1, k/2)
		m := &dnn.Model{Name: "r", Class: dnn.CNN, Static: []dnn.Layer{l}}
		prog, err := c.Compile(m, 1+rng.IntN(8), 0, 0)
		if err != nil {
			return false
		}
		return prog.Validate() == nil && prog.TotalCycles > 0
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
