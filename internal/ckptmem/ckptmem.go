// Package ckptmem implements the checkpoint storage management of
// Section VI-G: checkpointed context states of preempted tasks live in
// the NPU's local DRAM, which is large enough for tens of contexts; when
// co-location pressure oversubscribes it, the runtime proactively
// migrates overflowing contexts to CPU memory over the host interconnect
// (the approach of Rhu et al.'s vDNN, which the paper adopts), paying a
// migration latency on the way out and back.
//
// The manager is a deterministic accounting structure the simulator can
// consult: Save reserves NPU memory (possibly evicting the
// least-recently-saved contexts to host memory), Restore releases it and
// reports the extra latency if the context had been spilled.
package ckptmem

import (
	"fmt"
	"sort"
)

// Config sizes the memory hierarchy.
type Config struct {
	// NPUMemBytes is the accelerator-local DRAM available for
	// checkpointed contexts (GBs in Section VI-G; configurable down to
	// force spilling in experiments).
	NPUMemBytes int64
	// HostBWBytesPerCycle is the NPU-to-CPU interconnect bandwidth in
	// bytes per NPU clock (PCIe-class: ~16-32 GB/s, i.e. an order of
	// magnitude below HBM).
	HostBWBytesPerCycle float64
	// HostLatencyCycles is the fixed host-transfer setup latency.
	HostLatencyCycles int64
}

// DefaultConfig returns a 4 GB local pool over a PCIe-class link at the
// Table I clock (700 MHz): 25 GB/s ~ 36 bytes/cycle.
func DefaultConfig() Config {
	return Config{
		NPUMemBytes:         4 << 30,
		HostBWBytesPerCycle: 36,
		HostLatencyCycles:   2000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NPUMemBytes <= 0 {
		return fmt.Errorf("ckptmem: non-positive NPU memory")
	}
	if c.HostBWBytesPerCycle <= 0 {
		return fmt.Errorf("ckptmem: non-positive host bandwidth")
	}
	if c.HostLatencyCycles < 0 {
		return fmt.Errorf("ckptmem: negative host latency")
	}
	return nil
}

// context is one resident checkpointed state.
type context struct {
	task    int
	bytes   int64
	savedAt int64
	spilled bool
}

// Manager tracks checkpointed contexts across NPU and host memory.
type Manager struct {
	cfg  Config
	used int64 // NPU-resident bytes
	ctxs map[int]*context
}

// New builds a Manager.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, ctxs: make(map[int]*context)}, nil
}

// NPUResidentBytes returns the bytes currently held in NPU memory.
func (m *Manager) NPUResidentBytes() int64 { return m.used }

// Contexts returns the number of tracked checkpointed contexts.
func (m *Manager) Contexts() int { return len(m.ctxs) }

// SpilledContexts returns how many tracked contexts live in host memory.
func (m *Manager) SpilledContexts() int {
	n := 0
	for _, c := range m.ctxs {
		if c.spilled {
			n++
		}
	}
	return n
}

// hostTransferCycles is the cost of moving bytes across the host link.
func (m *Manager) hostTransferCycles(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64(float64(bytes)/m.cfg.HostBWBytesPerCycle+0.999999) + m.cfg.HostLatencyCycles
}

// Save registers a task's checkpointed context at the given cycle. If the
// NPU pool cannot hold it, the least-recently-saved resident contexts are
// migrated to host memory first (Section VI-G's proactive migration). The
// returned cycles are the *additional* latency beyond the checkpoint DMA
// itself — zero when everything fits, host-transfer time when the runtime
// had to spill. Saving a context larger than the entire pool stores it
// directly in host memory.
func (m *Manager) Save(task int, bytes int64, now int64) (extraCycles int64, err error) {
	if bytes < 0 {
		return 0, fmt.Errorf("ckptmem: negative context size")
	}
	if _, dup := m.ctxs[task]; dup {
		return 0, fmt.Errorf("ckptmem: task %d already has a saved context", task)
	}
	ctx := &context{task: task, bytes: bytes, savedAt: now}
	if bytes > m.cfg.NPUMemBytes {
		ctx.spilled = true
		m.ctxs[task] = ctx
		return m.hostTransferCycles(bytes), nil
	}
	var extra int64
	if m.used+bytes > m.cfg.NPUMemBytes {
		extra += m.evict(m.used + bytes - m.cfg.NPUMemBytes)
	}
	m.used += bytes
	m.ctxs[task] = ctx
	return extra, nil
}

// evict migrates least-recently-saved resident contexts to host memory
// until at least need bytes are free, returning the migration cycles.
func (m *Manager) evict(need int64) int64 {
	resident := make([]*context, 0, len(m.ctxs))
	for _, c := range m.ctxs {
		if !c.spilled {
			resident = append(resident, c)
		}
	}
	sort.Slice(resident, func(i, j int) bool {
		if resident[i].savedAt != resident[j].savedAt {
			return resident[i].savedAt < resident[j].savedAt
		}
		return resident[i].task < resident[j].task
	})
	var freed, cycles int64
	for _, c := range resident {
		if freed >= need {
			break
		}
		c.spilled = true
		m.used -= c.bytes
		freed += c.bytes
		cycles += m.hostTransferCycles(c.bytes)
	}
	return cycles
}

// Restore releases a task's context for resumption. The returned cycles
// are the additional latency beyond the on-NPU restore DMA: zero for
// NPU-resident contexts, a host transfer for spilled ones.
func (m *Manager) Restore(task int) (extraCycles int64, err error) {
	c, ok := m.ctxs[task]
	if !ok {
		return 0, fmt.Errorf("ckptmem: task %d has no saved context", task)
	}
	delete(m.ctxs, task)
	if c.spilled {
		return m.hostTransferCycles(c.bytes), nil
	}
	m.used -= c.bytes
	return 0, nil
}

// Drop discards a task's context without restoring it (task killed or
// completed without resuming).
func (m *Manager) Drop(task int) {
	if c, ok := m.ctxs[task]; ok {
		if !c.spilled {
			m.used -= c.bytes
		}
		delete(m.ctxs, task)
	}
}
