package ckptmem

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func small() Config {
	return Config{NPUMemBytes: 100, HostBWBytesPerCycle: 10, HostLatencyCycles: 5}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NPUMemBytes: 0, HostBWBytesPerCycle: 1},
		{NPUMemBytes: 1, HostBWBytesPerCycle: 0},
		{NPUMemBytes: 1, HostBWBytesPerCycle: 1, HostLatencyCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestSaveRestoreWithinPool(t *testing.T) {
	m := mustNew(t, small())
	extra, err := m.Save(1, 60, 0)
	if err != nil || extra != 0 {
		t.Fatalf("in-pool save should be free: %d, %v", extra, err)
	}
	if m.NPUResidentBytes() != 60 || m.Contexts() != 1 {
		t.Errorf("accounting wrong: %d bytes, %d ctxs", m.NPUResidentBytes(), m.Contexts())
	}
	extra, err = m.Restore(1)
	if err != nil || extra != 0 {
		t.Fatalf("resident restore should be free: %d, %v", extra, err)
	}
	if m.NPUResidentBytes() != 0 || m.Contexts() != 0 {
		t.Error("restore did not release memory")
	}
}

func TestOversubscriptionSpillsLRU(t *testing.T) {
	m := mustNew(t, small())
	if _, err := m.Save(1, 60, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(2, 30, 20); err != nil {
		t.Fatal(err)
	}
	// Task 3 needs 50; the pool (100) holds 90 -> must evict task 1
	// (least recently saved).
	extra, err := m.Save(3, 50, 30)
	if err != nil {
		t.Fatal(err)
	}
	if extra <= 0 {
		t.Error("oversubscription must pay migration cycles")
	}
	if m.SpilledContexts() != 1 {
		t.Errorf("%d spilled contexts, want 1", m.SpilledContexts())
	}
	if m.NPUResidentBytes() != 80 {
		t.Errorf("resident bytes %d, want 30+50", m.NPUResidentBytes())
	}
	// Restoring the spilled task 1 pays the host transfer.
	extra, err = m.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	want := m.hostTransferCycles(60)
	if extra != want {
		t.Errorf("spilled restore cost %d, want %d", extra, want)
	}
	// Restoring resident task 2 is free.
	if extra, err = m.Restore(2); err != nil || extra != 0 {
		t.Errorf("resident restore cost %d, %v", extra, err)
	}
}

func TestGiantContextGoesStraightToHost(t *testing.T) {
	m := mustNew(t, small())
	extra, err := m.Save(1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if extra <= 0 {
		t.Error("larger-than-pool context must pay host transfer")
	}
	if m.NPUResidentBytes() != 0 {
		t.Error("giant context must not occupy the NPU pool")
	}
	if m.SpilledContexts() != 1 {
		t.Error("giant context should be tracked as spilled")
	}
}

func TestErrors(t *testing.T) {
	m := mustNew(t, small())
	if _, err := m.Save(1, -1, 0); err == nil {
		t.Error("negative size should error")
	}
	if _, err := m.Save(1, 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(1, 10, 1); err == nil {
		t.Error("duplicate save should error")
	}
	if _, err := m.Restore(99); err == nil {
		t.Error("restoring unknown context should error")
	}
}

func TestDrop(t *testing.T) {
	m := mustNew(t, small())
	if _, err := m.Save(1, 40, 0); err != nil {
		t.Fatal(err)
	}
	m.Drop(1)
	if m.NPUResidentBytes() != 0 || m.Contexts() != 0 {
		t.Error("drop did not release")
	}
	m.Drop(42) // idempotent for unknown tasks
}

// Property: resident bytes never exceed the pool and never go negative,
// under arbitrary interleavings of save/restore/drop.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []uint8, sizes []uint16) bool {
		m, err := New(small())
		if err != nil {
			return false
		}
		next := 0
		live := []int{}
		now := int64(0)
		for i, op := range ops {
			now++
			size := int64(100)
			if i < len(sizes) {
				size = int64(sizes[i] % 200)
			}
			switch op % 3 {
			case 0:
				if _, err := m.Save(next, size, now); err != nil {
					return false
				}
				live = append(live, next)
				next++
			case 1:
				if len(live) > 0 {
					id := live[0]
					live = live[1:]
					if _, err := m.Restore(id); err != nil {
						return false
					}
				}
			case 2:
				if len(live) > 0 {
					id := live[len(live)-1]
					live = live[:len(live)-1]
					m.Drop(id)
				}
			}
			if m.NPUResidentBytes() < 0 || m.NPUResidentBytes() > 100 {
				return false
			}
		}
		return m.Contexts() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
