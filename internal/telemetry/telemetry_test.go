package telemetry

// telemetry_test.go covers the package's own mechanics: ring wrap and
// eviction order, the merge-and-stamp contract, the JSONL interleave,
// and the summary's latency decomposition (including the stretch and
// reclaim corner cases the serving integration relies on).

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Cycle: int64(i), Req: i})
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Cap() != 4 {
		t.Fatalf("ring state Len=%d Total=%d Cap=%d, want 4/10/4", tr.Len(), tr.Total(), tr.Cap())
	}
	got := tr.Events()
	for i, e := range got {
		if want := 6 + i; e.Req != want {
			t.Errorf("event %d: req %d, want %d (oldest-first after eviction)", i, e.Req, want)
		}
	}
}

func TestTracerUnwrapped(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Record(Event{Req: i})
	}
	got := tr.Events()
	if len(got) != 3 || got[0].Req != 0 || got[2].Req != 2 {
		t.Fatalf("unwrapped events %+v, want reqs 0..2 in order", got)
	}
	// The returned slice must be caller-owned: mutating it cannot reach
	// the ring.
	got[0].Req = 99
	if tr.Events()[0].Req != 0 {
		t.Errorf("Events returned a view into the ring, want a copy")
	}
}

func TestTracerDefaultCap(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultEventCap {
		t.Errorf("default tracer cap %d, want %d", got, DefaultEventCap)
	}
	if got := NewRecorder(-1).buf; cap(got) != DefaultTickCap {
		t.Errorf("default recorder cap %d, want %d", cap(got), DefaultTickCap)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(TickSample{Cycle: int64(i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("ring state Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	got := r.Samples()
	for i, s := range got {
		if want := int64(2 + i); s.Cycle != want {
			t.Errorf("sample %d: cycle %d, want %d", i, s.Cycle, want)
		}
	}
}

func TestMergeEventsOrderAndSeq(t *testing.T) {
	recorded := []Event{
		{Cycle: 10, Kind: KindSubmit, Req: 0},
		{Cycle: 20, Kind: KindRoute, Req: 0},
		{Cycle: 20, Kind: KindSubmit, Req: 1},
	}
	completions := []Event{
		{Cycle: 20, Kind: KindComplete, Req: 0},
		{Cycle: 15, Kind: KindComplete, Req: 2},
	}
	got := MergeEvents(recorded, completions)
	wantKinds := []string{KindSubmit, KindComplete, KindRoute, KindSubmit, KindComplete}
	if len(got) != len(wantKinds) {
		t.Fatalf("merged %d events, want %d", len(got), len(wantKinds))
	}
	for i, e := range got {
		if e.Kind != wantKinds[i] {
			t.Errorf("merged[%d] kind %s, want %s (recorded precede completions at equal cycles)",
				i, e.Kind, wantKinds[i])
		}
		if e.Seq != i {
			t.Errorf("merged[%d] seq %d, want %d", i, e.Seq, i)
		}
	}
}

func TestEncodeJSONLInterleave(t *testing.T) {
	events := []Event{
		{Cycle: 5, Kind: KindSubmit, Req: 0, NPU: -1},
		{Cycle: 30, Kind: KindComplete, Req: 0, NPU: 1, LatencyMS: 2.5},
	}
	ticks := []TickSample{{Cycle: 10, Fleet: 2}, {Cycle: 40, Fleet: 3}}
	out, err := EncodeJSONL(events, ticks)
	if err != nil {
		t.Fatalf("EncodeJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("encoded %d lines, want 4:\n%s", len(lines), out)
	}
	var kinds []string
	for _, ln := range lines {
		var probe struct {
			Kind  string `json:"kind"`
			Cycle int64  `json:"cycle"`
		}
		if err := json.Unmarshal([]byte(ln), &probe); err != nil {
			t.Fatalf("line %q not valid JSON: %v", ln, err)
		}
		kinds = append(kinds, probe.Kind)
	}
	want := []string{KindSubmit, "tick", KindComplete, "tick"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("line %d kind %q, want %q (cycle-order interleave)", i, kinds[i], want[i])
		}
	}
	// Determinism oracle: the encoding is a pure function of its inputs.
	again, err := EncodeJSONL(events, ticks)
	if err != nil {
		t.Fatalf("EncodeJSONL (second): %v", err)
	}
	if !bytes.Equal(out, again) {
		t.Errorf("EncodeJSONL not byte-stable across calls")
	}
}

func TestSummarizeDecomposition(t *testing.T) {
	events := []Event{
		// req 0: clean lifecycle, 4ms latency with 1ms of queueing.
		{Cycle: 0, Kind: KindSubmit, Req: 0, NPU: -1},
		{Cycle: 0, Kind: KindRoute, Req: 0, NPU: 0, EstMS: 3},
		{Cycle: 40, Kind: KindComplete, Req: 0, NPU: 0, LatencyMS: 4, ServiceMS: 3},
		// req 1: stretched x2 — half its 6ms service is slowdown-added.
		{Cycle: 1, Kind: KindSubmit, Req: 1, NPU: -1},
		{Cycle: 1, Kind: KindRoute, Req: 1, NPU: 1},
		{Cycle: 1, Kind: KindStretch, Req: 1, NPU: 1, Factor: 2},
		{Cycle: 60, Kind: KindComplete, Req: 1, NPU: 1, LatencyMS: 6, ServiceMS: 6},
		// req 2: stretched, then reclaimed (stretch shed), never completed.
		{Cycle: 2, Kind: KindSubmit, Req: 2, NPU: -1},
		{Cycle: 2, Kind: KindStretch, Req: 2, NPU: 1, Factor: 3},
		{Cycle: 9, Kind: KindReclaim, Req: 2, NPU: 1},
		{Cycle: 9, Kind: KindRoute, Req: 2, NPU: 0},
	}
	s := Summarize(events, 1)
	if s.Events != len(events) || s.Requests != 3 || s.Completed != 2 {
		t.Fatalf("counts events=%d requests=%d completed=%d, want %d/3/2",
			s.Events, s.Requests, s.Completed, len(events))
	}
	if s.Reroutes != 1 || s.Stretched != 2 {
		t.Errorf("reroutes=%d stretched=%d, want 1/2 (reclaimed request still counts as stretched)",
			s.Reroutes, s.Stretched)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(s.MeanLatencyMS, 5) || !approx(s.MaxLatencyMS, 6) {
		t.Errorf("latency mean=%.3f max=%.3f, want 5/6", s.MeanLatencyMS, s.MaxLatencyMS)
	}
	if !approx(s.MeanQueueMS, 0.5) || !approx(s.MeanServiceMS, 4.5) || !approx(s.MeanStretchMS, 1.5) {
		t.Errorf("decomposition queue=%.3f service=%.3f stretch=%.3f, want 0.5/4.5/1.5",
			s.MeanQueueMS, s.MeanServiceMS, s.MeanStretchMS)
	}
	if len(s.Worst) != 1 || s.Worst[0].Req != 1 {
		t.Fatalf("worst %+v, want single entry req 1 (topK=1)", s.Worst)
	}
	if w := s.Worst[0]; !approx(w.StretchMS, 3) || w.Events != 4 {
		t.Errorf("worst trace %+v, want stretch 3ms over 4 events", w)
	}
}

func TestSummarizeEmptyAndDefaults(t *testing.T) {
	s := Summarize(nil, 0)
	if s.Events != 0 || s.Requests != 0 || len(s.Worst) != 0 {
		t.Errorf("empty summary %+v, want zeros", s)
	}
	// topK <= 0 defaults to 5.
	var events []Event
	for i := 0; i < 8; i++ {
		events = append(events,
			Event{Cycle: int64(i), Kind: KindSubmit, Req: i, NPU: -1},
			Event{Cycle: int64(100 + i), Kind: KindComplete, Req: i, NPU: 0,
				LatencyMS: float64(i + 1), ServiceMS: 1})
	}
	s = Summarize(events, 0)
	if len(s.Worst) != 5 {
		t.Fatalf("default topK kept %d worst traces, want 5", len(s.Worst))
	}
	if s.Worst[0].Req != 7 || s.Worst[4].Req != 3 {
		t.Errorf("worst order %+v, want reqs 7..3 by descending latency", s.Worst)
	}
}
