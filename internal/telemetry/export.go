package telemetry

// export.go is the aggregation and export half of the package: merging
// the recorded event stream with derived completions into one sorted
// trace, decomposing per-request latency into queue/service/stretch
// shares, and encoding everything as JSON Lines. All accumulation here
// runs in sorted order — per-request state is keyed in a map but folded
// in request-ID order — so the derived numbers are bit-identical across
// replays (the floatorder premalint analyzer guards the pattern).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// MergeEvents folds the tracer's recorded stream and the derived
// completion events into one trace sorted by cycle (recorded events
// precede completions at equal cycles; the inputs' internal order is
// preserved) and stamps each event's Seq with its sorted index. Both
// inputs may share no ordering assumptions beyond being individually
// deterministic.
func MergeEvents(recorded, completions []Event) []Event {
	out := make([]Event, 0, len(recorded)+len(completions))
	out = append(out, recorded...)
	out = append(out, completions...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	for i := range out {
		out[i].Seq = i
	}
	return out
}

// EncodeJSONL renders a merged trace and a metric series as JSON Lines:
// one object per line, events and tick samples interleaved in cycle
// order (events first at equal cycles). Tick lines carry kind "tick" to
// distinguish them from lifecycle events. The encoding is deterministic
// — same inputs, same bytes — which is what lets CI diff two replays.
func EncodeJSONL(events []Event, ticks []TickSample) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	// tickLine wraps a sample with the discriminator its JSONL line
	// leads with.
	type tickLine struct {
		Kind string `json:"kind"`
		TickSample
	}
	e, k := 0, 0
	for e < len(events) || k < len(ticks) {
		if k >= len(ticks) || (e < len(events) && events[e].Cycle <= ticks[k].Cycle) {
			if err := enc.Encode(events[e]); err != nil {
				return nil, fmt.Errorf("telemetry: encoding event %d: %w", e, err)
			}
			e++
			continue
		}
		if err := enc.Encode(tickLine{Kind: "tick", TickSample: ticks[k]}); err != nil {
			return nil, fmt.Errorf("telemetry: encoding tick %d: %w", k, err)
		}
		k++
	}
	return buf.Bytes(), nil
}

// RequestTrace is one request's derived lifecycle summary.
type RequestTrace struct {
	// Req is the trace request ID.
	Req int `json:"req"`
	// NPU and Tier identify the backend that completed the request.
	NPU  int    `json:"npu"`
	Tier string `json:"tier,omitempty"`
	// LatencyMS is the realized turnaround.
	LatencyMS float64 `json:"latency_ms"`
	// QueueMS is the queueing share of the latency (latency minus
	// isolated service, clamped at zero).
	QueueMS float64 `json:"queue_ms"`
	// ServiceMS is the isolated-service share of the latency.
	ServiceMS float64 `json:"service_ms"`
	// StretchMS is the service time added by slowdown stretching: the
	// share of ServiceMS a nominal-speed backend would not have spent.
	StretchMS float64 `json:"stretch_ms"`
	// Reroutes counts failure reclaims the request survived.
	Reroutes int `json:"reroutes"`
	// Events counts the request's trace events.
	Events int `json:"events"`
}

// TraceSummary is the derived overview of a merged trace.
type TraceSummary struct {
	// Events is the merged trace's event count.
	Events int `json:"events"`
	// Requests counts distinct request IDs in the trace.
	Requests int `json:"requests"`
	// Completed counts requests with a completion event.
	Completed int `json:"completed"`
	// Reroutes counts reclaim events (failure re-routes).
	Reroutes int `json:"reroutes"`
	// Stretched counts requests that landed on a slowed backend at
	// least once.
	Stretched int `json:"stretched"`
	// MeanLatencyMS and MaxLatencyMS summarize completed requests.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
	// MeanQueueMS, MeanServiceMS and MeanStretchMS decompose the mean
	// latency into queue-wait, isolated service and slowdown-stretch
	// shares.
	MeanQueueMS   float64 `json:"mean_queue_ms"`
	MeanServiceMS float64 `json:"mean_service_ms"`
	MeanStretchMS float64 `json:"mean_stretch_ms"`
	// Worst holds the top-K worst-latency request traces, worst first.
	Worst []RequestTrace `json:"worst,omitempty"`
}

// Summarize derives the trace overview from a merged event stream,
// flagging the topK worst-latency completed requests (topK <= 0
// defaults to 5). A ring-truncated trace summarizes what survived.
func Summarize(events []Event, topK int) TraceSummary {
	if topK <= 0 {
		topK = 5
	}
	sum := TraceSummary{Events: len(events)}
	byReq := map[int]*RequestTrace{}
	completed := map[int]bool{}
	stretchFactor := map[int]float64{}
	everStretched := map[int]bool{}
	for _, e := range events {
		rt := byReq[e.Req]
		if rt == nil {
			rt = &RequestTrace{Req: e.Req}
			byReq[e.Req] = rt
		}
		rt.Events++
		switch e.Kind {
		case KindReclaim:
			rt.Reroutes++
			sum.Reroutes++
			// Leaving the failed backend sheds any stretch; the re-route
			// applies its own.
			delete(stretchFactor, e.Req)
		case KindStretch:
			stretchFactor[e.Req] = e.Factor
			everStretched[e.Req] = true
		case KindComplete:
			rt.NPU = e.NPU
			rt.Tier = e.Tier
			rt.LatencyMS = e.LatencyMS
			rt.ServiceMS = e.ServiceMS
			rt.QueueMS = e.LatencyMS - e.ServiceMS
			if rt.QueueMS < 0 {
				rt.QueueMS = 0
			}
			if f := stretchFactor[e.Req]; f > 1 {
				// A stretched service time is factor x nominal: the added
				// share is service * (1 - 1/factor).
				rt.StretchMS = e.ServiceMS * (1 - 1/f)
			}
			completed[e.Req] = true
		}
	}
	sum.Requests = len(byReq)
	sum.Completed = len(completed)
	// Fold the per-request traces in request-ID order so the float
	// accumulation is replay-stable regardless of map iteration order.
	ids := make([]int, 0, len(byReq))
	for id := range byReq {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	done := make([]RequestTrace, 0, len(completed))
	for _, id := range ids {
		rt := byReq[id]
		if everStretched[id] {
			sum.Stretched++
		}
		if !completed[id] {
			continue
		}
		sum.MeanLatencyMS += rt.LatencyMS
		sum.MeanQueueMS += rt.QueueMS
		sum.MeanServiceMS += rt.ServiceMS
		sum.MeanStretchMS += rt.StretchMS
		if rt.LatencyMS > sum.MaxLatencyMS {
			sum.MaxLatencyMS = rt.LatencyMS
		}
		done = append(done, *rt)
	}
	if n := len(done); n > 0 {
		sum.MeanLatencyMS /= float64(n)
		sum.MeanQueueMS /= float64(n)
		sum.MeanServiceMS /= float64(n)
		sum.MeanStretchMS /= float64(n)
	}
	sort.SliceStable(done, func(i, j int) bool {
		if done[i].LatencyMS != done[j].LatencyMS {
			return done[i].LatencyMS > done[j].LatencyMS
		}
		return done[i].Req < done[j].Req
	})
	if len(done) > topK {
		done = done[:topK]
	}
	sum.Worst = done
	return sum
}
