// Package telemetry is the repository's zero-dependency observability
// layer: per-request lifecycle tracing and tick-sampled fleet metrics
// for the streaming node session, both driven entirely by the virtual
// stream clock. Nothing here reads wall time or iterates a map without
// ordering, so a traced run replays byte-identically — the same seed
// and scenario produce the same JSONL trace and the same metric series,
// which makes telemetry output a determinism oracle as well as a
// debugging surface.
//
// The package has two halves, carried together by a Trace handle:
//
//   - Tracer records one compact Event per request lifecycle edge
//     (submit, route, stretch, reclaim, complete) into a fixed-size
//     ring, so tracing a long stream holds bounded memory.
//   - Recorder captures one TickSample per autoscale tick: per-NPU and
//     per-tier gauges plus fleet counters (completions, reclaims,
//     estimate-SLO violations since the previous tick).
//
// The serving package fills both (serving.NodeConfig.Trace); this
// package owns the aggregation: MergeEvents orders the stream,
// Summarize derives queue/service/stretch decompositions and the
// worst-latency traces, and EncodeJSONL exports everything as sorted
// JSON Lines.
package telemetry

// Event kinds, one per request lifecycle edge the node session traces.
const (
	// KindSubmit marks a request entering the node (NPU is -1: no
	// routing decision has been made yet). Note carries the model name.
	KindSubmit = "submit"
	// KindRoute marks a routing decision: NPU and Tier identify the
	// chosen backend and EstMS its fluid latency estimate (queueing plus
	// service) at the decision instant.
	KindRoute = "route"
	// KindStretch marks a request landing on a slowed backend: its
	// program was stretched to Factor times nominal service time.
	KindStretch = "stretch"
	// KindReclaim marks a request pulled back from a failed backend;
	// the route event that follows at the same cycle is its re-route.
	KindReclaim = "reclaim"
	// KindComplete marks a simulated completion: LatencyMS is the
	// realized turnaround and ServiceMS its isolated-service share.
	KindComplete = "complete"
)

// Event is one compact per-request lifecycle record. Cycle is the
// virtual instant (NPU cycles); Seq is the event's index in the sorted
// export, stamped by MergeEvents. Fields that do not apply to a kind
// are zero and omitted from the JSONL encoding.
type Event struct {
	// Seq is the event's position in the sorted merged stream.
	Seq int `json:"seq"`
	// Cycle is the virtual instant the edge occurred at.
	Cycle int64 `json:"cycle"`
	// AtMS is Cycle converted to milliseconds (filled at export time;
	// the hot recording path does not pay for the conversion).
	AtMS float64 `json:"at_ms"`
	// Kind is the lifecycle edge (see the Kind constants).
	Kind string `json:"kind"`
	// Req is the node-session trace request ID, assigned in submission
	// order and stable across re-routes.
	Req int `json:"req"`
	// NPU is the backend index the edge applies to; -1 on submit.
	NPU int `json:"npu"`
	// Tier is the backend's hardware tier; empty on homogeneous fleets.
	Tier string `json:"tier,omitempty"`
	// EstMS is the fluid latency estimate of a route decision.
	EstMS float64 `json:"est_ms,omitempty"`
	// Factor is the slowdown multiplier of a stretch edge.
	Factor float64 `json:"factor,omitempty"`
	// LatencyMS is the realized turnaround of a complete edge.
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// ServiceMS is the isolated-service share of a complete edge's
	// latency (turnaround divided by normalized turnaround time).
	ServiceMS float64 `json:"service_ms,omitempty"`
	// Note carries edge detail (the model name on submit).
	Note string `json:"note,omitempty"`
}

// DefaultEventCap is the tracer ring's default capacity.
const DefaultEventCap = 4096

// Ring-internal kind indices: the Kind constants pre-interned at fixed
// positions in a tracer's kinds table, so the hot recording methods
// store a constant instead of scanning.
const (
	kindNone = iota
	kindSubmit
	kindRoute
	kindStretch
	kindReclaim
	kindComplete
)

// Tracer is a fixed-capacity ring of lifecycle events. Recording past
// the capacity evicts the oldest events; Total keeps counting, so an
// overflowing trace is detectable (Total > Len). A Tracer is not safe
// for concurrent use — it lives inside a node session's single-threaded
// stream loop.
//
// The ring stores events column-per-field (structure-of-arrays) rather
// than as Event structs: each recording writes only the columns its
// kind carries (a submit is 3 scalars and two bytes, not a 120-byte
// struct), consecutive events share cache lines within each column, and
// every column is pointer-free so the garbage collector never walks the
// ring. Strings are interned into per-field vocabulary tables — the
// lifecycle-kind constants, a fleet's tier names, the model catalogue —
// and stored as indices; Events materializes full Event values on the
// cold export path, reading back exactly the columns each kind's schema
// defines.
type Tracer struct {
	cycle                         []int64
	est, factor, latency, service []float64
	// ids packs req (low 32 bits) and npu (high 32 bits, two's
	// complement); meta packs the kind (low 16), tier (mid 16) and note
	// (bits 32-47) vocabulary indices — so a hot-path event is three or
	// four word stores, and the float columns a kind does not carry are
	// never touched.
	ids, meta []uint64
	// kinds, tiers and notes are the intern tables the meta column's
	// indices point into; index 0 is always "". Each grows with the
	// distinct-string vocabulary (a handful of entries), never with the
	// event count.
	kinds, tiers, notes []string
	// n is how many events the ring holds, w the next write slot —
	// always total % capacity, kept incrementally so the hot path never
	// pays an integer division.
	n, w, total int
}

// NewTracer builds a tracer ring holding up to cap events; cap <= 0
// selects DefaultEventCap.
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	return &Tracer{
		cycle: make([]int64, cap),
		est:   make([]float64, cap), factor: make([]float64, cap),
		latency: make([]float64, cap), service: make([]float64, cap),
		ids: make([]uint64, cap), meta: make([]uint64, cap),
		kinds: []string{"", KindSubmit, KindRoute, KindStretch, KindReclaim, KindComplete},
		tiers: []string{""},
		notes: []string{""},
	}
}

// packIDs packs a request and backend index into one ids-column word.
func packIDs(req, npu int) uint64 {
	return uint64(uint32(int32(req))) | uint64(uint32(int32(npu)))<<32
}

// Sym is an interned-string handle into a tracer's vocabulary tables:
// the hot recording methods take pre-interned Syms instead of strings,
// so the per-event cost is column writes, never a string comparison.
// The zero Sym is always the empty string. Syms are tracer-specific —
// never pass one tracer's Sym to another.
type Sym uint16

// intern answers s's index in one vocabulary table, appending it on
// first sight. A linear scan wins here: each table holds a handful of
// entries and this runs once per distinct string, not per event.
func intern(table *[]string, s string) uint16 {
	if s == "" {
		return 0
	}
	for i, v := range *table {
		if v == s {
			return uint16(i)
		}
	}
	*table = append(*table, s)
	return uint16(len(*table) - 1)
}

// InternTier pre-interns a tier name for the hot recording methods:
// call once per distinct tier at setup, pass the Sym per event.
func (t *Tracer) InternTier(s string) Sym { return Sym(intern(&t.tiers, s)) }

// InternNote pre-interns a note value (the model name on submit
// events) for the hot recording methods.
func (t *Tracer) InternNote(s string) Sym { return Sym(intern(&t.notes, s)) }

// slot claims the next ring slot, evicting the oldest event when full.
func (t *Tracer) slot() int {
	i := t.w
	t.w++
	if t.w == len(t.cycle) {
		t.w = 0
	}
	if t.n < len(t.cycle) {
		t.n++
	}
	t.total++
	return i
}

// Record appends one event, evicting the oldest when the ring is full.
// This is the general path — it writes every column; the per-request
// edges that fire on every submission have dedicated methods
// (RecordSubmit, RecordRoute, RecordStretch) that skip materializing an
// Event and write only their kind's columns.
func (t *Tracer) Record(e Event) {
	i := t.slot()
	t.cycle[i] = e.Cycle
	t.est[i], t.factor[i] = e.EstMS, e.Factor
	t.latency[i], t.service[i] = e.LatencyMS, e.ServiceMS
	t.ids[i] = packIDs(e.Req, e.NPU)
	t.meta[i] = uint64(intern(&t.kinds, e.Kind)) |
		uint64(intern(&t.tiers, e.Tier))<<16 |
		uint64(intern(&t.notes, e.Note))<<32
}

// RecordSubmit records a KindSubmit edge (model in Note, no routing
// decision yet) without crossing an Event value: the hot-path variant
// of Record for the edge every accepted request fires. The model Sym
// comes from InternNote.
func (t *Tracer) RecordSubmit(cycle int64, req int, model Sym) {
	i := t.slot()
	t.cycle[i] = cycle
	t.ids[i] = packIDs(req, -1)
	t.meta[i] = kindSubmit | uint64(model)<<32
}

// RecordRoute records a KindRoute edge — the other per-request hot
// edge: the chosen backend, its tier (a Sym from InternTier) and the
// fluid latency estimate.
func (t *Tracer) RecordRoute(cycle int64, req, npu int, tier Sym, est float64) {
	i := t.slot()
	t.cycle[i] = cycle
	t.est[i] = est
	t.ids[i] = packIDs(req, npu)
	t.meta[i] = kindRoute | uint64(tier)<<16
}

// RecordStretch records a KindStretch edge: the request landed on a
// slowed backend and its program was stretched by factor.
func (t *Tracer) RecordStretch(cycle int64, req, npu int, tier Sym, factor float64) {
	i := t.slot()
	t.cycle[i] = cycle
	t.factor[i] = factor
	t.ids[i] = packIDs(req, npu)
	t.meta[i] = kindStretch | uint64(tier)<<16
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int { return t.n }

// Total reports how many events were ever recorded; Total > Len means
// the ring evicted early events.
func (t *Tracer) Total() int { return t.total }

// Cap reports the ring's capacity.
func (t *Tracer) Cap() int { return len(t.cycle) }

// event materializes ring slot i back into the export shape. Only the
// float columns the slot's kind carries are read — the hot recording
// methods leave the others untouched (stale from evicted events), so
// the standard kinds read exactly their schema; kinds beyond the
// standard five only ever arrive via Record, which writes every column.
func (t *Tracer) event(i int) Event {
	kind := uint16(t.meta[i])
	tier := uint16(t.meta[i] >> 16)
	note := uint16(t.meta[i] >> 32)
	e := Event{
		Cycle: t.cycle[i], Kind: t.kinds[kind],
		Req: int(int32(uint32(t.ids[i]))), NPU: int(int32(uint32(t.ids[i] >> 32))),
	}
	switch kind {
	case kindSubmit:
		e.Note = t.notes[note]
	case kindRoute:
		e.Tier, e.EstMS = t.tiers[tier], t.est[i]
	case kindStretch:
		e.Tier, e.Factor = t.tiers[tier], t.factor[i]
	case kindReclaim:
		e.Tier = t.tiers[tier]
	case kindComplete:
		e.Tier = t.tiers[tier]
		e.LatencyMS, e.ServiceMS = t.latency[i], t.service[i]
	default:
		e.Tier, e.Note = t.tiers[tier], t.notes[note]
		e.EstMS, e.Factor = t.est[i], t.factor[i]
		e.LatencyMS, e.ServiceMS = t.latency[i], t.service[i]
	}
	return e
}

// Events returns the recorded events oldest-first as a fresh slice the
// caller may mutate (MergeEvents does, to stamp sequence numbers).
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.n)
	// When the ring has wrapped the oldest surviving event sits at the
	// write cursor; before that, at slot zero.
	start := 0
	if t.total > t.n {
		start = t.w
	}
	for k := 0; k < t.n; k++ {
		i := start + k
		if i >= len(t.cycle) {
			i -= len(t.cycle)
		}
		out = append(out, t.event(i))
	}
	return out
}

// Trace bundles the two telemetry halves a node session fills. Either
// half may be nil to enable only the other: a nil Tracer disables
// per-request events, a nil Recorder disables tick sampling.
type Trace struct {
	// Tracer receives per-request lifecycle events; nil disables them.
	Tracer *Tracer
	// Recorder receives one sample per autoscale tick; nil disables
	// sampling. Tick metrics exist only on nodes with an autoscaler
	// attached — the tick is the sampling clock.
	Recorder *Recorder
}

// New builds a Trace with both halves at their default capacities.
func New() *Trace {
	return &Trace{Tracer: NewTracer(0), Recorder: NewRecorder(0)}
}
