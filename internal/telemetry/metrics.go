package telemetry

// metrics.go is the tick-sampled half of the telemetry layer: the
// serving node session captures one TickSample per autoscale tick —
// the same deterministic boundary the scaler evaluates on — so the
// metric series replays exactly with the stream. Gauges read the fluid
// router state (no re-simulation); counters are deltas since the
// previous tick.

// NPUSample is one backend's gauge row in a tick sample.
type NPUSample struct {
	// NPU is the backend index in spin-up order.
	NPU int `json:"npu"`
	// Tier is the backend's hardware tier; empty on homogeneous fleets.
	Tier string `json:"tier,omitempty"`
	// State is "active", "draining", "cordoned" or "failed".
	State string `json:"state"`
	// Speed is the backend's current service-time multiplier.
	Speed float64 `json:"speed"`
	// InFlight counts routed requests whose fluid horizon has not
	// drained at the tick.
	InFlight int `json:"in_flight"`
	// BacklogMS is the fluid backlog ahead of a new arrival, in ms.
	BacklogMS float64 `json:"backlog_ms"`
	// UtilFrac approximates the fraction of the tick the backend spent
	// busy: 1 minus the idle share of the fluid horizon (0 on failed
	// backends). It is a fluid-model estimate, not a simulated trace.
	UtilFrac float64 `json:"util_frac"`
	// Routed is how many requests the backend has ever been handed.
	Routed int `json:"routed"`
}

// TierGauge aggregates one hardware tier's gauges at a tick.
type TierGauge struct {
	// Tier is the tier name, in template order.
	Tier string `json:"tier"`
	// Active counts the tier's backends accepting new work.
	Active int `json:"active"`
	// InFlight sums the tier's in-flight requests.
	InFlight int `json:"in_flight"`
	// BacklogMS sums the tier's fluid backlog, in ms.
	BacklogMS float64 `json:"backlog_ms"`
}

// TickSample is the fleet's metric capture at one autoscale tick.
type TickSample struct {
	// Cycle is the tick instant on the virtual clock.
	Cycle int64 `json:"cycle"`
	// AtMS is Cycle in milliseconds.
	AtMS float64 `json:"at_ms"`
	// Fleet is the active backend count at the tick (before the
	// scaler's decision applies).
	Fleet int `json:"fleet"`
	// EstP95MS is the tick window's P95 fluid latency estimate — the
	// scaler's latency signal (decayed carry-over on empty windows).
	EstP95MS float64 `json:"est_p95_ms"`
	// Window is how many routing estimates the tick window held.
	Window int `json:"window"`
	// Completions counts requests whose fluid horizon drained since the
	// previous tick.
	Completions int `json:"completions"`
	// Reclaims counts requests reclaimed from failed backends since the
	// previous tick.
	Reclaims int `json:"reclaims"`
	// EstViolations counts tick-window estimates above the latency SLO.
	EstViolations int `json:"est_violations"`
	// NPUs holds one gauge row per backend, in spin-up order.
	NPUs []NPUSample `json:"npus"`
	// Tiers holds per-tier rollups in template order; nil on
	// homogeneous fleets.
	Tiers []TierGauge `json:"tiers,omitempty"`
}

// DefaultTickCap is the recorder ring's default capacity.
const DefaultTickCap = 2048

// Recorder is a fixed-capacity ring of tick samples, filled by the node
// session on every autoscale tick. Like Tracer it is single-threaded
// and evicts oldest-first past its capacity.
type Recorder struct {
	buf []TickSample
	// head mirrors Tracer.head: the next overwrite slot once full,
	// always total % cap, maintained without division.
	head  int
	total int
}

// NewRecorder builds a recorder ring holding up to cap samples;
// cap <= 0 selects DefaultTickCap.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultTickCap
	}
	return &Recorder{buf: make([]TickSample, 0, cap)}
}

// Record appends one tick sample, evicting the oldest when full.
func (r *Recorder) Record(s TickSample) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.head] = s
		r.head++
		if r.head == cap(r.buf) {
			r.head = 0
		}
	}
	r.total++
}

// Len reports how many samples the ring currently holds.
func (r *Recorder) Len() int { return len(r.buf) }

// Total reports how many samples were ever recorded.
func (r *Recorder) Total() int { return r.total }

// Samples returns the recorded ticks oldest-first as a fresh slice.
func (r *Recorder) Samples() []TickSample {
	out := make([]TickSample, 0, len(r.buf))
	if r.total > len(r.buf) {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf...)
}
