// Package metrics computes the multi-program performance metrics the
// paper adopts from Eyerman & Eeckhout (Equations 1-2): normalized
// turnaround time (NTT) and its average (ANTT), system throughput (STP),
// and priority-weighted fairness — plus the SLA-violation and tail-latency
// measures of Section VI-C.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/stats"
)

// Run summarizes one multi-tasked simulation.
type Run struct {
	// ANTT is the average normalized turnaround time (lower is better).
	ANTT float64
	// STP is the system throughput (higher is better; at most n).
	STP float64
	// Fairness is min_{i,j} PP_i / PP_j (Equation 2; higher is better,
	// 1.0 is perfectly proportional progress).
	Fairness float64
	// NTTs are the per-task normalized turnaround times.
	NTTs []float64
}

// FromTasks derives the Run metrics from completed context-table entries.
func FromTasks(tasks []*sched.Task) (Run, error) {
	if len(tasks) == 0 {
		return Run{}, fmt.Errorf("metrics: no tasks")
	}
	var run Run
	var prioritySum float64
	for _, t := range tasks {
		if t.Completion < 0 {
			return Run{}, fmt.Errorf("metrics: task %d (%s) did not complete", t.ID, t.Model)
		}
		if t.IsolatedCycles <= 0 {
			return Run{}, fmt.Errorf("metrics: task %d has non-positive isolated time", t.ID)
		}
		prioritySum += t.Priority.Tokens()
	}
	minPP, maxPP := math.Inf(1), math.Inf(-1)
	for _, t := range tasks {
		ntt := t.NTT()
		run.NTTs = append(run.NTTs, ntt)
		run.ANTT += ntt
		run.STP += 1 / ntt
		pp := (1 / ntt) / (t.Priority.Tokens() / prioritySum)
		if pp < minPP {
			minPP = pp
		}
		if pp > maxPP {
			maxPP = pp
		}
	}
	run.ANTT /= float64(len(tasks))
	run.Fairness = minPP / maxPP
	return run, nil
}

// SLAViolationRate returns the fraction of tasks whose turnaround
// exceeded target x their isolated execution time (Section VI-C's
// Time_isolated x N definition).
func SLAViolationRate(tasks []*sched.Task, target float64) float64 {
	if len(tasks) == 0 {
		return 0
	}
	violated := 0
	for _, t := range tasks {
		if t.NTT() > target {
			violated++
		}
	}
	return float64(violated) / float64(len(tasks))
}

// TailLatency returns the p-th percentile turnaround time, in cycles,
// over the selected tasks. keep selects which tasks participate (e.g.
// only high-priority ones for Figure 14); nil keeps all.
func TailLatency(tasks []*sched.Task, p float64, keep func(*sched.Task) bool) float64 {
	var xs []float64
	for _, t := range tasks {
		if keep != nil && !keep(t) {
			continue
		}
		xs = append(xs, float64(t.Turnaround()))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Percentile(xs, p)
}

// Aggregate averages Run metrics across repeated simulation runs (the
// paper reports means over 25 runs per configuration).
type Aggregate struct {
	Runs     int
	ANTT     float64
	STP      float64
	Fairness float64
}

// Averaged aggregates the per-run metrics.
func Averaged(runs []Run) Aggregate {
	agg := Aggregate{Runs: len(runs)}
	if len(runs) == 0 {
		return agg
	}
	for _, r := range runs {
		agg.ANTT += r.ANTT
		agg.STP += r.STP
		agg.Fairness += r.Fairness
	}
	n := float64(len(runs))
	agg.ANTT /= n
	agg.STP /= n
	agg.Fairness /= n
	return agg
}

// Improvement expresses a policy's aggregate relative to a baseline the
// way the paper's figures do: ANTT improves when it shrinks, STP and
// fairness improve when they grow.
type Improvement struct {
	ANTT     float64
	STP      float64
	Fairness float64
}

// Relative computes the improvement of agg over base.
func Relative(agg, base Aggregate) Improvement {
	imp := Improvement{}
	if agg.ANTT > 0 {
		imp.ANTT = base.ANTT / agg.ANTT
	}
	if base.STP > 0 {
		imp.STP = agg.STP / base.STP
	}
	if base.Fairness > 0 {
		imp.Fairness = agg.Fairness / base.Fairness
	}
	return imp
}
