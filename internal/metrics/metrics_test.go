package metrics

import (
	"math"
	"testing"

	"repro/internal/npu"
	"repro/internal/sched"
)

// doneTask fabricates a completed task with a given isolated time and
// turnaround.
func doneTask(id int, prio sched.Priority, isolated, turnaround int64) *sched.Task {
	prog := &npu.Program{Model: "m", Batch: 1, TotalCycles: isolated,
		Instrs: []npu.Instr{{Op: npu.GEMMOp, Cycles: int32(isolated)}}}
	exec := npu.NewExecution(prog)
	t := sched.NewTask(id, "m", 1, prio, 0, exec, isolated)
	t.MarkRunning(0)
	t.MarkFinished(turnaround)
	return t
}

func TestFromTasksEquation1(t *testing.T) {
	// Two tasks: NTT 2.0 and 4.0 -> ANTT 3.0, STP = 0.5 + 0.25 = 0.75.
	tasks := []*sched.Task{
		doneTask(1, sched.Medium, 100, 200),
		doneTask(2, sched.Medium, 100, 400),
	}
	run, err := FromTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if run.ANTT != 3.0 {
		t.Errorf("ANTT = %v, want 3.0", run.ANTT)
	}
	if run.STP != 0.75 {
		t.Errorf("STP = %v, want 0.75", run.STP)
	}
	if len(run.NTTs) != 2 || run.NTTs[0] != 2 || run.NTTs[1] != 4 {
		t.Errorf("NTTs = %v", run.NTTs)
	}
}

func TestFairnessEquation2(t *testing.T) {
	// Equal priorities, equal slowdowns: perfectly fair.
	equal := []*sched.Task{
		doneTask(1, sched.Low, 100, 300),
		doneTask(2, sched.Low, 200, 600),
	}
	run, err := FromTasks(equal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(run.Fairness-1) > 1e-12 {
		t.Errorf("equal-progress fairness = %v, want 1", run.Fairness)
	}

	// Priority-weighted: a high-priority task is *expected* to get more
	// progress; if both slow down equally, fairness drops because the
	// high-priority task got less than its share.
	weighted := []*sched.Task{
		doneTask(1, sched.High, 100, 200),
		doneTask(2, sched.Low, 100, 200),
	}
	run, err = FromTasks(weighted)
	if err != nil {
		t.Fatal(err)
	}
	// PP_high = 0.5/(9/10), PP_low = 0.5/(1/10): ratio = 1/9.
	if math.Abs(run.Fairness-1.0/9.0) > 1e-12 {
		t.Errorf("weighted fairness = %v, want 1/9", run.Fairness)
	}
}

func TestFromTasksErrors(t *testing.T) {
	if _, err := FromTasks(nil); err == nil {
		t.Error("empty task list should error")
	}
	unfinished := doneTask(1, sched.Low, 100, 200)
	unfinished.Completion = -1
	if _, err := FromTasks([]*sched.Task{unfinished}); err == nil {
		t.Error("unfinished task should error")
	}
	bad := doneTask(2, sched.Low, 100, 200)
	bad.IsolatedCycles = 0
	if _, err := FromTasks([]*sched.Task{bad}); err == nil {
		t.Error("non-positive isolated time should error")
	}
}

func TestSLAViolationRate(t *testing.T) {
	tasks := []*sched.Task{
		doneTask(1, sched.Low, 100, 150),  // NTT 1.5
		doneTask(2, sched.Low, 100, 500),  // NTT 5
		doneTask(3, sched.Low, 100, 2500), // NTT 25
		doneTask(4, sched.Low, 100, 100),  // NTT 1
	}
	cases := []struct {
		target float64
		want   float64
	}{
		{2, 0.5}, {10, 0.25}, {30, 0}, {1, 0.75},
	}
	for _, c := range cases {
		if got := SLAViolationRate(tasks, c.target); got != c.want {
			t.Errorf("SLA@%v = %v, want %v", c.target, got, c.want)
		}
	}
	if SLAViolationRate(nil, 4) != 0 {
		t.Error("empty set should have zero violations")
	}
}

func TestSLAMonotoneInTarget(t *testing.T) {
	tasks := []*sched.Task{
		doneTask(1, sched.Low, 100, 300),
		doneTask(2, sched.Low, 100, 900),
		doneTask(3, sched.Low, 100, 1800),
	}
	prev := 1.0
	for target := 2.0; target <= 20; target++ {
		got := SLAViolationRate(tasks, target)
		if got > prev {
			t.Fatalf("violation rate increased with looser target at %v", target)
		}
		prev = got
	}
}

func TestTailLatency(t *testing.T) {
	var tasks []*sched.Task
	for i := 1; i <= 100; i++ {
		prio := sched.Low
		if i%2 == 0 {
			prio = sched.High
		}
		tasks = append(tasks, doneTask(i, prio, 100, int64(i)*100))
	}
	all := TailLatency(tasks, 50, nil)
	if all != 5050 {
		t.Errorf("median turnaround = %v, want 5050", all)
	}
	hi := TailLatency(tasks, 95, func(t *sched.Task) bool { return t.Priority == sched.High })
	if hi <= all {
		t.Errorf("95th percentile of high tasks should exceed the overall median")
	}
	if !math.IsNaN(TailLatency(tasks, 95, func(t *sched.Task) bool { return false })) {
		t.Error("empty selection should be NaN")
	}
}

func TestAveragedAndRelative(t *testing.T) {
	runs := []Run{
		{ANTT: 2, STP: 4, Fairness: 0.5},
		{ANTT: 4, STP: 2, Fairness: 0.1},
	}
	agg := Averaged(runs)
	if agg.Runs != 2 || agg.ANTT != 3 || agg.STP != 3 || math.Abs(agg.Fairness-0.3) > 1e-12 {
		t.Errorf("aggregate = %+v", agg)
	}
	base := Aggregate{ANTT: 6, STP: 1.5, Fairness: 0.1}
	imp := Relative(agg, base)
	if imp.ANTT != 2 || imp.STP != 2 || math.Abs(imp.Fairness-3) > 1e-12 {
		t.Errorf("improvement = %+v", imp)
	}
	if empty := Averaged(nil); empty.Runs != 0 {
		t.Error("empty aggregate should be zero")
	}
}

func TestSTPBoundedByTaskCount(t *testing.T) {
	// Each task's C_single/C_multi <= 1, so STP <= n (Equation 1).
	tasks := []*sched.Task{
		doneTask(1, sched.Low, 100, 100),
		doneTask(2, sched.Low, 100, 120),
		doneTask(3, sched.Low, 100, 450),
	}
	run, err := FromTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if run.STP > 3 {
		t.Errorf("STP %v exceeds task count", run.STP)
	}
	if run.ANTT < 1 {
		t.Errorf("ANTT %v below 1 (turnaround >= isolated)", run.ANTT)
	}
}
