package trace

import (
	"strings"
	"testing"

	"repro/internal/npu"
)

func TestSpansSortedAndMakespan(t *testing.T) {
	tl := &Timeline{}
	tl.Add(Span{TaskID: 2, Label: "b", Start: 100, End: 200})
	tl.Add(Span{TaskID: 1, Label: "a", Start: 0, End: 50})
	spans := tl.Spans()
	if spans[0].TaskID != 1 || spans[1].TaskID != 2 {
		t.Error("spans not sorted by start")
	}
	if tl.Makespan() != 200 {
		t.Errorf("makespan = %d", tl.Makespan())
	}
	if tl.BusyCycles() != 150 {
		t.Errorf("busy = %d", tl.BusyCycles())
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	tl := &Timeline{}
	tl.Add(Span{TaskID: 1, Start: 0, End: 100})
	tl.Add(Span{TaskID: 2, Start: 50, End: 150})
	if err := tl.Validate(); err == nil {
		t.Error("overlapping spans must fail validation")
	}
	ok := &Timeline{}
	ok.Add(Span{TaskID: 1, Start: 0, End: 100})
	ok.Add(Span{TaskID: 2, Start: 100, End: 150})
	if err := ok.Validate(); err != nil {
		t.Errorf("back-to-back spans should validate: %v", err)
	}
}

func TestAddRejectsInvertedSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted span should panic")
		}
	}()
	(&Timeline{}).Add(Span{Start: 10, End: 5})
}

func TestRender(t *testing.T) {
	cfg := npu.DefaultConfig()
	tl := &Timeline{}
	tl.Add(Span{TaskID: 0, Label: "CNN-VN", Start: 0, End: 700_000})
	tl.Add(Span{TaskID: 1, Label: "CNN-AN", Start: 700_000, End: 1_400_000})
	out := tl.Render(cfg, 60)
	if !strings.Contains(out, "T0 CNN-VN") || !strings.Contains(out, "T1 CNN-AN") {
		t.Errorf("render missing task rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("render has no occupancy marks")
	}
	if !strings.Contains(out, "2.00 ms") {
		t.Errorf("render missing makespan label:\n%s", out)
	}
	// Narrow widths are clamped rather than crashing.
	if (&Timeline{}).Render(cfg, 5) == "" {
		t.Error("empty timeline should still render a placeholder")
	}
}

func TestRenderOrdersRowsByFirstAppearance(t *testing.T) {
	cfg := npu.DefaultConfig()
	tl := &Timeline{}
	tl.Add(Span{TaskID: 9, Label: "late", Start: 500, End: 600})
	tl.Add(Span{TaskID: 3, Label: "early", Start: 0, End: 100})
	out := tl.Render(cfg, 40)
	if strings.Index(out, "T3") > strings.Index(out, "T9") {
		t.Error("rows should be ordered by first appearance in time")
	}
}

func TestSpanDuration(t *testing.T) {
	if (Span{Start: 5, End: 17}).Duration() != 12 {
		t.Error("duration wrong")
	}
}
