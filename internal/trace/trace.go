// Package trace records and renders execution timelines of multi-tasked
// NPU runs — the Figure 2-style views that make scheduling behaviour
// inspectable (which task occupied the NPU when, and where preemptions
// happened).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/npu"
)

// Span is one contiguous occupancy interval of the NPU.
type Span struct {
	// TaskID identifies the occupant (-1 for idle gaps in rendering).
	TaskID int
	// Label is a short human-readable tag (model name, "ckpt", ...).
	Label string
	// Start and End are in cycles.
	Start, End int64
}

// Duration returns the span length in cycles.
func (s Span) Duration() int64 { return s.End - s.Start }

// Timeline accumulates spans for one run.
type Timeline struct {
	spans []Span
}

// Add appends a span; spans may be appended out of order and are sorted
// at rendering time.
func (t *Timeline) Add(s Span) {
	if s.End < s.Start {
		panic(fmt.Sprintf("trace: span ends (%d) before it starts (%d)", s.End, s.Start))
	}
	t.spans = append(t.spans, s)
}

// Spans returns the recorded spans sorted by start cycle.
func (t *Timeline) Spans() []Span {
	out := append([]Span(nil), t.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Makespan returns the end of the last span.
func (t *Timeline) Makespan() int64 {
	var end int64
	for _, s := range t.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// BusyCycles returns total occupied cycles (spans may not overlap on a
// single NPU; overlaps are counted twice and indicate a recording bug
// that Validate catches).
func (t *Timeline) BusyCycles() int64 {
	var busy int64
	for _, s := range t.spans {
		busy += s.Duration()
	}
	return busy
}

// Validate checks that no two spans overlap (one NPU executes one task at
// a time under temporal multi-tasking, Section IV-A).
func (t *Timeline) Validate() error {
	spans := t.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			return fmt.Errorf("trace: span %d (task %d [%d,%d)) overlaps span %d (task %d [%d,%d))",
				i, spans[i].TaskID, spans[i].Start, spans[i].End,
				i-1, spans[i-1].TaskID, spans[i-1].Start, spans[i-1].End)
		}
	}
	return nil
}

// Render draws the timeline as ASCII art with the given column budget,
// one row per task, matching the presentation of Figure 2.
func (t *Timeline) Render(cfg npu.Config, width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	makespan := t.Makespan()
	if makespan == 0 {
		makespan = 1
	}

	// Stable task ordering: by first appearance.
	order := []int{}
	labels := map[int]string{}
	seen := map[int]bool{}
	for _, s := range spans {
		if !seen[s.TaskID] {
			seen[s.TaskID] = true
			order = append(order, s.TaskID)
			labels[s.TaskID] = s.Label
		}
	}

	var b strings.Builder
	scale := float64(width) / float64(makespan)
	for _, id := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.TaskID != id {
				continue
			}
			lo := int(float64(s.Start) * scale)
			hi := int(float64(s.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			ch := byte('#')
			if strings.Contains(s.Label, "ckpt") {
				ch = 'x'
			}
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "%-16s |%s|\n", fmt.Sprintf("T%d %s", id, labels[id]), row)
	}
	fmt.Fprintf(&b, "%-16s  0%*s\n", "", width, fmt.Sprintf("%.2f ms", cfg.Millis(makespan)))
	return b.String()
}
