package dnn

import (
	"strings"
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s: %v", m.Name, err)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d models, want 8 (Section III)", len(suite))
	}
	want := []string{"CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
		"RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR"}
	for i, m := range suite {
		if m.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, m.Name, want[i])
		}
	}
	cnn, rnn := 0, 0
	for _, m := range suite {
		if m.IsRNN() {
			rnn++
		} else {
			cnn++
		}
	}
	if cnn != 4 || rnn != 4 {
		t.Errorf("suite split %d CNN / %d RNN, want 4/4", cnn, rnn)
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("CNN-VN")
	if err != nil || m.Name != "CNN-VN" {
		t.Errorf("ByName(CNN-VN) = %v, %v", m, err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("ByName with unknown label should error")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Errorf("Names() returned %d entries, want %d", len(names), len(All()))
	}
}

// Published MAC counts (batch 1, multiply-accumulate) for the classic
// CNNs; our shape-derived totals must land within a modest tolerance of
// the literature values.
func TestCNNMACCountsMatchLiterature(t *testing.T) {
	cases := []struct {
		model   string
		wantG   float64
		tolFrac float64
	}{
		{"CNN-AN", 1.1, 0.25},  // AlexNet ~0.7-1.1 GMAC depending on variant
		{"CNN-VN", 15.5, 0.05}, // VGG-16 ~15.5 GMAC
		{"CNN-GN", 1.6, 0.25},  // GoogLeNet ~1.5 GMAC
		{"CNN-MN", 0.57, 0.15}, // MobileNet-v1 ~0.57 GMAC
		{"CNN-RN", 3.9, 0.15},  // ResNet-50 ~3.8-4.1 GMAC
	}
	for _, c := range cases {
		m, err := ByName(c.model)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.TotalMACs(1, 0, 0)) / 1e9
		lo, hi := c.wantG*(1-c.tolFrac), c.wantG*(1+c.tolFrac)
		if got < lo || got > hi {
			t.Errorf("%s MACs = %.2fG, want within [%.2f, %.2f]G", c.model, got, lo, hi)
		}
	}
}

func TestVGGLayerStructure(t *testing.T) {
	m := VGG16()
	convs, fcs, pools := 0, 0, 0
	for _, l := range m.Static {
		switch l.Kind {
		case Conv:
			convs++
		case FC:
			fcs++
		case Pool:
			pools++
		}
	}
	if convs != 13 || fcs != 3 || pools != 5 {
		t.Errorf("VGG16 has %d conv / %d fc / %d pool, want 13/3/5", convs, fcs, pools)
	}
	// Figure 7 labels c01..c13 must be present.
	names := map[string]bool{}
	for _, l := range m.Static {
		names[l.Name] = true
	}
	for _, want := range []string{"c01", "c07", "c13", "fc1", "fc2"} {
		if !names[want] {
			t.Errorf("VGG16 missing layer %s", want)
		}
	}
}

func TestGoogLeNetInceptionModules(t *testing.T) {
	m := GoogLeNet()
	modules := map[string]bool{}
	for _, l := range m.Static {
		if i := strings.IndexByte(l.Name, '/'); i > 0 {
			modules[l.Name[:i]] = true
		}
	}
	for _, want := range []string{"3a", "3b", "4a", "4b", "4c", "4d", "4e", "5a", "5b"} {
		if !modules[want] {
			t.Errorf("GoogLeNet missing inception module %s", want)
		}
	}
}

func TestMobileNetDepthwiseStructure(t *testing.T) {
	m := MobileNet()
	dw, pw := 0, 0
	for _, l := range m.Static {
		switch {
		case l.Kind == DWConv:
			dw++
		case l.Kind == Conv && l.KH == 1:
			pw++
		}
	}
	if dw != 13 || pw != 13 {
		t.Errorf("MobileNet has %d depthwise / %d pointwise, want 13/13", dw, pw)
	}
}

func TestRNNUnrollScalesWithLengths(t *testing.T) {
	for _, m := range Suite() {
		if !m.IsRNN() {
			continue
		}
		short := len(m.LayersFor(m.MinInLen, m.MinInLen))
		long := len(m.LayersFor(m.MaxInLen, m.MaxInLen))
		if long <= short {
			t.Errorf("%s: unroll did not grow with length (%d vs %d)", m.Name, short, long)
		}
	}
}

func TestRNNWeightsSharedAcrossTimesteps(t *testing.T) {
	for _, m := range Suite() {
		if !m.IsRNN() {
			continue
		}
		w1 := m.TotalWeightBytes(m.MinInLen, m.MinInLen)
		w2 := m.TotalWeightBytes(m.MaxInLen, m.MaxInLen)
		if w1 != w2 {
			t.Errorf("%s: weight bytes vary with unroll length (%d vs %d); cell weights must be shared",
				m.Name, w1, w2)
		}
	}
}

func TestCNNLayersIgnoreSequenceLengths(t *testing.T) {
	m := AlexNet()
	a := m.LayersFor(0, 0)
	b := m.LayersFor(10, 20)
	if len(a) != len(b) {
		t.Error("CNN layer list should not depend on sequence lengths")
	}
}

func TestModelValidateFailures(t *testing.T) {
	bad := []*Model{
		{Name: "", Class: CNN, Static: []Layer{NewFC("f", 1, 1, false)}},
		{Name: "empty", Class: CNN},
		{Name: "badlayer", Class: CNN, Static: []Layer{{Name: "x", Kind: FC}}},
		{Name: "nounroll", Class: RNN, SeqProfile: "sa", MinInLen: 1, MaxInLen: 2},
		{Name: "badlen", Class: RNN, SeqProfile: "sa", MinInLen: 5, MaxInLen: 2,
			Unroll: func(a, b int) []Layer { return []Layer{NewFC("f", 1, 1, false)} }},
		{Name: "noprofile", Class: RNN, MinInLen: 1, MaxInLen: 2,
			Unroll: func(a, b int) []Layer { return []Layer{NewFC("f", 1, 1, false)} }},
		{Name: "badclass", Class: Class(9)},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q should fail validation", m.Name)
		}
	}
}

func TestMaxOutputBytes(t *testing.T) {
	m := VGG16()
	got := m.MaxOutputBytes(1, 0, 0)
	// c01/c02 emit 224*224*64 elements = 6.4MB at 2 bytes each.
	want := int64(224 * 224 * 64 * 2)
	if got != want {
		t.Errorf("VGG16 MaxOutputBytes = %d, want %d", got, want)
	}
	if m.MaxOutputBytes(16, 0, 0) != want*16 {
		t.Error("MaxOutputBytes should scale with batch")
	}
}

func TestClassString(t *testing.T) {
	if CNN.String() != "CNN" || RNN.String() != "RNN" {
		t.Error("class names wrong")
	}
	if Class(7).String() == "" {
		t.Error("unknown class should render")
	}
}
