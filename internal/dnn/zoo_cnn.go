package dnn

import "fmt"

// This file encodes the CNN benchmark topologies of Section III:
// CNN-AN (AlexNet), CNN-GN (GoogLeNet/Inception-v1), CNN-VN (VGG-16),
// CNN-MN (MobileNet-v1), plus CNN-RN (ResNet-50), which the paper uses
// only in the Figure 1 co-location motivation experiment.
//
// Layer shapes follow the published architectures; only shape information
// is used (no weights), since the NPU timing model is shape-deterministic.

// AlexNet returns the CNN-AN benchmark model.
func AlexNet() *Model {
	layers := []Layer{
		NewConv("conv1", 227, 227, 3, 96, 11, 4, 0),
		NewPool("pool1", 55, 55, 96, 3, 2, 0),
		NewConv("conv2", 27, 27, 96, 256, 5, 1, 2),
		NewPool("pool2", 27, 27, 256, 3, 2, 0),
		NewConv("conv3", 13, 13, 256, 384, 3, 1, 1),
		NewConv("conv4", 13, 13, 384, 384, 3, 1, 1),
		NewConv("conv5", 13, 13, 384, 256, 3, 1, 1),
		NewPool("pool5", 13, 13, 256, 3, 2, 0),
		NewFC("fc6", 256*6*6, 4096, true),
		NewFC("fc7", 4096, 4096, true),
		NewFC("fc8", 4096, 1000, false),
	}
	return &Model{Name: "CNN-AN", Class: CNN, Static: layers}
}

// VGG16 returns the CNN-VN benchmark model (13 conv + 3 FC, matching the
// c01..c13/fc1..fc2 labels of Figure 7).
func VGG16() *Model {
	var layers []Layer
	conv := func(i int, hw, inC, outC int) {
		layers = append(layers, NewConv(fmt.Sprintf("c%02d", i), hw, hw, inC, outC, 3, 1, 1))
	}
	pool := func(name string, hw, c int) {
		layers = append(layers, NewPool(name, hw, hw, c, 2, 2, 0))
	}
	conv(1, 224, 3, 64)
	conv(2, 224, 64, 64)
	pool("pool1", 224, 64)
	conv(3, 112, 64, 128)
	conv(4, 112, 128, 128)
	pool("pool2", 112, 128)
	conv(5, 56, 128, 256)
	conv(6, 56, 256, 256)
	conv(7, 56, 256, 256)
	pool("pool3", 56, 256)
	conv(8, 28, 256, 512)
	conv(9, 28, 512, 512)
	conv(10, 28, 512, 512)
	pool("pool4", 28, 512)
	conv(11, 14, 512, 512)
	conv(12, 14, 512, 512)
	conv(13, 14, 512, 512)
	pool("pool5", 14, 512)
	layers = append(layers,
		NewFC("fc1", 512*7*7, 4096, true),
		NewFC("fc2", 4096, 4096, true),
		NewFC("fc3", 4096, 1000, false),
	)
	return &Model{Name: "CNN-VN", Class: CNN, Static: layers}
}

// inceptionModule appends one GoogLeNet inception module's layers. Branch
// channel counts follow the Inception-v1 table: n1 (1x1), n3r->n3
// (1x1 reduce then 3x3), n5r->n5 (1x1 reduce then 5x5), np (pool proj).
func inceptionModule(layers []Layer, name string, hw, inC, n1, n3r, n3, n5r, n5, np int) []Layer {
	add := func(suffix string, l Layer) {
		l.Name = name + "/" + suffix
		layers = append(layers, l)
	}
	add("1x1", NewConv("", hw, hw, inC, n1, 1, 1, 0))
	add("3x3r", NewConv("", hw, hw, inC, n3r, 1, 1, 0))
	add("3x3", NewConv("", hw, hw, n3r, n3, 3, 1, 1))
	add("5x5r", NewConv("", hw, hw, inC, n5r, 1, 1, 0))
	add("5x5", NewConv("", hw, hw, n5r, n5, 5, 1, 2))
	add("pool", NewPool("", hw, hw, inC, 3, 1, 1))
	add("poolp", NewConv("", hw, hw, inC, np, 1, 1, 0))
	return layers
}

// GoogLeNet returns the CNN-GN benchmark model (Inception-v1).
func GoogLeNet() *Model {
	var layers []Layer
	layers = append(layers,
		NewConv("conv1", 224, 224, 3, 64, 7, 2, 3),
		NewPool("pool1", 112, 112, 64, 3, 2, 1),
		NewConv("conv2r", 56, 56, 64, 64, 1, 1, 0),
		NewConv("conv2", 56, 56, 64, 192, 3, 1, 1),
		NewPool("pool2", 56, 56, 192, 3, 2, 1),
	)
	layers = inceptionModule(layers, "3a", 28, 192, 64, 96, 128, 16, 32, 32)
	layers = inceptionModule(layers, "3b", 28, 256, 128, 128, 192, 32, 96, 64)
	layers = append(layers, NewPool("pool3", 28, 28, 480, 3, 2, 1))
	layers = inceptionModule(layers, "4a", 14, 480, 192, 96, 208, 16, 48, 64)
	layers = inceptionModule(layers, "4b", 14, 512, 160, 112, 224, 24, 64, 64)
	layers = inceptionModule(layers, "4c", 14, 512, 128, 128, 256, 24, 64, 64)
	layers = inceptionModule(layers, "4d", 14, 512, 112, 144, 288, 32, 64, 64)
	layers = inceptionModule(layers, "4e", 14, 528, 256, 160, 320, 32, 128, 128)
	layers = append(layers, NewPool("pool4", 14, 14, 832, 3, 2, 1))
	layers = inceptionModule(layers, "5a", 7, 832, 256, 160, 320, 32, 128, 128)
	layers = inceptionModule(layers, "5b", 7, 832, 384, 192, 384, 48, 128, 128)
	layers = append(layers,
		NewPool("pool5", 7, 7, 1024, 7, 1, 0),
		NewFC("fc", 1024, 1000, false),
	)
	return &Model{Name: "CNN-GN", Class: CNN, Static: layers}
}

// MobileNet returns the CNN-MN benchmark model (MobileNet-v1, width 1.0).
// Its depthwise stages exercise the low-utilization code path of the
// systolic array and its 1x1 pointwise convolutions populate the
// low-effective-throughput region of Figure 10.
func MobileNet() *Model {
	var layers []Layer
	idx := 0
	dwpw := func(hw, inC, outC, stride int) {
		idx++
		outHW := spatialOut(hw, 3, stride, 1)
		layers = append(layers,
			NewDWConv(fmt.Sprintf("dw%d", idx), hw, hw, inC, 3, stride, 1),
			NewConv(fmt.Sprintf("pw%d", idx), outHW, outHW, inC, outC, 1, 1, 0),
		)
	}
	layers = append(layers, NewConv("conv1", 224, 224, 3, 32, 3, 2, 1))
	dwpw(112, 32, 64, 1)
	dwpw(112, 64, 128, 2)
	dwpw(56, 128, 128, 1)
	dwpw(56, 128, 256, 2)
	dwpw(28, 256, 256, 1)
	dwpw(28, 256, 512, 2)
	for i := 0; i < 5; i++ {
		dwpw(14, 512, 512, 1)
	}
	dwpw(14, 512, 1024, 2)
	dwpw(7, 1024, 1024, 1)
	layers = append(layers,
		NewPool("avgpool", 7, 7, 1024, 7, 1, 0),
		NewFC("fc", 1024, 1000, false),
	)
	return &Model{Name: "CNN-MN", Class: CNN, Static: layers}
}

// bottleneck appends one ResNet-50 bottleneck block (1x1 -> 3x3 -> 1x1),
// optionally with a projection shortcut.
func bottleneck(layers []Layer, name string, hw, inC, midC, outC, stride int, project bool) []Layer {
	outHW := spatialOut(hw, 1, stride, 0)
	layers = append(layers,
		NewConv(name+"/1x1a", hw, hw, inC, midC, 1, stride, 0),
		NewConv(name+"/3x3", outHW, outHW, midC, midC, 3, 1, 1),
		NewConv(name+"/1x1b", outHW, outHW, midC, outC, 1, 1, 0),
	)
	if project {
		layers = append(layers, NewConv(name+"/proj", hw, hw, inC, outC, 1, stride, 0))
	}
	return layers
}

// ResNet50 returns CNN-RN, used in the Figure 1 co-location motivation
// experiment ("ResNet" co-located with GoogLeNet on one accelerator).
func ResNet50() *Model {
	var layers []Layer
	layers = append(layers,
		NewConv("conv1", 224, 224, 3, 64, 7, 2, 3),
		NewPool("pool1", 112, 112, 64, 3, 2, 1),
	)
	stage := func(name string, hw, inC, midC, outC, blocks, stride int) int {
		layers = bottleneck(layers, fmt.Sprintf("%s.0", name), hw, inC, midC, outC, stride, true)
		outHW := spatialOut(hw, 1, stride, 0)
		for b := 1; b < blocks; b++ {
			layers = bottleneck(layers, fmt.Sprintf("%s.%d", name, b), outHW, outC, midC, outC, 1, false)
		}
		return outHW
	}
	hw := stage("res2", 56, 64, 64, 256, 3, 1)
	hw = stage("res3", hw, 256, 128, 512, 4, 2)
	hw = stage("res4", hw, 512, 256, 1024, 6, 2)
	hw = stage("res5", hw, 1024, 512, 2048, 3, 2)
	layers = append(layers,
		NewPool("avgpool", hw, hw, 2048, hw, 1, 0),
		NewFC("fc", 2048, 1000, false),
	)
	return &Model{Name: "CNN-RN", Class: CNN, Static: layers}
}
