package dnn

import "fmt"

// This file encodes the RNN benchmark topologies of Section III:
// RNN-SA (sentiment analysis, linear input/output length relationship),
// RNN-MT1/MT2 (seq2seq machine translation, non-linear relationship), and
// RNN-ASR (a "Listen, Attend and Spell"-style speech recognizer).
//
// Each model's Unroll function materialises the full time-unrolled layer
// list for a concrete (input length, output length) pair; the actual
// output length of a task instance is sampled from the seqlen profile
// named by SeqProfile, while PREMA's predictor uses the regression lookup
// table built from the same profile (Section V-B, Figure 9).

// lstmStack appends nLayers unrolled LSTM cell-steps for one timestep.
// The first layer consumes inDim, subsequent layers consume hidden.
// Layer names are timestep-invariant ("enc.l0", "enc.l1", ...) because the
// cell weights are shared across the unrolled steps; weight-footprint
// accounting and the profile-based predictor both key on the name.
func lstmStack(layers []Layer, prefix string, nLayers, hidden, inDim int) []Layer {
	for l := 0; l < nLayers; l++ {
		d := hidden
		if l == 0 {
			d = inDim
		}
		layers = append(layers, NewLSTM(fmt.Sprintf("%s.l%d", prefix, l), hidden, d))
	}
	return layers
}

// SentimentAnalysis returns RNN-SA: a 2-layer LSTM (hidden 512) over the
// input sequence followed by a small classifier. Its output sequence
// length equals its input length (Figure 8(b)), so prediction is trivial.
func SentimentAnalysis() *Model {
	const (
		hidden = 512
		embed  = 512
		stack  = 2
	)
	unroll := func(inLen, outLen int) []Layer {
		// Linear RNN: recurrence length == input length; outLen is
		// ignored by construction (Figure 8(b)).
		var layers []Layer
		for t := 0; t < inLen; t++ {
			layers = lstmStack(layers, "enc", stack, hidden, embed)
		}
		layers = append(layers, NewFC("cls", hidden, 2, false))
		return layers
	}
	return &Model{
		Name: "RNN-SA", Class: RNN,
		Unroll:     unroll,
		SeqProfile: "sa",
		MinInLen:   5, MaxInLen: 50,
	}
}

// machineTranslation builds a seq2seq encoder/decoder LSTM with a
// per-decoder-step attention context and vocabulary projection. profile
// selects the target-language length characterization; hidden/vocab size
// the model so its end-to-end latency stays in the paper's 0.5-45 ms band
// (Section IV-D) despite the widely different unrolled lengths of the
// target languages.
func machineTranslation(name, profile string, stack, hidden, vocab int) *Model {
	embed := hidden
	unroll := func(inLen, outLen int) []Layer {
		var layers []Layer
		for t := 0; t < inLen; t++ {
			layers = lstmStack(layers, "enc", stack, hidden, embed)
		}
		for t := 0; t < outLen; t++ {
			layers = lstmStack(layers, "dec", stack, hidden, embed)
			// Attention context combine and vocabulary projection
			// per generated token (seq2seq decoding, Figure 8(c)).
			layers = append(layers,
				NewFC("attn", 2*hidden, hidden, true),
				NewFC("proj", hidden, vocab, false),
			)
		}
		return layers
	}
	return &Model{
		Name: name, Class: RNN,
		Unroll:     unroll,
		SeqProfile: profile,
		MinInLen:   5, MaxInLen: 50,
	}
}

// TranslationDE returns RNN-MT1, an English-to-German translation service
// with a word-level vocabulary (near-linear output/input length ratio,
// Figure 9(a)).
func TranslationDE() *Model {
	return machineTranslation("RNN-MT1", "mt-de", 2, 768, 16000)
}

// TranslationZH returns RNN-MT2, an English-to-Chinese translation service
// with a character-level decoder (strongly super-linear output lengths,
// Figure 9(c)); the smaller per-step cell compensates for the much longer
// unrolled decode.
func TranslationZH() *Model {
	return machineTranslation("RNN-MT2", "mt-zh", 2, 512, 4096)
}

// TranslationKO returns an English-to-Korean variant (Figure 9(b)); it is
// not part of the default 8-model suite but is available for sensitivity
// studies, mirroring the paper's random choice among DE/KO/ZH.
func TranslationKO() *Model {
	return machineTranslation("RNN-MT-KO", "mt-ko", 2, 768, 16000)
}

// SpeechRecognition returns RNN-ASR, a "Listen, Attend and Spell"-style
// model: a 3-layer pyramidal bidirectional LSTM encoder (hidden 512, time
// resolution halved per layer) and a 2-layer attention decoder emitting
// characters. Audio input lengths span 20-100 frames (Figure 9(d)).
func SpeechRecognition() *Model {
	const (
		hidden  = 512
		featDim = 80
		charVoc = 30
	)
	unroll := func(inLen, outLen int) []Layer {
		var layers []Layer
		// Pyramidal encoder: layer l runs ceil(inLen / 2^l) steps and
		// consumes the concatenation of two lower-layer outputs.
		steps := inLen
		inDim := featDim
		for l := 0; l < 3; l++ {
			for t := 0; t < steps; t++ {
				// Bidirectional: forward and backward cells.
				layers = append(layers,
					NewLSTM(fmt.Sprintf("enc.l%d.fw", l), hidden, inDim),
					NewLSTM(fmt.Sprintf("enc.l%d.bw", l), hidden, inDim),
				)
			}
			steps = (steps + 1) / 2
			inDim = 4 * hidden // concat of 2 timesteps x 2 directions
		}
		for t := 0; t < outLen; t++ {
			layers = lstmStack(layers, "dec", 2, hidden, hidden)
			layers = append(layers,
				NewFC("attn", 2*hidden, hidden, true),
				NewFC("proj", hidden, charVoc, false),
			)
		}
		return layers
	}
	return &Model{
		Name: "RNN-ASR", Class: RNN,
		Unroll:     unroll,
		SeqProfile: "asr",
		MinInLen:   20, MaxInLen: 100,
	}
}
