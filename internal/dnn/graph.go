package dnn

import (
	"fmt"
	"sort"
)

// Graph is the compile-time dependency DAG of Section II-A: each node is
// a layer, each edge a producer-consumer activation dependency. The
// benchmark zoo's Static layer lists are valid topological orders of
// their graphs; Graph makes the structure explicit so tooling can verify
// it, render it, and reason about fusion or parallel branches (e.g. the
// four branches of a GoogLeNet inception module, or a ResNet block's
// shortcut).
type Graph struct {
	// Nodes are the layers, indexed by position.
	Nodes []Layer
	// Edges[i] lists the node indices consuming node i's output.
	Edges [][]int
}

// NewGraph builds a graph over the given layers with no edges.
func NewGraph(layers []Layer) *Graph {
	return &Graph{Nodes: layers, Edges: make([][]int, len(layers))}
}

// AddEdge records that node to consumes node from's output.
func (g *Graph) AddEdge(from, to int) error {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		return fmt.Errorf("dnn: edge %d->%d outside graph of %d nodes", from, to, len(g.Nodes))
	}
	if from == to {
		return fmt.Errorf("dnn: self edge on node %d", from)
	}
	g.Edges[from] = append(g.Edges[from], to)
	return nil
}

// InDegrees returns each node's dependency count.
func (g *Graph) InDegrees() []int {
	in := make([]int, len(g.Nodes))
	for _, outs := range g.Edges {
		for _, to := range outs {
			in[to]++
		}
	}
	return in
}

// TopoOrder returns a deterministic topological ordering (Kahn's
// algorithm with index tie-breaking), or an error if the graph has a
// cycle — which would make the "DAG extracted at compile time" premise
// false for that model.
func (g *Graph) TopoOrder() ([]int, error) {
	in := g.InDegrees()
	var ready []int
	for i, d := range in {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unlocked []int
		for _, to := range g.Edges[n] {
			in[to]--
			if in[to] == 0 {
				unlocked = append(unlocked, to)
			}
		}
		sort.Ints(unlocked)
		ready = append(ready, unlocked...)
		sort.Ints(ready)
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("dnn: graph has a cycle (%d of %d nodes ordered)",
			len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks the DAG property and that every non-source node has at
// least one producer.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Sources returns the nodes with no producers (network inputs).
func (g *Graph) Sources() []int {
	var out []int
	for i, d := range g.InDegrees() {
		if d == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns the nodes nothing consumes (network outputs).
func (g *Graph) Sinks() []int {
	var out []int
	for i, outs := range g.Edges {
		if len(outs) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// CriticalPathCycles returns the longest path through the graph when each
// node is weighted by weight(node) — the lower bound on latency a
// spatially parallel accelerator could reach, versus the serial sum a
// single time-shared NPU executes.
func (g *Graph) CriticalPathCycles(weight func(Layer) int64) (int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	dist := make([]int64, len(g.Nodes))
	var max int64
	for _, n := range order {
		d := dist[n] + weight(g.Nodes[n])
		if d > max {
			max = d
		}
		for _, to := range g.Edges[n] {
			if d > dist[to] {
				dist[to] = d
			}
		}
	}
	return max, nil
}

// BuildGraph derives the dependency DAG for a zoo CNN from its layer
// naming structure: sequential layers chain; GoogLeNet inception branches
// ("<mod>/1x1", "<mod>/3x3r"->"<mod>/3x3", ...) fan out from the previous
// module output and re-converge; ResNet bottleneck blocks
// ("<blk>/1x1a"->"<blk>/3x3"->"<blk>/1x1b" with optional "<blk>/proj")
// branch around the block. RNN models are linear chains per their
// unrolled order.
func BuildGraph(m *Model, inLen, outLen int) (*Graph, error) {
	layers := m.LayersFor(inLen, outLen)
	g := NewGraph(layers)

	// group returns the layer's structural group and role: for
	// "3a/5x5r" the group is "3a" and role "5x5r"; plain layers group
	// as themselves.
	group := func(name string) (string, string) {
		for i := 0; i < len(name); i++ {
			if name[i] == '/' {
				return name[:i], name[i+1:]
			}
		}
		return name, ""
	}

	// Walk the layers; whenever a run of same-group layers appears,
	// wire its internal branch structure; otherwise chain sequentially.
	i := 0
	prevOut := []int{} // node indices whose outputs feed the next group
	link := func(from []int, to int) error {
		for _, f := range from {
			if err := g.AddEdge(f, to); err != nil {
				return err
			}
		}
		return nil
	}
	for i < len(layers) {
		grp, role := group(layers[i].Name)
		if role == "" {
			// Plain sequential layer.
			if err := link(prevOut, i); err != nil {
				return nil, err
			}
			prevOut = []int{i}
			i++
			continue
		}
		// Collect the whole group.
		start := i
		for i < len(layers) {
			gr, _ := group(layers[i].Name)
			if gr != grp {
				break
			}
			i++
		}
		members := map[string]int{}
		for j := start; j < i; j++ {
			_, r := group(layers[j].Name)
			members[r] = j
		}
		var outs []int
		wire := func(first string, rest ...string) error {
			idx, ok := members[first]
			if !ok {
				return nil
			}
			if err := link(prevOut, idx); err != nil {
				return err
			}
			last := idx
			for _, r := range rest {
				n, ok := members[r]
				if !ok {
					break
				}
				if err := g.AddEdge(last, n); err != nil {
					return err
				}
				last = n
			}
			outs = append(outs, last)
			return nil
		}
		// Inception branches.
		if err := wire("1x1"); err != nil {
			return nil, err
		}
		if err := wire("3x3r", "3x3"); err != nil {
			return nil, err
		}
		if err := wire("5x5r", "5x5"); err != nil {
			return nil, err
		}
		if err := wire("pool", "poolp"); err != nil {
			return nil, err
		}
		// ResNet bottleneck main path and projection shortcut.
		if err := wire("1x1a", "3x3", "1x1b"); err != nil {
			return nil, err
		}
		if err := wire("proj"); err != nil {
			return nil, err
		}
		if len(outs) == 0 {
			// Unknown structure: chain the whole run sequentially.
			for j := start; j < i; j++ {
				if err := link(prevOut, j); err != nil {
					return nil, err
				}
				prevOut = []int{j}
			}
			continue
		}
		prevOut = outs
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
