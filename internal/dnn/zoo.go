package dnn

import (
	"fmt"
	"sort"
)

// Suite returns the eight-model benchmark suite of Section III in the
// paper's presentation order: CNN-AN/GN/VN/MN then RNN-SA/MT1/MT2/ASR.
func Suite() []*Model {
	return []*Model{
		AlexNet(),
		GoogLeNet(),
		VGG16(),
		MobileNet(),
		SentimentAnalysis(),
		TranslationDE(),
		TranslationZH(),
		SpeechRecognition(),
	}
}

// All returns every model in the zoo, including the auxiliary models that
// are not part of the default suite (CNN-RN for Figure 1, RNN-MT-KO for
// sensitivity studies).
func All() []*Model {
	return append(Suite(), ResNet50(), TranslationKO())
}

// ByName looks a model up by its workload label.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("dnn: unknown model %q (known: %v)", name, Names())
}

// Names returns the sorted labels of every model in the zoo.
func Names() []string {
	models := All()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

// BatchSizes are the batch sizes the paper evaluates (Figures 5-6).
var BatchSizes = []int{1, 4, 16}
