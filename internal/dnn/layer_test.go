package dnn

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSpatialOut(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, want int
	}{
		{224, 3, 1, 1, 224}, // same-padded 3x3
		{224, 3, 2, 1, 112}, // strided
		{227, 11, 4, 0, 55}, // AlexNet conv1
		{55, 3, 2, 0, 27},   // AlexNet pool1
		{7, 7, 1, 0, 1},     // global pool
		{3, 5, 1, 0, 0},     // kernel larger than input
	}
	for _, c := range cases {
		if got := spatialOut(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("spatialOut(%d,%d,%d,%d) = %d, want %d",
				c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConvGEMMDims(t *testing.T) {
	l := NewConv("c", 56, 56, 64, 128, 3, 1, 1)
	g, ok := l.GEMM(4)
	if !ok {
		t.Fatal("conv should lower to GEMM")
	}
	want := GEMMShape{M: 128, K: 64 * 9, N: 56 * 56 * 4}
	if g != want {
		t.Errorf("GEMM = %+v, want %+v", g, want)
	}
	if g.MACs() != int64(128)*576*12544 {
		t.Errorf("MACs = %d", g.MACs())
	}
}

func TestFCAndLSTMGEMMDims(t *testing.T) {
	fc := NewFC("fc", 4096, 1000, false)
	g, ok := fc.GEMM(16)
	if !ok || g != (GEMMShape{M: 1000, K: 4096, N: 16}) {
		t.Errorf("FC GEMM = %+v ok=%v", g, ok)
	}
	lstm := NewLSTM("l", 512, 256)
	g, ok = lstm.GEMM(2)
	if !ok || g != (GEMMShape{M: 2048, K: 768, N: 2}) {
		t.Errorf("LSTM GEMM = %+v ok=%v", g, ok)
	}
}

func TestVectorLayersDoNotLowerToGEMM(t *testing.T) {
	for _, l := range []Layer{
		NewDWConv("dw", 14, 14, 512, 3, 1, 1),
		NewPool("p", 14, 14, 512, 2, 2, 0),
		{Name: "a", Kind: Act, InH: 14, InW: 14, InC: 512},
	} {
		if _, ok := l.GEMM(1); ok {
			t.Errorf("layer %s (%v) unexpectedly lowers to GEMM", l.Name, l.Kind)
		}
		if l.MACs(1) <= 0 {
			t.Errorf("layer %s has non-positive MACs", l.Name)
		}
	}
}

func TestOutputAndInputElems(t *testing.T) {
	conv := NewConv("c", 28, 28, 256, 512, 3, 1, 1)
	if got := conv.OutputElems(2); got != 512*28*28*2 {
		t.Errorf("conv OutputElems = %d", got)
	}
	if got := conv.InputElems(2); got != 256*28*28*2 {
		t.Errorf("conv InputElems = %d", got)
	}
	lstm := NewLSTM("l", 512, 512)
	// Hidden plus cell state are live output state.
	if got := lstm.OutputElems(3); got != 2*512*3 {
		t.Errorf("lstm OutputElems = %d", got)
	}
	fc := NewFC("f", 100, 10, false)
	if got := fc.OutputElems(5); got != 50 {
		t.Errorf("fc OutputElems = %d", got)
	}
}

func TestWeightElems(t *testing.T) {
	if got := NewConv("c", 8, 8, 3, 16, 5, 1, 2).WeightElems(); got != 16*3*25 {
		t.Errorf("conv WeightElems = %d", got)
	}
	if got := NewDWConv("d", 8, 8, 32, 3, 1, 1).WeightElems(); got != 32*9 {
		t.Errorf("dwconv WeightElems = %d", got)
	}
	if got := NewFC("f", 10, 20, false).WeightElems(); got != 200 {
		t.Errorf("fc WeightElems = %d", got)
	}
	if got := NewLSTM("l", 4, 2).WeightElems(); got != 4*4*(2+4) {
		t.Errorf("lstm WeightElems = %d", got)
	}
	if got := NewPool("p", 8, 8, 4, 2, 2, 0).WeightElems(); got != 0 {
		t.Errorf("pool WeightElems = %d, want 0", got)
	}
}

func TestLayerValidate(t *testing.T) {
	valid := []Layer{
		NewConv("c", 28, 28, 3, 8, 3, 1, 1),
		NewDWConv("d", 28, 28, 8, 3, 1, 1),
		NewFC("f", 4, 2, true),
		NewLSTM("l", 8, 4),
		NewPool("p", 28, 28, 8, 2, 2, 0),
	}
	for _, l := range valid {
		if err := l.Validate(); err != nil {
			t.Errorf("layer %s should validate: %v", l.Name, err)
		}
	}
	invalid := []Layer{
		{Name: "neg", Kind: Conv, InH: -1, InW: 3, InC: 3, OutC: 3, KH: 1, KW: 1, Stride: 1},
		{Name: "stride0", Kind: Conv, InH: 3, InW: 3, InC: 3, OutC: 3, KH: 1, KW: 1, Stride: 0},
		{Name: "bigk", Kind: Conv, InH: 3, InW: 3, InC: 3, OutC: 3, KH: 9, KW: 9, Stride: 1},
		{Name: "dwmismatch", Kind: DWConv, InH: 8, InW: 8, InC: 4, OutC: 8, KH: 3, KW: 3, Stride: 1, Padding: 1},
		{Name: "fc0", Kind: FC, InF: 0, OutF: 2},
		{Name: "lstm0", Kind: LSTM, Hidden: 0, InDim: 4},
		{Name: "unknown", Kind: Kind(99)},
	}
	for _, l := range invalid {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %s should fail validation", l.Name)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Conv: "CONV", DWConv: "DWCONV", FC: "FC",
		Pool: "POOL", Act: "ACTV", LSTM: "RECR",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBytes(t *testing.T) {
	if got := Bytes(100); got != 200 {
		t.Errorf("Bytes(100) = %d with 16-bit elements, want 200", got)
	}
}

// Property: for GEMM-lowerable layers, layer MACs always equal the GEMM
// shape's MACs, and scale linearly with batch.
func TestGEMMMACsConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func() bool {
		hw := 1 + rng.IntN(64)
		inC := 1 + rng.IntN(256)
		outC := 1 + rng.IntN(256)
		k := 1 + rng.IntN(min(hw, 7))
		l := NewConv("c", hw, hw, inC, outC, k, 1, k/2)
		if l.OutH() <= 0 {
			return true
		}
		b := 1 + rng.IntN(16)
		g, ok := l.GEMM(b)
		if !ok {
			return false
		}
		if l.MACs(b) != g.MACs() {
			return false
		}
		// Linear batch scaling.
		g1, _ := l.GEMM(1)
		return g.MACs() == g1.MACs()*int64(b)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
