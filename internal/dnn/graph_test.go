package dnn

import (
	"testing"
)

func TestGraphBasics(t *testing.T) {
	layers := []Layer{
		NewFC("a", 4, 4, false),
		NewFC("b", 4, 4, false),
		NewFC("c", 4, 4, false),
	}
	g := NewGraph(layers)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self edge should be rejected")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge should be rejected")
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Errorf("topo order %v", order)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Errorf("sources %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != 2 {
		t.Errorf("sinks %v", snk)
	}
}

func TestGraphDetectsCycle(t *testing.T) {
	layers := []Layer{NewFC("a", 4, 4, false), NewFC("b", 4, 4, false)}
	g := NewGraph(layers)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle should be detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("validate should reject a cycle")
	}
}

func TestBuildGraphZooModels(t *testing.T) {
	for _, m := range All() {
		inLen, outLen := 0, 0
		if m.IsRNN() {
			inLen, outLen = m.MinInLen, m.MinInLen
		}
		g, err := BuildGraph(m, inLen, outLen)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(g.Nodes) != len(m.LayersFor(inLen, outLen)) {
			t.Errorf("%s: node count mismatch", m.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		// Every zoo model's layer list must itself be a valid
		// topological order: no edge may point backwards.
		for from, outs := range g.Edges {
			for _, to := range outs {
				if to <= from {
					t.Errorf("%s: edge %d->%d points backwards", m.Name, from, to)
				}
			}
		}
	}
}

func TestGoogLeNetInceptionBranchesParallel(t *testing.T) {
	m := GoogLeNet()
	g, err := BuildGraph(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find module 3a's four branch heads; they must share a producer
	// (pool2) and have no edges among different branches.
	idx := map[string]int{}
	for i, l := range m.Static {
		idx[l.Name] = i
	}
	heads := []int{idx["3a/1x1"], idx["3a/3x3r"], idx["3a/5x5r"], idx["3a/pool"]}
	in := g.InDegrees()
	for _, h := range heads {
		if in[h] != 1 {
			t.Errorf("branch head %s has in-degree %d, want 1", m.Static[h].Name, in[h])
		}
	}
	// The reduce layers feed their spatial layers.
	found := false
	for _, to := range g.Edges[idx["3a/3x3r"]] {
		if to == idx["3a/3x3"] {
			found = true
		}
	}
	if !found {
		t.Error("3a/3x3r should feed 3a/3x3")
	}
	// Critical path must be shorter than the serial sum: the branches
	// are parallel.
	weight := func(l Layer) int64 { return l.MACs(1) }
	cp, err := g.CriticalPathCycles(weight)
	if err != nil {
		t.Fatal(err)
	}
	var serial int64
	for _, l := range m.Static {
		serial += l.MACs(1)
	}
	if cp >= serial {
		t.Errorf("critical path %d should be below serial sum %d for a branched DAG", cp, serial)
	}
}

func TestResNetShortcutParallel(t *testing.T) {
	m := ResNet50()
	g, err := BuildGraph(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, l := range m.Static {
		idx[l.Name] = i
	}
	// res2.0's projection shortcut must run parallel to its main path:
	// same producer as 1x1a, and not downstream of 3x3.
	proj := idx["res2.0/proj"]
	a := idx["res2.0/1x1a"]
	in := g.InDegrees()
	if in[proj] != in[a] {
		t.Errorf("projection in-degree %d differs from main path %d", in[proj], in[a])
	}
	for _, to := range g.Edges[idx["res2.0/3x3"]] {
		if to == proj {
			t.Error("projection must not depend on the main path")
		}
	}
}

func TestLinearChainCriticalPathEqualsSerial(t *testing.T) {
	m := VGG16()
	g, err := BuildGraph(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	weight := func(l Layer) int64 { return l.MACs(1) }
	cp, err := g.CriticalPathCycles(weight)
	if err != nil {
		t.Fatal(err)
	}
	var serial int64
	for _, l := range m.Static {
		serial += l.MACs(1)
	}
	if cp != serial {
		t.Errorf("VGG is a chain: critical path %d should equal serial %d", cp, serial)
	}
}
