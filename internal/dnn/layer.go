// Package dnn defines the neural-network intermediate representation used
// throughout the PREMA reproduction: layers, models, their lowering to GEMM
// shapes, and the benchmark model zoo from Section III of the paper
// (CNN-AN/GN/VN/MN and RNN-SA/MT1/MT2/ASR, plus ResNet-50 for Figure 1).
//
// The representation is deliberately a timing IR, not a numerical one: a
// layer carries exactly the shape information needed to derive its GEMM
// lowering, MAC count, weight/activation footprints, and therefore its
// deterministic execution time on the systolic-array NPU (Section V-B).
package dnn

import (
	"fmt"

	"repro/internal/stats"
)

// Kind enumerates the layer types the paper's Section II-A discusses.
type Kind int

const (
	// Conv is a standard convolution, lowered to GEMM via im2col
	// (CONV_OP in the NPU ISA).
	Conv Kind = iota
	// DWConv is a depthwise convolution. It maps poorly onto a
	// weight-stationary systolic array (each output channel consumes a
	// disjoint input slice), so the compiler routes it to the vector
	// unit; this reproduces the low-effective-throughput outliers of
	// Figure 10.
	DWConv
	// FC is a fully-connected layer (GEMM_OP).
	FC
	// Pool is a pooling layer; an in-place VECTOR_OP (Section IV-B).
	Pool
	// Act is a standalone activation layer; an in-place VECTOR_OP.
	// Most activations in the zoo are fused into the producing layer.
	Act
	// LSTM is one recurrent cell-step of an LSTM layer: the combined
	// 4-gate GEMM over [input; hidden] plus elementwise gate math.
	LSTM
)

var kindNames = map[Kind]string{
	Conv:   "CONV",
	DWConv: "DWCONV",
	FC:     "FC",
	Pool:   "POOL",
	Act:    "ACTV",
	LSTM:   "RECR",
}

// String returns the paper's name for the layer kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// GEMMShape is the (m x k) x (k x n) matrix-multiplication a layer lowers
// to: an (m x k) weight matrix against a (k x n) input-activation matrix
// (Figure 3(c)).
type GEMMShape struct {
	M, K, N int
}

// MACs returns the multiply-accumulate count of the GEMM.
func (g GEMMShape) MACs() int64 {
	return int64(g.M) * int64(g.K) * int64(g.N)
}

// Valid reports whether all dimensions are positive.
func (g GEMMShape) Valid() bool { return g.M > 0 && g.K > 0 && g.N > 0 }

func (g GEMMShape) String() string {
	return fmt.Sprintf("(%dx%d)x(%dx%d)", g.M, g.K, g.K, g.N)
}

// Layer describes a single DAG node. Only the fields relevant to a layer's
// Kind are meaningful; constructors below populate them consistently.
type Layer struct {
	Name string
	Kind Kind

	// Spatial layers (Conv, DWConv, Pool).
	InH, InW, InC           int
	KH, KW, Stride, Padding int
	OutC                    int

	// FC layers.
	InF, OutF int

	// LSTM layers.
	Hidden, InDim int

	// FusedAct marks that an activation function is fused into this
	// layer's epilogue via VECTOR_OP (Section IV-B), adding vector-unit
	// work but no standalone layer.
	FusedAct bool
}

// NewConv builds a convolution layer with a fused activation.
func NewConv(name string, inH, inW, inC, outC, k, stride, pad int) Layer {
	return Layer{
		Name: name, Kind: Conv,
		InH: inH, InW: inW, InC: inC, OutC: outC,
		KH: k, KW: k, Stride: stride, Padding: pad,
		FusedAct: true,
	}
}

// NewDWConv builds a depthwise convolution (OutC == InC) with fused
// activation.
func NewDWConv(name string, inH, inW, c, k, stride, pad int) Layer {
	return Layer{
		Name: name, Kind: DWConv,
		InH: inH, InW: inW, InC: c, OutC: c,
		KH: k, KW: k, Stride: stride, Padding: pad,
		FusedAct: true,
	}
}

// NewFC builds a fully-connected layer.
func NewFC(name string, inF, outF int, fusedAct bool) Layer {
	return Layer{Name: name, Kind: FC, InF: inF, OutF: outF, FusedAct: fusedAct}
}

// NewPool builds a pooling layer.
func NewPool(name string, inH, inW, c, k, stride, pad int) Layer {
	return Layer{
		Name: name, Kind: Pool,
		InH: inH, InW: inW, InC: c, OutC: c,
		KH: k, KW: k, Stride: stride, Padding: pad,
	}
}

// NewLSTM builds one unrolled LSTM cell-step with the given hidden size and
// input dimension.
func NewLSTM(name string, hidden, inDim int) Layer {
	return Layer{Name: name, Kind: LSTM, Hidden: hidden, InDim: inDim, FusedAct: true}
}

// OutH returns the output height of a spatial layer.
func (l Layer) OutH() int { return spatialOut(l.InH, l.KH, l.Stride, l.Padding) }

// OutW returns the output width of a spatial layer.
func (l Layer) OutW() int { return spatialOut(l.InW, l.KW, l.Stride, l.Padding) }

func spatialOut(in, k, stride, pad int) int {
	if stride <= 0 {
		return 0
	}
	out := (in+2*pad-k)/stride + 1
	if out < 0 {
		return 0
	}
	return out
}

// GEMM returns the matrix-multiplication shape the layer lowers to for the
// given batch size. Layers that execute on the vector unit (DWConv, Pool,
// Act) return ok == false.
func (l Layer) GEMM(batch int) (g GEMMShape, ok bool) {
	switch l.Kind {
	case Conv:
		return GEMMShape{
			M: l.OutC,
			K: l.InC * l.KH * l.KW,
			N: l.OutH() * l.OutW() * batch,
		}, true
	case FC:
		return GEMMShape{M: l.OutF, K: l.InF, N: batch}, true
	case LSTM:
		return GEMMShape{M: 4 * l.Hidden, K: l.InDim + l.Hidden, N: batch}, true
	default:
		return GEMMShape{}, false
	}
}

// MACs returns the multiply-accumulate count for the layer at the given
// batch size. Pool and Act layers count one op per element processed.
func (l Layer) MACs(batch int) int64 {
	if g, ok := l.GEMM(batch); ok {
		return g.MACs()
	}
	switch l.Kind {
	case DWConv:
		return int64(l.OutC) * int64(l.OutH()) * int64(l.OutW()) *
			int64(l.KH) * int64(l.KW) * int64(batch)
	case Pool:
		return int64(l.OutC) * int64(l.OutH()) * int64(l.OutW()) *
			int64(l.KH) * int64(l.KW) * int64(batch)
	case Act:
		return l.OutputElems(batch)
	default:
		return 0
	}
}

// OutputElems returns the number of output-activation elements the layer
// produces for the given batch size. This is the state that CHECKPOINT
// must preserve while the layer is in flight (Section IV-B).
func (l Layer) OutputElems(batch int) int64 {
	switch l.Kind {
	case Conv, DWConv, Pool:
		return int64(l.OutC) * int64(l.OutH()) * int64(l.OutW()) * int64(batch)
	case FC:
		return int64(l.OutF) * int64(batch)
	case LSTM:
		// Both the hidden and the cell state are live output state.
		return 2 * int64(l.Hidden) * int64(batch)
	case Act:
		// In-place operation (Section IV-B): output occupies the
		// input's storage, so the footprint is the input shape.
		return int64(l.InC) * int64(l.InH) * int64(l.InW) * int64(batch)
	default:
		return 0
	}
}

// InputElems returns the number of input-activation elements consumed.
func (l Layer) InputElems(batch int) int64 {
	switch l.Kind {
	case Conv, DWConv, Pool, Act:
		return int64(l.InC) * int64(l.InH) * int64(l.InW) * int64(batch)
	case FC:
		return int64(l.InF) * int64(batch)
	case LSTM:
		return int64(l.InDim+l.Hidden) * int64(batch)
	default:
		return 0
	}
}

// WeightElems returns the number of weight elements the layer owns. For
// inference these are immutable and never checkpointed (Section IV-B).
func (l Layer) WeightElems() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	case DWConv:
		return int64(l.InC) * int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.InF) * int64(l.OutF)
	case LSTM:
		return 4 * int64(l.Hidden) * int64(l.InDim+l.Hidden)
	default:
		return 0
	}
}

// Validate checks that the layer's shape fields are internally consistent.
func (l Layer) Validate() error {
	switch l.Kind {
	case Conv, DWConv, Pool:
		if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 || l.OutC <= 0 {
			return fmt.Errorf("dnn: layer %q: non-positive spatial dims", l.Name)
		}
		if l.KH <= 0 || l.KW <= 0 || l.Stride <= 0 || l.Padding < 0 {
			return fmt.Errorf("dnn: layer %q: bad kernel/stride/pad", l.Name)
		}
		if l.OutH() <= 0 || l.OutW() <= 0 {
			return fmt.Errorf("dnn: layer %q: kernel larger than padded input", l.Name)
		}
		if l.Kind == DWConv && l.InC != l.OutC {
			return fmt.Errorf("dnn: layer %q: depthwise requires InC == OutC", l.Name)
		}
	case FC:
		if l.InF <= 0 || l.OutF <= 0 {
			return fmt.Errorf("dnn: layer %q: non-positive FC dims", l.Name)
		}
	case LSTM:
		if l.Hidden <= 0 || l.InDim <= 0 {
			return fmt.Errorf("dnn: layer %q: non-positive LSTM dims", l.Name)
		}
	case Act:
		if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 {
			return fmt.Errorf("dnn: layer %q: non-positive activation dims", l.Name)
		}
	default:
		return fmt.Errorf("dnn: layer %q: unknown kind %d", l.Name, int(l.Kind))
	}
	return nil
}

// ElemBytes is the storage size of one activation or weight element. The
// baseline NPU computes in 16-bit (Table I / Section II-B).
const ElemBytes = 2

// Bytes converts an element count to bytes at the NPU's 16-bit precision.
func Bytes(elems int64) int64 { return elems * ElemBytes }

// ceilDiv is re-exported for internal users via stats; kept here to make
// the dependency explicit at compile time.
var _ = stats.CeilDiv
