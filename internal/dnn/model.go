package dnn

import (
	"fmt"
)

// Class distinguishes the two model families of the benchmark suite.
type Class int

const (
	// CNN models have a static DAG: the number of nodes to execute is
	// known at compile time (Section V-B).
	CNN Class = iota
	// RNN models unroll their recurrent layers to an input-dependent
	// sequence length, which PREMA predicts with the profile-driven
	// regression model (Figures 8-9).
	RNN
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CNN:
		return "CNN"
	case RNN:
		return "RNN"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// UnrollFunc materialises an RNN model's layer list for a concrete input
// and (sampled or predicted) output sequence length.
type UnrollFunc func(inLen, outLen int) []Layer

// Model is one inference workload in the zoo: either a static CNN layer
// list, or an RNN described by an unroll function plus a sequence-length
// profile name resolved by package seqlen.
type Model struct {
	// Name is the paper's workload label, e.g. "CNN-VN" or "RNN-MT1".
	Name string
	// Class is CNN or RNN.
	Class Class

	// Static holds the layer list for CNN models.
	Static []Layer

	// Unroll produces the layer list for RNN models.
	Unroll UnrollFunc
	// SeqProfile names the seq2seq length-characterization profile
	// (Figure 9) used to sample actual output lengths and to build the
	// regression lookup table. Empty for CNNs.
	SeqProfile string
	// MinInLen and MaxInLen bound the profiled input sequence lengths.
	MinInLen, MaxInLen int
}

// IsRNN reports whether the model unrolls dynamically.
func (m *Model) IsRNN() bool { return m.Class == RNN }

// LayersFor returns the concrete layer list for this model. CNNs ignore
// the sequence lengths; RNNs unroll with them.
func (m *Model) LayersFor(inLen, outLen int) []Layer {
	if m.Class == CNN {
		return m.Static
	}
	return m.Unroll(inLen, outLen)
}

// Validate checks the model definition: a CNN must have static layers and
// every layer must be self-consistent; an RNN must have an unroll function
// and valid length bounds.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dnn: model without a name")
	}
	switch m.Class {
	case CNN:
		if len(m.Static) == 0 {
			return fmt.Errorf("dnn: CNN model %q has no layers", m.Name)
		}
		for _, l := range m.Static {
			if err := l.Validate(); err != nil {
				return fmt.Errorf("model %q: %w", m.Name, err)
			}
		}
	case RNN:
		if m.Unroll == nil {
			return fmt.Errorf("dnn: RNN model %q has no unroll function", m.Name)
		}
		if m.MinInLen <= 0 || m.MaxInLen < m.MinInLen {
			return fmt.Errorf("dnn: RNN model %q has bad input-length bounds [%d,%d]",
				m.Name, m.MinInLen, m.MaxInLen)
		}
		if m.SeqProfile == "" {
			return fmt.Errorf("dnn: RNN model %q has no sequence profile", m.Name)
		}
		// Unroll a representative instance and validate it.
		for _, l := range m.Unroll(m.MinInLen, m.MinInLen) {
			if err := l.Validate(); err != nil {
				return fmt.Errorf("model %q: %w", m.Name, err)
			}
		}
	default:
		return fmt.Errorf("dnn: model %q has unknown class %d", m.Name, int(m.Class))
	}
	return nil
}

// TotalMACs sums layer MACs for a concrete instantiation.
func (m *Model) TotalMACs(batch, inLen, outLen int) int64 {
	var total int64
	for _, l := range m.LayersFor(inLen, outLen) {
		total += l.MACs(batch)
	}
	return total
}

// TotalWeightBytes sums the (deduplicated, for RNNs) weight footprint of
// the model. RNN cell weights are shared across timesteps, so unrolled
// duplicates of the same named layer are counted once.
func (m *Model) TotalWeightBytes(inLen, outLen int) int64 {
	seen := make(map[string]bool)
	var total int64
	for _, l := range m.LayersFor(inLen, outLen) {
		if seen[l.Name] {
			continue
		}
		seen[l.Name] = true
		total += Bytes(l.WeightElems())
	}
	return total
}

// MaxOutputBytes returns the largest single-layer output-activation
// footprint of the instantiated model — an upper bound on checkpointed
// live state for one in-flight layer.
func (m *Model) MaxOutputBytes(batch, inLen, outLen int) int64 {
	var max int64
	for _, l := range m.LayersFor(inLen, outLen) {
		if b := Bytes(l.OutputElems(batch)); b > max {
			max = b
		}
	}
	return max
}
