// Package profile synthesizes the profiled-latency corpora of the
// paper's determinism characterization (Section V-B items 1-2): measured
// per-layer-configuration latencies on off-the-shelf GPUs (within 4% of
// the mean across 1000 runs) and on Google Cloud TPUv2 (0.2% standard
// deviation across 100 configurations).
//
// The real measurements are unavailable, so this package generates
// corpora with the same variance structure around a device-specific
// deterministic base latency; the predictor-validation experiments only
// consume the variance bounds, which is precisely the property the
// paper's argument rests on.
package profile

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnn"
	"repro/internal/stats"
)

// Device is one profiled accelerator.
type Device struct {
	// Name labels the device ("V100", "TitanXp", "TitanV", "GTX1070",
	// "CloudTPUv2").
	Name string
	// PeakMACsPerSec scales the deterministic base latency.
	PeakMACsPerSec float64
	// Efficiency is the sustained fraction of peak for dense layers.
	Efficiency float64
	// Jitter is the run-to-run relative standard deviation (GPUs:
	// about 1.3% so 1000-run samples stay within ~4% of the mean;
	// TPUv2: 0.2%).
	Jitter float64
}

// Devices returns the profiled-device set of Section V-B.
func Devices() []Device {
	return []Device{
		{Name: "V100", PeakMACsPerSec: 62e12, Efficiency: 0.55, Jitter: 0.013},
		{Name: "TitanXp", PeakMACsPerSec: 12e12, Efficiency: 0.50, Jitter: 0.013},
		{Name: "TitanV", PeakMACsPerSec: 55e12, Efficiency: 0.52, Jitter: 0.013},
		{Name: "GTX1070", PeakMACsPerSec: 6.5e12, Efficiency: 0.48, Jitter: 0.013},
		{Name: "CloudTPUv2", PeakMACsPerSec: 22.5e12, Efficiency: 0.60, Jitter: 0.002},
	}
}

// DeviceByName looks up a profiled device.
func DeviceByName(name string) (Device, error) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("profile: unknown device %q", name)
}

// BaseLatency returns the device's deterministic latency for one layer at
// the given batch size, in seconds.
func (d Device) BaseLatency(l dnn.Layer, batch int) float64 {
	macs := float64(l.MACs(batch))
	lat := macs / (d.PeakMACsPerSec * d.Efficiency)
	const kernelLaunch = 5e-6 // fixed per-kernel overhead
	return lat + kernelLaunch
}

// Measure simulates n profiled runs of one layer and returns the samples
// in seconds: the deterministic base perturbed by the device's jitter
// (GPU DNN kernels are not input-data dependent, so there is no branch or
// memory divergence to widen the distribution).
func (d Device) Measure(l dnn.Layer, batch, n int, rng *rand.Rand) []float64 {
	base := d.BaseLatency(l, batch)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base * (1 + rng.NormFloat64()*d.Jitter)
	}
	return xs
}

// Variation summarizes a profiled sample: its mean and the maximum
// relative deviation of any sample from that mean.
type Variation struct {
	MeanSeconds float64
	MaxDevFrac  float64
	StdDevFrac  float64
}

// Characterize profiles one layer n times and summarizes the variation.
func (d Device) Characterize(l dnn.Layer, batch, n int, rng *rand.Rand) Variation {
	xs := d.Measure(l, batch, n, rng)
	mean := stats.Mean(xs)
	v := Variation{MeanSeconds: mean}
	for _, x := range xs {
		dev := x - mean
		if dev < 0 {
			dev = -dev
		}
		if f := dev / mean; f > v.MaxDevFrac {
			v.MaxDevFrac = f
		}
	}
	v.StdDevFrac = stats.StdDev(xs) / mean
	return v
}

// LayerConfigs returns a spread of layer types and configurations for
// the characterization sweep (the paper profiles 50 GPU configurations
// and 100 TPUv2 configurations); n controls how many are generated.
func LayerConfigs(n int) []dnn.Layer {
	var out []dnn.Layer
	channels := []int{32, 64, 128, 256, 512}
	sizes := []int{7, 14, 28, 56, 112}
	kernels := []int{1, 3, 5}
	i := 0
	for _, c := range channels {
		for _, s := range sizes {
			for _, k := range kernels {
				if k > s {
					continue
				}
				out = append(out, dnn.NewConv(
					fmt.Sprintf("conv%dx%d_c%d_s%d", k, k, c, s), s, s, c, c, k, 1, k/2))
				i++
				if i >= n {
					return out
				}
			}
		}
	}
	for _, inF := range []int{512, 1024, 4096, 9216} {
		for _, outF := range []int{1000, 4096} {
			out = append(out, dnn.NewFC(fmt.Sprintf("fc_%dx%d", inF, outF), inF, outF, false))
			i++
			if i >= n {
				return out
			}
		}
	}
	return out
}
