package profile

import (
	"testing"

	"repro/internal/stats"
)

func TestDevicesRoster(t *testing.T) {
	devs := Devices()
	if len(devs) != 5 {
		t.Fatalf("%d devices, want 5 (four GPUs + Cloud TPUv2, Section V-B)", len(devs))
	}
	if _, err := DeviceByName("V100"); err != nil {
		t.Error("V100 missing")
	}
	if _, err := DeviceByName("CloudTPUv2"); err != nil {
		t.Error("CloudTPUv2 missing")
	}
	if _, err := DeviceByName("H100"); err == nil {
		t.Error("unknown device should error")
	}
	tpu, _ := DeviceByName("CloudTPUv2")
	v100, _ := DeviceByName("V100")
	if tpu.Jitter >= v100.Jitter {
		t.Error("TPUv2 must be steadier than the GPUs (0.2% vs ~4% bound)")
	}
}

func TestBaseLatencyDeterministicAndOrdered(t *testing.T) {
	layers := LayerConfigs(10)
	v100, _ := DeviceByName("V100")
	gtx, _ := DeviceByName("GTX1070")
	for _, l := range layers {
		a := v100.BaseLatency(l, 1)
		b := v100.BaseLatency(l, 1)
		if a != b {
			t.Fatal("base latency not deterministic")
		}
		if v100.BaseLatency(l, 1) >= gtx.BaseLatency(l, 1) {
			t.Errorf("V100 should be faster than GTX1070 on %s", l.Name)
		}
	}
}

func TestGPUVariationWithinPaperBound(t *testing.T) {
	// Section V-B(1): across 1000 runs, GPU latency always falls within
	// ~4% of the average.
	layers := LayerConfigs(50)
	if len(layers) < 20 {
		t.Fatalf("only %d layer configs generated", len(layers))
	}
	v100, _ := DeviceByName("V100")
	rng := stats.NewRNG(1, 2)
	for _, l := range layers {
		v := v100.Characterize(l, 1, 1000, rng)
		if v.MaxDevFrac > 0.08 {
			t.Errorf("%s: max deviation %.1f%% too wide", l.Name, v.MaxDevFrac*100)
		}
		if v.StdDevFrac <= 0 {
			t.Errorf("%s: zero variance is not a measurement", l.Name)
		}
	}
}

func TestTPUVariationTighter(t *testing.T) {
	// Section V-B(2): TPUv2 shows ~0.2% standard deviation.
	tpu, _ := DeviceByName("CloudTPUv2")
	rng := stats.NewRNG(3, 4)
	layers := LayerConfigs(100)
	var sum float64
	for _, l := range layers {
		sum += tpu.Characterize(l, 1, 200, rng).StdDevFrac
	}
	avg := sum / float64(len(layers))
	if avg > 0.004 {
		t.Errorf("TPUv2 average stddev %.2f%% above the 0.2%% regime", avg*100)
	}
}

func TestLayerConfigsCount(t *testing.T) {
	if got := len(LayerConfigs(25)); got != 25 {
		t.Errorf("LayerConfigs(25) returned %d", got)
	}
	for _, l := range LayerConfigs(30) {
		if err := l.Validate(); err != nil {
			t.Errorf("generated layer invalid: %v", err)
		}
	}
}
