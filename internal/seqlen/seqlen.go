// Package seqlen implements PREMA's sequence-length prediction substrate
// (Section V-B, Figures 8-9): profile-driven characterization of the
// relationship between an RNN's statically-known input sequence length and
// its input-dependent, dynamically-determined unrolled output length.
//
// The paper builds its characterization graphs by running 1500 inference
// tests per application through Google Translate / a speech API. Those
// corpora are proprietary, so this package synthesizes corpora with the
// same per-language shape: a strong central correlation (narrow 25-75%
// interquartile band) with occasional outliers. The regression model is
// then built exactly as the paper describes — a software lookup table
// indexed by input length returning the geometric mean of the profiled
// output lengths — and actual task instances sample their true unrolled
// length from the same profile, as in Section VI's evaluation methodology.
package seqlen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/stats"
)

// LanguagePair describes the shape of one characterization profile: a
// central output/input ratio, a multiplicative spread for the bulk of the
// distribution, and a small probability of far outliers (e.g. idiomatic
// translations), mirroring the min-max whiskers of Figure 9.
type LanguagePair struct {
	// Name identifies the profile ("mt-de", "mt-ko", "mt-zh", "asr",
	// "sa").
	Name string
	// Ratio is the central output/input length ratio.
	Ratio float64
	// Spread is the relative standard deviation of the bulk
	// distribution (lognormal sigma).
	Spread float64
	// OutlierProb is the probability that a sample lands far outside
	// the interquartile band.
	OutlierProb float64
	// OutlierScale multiplies/divides the central value for outliers.
	OutlierScale float64
	// MinIn and MaxIn bound the profiled input lengths.
	MinIn, MaxIn int
	// Linear marks applications whose output length is statically
	// determined by the input length (Figure 8(b)): sentiment
	// analysis, language models. These need no regression at all.
	Linear bool
}

// Profiles returns the built-in characterization shapes for the benchmark
// suite, calibrated to the axes of Figure 9:
//
//	mt-de: output ~ 1.05x input (5..50 -> up to ~75 with outliers)
//	mt-ko: output ~ 0.75x input (agglutinative; 5..50 -> up to ~50)
//	mt-zh: output ~ 5.5x input (character-level; 5..50 -> up to ~350)
//	asr:   output ~ 0.4x input (audio frames -> text tokens; 20..100)
//	sa:    output == input (linear, Figure 8(b))
func Profiles() map[string]LanguagePair {
	return map[string]LanguagePair{
		"mt-de": {Name: "mt-de", Ratio: 1.05, Spread: 0.08, OutlierProb: 0.02, OutlierScale: 1.6, MinIn: 5, MaxIn: 50},
		"mt-ko": {Name: "mt-ko", Ratio: 0.75, Spread: 0.12, OutlierProb: 0.02, OutlierScale: 1.6, MinIn: 5, MaxIn: 50},
		"mt-zh": {Name: "mt-zh", Ratio: 5.5, Spread: 0.08, OutlierProb: 0.02, OutlierScale: 1.5, MinIn: 5, MaxIn: 50},
		"asr":   {Name: "asr", Ratio: 0.40, Spread: 0.12, OutlierProb: 0.02, OutlierScale: 1.5, MinIn: 20, MaxIn: 100},
		"sa":    {Name: "sa", Ratio: 1.0, MinIn: 5, MaxIn: 50, Linear: true},
	}
}

// Sample is one profiled (input length, output length) observation.
type Sample struct {
	InLen, OutLen int
}

// Corpus is a profiled characterization dataset for one application — the
// synthetic stand-in for the paper's 1500 Google-Translate/LibriSpeech
// test sentences.
type Corpus struct {
	Pair    LanguagePair
	Samples []Sample
	byIn    map[int][]int
}

// BuildCorpus draws n profiled observations from the pair's shape using
// the given RNG.
func BuildCorpus(pair LanguagePair, n int, rng *rand.Rand) *Corpus {
	c := &Corpus{Pair: pair, byIn: make(map[int][]int)}
	for i := 0; i < n; i++ {
		in := pair.MinIn + rng.IntN(pair.MaxIn-pair.MinIn+1)
		out := pair.sampleOut(in, rng)
		c.Samples = append(c.Samples, Sample{InLen: in, OutLen: out})
		c.byIn[in] = append(c.byIn[in], out)
	}
	return c
}

// sampleOut draws one output length for the given input length.
func (p LanguagePair) sampleOut(inLen int, rng *rand.Rand) int {
	if p.Linear {
		return inLen
	}
	center := p.Ratio * float64(inLen)
	out := center * math.Exp(rng.NormFloat64()*p.Spread)
	if rng.Float64() < p.OutlierProb {
		if rng.Float64() < 0.5 {
			out = center * p.OutlierScale
		} else {
			out = center / p.OutlierScale
		}
	}
	o := int(math.Round(out))
	if o < 1 {
		o = 1
	}
	return o
}

// OutLengthsFor returns the profiled output lengths observed for one input
// length (possibly empty).
func (c *Corpus) OutLengthsFor(inLen int) []int {
	return c.byIn[inLen]
}

// SummaryFor returns the boxplot summary of output lengths for one input
// length — one x-position of Figure 9.
func (c *Corpus) SummaryFor(inLen int) stats.Summary {
	outs := c.byIn[inLen]
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = float64(o)
	}
	return stats.Summarize(xs)
}

// Regression is the profile-driven lookup table of Section V-B: indexed by
// input sequence length (statically known before inference begins) and
// returning the geometric mean of the profiled unrolled lengths. Missing
// input lengths fall back to the nearest profiled neighbor.
type Regression struct {
	pair   LanguagePair
	table  map[int]int
	inLens []int // sorted profiled input lengths
}

// BuildRegression fits the lookup table from a corpus.
func BuildRegression(c *Corpus) (*Regression, error) {
	r := &Regression{pair: c.Pair, table: make(map[int]int)}
	if c.Pair.Linear {
		return r, nil
	}
	for in, outs := range c.byIn {
		xs := make([]float64, len(outs))
		for i, o := range outs {
			xs[i] = float64(o)
		}
		gm, err := stats.GeoMean(xs)
		if err != nil {
			return nil, fmt.Errorf("seqlen: profile %q input %d: %w", c.Pair.Name, in, err)
		}
		r.table[in] = int(math.Round(gm))
		r.inLens = append(r.inLens, in)
	}
	if len(r.inLens) == 0 {
		return nil, fmt.Errorf("seqlen: empty corpus for profile %q", c.Pair.Name)
	}
	sort.Ints(r.inLens)
	return r, nil
}

// Predict returns the estimated unrolled output length for an input
// length. Linear applications return the input length itself
// (Figure 8(b)); others consult the geomean lookup table, snapping to the
// nearest profiled input length when the exact one was never observed.
func (r *Regression) Predict(inLen int) int {
	if r.pair.Linear {
		return inLen
	}
	if out, ok := r.table[inLen]; ok {
		return out
	}
	// Nearest profiled neighbor.
	i := sort.SearchInts(r.inLens, inLen)
	switch {
	case i == 0:
		return r.table[r.inLens[0]]
	case i >= len(r.inLens):
		return r.table[r.inLens[len(r.inLens)-1]]
	default:
		lo, hi := r.inLens[i-1], r.inLens[i]
		if inLen-lo <= hi-inLen {
			return r.table[lo]
		}
		return r.table[hi]
	}
}

// Predictor bundles a corpus and its regression for one profile.
type Predictor struct {
	Corpus     *Corpus
	Regression *Regression
}

// Library holds the per-profile predictors the scheduler consults and the
// samplers the workload generator uses.
type Library struct {
	predictors map[string]*Predictor
	rng        *rand.Rand
}

// DefaultCorpusSize matches the paper's 1500 profiled sentences per
// application.
const DefaultCorpusSize = 1500

// NewLibrary builds corpora and regressions for every built-in profile
// with deterministic seeding.
func NewLibrary(seed uint64) (*Library, error) {
	lib := &Library{
		predictors: make(map[string]*Predictor),
		rng:        stats.NewRNG(seed, 0x5e925e9),
	}
	for name, pair := range Profiles() {
		corpus := BuildCorpus(pair, DefaultCorpusSize, stats.NewRNG(seed, hashName(name)))
		reg, err := BuildRegression(corpus)
		if err != nil {
			return nil, err
		}
		lib.predictors[name] = &Predictor{Corpus: corpus, Regression: reg}
	}
	return lib, nil
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Predictor returns the predictor for a profile name.
func (l *Library) Predictor(profile string) (*Predictor, error) {
	p, ok := l.predictors[profile]
	if !ok {
		return nil, fmt.Errorf("seqlen: unknown profile %q", profile)
	}
	return p, nil
}

// SampleInstance draws one task instance for an RNN profile: a random
// profiled input length and an actual unrolled output length drawn from
// the outputs observed for that input length (Section VI's methodology),
// together with the regression's predicted length.
func (l *Library) SampleInstance(profile string, rng *rand.Rand) (inLen, actualOut, predictedOut int, err error) {
	p, err := l.Predictor(profile)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(p.Corpus.Samples) == 0 {
		return 0, 0, 0, fmt.Errorf("seqlen: empty corpus for %q", profile)
	}
	s := p.Corpus.Samples[rng.IntN(len(p.Corpus.Samples))]
	inLen = s.InLen
	candidates := p.Corpus.OutLengthsFor(inLen)
	actualOut = candidates[rng.IntN(len(candidates))]
	predictedOut = p.Regression.Predict(inLen)
	return inLen, actualOut, predictedOut, nil
}
