package seqlen

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestProfilesCoverSuite(t *testing.T) {
	profs := Profiles()
	for _, want := range []string{"mt-de", "mt-ko", "mt-zh", "asr", "sa"} {
		p, ok := profs[want]
		if !ok {
			t.Fatalf("missing profile %s", want)
		}
		if p.MinIn <= 0 || p.MaxIn < p.MinIn {
			t.Errorf("%s: bad input bounds [%d,%d]", want, p.MinIn, p.MaxIn)
		}
		if !p.Linear && p.Ratio <= 0 {
			t.Errorf("%s: non-positive ratio", want)
		}
	}
	if !profs["sa"].Linear {
		t.Error("sentiment analysis must be the linear profile (Figure 8(b))")
	}
	// Figure 9's per-language shapes: German near 1:1, Korean below,
	// Chinese characters far above, ASR compressive.
	if !(profs["mt-zh"].Ratio > 3 && profs["mt-ko"].Ratio < 1 && profs["asr"].Ratio < 1) {
		t.Error("profile ratios do not match Figure 9's qualitative shape")
	}
}

func TestCorpusShape(t *testing.T) {
	rng := stats.NewRNG(1, 2)
	pair := Profiles()["mt-de"]
	c := BuildCorpus(pair, 1500, rng)
	if len(c.Samples) != 1500 {
		t.Fatalf("corpus size %d", len(c.Samples))
	}
	for _, s := range c.Samples {
		if s.InLen < pair.MinIn || s.InLen > pair.MaxIn {
			t.Fatalf("input length %d outside profile bounds", s.InLen)
		}
		if s.OutLen < 1 {
			t.Fatalf("non-positive output length")
		}
	}
	// Interquartile range should be narrow relative to the median
	// (Figure 9's central claim).
	sum := c.SummaryFor(c.Samples[0].InLen)
	if sum.N > 10 && sum.IQR() > sum.Median*0.5 {
		t.Errorf("IQR %0.f too wide vs median %.0f", sum.IQR(), sum.Median)
	}
}

func TestLinearProfileSampling(t *testing.T) {
	rng := stats.NewRNG(3, 4)
	c := BuildCorpus(Profiles()["sa"], 200, rng)
	for _, s := range c.Samples {
		if s.OutLen != s.InLen {
			t.Fatalf("linear profile produced out %d for in %d", s.OutLen, s.InLen)
		}
	}
	r, err := BuildRegression(c)
	if err != nil {
		t.Fatal(err)
	}
	for in := 1; in <= 60; in++ {
		if r.Predict(in) != in {
			t.Fatalf("linear regression Predict(%d) = %d", in, r.Predict(in))
		}
	}
}

func TestRegressionGeomeanAndFallback(t *testing.T) {
	pair := LanguagePair{Name: "x", Ratio: 2, Spread: 0, MinIn: 10, MaxIn: 10}
	c := BuildCorpus(pair, 50, stats.NewRNG(5, 6))
	r, err := BuildRegression(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(10); got != 20 {
		t.Errorf("Predict(10) = %d, want 20 (zero-spread ratio 2)", got)
	}
	// Unprofiled input lengths snap to the nearest profiled neighbor.
	if got := r.Predict(3); got != 20 {
		t.Errorf("Predict(below range) = %d, want nearest profiled 20", got)
	}
	if got := r.Predict(99); got != 20 {
		t.Errorf("Predict(above range) = %d, want nearest profiled 20", got)
	}
}

func TestRegressionNearestNeighborChoice(t *testing.T) {
	// Hand-build a corpus with two input lengths, distinct outputs.
	pair := LanguagePair{Name: "n", Ratio: 1, MinIn: 1, MaxIn: 100}
	c := &Corpus{Pair: pair, byIn: map[int][]int{
		10: {30, 30, 30},
		20: {80, 80, 80},
	}}
	c.Samples = []Sample{{10, 30}, {20, 80}}
	r, err := BuildRegression(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(12); got != 30 {
		t.Errorf("Predict(12) = %d, want 30 (closer to 10)", got)
	}
	if got := r.Predict(19); got != 80 {
		t.Errorf("Predict(19) = %d, want 80 (closer to 20)", got)
	}
}

func TestBuildRegressionEmptyCorpus(t *testing.T) {
	pair := LanguagePair{Name: "e", Ratio: 1, MinIn: 1, MaxIn: 5}
	c := &Corpus{Pair: pair, byIn: map[int][]int{}}
	if _, err := BuildRegression(c); err == nil {
		t.Error("empty corpus should fail regression build")
	}
}

func TestLibrary(t *testing.T) {
	lib, err := NewLibrary(42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Predictor("nope"); err == nil {
		t.Error("unknown profile should error")
	}
	rng := stats.NewRNG(7, 8)
	for profile := range Profiles() {
		in, actual, predicted, err := lib.SampleInstance(profile, rng)
		if err != nil {
			t.Fatal(err)
		}
		if in <= 0 || actual <= 0 || predicted <= 0 {
			t.Errorf("%s: non-positive sample (%d,%d,%d)", profile, in, actual, predicted)
		}
		p, _ := lib.Predictor(profile)
		// The actual length must come from the profiled set for that
		// input length (Section VI methodology).
		found := false
		for _, o := range p.Corpus.OutLengthsFor(in) {
			if o == actual {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: sampled actual %d not in profiled outputs for in=%d", profile, actual, in)
		}
	}
}

func TestLibraryDeterministicAcrossConstruction(t *testing.T) {
	a, err := NewLibrary(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLibrary(99)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predictor("mt-zh")
	pb, _ := b.Predictor("mt-zh")
	if len(pa.Corpus.Samples) != len(pb.Corpus.Samples) {
		t.Fatal("corpora sizes differ")
	}
	for i := range pa.Corpus.Samples {
		if pa.Corpus.Samples[i] != pb.Corpus.Samples[i] {
			t.Fatal("same-seed libraries built different corpora")
		}
	}
}

// Property: predictions are positive, roughly proportional to input
// length, and within the whiskers of the profiled distribution.
func TestPredictionWithinProfiledRangeProperty(t *testing.T) {
	lib, err := NewLibrary(1234)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := lib.Predictor("mt-de")
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed, 1)
		in, _, predicted, err := lib.SampleInstance("mt-de", rng)
		if err != nil {
			return false
		}
		outs := p.Corpus.OutLengthsFor(in)
		lo, hi := outs[0], outs[0]
		for _, o := range outs {
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		return predicted >= lo && predicted <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
