// Package predictor implements PREMA's inference-time prediction model
// (Section V-B). The primary predictor is the architecture-aware analytic
// model of Algorithm 1, which exploits the NPU's deterministic
// weight-stationary dataflow to estimate each layer's execution time from
// its GEMM shape, and composes node-level estimates into a network-wide
// latency using the (predicted, for RNNs) number of unrolled nodes.
//
// Three alternatives are provided for ablation:
//
//   - Profile: the paper's initial proposal — bookkept average per-layer
//     latencies from profiled runs (Section V-B's GPU/TPUv2 approach).
//   - Oracle: the exact simulated execution time (Section VI-D).
//   - MACProxy: a deliberately naive estimate proportional to MAC count,
//     which Figure 10 shows to be misleading because it ignores how the
//     layer maps onto the array.
package predictor

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/seqlen"
)

// Analytic is the Algorithm 1 predictor for a systolic-array NPU.
type Analytic struct {
	cfg npu.Config
	lib *seqlen.Library
}

// NewAnalytic builds the analytic predictor. lib supplies the
// profile-driven unrolled-length regression for RNNs and may be nil when
// only CNNs will be predicted.
func NewAnalytic(cfg npu.Config, lib *seqlen.Library) (*Analytic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analytic{cfg: cfg, lib: lib}, nil
}

// LayerCycles estimates one GEMM layer's execution time per Algorithm 1:
// the inner tiles cost max(C1, M1) where C1 = ACC + SH + 2*SW and M1 is
// the double-buffered tile fetch, and the residual outer tiles cost
// max(C2, M2) with the residue columns.
func (a *Analytic) LayerCycles(g dnn.GEMMShape) int64 {
	if !g.Valid() {
		return 0
	}
	cfg := a.cfg
	mTiles := ceil(g.M, cfg.SW)
	kTiles := ceil(g.K, cfg.SH)
	nInner := g.N / cfg.ACC
	outerN := g.N % cfg.ACC

	inner := compiler.TileTime(cfg, cfg.SH, cfg.ACC)
	var total int64
	total += int64(mTiles) * int64(kTiles) * int64(nInner) * inner
	if outerN > 0 {
		outer := compiler.TileTime(cfg, cfg.SH, outerN)
		total += int64(mTiles) * int64(kTiles) * outer
	}
	return total
}

// VectorCycles estimates a vector-unit layer (depthwise convolution,
// pooling, standalone activation): element throughput bound by the lanes
// or by memory. This extends Algorithm 1 — which covers only GEMM nodes —
// so that MobileNet's depthwise stages are predictable too.
func (a *Analytic) VectorCycles(l dnn.Layer, batch int) int64 {
	cfg := a.cfg
	compute := (l.MACs(batch) + int64(cfg.VectorLanes) - 1) / int64(cfg.VectorLanes)
	mem := cfg.MemCycles(dnn.Bytes(l.InputElems(batch)) + dnn.Bytes(l.WeightElems()))
	if mem > compute {
		return mem
	}
	return compute
}

// EstimateLayers runs Algorithm 1 over an explicit layer list.
func (a *Analytic) EstimateLayers(layers []dnn.Layer, batch int) int64 {
	var total int64
	for _, l := range layers {
		if g, ok := l.GEMM(batch); ok {
			total += a.LayerCycles(g)
			continue
		}
		total += a.VectorCycles(l, batch)
	}
	return total
}

// Estimate predicts the network-wide inference cycles for a model
// instance. CNNs use the static DAG; RNNs first predict the unrolled
// recurrence length from the statically-known input length via the
// profile-driven regression (Section V-B), then unroll and estimate.
func (a *Analytic) Estimate(m *dnn.Model, batch, inLen int) (int64, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("predictor: non-positive batch %d", batch)
	}
	if !m.IsRNN() {
		return a.EstimateLayers(m.Static, batch), nil
	}
	if a.lib == nil {
		return 0, fmt.Errorf("predictor: RNN model %q needs a seqlen library", m.Name)
	}
	p, err := a.lib.Predictor(m.SeqProfile)
	if err != nil {
		return 0, err
	}
	outLen := p.Regression.Predict(inLen)
	return a.EstimateLayers(m.LayersFor(inLen, outLen), batch), nil
}

// EstimateWithOutLen predicts using a known output length (used by tests
// and the oracle comparisons).
func (a *Analytic) EstimateWithOutLen(m *dnn.Model, batch, inLen, outLen int) int64 {
	return a.EstimateLayers(m.LayersFor(inLen, outLen), batch)
}

func ceil(x, d int) int { return (x + d - 1) / d }

// Profile is the bookkeeping predictor: it memoizes the true average
// per-layer latency (keyed by layer name and batch) from completed
// executions, the way the paper's initial proposal profiles GPUs/TPUs.
type Profile struct {
	cfg      npu.Config
	lib      *seqlen.Library
	fallback *Analytic
	table    map[string]profEntry
}

type profEntry struct {
	totalCycles int64
	count       int64
}

// NewProfile builds a profile predictor that falls back to the analytic
// model for layers it has never observed.
func NewProfile(cfg npu.Config, lib *seqlen.Library) (*Profile, error) {
	fb, err := NewAnalytic(cfg, lib)
	if err != nil {
		return nil, err
	}
	return &Profile{cfg: cfg, lib: lib, fallback: fb, table: make(map[string]profEntry)}, nil
}

func profKey(model, layer string, batch int) string {
	return fmt.Sprintf("%s/%s/b%d", model, layer, batch)
}

// Observe records a measured per-layer latency sample.
func (p *Profile) Observe(model, layer string, batch int, cycles int64) {
	k := profKey(model, layer, batch)
	e := p.table[k]
	e.totalCycles += cycles
	e.count++
	p.table[k] = e
}

// ObserveProgram ingests a compiled program's per-layer latencies as
// profiling ground truth (the "profile once, amortize over all future
// inferences" workflow of Section V-B).
func (p *Profile) ObserveProgram(m *dnn.Model, prog *npu.Program, layers []dnn.Layer) {
	perLayer := make([]int64, len(layers))
	for _, in := range prog.Instrs {
		perLayer[in.Layer] += int64(in.Cycles)
	}
	for i, l := range layers {
		p.Observe(m.Name, l.Name, prog.Batch, perLayer[i])
	}
}

// Estimate predicts network-wide cycles from profiled layer averages,
// falling back to the analytic model for unprofiled layers.
func (p *Profile) Estimate(m *dnn.Model, batch, inLen int) (int64, error) {
	outLen := 0
	if m.IsRNN() {
		lp, err := p.lib.Predictor(m.SeqProfile)
		if err != nil {
			return 0, err
		}
		outLen = lp.Regression.Predict(inLen)
	}
	var total int64
	for _, l := range m.LayersFor(inLen, outLen) {
		if e, ok := p.table[profKey(m.Name, l.Name, batch)]; ok && e.count > 0 {
			total += e.totalCycles / e.count
			continue
		}
		if g, ok := l.GEMM(batch); ok {
			total += p.fallback.LayerCycles(g)
		} else {
			total += p.fallback.VectorCycles(l, batch)
		}
	}
	return total, nil
}

// MACProxy estimates time as MACs divided by peak throughput — the naive
// proxy Figure 10 warns against, provided for the ablation benches.
type MACProxy struct {
	cfg npu.Config
	lib *seqlen.Library
}

// NewMACProxy builds the proxy predictor.
func NewMACProxy(cfg npu.Config, lib *seqlen.Library) *MACProxy {
	return &MACProxy{cfg: cfg, lib: lib}
}

// Estimate returns MACs / peak MACs-per-cycle for the instance.
func (mp *MACProxy) Estimate(m *dnn.Model, batch, inLen int) (int64, error) {
	outLen := 0
	if m.IsRNN() {
		lp, err := mp.lib.Predictor(m.SeqProfile)
		if err != nil {
			return 0, err
		}
		outLen = lp.Regression.Predict(inLen)
	}
	macs := m.TotalMACs(batch, inLen, outLen)
	perCycle := int64(mp.cfg.SW) * int64(mp.cfg.SH)
	return (macs + perCycle - 1) / perCycle, nil
}
