package predictor

import (
	"math"
	"testing"

	"repro/internal/compiler"
	"repro/internal/dnn"
	"repro/internal/npu"
	"repro/internal/seqlen"
	"repro/internal/stats"
)

func testFixtures(t *testing.T) (npu.Config, *seqlen.Library, *Analytic, *compiler.Compiler) {
	t.Helper()
	cfg := npu.DefaultConfig()
	lib, err := seqlen.NewLibrary(0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalytic(cfg, lib)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, lib, an, comp
}

func TestNewAnalyticRejectsBadConfig(t *testing.T) {
	cfg := npu.DefaultConfig()
	cfg.FreqHz = 0
	if _, err := NewAnalytic(cfg, nil); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestLayerCyclesMatchesAlgorithm1(t *testing.T) {
	cfg, _, an, _ := testFixtures(t)
	// One inner tile exactly: M=SW, K=SH, N=ACC.
	g := dnn.GEMMShape{M: cfg.SW, K: cfg.SH, N: cfg.ACC}
	want := compiler.TileTime(cfg, cfg.SH, cfg.ACC)
	if got := an.LayerCycles(g); got != want {
		t.Errorf("single inner tile = %d, want %d", got, want)
	}
	// Adding one residual column adds one outer tile.
	g.N = cfg.ACC + 1
	want += compiler.TileTime(cfg, cfg.SH, 1)
	if got := an.LayerCycles(g); got != want {
		t.Errorf("inner+outer = %d, want %d", got, want)
	}
	// Tile counts multiply across M and K.
	g = dnn.GEMMShape{M: 2 * cfg.SW, K: 3 * cfg.SH, N: cfg.ACC}
	want = 6 * compiler.TileTime(cfg, cfg.SH, cfg.ACC)
	if got := an.LayerCycles(g); got != want {
		t.Errorf("2x3 tiles = %d, want %d", got, want)
	}
	if an.LayerCycles(dnn.GEMMShape{}) != 0 {
		t.Error("invalid shape should cost nothing")
	}
}

func TestEstimateCloseToSimulatedForCNNs(t *testing.T) {
	cfg, _, an, comp := testFixtures(t)
	_ = cfg
	for _, name := range []string{"CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN"} {
		m, err := dnn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range dnn.BatchSizes {
			prog, err := comp.Compile(m, b, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			est, err := an.Estimate(m, b, 0)
			if err != nil {
				t.Fatal(err)
			}
			errFrac := math.Abs(float64(est)-float64(prog.TotalCycles)) / float64(prog.TotalCycles)
			// Section VI-A: ~1.6% average estimation error. CNNs have
			// no length uncertainty, so individual errors must stay
			// within a few percent.
			if errFrac > 0.05 {
				t.Errorf("%s b%d: prediction error %.1f%% (est %d vs sim %d)",
					name, b, errFrac*100, est, prog.TotalCycles)
			}
		}
	}
}

func TestEstimateRNNUsesRegression(t *testing.T) {
	_, lib, an, comp := testFixtures(t)
	m, err := dnn.ByName("RNN-MT1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := lib.Predictor(m.SeqProfile)
	if err != nil {
		t.Fatal(err)
	}
	inLen := 30
	predOut := p.Regression.Predict(inLen)
	est, err := an.Estimate(m, 1, inLen)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate must equal the unrolled estimate at the predicted
	// length.
	if est != an.EstimateWithOutLen(m, 1, inLen, predOut) {
		t.Error("Estimate should unroll with the regression's predicted length")
	}
	// And it should be within ~20% of the simulation at the true length
	// for a typical sample (lengths are correlated).
	prog, err := comp.Compile(m, 1, inLen, predOut)
	if err != nil {
		t.Fatal(err)
	}
	errFrac := math.Abs(float64(est)-float64(prog.TotalCycles)) / float64(prog.TotalCycles)
	if errFrac > 0.05 {
		t.Errorf("same-length estimate error %.1f%%", errFrac*100)
	}
}

func TestEstimateRNNWithoutLibraryFails(t *testing.T) {
	cfg := npu.DefaultConfig()
	an, err := NewAnalytic(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnn.ByName("RNN-SA")
	if _, err := an.Estimate(m, 1, 10); err == nil {
		t.Error("RNN estimate without a seqlen library should fail")
	}
	if _, err := an.Estimate(dnn.AlexNet(), 0, 0); err == nil {
		t.Error("non-positive batch should fail")
	}
}

func TestProfilePredictorLearnsExactLatencies(t *testing.T) {
	cfg, lib, _, comp := testFixtures(t)
	_ = cfg
	prof, err := NewProfile(npu.DefaultConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.AlexNet()
	prog, err := comp.Compile(m, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Before observation: falls back to the analytic model (non-zero).
	before, err := prof.Estimate(m, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if before <= 0 {
		t.Fatal("fallback estimate should be positive")
	}
	prof.ObserveProgram(m, prog, m.Static)
	after, err := prof.Estimate(m, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after != prog.TotalCycles {
		t.Errorf("profiled estimate %d != observed total %d", after, prog.TotalCycles)
	}
}

func TestProfileObserveAveraging(t *testing.T) {
	_, lib, _, _ := testFixtures(t)
	prof, err := NewProfile(npu.DefaultConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	prof.Observe("m", "l", 1, 100)
	prof.Observe("m", "l", 1, 200)
	model := &dnn.Model{Name: "m", Class: dnn.CNN,
		Static: []dnn.Layer{dnn.NewFC("l", 8, 8, false)}}
	got, err := prof.Estimate(model, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 150 {
		t.Errorf("averaged estimate = %d, want 150", got)
	}
}

func TestMACProxyUnderestimatesLowUtilizationLayers(t *testing.T) {
	// Figure 10's lesson: MAC count is a poor proxy exactly where the
	// array is underutilized. The proxy must err far more than the
	// analytic model on MobileNet (1x1 convs + depthwise).
	cfg, lib, an, comp := testFixtures(t)
	_ = cfg
	proxy := NewMACProxy(npu.DefaultConfig(), lib)
	m := dnn.MobileNet()
	prog, err := comp.Compile(m, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(prog.TotalCycles)
	estA, err := an.Estimate(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	estP, err := proxy.Estimate(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	errA := math.Abs(float64(estA)-actual) / actual
	errP := math.Abs(float64(estP)-actual) / actual
	if errP < 4*errA {
		t.Errorf("MAC proxy error %.1f%% should dwarf analytic error %.1f%%",
			errP*100, errA*100)
	}
	if float64(estP) > actual {
		t.Errorf("MAC proxy should underestimate an underutilized model (est %d vs actual %.0f)",
			estP, actual)
	}
}

func TestSuiteWideAccuracyMatchesPaper(t *testing.T) {
	// Across the suite with sampled RNN lengths, the mean estimation
	// error should be small (paper: ~1.6%); we accept <6% to absorb
	// the synthetic length profiles.
	_, lib, an, comp := testFixtures(t)
	rng := stats.NewRNG(31, 41)
	var errSum float64
	var n int
	for _, m := range dnn.Suite() {
		for i := 0; i < 10; i++ {
			inLen, actualOut := 0, 0
			if m.IsRNN() {
				var err error
				inLen, actualOut, _, err = lib.SampleInstance(m.SeqProfile, rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			prog, err := comp.Compile(m, 1, inLen, actualOut)
			if err != nil {
				t.Fatal(err)
			}
			est, err := an.Estimate(m, 1, inLen)
			if err != nil {
				t.Fatal(err)
			}
			errSum += math.Abs(float64(est)-float64(prog.TotalCycles)) / float64(prog.TotalCycles)
			n++
			if !m.IsRNN() {
				break
			}
		}
	}
	mean := errSum / float64(n)
	if mean > 0.06 {
		t.Errorf("suite-wide mean prediction error %.2f%%, want < 6%%", mean*100)
	}
}
