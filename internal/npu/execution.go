package npu

import "fmt"

// Execution is a resumable cursor over a compiled Program. The multi-task
// simulator advances it by cycle budgets, interrogates it for the next
// preemption boundary (GEMM_OP commit, footnote 2 of the paper), reads the
// checkpointable live state, and resets it when the KILL mechanism discards
// in-flight work.
//
// The zero value is not usable; construct with NewExecution.
type Execution struct {
	prog *Program
	pc   int   // index of the instruction currently in flight
	rem  int64 // cycles remaining in the in-flight instruction
	done int64 // cycles executed so far
}

// NewExecution returns a cursor positioned at the start of prog.
func NewExecution(prog *Program) *Execution {
	e := &Execution{prog: prog}
	e.reset()
	return e
}

func (e *Execution) reset() {
	e.pc = 0
	e.done = 0
	e.rem = 0
	if len(e.prog.Instrs) > 0 {
		e.rem = int64(e.prog.Instrs[0].Cycles)
	}
	e.skipZero()
}

// skipZero advances past zero-latency instructions so the cursor always
// rests on work (or the end of the program).
func (e *Execution) skipZero() {
	for e.pc < len(e.prog.Instrs) && e.rem == 0 {
		e.pc++
		if e.pc < len(e.prog.Instrs) {
			e.rem = int64(e.prog.Instrs[e.pc].Cycles)
		}
	}
}

// Program returns the program being executed.
func (e *Execution) Program() *Program { return e.prog }

// Done reports whether the program has fully committed.
func (e *Execution) Done() bool { return e.pc >= len(e.prog.Instrs) }

// Executed returns the cycles executed so far.
func (e *Execution) Executed() int64 { return e.done }

// Remaining returns the cycles left until completion.
func (e *Execution) Remaining() int64 { return e.prog.TotalCycles - e.done }

// Advance executes up to budget cycles and returns the cycles actually
// consumed (less than budget only when the program completes first). It
// may stop mid-instruction; scheduling-quantum expiry does not itself
// force a preemption boundary.
func (e *Execution) Advance(budget int64) int64 {
	if budget < 0 {
		panic(fmt.Sprintf("npu: negative advance budget %d", budget))
	}
	var used int64
	for budget > 0 && !e.Done() {
		step := e.rem
		if step > budget {
			step = budget
		}
		e.rem -= step
		e.done += step
		used += step
		budget -= step
		if e.rem == 0 {
			e.pc++
			if e.pc < len(e.prog.Instrs) {
				e.rem = int64(e.prog.Instrs[e.pc].Cycles)
			}
			e.skipZero()
		}
	}
	return used
}

// CyclesToBoundary returns the cycles needed to finish the in-flight
// instruction — the earliest point at which a CHECKPOINT preemption can be
// serviced (the trap routine runs after the current GEMM_OP commits,
// Section IV-C). Zero when the cursor already rests on a boundary or the
// program is done.
func (e *Execution) CyclesToBoundary() int64 {
	if e.Done() {
		return 0
	}
	if e.rem == int64(e.prog.Instrs[e.pc].Cycles) {
		// Nothing of the in-flight instruction has executed yet: the
		// cursor is exactly on a commit boundary.
		return 0
	}
	return e.rem
}

// LiveBytes returns the checkpointable on-chip context at the last
// committed instruction boundary. Callers must advance to a boundary
// (CyclesToBoundary() == 0) before checkpointing; LiveBytes tolerates
// mid-instruction cursors by reporting the previously committed state.
func (e *Execution) LiveBytes() int64 {
	idx := e.pc
	if !e.Done() && e.rem < int64(e.prog.Instrs[e.pc].Cycles) {
		// In-flight instruction has partially executed; its commit
		// state is not yet architecturally visible.
		idx = e.pc
	}
	// The state after the previous commit is attached to instrs[pc-1].
	if idx == 0 {
		return 0
	}
	return e.prog.Instrs[idx-1].LiveBytes
}

// Kill discards all progress: the KILL preemption mechanism terminates the
// task immediately without checkpointing, and the inference later restarts
// from scratch (Section IV-C).
func (e *Execution) Kill() { e.reset() }

// KillToLayerStart discards only the current layer's in-flight progress,
// rewinding the cursor to the first instruction of the layer being
// executed. This models the milder restart granularity the paper's
// footnote 2 permits — preemption points on tile boundaries with
// re-execution from the last architecturally complete layer — and returns
// the cycles of work discarded. A completed program is left untouched.
func (e *Execution) KillToLayerStart() (wasted int64) {
	if e.Done() {
		return 0
	}
	layer := e.prog.Instrs[e.pc].Layer
	start := e.pc
	for start > 0 && e.prog.Instrs[start-1].Layer == layer {
		start--
	}
	// Cycles completed within the layer: full instructions since start
	// plus the partially executed one.
	for i := start; i < e.pc; i++ {
		wasted += int64(e.prog.Instrs[i].Cycles)
	}
	wasted += int64(e.prog.Instrs[e.pc].Cycles) - e.rem
	e.pc = start
	e.done -= wasted
	e.rem = int64(e.prog.Instrs[start].Cycles)
	e.skipZero()
	return wasted
}

// Progress returns the executed fraction in [0,1].
func (e *Execution) Progress() float64 {
	if e.prog.TotalCycles == 0 {
		return 1
	}
	return float64(e.done) / float64(e.prog.TotalCycles)
}

// CurrentLayer returns the layer index of the in-flight instruction, or -1
// once the program has completed.
func (e *Execution) CurrentLayer() int {
	if e.Done() {
		return -1
	}
	return int(e.prog.Instrs[e.pc].Layer)
}
