package npu

import "fmt"

// Op is a CISC opcode of the NPU ISA (Section II-B). The performance model
// simulates at committed-instruction granularity: LOAD_TILE/STORE_TILE
// traffic that double-buffering fully overlaps with compute is folded into
// the effective latency of the GEMM_OP/CONV_OP it overlaps with, while
// non-overlappable transfers (per-layer weight preambles, output spills)
// appear as their own instructions.
type Op uint8

const (
	// LoadTile moves activations or weights from DRAM into UBUF or the
	// weight buffer.
	LoadTile Op = iota
	// GEMMOp multiplies a latched weight tile with streamed activations.
	GEMMOp
	// ConvOp is a lowered convolution executed as a GEMM (Section II-B).
	ConvOp
	// VectorOp applies element-wise math on the vector unit.
	VectorOp
	// StoreTile moves output activations from UBUF back to DRAM.
	StoreTile
)

var opNames = [...]string{"LOAD_TILE", "GEMM_OP", "CONV_OP", "VECTOR_OP", "STORE_TILE"}

// String returns the ISA mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Instr is one committed instruction with its effective latency
// contribution under the double-buffered dataflow.
type Instr struct {
	// Op is the ISA opcode.
	Op Op
	// Layer indexes the instantiated layer list the program was
	// compiled from.
	Layer int32
	// Cycles is the instruction's effective latency: for GEMM_OP and
	// CONV_OP tiles this is max(compute, memory) per Algorithm 1's
	// double-buffering model.
	Cycles int32
	// LiveBytes is the checkpointable on-chip context (output
	// activations resident in UBUF/ACCQ, Section IV-B) immediately
	// after this instruction commits. Preemption via CHECKPOINT at
	// this boundary must persist exactly these bytes.
	LiveBytes int64
}

// Program is a compiled instruction stream for one inference task
// instance, together with summary statistics the scheduler and the
// metrics pipeline need.
type Program struct {
	// Model is the workload label the program was compiled from.
	Model string
	// Batch is the inference batch size.
	Batch int
	// InLen and OutLen are the sequence lengths of an RNN instance
	// (zero for CNNs).
	InLen, OutLen int
	// Instrs is the committed instruction stream.
	Instrs []Instr
	// TotalCycles is the isolated, uninterrupted execution time.
	TotalCycles int64
	// TotalMACs is the arithmetic work represented by the program.
	TotalMACs int64
	// Layers is the number of instantiated layers.
	Layers int
}

// Validate checks program invariants: positive latencies, non-negative
// live state, and a consistent total.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("npu: program %q has no instructions", p.Model)
	}
	var sum int64
	for i, in := range p.Instrs {
		if in.Cycles < 0 {
			return fmt.Errorf("npu: program %q instr %d has negative cycles", p.Model, i)
		}
		if in.LiveBytes < 0 {
			return fmt.Errorf("npu: program %q instr %d has negative live bytes", p.Model, i)
		}
		sum += int64(in.Cycles)
	}
	if sum != p.TotalCycles {
		return fmt.Errorf("npu: program %q total %d != instruction sum %d",
			p.Model, p.TotalCycles, sum)
	}
	return nil
}

// MaxLiveBytes returns the largest checkpointable context across all
// preemption points of the program.
func (p *Program) MaxLiveBytes() int64 {
	var max int64
	for _, in := range p.Instrs {
		if in.LiveBytes > max {
			max = in.LiveBytes
		}
	}
	return max
}
