// Package npu models the baseline neural processing unit of Section II-B:
// a Google-TPU-style systolic-array accelerator with a weight-stationary
// dataflow, a unified activation buffer (UBUF), an accumulator queue
// (ACCQ), and a flat-bandwidth memory system (Table I).
//
// The package owns the machine configuration, the CISC instruction stream
// representation produced by internal/compiler, and the Execution cursor
// that the multi-task simulator advances, preempts, checkpoints and
// resumes.
package npu

import (
	"fmt"
	"time"
)

// Config captures the NPU configuration of Table I plus the secondary
// parameters the simulator needs (vector-unit width, checkpoint DMA
// efficiency).
type Config struct {
	// SW and SH are the systolic array width and height in PEs
	// (weight tile is SW x SH; Figure 3).
	SW, SH int
	// ACC is the accumulator queue depth: the number of input-activation
	// columns streamed per GEMM_OP.
	ACC int
	// FreqHz is the PE clock (700 MHz in Table I).
	FreqHz float64
	// UBUFBytes is the unified activation buffer capacity (8 MB).
	UBUFBytes int64
	// WBUFBytes is the weight buffer capacity (4 MB).
	WBUFBytes int64
	// MemChannels is the number of DRAM channels (8).
	MemChannels int
	// MemBWBytesPerSec is the aggregate off-chip bandwidth (358 GB/s).
	MemBWBytesPerSec float64
	// MemLatencyCycles is the DRAM access latency (100 cycles).
	MemLatencyCycles int64
	// VectorLanes is the element-wise vector unit width used by
	// VECTOR_OP (activations, pooling, depthwise convolutions).
	VectorLanes int
	// CheckpointBWFraction derates DMA bandwidth during context
	// checkpointing (simultaneous SRAM reads and DRAM writes share the
	// on-chip interconnect); calibrated so a full-UBUF checkpoint costs
	// several tens of microseconds, as reported in Section IV-D.
	CheckpointBWFraction float64
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		SW:                   128,
		SH:                   128,
		ACC:                  2048,
		FreqHz:               700e6,
		UBUFBytes:            8 << 20,
		WBUFBytes:            4 << 20,
		MemChannels:          8,
		MemBWBytesPerSec:     358e9,
		MemLatencyCycles:     100,
		VectorLanes:          128,
		CheckpointBWFraction: 0.5,
	}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	switch {
	case c.SW <= 0 || c.SH <= 0:
		return fmt.Errorf("npu: non-positive systolic array dims %dx%d", c.SW, c.SH)
	case c.ACC <= 0:
		return fmt.Errorf("npu: non-positive accumulator depth %d", c.ACC)
	case c.FreqHz <= 0:
		return fmt.Errorf("npu: non-positive frequency %v", c.FreqHz)
	case c.UBUFBytes <= 0 || c.WBUFBytes <= 0:
		return fmt.Errorf("npu: non-positive buffer sizes")
	case c.MemBWBytesPerSec <= 0:
		return fmt.Errorf("npu: non-positive memory bandwidth")
	case c.MemLatencyCycles < 0:
		return fmt.Errorf("npu: negative memory latency")
	case c.VectorLanes <= 0:
		return fmt.Errorf("npu: non-positive vector lanes")
	case c.CheckpointBWFraction <= 0 || c.CheckpointBWFraction > 1:
		return fmt.Errorf("npu: checkpoint bandwidth fraction %v outside (0,1]",
			c.CheckpointBWFraction)
	}
	return nil
}

// BytesPerCycle is the off-chip bandwidth expressed per PE clock.
func (c Config) BytesPerCycle() float64 {
	return c.MemBWBytesPerSec / c.FreqHz
}

// MemCycles returns the cycles needed to move the given bytes at full
// DMA bandwidth (excluding the fixed access latency).
func (c Config) MemCycles(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	cycles := float64(bytes) / c.BytesPerCycle()
	return int64(cycles + 0.999999)
}

// CheckpointCycles returns the preemption latency, in cycles, of
// checkpointing the given live context bytes: a DMA burst at derated
// bandwidth plus one memory access latency (Section IV-C, CHECKPOINT).
func (c Config) CheckpointCycles(liveBytes int64) int64 {
	if liveBytes <= 0 {
		return 0
	}
	cycles := float64(liveBytes) / (c.BytesPerCycle() * c.CheckpointBWFraction)
	return int64(cycles+0.999999) + c.MemLatencyCycles
}

// RestoreCycles returns the cycles to restore a checkpointed context on
// resume; symmetric with CheckpointCycles.
func (c Config) RestoreCycles(liveBytes int64) int64 {
	return c.CheckpointCycles(liveBytes)
}

// Seconds converts a cycle count to seconds.
func (c Config) Seconds(cycles int64) float64 {
	return float64(cycles) / c.FreqHz
}

// Micros converts a cycle count to microseconds.
func (c Config) Micros(cycles int64) float64 {
	return c.Seconds(cycles) * 1e6
}

// Millis converts a cycle count to milliseconds.
func (c Config) Millis(cycles int64) float64 {
	return c.Seconds(cycles) * 1e3
}

// Cycles converts a wall-clock duration into PE clock cycles.
func (c Config) Cycles(d time.Duration) int64 {
	return int64(d.Seconds() * c.FreqHz)
}

// PeakMACsPerSec is the array's peak MAC throughput (one 16-bit MAC per PE
// per cycle, Section II-B).
func (c Config) PeakMACsPerSec() float64 {
	return float64(c.SW) * float64(c.SH) * c.FreqHz
}
