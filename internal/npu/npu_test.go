package npu

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	c := DefaultConfig()
	if c.SW != 128 || c.SH != 128 {
		t.Errorf("array %dx%d, want 128x128", c.SW, c.SH)
	}
	if c.FreqHz != 700e6 {
		t.Errorf("freq %v, want 700MHz", c.FreqHz)
	}
	if c.UBUFBytes != 8<<20 || c.WBUFBytes != 4<<20 {
		t.Errorf("SRAM %d/%d, want 8MB/4MB", c.UBUFBytes, c.WBUFBytes)
	}
	if c.MemChannels != 8 || c.MemBWBytesPerSec != 358e9 || c.MemLatencyCycles != 100 {
		t.Errorf("memory subsystem mismatch: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.SW = 0 },
		func(c *Config) { c.ACC = -1 },
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.UBUFBytes = 0 },
		func(c *Config) { c.MemBWBytesPerSec = -1 },
		func(c *Config) { c.MemLatencyCycles = -5 },
		func(c *Config) { c.VectorLanes = 0 },
		func(c *Config) { c.CheckpointBWFraction = 0 },
		func(c *Config) { c.CheckpointBWFraction = 1.5 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	c := DefaultConfig()
	if got := c.Micros(700); got != 1 {
		t.Errorf("700 cycles @700MHz = %v us, want 1", got)
	}
	if got := c.Millis(700_000); got != 1 {
		t.Errorf("Millis = %v, want 1", got)
	}
	if got := c.Cycles(time.Millisecond); got != 700_000 {
		t.Errorf("Cycles(1ms) = %d, want 700000", got)
	}
	if got := c.Seconds(c.Cycles(2 * time.Second)); got != 2 {
		t.Errorf("round trip = %v, want 2", got)
	}
	// 358 GB/s at 700 MHz is ~511 bytes per cycle.
	if bpc := c.BytesPerCycle(); bpc < 511 || bpc > 512 {
		t.Errorf("BytesPerCycle = %v, want ~511.4", bpc)
	}
	if c.PeakMACsPerSec() != 128*128*700e6 {
		t.Errorf("peak MACs = %v", c.PeakMACsPerSec())
	}
}

func TestMemCycles(t *testing.T) {
	c := DefaultConfig()
	if got := c.MemCycles(0); got != 0 {
		t.Errorf("MemCycles(0) = %d", got)
	}
	if got := c.MemCycles(-5); got != 0 {
		t.Errorf("MemCycles(negative) = %d", got)
	}
	// One full UBUF at ~511 B/cycle is ~16.4k cycles (~23us).
	got := c.MemCycles(8 << 20)
	if got < 16000 || got > 17000 {
		t.Errorf("MemCycles(8MB) = %d, want ~16.4k", got)
	}
}

func TestCheckpointCyclesMatchesPaperScale(t *testing.T) {
	c := DefaultConfig()
	// A full-UBUF checkpoint must land in the "several tens of
	// microseconds" regime of Section IV-D.
	us := c.Micros(c.CheckpointCycles(c.UBUFBytes))
	if us < 20 || us > 80 {
		t.Errorf("full-UBUF checkpoint = %.1f us, want tens of us", us)
	}
	if c.CheckpointCycles(0) != 0 {
		t.Error("empty checkpoint should be free")
	}
	if c.RestoreCycles(1<<20) != c.CheckpointCycles(1<<20) {
		t.Error("restore should be symmetric with checkpoint")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		LoadTile: "LOAD_TILE", GEMMOp: "GEMM_OP", ConvOp: "CONV_OP",
		VectorOp: "VECTOR_OP", StoreTile: "STORE_TILE",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op %d = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op should render")
	}
}

func testProgram(cycles ...int32) *Program {
	p := &Program{Model: "test", Batch: 1}
	for i, c := range cycles {
		p.Instrs = append(p.Instrs, Instr{
			Op: GEMMOp, Layer: int32(i), Cycles: c, LiveBytes: int64(i) * 100,
		})
		p.TotalCycles += int64(c)
	}
	return p
}

func TestProgramValidate(t *testing.T) {
	p := testProgram(10, 20, 30)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MaxLiveBytes() != 200 {
		t.Errorf("MaxLiveBytes = %d, want 200", p.MaxLiveBytes())
	}
	bad := testProgram(10)
	bad.TotalCycles = 99
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent total should fail validation")
	}
	empty := &Program{Model: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program should fail validation")
	}
	neg := testProgram(10)
	neg.Instrs[0].LiveBytes = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative live bytes should fail validation")
	}
}

func TestExecutionAdvance(t *testing.T) {
	e := NewExecution(testProgram(10, 20, 30))
	if e.Done() || e.Executed() != 0 || e.Remaining() != 60 {
		t.Fatalf("fresh execution state wrong: done=%v exec=%d rem=%d",
			e.Done(), e.Executed(), e.Remaining())
	}
	if used := e.Advance(5); used != 5 {
		t.Errorf("Advance(5) used %d", used)
	}
	if e.CyclesToBoundary() != 5 {
		t.Errorf("CyclesToBoundary = %d, want 5", e.CyclesToBoundary())
	}
	if used := e.Advance(5); used != 5 {
		t.Errorf("Advance(5) used %d", used)
	}
	// Now exactly at the first instruction boundary.
	if e.CyclesToBoundary() != 0 {
		t.Errorf("CyclesToBoundary at commit = %d, want 0", e.CyclesToBoundary())
	}
	if e.LiveBytes() != 0 {
		t.Errorf("LiveBytes after instr 0 = %d, want 0 (layer 0 tag)", e.LiveBytes())
	}
	if used := e.Advance(100); used != 50 {
		t.Errorf("Advance(100) used %d, want 50 (completion)", used)
	}
	if !e.Done() || e.Remaining() != 0 || e.Progress() != 1 {
		t.Errorf("completion state wrong: %v %d %v", e.Done(), e.Remaining(), e.Progress())
	}
	if e.Advance(10) != 0 {
		t.Error("advancing a done execution should consume nothing")
	}
	if e.CurrentLayer() != -1 {
		t.Error("CurrentLayer after completion should be -1")
	}
}

func TestExecutionKill(t *testing.T) {
	e := NewExecution(testProgram(10, 20))
	e.Advance(15)
	if e.Executed() != 15 {
		t.Fatalf("executed = %d", e.Executed())
	}
	e.Kill()
	if e.Executed() != 0 || e.Done() || e.Remaining() != 30 {
		t.Errorf("Kill did not reset: exec=%d done=%v rem=%d",
			e.Executed(), e.Done(), e.Remaining())
	}
	// Must be able to re-execute to completion.
	if used := e.Advance(1000); used != 30 {
		t.Errorf("re-execution used %d, want 30", used)
	}
}

func TestExecutionSkipsZeroCycleInstrs(t *testing.T) {
	p := &Program{Model: "z", Batch: 1, Instrs: []Instr{
		{Op: LoadTile, Cycles: 0},
		{Op: GEMMOp, Cycles: 10},
		{Op: VectorOp, Cycles: 0},
		{Op: GEMMOp, Cycles: 5},
	}, TotalCycles: 15}
	e := NewExecution(p)
	if e.CurrentLayer() != 0 {
		t.Errorf("should rest on first real instruction")
	}
	if used := e.Advance(15); used != 15 || !e.Done() {
		t.Errorf("advance through zero-cycle instrs: used=%d done=%v", used, e.Done())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative budget should panic")
		}
	}()
	NewExecution(testProgram(1)).Advance(-1)
}

// Property: any sequence of Advance calls consumes exactly TotalCycles
// overall and Executed+Remaining is invariant.
func TestExecutionConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	f := func() bool {
		n := 1 + rng.IntN(20)
		cycles := make([]int32, n)
		for i := range cycles {
			cycles[i] = int32(rng.IntN(50))
		}
		p := testProgram(cycles...)
		if p.TotalCycles == 0 {
			return true
		}
		e := NewExecution(p)
		var used int64
		for !e.Done() {
			if e.Executed()+e.Remaining() != p.TotalCycles {
				return false
			}
			used += e.Advance(int64(1 + rng.IntN(37)))
		}
		return used == p.TotalCycles && e.Executed() == p.TotalCycles
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CyclesToBoundary is always in [0, current instr cycles] and
// advancing by exactly that amount lands on a commit boundary.
func TestBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 21))
	f := func() bool {
		p := testProgram(7, 13, 29, 5)
		e := NewExecution(p)
		for !e.Done() {
			e.Advance(int64(1 + rng.IntN(11)))
			b := e.CyclesToBoundary()
			if b < 0 || b > 29 {
				return false
			}
			if b > 0 {
				e.Advance(b)
				if e.CyclesToBoundary() != 0 && !e.Done() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKillToLayerStart(t *testing.T) {
	p := &Program{Model: "kl", Batch: 1, Instrs: []Instr{
		{Op: GEMMOp, Layer: 0, Cycles: 100},
		{Op: GEMMOp, Layer: 0, Cycles: 100},
		{Op: GEMMOp, Layer: 1, Cycles: 100},
		{Op: GEMMOp, Layer: 1, Cycles: 100},
	}, TotalCycles: 400}
	e := NewExecution(p)
	e.Advance(250) // 50 cycles into layer 1's first instruction
	wasted := e.KillToLayerStart()
	if wasted != 50 {
		t.Errorf("wasted = %d, want 50 (partial layer-1 work)", wasted)
	}
	if e.Executed() != 200 {
		t.Errorf("executed = %d, want layer-0 total 200", e.Executed())
	}
	if e.CurrentLayer() != 1 {
		t.Errorf("cursor should rest at layer 1 start, got layer %d", e.CurrentLayer())
	}
	// Mid-layer deeper: 150 cycles into layer 1 (one full instr + 50).
	e2 := NewExecution(p)
	e2.Advance(350)
	if w := e2.KillToLayerStart(); w != 150 {
		t.Errorf("wasted = %d, want 150", w)
	}
	// Completed programs are untouched.
	e3 := NewExecution(p)
	e3.Advance(400)
	if w := e3.KillToLayerStart(); w != 0 || !e3.Done() {
		t.Errorf("done program should not rewind (wasted %d)", w)
	}
	// Re-execution still completes with the correct total.
	rem := e.Remaining()
	if used := e.Advance(1 << 20); used != rem || !e.Done() {
		t.Errorf("re-execution used %d, want %d", used, rem)
	}
}
