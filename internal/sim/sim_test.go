package sim

import (
	"testing"
	"time"

	"repro/internal/ckptmem"
	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/workload"
)

// fixtures builds a generator for hand-crafted scenarios.
func fixtures(t *testing.T) (npu.Config, sched.Config, *workload.Generator) {
	t.Helper()
	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, scfg, gen
}

func runScenario(t *testing.T, cfg npu.Config, scfg sched.Config, policy string,
	preemptive bool, selector string, tasks []*workload.Task) *Result {
	t.Helper()
	pol, err := sched.ByName(policy, scfg)
	if err != nil {
		t.Fatal(err)
	}
	var sel sched.MechanismSelector
	if selector != "" {
		if sel, err = sched.SelectorByName(selector); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Options{NPU: cfg, Sched: scfg, Policy: pol,
		Preemptive: preemptive, Selector: sel}, workload.SchedTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// twoTasks builds the canonical victim/preemptor pair: a long low-priority
// VGG b16 at cycle 0 and a short high-priority AlexNet b1 mid-run.
func twoTasks(t *testing.T, gen *workload.Generator, cfg npu.Config) []*workload.Task {
	t.Helper()
	rng := workload.RNGFor(1, 1)
	victim, err := gen.InstanceByName(0, "CNN-VN", 16, sched.Low, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := gen.InstanceByName(1, "CNN-AN", 1, sched.High,
		victim.IsolatedCycles/3, rng)
	if err != nil {
		t.Fatal(err)
	}
	return []*workload.Task{victim, pre}
}

func TestNewValidation(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	pol, _ := sched.ByName("FCFS", scfg)
	if _, err := New(Options{NPU: cfg, Sched: scfg, Policy: pol}, nil); err == nil {
		t.Error("empty task list should be rejected")
	}
	if _, err := New(Options{NPU: cfg, Sched: scfg}, workload.SchedTasks(tasks)); err == nil {
		t.Error("missing policy should be rejected")
	}
	if _, err := New(Options{NPU: cfg, Sched: scfg, Policy: pol, Preemptive: true},
		workload.SchedTasks(tasks)); err == nil {
		t.Error("preemptive without selector should be rejected")
	}
	bad := cfg
	bad.SW = 0
	if _, err := New(Options{NPU: bad, Sched: scfg, Policy: pol},
		workload.SchedTasks(tasks)); err == nil {
		t.Error("invalid NPU config should be rejected")
	}
}

func TestAllTasksCompleteUnderEveryConfiguration(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	configs := []struct {
		policy     string
		preemptive bool
		selector   string
	}{
		{"FCFS", false, ""}, {"RRB", false, ""}, {"HPF", false, ""},
		{"TOKEN", false, ""}, {"SJF", false, ""}, {"PREMA", false, ""},
		{"HPF", true, "static-checkpoint"},
		{"SJF", true, "static-checkpoint"},
		{"PREMA", true, "static-checkpoint"},
		{"PREMA", true, "static-kill"},
		{"PREMA", true, "static-drain"},
		{"PREMA", true, "dynamic"},
		{"PREMA", true, "dynamic-kill"},
		{"TOKEN", true, "dynamic"},
	}
	for _, c := range configs {
		tasks, err := gen.Generate(workload.Spec{Tasks: 6}, workload.RNGFor(11, 3))
		if err != nil {
			t.Fatal(err)
		}
		res := runScenario(t, cfg, scfg, c.policy, c.preemptive, c.selector, tasks)
		for _, task := range res.Tasks {
			if task.State != sched.Finished || task.Completion < 0 {
				t.Errorf("%s/%s: task %d did not finish", c.policy, c.selector, task.ID)
			}
			if task.Turnaround() < task.IsolatedCycles {
				t.Errorf("%s/%s: task %d turnaround %d below isolated %d",
					c.policy, c.selector, task.ID, task.Turnaround(), task.IsolatedCycles)
			}
			if task.Completion < task.Arrival {
				t.Errorf("task %d completed before arriving", task.ID)
			}
		}
		if err := res.Timeline.Validate(); err != nil {
			t.Errorf("%s/%s: overlapping occupancy spans: %v", c.policy, c.selector, err)
		}
	}
}

func TestNonPreemptiveNeverPreempts(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	res := runScenario(t, cfg, scfg, "HPF", false, "", tasks)
	if len(res.Preemptions) != 0 {
		t.Errorf("non-preemptive run recorded %d preemptions", len(res.Preemptions))
	}
	for _, task := range res.Tasks {
		if task.Preemptions != 0 {
			t.Error("task counted a preemption under NP config")
		}
	}
}

func TestPreemptiveHPFPreemptsLowPriority(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	res := runScenario(t, cfg, scfg, "HPF", true, "static-checkpoint", tasks)
	found := false
	for _, ev := range res.Preemptions {
		if ev.Preempted == 0 && ev.Preempting == 1 && ev.Cost.Mechanism == preempt.Checkpoint {
			found = true
			if ev.Cost.SavedBytes <= 0 {
				t.Error("checkpoint saved no context")
			}
		}
	}
	if !found {
		t.Fatal("high-priority task never preempted the low-priority victim")
	}
	// The high-priority task must finish long before the victim.
	var victim, pre *sched.Task
	for _, task := range res.Tasks {
		if task.ID == 0 {
			victim = task
		} else {
			pre = task
		}
	}
	if pre.Completion >= victim.Completion {
		t.Error("preemptor should finish before the preempted long job")
	}
	// And its latency should be close to isolated: the checkpoint and
	// trap overheads are microseconds against a millisecond inference.
	if ntt := pre.NTT(); ntt > 1.5 {
		t.Errorf("preemptor NTT %v too high under P-HPF", ntt)
	}
	if victim.CheckpointCycles <= 0 {
		t.Error("victim should have paid checkpoint+restore DMA cycles")
	}
}

func TestKillForcesReExecution(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	res := runScenario(t, cfg, scfg, "HPF", true, "static-kill", tasks)
	var victim *sched.Task
	for _, task := range res.Tasks {
		if task.ID == 0 {
			victim = task
		}
	}
	if victim.WastedCycles <= 0 {
		t.Fatal("KILL should discard the victim's in-flight work")
	}
	// Turnaround must include the wasted work plus a full re-execution.
	if victim.Turnaround() < victim.IsolatedCycles+victim.WastedCycles {
		t.Errorf("victim turnaround %d does not account for wasted %d + isolated %d",
			victim.Turnaround(), victim.WastedCycles, victim.IsolatedCycles)
	}
}

func TestDrainNeverInterruptsVictim(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	res := runScenario(t, cfg, scfg, "HPF", true, "static-drain", tasks)
	var victim, pre *sched.Task
	for _, task := range res.Tasks {
		if task.ID == 0 {
			victim = task
		} else {
			pre = task
		}
	}
	if victim.Preemptions != 0 || victim.CheckpointCycles != 0 {
		t.Error("DRAIN must not interrupt the running task")
	}
	// The preemptor waits for the victim to finish.
	if pre.Start < victim.Completion {
		t.Errorf("preemptor started at %d before victim completed at %d",
			pre.Start, victim.Completion)
	}
}

func TestCheckpointBeatsKillOnSTP(t *testing.T) {
	// Section IV-E: CHECKPOINT preserves progress, so the victim (and
	// hence system throughput) fares better than under KILL.
	cfg, scfg, gen := fixtures(t)
	ck := runScenario(t, cfg, scfg, "HPF", true, "static-checkpoint", twoTasks(t, gen, cfg))
	ki := runScenario(t, cfg, scfg, "HPF", true, "static-kill", twoTasks(t, gen, cfg))
	var ckVictim, kiVictim *sched.Task
	for _, task := range ck.Tasks {
		if task.ID == 0 {
			ckVictim = task
		}
	}
	for _, task := range ki.Tasks {
		if task.ID == 0 {
			kiVictim = task
		}
	}
	if ckVictim.Turnaround() >= kiVictim.Turnaround() {
		t.Errorf("checkpoint victim (%d) should finish sooner than kill victim (%d)",
			ckVictim.Turnaround(), kiVictim.Turnaround())
	}
}

func TestDeterminism(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	run := func() *Result {
		tasks, err := gen.Generate(workload.Spec{Tasks: 8}, workload.RNGFor(77, 5))
		if err != nil {
			t.Fatal(err)
		}
		return runScenario(t, cfg, scfg, "PREMA", true, "dynamic", tasks)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Wakes != b.Wakes || len(a.Preemptions) != len(b.Preemptions) {
		t.Fatalf("same-seed runs diverged: cycles %d/%d wakes %d/%d preemptions %d/%d",
			a.Cycles, b.Cycles, a.Wakes, b.Wakes, len(a.Preemptions), len(b.Preemptions))
	}
	for i := range a.Tasks {
		if a.Tasks[i].Completion != b.Tasks[i].Completion {
			t.Fatalf("task %d completion differs", i)
		}
	}
}

func TestIdleNPUJumpsToNextArrival(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	rng := workload.RNGFor(5, 5)
	// A single task arriving late: the simulator must jump to it.
	late, err := gen.InstanceByName(0, "CNN-GN", 1, sched.Low, cfg.Cycles(50*time.Millisecond), rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runScenario(t, cfg, scfg, "FCFS", false, "", []*workload.Task{late})
	if res.Tasks[0].Start != late.Arrival {
		t.Errorf("task started at %d, want its arrival %d", res.Tasks[0].Start, late.Arrival)
	}
	if res.Tasks[0].Turnaround() != res.Tasks[0].IsolatedCycles {
		t.Errorf("sole task's turnaround %d should equal isolated %d",
			res.Tasks[0].Turnaround(), res.Tasks[0].IsolatedCycles)
	}
}

func TestQuantumControlsWakeRate(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	coarse := scfg
	coarse.Quantum = 4 * time.Millisecond
	resCoarse := runScenario(t, cfg, coarse, "FCFS", false, "", tasks)

	fine := scfg
	fine.Quantum = 100 * time.Microsecond
	resFine := runScenario(t, cfg, fine, "FCFS", false, "", twoTasks(t, gen, cfg))
	if resFine.Wakes <= resCoarse.Wakes {
		t.Errorf("finer quantum should wake more: %d vs %d", resFine.Wakes, resCoarse.Wakes)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks := twoTasks(t, gen, cfg)
	pol, _ := sched.ByName("FCFS", scfg)
	s, err := New(Options{NPU: cfg, Sched: scfg, Policy: pol, MaxCycles: 10},
		workload.SchedTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("exceeding MaxCycles must be reported as an error")
	}
}

func TestBusyCyclesNeverExceedMakespan(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	tasks, err := gen.Generate(workload.Spec{Tasks: 6}, workload.RNGFor(21, 9))
	if err != nil {
		t.Fatal(err)
	}
	res := runScenario(t, cfg, scfg, "PREMA", true, "dynamic", tasks)
	if busy := res.Timeline.BusyCycles(); busy > res.Cycles {
		t.Errorf("timeline busy %d exceeds makespan %d", busy, res.Cycles)
	}
}

func TestFiniteCheckpointMemorySpills(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	// A pool smaller than one full-UBUF checkpoint forces every saved
	// context over the host link.
	mem, err := ckptmem.New(ckptmem.Config{
		NPUMemBytes:         1 << 20, // 1 MB
		HostBWBytesPerCycle: 16,
		HostLatencyCycles:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *ckptmem.Manager) *sched.Task {
		tasks := twoTasks(t, gen, cfg)
		pol, _ := sched.ByName("HPF", scfg)
		sel, _ := sched.SelectorByName("static-checkpoint")
		s, err := New(Options{NPU: cfg, Sched: scfg, Policy: pol,
			Preemptive: true, Selector: sel, CkptMem: m},
			workload.SchedTasks(tasks))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range res.Tasks {
			if task.ID == 0 {
				return task
			}
		}
		t.Fatal("victim missing")
		return nil
	}
	unbounded := run(nil)
	bounded := run(mem)
	if bounded.Preemptions == 0 {
		t.Fatal("scenario should preempt")
	}
	if bounded.CheckpointCycles <= unbounded.CheckpointCycles {
		t.Errorf("spilled checkpoints should cost more: %d vs %d",
			bounded.CheckpointCycles, unbounded.CheckpointCycles)
	}
}
