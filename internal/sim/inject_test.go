package sim

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// injectSet builds the five-instance scenario the injection tests run:
// three base tasks plus two extras at the given fixed arrivals. Each
// call replays the same RNG stream, so repeated calls produce identical
// instances (instances are single-use across simulations).
func injectSet(t *testing.T, gen *workload.Generator, extra1, extra2 int64) []*workload.Task {
	t.Helper()
	rng := workload.RNGFor(0x17EC7, 1)
	mk := func(id int, model string, batch int, prio sched.Priority, arrival int64) *workload.Task {
		inst, err := gen.InstanceByName(id, model, batch, prio, arrival, rng)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	return []*workload.Task{
		mk(0, "CNN-AN", 1, sched.High, 0),
		mk(1, "CNN-VN", 16, sched.Low, 1000),
		mk(2, "RNN-MT1", 4, sched.Medium, 5000),
		mk(3, "CNN-GN", 4, sched.High, extra1),
		mk(4, "RNN-SA", 1, sched.Medium, extra2),
	}
}

// TestInjectionMatchesBatch proves the closed-loop invariant the serving
// layer's replay relies on: a run that learns two arrivals only when an
// earlier task completes (the OnComplete hook) is indistinguishable from
// a run given the same realized arrivals up front — the trajectory
// depends on arrival times, not on when an arrival became known.
func TestInjectionMatchesBatch(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	for _, c := range []struct {
		policy     string
		preemptive bool
		selector   string
	}{
		{"FCFS", false, ""},
		{"PREMA", true, "dynamic"},
	} {
		// Probe: the base tasks alone locate task 0's completion. The
		// extras arrive strictly after it, so (a) injecting them at that
		// completion is legal and (b) the full run's trajectory up to it
		// is identical to the probe's.
		probe := runScenario(t, cfg, scfg, c.policy, c.preemptive, c.selector,
			injectSet(t, gen, 1<<40, 1<<40)[:3])
		var c0 int64 = -1
		for _, task := range probe.Tasks {
			if task.ID == 0 {
				c0 = task.Completion
			}
		}
		if c0 <= 0 {
			t.Fatalf("%s: probe lost task 0", c.policy)
		}
		extra1, extra2 := c0+10_000, c0+250_000

		want := runScenario(t, cfg, scfg, c.policy, c.preemptive, c.selector,
			injectSet(t, gen, extra1, extra2))

		full := injectSet(t, gen, extra1, extra2)
		extras := workload.SchedTasks(full[3:])
		pol, err := sched.ByName(c.policy, scfg)
		if err != nil {
			t.Fatal(err)
		}
		var sel sched.MechanismSelector
		if c.selector != "" {
			if sel, err = sched.SelectorByName(c.selector); err != nil {
				t.Fatal(err)
			}
		}
		s, err := New(Options{
			NPU: cfg, Sched: scfg, Policy: pol,
			Preemptive: c.preemptive, Selector: sel,
			OnComplete: func(done *sched.Task, now int64) []*sched.Task {
				if done.ID == 0 {
					return extras
				}
				return nil
			},
		}, workload.SchedTasks(full[:3]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}

		if len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("%s: injected run completed %d tasks, batch %d",
				c.policy, len(got.Tasks), len(want.Tasks))
		}
		wantByID := map[int]*sched.Task{}
		for _, task := range want.Tasks {
			wantByID[task.ID] = task
		}
		for _, task := range got.Tasks {
			w := wantByID[task.ID]
			if w == nil {
				t.Fatalf("%s: injected run produced unknown task %d", c.policy, task.ID)
			}
			if task.Start != w.Start || task.Completion != w.Completion ||
				task.Preemptions != w.Preemptions {
				t.Errorf("%s: task %d diverges: start %d/%d completion %d/%d preemptions %d/%d",
					c.policy, task.ID, task.Start, w.Start,
					task.Completion, w.Completion, task.Preemptions, w.Preemptions)
			}
		}
		if got.Cycles != want.Cycles || got.Wakes != want.Wakes ||
			len(got.Preemptions) != len(want.Preemptions) {
			t.Errorf("%s: run shape diverges: makespan %d/%d wakes %d/%d preemptions %d/%d",
				c.policy, got.Cycles, want.Cycles, got.Wakes, want.Wakes,
				len(got.Preemptions), len(want.Preemptions))
		}
	}
}

// TestInjectionRejectsPastArrival covers the invariant guard: a hook
// releasing a task that "arrives" before the completion that released it
// is a simulation error, not a silently re-timed request.
func TestInjectionRejectsPastArrival(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	set := injectSet(t, gen, 1<<40, 1<<40)
	late := workload.SchedTasks(set[3:4]) // arrival far in the future
	late[0].Arrival = 0                   // ...rewritten into the past
	pol, err := sched.ByName("FCFS", scfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		NPU: cfg, Sched: scfg, Policy: pol,
		OnComplete: func(done *sched.Task, now int64) []*sched.Task { return late },
	}, workload.SchedTasks(set[:3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("injection with a past arrival should fail the run")
	}
}
