package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestRandomizedConfigurations fuzzes the simulator across random
// workloads, policies, mechanisms, quanta and arrival patterns, checking
// the invariants that must hold for every run:
//
//   - every task finishes, after it arrived, no earlier than its isolated
//     execution time;
//   - the occupancy timeline never overlaps;
//   - busy cycles never exceed the makespan;
//   - non-preemptive runs record no preemptions.
func TestRandomizedConfigurations(t *testing.T) {
	cfg, _, gen := fixtures(t)
	policies := []string{"FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA"}
	selectors := []string{"static-checkpoint", "static-kill", "static-drain",
		"static-kill-layer", "dynamic", "dynamic-kill", "dynamic-kill-layer"}
	rng := rand.New(rand.NewPCG(0xF022, 0x1))

	const trials = 60
	for trial := 0; trial < trials; trial++ {
		scfg := sched.DefaultConfig()
		scfg.Quantum = time.Duration(50+rng.IntN(2000)) * time.Microsecond

		nTasks := 1 + rng.IntN(10)
		window := time.Duration(rng.IntN(30)) * time.Millisecond
		spec := workload.Spec{Tasks: nTasks, ArrivalWindow: window + time.Millisecond}
		if rng.IntN(3) == 0 {
			spec.BatchSizes = []int{1 + rng.IntN(16)}
		}
		if rng.IntN(4) == 0 {
			spec.Estimator = workload.Oracle()
		}
		tasks, err := gen.Generate(spec, workload.RNGFor(0xF022, trial))
		if err != nil {
			t.Fatal(err)
		}

		policy := policies[rng.IntN(len(policies))]
		preemptive := rng.IntN(2) == 1
		selector := ""
		if preemptive {
			selector = selectors[rng.IntN(len(selectors))]
		}

		res := runScenario(t, cfg, scfg, policy, preemptive, selector, tasks)
		checkSimInvariants(t, res, preemptive,
			fmt.Sprintf("trial %d (%s/%s)", trial, policy, selector))
	}
}

// checkSimInvariants asserts the run-independent simulator invariants
// shared by the randomized trials above and FuzzSimInvariants below.
func checkSimInvariants(t *testing.T, res *Result, preemptive bool, label string) {
	t.Helper()
	for _, task := range res.Tasks {
		if task.State != sched.Finished {
			t.Fatalf("%s: task %d unfinished", label, task.ID)
		}
		if task.Completion < task.Arrival {
			t.Fatalf("%s: task %d completed before arrival", label, task.ID)
		}
		if task.Turnaround() < task.IsolatedCycles {
			t.Fatalf("%s: task %d turnaround %d < isolated %d",
				label, task.ID, task.Turnaround(), task.IsolatedCycles)
		}
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if busy := res.Timeline.BusyCycles(); busy > res.Cycles {
		t.Fatalf("%s: busy %d > makespan %d", label, busy, res.Cycles)
	}
	if !preemptive && len(res.Preemptions) != 0 {
		t.Fatalf("%s: NP run recorded preemptions", label)
	}
}

// FuzzSimInvariants is the coverage-guided variant of
// TestRandomizedConfigurations: the fuzzer drives the raw scenario
// knobs (workload seed, policy, task count, arrival window, quantum,
// preemption mechanism) and every generated run must satisfy the same
// invariants. ci.sh exercises the seed corpus plus a short fuzz burst
// on every run (`go test -fuzz=FuzzSimInvariants -fuzztime=5s`).
func FuzzSimInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint16(10), uint16(500), false, uint8(0))
	f.Add(uint64(0xF022), uint8(5), uint8(7), uint16(25), uint16(1500), true, uint8(4))
	f.Add(uint64(42), uint8(2), uint8(0), uint16(0), uint16(50), true, uint8(6))
	f.Add(uint64(7), uint8(4), uint8(9), uint16(3), uint16(1999), true, uint8(1))

	policies := []string{"FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA"}
	selectors := []string{"static-checkpoint", "static-kill", "static-drain",
		"static-kill-layer", "dynamic", "dynamic-kill", "dynamic-kill-layer"}

	f.Fuzz(func(t *testing.T, seed uint64, policyIdx, nTasks uint8,
		windowMs, quantumUs uint16, preemptive bool, selectorIdx uint8) {

		cfg, _, gen := fixtures(t)
		scfg := sched.DefaultConfig()
		scfg.Quantum = time.Duration(50+int(quantumUs)%2000) * time.Microsecond

		spec := workload.Spec{
			Tasks:         1 + int(nTasks)%10,
			ArrivalWindow: time.Duration(int(windowMs)%30)*time.Millisecond + time.Millisecond,
		}
		tasks, err := gen.Generate(spec, workload.RNGFor(seed, 0))
		if err != nil {
			t.Fatal(err)
		}

		policy := policies[int(policyIdx)%len(policies)]
		selector := ""
		if preemptive {
			selector = selectors[int(selectorIdx)%len(selectors)]
		}
		res := runScenario(t, cfg, scfg, policy, preemptive, selector, tasks)
		checkSimInvariants(t, res, preemptive,
			fmt.Sprintf("seed %#x (%s/%s)", seed, policy, selector))
	})
}

// TestSimultaneousArrivals exercises the degenerate arrival pattern where
// every task is dispatched at cycle zero.
func TestSimultaneousArrivals(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	var tasks []*workload.Task
	for i, name := range []string{"CNN-AN", "CNN-GN", "CNN-MN", "RNN-SA"} {
		task, err := gen.InstanceByName(i, name, 1, sched.Priorities[i%3], 0, workload.RNGFor(8, i))
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	res := runScenario(t, cfg, scfg, "PREMA", true, "dynamic", tasks)
	if len(res.Tasks) != 4 {
		t.Fatalf("completed %d of 4", len(res.Tasks))
	}
	// Work-conserving: the makespan equals the sum of executions plus
	// overheads; with no arrival gaps the NPU should never idle.
	var busy int64
	for _, s := range res.Timeline.Spans() {
		busy += s.Duration()
	}
	if frac := float64(busy) / float64(res.Cycles); frac < 0.99 {
		t.Errorf("NPU idle %.1f%% despite simultaneous arrivals", (1-frac)*100)
	}
}

// TestSingleTaskAllPolicies checks the degenerate one-task system: every
// policy must schedule it immediately and its turnaround must equal its
// isolated time exactly.
func TestSingleTaskAllPolicies(t *testing.T) {
	cfg, scfg, gen := fixtures(t)
	for _, policy := range []string{"FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA"} {
		task, err := gen.InstanceByName(0, "CNN-GN", 4, sched.Medium, 1000, workload.RNGFor(9, 9))
		if err != nil {
			t.Fatal(err)
		}
		res := runScenario(t, cfg, scfg, policy, true, "dynamic", []*workload.Task{task})
		got := res.Tasks[0].Turnaround()
		if got != res.Tasks[0].IsolatedCycles {
			t.Errorf("%s: sole task turnaround %d != isolated %d",
				policy, got, res.Tasks[0].IsolatedCycles)
		}
	}
}
