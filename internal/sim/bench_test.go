package sim_test

// Allocation benchmarks for the simulator hot path: one full 8-task
// simulation per iteration on the paper's canonical workload, with
// b.ReportAllocs demonstrating the steady-state allocation behaviour of
// sim.Run. Workload generation (tasks, execution cursors) is included in
// every iteration — its allocations are a small constant per run, so the
// allocs/op figure is dominated by the scheduler wake loop.

import (
	"testing"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchRun executes one simulation per iteration under the named policy,
// constructing the policy and selector per run as the experiment engine
// does.
func benchRun(b *testing.B, policyName string, preemptive bool, selectorName string) {
	b.Helper()
	cfg := npu.DefaultConfig()
	scfg := sched.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the generator's program cache so compilation cost is excluded
	// from the steady-state measurement.
	if _, err := gen.Generate(workload.Spec{Tasks: 8}, workload.RNGFor(1, 0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks, err := gen.Generate(workload.Spec{Tasks: 8}, workload.RNGFor(1, 0))
		if err != nil {
			b.Fatal(err)
		}
		policy, err := sched.ByName(policyName, scfg)
		if err != nil {
			b.Fatal(err)
		}
		var selector sched.MechanismSelector
		if selectorName != "" {
			if selector, err = sched.SelectorByName(selectorName); err != nil {
				b.Fatal(err)
			}
		}
		s, err := sim.New(sim.Options{NPU: cfg, Sched: scfg, Policy: policy,
			Preemptive: preemptive, Selector: selector}, workload.SchedTasks(tasks))
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Wakes == 0 {
			b.Fatal("no scheduler wakes")
		}
	}
}

// BenchmarkRunPREMADynamic measures the paper's primary configuration:
// 8 tasks under preemptive PREMA with Algorithm 3 mechanism selection.
func BenchmarkRunPREMADynamic(b *testing.B) {
	benchRun(b, "PREMA", true, "dynamic")
}

// BenchmarkRunNPFCFS measures the non-preemptive FCFS baseline.
func BenchmarkRunNPFCFS(b *testing.B) {
	benchRun(b, "FCFS", false, "")
}

// BenchmarkRunTokenStatic measures the TOKEN policy with a static
// CHECKPOINT mechanism (exercises the candidate-group path without
// Algorithm 3).
func BenchmarkRunTokenStatic(b *testing.B) {
	benchRun(b, "TOKEN", true, "static-checkpoint")
}
