// Package sim is the discrete-event multi-tenant NPU simulator. It drives
// a scheduling policy and a preemption-mechanism selector over a set of
// dispatched inference tasks, modelling arrivals, the scheduling-period
// quantum (Table II), preemption boundaries, checkpoint/restore DMA
// latencies, and KILL re-execution, and records the per-task outcomes the
// metrics pipeline consumes.
//
// The scheduler wakes under the paper's three conditions (Section V-C):
// a new task arrives, the running task completes, or the scheduling
// period elapses.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/ckptmem"
	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// NPU is the machine configuration (Table I).
	NPU npu.Config
	// Sched is the scheduler configuration (Table II).
	Sched sched.Config
	// Policy decides which task runs next.
	Policy sched.Policy
	// Preemptive enables preemption; when false the policy's Preempt
	// recommendation is ignored and tasks run to completion (the
	// NP-* configurations).
	Preemptive bool
	// Selector chooses the preemption mechanism for each
	// policy-recommended preemption. Ignored when Preemptive is false;
	// required otherwise.
	Selector sched.MechanismSelector
	// MaxCycles aborts a runaway simulation (0 means a generous
	// default); exceeding it is an error so scheduler livelock cannot
	// masquerade as a result.
	MaxCycles int64
	// CkptMem, when non-nil, tracks checkpointed contexts against a
	// finite NPU-local memory pool (Section VI-G): oversubscription
	// migrates contexts to host memory and charges the transfer
	// latency. Nil models an unbounded pool (the paper's common case,
	// GBs of NPU DRAM).
	CkptMem *ckptmem.Manager
	// OnComplete, when non-nil, is invoked after every task completion
	// with the completed entry and the completion cycle; the returned
	// tasks join the pending arrivals. Each injected task must arrive at
	// or after the completion cycle. This is the closed-loop serving
	// hook: a client releases its next request only once its previous
	// one completes. Because an arrival can never precede the completion
	// that released it, a run with injection is indistinguishable from a
	// run given the same realized arrivals up front (the simulator's
	// trajectory depends on arrival times, not on when an arrival became
	// known) — internal/serving's closed-loop replay relies on this.
	OnComplete func(done *sched.Task, now int64) []*sched.Task
}

// PreemptionEvent records one serviced preemption for the
// mechanism-characterization experiments (Figures 5-6).
type PreemptionEvent struct {
	// Cycle is when the preemption was serviced.
	Cycle int64
	// Preempted and Preempting identify the two tasks.
	Preempted, Preempting int
	// Cost is the mechanism cost breakdown.
	Cost preempt.Cost
}

// Result is the outcome of one simulation run.
type Result struct {
	// Tasks are the completed context-table entries.
	Tasks []*sched.Task
	// Preemptions are the serviced preemption events in time order.
	Preemptions []PreemptionEvent
	// Cycles is the makespan (completion of the last task).
	Cycles int64
	// Wakes counts scheduler invocations.
	Wakes int64
	// Timeline records NPU occupancy spans (one per contiguous run of
	// a task), suitable for Figure 2-style rendering.
	Timeline *trace.Timeline
}

// Sim is a single-run simulator instance.
type Sim struct {
	opt      Options
	tasks    []*sched.Task
	pending  []*sched.Task // not yet arrived, sorted by arrival
	pendHead int           // index of the next pending arrival
	ready    []*sched.Task
	running  *sched.Task
	runSince int64 // cycle the running task's current span began
	now      int64
	result   Result

	// live is the scratch buffer allLive refills at every scheduler
	// wake, so token accounting allocates nothing in steady state.
	live []*sched.Task
}

// New validates the options and prepares a simulator over the given
// tasks. The task slice is owned by the simulator afterwards.
func New(opt Options, tasks []*sched.Task) (*Sim, error) {
	if err := opt.NPU.Validate(); err != nil {
		return nil, err
	}
	if opt.Policy == nil {
		return nil, fmt.Errorf("sim: no policy configured")
	}
	if opt.Preemptive && opt.Selector == nil {
		return nil, fmt.Errorf("sim: preemptive run requires a mechanism selector")
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("sim: no tasks")
	}
	if opt.MaxCycles == 0 {
		var total int64
		for _, t := range tasks {
			total += t.IsolatedCycles
		}
		// Generous bound: full serialization plus 100x slack for
		// overheads and KILL re-execution.
		opt.MaxCycles = total*100 + opt.NPU.Cycles(opt.Sched.Quantum)*1000
	}
	s := &Sim{opt: opt}
	s.result.Timeline = &trace.Timeline{}
	s.pending = append(s.pending, tasks...)
	sort.Slice(s.pending, func(i, j int) bool {
		if s.pending[i].Arrival != s.pending[j].Arrival {
			return s.pending[i].Arrival < s.pending[j].Arrival
		}
		return s.pending[i].ID < s.pending[j].ID
	})
	s.tasks = tasks
	return s, nil
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	quantum := s.opt.NPU.Cycles(s.opt.Sched.Quantum)
	if quantum <= 0 {
		quantum = 1
	}
	remaining := len(s.tasks)
	for remaining > 0 {
		if s.now > s.opt.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded max cycles %d (policy %s): likely livelock",
				s.opt.MaxCycles, s.opt.Policy.Name())
		}
		s.admitArrivals()

		if s.running == nil && len(s.ready) == 0 {
			// Idle: jump to the next arrival.
			if s.pendHead >= len(s.pending) {
				return nil, fmt.Errorf("sim: %d tasks unfinished with empty queues", remaining)
			}
			s.now = s.pending[s.pendHead].Arrival
			continue
		}

		// Scheduler wake-up: update token balances, then consult the
		// policy.
		s.result.Wakes++
		sched.UpdateTokens(s.allLive(), s.now)
		if len(s.ready) > 0 {
			dec := s.opt.Policy.Pick(s.ready, s.running, s.now)
			if err := s.apply(dec); err != nil {
				return nil, err
			}
		}

		if s.running == nil {
			// Nothing schedulable (cannot happen with a sane
			// policy, but guard against livelock).
			if s.pendHead >= len(s.pending) {
				return nil, fmt.Errorf("sim: policy %s scheduled nothing with %d ready",
					s.opt.Policy.Name(), len(s.ready))
			}
			s.now = s.pending[s.pendHead].Arrival
			continue
		}

		// Execute until the next scheduler event: quantum expiry,
		// next arrival, or task completion.
		horizon := s.now + quantum
		if s.pendHead < len(s.pending) && s.pending[s.pendHead].Arrival < horizon {
			horizon = s.pending[s.pendHead].Arrival
		}
		if horizon <= s.now {
			horizon = s.now + 1
		}
		s.now += s.advanceRunning(horizon - s.now)
		if s.running.Exec.Done() {
			s.endSpan()
			done := s.running
			done.MarkFinished(s.now)
			s.running = nil
			remaining--
			if s.opt.OnComplete != nil {
				injected, err := s.inject(s.opt.OnComplete(done, s.now))
				if err != nil {
					return nil, err
				}
				remaining += injected
			}
		}
	}
	s.result.Tasks = s.tasks
	s.result.Cycles = s.now
	return &s.result, nil
}

// inject admits closed-loop arrivals released by the OnComplete hook:
// each task enters the pending queue at its (arrival, ID) sort position
// and extends the livelock bound by its own work, so injected streams
// cannot trip a MaxCycles sized for the initial tasks only.
func (s *Sim) inject(tasks []*sched.Task) (int, error) {
	injected := 0
	for _, t := range tasks {
		if t == nil {
			continue
		}
		if t.Arrival < s.now {
			return injected, fmt.Errorf("sim: injected task %d arrives at cycle %d before the completion at %d that released it",
				t.ID, t.Arrival, s.now)
		}
		tail := s.pending[s.pendHead:]
		idx := sort.Search(len(tail), func(i int) bool {
			if tail[i].Arrival != t.Arrival {
				return tail[i].Arrival > t.Arrival
			}
			return tail[i].ID > t.ID
		})
		pos := s.pendHead + idx
		s.pending = append(s.pending, nil)
		copy(s.pending[pos+1:], s.pending[pos:])
		s.pending[pos] = t
		s.tasks = append(s.tasks, t)
		s.opt.MaxCycles += t.IsolatedCycles * 100
		injected++
	}
	return injected, nil
}

// allLive returns every task currently tracked by the context table
// (ready plus running). The returned slice is the simulator's scratch
// buffer, valid only until the next call.
func (s *Sim) allLive() []*sched.Task {
	s.live = s.live[:0]
	s.live = append(s.live, s.ready...)
	if s.running != nil {
		s.live = append(s.live, s.running)
	}
	return s.live
}

// admitArrivals moves pending tasks whose dispatch time has come into the
// ready queue, advancing the head index rather than re-slicing.
func (s *Sim) admitArrivals() {
	for s.pendHead < len(s.pending) && s.pending[s.pendHead].Arrival <= s.now {
		t := s.pending[s.pendHead]
		s.pendHead++
		t.State = sched.Waiting
		s.ready = append(s.ready, t)
	}
}

// apply enacts a policy decision: dispatch onto an idle NPU, or service a
// recommended preemption through the mechanism selector. A checkpoint-
// memory accounting failure (e.g. a duplicate save) is a simulation
// error: swallowing it would silently skew the reported overheads.
func (s *Sim) apply(dec sched.Decision) error {
	if dec.Candidate == nil {
		return nil
	}
	if s.running == nil {
		return s.dispatch(dec.Candidate)
	}
	if !s.opt.Preemptive || !dec.Preempt || dec.Candidate == s.running {
		return nil
	}
	mech := s.opt.Selector.Select(s.running, dec.Candidate)
	if mech == preempt.Drain {
		// Algorithm 3 overrides the policy: the current task drains
		// to completion; the candidate stays queued and will be
		// reconsidered at the next wake. Record the non-preemption
		// so Figure 5's DRAIN wait-time accounting can observe it.
		s.result.Preemptions = append(s.result.Preemptions, PreemptionEvent{
			Cycle:      s.now,
			Preempted:  s.running.ID,
			Preempting: dec.Candidate.ID,
			Cost:       preempt.Cost{Mechanism: preempt.Drain},
		})
		return nil
	}

	victim := s.running
	cost := preempt.Apply(s.opt.NPU, mech, victim.Exec)
	// Completing the in-flight instruction and draining the checkpoint
	// DMA occupy the NPU.
	s.now += cost.BoundaryCycles + cost.SaveCycles
	s.endSpan()
	victim.Preemptions++
	victim.CheckpointCycles += cost.SaveCycles
	victim.WastedCycles += cost.WastedCycles
	if mech == preempt.Checkpoint {
		victim.SavedBytes = cost.SavedBytes
		// Register only non-empty contexts, mirroring the restore
		// condition in dispatch so every save is paired with exactly
		// one restore.
		if s.opt.CkptMem != nil && cost.SavedBytes > 0 {
			// Finite checkpoint storage: oversubscription migrates
			// contexts over the host link and extends the busy time.
			extra, err := s.opt.CkptMem.Save(victim.ID, cost.SavedBytes, s.now)
			if err != nil {
				return fmt.Errorf("sim: checkpoint save for task %d: %w", victim.ID, err)
			}
			s.now += extra
			victim.CheckpointCycles += extra
		}
	} else {
		victim.SavedBytes = 0
	}
	victim.MarkWaiting(s.now)
	s.ready = append(s.ready, victim)
	s.running = nil

	s.result.Preemptions = append(s.result.Preemptions, PreemptionEvent{
		Cycle:      s.now,
		Preempted:  victim.ID,
		Preempting: dec.Candidate.ID,
		Cost:       cost,
	})
	return s.dispatch(dec.Candidate)
}

// dispatch moves a ready task onto the NPU, charging any pending context
// restore as overhead before its first instruction. A checkpoint-memory
// accounting failure (a restore without a matching save) is a simulation
// error.
func (s *Sim) dispatch(t *sched.Task) error {
	idx := -1
	for i, r := range s.ready {
		if r == t {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("sim: dispatch of task not in ready queue")
	}
	// Swap-removal: ready-queue order is irrelevant because every
	// policy selects by a strict total order (ties broken by task ID),
	// so an O(1) removal cannot change any decision.
	last := len(s.ready) - 1
	s.ready[idx] = s.ready[last]
	s.ready[last] = nil
	s.ready = s.ready[:last]
	t.MarkRunning(s.now)
	s.runSince = s.now
	if t.SavedBytes > 0 {
		restore := preempt.RestoreCycles(s.opt.NPU, t.SavedBytes)
		if s.opt.CkptMem != nil {
			extra, err := s.opt.CkptMem.Restore(t.ID)
			if err != nil {
				return fmt.Errorf("sim: checkpoint restore for task %d: %w", t.ID, err)
			}
			restore += extra
		}
		t.PendingOverhead += restore
		t.CheckpointCycles += restore
		t.SavedBytes = 0
	}
	s.running = t
	return nil
}

// endSpan closes the running task's current occupancy span at the
// current cycle.
func (s *Sim) endSpan() {
	if s.running == nil || s.now <= s.runSince {
		return
	}
	s.result.Timeline.Add(trace.Span{
		TaskID: s.running.ID,
		Label:  s.running.Model,
		Start:  s.runSince,
		End:    s.now,
	})
}

// advanceRunning consumes up to budget cycles of the running task's
// pending overhead plus execution and returns the cycles used.
func (s *Sim) advanceRunning(budget int64) int64 {
	t := s.running
	var used int64
	if t.PendingOverhead > 0 {
		o := t.PendingOverhead
		if o > budget {
			o = budget
		}
		t.PendingOverhead -= o
		used += o
		budget -= o
	}
	if budget > 0 {
		used += t.Exec.Advance(budget)
	}
	return used
}
