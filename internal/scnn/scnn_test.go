package scnn

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/sparsity"
	"repro/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Multipliers: 0, AccumulatorBanks: 1, MemBWBytesPerCycle: 1, CrossbarOverhead: 1},
		{Multipliers: 1, AccumulatorBanks: 0, MemBWBytesPerCycle: 1, CrossbarOverhead: 1},
		{Multipliers: 1, AccumulatorBanks: 1, MemBWBytesPerCycle: 0, CrossbarOverhead: 1},
		{Multipliers: 1, AccumulatorBanks: 1, MemBWBytesPerCycle: 1, CrossbarOverhead: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestLayerCyclesScaleWithDensity(t *testing.T) {
	cfg := DefaultConfig()
	l := dnn.NewConv("c", 28, 28, 256, 256, 3, 1, 1)
	dense := cfg.LayerCycles(l, 1, 1.0, 1.0)
	sparse := cfg.LayerCycles(l, 1, 0.3, 0.5)
	if sparse >= dense {
		t.Errorf("sparsity should reduce cycles: %d vs %d", sparse, dense)
	}
	// Effectual work scales with the density product; compute-bound
	// layers should see roughly proportional savings.
	ratio := float64(sparse) / float64(dense)
	if ratio > 0.4 {
		t.Errorf("0.15 density product should cut compute-bound cycles hard, got ratio %.2f", ratio)
	}
}

func TestInferenceCyclesRejectsRNNs(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := dnn.ByName("RNN-SA")
	if _, err := cfg.InferenceCycles(m, 1, nil, 0.3, stats.NewRNG(1, 1)); err == nil {
		t.Error("SCNN characterization must reject recurrent models")
	}
}

func TestCharacterizeVariationMatchesPaperBounds(t *testing.T) {
	// Section V-B(3): across 500 pruned-CNN inferences, execution time
	// never deviated more than 14% (average 6%) from the mean.
	cfg := DefaultConfig()
	for _, name := range []string{"CNN-AN", "CNN-GN", "CNN-VN"} {
		m, err := dnn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mean, maxDev, avgDev, err := cfg.CharacterizeVariation(m, 1, 500, 0.3, stats.NewRNG(7, 8))
		if err != nil {
			t.Fatal(err)
		}
		if mean <= 0 {
			t.Fatalf("%s: non-positive mean", name)
		}
		if maxDev > 0.25 {
			t.Errorf("%s: max deviation %.1f%% far above the paper's 14%%", name, maxDev*100)
		}
		if avgDev > 0.10 {
			t.Errorf("%s: average deviation %.1f%% above the paper's ~6%% regime", name, avgDev*100)
		}
		if avgDev <= 0 {
			t.Errorf("%s: zero variation is not credible for input-dependent sparsity", name)
		}
	}
}

func TestInferenceDeterministicGivenRNG(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := dnn.ByName("CNN-VN")
	profile := sparsity.VGGProfile()
	a, err := cfg.InferenceCycles(m, 1, profile, 0.3, stats.NewRNG(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.InferenceCycles(m, 1, profile, 0.3, stats.NewRNG(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same-seed inferences differ")
	}
}
