// Package scnn is a simplified timing model of a sparsity-optimized CNN
// accelerator in the style of SCNN, used for the predictability
// characterization of Section V-B(3): even on sparse accelerators —
// whose execution time depends on the non-zero counts of weights and
// activations — inference latency stays predictable, because weight
// sparsity is fixed after pruning and activation density varies little
// across inputs (Figure 7).
//
// The model computes a layer's cycles as the effectual (non-zero x
// non-zero) MAC work spread over the multiplier array, plus accumulation
// and output-gather overheads, bounded below by input/output delivery
// bandwidth. It is intentionally first-order: the experiment only needs
// latency *variation* across inputs, not absolute SCNN fidelity.
package scnn

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnn"
	"repro/internal/sparsity"
	"repro/internal/stats"
)

// Config describes the sparse accelerator.
type Config struct {
	// Multipliers is the total multiplier count across PEs (SCNN: 64
	// PEs x 16 multipliers).
	Multipliers int
	// AccumulatorBanks bounds the scatter-add throughput per cycle.
	AccumulatorBanks int
	// MemBWBytesPerCycle is the compressed-activation delivery
	// bandwidth.
	MemBWBytesPerCycle float64
	// CrossbarOverhead inflates cycles to model output-crossbar
	// contention on the scattered accumulations.
	CrossbarOverhead float64
}

// DefaultConfig returns an SCNN-like configuration.
func DefaultConfig() Config {
	return Config{
		Multipliers:        1024,
		AccumulatorBanks:   2048,
		MemBWBytesPerCycle: 256,
		CrossbarOverhead:   1.15,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Multipliers <= 0 || c.AccumulatorBanks <= 0 {
		return fmt.Errorf("scnn: non-positive array dims")
	}
	if c.MemBWBytesPerCycle <= 0 {
		return fmt.Errorf("scnn: non-positive bandwidth")
	}
	if c.CrossbarOverhead < 1 {
		return fmt.Errorf("scnn: crossbar overhead must be >= 1")
	}
	return nil
}

// LayerCycles returns the layer's execution cycles given its weight
// density (fixed after pruning) and this input's activation density.
func (c Config) LayerCycles(l dnn.Layer, batch int, weightDensity, actDensity float64) int64 {
	macs := float64(l.MACs(batch))
	// Effectual work scales with the product of densities (only
	// non-zero x non-zero pairs are computed).
	effectual := macs * weightDensity * actDensity
	compute := effectual / float64(c.Multipliers) * c.CrossbarOverhead
	// Compressed input delivery.
	inBytes := float64(dnn.Bytes(l.InputElems(batch))) * actDensity
	wBytes := float64(dnn.Bytes(l.WeightElems())) * weightDensity
	mem := (inBytes + wBytes) / c.MemBWBytesPerCycle
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	return int64(cycles) + 1
}

// InferenceCycles runs one synthetic inference of a pruned CNN: each
// layer's activation density is drawn from its profile and the per-layer
// cycles are summed. weightDensity models the pruned weight density
// (fixed across inputs).
func (c Config) InferenceCycles(m *dnn.Model, batch int, profile []sparsity.LayerProfile,
	weightDensity float64, rng *rand.Rand) (int64, error) {
	if m.IsRNN() {
		return 0, fmt.Errorf("scnn: model %q is recurrent; SCNN characterization uses CNNs", m.Name)
	}
	var total int64
	pi := 0
	for _, l := range m.Static {
		switch l.Kind {
		case dnn.Conv, dnn.FC:
			act := 0.5
			if pi < len(profile) {
				act = profile[pi].Sample(rng)
				pi++
			}
			total += c.LayerCycles(l, batch, weightDensity, act)
		default:
			// Pool/activation layers on sparse accelerators are
			// negligible; skip them as SCNN does.
		}
	}
	return total, nil
}

// CharacterizeVariation runs n inferences and reports the latency
// variation statistics the paper quotes (execution time deviating at most
// 14%, on average 6%, from the mean).
func (c Config) CharacterizeVariation(m *dnn.Model, batch, n int, weightDensity float64,
	rng *rand.Rand) (meanCycles float64, maxDevFrac float64, avgDevFrac float64, err error) {

	profile, err := sparsity.ProfileFor(m.Name)
	if err != nil {
		return 0, 0, 0, err
	}
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		cyc, err := c.InferenceCycles(m, batch, profile, weightDensity, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		xs[i] = float64(cyc)
	}
	mean := stats.Mean(xs)
	var maxDev, sumDev float64
	for _, x := range xs {
		dev := x - mean
		if dev < 0 {
			dev = -dev
		}
		frac := dev / mean
		if frac > maxDev {
			maxDev = frac
		}
		sumDev += frac
	}
	return mean, maxDev, sumDev / float64(n), nil
}
