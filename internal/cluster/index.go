package cluster

// index.go holds the indexed router state that makes a routing decision
// O(log n) in the fleet size instead of O(n). Each routing policy keeps
// its own index inside State, built lazily on the policy's first Decide
// so streams that never use it (round-robin, the batch FCFS paths) pay
// nothing beyond a nil check on Commit:
//
//   - queuedIndex (LeastQueued): a per-NPU in-flight counter plus a
//     min-heap of the routable NPUs keyed by (count, index). Counts
//     decay passively through a global min-heap of drain events — one
//     event per committed request, fired when the request's fluid
//     horizon passes the decision clock — so a decision is one heap
//     peek and each commit is one push + (amortized) one pop.
//   - workIndex (LeastWork): the routable NPUs partitioned by speed
//     class, each class split into an idle heap (horizon drained, keyed
//     by index) and a busy heap (keyed by freeAt, then index). Within a
//     class the backlog order is exactly the freeAt order, so the class
//     winner is integer-exact; classes are then compared in normalized
//     completion time (backlog + estimate x speed). A homogeneous fleet
//     has one class and never touches the floating-point key, which is
//     what keeps the indexed router decision-identical to the historic
//     backlog scan.
//
// Both indexes are maintained incrementally through Commit / Fail /
// Cordon / Uncordon / Retire / AddNPU. Decisions must be made in
// nondecreasing arrival order (the same contract the fluid horizons
// already impose), which is what lets the drain-event heap and the
// busy-to-idle migration settle monotonically.

import "math/bits"

// heapEnt is one npuHeap entry. Keys live inside the heap rather than
// being read back from the owning index's arrays, so a sift touches one
// run of heap memory instead of a random array slot per comparison —
// at 10,000 backends that locality is most of the decision cost.
type heapEnt struct {
	key int64
	id  int32
}

// npuHeap is an indexed 4-ary min-heap of NPU ids ordered by (key, id),
// with an intrusive position map so membership tests, targeted removal
// and re-key are O(1) lookup + O(log n) sift. The fan-out of 4 halves
// the sift depth of a binary heap and puts each node's whole child
// group (4 x 16-byte entries) on one cache line — at 10,000 backends
// the heaps outgrow L1 and sift depth in cache lines is the decision
// cost.
type npuHeap struct {
	ents []heapEnt
	// pos maps an NPU id to its heap slot, -1 when absent. It grows
	// with the node and is never shrunk.
	pos []int32
}

func newNPUHeap(n int) *npuHeap {
	h := &npuHeap{pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *npuHeap) growTo(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

func (h *npuHeap) len() int { return len(h.ents) }

func (h *npuHeap) contains(i int) bool { return i < len(h.pos) && h.pos[i] >= 0 }

// min returns the NPU id with the smallest (key, id), or -1 when empty.
func (h *npuHeap) min() int {
	if len(h.ents) == 0 {
		return -1
	}
	return int(h.ents[0].id)
}

func (h *npuHeap) push(i int, key int64) {
	h.growTo(i + 1)
	h.pos[i] = int32(len(h.ents))
	h.ents = append(h.ents, heapEnt{key: key, id: int32(i)})
	h.up(len(h.ents) - 1)
}

func (h *npuHeap) remove(i int) {
	p := int(h.pos[i])
	last := len(h.ents) - 1
	h.swap(p, last)
	h.ents = h.ents[:last]
	h.pos[i] = -1
	if p < last {
		h.fixAt(p)
	}
}

// fix re-keys NPU i in place and restores heap order.
func (h *npuHeap) fix(i int, key int64) {
	p := int(h.pos[i])
	h.ents[p].key = key
	h.fixAt(p)
}

func (h *npuHeap) fixAt(p int) {
	if !h.down(p) {
		h.up(p)
	}
}

func less(a, b heapEnt) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id < b.id
}

func (h *npuHeap) swap(a, b int) {
	h.ents[a], h.ents[b] = h.ents[b], h.ents[a]
	h.pos[h.ents[a].id] = int32(a)
	h.pos[h.ents[b].id] = int32(b)
}

func (h *npuHeap) up(p int) {
	for p > 0 {
		parent := (p - 1) / 4
		if !less(h.ents[p], h.ents[parent]) {
			return
		}
		h.swap(p, parent)
		p = parent
	}
}

func (h *npuHeap) down(p int) bool {
	moved := false
	n := len(h.ents)
	for {
		first := 4*p + 1
		if first >= n {
			return moved
		}
		end := first + 4
		if end > n {
			end = n
		}
		small := first
		for c := first + 1; c < end; c++ {
			if less(h.ents[c], h.ents[small]) {
				small = c
			}
		}
		if !less(h.ents[small], h.ents[p]) {
			return moved
		}
		h.swap(p, small)
		p = small
		moved = true
	}
}

// drainEvent is one committed request's fluid completion: when the
// decision clock passes at, the request no longer counts as in flight on
// npu. epoch guards against slots whose fluid state was wiped by Fail —
// stale events are skipped instead of decrementing a fresh counter.
type drainEvent struct {
	at    int64
	npu   int32
	epoch uint32
}

// drainHeap is a plain 4-ary min-heap of drain events ordered by at
// (same fan-out rationale as npuHeap: one event is 16 bytes, so a child
// group is one cache line).
type drainHeap []drainEvent

func (h *drainHeap) push(e drainEvent) {
	*h = append(*h, e)
	q := *h
	p := len(q) - 1
	for p > 0 {
		parent := (p - 1) / 4
		if q[parent].at <= q[p].at {
			break
		}
		q[parent], q[p] = q[p], q[parent]
		p = parent
	}
}

func (h *drainHeap) pop() drainEvent {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	*h = q[:last]
	q = q[:last]
	p := 0
	for {
		first := 4*p + 1
		if first >= last {
			break
		}
		end := first + 4
		if end > last {
			end = last
		}
		small := first
		for c := first + 1; c < end; c++ {
			if q[c].at < q[small].at {
				small = c
			}
		}
		if q[p].at <= q[small].at {
			break
		}
		q[p], q[small] = q[small], q[p]
		p = small
	}
	return top
}

// queuedIndex answers "which routable NPU has the fewest requests in
// flight" in O(1), maintained in O(log n) per commit.
type queuedIndex struct {
	// count is the number of committed requests per NPU whose fluid
	// horizon has not passed the decision clock yet.
	count []int32
	// epoch increments when a slot's fluid state is wiped (Fail), so
	// drain events queued against the old life are ignored.
	epoch []uint32
	// pending holds one drain event per still-counted request, across
	// the whole node.
	pending drainHeap
	// byCount orders the routable NPUs by (count, index).
	byCount *npuHeap
}

func (s *State) buildQueuedIndex(now int64) {
	n := len(s.freeAt)
	q := &queuedIndex{
		count:   make([]int32, n),
		epoch:   make([]uint32, n),
		byCount: newNPUHeap(n),
	}
	for i := 0; i < n; i++ {
		for _, at := range s.horizons[i][s.heads[i]:] {
			if at > now {
				q.count[i]++
				q.pending.push(drainEvent{at: at, npu: int32(i)})
			}
		}
		if s.Routable(i) {
			q.byCount.push(i, int64(q.count[i]))
		}
	}
	s.qidx = q
}

// settle fires every drain event due by now. Counts keep decaying for
// cordoned and draining backends too, so a later Uncordon re-enters the
// rotation with an accurate queue depth.
func (q *queuedIndex) settle(now int64) {
	for len(q.pending) > 0 && q.pending[0].at <= now {
		e := q.pending.pop()
		if e.epoch != q.epoch[e.npu] {
			continue
		}
		i := int(e.npu)
		q.count[i]--
		if q.byCount.contains(i) {
			q.byCount.fix(i, int64(q.count[i]))
		}
	}
}

func (q *queuedIndex) commit(target int, freeAt int64) {
	q.count[target]++
	if q.byCount.contains(target) {
		q.byCount.fix(target, int64(q.count[target]))
	}
	q.pending.push(drainEvent{at: freeAt, npu: int32(target), epoch: q.epoch[target]})
}

// leastQueuedTarget is the indexed LeastQueued decision: settle the
// drain events due by now, then peek the (count, index) heap.
func (s *State) leastQueuedTarget(now int64) int {
	if s.qidx == nil {
		s.buildQueuedIndex(now)
	}
	s.qidx.settle(now)
	if i := s.qidx.byCount.min(); i >= 0 {
		return i
	}
	return 0 // unreachable while the state keeps one active backend
}

// idleSet is a two-level bitset over NPU ids: min() finds the
// lowest-indexed member by scanning the summary words, so the whole
// structure for 10,000 backends is ~1.3 KB and every operation is a
// handful of word reads — far cheaper than heap sifts for the "any
// idle backend? take the lowest index" case that dominates a fleet
// under moderate load.
type idleSet struct {
	// words holds one bit per NPU id; summary holds one bit per words
	// entry that is non-zero.
	words   []uint64
	summary []uint64
}

func (b *idleSet) growTo(n int) {
	for len(b.words)*64 < n {
		b.words = append(b.words, 0)
	}
	for len(b.summary)*64 < len(b.words) {
		b.summary = append(b.summary, 0)
	}
}

func (b *idleSet) contains(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]>>(uint(i)&63)&1 != 0
}

func (b *idleSet) set(i int) {
	b.growTo(i + 1)
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.summary[w>>6] |= 1 << (uint(w) & 63)
}

func (b *idleSet) clear(i int) {
	w := i >> 6
	if w >= len(b.words) {
		return
	}
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.summary[w>>6] &^= 1 << (uint(w) & 63)
	}
}

// min returns the lowest-indexed member, or -1 when the set is empty.
func (b *idleSet) min() int {
	for sw, s := range b.summary {
		if s != 0 {
			w := sw<<6 + bits.TrailingZeros64(s)
			return w<<6 + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// busyHeap is a lazy 4-ary min-heap of (freeAt, id) entries. Commits
// push a fresh entry instead of re-keying in place — the heap's sift-up
// terminates immediately because a new horizon is almost always the
// largest key — and superseded entries are recognized (key no longer
// matches the backend's freeAt, or the backend left the busy set) and
// discarded when they surface at the root. Every entry is popped at
// most once, so the amortized cost per commit is one push + one pop.
type busyHeap []heapEnt

func (h *busyHeap) push(e heapEnt) {
	*h = append(*h, e)
	q := *h
	p := len(q) - 1
	for p > 0 {
		parent := (p - 1) / 4
		if !less(q[p], q[parent]) {
			break
		}
		q[parent], q[p] = q[p], q[parent]
		p = parent
	}
}

func (h *busyHeap) pop() {
	q := *h
	last := len(q) - 1
	q[0] = q[last]
	*h = q[:last]
	q = q[:last]
	p := 0
	for {
		first := 4*p + 1
		if first >= last {
			break
		}
		end := first + 4
		if end > last {
			end = last
		}
		small := first
		for c := first + 1; c < end; c++ {
			if less(q[c], q[small]) {
				small = c
			}
		}
		if !less(q[small], q[p]) {
			break
		}
		q[p], q[small] = q[small], q[p]
		p = small
	}
}

// Membership states a backend can hold in its work class.
const (
	workAbsent = uint8(iota) // not routable: in no structure
	workIdle                 // in the class's idle set
	workBusy                 // current entry in the class's busy heap
)

// workClass indexes the routable NPUs of one speed class: idle backends
// (horizon drained — backlog zero, lowest index wins) in a bitset, busy
// backends in a lazy (freeAt, index) heap, which within a class is
// exactly the backlog order.
type workClass struct {
	speed float64
	idle  idleSet
	busy  busyHeap
}

// workIndex answers "which routable NPU finishes this request first in
// normalized time" with one candidate per speed class.
type workIndex struct {
	classOf []int32
	// state tracks each backend's membership (absent / idle / busy) so
	// superseded busy entries are recognized without position maps.
	state   []uint8
	classes []*workClass
}

func (w *workIndex) newClass(speed float64) int32 {
	w.classes = append(w.classes, &workClass{speed: speed})
	return int32(len(w.classes) - 1)
}

// classFor finds (or creates) the class with exactly this speed. Classes
// appear in first-seen backend order, so iteration is deterministic.
func (w *workIndex) classFor(speed float64) int32 {
	for ci, c := range w.classes {
		if c.speed == speed {
			return int32(ci)
		}
	}
	return w.newClass(speed)
}

func (s *State) buildWorkIndex() {
	n := len(s.freeAt)
	w := &workIndex{classOf: make([]int32, n), state: make([]uint8, n)}
	for i := 0; i < n; i++ {
		ci := w.classFor(s.speedOf(i))
		w.classOf[i] = ci
		if s.Routable(i) {
			// Everything starts busy; the first settle migrates the
			// already-drained backends to the idle sets.
			w.state[i] = workBusy
			w.classes[ci].busy.push(heapEnt{key: s.freeAt[i], id: int32(i)})
		}
	}
	s.widx = w
}

// settle discards superseded busy entries and migrates backends whose
// horizon has drained by now into their class's idle set, leaving each
// busy heap's root fresh (or the heap empty).
func (w *workIndex) settle(s *State, now int64) {
	for _, c := range w.classes {
		for len(c.busy) > 0 {
			top := c.busy[0]
			i := int(top.id)
			if w.state[i] != workBusy || s.freeAt[i] != top.key {
				c.busy.pop() // superseded by a later commit or a drop
				continue
			}
			if top.key > now {
				break
			}
			c.busy.pop()
			w.state[i] = workIdle
			c.idle.set(i)
		}
	}
}

func (w *workIndex) commit(s *State, target int) {
	c := w.classes[w.classOf[target]]
	switch w.state[target] {
	case workAbsent:
		return // not in rotation; Uncordon re-inserts with the fresh horizon
	case workIdle:
		c.idle.clear(target)
	}
	w.state[target] = workBusy
	c.busy.push(heapEnt{key: s.freeAt[target], id: int32(target)})
}

// drop removes a backend from its class's decision structures (Retire,
// Cordon, Fail). classOf is retained so Uncordon can re-insert; a busy
// entry left in the heap is discarded as superseded when it surfaces.
func (w *workIndex) drop(i int) {
	if w.state[i] == workIdle {
		w.classes[w.classOf[i]].idle.clear(i)
	}
	w.state[i] = workAbsent
}

// leastWorkTarget is the indexed LeastWork decision. With one speed
// class the answer is integer-exact: the idle heap's lowest index, else
// the busy heap's (freeAt, index) minimum — precisely the historic
// backlog scan with its lowest-index tie rule. With several classes the
// per-class candidates are compared in normalized completion time,
// backlog + est x speed, ties to the lowest index.
func (s *State) leastWorkTarget(now, est int64) int {
	if s.widx == nil {
		s.buildWorkIndex()
	}
	w := s.widx
	w.settle(s, now)
	if len(w.classes) == 1 {
		c := w.classes[0]
		if i := c.idle.min(); i >= 0 {
			return i
		}
		if len(c.busy) > 0 {
			return int(c.busy[0].id)
		}
		return 0 // unreachable while the state keeps one active backend
	}
	best, bestKey := -1, 0.0
	for _, c := range w.classes {
		cand := c.idle.min()
		if cand < 0 && len(c.busy) > 0 {
			cand = int(c.busy[0].id)
		}
		if cand < 0 {
			continue
		}
		key := float64(s.Backlog(cand, now)) + float64(est)*c.speed
		if best < 0 || key < bestKey || (key == bestKey && cand < best) {
			best, bestKey = cand, key
		}
	}
	if best < 0 {
		return 0 // unreachable while the state keeps one active backend
	}
	return best
}

// indexCommit keeps the lazily built decision indexes in sync with a
// committed routing decision.
func (s *State) indexCommit(target int) {
	if s.qidx != nil {
		s.qidx.commit(target, s.freeAt[target])
	}
	if s.widx != nil {
		s.widx.commit(s, target)
	}
}

// indexDrop takes backend i out of the decision heaps (it stopped being
// routable). Queued-index counts keep decaying via drain events so a
// later re-insertion sees fresh depths.
func (s *State) indexDrop(i int) {
	if s.qidx != nil && s.qidx.byCount.contains(i) {
		s.qidx.byCount.remove(i)
	}
	if s.widx != nil {
		s.widx.drop(i)
	}
}

// indexFail additionally wipes the slot's counted life: the fluid state
// is gone, so drain events queued against it must never fire.
func (s *State) indexFail(i int) {
	s.indexDrop(i)
	if s.qidx != nil {
		s.qidx.epoch[i]++
		s.qidx.count[i] = 0
	}
}

// indexUncordon returns backend i to the decision heaps with its current
// queue depth and horizon.
func (s *State) indexUncordon(i int) {
	if s.qidx != nil {
		s.qidx.byCount.push(i, int64(s.qidx.count[i]))
	}
	if s.widx != nil {
		// Re-enter via the busy heap; if the horizon has already
		// drained, the next settle migrates it to idle before any
		// decision reads it.
		s.widx.state[i] = workBusy
		s.widx.classes[s.widx.classOf[i]].busy.push(heapEnt{key: s.freeAt[i], id: int32(i)})
	}
}

// indexAdd registers a fresh slot (AddNPU) with both indexes.
func (s *State) indexAdd(i int, speed float64) {
	if s.qidx != nil {
		s.qidx.count = append(s.qidx.count, 0)
		s.qidx.epoch = append(s.qidx.epoch, 0)
		s.qidx.byCount.push(i, 0)
	}
	if s.widx != nil {
		ci := s.widx.classFor(speed)
		s.widx.classOf = append(s.widx.classOf, ci)
		s.widx.state = append(s.widx.state, workBusy)
		s.widx.classes[ci].busy.push(heapEnt{key: s.freeAt[i], id: int32(i)})
	}
}
