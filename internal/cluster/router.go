package cluster

// router.go extracts the routing decision out of the batch Route loop
// into an incremental Router so the batch path (Route/Run) and the
// streaming node-session path (internal/serving.NodeSession) share one
// routing implementation. A Router sees one arriving request at a time
// plus the node's fluid State and picks the target NPU; the caller
// commits the decision, advancing the fluid backlog model. Because both
// paths drive the identical Router over the identical State, a streamed
// request sequence lands on exactly the NPUs the batch router would have
// chosen (node_test.go in internal/serving locks this in byte-for-byte).

import (
	"fmt"

	"repro/internal/workload"
)

// Router makes one incremental routing decision per arriving request.
// Decide must be called in nondecreasing arrival order (the State's
// fluid horizons drain destructively), and every decision must be
// committed with State.Commit before the next Decide.
type Router interface {
	// Decide selects the target NPU for the arriving task given the
	// router's fluid view of the node.
	Decide(t *workload.Task, st *State) int
}

// NewRouter returns a fresh router instance for the policy. Router
// instances keep per-stream scratch state (e.g. the round-robin cursor),
// so each request stream needs its own instance.
func NewRouter(p RoutingPolicy) (Router, error) {
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastQueued:
		return leastQueuedRouter{}, nil
	case LeastWork:
		return leastWorkRouter{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %d", int(p))
	}
}

// State is the router's fluid view of the node: each NPU's queue is
// approximated by the serial completion horizon of the work already
// routed to it (estimated cycles, the same Algorithm 1 estimates the
// NPU-local schedulers consume).
type State struct {
	// freeAt is the fluid completion horizon per NPU.
	freeAt []int64
	// horizons holds the per-request completion horizons still queued on
	// each NPU. freeAt is nondecreasing per NPU, so each slice is sorted
	// ascending and draining is a head-cursor advance: the LeastQueued
	// in-flight count is O(1) amortized per arrival instead of rescanning
	// every previously routed request (which made Route O(n²) across the
	// stream).
	horizons [][]int64
	heads    []int
}

// NewState returns the fluid state of an idle node with the given NPU
// count.
func NewState(npus int) *State {
	return &State{
		freeAt:   make([]int64, npus),
		horizons: make([][]int64, npus),
		heads:    make([]int, npus),
	}
}

// NPUs reports the node size.
func (s *State) NPUs() int { return len(s.freeAt) }

// InFlight counts the requests routed to NPU i whose fluid completion
// horizon has not drained by cycle now. now must be nondecreasing across
// calls: drained horizons are pruned and never rescanned.
func (s *State) InFlight(i int, now int64) int {
	h := s.horizons[i]
	head := s.heads[i]
	for head < len(h) && h[head] <= now {
		head++
	}
	// Compact once the drained prefix dominates, so a long-lived
	// streaming session does not hold every horizon it ever routed.
	if head > 64 && head*2 >= len(h) {
		n := copy(h, h[head:])
		s.horizons[i] = h[:n]
		head = 0
	}
	s.heads[i] = head
	return len(s.horizons[i]) - head
}

// Backlog reports NPU i's estimated queued work at cycle now, in cycles.
func (s *State) Backlog(i int, now int64) int64 {
	b := s.freeAt[i] - now
	if b < 0 {
		b = 0
	}
	return b
}

// Commit records a routing decision, advancing the target NPU's fluid
// horizon by the request's estimated service time.
func (s *State) Commit(target int, t *workload.Task) {
	start := s.freeAt[target]
	if t.Arrival > start {
		start = t.Arrival
	}
	s.freeAt[target] = start + t.EstimatedCycles
	s.horizons[target] = append(s.horizons[target], s.freeAt[target])
}

// roundRobinRouter cycles through the NPUs in dispatch order.
type roundRobinRouter struct {
	next int
}

func (r *roundRobinRouter) Decide(_ *workload.Task, st *State) int {
	target := r.next % st.NPUs()
	r.next++
	return target
}

// leastQueuedRouter routes to the NPU with the fewest requests whose
// (estimated) work has not yet drained at the arrival instant. Ties go
// to the lowest NPU index.
type leastQueuedRouter struct{}

func (leastQueuedRouter) Decide(t *workload.Task, st *State) int {
	best, bestN := 0, int(1<<30)
	for i := 0; i < st.NPUs(); i++ {
		if n := st.InFlight(i, t.Arrival); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// leastWorkRouter routes to the NPU with the least estimated backlog in
// cycles — the predictive router built on Algorithm 1's estimates. Ties
// go to the lowest NPU index.
type leastWorkRouter struct{}

func (leastWorkRouter) Decide(t *workload.Task, st *State) int {
	best, bestWork := 0, int64(1<<62)
	for i := 0; i < st.NPUs(); i++ {
		if w := st.Backlog(i, t.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}
