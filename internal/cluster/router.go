package cluster

// router.go extracts the routing decision out of the batch Route loop
// into an incremental Router so the batch path (Route/Run) and the
// streaming node-session path (internal/serving.NodeSession) share one
// routing implementation. A Router sees one arriving request at a time
// plus the node's fluid State and picks the target NPU; the caller
// commits the decision, advancing the fluid backlog model. Because both
// paths drive the identical Router over the identical State, a streamed
// request sequence lands on exactly the NPUs the batch router would have
// chosen (node_test.go in internal/serving locks this in byte-for-byte).

import (
	"fmt"

	"repro/internal/workload"
)

// Router makes one incremental routing decision per arriving request.
// Decide must be called in nondecreasing arrival order (the State's
// fluid horizons drain destructively), and every decision must be
// committed with State.Commit before the next Decide.
type Router interface {
	// Decide selects the target NPU for the arriving task given the
	// router's fluid view of the node.
	Decide(t *workload.Task, st *State) int
}

// NewRouter returns a fresh router instance for the policy. Router
// instances keep per-stream scratch state (e.g. the round-robin cursor),
// so each request stream needs its own instance.
func NewRouter(p RoutingPolicy) (Router, error) {
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastQueued:
		return leastQueuedRouter{}, nil
	case LeastWork:
		return leastWorkRouter{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %d", int(p))
	}
}

// State is the router's fluid view of the node: each NPU's queue is
// approximated by the serial completion horizon of the work already
// routed to it (estimated cycles, the same Algorithm 1 estimates the
// NPU-local schedulers consume).
//
// The NPU set is dynamic: AddNPU grows it mid-stream and Retire marks a
// backend draining — draining backends keep their fluid horizons (their
// routed work still completes) but every Router skips them, so no new
// work lands there. A node that never scales (the batch Route path, a
// scaler-less session) sees the original fixed-fleet behaviour exactly.
type State struct {
	// freeAt is the fluid completion horizon per NPU.
	freeAt []int64
	// horizons holds the per-request completion horizons still queued on
	// each NPU. freeAt is nondecreasing per NPU, so each slice is sorted
	// ascending and draining is a head-cursor advance: the LeastQueued
	// in-flight count is O(1) amortized per arrival instead of rescanning
	// every previously routed request (which made Route O(n²) across the
	// stream).
	horizons [][]int64
	heads    []int
	// draining marks retired backends; routers route nothing new to them.
	draining []bool
	// active counts the non-draining backends.
	active int
}

// NewState returns the fluid state of an idle node with the given NPU
// count.
func NewState(npus int) *State {
	return &State{
		freeAt:   make([]int64, npus),
		horizons: make([][]int64, npus),
		heads:    make([]int, npus),
		draining: make([]bool, npus),
		active:   npus,
	}
}

// NPUs reports the node size, including draining backends.
func (s *State) NPUs() int { return len(s.freeAt) }

// Active reports how many backends accept new work.
func (s *State) Active() int { return s.active }

// Draining reports whether backend i has been retired: its routed work
// still drains, but routers send nothing new to it.
func (s *State) Draining(i int) bool { return s.draining[i] }

// AddNPU appends a fresh idle backend to the node mid-stream (the
// autoscaler's scale-up path) and returns its index.
func (s *State) AddNPU() int {
	s.freeAt = append(s.freeAt, 0)
	s.horizons = append(s.horizons, nil)
	s.heads = append(s.heads, 0)
	s.draining = append(s.draining, false)
	s.active++
	return len(s.freeAt) - 1
}

// Retire marks backend i draining (the autoscaler's scale-down path):
// its already-routed work keeps its fluid horizons, but every Router
// skips it from now on. Retiring the last active backend is refused —
// a node must always accept work.
func (s *State) Retire(i int) error {
	if i < 0 || i >= len(s.freeAt) {
		return fmt.Errorf("cluster: retire of unknown NPU %d (node size %d)", i, len(s.freeAt))
	}
	if s.draining[i] {
		return fmt.Errorf("cluster: NPU %d already draining", i)
	}
	if s.active <= 1 {
		return fmt.Errorf("cluster: cannot retire the last active NPU")
	}
	s.draining[i] = true
	s.active--
	return nil
}

// FreeAt reports backend i's fluid completion horizon: the cycle at
// which everything routed to it so far is estimated to have drained.
func (s *State) FreeAt(i int) int64 { return s.freeAt[i] }

// InFlight counts the requests routed to NPU i whose fluid completion
// horizon has not drained by cycle now. now must be nondecreasing across
// calls: drained horizons are pruned and never rescanned.
func (s *State) InFlight(i int, now int64) int {
	h := s.horizons[i]
	head := s.heads[i]
	for head < len(h) && h[head] <= now {
		head++
	}
	// Compact once the drained prefix dominates, so a long-lived
	// streaming session does not hold every horizon it ever routed.
	if head > 64 && head*2 >= len(h) {
		n := copy(h, h[head:])
		s.horizons[i] = h[:n]
		head = 0
	}
	s.heads[i] = head
	return len(s.horizons[i]) - head
}

// Backlog reports NPU i's estimated queued work at cycle now, in cycles.
func (s *State) Backlog(i int, now int64) int64 {
	b := s.freeAt[i] - now
	if b < 0 {
		b = 0
	}
	return b
}

// Commit records a routing decision, advancing the target NPU's fluid
// horizon by the request's estimated service time.
func (s *State) Commit(target int, t *workload.Task) {
	start := s.freeAt[target]
	if t.Arrival > start {
		start = t.Arrival
	}
	s.freeAt[target] = start + t.EstimatedCycles
	s.horizons[target] = append(s.horizons[target], s.freeAt[target])
}

// roundRobinRouter cycles through the non-draining NPUs in dispatch
// order. On a fixed fleet the cursor walk is the original modulo step.
type roundRobinRouter struct {
	next int
}

func (r *roundRobinRouter) Decide(_ *workload.Task, st *State) int {
	n := st.NPUs()
	for tries := 0; tries < n; tries++ {
		target := r.next % n
		r.next++
		if !st.Draining(target) {
			return target
		}
	}
	return 0 // unreachable while the state keeps one active backend
}

// leastQueuedRouter routes to the non-draining NPU with the fewest
// requests whose (estimated) work has not yet drained at the arrival
// instant. Ties go to the lowest NPU index.
type leastQueuedRouter struct{}

func (leastQueuedRouter) Decide(t *workload.Task, st *State) int {
	best, bestN := 0, int(1<<30)
	for i := 0; i < st.NPUs(); i++ {
		if st.Draining(i) {
			continue
		}
		if n := st.InFlight(i, t.Arrival); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// leastWorkRouter routes to the non-draining NPU with the least
// estimated backlog in cycles — the predictive router built on
// Algorithm 1's estimates. Ties go to the lowest NPU index.
type leastWorkRouter struct{}

func (leastWorkRouter) Decide(t *workload.Task, st *State) int {
	best, bestWork := 0, int64(1<<62)
	for i := 0; i < st.NPUs(); i++ {
		if st.Draining(i) {
			continue
		}
		if w := st.Backlog(i, t.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}
