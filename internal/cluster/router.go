package cluster

// router.go extracts the routing decision out of the batch Route loop
// into an incremental Router so the batch path (Route/Run) and the
// streaming node-session path (internal/serving.NodeSession) share one
// routing implementation. A Router sees one arriving request at a time
// plus the node's fluid State and picks the target NPU; the caller
// commits the decision, advancing the fluid backlog model. Because both
// paths drive the identical Router over the identical State, a streamed
// request sequence lands on exactly the NPUs the batch router would have
// chosen (node_test.go in internal/serving locks this in byte-for-byte).

import (
	"fmt"

	"repro/internal/workload"
)

// Router makes one incremental routing decision per arriving request.
// Decide must be called in nondecreasing arrival order (the State's
// fluid horizons drain destructively), and every decision must be
// committed with State.Commit before the next Decide.
type Router interface {
	// Decide selects the target NPU for the arriving task given the
	// router's fluid view of the node.
	Decide(t *workload.Task, st *State) int
}

// NewRouter returns a fresh router instance for the policy. Router
// instances keep per-stream scratch state (e.g. the round-robin cursor),
// so each request stream needs its own instance.
func NewRouter(p RoutingPolicy) (Router, error) {
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastQueued:
		return leastQueuedRouter{}, nil
	case LeastWork:
		return leastWorkRouter{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %d", int(p))
	}
}

// State is the router's fluid view of the node: each NPU's queue is
// approximated by the serial completion horizon of the work already
// routed to it (estimated cycles, the same Algorithm 1 estimates the
// NPU-local schedulers consume).
//
// The NPU set is dynamic: AddNPU grows it mid-stream; Retire marks a
// backend draining (the autoscaler's voluntary scale-down — its routed
// work still completes but nothing new lands there); Cordon takes a
// backend out of rotation reversibly (Uncordon returns it) without the
// scale-down accounting; Fail removes a backend involuntarily, handing
// its not-yet-drained work back to the caller for re-routing. Routers
// skip every non-Routable backend. A node that never scales (the batch
// Route path, a scaler-less session) sees the original fixed-fleet
// behaviour exactly.
type State struct {
	// freeAt is the fluid completion horizon per NPU.
	freeAt []int64
	// horizons holds the per-request completion horizons still queued on
	// each NPU. freeAt is nondecreasing per NPU, so each slice is sorted
	// ascending and draining is a head-cursor advance: the LeastQueued
	// in-flight count is O(1) amortized per arrival instead of rescanning
	// every previously routed request (which made Route O(n²) across the
	// stream).
	horizons [][]int64
	heads    []int
	// draining marks retired backends; routers route nothing new to them.
	draining []bool
	// cordoned marks backends taken out of rotation reversibly; routers
	// skip them until Uncordon.
	cordoned []bool
	// failed marks backends lost involuntarily; their fluid state is gone
	// and they never serve again.
	failed []bool
	// active counts the routable backends (neither draining, cordoned nor
	// failed).
	active int
	// track enables the work ledger below; the chaos-free paths leave it
	// off and pay nothing extra on the commit path.
	track bool
	// work remembers, per NPU, the task behind every horizons entry (same
	// index), so Fail can reclaim the requests whose fluid work had not
	// drained at the failure instant.
	work [][]*workload.Task
	// speeds is the per-NPU service-time multiplier relative to the
	// node's base config (1 = base, 2 = half-clock). nil means a
	// homogeneous fleet of all-1 speeds; it is materialized lazily by
	// AddNPUWithSpeed so homogeneous nodes pay nothing.
	speeds []float64
	// qidx and widx are the lazily built decision indexes (index.go);
	// nil until a LeastQueued / LeastWork router's first Decide.
	qidx *queuedIndex
	widx *workIndex
}

// NewState returns the fluid state of an idle node with the given NPU
// count.
func NewState(npus int) *State {
	return &State{
		freeAt:   make([]int64, npus),
		horizons: make([][]int64, npus),
		heads:    make([]int, npus),
		draining: make([]bool, npus),
		cordoned: make([]bool, npus),
		failed:   make([]bool, npus),
		active:   npus,
	}
}

// NPUs reports the node size, including draining and failed backends.
func (s *State) NPUs() int { return len(s.freeAt) }

// Active reports how many backends accept new work.
func (s *State) Active() int { return s.active }

// Draining reports whether backend i has been retired: its routed work
// still drains, but routers send nothing new to it.
func (s *State) Draining(i int) bool { return s.draining[i] }

// Cordoned reports whether backend i is cordoned out of rotation.
func (s *State) Cordoned(i int) bool { return s.cordoned[i] }

// Failed reports whether backend i was lost to an injected failure.
func (s *State) Failed(i int) bool { return s.failed[i] }

// Routable reports whether routers may send new work to backend i.
func (s *State) Routable(i int) bool {
	return !s.draining[i] && !s.cordoned[i] && !s.failed[i]
}

// TrackWork makes the state remember which task sits behind every fluid
// horizon entry, which is what lets Fail reclaim the work that had not
// drained when a backend is lost. Tracking must be enabled before any
// work is committed; enabling it mid-stream would leave untracked
// horizons that a failure could not reclaim. Calling it again on a
// state that already tracks is a no-op, so long-lived sessions (the
// control plane enables the ledger at open) can schedule failures at
// any point in the stream.
func (s *State) TrackWork() error {
	if s.track {
		return nil
	}
	for i := range s.horizons {
		if len(s.horizons[i]) > 0 {
			return fmt.Errorf("cluster: work tracking must be enabled before any work is routed")
		}
	}
	s.track = true
	if s.work == nil {
		s.work = make([][]*workload.Task, len(s.freeAt))
	}
	return nil
}

// AddNPU appends a fresh idle backend to the node mid-stream (the
// autoscaler's scale-up path) and returns its index. The new backend
// carries no state from any previously failed or retired slot.
func (s *State) AddNPU() int { return s.AddNPUWithSpeed(1) }

// AddNPUWithSpeed appends a fresh idle backend with the given
// service-time multiplier relative to the node's base config (1 = base
// speed, 2 = takes twice as long). Speed-aware routers normalize
// completion-time estimates by it; everything else about the slot is
// identical to AddNPU.
func (s *State) AddNPUWithSpeed(speed float64) int {
	if speed <= 0 {
		speed = 1
	}
	s.freeAt = append(s.freeAt, 0)
	s.horizons = append(s.horizons, nil)
	s.heads = append(s.heads, 0)
	s.draining = append(s.draining, false)
	s.cordoned = append(s.cordoned, false)
	s.failed = append(s.failed, false)
	if s.track {
		s.work = append(s.work, nil)
	}
	if s.speeds != nil {
		s.speeds = append(s.speeds, speed)
	} else if speed != 1 {
		// First non-base backend: materialize the implicit all-1 fleet.
		s.speeds = make([]float64, len(s.freeAt))
		for i := range s.speeds {
			s.speeds[i] = 1
		}
		s.speeds[len(s.speeds)-1] = speed
	}
	s.active++
	i := len(s.freeAt) - 1
	s.indexAdd(i, s.speedOf(i))
	return i
}

// Speed reports backend i's service-time multiplier relative to the
// node's base config (1 for homogeneous fleets).
func (s *State) Speed(i int) float64 { return s.speedOf(i) }

func (s *State) speedOf(i int) float64 {
	if s.speeds == nil {
		return 1
	}
	return s.speeds[i]
}

// Retire marks backend i draining (the autoscaler's voluntary
// scale-down path): its already-routed work keeps its fluid horizons,
// but every Router skips it from now on. Retiring the last active
// backend is refused — a node must always accept work.
func (s *State) Retire(i int) error {
	if i < 0 || i >= len(s.freeAt) {
		return fmt.Errorf("cluster: retire of unknown NPU %d (node size %d)", i, len(s.freeAt))
	}
	if s.failed[i] {
		return fmt.Errorf("cluster: NPU %d has failed", i)
	}
	if s.draining[i] {
		return fmt.Errorf("cluster: NPU %d already draining", i)
	}
	if s.cordoned[i] {
		return fmt.Errorf("cluster: NPU %d is cordoned; uncordon it before retiring", i)
	}
	if s.active <= 1 {
		return fmt.Errorf("cluster: cannot retire the last active NPU")
	}
	s.draining[i] = true
	s.active--
	s.indexDrop(i)
	return nil
}

// Cordon takes backend i out of rotation without the scale-down
// accounting: its routed work keeps draining, no new work lands on it,
// and Uncordon returns it to service. Cordoning the last active backend
// is refused — a node must always accept work.
func (s *State) Cordon(i int) error {
	if i < 0 || i >= len(s.freeAt) {
		return fmt.Errorf("cluster: cordon of unknown NPU %d (node size %d)", i, len(s.freeAt))
	}
	if s.failed[i] {
		return fmt.Errorf("cluster: NPU %d has failed", i)
	}
	if s.draining[i] {
		return fmt.Errorf("cluster: NPU %d is draining", i)
	}
	if s.cordoned[i] {
		return fmt.Errorf("cluster: NPU %d already cordoned", i)
	}
	if s.active <= 1 {
		return fmt.Errorf("cluster: cannot cordon the last active NPU")
	}
	s.cordoned[i] = true
	s.active--
	s.indexDrop(i)
	return nil
}

// Uncordon returns a cordoned backend to rotation. A backend that
// failed while cordoned stays lost: nothing of a failed slot ever
// serves again.
func (s *State) Uncordon(i int) error {
	if i < 0 || i >= len(s.freeAt) {
		return fmt.Errorf("cluster: uncordon of unknown NPU %d (node size %d)", i, len(s.freeAt))
	}
	if s.failed[i] {
		return fmt.Errorf("cluster: NPU %d has failed", i)
	}
	if !s.cordoned[i] {
		return fmt.Errorf("cluster: NPU %d is not cordoned", i)
	}
	s.cordoned[i] = false
	s.active++
	s.indexUncordon(i)
	return nil
}

// Fail removes backend i involuntarily at cycle now — the chaos
// counterpart of Retire. Work whose fluid horizon had already drained by
// now stays completed on the lost backend; everything still in flight is
// returned, in its original routing (arrival) order, for the caller to
// re-submit through the router. The backend's fluid state is cleared:
// nothing of a failed slot is ever reused (AddNPU appends fresh slots).
// Failing the last active backend is refused — that would leave the
// routers with zero routable NPUs.
func (s *State) Fail(i int, now int64) ([]*workload.Task, error) {
	if i < 0 || i >= len(s.freeAt) {
		return nil, fmt.Errorf("cluster: failure of unknown NPU %d (node size %d)", i, len(s.freeAt))
	}
	if s.failed[i] {
		return nil, fmt.Errorf("cluster: NPU %d already failed", i)
	}
	if !s.track {
		return nil, fmt.Errorf("cluster: failure injection requires work tracking (State.TrackWork)")
	}
	if s.Routable(i) && s.active <= 1 {
		return nil, fmt.Errorf("cluster: cannot fail the last active NPU")
	}
	// Horizons drained by now completed before the failure; the rest is
	// lost in flight and reclaimed. The ledger shares the horizons'
	// head cursor, so the split is one scan from the live head.
	h := s.horizons[i]
	head := s.heads[i]
	for head < len(h) && h[head] <= now {
		head++
	}
	reclaimed := append([]*workload.Task(nil), s.work[i][head:len(h)]...)
	if s.Routable(i) {
		s.active--
	}
	s.failed[i] = true
	s.horizons[i], s.work[i], s.heads[i], s.freeAt[i] = nil, nil, 0, 0
	s.indexFail(i)
	return reclaimed, nil
}

// FreeAt reports backend i's fluid completion horizon: the cycle at
// which everything routed to it so far is estimated to have drained.
func (s *State) FreeAt(i int) int64 { return s.freeAt[i] }

// InFlight counts the requests routed to NPU i whose fluid completion
// horizon has not drained by cycle now. now must be nondecreasing across
// calls: drained horizons are pruned and never rescanned.
func (s *State) InFlight(i int, now int64) int {
	h := s.horizons[i]
	head := s.heads[i]
	for head < len(h) && h[head] <= now {
		head++
	}
	// Compact once the drained prefix dominates, so a long-lived
	// streaming session does not hold every horizon it ever routed. The
	// work ledger shares the indexing and compacts in lockstep (with its
	// tail zeroed so drained tasks are not pinned in memory).
	if head > 64 && head*2 >= len(h) {
		n := copy(h, h[head:])
		s.horizons[i] = h[:n]
		if s.track {
			w := s.work[i]
			copy(w, w[head:])
			for j := n; j < len(w); j++ {
				w[j] = nil
			}
			s.work[i] = w[:n]
		}
		head = 0
	}
	s.heads[i] = head
	return len(s.horizons[i]) - head
}

// Backlog reports NPU i's estimated queued work at cycle now, in cycles.
func (s *State) Backlog(i int, now int64) int64 {
	b := s.freeAt[i] - now
	if b < 0 {
		b = 0
	}
	return b
}

// Commit records a routing decision, advancing the target NPU's fluid
// horizon by the request's estimated service time.
func (s *State) Commit(target int, t *workload.Task) {
	start := s.freeAt[target]
	if t.Arrival > start {
		start = t.Arrival
	}
	s.freeAt[target] = start + t.EstimatedCycles
	s.horizons[target] = append(s.horizons[target], s.freeAt[target])
	if s.track {
		s.work[target] = append(s.work[target], t)
	}
	s.indexCommit(target)
}

// roundRobinRouter cycles through the routable NPUs in dispatch order.
// On a fixed fleet the cursor walk is the original modulo step.
type roundRobinRouter struct {
	next int
}

func (r *roundRobinRouter) Decide(_ *workload.Task, st *State) int {
	n := st.NPUs()
	for tries := 0; tries < n; tries++ {
		target := r.next % n
		r.next++
		if st.Routable(target) {
			return target
		}
	}
	return 0 // unreachable while the state keeps one active backend
}

// leastQueuedRouter routes to the routable NPU with the fewest requests
// whose (estimated) work has not yet drained at the arrival instant.
// Ties go to the lowest NPU index. The decision comes from the state's
// queued index (index.go) in O(log n); router_test.go retains the
// historic linear scan as a reference and proves the decisions
// identical, including across chaos events and autoscale churn.
type leastQueuedRouter struct{}

func (leastQueuedRouter) Decide(t *workload.Task, st *State) int {
	return st.leastQueuedTarget(t.Arrival)
}

// leastWorkRouter routes to the routable NPU that would finish the
// request first by Algorithm 1's estimates: least backlog on a
// homogeneous fleet, least normalized completion time (backlog +
// estimate x speed) on a heterogeneous one. Ties go to the lowest NPU
// index. The decision comes from the state's work index (index.go) in
// O(log n); router_test.go retains the linear scan as a reference.
type leastWorkRouter struct{}

func (leastWorkRouter) Decide(t *workload.Task, st *State) int {
	return st.leastWorkTarget(t.Arrival, t.EstimatedCycles)
}
