// Package cluster implements the system-node level the paper scopes out
// as future work (Section II-C): a Kubernetes-style router dispatching
// inference requests across multiple preemptible NPUs, each running its
// own local scheduler (NP-FCFS, PREMA, ...). The paper's runtime split is
// preserved exactly: the router decides *which NPU* serves a request; the
// NPU-local scheduler decides *when* it runs and whether it preempts.
//
// Routing policies range from the classic (round robin, least queued) to
// a predictive router that reuses PREMA's inference-time estimates to
// balance actual work rather than request counts — demonstrating that the
// Algorithm 1 predictor composes beyond the single-NPU scheduler.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RoutingPolicy selects a target NPU for each arriving request.
type RoutingPolicy int

const (
	// RoundRobin cycles through the NPUs in dispatch order.
	RoundRobin RoutingPolicy = iota
	// LeastQueued routes to the NPU with the fewest requests whose
	// (estimated) work has not yet drained at the arrival instant.
	LeastQueued
	// LeastWork routes to the NPU with the least estimated backlog in
	// cycles — the predictive router built on Algorithm 1's estimates.
	LeastWork
)

// String names the routing policy.
func (p RoutingPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastQueued:
		return "least-queued"
	case LeastWork:
		return "least-work"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", int(p))
	}
}

// Options configures a cluster run.
type Options struct {
	// NPUs is the accelerator count in the node (>= 1).
	NPUs int
	// Routing selects the router policy.
	Routing RoutingPolicy
	// NPU is the per-accelerator configuration.
	NPU npu.Config
	// Sched is the NPU-local scheduler configuration.
	Sched sched.Config
	// LocalPolicy is the NPU-local scheduling policy label.
	LocalPolicy string
	// Preemptive enables the preemptible-NPU path locally.
	Preemptive bool
	// Selector is the local preemption-mechanism selector label.
	Selector string
}

// Result aggregates a cluster run.
type Result struct {
	// Metrics are computed across all tasks on all NPUs.
	Metrics metrics.Run
	// Tasks pools the completed tasks.
	Tasks []*sched.Task
	// PerNPU records each accelerator's makespan and task count.
	PerNPU []NPUStats
	// Preemptions counts serviced (non-DRAIN) preemptions clusterwide.
	Preemptions int
}

// NPUStats summarizes one accelerator's share of the run.
type NPUStats struct {
	Tasks    int
	Makespan int64
	BusyFrac float64
}

// Route assigns tasks (sorted internally by arrival) to NPUs per the
// routing policy, using a fluid backlog model: each NPU's queue is
// approximated by the serial completion time of the work already routed
// to it. Returns one task list per NPU.
func Route(opt Options, tasks []*workload.Task) ([][]*workload.Task, error) {
	if opt.NPUs <= 0 {
		return nil, fmt.Errorf("cluster: non-positive NPU count %d", opt.NPUs)
	}
	ordered := append([]*workload.Task(nil), tasks...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})

	buckets := make([][]*workload.Task, opt.NPUs)
	freeAt := make([]int64, opt.NPUs)   // fluid completion horizon
	queued := make([][]int64, opt.NPUs) // completion horizons per routed task
	rr := 0
	for _, t := range ordered {
		var target int
		switch opt.Routing {
		case RoundRobin:
			target = rr % opt.NPUs
			rr++
		case LeastQueued:
			best, bestN := 0, int(1<<30)
			for i := range queued {
				n := 0
				for _, done := range queued[i] {
					if done > t.Arrival {
						n++
					}
				}
				if n < bestN {
					best, bestN = i, n
				}
			}
			target = best
		case LeastWork:
			best, bestWork := 0, int64(1<<62)
			for i := range freeAt {
				backlog := freeAt[i] - t.Arrival
				if backlog < 0 {
					backlog = 0
				}
				if backlog < bestWork {
					best, bestWork = i, backlog
				}
			}
			target = best
		default:
			return nil, fmt.Errorf("cluster: unknown routing policy %d", int(opt.Routing))
		}
		buckets[target] = append(buckets[target], t)
		start := freeAt[target]
		if t.Arrival > start {
			start = t.Arrival
		}
		freeAt[target] = start + t.EstimatedCycles
		queued[target] = append(queued[target], freeAt[target])
	}
	return buckets, nil
}

// Run routes the tasks and simulates every NPU independently (the NPUs
// share no state besides the router's dispatch decision, exactly as in
// the paper's deployment model).
func Run(opt Options, tasks []*workload.Task) (*Result, error) {
	if err := opt.NPU.Validate(); err != nil {
		return nil, err
	}
	policy, err := sched.ByName(opt.LocalPolicy, opt.Sched)
	if err != nil {
		return nil, err
	}
	var selector sched.MechanismSelector
	if opt.Preemptive {
		sel := opt.Selector
		if sel == "" {
			sel = "dynamic"
		}
		if selector, err = sched.SelectorByName(sel); err != nil {
			return nil, err
		}
	}
	buckets, err := Route(opt, tasks)
	if err != nil {
		return nil, err
	}

	out := &Result{PerNPU: make([]NPUStats, opt.NPUs)}
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		// Policies are stateless and safely shared; each simulator
		// owns only its routed tasks.
		simulator, err := sim.New(sim.Options{
			NPU: opt.NPU, Sched: opt.Sched,
			Policy: policy, Preemptive: opt.Preemptive, Selector: selector,
		}, workload.SchedTasks(bucket))
		if err != nil {
			return nil, err
		}
		res, err := simulator.Run()
		if err != nil {
			return nil, fmt.Errorf("cluster: NPU %d: %w", i, err)
		}
		out.Tasks = append(out.Tasks, res.Tasks...)
		busy := res.Timeline.BusyCycles()
		stats := NPUStats{Tasks: len(res.Tasks), Makespan: res.Cycles}
		if res.Cycles > 0 {
			stats.BusyFrac = float64(busy) / float64(res.Cycles)
		}
		out.PerNPU[i] = stats
		for _, ev := range res.Preemptions {
			if ev.Cost.Mechanism.String() != "DRAIN" {
				out.Preemptions++
			}
		}
	}
	if len(out.Tasks) == 0 {
		return nil, fmt.Errorf("cluster: no tasks completed")
	}
	m, err := metrics.FromTasks(out.Tasks)
	if err != nil {
		return nil, err
	}
	out.Metrics = m
	return out, nil
}
