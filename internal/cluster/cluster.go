// Package cluster implements the system-node level the paper scopes out
// as future work (Section II-C): a Kubernetes-style router dispatching
// inference requests across multiple preemptible NPUs, each running its
// own local scheduler (NP-FCFS, PREMA, ...). The paper's runtime split is
// preserved exactly: the router decides *which NPU* serves a request; the
// NPU-local scheduler decides *when* it runs and whether it preempts.
//
// Routing policies range from the classic (round robin, least queued) to
// a predictive router that reuses PREMA's inference-time estimates to
// balance actual work rather than request counts — demonstrating that the
// Algorithm 1 predictor composes beyond the single-NPU scheduler.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/npu"
	"repro/internal/preempt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RoutingPolicy selects a target NPU for each arriving request.
type RoutingPolicy int

const (
	// RoundRobin cycles through the NPUs in dispatch order.
	RoundRobin RoutingPolicy = iota
	// LeastQueued routes to the NPU with the fewest requests whose
	// (estimated) work has not yet drained at the arrival instant.
	LeastQueued
	// LeastWork routes to the NPU with the least estimated backlog in
	// cycles — the predictive router built on Algorithm 1's estimates.
	LeastWork
)

// String names the routing policy.
func (p RoutingPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastQueued:
		return "least-queued"
	case LeastWork:
		return "least-work"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", int(p))
	}
}

// Options configures a cluster run.
type Options struct {
	// NPUs is the accelerator count in the node (>= 1).
	NPUs int
	// Routing selects the router policy.
	Routing RoutingPolicy
	// NPU is the per-accelerator configuration.
	NPU npu.Config
	// Sched is the NPU-local scheduler configuration.
	Sched sched.Config
	// LocalPolicy is the NPU-local scheduling policy label.
	LocalPolicy string
	// Preemptive enables the preemptible-NPU path locally.
	Preemptive bool
	// Selector is the local preemption-mechanism selector label.
	Selector string
	// Parallel bounds how many per-NPU simulations run concurrently;
	// 0 or 1 runs them sequentially. Results are identical either way:
	// the NPUs share no state and outcomes are assembled in NPU order.
	Parallel int
}

// Result aggregates a cluster run.
type Result struct {
	// Metrics are computed across all tasks on all NPUs.
	Metrics metrics.Run
	// Tasks pools the completed tasks.
	Tasks []*sched.Task
	// PerNPU records each accelerator's makespan and task count.
	PerNPU []NPUStats
	// Preemptions counts serviced (non-DRAIN) preemptions clusterwide.
	Preemptions int
}

// NPUStats summarizes one accelerator's share of the run.
type NPUStats struct {
	// Tasks is how many routed tasks the NPU completed.
	Tasks int
	// Makespan is the NPU's completion cycle.
	Makespan int64
	// BusyFrac is the fraction of the makespan the NPU spent executing.
	BusyFrac float64
}

// Route assigns tasks (sorted internally by arrival) to NPUs per the
// routing policy, driving the incremental Router over the whole stream.
// Returns one task list per NPU. The streaming node session makes the
// identical decisions request-by-request through the same Router.
func Route(opt Options, tasks []*workload.Task) ([][]*workload.Task, error) {
	if opt.NPUs <= 0 {
		return nil, fmt.Errorf("cluster: non-positive NPU count %d", opt.NPUs)
	}
	router, err := NewRouter(opt.Routing)
	if err != nil {
		return nil, err
	}
	ordered := append([]*workload.Task(nil), tasks...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})

	buckets := make([][]*workload.Task, opt.NPUs)
	st := NewState(opt.NPUs)
	for _, t := range ordered {
		target := router.Decide(t, st)
		buckets[target] = append(buckets[target], t)
		st.Commit(target, t)
	}
	return buckets, nil
}

// Run routes the tasks and simulates every NPU independently (the NPUs
// share no state besides the router's dispatch decision, exactly as in
// the paper's deployment model).
func Run(opt Options, tasks []*workload.Task) (*Result, error) {
	if err := opt.NPU.Validate(); err != nil {
		return nil, err
	}
	// Validate the labels once before fanning out.
	if _, err := sched.ByName(opt.LocalPolicy, opt.Sched); err != nil {
		return nil, err
	}
	sel := opt.Selector
	if opt.Preemptive {
		if sel == "" {
			sel = "dynamic"
		}
		if _, err := sched.SelectorByName(sel); err != nil {
			return nil, err
		}
	}
	buckets, err := Route(opt, tasks)
	if err != nil {
		return nil, err
	}

	// runBucket simulates one NPU's routed tasks. Each bucket gets its
	// own policy and selector instances (policies keep scratch state;
	// see the sched.Policy contract), so buckets may run concurrently.
	runBucket := func(i int) (*sim.Result, error) {
		policy, err := sched.ByName(opt.LocalPolicy, opt.Sched)
		if err != nil {
			return nil, err
		}
		var selector sched.MechanismSelector
		if opt.Preemptive {
			if selector, err = sched.SelectorByName(sel); err != nil {
				return nil, err
			}
		}
		simulator, err := sim.New(sim.Options{
			NPU: opt.NPU, Sched: opt.Sched,
			Policy: policy, Preemptive: opt.Preemptive, Selector: selector,
		}, workload.SchedTasks(buckets[i]))
		if err != nil {
			return nil, err
		}
		res, err := simulator.Run()
		if err != nil {
			return nil, fmt.Errorf("cluster: NPU %d: %w", i, err)
		}
		return res, nil
	}

	results := make([]*sim.Result, len(buckets))
	errs := make([]error, len(buckets))
	if workers := min(opt.Parallel, len(buckets)); workers > 1 {
		// Claim-counter worker pool (the same shape as exp's engine):
		// spawn min(Parallel, buckets) goroutines that pull the next
		// un-simulated NPU index, rather than one goroutine per bucket.
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		next.Store(-1)
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(buckets) {
						return
					}
					if len(buckets[i]) == 0 {
						continue
					}
					results[i], errs[i] = runBucket(i)
				}
			}()
		}
		wg.Wait()
	} else {
		// Mirror the parallel path's run-all-then-report semantics so
		// which error surfaces does not depend on Parallel.
		for i := range buckets {
			if len(buckets[i]) == 0 {
				continue
			}
			results[i], errs[i] = runBucket(i)
		}
	}
	// Report the lowest-indexed failure regardless of execution order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Assemble in NPU order so parallel output matches sequential.
	out := &Result{PerNPU: make([]NPUStats, opt.NPUs)}
	for i, res := range results {
		if res == nil {
			continue
		}
		out.Tasks = append(out.Tasks, res.Tasks...)
		busy := res.Timeline.BusyCycles()
		stats := NPUStats{Tasks: len(res.Tasks), Makespan: res.Cycles}
		if res.Cycles > 0 {
			stats.BusyFrac = float64(busy) / float64(res.Cycles)
		}
		out.PerNPU[i] = stats
		for _, ev := range res.Preemptions {
			if ev.Cost.Mechanism != preempt.Drain {
				out.Preemptions++
			}
		}
	}
	if len(out.Tasks) == 0 {
		return nil, fmt.Errorf("cluster: no tasks completed")
	}
	m, err := metrics.FromTasks(out.Tasks)
	if err != nil {
		return nil, err
	}
	out.Metrics = m
	return out, nil
}
