package cluster

// chaos_state_test.go pins down the State's failure semantics: the
// wipe-out guards (a node must always keep one routable backend, and
// routers must survive even a hand-built all-draining state), the
// reclaim contract (arrival order preserved, completed work stays
// completed), the freshness of post-failure scale-ups, and the
// LeastQueued head-cursor prune when a failed backend's horizons vanish
// mid-stream.

import (
	"math/rand/v2"
	"testing"

	"repro/internal/workload"
)

// TestFailGuards exercises Fail's error paths: tracking required,
// unknown and repeated targets, and the last-active wipe-out guard.
func TestFailGuards(t *testing.T) {
	st := NewState(2)
	if _, err := st.Fail(0, 10); err == nil {
		t.Fatal("failure without work tracking should error")
	}
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fail(99, 10); err == nil {
		t.Error("failure of unknown NPU should error")
	}
	if _, err := st.Fail(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fail(0, 20); err == nil {
		t.Error("double failure should error")
	}
	if _, err := st.Fail(1, 20); err == nil {
		t.Error("failing the last active NPU should be refused")
	}
	if st.Active() != 1 {
		t.Errorf("active after failure = %d, want 1", st.Active())
	}
	if !st.Failed(0) || st.Routable(0) {
		t.Errorf("failed NPU still routable: failed=%v routable=%v", st.Failed(0), st.Routable(0))
	}
}

// TestCordonGuards exercises Cordon/Uncordon's error paths, including
// the last-active guard.
func TestCordonGuards(t *testing.T) {
	st := NewState(2)
	if err := st.Cordon(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Cordon(0); err == nil {
		t.Error("double cordon should error")
	}
	if err := st.Cordon(1); err == nil {
		t.Error("cordoning the last active NPU should be refused")
	}
	if err := st.Retire(0); err == nil {
		t.Error("retiring a cordoned NPU should error")
	}
	if err := st.Uncordon(1); err == nil {
		t.Error("uncordoning a non-cordoned NPU should error")
	}
	if err := st.Uncordon(0); err != nil {
		t.Fatal(err)
	}
	if st.Active() != 2 {
		t.Errorf("active after uncordon = %d, want 2", st.Active())
	}
}

// TestTrackWorkRequiresCleanState: enabling the ledger after work was
// committed would leave unreclaimable horizons, so it must error.
func TestTrackWorkRequiresCleanState(t *testing.T) {
	st := NewState(2)
	st.Commit(0, stateTask(0, 10, 40))
	if err := st.TrackWork(); err == nil {
		t.Fatal("TrackWork after a commit should error")
	}
}

// TestRoutersSurviveAllDraining drives Decide over a hand-built state
// with no routable backend. The public API refuses to construct this
// (the wipe-out guards), but the routers' fallback must still answer a
// valid index rather than loop or panic — defense in depth for any
// future caller composing State transitions directly.
func TestRoutersSurviveAllDraining(t *testing.T) {
	for _, policy := range []RoutingPolicy{RoundRobin, LeastQueued, LeastWork} {
		router, err := NewRouter(policy)
		if err != nil {
			t.Fatal(err)
		}
		st := &State{
			freeAt:   make([]int64, 3),
			horizons: make([][]int64, 3),
			heads:    make([]int, 3),
			draining: []bool{true, true, true},
			cordoned: make([]bool, 3),
			failed:   make([]bool, 3),
			active:   0,
		}
		target := router.Decide(stateTask(0, 5, 10), st)
		if target < 0 || target >= 3 {
			t.Errorf("%v answered out-of-range target %d on an all-draining node", policy, target)
		}
	}
}

// TestFailReclaimSplitsAtNow: horizons drained by the failure instant
// stay completed, the rest comes back in commit order.
func TestFailReclaimSplitsAtNow(t *testing.T) {
	st := NewState(2)
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	// Serial horizons on NPU 0: 40, 80, 120, 160.
	tasks := make([]*workload.Task, 4)
	for i := range tasks {
		tasks[i] = stateTask(i, 0, 40)
		st.Commit(0, tasks[i])
	}
	reclaimed, err := st.Fail(0, 90)
	if err != nil {
		t.Fatal(err)
	}
	// Horizons 40 and 80 had drained by 90; 120 and 160 were in flight.
	if len(reclaimed) != 2 || reclaimed[0] != tasks[2] || reclaimed[1] != tasks[3] {
		t.Fatalf("reclaimed %d tasks, want exactly tasks 2 and 3 in order", len(reclaimed))
	}
	if st.FreeAt(0) != 0 {
		t.Errorf("failed backend keeps horizon %d", st.FreeAt(0))
	}
}

// TestFailReclaimPreservesArrivalOrder streams a seeded random workload
// through a router, fails one backend mid-stream, and checks the
// reclaimed tasks come back exactly in the order they were committed —
// which is arrival order, the invariant the serving layer's
// re-submission path depends on.
func TestFailReclaimPreservesArrivalOrder(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		rng := rand.New(rand.NewPCG(seed, 0))
		router, err := NewRouter(LeastWork)
		if err != nil {
			t.Fatal(err)
		}
		st := NewState(3)
		if err := st.TrackWork(); err != nil {
			t.Fatal(err)
		}
		var now int64
		var committed []*workload.Task // tasks landing on NPU 1, in commit order
		for i := 0; i < 200; i++ {
			now += int64(rng.IntN(30))
			task := stateTask(i, now, int64(20+rng.IntN(100)))
			target := router.Decide(task, st)
			st.Commit(target, task)
			if target == 1 {
				committed = append(committed, task)
			}
		}
		reclaimed, err := st.Fail(1, now/2)
		if err != nil {
			t.Fatal(err)
		}
		// The reclaimed set must be a suffix of the commit order: fluid
		// horizons drain in commit order, so the completed prefix is cut
		// and the rest keeps its relative (arrival) order.
		if len(reclaimed) == 0 {
			t.Fatalf("seed %d: nothing reclaimed at half-stream", seed)
		}
		suffix := committed[len(committed)-len(reclaimed):]
		for i := range reclaimed {
			if reclaimed[i] != suffix[i] {
				t.Fatalf("seed %d: reclaimed[%d] out of order", seed, i)
			}
		}
		for i := 1; i < len(reclaimed); i++ {
			if reclaimed[i].Arrival < reclaimed[i-1].Arrival {
				t.Fatalf("seed %d: reclaimed arrivals decrease at %d", seed, i)
			}
		}
	}
}

// TestAddNPUAfterFailureIsFresh: a scale-up after a failure must not
// inherit anything from the failed slot — zero horizon, empty ledger,
// routable immediately.
func TestAddNPUAfterFailureIsFresh(t *testing.T) {
	st := NewState(2)
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Commit(0, stateTask(i, int64(i*10), 50))
	}
	if _, err := st.Fail(0, 60); err != nil {
		t.Fatal(err)
	}
	fresh := st.AddNPU()
	if fresh != 2 {
		t.Fatalf("AddNPU appended index %d, want 2 (failed slots are never reused)", fresh)
	}
	if st.FreeAt(fresh) != 0 || st.InFlight(fresh, 1<<40) != 0 {
		t.Errorf("fresh backend carries state: freeAt=%d", st.FreeAt(fresh))
	}
	if !st.Routable(fresh) {
		t.Error("fresh backend not routable")
	}
	if st.Active() != 2 {
		t.Errorf("active = %d, want 2 (survivor plus scale-up)", st.Active())
	}
	// The fresh slot participates in the ledger: commit then fail it and
	// the work comes back.
	task := stateTask(99, 200, 40)
	st.Commit(fresh, task)
	reclaimed, err := st.Fail(fresh, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 1 || reclaimed[0] != task {
		t.Fatalf("fresh slot's ledger broken: reclaimed %v", reclaimed)
	}
}

// TestLeastQueuedPruneAcrossFailure checks the head-cursor in-flight
// count against a naive recount while a backend fails mid-stream (its
// horizons vanish) and the stream keeps long enough to trigger the
// compaction path on the survivors.
func TestLeastQueuedPruneAcrossFailure(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	router, err := NewRouter(LeastQueued)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(3)
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	// naive mirrors every commit per NPU and recounts from scratch.
	naive := make([][]int64, 3)
	naiveCount := func(i int, now int64) int {
		n := 0
		for _, h := range naive[i] {
			if h > now {
				n++
			}
		}
		return n
	}
	commit := func(target int, task *workload.Task) {
		start := st.FreeAt(target) // capture before Commit advances it
		if task.Arrival > start {
			start = task.Arrival
		}
		st.Commit(target, task)
		naive[target] = append(naive[target], start+task.EstimatedCycles)
	}
	var now int64
	failed := false
	for i := 0; i < 600; i++ {
		now += int64(rng.IntN(8))
		if !failed && i == 300 {
			if _, err := st.Fail(1, now); err != nil {
				t.Fatal(err)
			}
			naive[1] = nil
			failed = true
		}
		task := stateTask(i, now, int64(10+rng.IntN(60)))
		target := router.Decide(task, st)
		if target == 1 && failed {
			t.Fatalf("request %d routed to the failed NPU", i)
		}
		commit(target, task)
		for npu := 0; npu < 3; npu++ {
			if npu == 1 && failed {
				continue
			}
			if got, want := st.InFlight(npu, now), naiveCount(npu, now); got != want {
				t.Fatalf("request %d: InFlight(%d) = %d, naive recount %d", i, npu, got, want)
			}
		}
	}
	if !failed {
		t.Fatal("failure never injected")
	}
}
