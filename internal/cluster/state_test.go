package cluster

// state_test.go tests the fluid State directly — InFlight/Backlog edge
// cases previously covered only indirectly through Route equivalence —
// plus the dynamic NPU set (AddNPU/Retire) the autoscaling node session
// drives.

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// stateTask builds a minimal routable task: the State only reads
// Arrival and EstimatedCycles.
func stateTask(id int, arrival, est int64) *workload.Task {
	return &workload.Task{Task: &sched.Task{ID: id, Arrival: arrival, EstimatedCycles: est}}
}

func TestStateEmpty(t *testing.T) {
	st := NewState(3)
	if st.NPUs() != 3 || st.Active() != 3 {
		t.Fatalf("fresh state reports %d NPUs / %d active", st.NPUs(), st.Active())
	}
	for i := 0; i < 3; i++ {
		if n := st.InFlight(i, 0); n != 0 {
			t.Errorf("idle NPU %d reports %d in flight", i, n)
		}
		if b := st.Backlog(i, 0); b != 0 {
			t.Errorf("idle NPU %d reports backlog %d", i, b)
		}
		if st.Draining(i) {
			t.Errorf("fresh NPU %d draining", i)
		}
		if f := st.FreeAt(i); f != 0 {
			t.Errorf("idle NPU %d free at %d", i, f)
		}
	}
	// Backlog clamps at zero even when now is far past an idle horizon.
	if b := st.Backlog(0, 1<<40); b != 0 {
		t.Errorf("backlog went negative: %d", b)
	}
}

func TestStateCommitAdvancesHorizon(t *testing.T) {
	st := NewState(2)
	st.Commit(0, stateTask(0, 100, 50))
	if f := st.FreeAt(0); f != 150 {
		t.Fatalf("free-at after commit = %d, want 150", f)
	}
	// A commit arriving before the horizon queues behind it.
	st.Commit(0, stateTask(1, 120, 30))
	if f := st.FreeAt(0); f != 180 {
		t.Fatalf("queued commit horizon = %d, want 180", f)
	}
	// A commit arriving after the horizon restarts from its arrival.
	st.Commit(1, stateTask(2, 500, 10))
	if f := st.FreeAt(1); f != 510 {
		t.Fatalf("idle-gap commit horizon = %d, want 510", f)
	}
	if n := st.InFlight(0, 140); n != 2 {
		t.Errorf("in flight mid-queue = %d, want 2", n)
	}
	if b := st.Backlog(0, 140); b != 40 {
		t.Errorf("backlog mid-queue = %d, want 40", b)
	}
}

// TestStateInFlightPastAllHorizons drains everything and checks the
// counters bottom out (and stay there for later now values).
func TestStateInFlightPastAllHorizons(t *testing.T) {
	st := NewState(1)
	var now int64
	for i := 0; i < 10; i++ {
		st.Commit(0, stateTask(i, now, 20))
		now += 20
	}
	if n := st.InFlight(0, now); n != 0 {
		t.Fatalf("in flight past all horizons = %d, want 0", n)
	}
	if n := st.InFlight(0, now+1000); n != 0 {
		t.Fatalf("in flight long after drain = %d, want 0", n)
	}
	if b := st.Backlog(0, now+1000); b != 0 {
		t.Fatalf("backlog long after drain = %d, want 0", b)
	}
}

// TestStateInFlightPostCompaction pushes the drained prefix past the
// compaction threshold and verifies counts stay exact across the
// in-place shift.
func TestStateInFlightPostCompaction(t *testing.T) {
	st := NewState(1)
	const total = 200
	for i := 0; i < total; i++ {
		st.Commit(0, stateTask(i, int64(i*10), 10))
	}
	// Drain 150 of the 200 horizons: head (150) > 64 and head*2 >= len
	// (300 >= 200), so the next InFlight compacts.
	if n := st.InFlight(0, 150*10); n != total-150 {
		t.Fatalf("pre-compaction in flight = %d, want %d", n, total-150)
	}
	if got := len(st.horizons[0]); got != total-150 {
		t.Fatalf("compaction kept %d horizons, want %d", got, total-150)
	}
	if st.heads[0] != 0 {
		t.Fatalf("compaction left head at %d", st.heads[0])
	}
	// Counts stay exact after the shift, including for later commits.
	st.Commit(0, stateTask(total, total*10, 10))
	if n := st.InFlight(0, 150*10); n != total-150+1 {
		t.Errorf("post-compaction in flight = %d, want %d", n, total-150+1)
	}
	if n := st.InFlight(0, (total+1)*10); n != 0 {
		t.Errorf("post-compaction full drain = %d, want 0", n)
	}
}

func TestStateAddAndRetire(t *testing.T) {
	st := NewState(1)
	if err := st.Retire(0); err == nil {
		t.Fatal("retiring the last active NPU should be refused")
	}
	idx := st.AddNPU()
	if idx != 1 || st.NPUs() != 2 || st.Active() != 2 {
		t.Fatalf("AddNPU -> index %d, %d NPUs, %d active", idx, st.NPUs(), st.Active())
	}
	st.Commit(idx, stateTask(0, 0, 100))
	if err := st.Retire(idx); err != nil {
		t.Fatal(err)
	}
	if !st.Draining(idx) || st.Active() != 1 {
		t.Fatalf("retired NPU not draining (active %d)", st.Active())
	}
	// Draining keeps the fluid horizons: the routed work still counts.
	if n := st.InFlight(idx, 50); n != 1 {
		t.Errorf("draining NPU lost its in-flight work (%d)", n)
	}
	if err := st.Retire(idx); err == nil {
		t.Error("double retire should error")
	}
	if err := st.Retire(99); err == nil {
		t.Error("retire of unknown NPU should error")
	}
	if err := st.Retire(0); err == nil {
		t.Error("retiring the last active NPU should be refused")
	}
}

// TestRoutersSkipDraining proves no router sends new work to a retired
// backend, while a fixed fleet (nothing draining) keeps the original
// decisions.
func TestRoutersSkipDraining(t *testing.T) {
	for _, policy := range []RoutingPolicy{RoundRobin, LeastQueued, LeastWork} {
		router, err := NewRouter(policy)
		if err != nil {
			t.Fatal(err)
		}
		st := NewState(3)
		if err := st.Retire(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			task := stateTask(i, int64(i*5), 40)
			target := router.Decide(task, st)
			if target == 1 {
				t.Fatalf("%v routed to draining NPU 1 on request %d", policy, i)
			}
			st.Commit(target, task)
		}
	}
}

// TestRoundRobinResumesAddedNPU checks a scale-up joins the rotation:
// after AddNPU every active backend receives a share.
func TestRoundRobinResumesAddedNPU(t *testing.T) {
	router, err := NewRouter(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(2)
	counts := make(map[int]int)
	for i := 0; i < 4; i++ {
		task := stateTask(i, int64(i), 10)
		target := router.Decide(task, st)
		counts[target]++
		st.Commit(target, task)
	}
	st.AddNPU()
	for i := 4; i < 10; i++ {
		task := stateTask(i, int64(i), 10)
		target := router.Decide(task, st)
		counts[target]++
		st.Commit(target, task)
	}
	if counts[2] == 0 {
		t.Errorf("added NPU never entered the rotation: %v", counts)
	}
}
