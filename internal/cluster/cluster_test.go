package cluster

import (
	"testing"

	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/workload"
)

func genTasks(t *testing.T, n, run int) []*workload.Task {
	t.Helper()
	gen, err := workload.NewGenerator(npu.DefaultConfig(), 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := gen.Generate(workload.Spec{Tasks: n}, workload.RNGFor(0xC105, run))
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func defaultOpts(npus int, routing RoutingPolicy) Options {
	return Options{
		NPUs: npus, Routing: routing,
		NPU: npu.DefaultConfig(), Sched: sched.DefaultConfig(),
		LocalPolicy: "PREMA", Preemptive: true, Selector: "dynamic",
	}
}

func TestRoutePolicies(t *testing.T) {
	tasks := genTasks(t, 12, 1)
	for _, routing := range []RoutingPolicy{RoundRobin, LeastQueued, LeastWork} {
		buckets, err := Route(defaultOpts(3, routing), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if len(buckets) != 3 {
			t.Fatalf("%v: %d buckets", routing, len(buckets))
		}
		total := 0
		for _, b := range buckets {
			total += len(b)
		}
		if total != 12 {
			t.Errorf("%v: routed %d of 12 tasks", routing, total)
		}
	}
}

func TestRoundRobinBalancesCounts(t *testing.T) {
	tasks := genTasks(t, 12, 2)
	buckets, err := Route(defaultOpts(4, RoundRobin), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buckets {
		if len(b) != 3 {
			t.Errorf("NPU %d got %d tasks, want 3", i, len(b))
		}
	}
}

func TestLeastWorkBalancesBacklog(t *testing.T) {
	// All tasks arrive at once; least-work routing should spread the
	// estimated cycles far more evenly than round robin does when task
	// lengths differ wildly.
	gen, err := workload.NewGenerator(npu.DefaultConfig(), 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	var tasks []*workload.Task
	models := []string{"RNN-MT2", "CNN-MN", "CNN-MN", "CNN-MN", "RNN-MT1", "CNN-GN", "CNN-GN", "CNN-GN"}
	for i, m := range models {
		task, err := gen.InstanceByName(i, m, 1, sched.Medium, 0, workload.RNGFor(3, i))
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	imbalance := func(routing RoutingPolicy) float64 {
		buckets, err := Route(defaultOpts(2, routing), tasks)
		if err != nil {
			t.Fatal(err)
		}
		var w [2]float64
		for i, b := range buckets {
			for _, task := range b {
				w[i] += float64(task.EstimatedCycles)
			}
		}
		hi, lo := w[0], w[1]
		if lo > hi {
			hi, lo = lo, hi
		}
		if lo == 0 {
			return 1e9
		}
		return hi / lo
	}
	if lw, rr := imbalance(LeastWork), imbalance(RoundRobin); lw >= rr {
		t.Errorf("least-work imbalance %.2f should beat round robin %.2f", lw, rr)
	}
}

func TestRunValidation(t *testing.T) {
	tasks := genTasks(t, 4, 3)
	bad := defaultOpts(0, RoundRobin)
	if _, err := Run(bad, tasks); err == nil {
		t.Error("zero NPUs should be rejected")
	}
	badPolicy := defaultOpts(2, RoundRobin)
	badPolicy.LocalPolicy = "NOPE"
	if _, err := Run(badPolicy, tasks); err == nil {
		t.Error("unknown local policy should be rejected")
	}
	badRoute := defaultOpts(2, RoutingPolicy(42))
	if _, err := Run(badRoute, tasks); err == nil {
		t.Error("unknown routing policy should be rejected")
	}
}

func TestRunCompletesEverything(t *testing.T) {
	tasks := genTasks(t, 16, 4)
	res, err := Run(defaultOpts(4, LeastWork), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 16 {
		t.Fatalf("completed %d of 16 tasks", len(res.Tasks))
	}
	for _, task := range res.Tasks {
		if task.Completion < 0 {
			t.Error("unfinished task in cluster result")
		}
	}
	if res.Metrics.ANTT < 1 {
		t.Errorf("cluster ANTT %v below 1", res.Metrics.ANTT)
	}
	used := 0
	for _, s := range res.PerNPU {
		used += s.Tasks
		if s.BusyFrac < 0 || s.BusyFrac > 1 {
			t.Errorf("busy fraction %v outside [0,1]", s.BusyFrac)
		}
	}
	if used != 16 {
		t.Errorf("per-NPU stats account for %d tasks", used)
	}
}

func TestMoreNPUsImproveLatency(t *testing.T) {
	// Scaling from 1 to 4 NPUs over the same 16-task offered load must
	// shrink ANTT substantially.
	antt := func(npus int) float64 {
		tasks := genTasks(t, 16, 5)
		res, err := Run(defaultOpts(npus, LeastWork), tasks)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.ANTT
	}
	one, four := antt(1), antt(4)
	if four >= one/1.5 {
		t.Errorf("4-NPU ANTT %.2f should be well below 1-NPU %.2f", four, one)
	}
}

func TestPREMAHelpsInsideCluster(t *testing.T) {
	// Even with a good router, the NPU-local scheduler still matters
	// under contention: PREMA should beat FCFS on ANTT at 2 NPUs.
	run := func(policy string, preemptive bool) float64 {
		opt := defaultOpts(2, LeastWork)
		opt.LocalPolicy = policy
		opt.Preemptive = preemptive
		var sum float64
		const runs = 5
		for r := 0; r < runs; r++ {
			tasks := genTasks(t, 12, 100+r)
			res, err := Run(opt, tasks)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Metrics.ANTT / runs
		}
		return sum
	}
	fcfs := run("FCFS", false)
	prema := run("PREMA", true)
	if prema >= fcfs {
		t.Errorf("cluster-local PREMA ANTT %.2f should beat FCFS %.2f", prema, fcfs)
	}
}

func TestRoutingPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastQueued.String() != "least-queued" ||
		LeastWork.String() != "least-work" {
		t.Error("routing policy names wrong")
	}
	if RoutingPolicy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}
