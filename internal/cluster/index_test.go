package cluster

// index_test.go proves the indexed routers (index.go) decision-for-
// decision identical to the historic linear scans, which are retained
// here as references — the same pruned-vs-naive pattern router_test.go
// uses for the fluid horizons. The churn test drives both through
// random chaos events and autoscale-style add/retire sequences; the
// edge-case tests pin the index maintenance paths (fail-then-AddNPU
// slot freshness, cordon/uncordon re-insertion ordering, retire while a
// backend sits at a heap head).

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/workload"
)

// scanLeastQueued is the historic O(n) LeastQueued decision, retained
// as the identity reference for the indexed router.
func scanLeastQueued(t *workload.Task, st *State) int {
	best, bestN := 0, int(1<<30)
	for i := 0; i < st.NPUs(); i++ {
		if !st.Routable(i) {
			continue
		}
		if n := st.InFlight(i, t.Arrival); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// scanLeastWorkBacklog is the historic O(n) LeastWork decision: least
// fluid backlog, ties to the lowest index. It is speed-blind, so it is
// the reference only on homogeneous fleets.
func scanLeastWorkBacklog(t *workload.Task, st *State) int {
	best, bestWork := 0, int64(1<<62)
	for i := 0; i < st.NPUs(); i++ {
		if !st.Routable(i) {
			continue
		}
		if w := st.Backlog(i, t.Arrival); w < bestWork {
			best, bestWork = i, w
		}
	}
	return best
}

// scanLeastWork is the O(n) normalized-completion-time scan the indexed
// work index must reproduce: backlog + estimate x speed, ties to the
// lowest index. On a homogeneous fleet the estimate term is the same
// constant for every backend, so it decides exactly like
// scanLeastWorkBacklog (the churn test asserts all three agree there).
func scanLeastWork(t *workload.Task, st *State) int {
	best, bestKey := -1, 0.0
	for i := 0; i < st.NPUs(); i++ {
		if !st.Routable(i) {
			continue
		}
		key := float64(st.Backlog(i, t.Arrival)) + float64(t.EstimatedCycles)*st.Speed(i)
		if best < 0 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func scanRouterFor(p RoutingPolicy) func(*workload.Task, *State) int {
	if p == LeastQueued {
		return scanLeastQueued
	}
	return scanLeastWork
}

// TestIndexedRoutersMatchScanUnderChurn drives the indexed router and
// the retained linear scan over one shared state through a long stream
// interleaved with chaos events (fail with reclaim re-routing, cordon,
// uncordon) and autoscale churn (AddNPU, retire), on homogeneous and
// tiered fleets, and requires every single decision to match.
func TestIndexedRoutersMatchScanUnderChurn(t *testing.T) {
	cases := []struct {
		name   string
		policy RoutingPolicy
		speeds []float64
	}{
		{"least-queued", LeastQueued, []float64{1}},
		{"least-queued-tiered", LeastQueued, []float64{1, 2, 1.5}},
		{"least-work", LeastWork, []float64{1}},
		{"least-work-tiered", LeastWork, []float64{1, 2, 1.5}},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				churnIdentity(t, tc.policy, tc.speeds, seed)
			})
		}
	}
}

func churnIdentity(t *testing.T, policy RoutingPolicy, speeds []float64, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xC4A05))
	st := NewState(0)
	for i := 0; i < 4; i++ {
		st.AddNPUWithSpeed(speeds[i%len(speeds)])
	}
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	indexed, err := NewRouter(policy)
	if err != nil {
		t.Fatal(err)
	}
	scan := scanRouterFor(policy)
	homogeneous := len(speeds) == 1 && speeds[0] == 1

	var now int64
	id := 0
	decide := func(task *workload.Task) {
		t.Helper()
		want := scan(task, st)
		if homogeneous && policy == LeastWork {
			if b := scanLeastWorkBacklog(task, st); b != want {
				t.Fatalf("task %d: normalized scan chose %d, historic backlog scan chose %d",
					task.ID, want, b)
			}
		}
		got := indexed.Decide(task, st)
		if got != want {
			t.Fatalf("task %d (arrival %d): indexed router chose %d, scan reference chose %d",
				task.ID, task.Arrival, got, want)
		}
		st.Commit(got, task)
	}

	decisions := 0
	for step := 0; step < 5000; step++ {
		switch r := rng.IntN(100); {
		case r < 80: // arrival
			now += int64(rng.ExpFloat64() * 120_000)
			task := stateTask(id, now, 10_000+int64(rng.ExpFloat64()*400_000))
			id++
			decide(task)
			decisions++
		case r < 85: // autoscale up
			if st.NPUs() < 64 {
				st.AddNPUWithSpeed(speeds[rng.IntN(len(speeds))])
			}
		case r < 90: // autoscale down (guards reject invalid picks)
			_ = st.Retire(rng.IntN(st.NPUs()))
		case r < 94:
			_ = st.Cordon(rng.IntN(st.NPUs()))
		case r < 97:
			_ = st.Uncordon(rng.IntN(st.NPUs()))
		default: // failure: reclaimed in-flight work re-routes at the failure instant
			if reclaimed, err := st.Fail(rng.IntN(st.NPUs()), now); err == nil {
				for _, lost := range reclaimed {
					decide(stateTask(lost.ID, now, lost.EstimatedCycles))
					decisions++
				}
			}
		}
	}
	if decisions < 3000 {
		t.Fatalf("churn produced only %d routing decisions", decisions)
	}
}

// TestIndexFailThenAddNPUSlotFreshness pins the epoch guard: drain
// events queued against a failed slot's old life must never corrupt the
// counters, and a fresh AddNPU slot starts empty and immediately wins.
func TestIndexFailThenAddNPUSlotFreshness(t *testing.T) {
	st := NewState(3)
	if err := st.TrackWork(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(LeastQueued)
	if err != nil {
		t.Fatal(err)
	}
	// Two requests per backend, long horizons.
	for i := 0; i < 6; i++ {
		task := stateTask(i, 0, 1_000_000)
		st.Commit(r.Decide(task, st), task)
	}
	reclaimed, err := st.Fail(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 2 {
		t.Fatalf("failing NPU 1 reclaimed %d tasks, want 2", len(reclaimed))
	}
	for _, lost := range reclaimed {
		task := stateTask(lost.ID, 0, lost.EstimatedCycles)
		target := r.Decide(task, st)
		if target == 1 {
			t.Fatal("reclaimed work re-routed onto the failed backend")
		}
		st.Commit(target, task)
	}
	fresh := st.AddNPU()
	task := stateTask(100, 0, 1_000_000)
	if got := r.Decide(task, st); got != fresh {
		t.Fatalf("after AddNPU the empty fresh slot should win, got %d want %d", got, fresh)
	}
	st.Commit(fresh, task)
	// Decide far past every horizon the failed slot ever queued: its
	// stale drain events are due now, and the epoch guard must drop
	// them instead of driving the dead slot's count negative.
	late := stateTask(101, 50_000_000, 1_000)
	if got := r.Decide(late, st); got != 0 {
		t.Fatalf("late decision chose %d, want 0 (all drained, lowest index)", got)
	}
	if c := st.qidx.count[1]; c != 0 {
		t.Fatalf("failed slot's count is %d after its stale drain events came due, want 0", c)
	}
}

// TestIndexCordonUncordonReinsertion pins re-insertion ordering: a
// backend whose work drained while it was cordoned re-enters the
// rotation with an accurate (zero) queue depth and the historic
// lowest-index tie rule.
func TestIndexCordonUncordonReinsertion(t *testing.T) {
	t.Run("least-queued", func(t *testing.T) {
		st := NewState(3)
		r, err := NewRouter(LeastQueued)
		if err != nil {
			t.Fatal(err)
		}
		// Prime the index, then shape the queues explicitly:
		// counts 0:2, 1:1 (short horizon), 2:3.
		first := stateTask(0, 0, 1_000)
		if got := r.Decide(first, st); got != 0 {
			t.Fatalf("first decision on an idle node chose %d, want 0", got)
		}
		st.Commit(0, first)
		st.Commit(0, stateTask(1, 0, 10_000_000))
		st.Commit(1, stateTask(2, 0, 1_000))
		st.Commit(2, stateTask(3, 0, 10_000_000))
		st.Commit(2, stateTask(4, 0, 10_000_000))
		st.Commit(2, stateTask(5, 0, 10_000_000))
		if err := st.Cordon(1); err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(stateTask(6, 100, 10_000_000), st); got != 0 {
			t.Fatalf("with 1 cordoned the decision should fall to 0 (2 queued vs 3), got %d", got)
		}
		// Let backend 1's only request drain while it is out of
		// rotation, then return it: it must win with a zero count.
		if err := st.Uncordon(1); err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(stateTask(7, 5_000, 10_000_000), st); got != 1 {
			t.Fatalf("uncordoned backend with drained queue should win, got %d", got)
		}
	})
	t.Run("least-work", func(t *testing.T) {
		st := NewState(3)
		r, err := NewRouter(LeastWork)
		if err != nil {
			t.Fatal(err)
		}
		first := stateTask(0, 0, 10_000_000)
		if got := r.Decide(first, st); got != 0 {
			t.Fatalf("first decision on an idle node chose %d, want 0", got)
		}
		st.Commit(0, first)
		st.Commit(1, stateTask(1, 0, 1_000))
		st.Commit(2, stateTask(2, 0, 1_000))
		if err := st.Cordon(1); err != nil {
			t.Fatal(err)
		}
		// Both 1 and 2 drain by now=5000; only 2 is routable.
		if got := r.Decide(stateTask(3, 5_000, 1_000), st); got != 2 {
			t.Fatalf("with 1 cordoned the idle decision should be 2, got %d", got)
		}
		if err := st.Uncordon(1); err != nil {
			t.Fatal(err)
		}
		// 1 and 2 are both idle again: the lowest-index tie rule must
		// hold across the re-insertion.
		if got := r.Decide(stateTask(4, 6_000, 1_000), st); got != 1 {
			t.Fatalf("after uncordon the idle tie should go to 1 (lowest index), got %d", got)
		}
	})
}

// TestIndexRetireWhileHead retires the backend currently sitting at a
// decision heap's root — the removal path that exercises sift-down from
// the top — and checks the rotation falls to the next-best backend.
func TestIndexRetireWhileHead(t *testing.T) {
	t.Run("least-queued", func(t *testing.T) {
		st := NewState(3)
		r, err := NewRouter(LeastQueued)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(stateTask(0, 0, 1_000), st); got != 0 {
			t.Fatalf("idle node first decision chose %d, want 0", got)
		}
		// 0 is the heap head (count 0, lowest index); retire it.
		if err := st.Retire(0); err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(stateTask(1, 0, 1_000), st); got != 1 {
			t.Fatalf("after retiring the head the decision should be 1, got %d", got)
		}
	})
	t.Run("least-work-busy-head", func(t *testing.T) {
		st := NewState(3)
		r, err := NewRouter(LeastWork)
		if err != nil {
			t.Fatal(err)
		}
		first := stateTask(0, 0, 100_000)
		if got := r.Decide(first, st); got != 0 {
			t.Fatalf("idle node first decision chose %d, want 0", got)
		}
		st.Commit(0, first)
		st.Commit(1, stateTask(1, 0, 200_000))
		st.Commit(2, stateTask(2, 0, 300_000))
		// At now=50_000 every backend is busy and 0 holds the least
		// backlog — the busy heap's root. Retire it mid-stream.
		if err := st.Retire(0); err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(stateTask(3, 50_000, 1_000), st); got != 1 {
			t.Fatalf("after retiring the busy head the decision should be 1, got %d", got)
		}
	})
}

// loadedStream scales the synthetic stream's offered load with the
// fleet size (inter-arrival mean = mean service time / fleet) so the
// per-decision benchmarks measure a fleet under load, not an idle one.
func loadedStream(n int, seed uint64, npus int) []*workload.Task {
	rng := rand.New(rand.NewPCG(seed, 0x10AD))
	tasks := make([]*workload.Task, n)
	gap := 510_000.0 / float64(npus)
	var at int64
	for i := range tasks {
		at += int64(rng.ExpFloat64() * gap)
		tasks[i] = stateTask(i, at, 10_000+int64(rng.ExpFloat64()*500_000))
	}
	return tasks
}

func benchFleetState(npus int, tiered bool) *State {
	if !tiered {
		return NewState(npus)
	}
	st := NewState(0)
	for i := 0; i < npus; i++ {
		if i%10 < 7 {
			st.AddNPUWithSpeed(1)
		} else {
			st.AddNPUWithSpeed(2)
		}
	}
	return st
}

// BenchmarkRouterDecideScan measures the retained linear-scan reference
// at the same fleet sizes as BenchmarkRouterDecide: the O(n) per-
// decision cost the indexed routers replace.
func BenchmarkRouterDecideScan(b *testing.B) {
	for _, npus := range []int{100, 1000, 10000} {
		stream := loadedStream(16384, 0xD0, npus)
		for _, policy := range []RoutingPolicy{LeastQueued, LeastWork} {
			scan := scanRouterFor(policy)
			b.Run(fmt.Sprintf("%s/npus=%d", policy, npus), func(b *testing.B) {
				st := NewState(npus)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := i % len(stream)
					if k == 0 && i > 0 {
						b.StopTimer()
						st = NewState(npus)
						b.StartTimer()
					}
					t := stream[k]
					st.Commit(scan(t, st), t)
				}
			})
		}
	}
}
