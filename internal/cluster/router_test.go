package cluster

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// syntheticStream builds a routing-only task stream (arrival and
// estimated cycles are all the router reads) with heavy-tailed service
// times, sorted by arrival as Route orders it.
func syntheticStream(n int, seed uint64) []*workload.Task {
	rng := rand.New(rand.NewPCG(seed, 0x707E))
	tasks := make([]*workload.Task, n)
	var at int64
	for i := range tasks {
		at += int64(rng.ExpFloat64() * 50_000)
		est := int64(10_000 + rng.ExpFloat64()*500_000)
		tasks[i] = &workload.Task{Task: &sched.Task{ID: i, Arrival: at, EstimatedCycles: est}}
	}
	return tasks
}

// naiveRoute is the pre-extraction reference router: the same fluid
// model with LeastQueued rescanning every previously routed request's
// completion horizon per arrival (O(n²) across the stream). The
// incremental Router must reproduce its buckets exactly.
func naiveRoute(opt Options, ordered []*workload.Task) [][]*workload.Task {
	buckets := make([][]*workload.Task, opt.NPUs)
	freeAt := make([]int64, opt.NPUs)
	queued := make([][]int64, opt.NPUs)
	rr := 0
	for _, t := range ordered {
		var target int
		switch opt.Routing {
		case RoundRobin:
			target = rr % opt.NPUs
			rr++
		case LeastQueued:
			best, bestN := 0, int(1<<30)
			for i := range queued {
				n := 0
				for _, done := range queued[i] {
					if done > t.Arrival {
						n++
					}
				}
				if n < bestN {
					best, bestN = i, n
				}
			}
			target = best
		case LeastWork:
			best, bestWork := 0, int64(1<<62)
			for i := range freeAt {
				backlog := freeAt[i] - t.Arrival
				if backlog < 0 {
					backlog = 0
				}
				if backlog < bestWork {
					best, bestWork = i, backlog
				}
			}
			target = best
		}
		buckets[target] = append(buckets[target], t)
		start := freeAt[target]
		if t.Arrival > start {
			start = t.Arrival
		}
		freeAt[target] = start + t.EstimatedCycles
		queued[target] = append(queued[target], freeAt[target])
	}
	return buckets
}

// TestRouterMatchesNaiveReference proves the extracted incremental
// Router reproduces the pre-extraction routing byte-for-byte: every
// bucket holds the same tasks in the same order, for every policy, node
// size, and several heavy-tailed streams — including the pruned
// LeastQueued path whose compaction must not change a single decision.
func TestRouterMatchesNaiveReference(t *testing.T) {
	for _, routing := range []RoutingPolicy{RoundRobin, LeastQueued, LeastWork} {
		for _, npus := range []int{1, 2, 3, 8} {
			for seed := uint64(0); seed < 3; seed++ {
				stream := syntheticStream(600, seed)
				opt := Options{NPUs: npus, Routing: routing}
				got, err := Route(opt, stream)
				if err != nil {
					t.Fatal(err)
				}
				want := naiveRoute(opt, stream)
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("%v npus=%d seed=%d: NPU %d got %d tasks, want %d",
							routing, npus, seed, i, len(got[i]), len(want[i]))
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%v npus=%d seed=%d: NPU %d slot %d diverges (task %d vs %d)",
								routing, npus, seed, i, j, got[i][j].ID, want[i][j].ID)
						}
					}
				}
			}
		}
	}
}

// TestNewRouterRejectsUnknown covers the extraction's error path.
func TestNewRouterRejectsUnknown(t *testing.T) {
	if _, err := NewRouter(RoutingPolicy(42)); err == nil {
		t.Error("unknown routing policy should be rejected")
	}
}

// TestStateInFlightPrunes exercises the head-cursor drain directly: a
// horizon counts while undrained, stops counting once the clock passes
// it, and compaction keeps the count intact.
func TestStateInFlightPrunes(t *testing.T) {
	st := NewState(1)
	for i := 0; i < 200; i++ {
		st.Commit(0, &workload.Task{Task: &sched.Task{ID: i, Arrival: int64(i), EstimatedCycles: 10}})
	}
	// Serial horizons end at 10, 20, ..., 2000: at cycle 995 the first
	// 99 are drained.
	if got := st.InFlight(0, 995); got != 101 {
		t.Errorf("in-flight at 995: got %d, want 101", got)
	}
	if got := st.InFlight(0, 2000); got != 0 {
		t.Errorf("in-flight at 2000: got %d, want 0", got)
	}
	// Fully drained state accepts new work.
	st.Commit(0, &workload.Task{Task: &sched.Task{ID: 200, Arrival: 3000, EstimatedCycles: 10}})
	if got := st.InFlight(0, 3000); got != 1 {
		t.Errorf("in-flight after recommit: got %d, want 1", got)
	}
}

// BenchmarkRouteLeastQueued measures the pruned-horizon router; the
// Naive variant is the pre-extraction per-arrival rescan. The pruned
// path is O(n) across the stream, the naive one O(n²) — at 8k requests
// the gap is two orders of magnitude.
func BenchmarkRouteLeastQueued(b *testing.B) {
	for _, n := range []int{1000, 8000} {
		stream := syntheticStream(n, 1)
		opt := Options{NPUs: 4, Routing: LeastQueued}
		b.Run(fmt.Sprintf("pruned-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Route(opt, stream); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveRoute(opt, stream)
			}
		})
	}
}

// BenchmarkRouterDecide measures one incremental routing decision
// (Decide + Commit) per op, the unit cost every streamed request pays,
// across production fleet sizes; bench.sh tracks it into
// BENCH_serving.json. The offered load scales with the fleet
// (loadedStream), so every size is measured under pressure. The
// least-work-tiered variant runs the speed-aware multi-class decision
// on a 70/30 fast/slow fleet. BenchmarkRouterDecideScan (index_test.go)
// is the retained O(n) reference at the same sizes.
func BenchmarkRouterDecide(b *testing.B) {
	for _, npus := range []int{100, 1000, 10000} {
		stream := loadedStream(16384, 0xD0, npus)
		for _, tc := range []struct {
			name   string
			policy RoutingPolicy
			tiered bool
		}{
			{"round-robin", RoundRobin, false},
			{"least-queued", LeastQueued, false},
			{"least-work", LeastWork, false},
			{"least-work-tiered", LeastWork, true},
		} {
			b.Run(fmt.Sprintf("%s/npus=%d", tc.name, npus), func(b *testing.B) {
				router, err := NewRouter(tc.policy)
				if err != nil {
					b.Fatal(err)
				}
				st := benchFleetState(npus, tc.tiered)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := i % len(stream)
					if k == 0 && i > 0 {
						// Wrapping the stream would rewind the arrival
						// clock; restart the fluid state off the timer.
						b.StopTimer()
						if router, err = NewRouter(tc.policy); err != nil {
							b.Fatal(err)
						}
						st = benchFleetState(npus, tc.tiered)
						b.StartTimer()
					}
					t := stream[k]
					st.Commit(router.Decide(t, st), t)
				}
			})
		}
	}
}
