package preempt

import (
	"testing"

	"repro/internal/npu"
)

func testProgram(cycles []int32, live []int64) *npu.Program {
	p := &npu.Program{Model: "t", Batch: 1}
	for i, c := range cycles {
		lb := int64(0)
		if i < len(live) {
			lb = live[i]
		}
		p.Instrs = append(p.Instrs, npu.Instr{Op: npu.GEMMOp, Layer: 0, Cycles: c, LiveBytes: lb})
		p.TotalCycles += int64(c)
	}
	return p
}

func TestMechanismString(t *testing.T) {
	if Checkpoint.String() != "CHECKPOINT" || Kill.String() != "KILL" || Drain.String() != "DRAIN" {
		t.Error("mechanism names wrong")
	}
	if Mechanism(9).String() == "" {
		t.Error("unknown mechanism should render")
	}
}

func TestApplyCheckpointMidInstruction(t *testing.T) {
	cfg := npu.DefaultConfig()
	prog := testProgram([]int32{100, 100}, []int64{1 << 20, 2 << 20})
	exec := npu.NewExecution(prog)
	exec.Advance(130) // 30 cycles into the second instruction

	cost := Apply(cfg, Checkpoint, exec)
	if cost.Mechanism != Checkpoint {
		t.Fatal("wrong mechanism recorded")
	}
	// The in-flight instruction must run to its commit boundary first.
	if cost.BoundaryCycles != 70 {
		t.Errorf("BoundaryCycles = %d, want 70", cost.BoundaryCycles)
	}
	if exec.Executed() != 200 {
		t.Errorf("execution should have advanced to the boundary: %d", exec.Executed())
	}
	// At the boundary after instruction 2, its live bytes are saved.
	if cost.SavedBytes != 2<<20 {
		t.Errorf("SavedBytes = %d, want 2MB", cost.SavedBytes)
	}
	if cost.SaveCycles != cfg.CheckpointCycles(2<<20) {
		t.Errorf("SaveCycles = %d", cost.SaveCycles)
	}
	if cost.Latency() != cost.BoundaryCycles+cost.SaveCycles {
		t.Error("latency must be boundary + save")
	}
	if cost.WastedCycles != 0 {
		t.Error("checkpoint wastes nothing")
	}
}

func TestApplyCheckpointAtBoundary(t *testing.T) {
	cfg := npu.DefaultConfig()
	prog := testProgram([]int32{50, 50}, []int64{4096, 8192})
	exec := npu.NewExecution(prog)
	exec.Advance(50) // exactly at the first commit

	cost := Apply(cfg, Checkpoint, exec)
	if cost.BoundaryCycles != 0 {
		t.Errorf("BoundaryCycles at commit = %d, want 0", cost.BoundaryCycles)
	}
	if cost.SavedBytes != 4096 {
		t.Errorf("SavedBytes = %d, want 4096 (state after instr 0)", cost.SavedBytes)
	}
}

func TestApplyKill(t *testing.T) {
	cfg := npu.DefaultConfig()
	prog := testProgram([]int32{100, 100}, nil)
	exec := npu.NewExecution(prog)
	exec.Advance(150)

	cost := Apply(cfg, Kill, exec)
	if cost.Latency() != 0 {
		t.Errorf("KILL latency = %d, want 0 (Section IV-C)", cost.Latency())
	}
	if cost.WastedCycles != 150 {
		t.Errorf("WastedCycles = %d, want 150", cost.WastedCycles)
	}
	if cost.SavedBytes != 0 || cost.SaveCycles != 0 {
		t.Error("KILL must not checkpoint")
	}
	if exec.Executed() != 0 {
		t.Error("KILL must reset the execution to restart from scratch")
	}
}

func TestApplyDrain(t *testing.T) {
	cfg := npu.DefaultConfig()
	prog := testProgram([]int32{100}, nil)
	exec := npu.NewExecution(prog)
	exec.Advance(10)

	cost := Apply(cfg, Drain, exec)
	if cost.Latency() != 0 {
		t.Errorf("DRAIN preemption latency = %d, want 0 (Figure 5)", cost.Latency())
	}
	if exec.Executed() != 10 {
		t.Error("DRAIN must leave the execution untouched")
	}
}

func TestApplyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mechanism should panic")
		}
	}()
	Apply(npu.DefaultConfig(), Mechanism(42), npu.NewExecution(testProgram([]int32{1}, nil)))
}

func TestRestoreCycles(t *testing.T) {
	cfg := npu.DefaultConfig()
	if RestoreCycles(cfg, 0) != 0 {
		t.Error("restoring nothing should be free")
	}
	if RestoreCycles(cfg, 1<<20) != cfg.CheckpointCycles(1<<20) {
		t.Error("restore should mirror checkpoint cost")
	}
}

func TestContextTableBits(t *testing.T) {
	// Section VI-F: 64-bit x 7 fields = 448 bits per task; 16 tasks =
	// 7168 bits.
	if ContextTableEntryBits != 448 {
		t.Errorf("entry bits = %d, want 448", ContextTableEntryBits)
	}
	if got := ContextTableBits(16); got != 448*16 {
		t.Errorf("16-task table = %d bits, want %d", got, 448*16)
	}
}

func TestApplyKillLayer(t *testing.T) {
	cfg := npu.DefaultConfig()
	p := &npu.Program{Model: "kl", Batch: 1, Instrs: []npu.Instr{
		{Op: npu.GEMMOp, Layer: 0, Cycles: 100},
		{Op: npu.GEMMOp, Layer: 1, Cycles: 100},
		{Op: npu.GEMMOp, Layer: 1, Cycles: 100},
	}, TotalCycles: 300}
	exec := npu.NewExecution(p)
	exec.Advance(250) // 150 cycles into layer 1
	cost := Apply(cfg, KillLayer, exec)
	if cost.Mechanism != KillLayer {
		t.Fatal("wrong mechanism")
	}
	if cost.Latency() != 0 {
		t.Error("KILL_LAYER should have zero preemption latency")
	}
	if cost.WastedCycles != 150 {
		t.Errorf("wasted = %d, want the in-flight layer's 150", cost.WastedCycles)
	}
	if exec.Executed() != 100 {
		t.Errorf("layer-0 progress (100) should survive, got %d", exec.Executed())
	}
}

func TestKillLayerWastesLessThanKill(t *testing.T) {
	cfg := npu.DefaultConfig()
	build := func() *npu.Execution {
		p := &npu.Program{Model: "x", Batch: 1, Instrs: []npu.Instr{
			{Op: npu.GEMMOp, Layer: 0, Cycles: 1000},
			{Op: npu.GEMMOp, Layer: 1, Cycles: 1000},
		}, TotalCycles: 2000}
		e := npu.NewExecution(p)
		e.Advance(1500)
		return e
	}
	full := Apply(cfg, Kill, build())
	layer := Apply(cfg, KillLayer, build())
	if layer.WastedCycles >= full.WastedCycles {
		t.Errorf("layer-granularity restart (%d) should waste less than scratch (%d)",
			layer.WastedCycles, full.WastedCycles)
	}
}
