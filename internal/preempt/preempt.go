// Package preempt implements the three NPU preemption mechanisms of
// Section IV: CHECKPOINT (save the live on-chip context to memory and
// context-switch), KILL (terminate immediately, discarding in-flight work;
// the inference later restarts from scratch), and DRAIN (let the current
// inference run to completion before the preempting task is scheduled).
//
// The mechanism costs follow Section IV-C/D: CHECKPOINT pays a DMA burst
// proportional to the live output activations in UBUF/ACCQ (tens of
// microseconds at worst), KILL pays nothing up front but wastes all
// executed cycles, and DRAIN pays nothing but delays the preempting task
// by the current task's remaining execution time.
package preempt

import (
	"fmt"

	"repro/internal/npu"
)

// Mechanism identifies a preemption mechanism.
type Mechanism int

const (
	// Checkpoint saves the preempted task's context and context
	// switches (Section IV-C).
	Checkpoint Mechanism = iota
	// Kill terminates the running inference without checkpointing.
	Kill
	// Drain waits for the running inference to finish; strictly
	// speaking not a preemption, but PREMA leverages it as a
	// scheduling tool (Algorithm 3).
	Drain
	// KillLayer terminates immediately like Kill but re-executes only
	// from the start of the in-flight layer rather than from scratch —
	// the milder restart granularity footnote 2 of the paper permits
	// (preemption points on tile boundaries). Provided as an ablation
	// of the KILL design point.
	KillLayer
)

var mechNames = [...]string{"CHECKPOINT", "KILL", "DRAIN", "KILL_LAYER"}

// String returns the paper's name for the mechanism.
func (m Mechanism) String() string {
	if int(m) >= 0 && int(m) < len(mechNames) {
		return mechNames[m]
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// Cost quantifies one preemption event.
type Cost struct {
	// Mechanism that was applied.
	Mechanism Mechanism
	// BoundaryCycles is the time spent finishing the in-flight
	// instruction before the trap routine could run (the preemption
	// point sits on GEMM_OP commit boundaries, footnote 2).
	BoundaryCycles int64
	// SaveCycles is the checkpoint DMA latency (zero for KILL/DRAIN).
	SaveCycles int64
	// SavedBytes is the checkpointed context size (zero for KILL/DRAIN).
	SavedBytes int64
	// WastedCycles is executed work discarded by KILL.
	WastedCycles int64
}

// Latency is the preemption latency as defined in Figure 5(a): the time
// from the preemption decision until the NPU is free for the preempting
// task (boundary completion plus checkpoint DMA). DRAIN reports zero here;
// its cost appears entirely as the preempting task's wait time.
func (c Cost) Latency() int64 {
	if c.Mechanism == Drain {
		return 0
	}
	return c.BoundaryCycles + c.SaveCycles
}

// Apply executes the chosen mechanism against a running execution cursor
// and returns its cost. For Checkpoint the cursor is advanced to the next
// instruction boundary and its live context is sized and "saved"; for Kill
// the cursor is reset; for Drain nothing happens (the caller keeps running
// the task to completion).
func Apply(cfg npu.Config, m Mechanism, exec *npu.Execution) Cost {
	switch m {
	case Checkpoint:
		boundary := exec.CyclesToBoundary()
		if boundary > 0 {
			exec.Advance(boundary)
		}
		live := exec.LiveBytes()
		return Cost{
			Mechanism:      Checkpoint,
			BoundaryCycles: boundary,
			SaveCycles:     cfg.CheckpointCycles(live),
			SavedBytes:     live,
		}
	case Kill:
		wasted := exec.Executed()
		exec.Kill()
		return Cost{Mechanism: Kill, WastedCycles: wasted}
	case KillLayer:
		wasted := exec.KillToLayerStart()
		return Cost{Mechanism: KillLayer, WastedCycles: wasted}
	case Drain:
		return Cost{Mechanism: Drain}
	default:
		panic(fmt.Sprintf("preempt: unknown mechanism %d", int(m)))
	}
}

// RestoreCycles is the latency of restoring a previously checkpointed
// context when the preempted task is rescheduled.
func RestoreCycles(cfg npu.Config, savedBytes int64) int64 {
	return cfg.RestoreCycles(savedBytes)
}

// ContextTableEntryBits is the per-task SRAM cost of the inference task
// context table (Figure 4): seven 64-bit fields (TaskID, priority, token,
// executed, waited, estimated, state) as computed in Section VI-F.
const ContextTableEntryBits = 64 * 7

// ContextTableBits returns the SRAM footprint, in bits, of tracking the
// given number of co-located tasks (Section VI-F: 16 tasks -> 448*16 bits).
func ContextTableBits(tasks int) int64 {
	return int64(tasks) * ContextTableEntryBits
}
