package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of single value = %v, want 0", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Sqrt(8), 1e-9) {
		t.Errorf("GeoMean(1,8) = %v, want sqrt(8)", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(empty) should error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean with negative value should error")
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {110, 5}, {-5, 1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile of singleton = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

// Property: for any sample, percentiles are monotone in p and bounded by
// min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := Min(xs), Max(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("bad summary: %+v", s)
	}
	if !almostEqual(s.Mean, 2.5, 1e-12) || !almostEqual(s.Median, 2.5, 1e-12) {
		t.Errorf("bad mean/median: %+v", s)
	}
	if s.IQR() < 0 {
		t.Errorf("negative IQR: %v", s.IQR())
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
	if got := ClampInt(10, 1, 3); got != 3 {
		t.Errorf("ClampInt(10,1,3) = %v", got)
	}
	if got := ClampInt(-1, 1, 3); got != 1 {
		t.Errorf("ClampInt(-1,1,3) = %v", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CeilDiv64(int64(c.a), int64(c.b)); got != int64(c.want) {
			t.Errorf("CeilDiv64(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) should panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(1, 2), NewRNG(1, 2)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(1, 3)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(1, 2).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different-seed RNGs produced identical streams")
	}
}

// Property: Summarize quartiles are ordered min <= p25 <= median <= p75 <= max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		ordered := sort.Float64sAreSorted([]float64{s.Min, s.P25, s.Median, s.P75, s.Max})
		return ordered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
