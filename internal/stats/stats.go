// Package stats provides the small numerical toolkit shared across the
// PREMA reproduction: deterministic random number generation, summary
// statistics, percentiles, and geometric means.
//
// Everything in the simulator is seeded explicitly so that each experiment
// is reproducible run-to-run; this package is the single place that owns
// RNG construction.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// NewRNG returns a deterministic PCG-backed random source for the given
// seed pair. All simulator randomness flows through sources created here.
func NewRNG(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs has
// fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. Non-positive values are
// rejected with an error since the geometric mean is undefined for them.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return PercentileInPlace(append([]float64(nil), xs...), p)
}

// PercentileInPlace is Percentile without the defensive copy: it sorts
// xs itself. For callers that recycle a scratch buffer whose order does
// not matter (the autoscaler's per-tick latency window, cleared right
// after the read), this turns a per-call allocation into none.
func PercentileInPlace(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sort.Float64s(xs)
	if len(xs) == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Summary captures the five-number summary of a sample plus mean and count.
// It backs the boxplot-style characterization figures (e.g. Figure 9).
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary for xs. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Percentile(xs, 50),
		P75:    Percentile(xs, 75),
		Max:    Max(xs),
	}
}

// String renders the summary in a compact, human-readable form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f",
		s.N, s.Mean, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// IQR returns the interquartile range of the summary.
func (s Summary) IQR() float64 { return s.P75 - s.P25 }

// Clamp restricts v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt restricts v to the inclusive range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CeilDiv returns ceil(a/b) for positive integers.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("stats: CeilDiv with non-positive divisor")
	}
	return (a + b - 1) / b
}

// CeilDiv64 returns ceil(a/b) for positive 64-bit integers.
func CeilDiv64(a, b int64) int64 {
	if b <= 0 {
		panic("stats: CeilDiv64 with non-positive divisor")
	}
	return (a + b - 1) / b
}
