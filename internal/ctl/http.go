package ctl

// http.go mirrors the command API over HTTP as JSON — the `-listen`
// endpoint of cmd/premactl. Handlers funnel through the same
// mutex-serialized execution path as the REPL and scripts, so remote
// commands interleave with the clock loop deterministically; only the
// arrival order of concurrent HTTP requests is up to the network, just
// as the typing order is up to the operator in a REPL.

import (
	"encoding/json"
	"errors"
	"net/http"
)

// cmdResponse is the /cmd JSON shape.
type cmdResponse struct {
	AtMS   float64 `json:"at_ms"`
	Cmd    string  `json:"cmd"`
	Output string  `json:"output,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// Handler exposes the control plane over HTTP:
//
//	GET /cmd?q=<command>   execute one command line
//	GET /snapshot          the point-in-time metrics snapshot
//	GET /report            the run report (live, or final after quit)
//	GET /trace             the per-request trace summary and events (404 without -trace)
//	GET /metrics           the tick-sampled metric series (404 without -trace)
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cmd", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing command: /cmd?q=list`, http.StatusBadRequest)
			return
		}
		out, err := p.Exec(q)
		resp := cmdResponse{AtMS: p.NowMS(), Cmd: q, Output: out}
		status := http.StatusOK
		if err != nil {
			resp.Err = err.Error()
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Snapshot())
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Report())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		exp, err := p.TraceExport()
		if err != nil {
			writeTelemetryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, exp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		samples, err := p.MetricSamples()
		if err != nil {
			writeTelemetryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, samples)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("premactl control plane\n  /cmd?q=<command>\n  /snapshot\n  /report\n  /trace\n  /metrics\n"))
	})
	return mux
}

// writeTelemetryError maps a telemetry export failure: an unattached
// handle is a 404 (the endpoint does not exist on this plane), anything
// else a 500.
func writeTelemetryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrNoTelemetry) {
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

// writeJSON writes one indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery failures; the encode itself
	// cannot fail for these shapes.
	_ = enc.Encode(v) //premalint:ignore errdrop a client that hung up mid-response has nothing left to receive; the plane's state is untouched
}
