package ctl

// report_test.go covers the shared run-report schema (premactl and
// scenario runs export the same shape), the HTML rendering, the
// snapshot's no-traffic explanations, and the HTTP mirror. The snapshot
// benchmark backs bench.sh's snapshot-under-load entry.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/serving"
)

// runEquivScenario executes the equivalence scenario on a fresh server.
func runEquivScenario(t *testing.T) *scenario.Report {
	t.Helper()
	sc, err := scenario.Parse(equivScenario)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep, err := scenario.Run(newServer(t), sc)
	if err != nil {
		t.Fatalf("scenario.Run: %v", err)
	}
	return rep
}

func TestReportSchemaShared(t *testing.T) {
	// A scenario run and a scripted session must marshal the same
	// top-level JSON keys (modulo the optional per-source sections).
	fromScenario := FromScenario(runEquivScenario(t))

	p := newPlane(t)
	if _, err := p.RunScript("@40ms snapshot\n@60ms quit\n"); err != nil {
		t.Fatalf("RunScript: %v", err)
	}
	fromPlane := p.Report()

	keys := func(r *RunReport) map[string]bool {
		js, err := r.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(js, &m); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		out := map[string]bool{}
		for k := range m {
			out[k] = true
		}
		return out
	}
	ks, kp := keys(fromScenario), keys(fromPlane)
	// Source-specific optional sections.
	for _, k := range []string{"passed", "asserts", "commands", "slo", "stats_note"} {
		delete(ks, k)
		delete(kp, k)
	}
	for k := range ks {
		if !kp[k] {
			t.Errorf("scenario report key %q missing from premactl report", k)
		}
	}
	for k := range kp {
		if !ks[k] {
			t.Errorf("premactl report key %q missing from scenario report", k)
		}
	}
	if fromScenario.Source != "scenario" || fromPlane.Source != "premactl" {
		t.Errorf("sources: %q / %q", fromScenario.Source, fromPlane.Source)
	}
	if fromScenario.Passed == nil {
		t.Errorf("scenario report lost its verdict")
	}
	if fromPlane.Passed != nil {
		t.Errorf("premactl report grew a verdict: %v", *fromPlane.Passed)
	}
	if len(fromPlane.Commands) == 0 {
		t.Errorf("premactl report lost its command log")
	}
}

func TestReportHTML(t *testing.T) {
	p := newPlane(t)
	if _, err := p.RunScript("@30ms cordon npu1\n@50ms list\n@80ms quit\n"); err != nil {
		t.Fatalf("RunScript: %v", err)
	}
	page, err := p.Report().HTML()
	if err != nil {
		t.Fatalf("HTML: %v", err)
	}
	html := string(page)
	for _, want := range []string{
		"<!doctype html", "control-plane", "Fleet timeline",
		"Command log", "cordon npu1", "requests",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML page missing %q", want)
		}
	}
	if strings.Contains(html, "Assertions") {
		t.Errorf("premactl page rendered an assertions section")
	}
	// Byte-identical across renders: the page is a pure function of the
	// report.
	again, err := p.Report().HTML()
	if err != nil {
		t.Fatalf("HTML again: %v", err)
	}
	if html != string(again) {
		t.Errorf("HTML rendering is not deterministic")
	}

	// A scenario-sourced report renders its verdict.
	page, err = FromScenario(runEquivScenario(t)).HTML()
	if err != nil {
		t.Fatalf("scenario HTML: %v", err)
	}
	if !strings.Contains(string(page), "badge") {
		t.Errorf("scenario page missing the verdict badge")
	}
}

func TestSnapshotBeforeTraffic(t *testing.T) {
	p, err := New(newServer(t), Config{
		Node: serving.NodeConfig{
			NPUs: 1, Routing: cluster.LeastWork,
			Session: serving.SessionConfig{Policy: "FCFS"},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	s := p.Snapshot()
	if s.StatsNote == "" {
		t.Errorf("idle snapshot carries no stats note")
	}
	if s.TickWindow != 0 {
		t.Errorf("idle snapshot claims %d tick samples", s.TickWindow)
	}
	out := s.Render()
	if !strings.Contains(out, "no traffic yet") {
		t.Errorf("idle snapshot render: %q", out)
	}
	r := p.Report()
	if r.StatsNote == "" {
		t.Errorf("idle report carries no stats note")
	}
}

func TestHTTPHandler(t *testing.T) {
	p := newPlane(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/cmd?q=step+5ms"); code != http.StatusOK || !strings.Contains(body, "t=5.00ms") {
		t.Errorf("/cmd step: %d %q", code, body)
	}
	if code, body := get("/snapshot"); code != http.StatusOK || !strings.Contains(body, `"fleet"`) {
		t.Errorf("/snapshot: %d %q", code, body)
	}
	if code, body := get("/report"); code != http.StatusOK || !strings.Contains(body, `"source": "premactl"`) {
		t.Errorf("/report: %d %q", code, body)
	}
	if code, body := get("/cmd?q=frobnicate"); code != http.StatusUnprocessableEntity || !strings.Contains(body, "unknown command") {
		t.Errorf("/cmd bad: %d %q", code, body)
	}
	if code, _ := get("/cmd"); code != http.StatusBadRequest {
		t.Errorf("/cmd without q: %d", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "premactl") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

// BenchmarkPlaneSnapshotUnderLoad measures a snapshot taken against a
// fleet mid-stream — the interactive hot path bench.sh tracks.
func BenchmarkPlaneSnapshotUnderLoad(b *testing.B) {
	p := newPlane(b)
	if _, err := p.Exec("step 40ms"); err != nil {
		b.Fatalf("step: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.Snapshot()
		if len(s.Fleet) == 0 {
			b.Fatal("empty fleet")
		}
	}
}
