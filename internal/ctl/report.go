package ctl

// report.go is the exportable run report — one schema shared by control
// plane sessions (Source "premactl") and declarative scenario runs
// (Source "scenario", via FromScenario), so dashboards and CI diffing
// consume a single shape regardless of which surface drove the fleet.
// JSON is the machine form; HTML is a self-contained single-file page
// in the stress-report style. Both renderings are pure functions of the
// report's fields — no wall-clock timestamps anywhere — so a
// deterministic run exports byte-identical artifacts.

import (
	"encoding/json"
	"fmt"
	"html/template"
	"strings"

	"repro/internal/scenario"
	"repro/internal/serving"
	"repro/internal/telemetry"
)

// ReportEvent is one fleet-timeline entry.
type ReportEvent struct {
	// AtMS is the virtual instant in milliseconds.
	AtMS float64 `json:"at_ms"`
	// Kind is "start", "scale", "drain", "fail", "slowdown", "restore",
	// "cordon" or "uncordon".
	Kind string `json:"kind"`
	// NPU is the target backend index; -1 for start and scale events.
	NPU int `json:"npu"`
	// Delta is the change in routable backends the event caused.
	Delta int `json:"delta"`
	// Fleet is the routable backend count after the event.
	Fleet int `json:"fleet"`
	// Note carries event detail (reclaimed count, slow factor).
	Note string `json:"note,omitempty"`
}

// FleetSummary summarizes the fleet over the run.
type FleetSummary struct {
	// Start is the initial backend count.
	Start int `json:"start"`
	// MeanNPUs is the time-weighted mean routable fleet size.
	MeanNPUs float64 `json:"mean_npus"`
	// PeakNPUs is the largest routable size reached.
	PeakNPUs int `json:"peak_npus"`
}

// LatencySummary is the realized steady-state latency view.
type LatencySummary struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// SLOSummary reports realized latency against the scaler's target.
type SLOSummary struct {
	TargetMS      float64 `json:"target_ms"`
	ViolationFrac float64 `json:"violation_frac"`
}

// TierSummary is one hardware tier's realized slice of the run; only
// heterogeneous fleets carry tier rows.
type TierSummary struct {
	// Tier is the tier name, in template order.
	Tier string `json:"tier"`
	// NPUs counts the backends ever assigned to the tier.
	NPUs int `json:"npus"`
	// Requests and Measured count the tier's routed and post-warm-up
	// requests.
	Requests int `json:"requests"`
	Measured int `json:"measured"`
	// MeanLatencyMS, P50MS and P95MS summarize the tier's measured
	// turnaround.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	// SLOViolationFrac is the tier's share of measured requests over the
	// scaler's latency SLO; zero without a scaler.
	SLOViolationFrac float64 `json:"slo_violation_frac"`
}

// SeriesPoint is one autoscale-tick sample on the report's metric
// timeline.
type SeriesPoint struct {
	AtMS float64 `json:"at_ms"`
	// Fleet is the routable backend count at the tick, before the
	// scaler's decision applied.
	Fleet int `json:"fleet"`
	// EstP95MS is the tick window's fluid P95 latency estimate.
	EstP95MS float64 `json:"est_p95_ms"`
	// Completions is the number of requests whose estimated work drained
	// during the tick.
	Completions int `json:"completions"`
}

// NPUSeries is one backend's utilization strip over the tick series.
type NPUSeries struct {
	NPU  int    `json:"npu"`
	Tier string `json:"tier,omitempty"`
	// Util is the backend's fluid utilization per tick; -1 marks ticks
	// before the backend was spun up.
	Util []float64 `json:"util"`
}

// Series is the tick-sampled metric timeline of a run with telemetry
// attached (telemetry.Recorder): one point per autoscale tick plus one
// utilization strip per backend. Nil without telemetry or a scaler —
// the recorder samples on the autoscale tick.
type Series struct {
	Points      []SeriesPoint `json:"points"`
	Utilization []NPUSeries   `json:"utilization"`
}

// sparkRunes are the eighth-block glyphs the sparkline renderings use.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// LatencySpark renders the series' estimated-P95 timeline as a Unicode
// sparkline, scaled to the series maximum.
func (s *Series) LatencySpark() string {
	max := 0.0
	for _, p := range s.Points {
		if p.EstP95MS > max {
			max = p.EstP95MS
		}
	}
	var b strings.Builder
	for _, p := range s.Points {
		i := 0
		if max > 0 {
			i = int(p.EstP95MS/max*float64(len(sparkRunes)-1) + 0.5)
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// MaxEstP95MS is the series' peak estimated P95 — the sparkline's scale.
func (s *Series) MaxEstP95MS() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.EstP95MS > max {
			max = p.EstP95MS
		}
	}
	return max
}

// Strip renders the backend's per-tick utilization as a Unicode block
// strip; '·' marks ticks before the backend existed.
func (n NPUSeries) Strip() string {
	var b strings.Builder
	for _, u := range n.Util {
		if u < 0 {
			b.WriteRune('·')
			continue
		}
		i := int(u*float64(len(sparkRunes)-1) + 0.5)
		if i < 0 {
			i = 0
		}
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// buildSeries converts the recorder's tick samples into the report's
// series section; nil when nothing was sampled.
func buildSeries(samples []telemetry.TickSample) *Series {
	if len(samples) == 0 {
		return nil
	}
	s := &Series{Points: make([]SeriesPoint, len(samples))}
	width := 0
	for i, t := range samples {
		s.Points[i] = SeriesPoint{
			AtMS: t.AtMS, Fleet: t.Fleet,
			EstP95MS: t.EstP95MS, Completions: t.Completions,
		}
		if len(t.NPUs) > width {
			width = len(t.NPUs)
		}
	}
	s.Utilization = make([]NPUSeries, width)
	for i := range s.Utilization {
		ns := NPUSeries{NPU: i, Util: make([]float64, len(samples))}
		for k, t := range samples {
			if i < len(t.NPUs) {
				ns.Util[k] = t.NPUs[i].UtilFrac
				ns.Tier = t.NPUs[i].Tier
			} else {
				ns.Util[k] = -1
			}
		}
		s.Utilization[i] = ns
	}
	return s
}

// tierSummaries converts the node's per-tier statistics into the
// report's shape.
func tierSummaries(tiers []serving.TierStats) []TierSummary {
	out := make([]TierSummary, len(tiers))
	for i, t := range tiers {
		out[i] = TierSummary{
			Tier: t.Tier, NPUs: t.NPUs,
			Requests: t.Requests, Measured: t.Measured,
			MeanLatencyMS: t.MeanLatencyMS,
			P50MS:         t.P50LatencyMS, P95MS: t.P95LatencyMS,
			SLOViolationFrac: t.SLOViolationFrac,
		}
	}
	return out
}

// AssertOutcome is one evaluated scenario assertion.
type AssertOutcome struct {
	Expr   string `json:"expr"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// RunReport is one run's exportable outcome: the schema premactl
// sessions and premasim -scenario runs share.
type RunReport struct {
	// Name labels the run; Source is "premactl" or "scenario".
	Name   string `json:"name"`
	Source string `json:"source"`
	// Passed is the assertion verdict of a scenario run; nil for
	// control plane sessions, which assert nothing.
	Passed *bool `json:"passed,omitempty"`
	// Requests is how many arrivals the run routed; SpanMS the virtual
	// timeline length in milliseconds.
	Requests int     `json:"requests"`
	SpanMS   float64 `json:"span_ms"`
	// Fleet, Latency and SLO summarize the run. SLO is nil without a
	// scaler; StatsNote explains absent latency statistics.
	Fleet     FleetSummary   `json:"fleet"`
	Latency   LatencySummary `json:"latency"`
	SLO       *SLOSummary    `json:"slo,omitempty"`
	StatsNote string         `json:"stats_note,omitempty"`
	// Timeline is the full fleet history; Commands the operator log
	// (premactl runs only); Asserts the evaluated assertions (scenario
	// runs only).
	Timeline []ReportEvent   `json:"timeline"`
	Commands []CommandRecord `json:"commands,omitempty"`
	Asserts  []AssertOutcome `json:"asserts,omitempty"`
	// Tiers is the per-tier statistics breakdown; nil on homogeneous
	// fleets or before any request clears the warm-up window.
	Tiers []TierSummary `json:"tiers,omitempty"`
	// Series is the tick-sampled metric timeline; nil without telemetry
	// attached (NodeConfig.Trace with a Recorder) or without a scaler.
	Series *Series `json:"series,omitempty"`
}

// buildReport derives the run report from the plane's current state;
// the caller holds the mutex. It is callable mid-stream (the `report`
// command) and at quit (the exported artifact).
func (p *Plane) buildReport() *RunReport {
	events := p.ns.Timeline()
	r := &RunReport{
		Name:     p.cfg.Name,
		Source:   "premactl",
		Requests: p.offered,
		SpanMS:   p.millis(p.now),
		Fleet: FleetSummary{
			Start:    p.cfg.Node.NPUs,
			MeanNPUs: scenario.MeanFleet(events, p.now),
			PeakNPUs: scenario.PeakFleet(events),
		},
		Timeline: p.reportEvents(events),
		Commands: append([]CommandRecord(nil), p.commands...),
	}
	if tr := p.ns.Telemetry(); tr != nil && tr.Recorder != nil {
		r.Series = buildSeries(tr.Recorder.Samples())
	}
	st, err := p.realizedStats()
	if err != nil {
		r.StatsNote = err.Error()
		return r
	}
	r.Latency = LatencySummary{
		MeanMS: st.MeanLatencyMS,
		P50MS:  st.P50LatencyMS,
		P95MS:  st.P95LatencyMS,
		P99MS:  st.P99LatencyMS,
	}
	if st.Scaling != nil {
		r.SLO = &SLOSummary{
			TargetMS:      st.Scaling.SLOLatencyMS,
			ViolationFrac: st.Scaling.SLOViolationFrac,
		}
	}
	if st.Tiers != nil {
		r.Tiers = tierSummaries(st.Tiers)
	}
	return r
}

// Report answers the run report: the sealed artifact after quit, or a
// live view of the stream so far.
func (p *Plane) Report() *RunReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.final != nil {
		return p.final
	}
	return p.buildReport()
}

// FromScenario converts a scenario report into the shared run-report
// schema, so premasim -scenario exports the same JSON/HTML shape as a
// premactl session.
func FromScenario(rep *scenario.Report) *RunReport {
	passed := rep.Passed
	r := &RunReport{
		Name:     rep.Name,
		Source:   "scenario",
		Passed:   &passed,
		Requests: rep.Requests,
		SpanMS:   rep.SpanMS,
		Fleet: FleetSummary{
			Start:    rep.FleetStart,
			MeanNPUs: rep.Summary.MeanNPUs,
			PeakNPUs: rep.Summary.PeakNPUs,
		},
		Latency: LatencySummary{
			MeanMS: rep.Summary.MeanLatencyMS,
			P50MS:  rep.Summary.P50LatencyMS,
			P95MS:  rep.Summary.P95LatencyMS,
			P99MS:  rep.Summary.P99LatencyMS,
		},
		Timeline: make([]ReportEvent, len(rep.Timeline)),
	}
	if rep.Summary.SLOLatencyMS > 0 {
		r.SLO = &SLOSummary{
			TargetMS:      rep.Summary.SLOLatencyMS,
			ViolationFrac: rep.Summary.SLOViolationFrac,
		}
	}
	for i, e := range rep.Timeline {
		r.Timeline[i] = ReportEvent{
			AtMS: e.AtMS, Kind: e.Kind, NPU: e.NPU,
			Delta: e.Delta, Fleet: e.Fleet, Note: e.Note,
		}
	}
	for _, a := range rep.Asserts {
		r.Asserts = append(r.Asserts, AssertOutcome{
			Expr: a.Expr, Pass: a.Pass, Detail: a.Detail,
		})
	}
	if rep.Tiers != nil {
		r.Tiers = tierSummaries(rep.Tiers)
	}
	r.Series = buildSeries(rep.Samples)
	return r
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the report as a compact deterministic text block (the
// `report` command's output).
func (r *RunReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %q (%s): %d requests over %.2fms\n",
		r.Name, r.Source, r.Requests, r.SpanMS)
	fmt.Fprintf(&b, "fleet: start %d, mean %.2f, peak %d — %d timeline events\n",
		r.Fleet.Start, r.Fleet.MeanNPUs, r.Fleet.PeakNPUs, len(r.Timeline))
	if r.StatsNote != "" {
		fmt.Fprintf(&b, "latency: %s\n", r.StatsNote)
	} else {
		fmt.Fprintf(&b, "latency: mean %.2fms  p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			r.Latency.MeanMS, r.Latency.P50MS, r.Latency.P95MS, r.Latency.P99MS)
	}
	if r.SLO != nil {
		fmt.Fprintf(&b, "slo: %.1fms target, %.1f%% violated\n",
			r.SLO.TargetMS, r.SLO.ViolationFrac*100)
	}
	for _, t := range r.Tiers {
		fmt.Fprintf(&b, "tier %s: %d npus, %d requests, p95 %.2fms, %.1f%% over SLO\n",
			t.Tier, t.NPUs, t.Requests, t.P95MS, t.SLOViolationFrac*100)
	}
	if r.Series != nil {
		fmt.Fprintf(&b, "series: %d ticks, est p95 %s (peak %.2fms)\n",
			len(r.Series.Points), r.Series.LatencySpark(), r.Series.MaxEstP95MS())
	}
	if len(r.Commands) > 0 {
		fmt.Fprintf(&b, "commands: %d executed\n", len(r.Commands))
	}
	return strings.TrimRight(b.String(), "\n")
}

// reportHTML is the self-contained single-file page template.
const reportHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Name}} — run report</title>
<style>
body { font: 14px/1.5 -apple-system, "Segoe UI", sans-serif; color: #1b1f24; margin: 2rem auto; max-width: 60rem; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 1.8rem; }
.meta { color: #57606a; }
.badge { display: inline-block; padding: .1rem .55rem; border-radius: 1rem; font-weight: 600; }
.pass { background: #dafbe1; color: #116329; } .fail { background: #ffebe9; color: #a40e26; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin-top: 1rem; }
.tile { border: 1px solid #d0d7de; border-radius: .5rem; padding: .6rem .9rem; min-width: 8rem; }
.tile b { display: block; font-size: 1.2rem; } .tile span { color: #57606a; font-size: .8rem; }
table { border-collapse: collapse; width: 100%; margin-top: .6rem; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #d8dee4; font-size: .85rem; }
th { color: #57606a; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.err { color: #a40e26; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: .3rem; }
.spark { font: 1.1rem/1.3 "SFMono-Regular", Consolas, monospace; letter-spacing: .04em; margin: .2rem 0; }
td.spark { font-size: .95rem; }
</style>
</head>
<body>
<h1>{{.Name}} <span class="meta">({{.Source}} run)</span>
{{- if .Passed}} {{if deref .Passed}}<span class="badge pass">PASS</span>{{else}}<span class="badge fail">FAIL</span>{{end}}{{end}}</h1>
<div class="tiles">
<div class="tile"><b>{{.Requests}}</b><span>requests</span></div>
<div class="tile"><b>{{printf "%.1f" .SpanMS}}ms</b><span>span</span></div>
<div class="tile"><b>{{.Fleet.Start}} &rarr; peak {{.Fleet.PeakNPUs}}</b><span>fleet (mean {{printf "%.2f" .Fleet.MeanNPUs}})</span></div>
{{- if not .StatsNote}}
<div class="tile"><b>{{printf "%.2f" .Latency.P95MS}}ms</b><span>p95 latency</span></div>
{{- end}}
{{- if .SLO}}
<div class="tile"><b>{{printf "%.1f" (pct .SLO.ViolationFrac)}}%</b><span>over {{printf "%.1f" .SLO.TargetMS}}ms SLO</span></div>
{{- end}}
</div>
{{- if .StatsNote}}
<p class="meta">latency statistics unavailable: {{.StatsNote}}</p>
{{- else}}
<h2>Latency</h2>
<table><tr><th class="num">mean</th><th class="num">p50</th><th class="num">p95</th><th class="num">p99</th></tr>
<tr><td class="num">{{printf "%.2f" .Latency.MeanMS}}ms</td><td class="num">{{printf "%.2f" .Latency.P50MS}}ms</td><td class="num">{{printf "%.2f" .Latency.P95MS}}ms</td><td class="num">{{printf "%.2f" .Latency.P99MS}}ms</td></tr></table>
{{- end}}
{{- if .Tiers}}
<h2>Tiers</h2>
<table><tr><th>tier</th><th class="num">npus</th><th class="num">requests</th><th class="num">measured</th><th class="num">mean</th><th class="num">p50</th><th class="num">p95</th><th class="num">over SLO</th></tr>
{{- range .Tiers}}
<tr><td>{{.Tier}}</td><td class="num">{{.NPUs}}</td><td class="num">{{.Requests}}</td><td class="num">{{.Measured}}</td><td class="num">{{printf "%.2f" .MeanLatencyMS}}ms</td><td class="num">{{printf "%.2f" .P50MS}}ms</td><td class="num">{{printf "%.2f" .P95MS}}ms</td><td class="num">{{printf "%.1f" (pct .SLOViolationFrac)}}%</td></tr>
{{- end}}
</table>
{{- end}}
{{- if .Series}}
<h2>Tick series</h2>
<p class="meta">estimated p95 latency per autoscale tick, scaled to the peak ({{printf "%.2f" .Series.MaxEstP95MS}}ms) over {{len .Series.Points}} ticks</p>
<div class="spark">{{.Series.LatencySpark}}</div>
<table><tr><th>npu</th><th>tier</th><th>utilization</th></tr>
{{- range .Series.Utilization}}
<tr><td>npu{{.NPU}}</td><td>{{.Tier}}</td><td class="spark">{{.Strip}}</td></tr>
{{- end}}
</table>
{{- end}}
<h2>Fleet timeline</h2>
<table><tr><th class="num">at</th><th>event</th><th>npu</th><th class="num">delta</th><th class="num">fleet</th><th>note</th></tr>
{{- range .Timeline}}
<tr><td class="num">{{printf "%.2f" .AtMS}}ms</td><td>{{.Kind}}</td><td>{{if ge .NPU 0}}npu{{.NPU}}{{else}}&mdash;{{end}}</td><td class="num">{{if .Delta}}{{printf "%+d" .Delta}}{{end}}</td><td class="num">{{.Fleet}}</td><td>{{.Note}}</td></tr>
{{- end}}
</table>
{{- if .Commands}}
<h2>Command log</h2>
<table><tr><th class="num">at</th><th>command</th><th>outcome</th></tr>
{{- range .Commands}}
<tr><td class="num">{{printf "%.2f" .AtMS}}ms</td><td><code>{{.Cmd}}</code></td><td>{{if .Err}}<span class="err">{{.Err}}</span>{{else}}{{firstLine .Output}}{{end}}</td></tr>
{{- end}}
</table>
{{- end}}
{{- if .Asserts}}
<h2>Assertions</h2>
<table><tr><th>verdict</th><th>assertion</th><th>detail</th></tr>
{{- range .Asserts}}
<tr><td>{{if .Pass}}<span class="badge pass">PASS</span>{{else}}<span class="badge fail">FAIL</span>{{end}}</td><td><code>{{.Expr}}</code></td><td>{{.Detail}}</td></tr>
{{- end}}
</table>
{{- end}}
</body>
</html>
`

var reportTemplate = template.Must(template.New("report").Funcs(template.FuncMap{
	"deref":     func(b *bool) bool { return b != nil && *b },
	"pct":       func(f float64) float64 { return f * 100 },
	"firstLine": func(s string) string { line, _, _ := strings.Cut(s, "\n"); return line },
}).Parse(reportHTML))

// HTML renders the report as a self-contained single-file page.
func (r *RunReport) HTML() ([]byte, error) {
	var b strings.Builder
	if err := reportTemplate.Execute(&b, r); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
