package ctl

// snapshot.go is the point-in-time metrics view: fleet composition,
// tick-window latency percentiles from the node's fluid-estimate ring
// (no re-simulation), the realized SLO-violation fraction (which does
// re-simulate changed backends — the price of truth), and the tail of
// the scaling timeline. Snapshots serialize with the clock loop on the
// plane mutex, so a concurrent snapshot always observes the fleet
// between virtual steps.

import (
	"fmt"
	"strings"

	"repro/internal/serving"
	"repro/internal/stats"
)

// NPUSnapshot is one backend's row in a snapshot.
type NPUSnapshot struct {
	NPU       int     `json:"npu"`
	Tier      string  `json:"tier,omitempty"` // hardware tier; empty on homogeneous fleets
	State     string  `json:"state"`
	Speed     float64 `json:"speed"`
	InFlight  int     `json:"in_flight"`
	BacklogMS float64 `json:"backlog_ms"`
	Routed    int     `json:"routed"`
}

// TierSnapshot aggregates one hardware tier's slice of a snapshot.
// Only heterogeneous fleets carry tier rows, so homogeneous snapshots
// keep their exact pre-tier shape.
type TierSnapshot struct {
	Tier      string  `json:"tier"`
	Active    int     `json:"active"`
	InFlight  int     `json:"in_flight"`
	BacklogMS float64 `json:"backlog_ms"`
	// P95LatencyMS and SLOViolationFrac are the tier's realized slice of
	// the node statistics; zero until the tier's requests clear the
	// warm-up window (or without a scaler, for the violation fraction).
	P95LatencyMS     float64 `json:"p95_latency_ms,omitempty"`
	SLOViolationFrac float64 `json:"slo_violation_frac,omitempty"`
}

// Snapshot is the plane's point-in-time metrics view.
type Snapshot struct {
	// AtMS is the virtual instant the snapshot was taken at.
	AtMS float64 `json:"at_ms"`
	// Paused reports whether paced advancement is stopped.
	Paused bool `json:"paused"`
	// Load is the current offered load per NPU-capacity.
	Load float64 `json:"offered_load"`
	// Requests is how many arrivals have been routed so far.
	Requests int `json:"requests"`
	// Active and Fleet describe the backend set.
	Active int           `json:"active"`
	Fleet  []NPUSnapshot `json:"fleet"`
	// Tiers aggregates the fleet per hardware tier; nil on homogeneous
	// fleets.
	Tiers []TierSnapshot `json:"tiers,omitempty"`
	// TickP50MS/P95/P99 are percentiles over the most recent fluid
	// latency estimates (the tick window's signal); TickWindow is the
	// sample count they summarize, 0 when no traffic has flowed yet.
	TickP50MS  float64 `json:"tick_p50_ms"`
	TickP95MS  float64 `json:"tick_p95_ms"`
	TickP99MS  float64 `json:"tick_p99_ms"`
	TickWindow int     `json:"tick_window"`
	// SLOLatencyMS and SLOViolationFrac report realized latency against
	// the scaler's target; both zero without a scaler or before any
	// request clears the warm-up window (see StatsNote).
	SLOLatencyMS     float64 `json:"slo_ms,omitempty"`
	SLOViolationFrac float64 `json:"slo_violation_frac,omitempty"`
	// StatsNote explains an absent realized-statistics section (no
	// traffic yet, everything still inside warm-up).
	StatsNote string `json:"stats_note,omitempty"`
	// ScalingTail is the most recent fleet-timeline events (at most 5).
	ScalingTail []ReportEvent `json:"scaling_tail"`
}

// Snapshot takes a point-in-time metrics snapshot. Safe to call
// concurrently with a pacing loop or a running script.
func (p *Plane) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked(p.now)
}

// snapshotLocked builds the snapshot at virtual cycle at; the caller
// holds the mutex.
func (p *Plane) snapshotLocked(at int64) Snapshot {
	s := Snapshot{
		AtMS:     p.millis(at),
		Paused:   p.paused,
		Load:     p.load,
		Requests: p.offered,
	}
	fleet := p.ns.Fleet()
	for _, v := range fleet {
		if v.State == "active" {
			s.Active++
		}
		s.Fleet = append(s.Fleet, NPUSnapshot{
			NPU: v.NPU, Tier: v.Tier, State: v.State, Speed: v.Speed,
			InFlight: v.InFlight, BacklogMS: v.BacklogMS, Routed: v.Routed,
		})
	}
	p.estScratch = p.ns.EstimateWindow(p.estScratch[:0])
	if n := len(p.estScratch); n > 0 {
		s.TickWindow = n
		// The scratch window is re-filled on the next snapshot, so its
		// order is free to give away to the in-place sort.
		s.TickP50MS = stats.PercentileInPlace(p.estScratch, 50)
		s.TickP95MS = stats.PercentileInPlace(p.estScratch, 95)
		s.TickP99MS = stats.PercentileInPlace(p.estScratch, 99)
	}
	var stTiers []serving.TierStats
	if st, err := p.realizedStats(); err != nil {
		s.StatsNote = err.Error()
	} else {
		if st.Scaling != nil {
			s.SLOLatencyMS = st.Scaling.SLOLatencyMS
			s.SLOViolationFrac = st.Scaling.SLOViolationFrac
		}
		stTiers = st.Tiers
	}
	s.Tiers = tierSnapshots(fleet, stTiers)
	events := p.ns.Timeline()
	tail := events
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	s.ScalingTail = p.reportEvents(tail)
	return s
}

// tierSnapshots aggregates the per-NPU views per hardware tier, in
// first-assigned order, grafting on the node's realized per-tier
// statistics when it has them. Nil on homogeneous fleets.
func tierSnapshots(fleet []serving.BackendView, tiers []serving.TierStats) []TierSnapshot {
	if len(fleet) == 0 || fleet[0].Tier == "" {
		return nil
	}
	idx := map[string]int{}
	var out []TierSnapshot
	for _, v := range fleet {
		i, ok := idx[v.Tier]
		if !ok {
			i = len(out)
			idx[v.Tier] = i
			out = append(out, TierSnapshot{Tier: v.Tier})
		}
		if v.State == "active" {
			out[i].Active++
		}
		out[i].InFlight += v.InFlight
		out[i].BacklogMS += v.BacklogMS
	}
	for _, ts := range tiers {
		if i, ok := idx[ts.Tier]; ok {
			out[i].P95LatencyMS = ts.P95LatencyMS
			out[i].SLOViolationFrac = ts.SLOViolationFrac
		}
	}
	return out
}

// realizedStats answers the node's realized statistics, or a
// deterministic explanation of why there are none yet.
func (p *Plane) realizedStats() (serving.NodeStats, error) {
	if p.offered == 0 {
		return serving.NodeStats{}, fmt.Errorf("no traffic yet")
	}
	return p.ns.Stats()
}

// reportEvents converts node timeline events to report entries.
func (p *Plane) reportEvents(events []serving.NodeEvent) []ReportEvent {
	out := make([]ReportEvent, len(events))
	for i, e := range events {
		out[i] = ReportEvent{
			AtMS: p.millis(e.Cycle), Kind: e.Kind, NPU: e.NPU,
			Delta: e.Delta, Fleet: e.Active, Note: e.Note,
		}
	}
	return out
}

// Render formats the snapshot as a deterministic text block.
func (s Snapshot) Render() string {
	var b strings.Builder
	state := "running"
	if s.Paused {
		state = "paused"
	}
	fmt.Fprintf(&b, "snapshot @ %.2fms (%s, load %g): %d requests, %d/%d active\n",
		s.AtMS, state, s.Load, s.Requests, s.Active, len(s.Fleet))
	for _, v := range s.Fleet {
		fmt.Fprintf(&b, "  npu%-3d %-9s x%-5g in-flight %-4d backlog %.2fms routed %d\n",
			v.NPU, v.State, v.Speed, v.InFlight, v.BacklogMS, v.Routed)
	}
	for _, t := range s.Tiers {
		fmt.Fprintf(&b, "  tier %-8s %d active  in-flight %-4d backlog %.2fms",
			t.Tier, t.Active, t.InFlight, t.BacklogMS)
		if t.P95LatencyMS > 0 {
			fmt.Fprintf(&b, "  p95 %.2fms", t.P95LatencyMS)
		}
		if t.SLOViolationFrac > 0 {
			fmt.Fprintf(&b, "  slo-viol %.1f%%", t.SLOViolationFrac*100)
		}
		b.WriteByte('\n')
	}
	if s.TickWindow > 0 {
		fmt.Fprintf(&b, "tick window (%d samples): p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
			s.TickWindow, s.TickP50MS, s.TickP95MS, s.TickP99MS)
	}
	if s.StatsNote != "" {
		fmt.Fprintf(&b, "realized stats: %s\n", s.StatsNote)
	} else if s.SLOLatencyMS > 0 {
		fmt.Fprintf(&b, "slo: %.1fms target, %.1f%% of measured requests violated\n",
			s.SLOLatencyMS, s.SLOViolationFrac*100)
	}
	if len(s.ScalingTail) > 0 {
		b.WriteString("timeline tail:\n")
		for _, e := range s.ScalingTail {
			label := e.Kind
			if e.NPU >= 0 {
				label = fmt.Sprintf("%s npu%d", e.Kind, e.NPU)
			}
			if e.Delta != 0 {
				label = fmt.Sprintf("%s %+d", label, e.Delta)
			}
			if e.Note != "" {
				label = fmt.Sprintf("%s (%s)", label, e.Note)
			}
			fmt.Fprintf(&b, "  %9.2fms  %d NPUs  %s\n", e.AtMS, e.Fleet, label)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
