package ctl

// ctl_test.go locks in the control plane's determinism contract under
// the race detector: the same script replays byte-identically
// (transcript and report both), a scripted chaos session is
// stat-identical to the equivalent declarative scenario run, and
// snapshots taken concurrently with a running clock loop never tear.

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/npu"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/workload"
)

// newServer builds a serving server on the default hardware with the
// suite's fixed workload seed.
func newServer(t testing.TB) *serving.Server {
	t.Helper()
	cfg := npu.DefaultConfig()
	gen, err := workload.NewGenerator(cfg, 0xA11CE)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	return serving.NewServer(cfg, sched.DefaultConfig(), gen)
}

// newPlane opens a control plane with a small autoscaled fleet, ready
// for scripted runs at time-scale 0 (no wall-clock dependence).
func newPlane(t testing.TB) *Plane {
	t.Helper()
	p, err := New(newServer(t), Config{
		Node: serving.NodeConfig{
			NPUs:    2,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{Policy: "PREMA", Preemptive: true},
			Autoscale: &serving.AutoscaleConfig{
				Scaler: "queue-depth", SLO: 8 * time.Millisecond,
				MinNPUs: 2, MaxNPUs: 4,
			},
		},
		Seed:    7,
		Segment: 25 * time.Millisecond,
		Load:    2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// replayScript exercises most of the vocabulary at fixed virtual
// timestamps; byte-identical replay of everything it prints is the
// property under test.
const replayScript = `
# warm the fleet, disturb it, watch the scaler compensate
@5ms  list
@10ms snapshot
@25ms load 3
@30ms cordon npu1
@40ms snapshot
@60ms uncordon npu1
@70ms get npu0
@80ms report
@90ms time
@100ms quit
`

func TestScriptReplayByteIdentical(t *testing.T) {
	run := func() (string, []byte) {
		p := newPlane(t)
		transcript, err := p.RunScript(replayScript)
		if err != nil {
			t.Fatalf("RunScript: %v", err)
		}
		if !p.Done() {
			t.Fatalf("script with quit left the plane open")
		}
		js, err := p.Report().JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return transcript, js
	}
	t1, j1 := run()
	t2, j2 := run()
	if t1 != t2 {
		t.Errorf("transcripts differ between identical runs:\n--- first\n%s\n--- second\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("report JSON differs between identical runs:\n--- first\n%s\n--- second\n%s", j1, j2)
	}
	if !strings.Contains(t1, "cordon npu1 scheduled") {
		t.Errorf("transcript missing cordon acknowledgement:\n%s", t1)
	}
}

// equivScenario and equivScript drive the same virtual timeline: a
// four-segment load ramp with a cordon/uncordon window, on identical
// fleets, scalers and seeds. The scripted session must land on
// statistics identical to the scenario run's.
const equivScenario = `
scenario equivalence
fleet initial=2 min=2 max=4
routing least-work
policy PREMA preemptive
scaler queue-depth slo=8ms
seed 7
segment 25ms
load 2 3 3 1
at 30ms cordon npu1
at 60ms uncordon npu1
`

const equivScript = `
@25ms load 3
@30ms cordon npu1
@60ms uncordon npu1
@75ms load 1
@100ms quit
`

func TestScriptMatchesScenario(t *testing.T) {
	sc, err := scenario.Parse(equivScenario)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep, err := scenario.Run(newServer(t), sc)
	if err != nil {
		t.Fatalf("scenario.Run: %v", err)
	}
	want := FromScenario(rep)

	p, err := New(newServer(t), Config{
		Node: serving.NodeConfig{
			NPUs:    2,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{
				Policy: "PREMA", Preemptive: true,
				Horizon: sc.Horizon(),
			},
			Autoscale: &serving.AutoscaleConfig{
				Scaler: "queue-depth", SLO: 8 * time.Millisecond,
				MinNPUs: 2, MaxNPUs: 4,
			},
		},
		Models:  sc.Models,
		Seed:    7,
		Segment: 25 * time.Millisecond,
		Load:    2,
		Name:    "equivalence",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if _, err := p.RunScript(equivScript); err != nil {
		t.Fatalf("RunScript: %v", err)
	}
	got := p.Report()

	if got.Requests != want.Requests {
		t.Errorf("requests: script %d, scenario %d", got.Requests, want.Requests)
	}
	if got.SpanMS != want.SpanMS {
		t.Errorf("span: script %.4fms, scenario %.4fms", got.SpanMS, want.SpanMS)
	}
	if got.Fleet != want.Fleet {
		t.Errorf("fleet summary: script %+v, scenario %+v", got.Fleet, want.Fleet)
	}
	if got.Latency != want.Latency {
		t.Errorf("latency: script %+v, scenario %+v", got.Latency, want.Latency)
	}
	switch {
	case (got.SLO == nil) != (want.SLO == nil):
		t.Errorf("slo presence: script %v, scenario %v", got.SLO, want.SLO)
	case got.SLO != nil && *got.SLO != *want.SLO:
		t.Errorf("slo: script %+v, scenario %+v", *got.SLO, *want.SLO)
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("timeline length: script %d, scenario %d\nscript:  %+v\nscenario: %+v",
			len(got.Timeline), len(want.Timeline), got.Timeline, want.Timeline)
	}
	for i := range got.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Errorf("timeline[%d]: script %+v, scenario %+v", i, got.Timeline[i], want.Timeline[i])
		}
	}
	// The run must actually have exercised the cordon window and traffic.
	if got.Requests == 0 {
		t.Fatalf("equivalence run offered no traffic")
	}
	sawCordon := false
	for _, e := range got.Timeline {
		sawCordon = sawCordon || e.Kind == "cordon"
	}
	if !sawCordon {
		t.Errorf("timeline never recorded the cordon: %+v", got.Timeline)
	}
}

// TestConcurrentSnapshot hammers snapshots and read commands from many
// goroutines while another goroutine advances the clock — the -race
// suite's core case. Every snapshot must be internally consistent
// (taken between virtual steps, never mid-step).
func TestConcurrentSnapshot(t *testing.T) {
	p := newPlane(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := p.Snapshot()
				if len(s.Fleet) == 0 {
					t.Error("snapshot with empty fleet")
					return
				}
				active := 0
				for _, v := range s.Fleet {
					if v.State == "active" {
						active++
					}
				}
				if active != s.Active {
					t.Errorf("snapshot tore: Active %d but %d active rows", s.Active, active)
					return
				}
				if _, err := p.Exec("list"); err != nil && err != errClosed {
					t.Errorf("list: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if _, err := p.Exec("step 2ms"); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := p.Exec("quit"); err != nil {
		t.Fatalf("quit: %v", err)
	}
	if p.Report().Requests == 0 {
		t.Fatalf("stepped run offered no traffic")
	}
}

// TestPaceQuits proves the paced loop serializes with concurrent
// commands and exits cleanly on quit.
func TestPaceQuits(t *testing.T) {
	p, err := New(newServer(t), Config{
		Node: serving.NodeConfig{
			NPUs:    2,
			Routing: cluster.LeastWork,
			Session: serving.SessionConfig{Policy: "PREMA", Preemptive: true},
		},
		Load:      1,
		TimeScale: 500, // 500 virtual seconds per wall second: effectively flat out
		Step:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	done := make(chan error, 1)
	go func() { done <- p.Pace() }()
	for p.NowMS() < 10 {
		p.Snapshot()
	}
	if _, err := p.Exec("quit"); err != nil {
		t.Fatalf("quit: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Pace: %v", err)
	}
	if ms := p.NowMS(); ms < 10 {
		t.Fatalf("paced clock only reached %.2fms", ms)
	}
}

func TestParseScriptErrors(t *testing.T) {
	p := newPlane(t)
	cases := []struct {
		name, src, want string
	}{
		{"empty", "# only comments\n", "empty script"},
		{"no-at", "list\n", "expected \"@<time> <command>\""},
		{"no-command", "@5ms\n", "timestamp without a command"},
		{"bad-stamp", "@later list\n", "bad timestamp"},
		{"rewind", "@10ms list\n@5ms list\n", "rewinds the clock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := p.RunScript(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RunScript(%q) error %v, want %q", tc.src, err, tc.want)
			}
		})
	}
}

func TestCommandErrors(t *testing.T) {
	p := newPlane(t)
	cases := []struct {
		cmd, want string
	}{
		{"frobnicate", "unknown command"},
		{"get", "expected one npu<i> argument"},
		{"get gpu0", "expected npu<i>"},
		{"get npu9", "unknown NPU 9"},
		{"cordon npu-1", "bad NPU index"},
		{"slow npu0", "usage: slow"},
		{"slow npu0 x-fast", "bad slow factor"},
		{"scale", "usage: scale"},
		{"scale 9", "outside"},
		{"load -1", "bad offered load"},
		{"step backwards extra", "usage: step"},
		{"step -1ms", "bad step duration"},
	}
	for _, tc := range cases {
		if _, err := p.Exec(tc.cmd); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Exec(%q) error %v, want substring %q", tc.cmd, err, tc.want)
		}
	}
	// Errors are recorded on the command log alongside successes.
	recs := p.Commands()
	if len(recs) != len(cases) {
		t.Fatalf("command log has %d records, want %d", len(recs), len(cases))
	}
	for i, rec := range recs {
		if rec.Err == "" {
			t.Errorf("record %d (%q) lost its error", i, rec.Cmd)
		}
	}
	if _, err := p.Exec("quit"); err != nil {
		t.Fatalf("quit: %v", err)
	}
	if _, err := p.Exec("list"); err != errClosed {
		t.Fatalf("command after quit: %v, want errClosed", err)
	}
}

func TestScheduledPastCommandRefused(t *testing.T) {
	p := newPlane(t)
	if _, err := p.Exec("step 20ms"); err != nil {
		t.Fatalf("step: %v", err)
	}
	// Interactive commands execute at the current instant; the stream's
	// own guard still refuses anything that would rewind it.
	if _, err := p.Exec("cordon npu0"); err != nil {
		t.Fatalf("cordon at the current instant: %v", err)
	}
}

func TestHelpListsEveryVerb(t *testing.T) {
	for _, verb := range sortedVerbs() {
		if verb == "help" {
			continue // help does not list itself
		}
		if !strings.Contains(helpText, "\n  "+verb) && !strings.Contains(helpText, "| "+verb) {
			t.Errorf("help text does not document %q", verb)
		}
	}
	p := newPlane(t)
	out, err := p.Exec("help")
	if err != nil || out != helpText {
		t.Fatalf("help: %v (output %d bytes)", err, len(out))
	}
}

func TestManualScaleAndDrain(t *testing.T) {
	p := newPlane(t)
	if _, err := p.Exec("step 10ms"); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := p.Exec("scale 4"); err != nil {
		t.Fatalf("scale up: %v", err)
	}
	s := p.Snapshot()
	if s.Active != 4 {
		t.Fatalf("active after scale 4: %d (fleet %+v)", s.Active, s.Fleet)
	}
	// Drain the newest backend (always active: just added or scaled to).
	last := len(s.Fleet) - 1
	if _, err := p.Exec("drain npu" + strconv.Itoa(last)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s = p.Snapshot()
	if got := s.Fleet[last].State; got != "draining" {
		t.Fatalf("npu%d state after drain: %q", last, got)
	}
	// The manual actions are on the timeline with their notes.
	var kinds []string
	for _, e := range p.Report().Timeline {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "scale") || !strings.Contains(joined, "drain") {
		t.Fatalf("timeline missing manual events: %v", kinds)
	}
}

func TestConfigValidation(t *testing.T) {
	srv := newServer(t)
	node := serving.NodeConfig{
		NPUs: 1, Routing: cluster.LeastWork,
		Session: serving.SessionConfig{Policy: "FCFS"},
	}
	bad := []Config{
		{Node: node, Segment: -time.Millisecond},
		{Node: node, Step: -time.Millisecond},
		{Node: node, TimeScale: -1},
		{Node: node, Load: -0.5},
		{Node: node, Step: time.Nanosecond}, // under one 700MHz cycle
	}
	for i, cfg := range bad {
		if _, err := New(srv, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
