package ctl

// drive.go is the wall-clock boundary: the only place the control plane
// touches real time, and the one sanctioned timer call site in the
// simulation path (the timerinsim lint rule enforces this). Pacing only
// decides when the next virtual step is taken — every simulated outcome
// is a pure function of the virtual clock, so a paced session computes
// exactly what an unpaced replay of the same commands computes.

import "time"

// Pace advances the plane step by step against the wall clock at the
// configured time-scale until it quits, returning the error that
// stopped it (nil on a clean quit). While paused — or at time-scale 0,
// where only `step` moves the clock — Pace idles, polling for a resume
// or quit. Run it from its own goroutine next to an interactive REPL.
func (p *Plane) Pace() error {
	for {
		p.mu.Lock()
		if p.quit {
			err := p.err
			p.mu.Unlock()
			return err
		}
		advancing := !p.paused && p.cfg.TimeScale > 0
		if advancing {
			if err := p.advanceClockTo(p.now + p.stepCycles); err != nil {
				p.err = err
				p.quit = true
				p.mu.Unlock()
				return err
			}
		}
		p.mu.Unlock()
		if advancing {
			p.sleepVirtual(p.stepCycles)
		} else {
			p.sleepWall(pollInterval)
		}
	}
}

// pollInterval is how often a paused (or unpaced) Pace loop re-checks
// for resume/quit.
const pollInterval = 25 * time.Millisecond

// sleepVirtual sleeps the wall-clock equivalent of a virtual gap at the
// configured time-scale; at time-scale 0 it returns immediately (no
// wall-clock dependence at all — the CI mode).
func (p *Plane) sleepVirtual(cycles int64) {
	if p.cfg.TimeScale <= 0 || cycles <= 0 {
		return
	}
	virtual := time.Duration(p.millis(cycles) * float64(time.Millisecond))
	p.sleepWall(time.Duration(float64(virtual) / p.cfg.TimeScale))
}

// sleepWall is the single wall-clock call site behind all pacing.
func (p *Plane) sleepWall(d time.Duration) {
	if d <= 0 {
		return
	}
	//premalint:ignore timerinsim pacing only schedules when the next virtual step runs, never what it computes; every simulated outcome stays a pure function of the virtual clock
	time.Sleep(d)
}
