package ctl

// command.go is the operator vocabulary: one-line commands executed at
// a virtual instant, serialized into the clock loop under the plane
// mutex and recorded (with their output) on the command log that the
// run report exports. Every command is deterministic given its virtual
// timestamp — the REPL, scripts and the HTTP mirror all funnel through
// the same execution path.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/serving"
)

// CommandRecord is one executed command on the run's log.
type CommandRecord struct {
	// AtMS is the virtual instant the command executed at.
	AtMS float64 `json:"at_ms"`
	// Cmd is the command line as given.
	Cmd string `json:"cmd"`
	// Output is the command's rendered output (empty for errors).
	Output string `json:"output,omitempty"`
	// Err is the error text when the command was refused.
	Err string `json:"error,omitempty"`
}

// helpText lists the command vocabulary; kept sorted by verb.
const helpText = `commands:
  list                 per-NPU state: active/draining/cordoned/failed, in-flight, backlog
  get npu<i>           one backend's detail view
  cordon npu<i>        take a backend out of rotation (reversible, no scale credit)
  uncordon npu<i>      return a cordoned backend to rotation
  drain npu<i>         voluntarily retire a backend; its routed work completes
  fail npu<i>          involuntary loss; in-flight work is reclaimed and re-routed
  slow npu<i> x<f>     degrade a backend to f x nominal service time
  restore npu<i>       return a slowed backend to nominal speed
  scale <n>            set the active fleet to n backends
  load <x>             offered load per NPU-capacity, from the next segment boundary
  snapshot             point-in-time metrics: fleet, tick-window P50/P95/P99, SLO, timeline tail
  trace                per-request trace summary and worst requests (needs -trace)
  metrics              recent autoscale-tick metric samples (needs -trace)
  report               the run report so far (JSON/HTML exportable at exit)
  step [dur]           advance the virtual clock (default one step)
  pause | resume       stop or restart paced advancement
  time                 the virtual clock
  quit                 seal the stream, build the final report and exit`

// Exec executes one command line at the current virtual instant — the
// interactive and HTTP entry point. The command and its outcome are
// recorded on the run log.
func (p *Plane) Exec(line string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.execLocked(p.now, line)
}

// execLocked parses and runs one command at virtual cycle at, recording
// it. Callers hold the mutex and have advanced the clock to just before
// at (script mode) or exactly at (interactive mode).
func (p *Plane) execLocked(at int64, line string) (string, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", nil
	}
	out, err := p.dispatch(at, line)
	rec := CommandRecord{AtMS: p.millis(at), Cmd: line, Output: out}
	if err != nil {
		rec.Err = err.Error()
	}
	p.commands = append(p.commands, rec)
	return out, err
}

// dispatch routes one parsed command.
func (p *Plane) dispatch(at int64, line string) (string, error) {
	if p.quit {
		return "", errClosed
	}
	fields := strings.Fields(line)
	verb, args := fields[0], fields[1:]
	switch verb {
	case "help":
		return helpText, nil
	case "time":
		state := "running"
		if p.paused {
			state = "paused"
		}
		return fmt.Sprintf("t=%.2fms (%s, load %g)", p.millis(at), state, p.load), nil
	case "list":
		return p.renderFleet(), nil
	case "get":
		i, err := oneNPUArg(args)
		if err != nil {
			return "", err
		}
		return p.renderBackend(i)
	case "cordon", "uncordon", "fail", "restore":
		i, err := oneNPUArg(args)
		if err != nil {
			return "", err
		}
		kind := map[string]serving.OpKind{
			"cordon": serving.CordonNPU, "uncordon": serving.UncordonNPU,
			"fail": serving.FailNPU, "restore": serving.RestoreNPU,
		}[verb]
		if err := p.ns.ScheduleCycle(at, serving.NodeOp{Kind: kind, NPU: i}); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s npu%d scheduled at %.2fms", verb, i, p.millis(at)), nil
	case "slow":
		if len(args) != 2 || !strings.HasPrefix(args[1], "x") {
			return "", fmt.Errorf("usage: slow npu<i> x<factor>")
		}
		i, err := npuArg(args[0])
		if err != nil {
			return "", err
		}
		factor, err := strconv.ParseFloat(strings.TrimPrefix(args[1], "x"), 64)
		if err != nil {
			return "", fmt.Errorf("bad slow factor %q: %v", args[1], err)
		}
		op := serving.NodeOp{Kind: serving.SlowNPU, NPU: i, Factor: factor}
		if err := p.ns.ScheduleCycle(at, op); err != nil {
			return "", err
		}
		return fmt.Sprintf("slow npu%d x%g scheduled at %.2fms", i, factor, p.millis(at)), nil
	case "drain":
		i, err := oneNPUArg(args)
		if err != nil {
			return "", err
		}
		if err := p.ns.RetireBackend(i); err != nil {
			return "", err
		}
		return fmt.Sprintf("npu%d draining; routed work completes, nothing new lands", i), nil
	case "scale":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: scale <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return "", fmt.Errorf("bad fleet size %q: %v", args[0], err)
		}
		if err := p.ns.ScaleTo(n); err != nil {
			return "", err
		}
		return fmt.Sprintf("fleet scaled to %d active", n), nil
	case "load":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: load <x>")
		}
		x, err := strconv.ParseFloat(args[0], 64)
		if err != nil || x < 0 {
			return "", fmt.Errorf("bad offered load %q", args[0])
		}
		p.load = x
		return fmt.Sprintf("offered load %g from the next segment boundary", x), nil
	case "snapshot":
		return p.snapshotLocked(at).Render(), nil
	case "trace":
		return p.renderTrace()
	case "metrics":
		return p.renderMetrics()
	case "report":
		return p.buildReport().Render(), nil
	case "step":
		d := p.cfg.Step
		if len(args) == 1 {
			var err error
			if d, err = time.ParseDuration(args[0]); err != nil || d <= 0 {
				return "", fmt.Errorf("bad step duration %q", args[0])
			}
		} else if len(args) > 1 {
			return "", fmt.Errorf("usage: step [duration]")
		}
		if err := p.advanceClockTo(p.now + p.cycles(d)); err != nil {
			return "", err
		}
		return fmt.Sprintf("t=%.2fms", p.millis(p.now)), nil
	case "pause":
		p.paused = true
		return "paused", nil
	case "resume":
		p.paused = false
		return "resumed", nil
	case "quit":
		if err := p.finish(at); err != nil {
			return "", err
		}
		return fmt.Sprintf("sealed at %.2fms: %d requests", p.millis(p.now), p.offered), nil
	default:
		return "", fmt.Errorf("unknown command %q (try help)", verb)
	}
}

// oneNPUArg parses the single npu<i> argument form.
func oneNPUArg(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expected one npu<i> argument")
	}
	return npuArg(args[0])
}

// npuArg parses "npu<i>".
func npuArg(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "npu")
	if !ok {
		return 0, fmt.Errorf("expected npu<i>, got %q", s)
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 0 {
		return 0, fmt.Errorf("bad NPU index %q", s)
	}
	return i, nil
}

// renderFleet is the `list` view.
func (p *Plane) renderFleet() string {
	fleet := p.ns.Fleet()
	// The TIER column only appears on heterogeneous fleets, so
	// homogeneous transcripts stay byte-identical to earlier releases.
	tiered := len(fleet) > 0 && fleet[0].Tier != ""
	var b strings.Builder
	if tiered {
		fmt.Fprintf(&b, "%-6s %-8s %-9s %-6s %-9s %-11s %s\n",
			"NPU", "TIER", "STATE", "SPEED", "IN-FLIGHT", "BACKLOG(ms)", "ROUTED")
	} else {
		fmt.Fprintf(&b, "%-6s %-9s %-6s %-9s %-11s %s\n",
			"NPU", "STATE", "SPEED", "IN-FLIGHT", "BACKLOG(ms)", "ROUTED")
	}
	active := 0
	for _, v := range fleet {
		if v.State == "active" {
			active++
		}
		if tiered {
			fmt.Fprintf(&b, "npu%-3d %-8s %-9s x%-5g %-9d %-11.2f %d\n",
				v.NPU, v.Tier, v.State, v.Speed, v.InFlight, v.BacklogMS, v.Routed)
			continue
		}
		fmt.Fprintf(&b, "npu%-3d %-9s x%-5g %-9d %-11.2f %d\n",
			v.NPU, v.State, v.Speed, v.InFlight, v.BacklogMS, v.Routed)
	}
	fmt.Fprintf(&b, "%d/%d active, %d requests routed", active, len(fleet), p.offered)
	return b.String()
}

// renderBackend is the `get npu<i>` view.
func (p *Plane) renderBackend(i int) (string, error) {
	fleet := p.ns.Fleet()
	if i >= len(fleet) {
		return "", fmt.Errorf("unknown NPU %d (node size %d)", i, len(fleet))
	}
	v := fleet[i]
	var b strings.Builder
	fmt.Fprintf(&b, "npu%d: %s\n", v.NPU, v.State)
	if v.Tier != "" {
		fmt.Fprintf(&b, "  tier       %s\n", v.Tier)
	}
	fmt.Fprintf(&b, "  speed      x%g\n", v.Speed)
	fmt.Fprintf(&b, "  in-flight  %d\n", v.InFlight)
	fmt.Fprintf(&b, "  backlog    %.2fms\n", v.BacklogMS)
	fmt.Fprintf(&b, "  routed     %d", v.Routed)
	return b.String(), nil
}

// Commands returns a copy of the command log so far.
func (p *Plane) Commands() []CommandRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]CommandRecord(nil), p.commands...)
}

// sortedVerbs is used by tests to assert help stays complete.
func sortedVerbs() []string {
	verbs := []string{"help", "time", "list", "get", "cordon", "uncordon",
		"fail", "restore", "slow", "drain", "scale", "load", "snapshot",
		"trace", "metrics", "report", "step", "pause", "resume", "quit"}
	sort.Strings(verbs)
	return verbs
}
